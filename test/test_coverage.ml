(* Coverage for configurations not hit elsewhere: 3-D simplices, higher
   arities across index families, structural invariants on the lifted
   (SRP) tree, and pure-geometry accounting. *)

open Kwsc_geom
module Prng = Kwsc_util.Prng

let test_sp_tetrahedra () =
  let objs = Helpers.dataset ~seed:221 ~n:200 ~d:3 () in
  let t = Kwsc.Sp_kw.build ~k:2 objs in
  let rng = Prng.create 222 in
  let tried = ref 0 in
  while !tried < 25 do
    let v () = Array.init 3 (fun _ -> Prng.float rng 1400.0 -. 200.0) in
    match Simplex.of_vertices [| v (); v (); v (); v () |] with
    | exception Invalid_argument _ -> ()
    | s ->
        incr tried;
        let ws = Helpers.random_keywords rng ~vocab:40 ~k:2 in
        Helpers.check_ids "tetrahedron query"
          (Helpers.oracle objs (Simplex.contains s) ws)
          (Kwsc.Sp_kw.query_simplex t s ws)
  done

let test_lc_k4 () =
  let rng = Prng.create 223 in
  let objs =
    Array.init 250 (fun _ ->
        ( [| Prng.float rng 100.0; Prng.float rng 100.0 |],
          Kwsc_invindex.Doc.of_list (List.init (3 + Prng.int rng 5) (fun _ -> 1 + Prng.int rng 9)) ))
  in
  let t = Kwsc.Lc_kw.build ~k:4 objs in
  for _ = 1 to 40 do
    let h =
      Halfspace.make [| Prng.float rng 2.0 -. 1.0; Prng.float rng 2.0 -. 1.0 |] (Prng.float rng 120.0)
    in
    let ws = Helpers.random_keywords rng ~vocab:9 ~k:4 in
    Helpers.check_ids "lc k=4" (Helpers.oracle objs (Halfspace.satisfies h) ws) (Kwsc.Lc_kw.query t [ h ] ws)
  done

let test_srp_lifted_invariants () =
  (* the lifted SP tree must keep the Transform invariants in d+1 *)
  let objs = Helpers.dataset ~seed:224 ~n:300 ~d:2 () in
  let t = Kwsc.Srp_kw.build ~k:2 objs in
  let sp_stats = Kwsc.Srp_kw.space_stats t in
  Alcotest.(check bool) "pivots stay small" true (sp_stats.Kwsc.Stats.max_pivot <= 8);
  Alcotest.(check bool) "space linear-ish" true
    (sp_stats.Kwsc.Stats.total_words < 12 * Kwsc.Srp_kw.input_size t)

let test_flex_max_k4 () =
  let rng = Prng.create 225 in
  let objs =
    Array.init 150 (fun _ ->
        ( [| Prng.float rng 100.0; Prng.float rng 100.0 |],
          Kwsc_invindex.Doc.of_list (List.init (1 + Prng.int rng 4) (fun _ -> 1 + Prng.int rng 12)) ))
  in
  let t = Kwsc.Flex.build ~max_k:4 objs in
  for _ = 1 to 60 do
    let q = Helpers.random_rect rng ~d:2 ~range:100.0 in
    let j = 1 + Prng.int rng 4 in
    let ws = Helpers.random_keywords rng ~vocab:12 ~k:j in
    Helpers.check_ids
      (Printf.sprintf "flex max_k=4 arity %d" j)
      (Helpers.oracle objs (Rect.contains_point q) ws)
      (Kwsc.Flex.query t q ws)
  done

let test_dimred_k4 () =
  let rng = Prng.create 226 in
  let objs =
    Array.init 200 (fun _ ->
        ( Array.init 3 (fun _ -> Prng.float rng 100.0),
          Kwsc_invindex.Doc.of_list (List.init (3 + Prng.int rng 4) (fun _ -> 1 + Prng.int rng 8)) ))
  in
  let t = Kwsc.Dimred.build ~k:4 objs in
  for _ = 1 to 40 do
    let q = Helpers.random_rect rng ~d:3 ~range:100.0 in
    let ws = Helpers.random_keywords rng ~vocab:8 ~k:4 in
    Helpers.check_ids "dimred k=4" (Helpers.oracle_rect objs q ws) (Kwsc.Dimred.query t q ws)
  done

let test_kd_range_stats_consistency () =
  let rng = Prng.create 227 in
  let pts = Array.init 500 (fun i -> ([| Prng.float rng 100.0; Prng.float rng 100.0 |], i)) in
  let t = Kwsc_kdtree.Kd.build pts in
  for _ = 1 to 60 do
    let q = Helpers.random_rect rng ~d:2 ~range:100.0 in
    let st = Kwsc_kdtree.Kd.range_stats t q in
    Alcotest.(check int) "covered + crossing = nodes" st.Kwsc_kdtree.Kd.nodes
      (st.Kwsc_kdtree.Kd.covered + st.Kwsc_kdtree.Kd.crossing);
    Alcotest.(check bool) "leaves <= nodes" true
      (st.Kwsc_kdtree.Kd.leaves_scanned <= st.Kwsc_kdtree.Kd.nodes)
  done

let test_ptree_stats_consistency () =
  let rng = Prng.create 228 in
  let pts = Array.init 300 (fun i -> ([| Prng.float rng 100.0; Prng.float rng 100.0 |], i)) in
  let t = Kwsc_ptree.Ptree.build pts in
  for _ = 1 to 20 do
    let h =
      Halfspace.make [| Prng.float rng 2.0 -. 1.0; Prng.float rng 2.0 -. 1.0 |] (Prng.float rng 100.0)
    in
    let st = Kwsc_ptree.Ptree.stats_polytope t (Polytope.make ~dim:2 [ h ]) in
    Alcotest.(check int) "visited = covered + crossing" st.Kwsc_ptree.Ptree.visited
      (st.Kwsc_ptree.Ptree.covered + st.Kwsc_ptree.Ptree.crossing)
  done

let test_inverted_single_keyword () =
  let docs =
    [| Kwsc_invindex.Doc.of_list [ 3 ]; Kwsc_invindex.Doc.of_list [ 3; 5 ]; Kwsc_invindex.Doc.of_list [ 5 ] |]
  in
  let inv = Kwsc_invindex.Inverted.build docs in
  Alcotest.(check (array int)) "k=1 query" [| 0; 1 |] (Kwsc_invindex.Inverted.query inv [| 3 |])

let test_hotels_pad_roundtrip () =
  (* the introduction's 3-keyword query answered at arity 2 via Flex *)
  let rng = Prng.create 229 in
  let hotels = Kwsc_workload.Hotels.generate ~rng ~n:400 in
  let objs = Kwsc_workload.Hotels.to_objects hotels in
  let flex = Kwsc.Flex.build ~max_k:3 objs in
  let pool = Kwsc_workload.Hotels.tag_id "pool" and wifi = Kwsc_workload.Hotels.tag_id "wifi" in
  let q = Rect.make [| 50.0; 0.0 |] [| 600.0; 10.0 |] in
  let expected = Helpers.oracle objs (Rect.contains_point q) [| pool; wifi |] in
  Helpers.check_ids "hotel arity-2 on k=3 index" expected (Kwsc.Flex.query flex q [| pool; wifi |])

let test_poisoned_dynamic () =
  (* delete all keyword-bearing objects: the standing query must go empty *)
  let rng = Prng.create 230 in
  let objs, q, kws = (fun () ->
      let kws = [| 1; 2 |] in
      let objs, q = Kwsc_workload.Gen.poison ~rng ~n:300 ~d:2 ~range:100.0 ~kws in
      (objs, q, kws)) ()
  in
  let t = Kwsc.Dynamic.create ~k:2 ~d:2 () in
  let ids = Array.map (fun o -> Kwsc.Dynamic.insert t o) objs in
  (* move half the keyword objects inside the rectangle *)
  Array.iteri
    (fun i (p, doc) ->
      ignore p;
      if Kwsc_invindex.Doc.mem_all doc kws && i mod 4 = 0 then begin
        Kwsc.Dynamic.delete t ids.(i);
        ignore (Kwsc.Dynamic.insert t ([| 10.0; 10.0 |], doc))
      end)
    objs;
  let res = Kwsc.Dynamic.query t q kws in
  Alcotest.(check bool) "moved objects now match" true (Array.length res > 0);
  Array.iter (fun id -> Kwsc.Dynamic.delete t id) (Kwsc.Dynamic.query t (Rect.full 2) kws);
  Helpers.check_ids "after deleting all matches" [||] (Kwsc.Dynamic.query t q kws)

(* ------------------------------------------------------------------ *)
(* Degenerate query rectangles (NaN, inverted, point)                   *)
(* ------------------------------------------------------------------ *)

module Rank_space = Kwsc_geom.Rank_space

let rank_space_of_points pts = Rank_space.create pts

(* [Rect.make] rejects inverted sides and record literals bypass it —
   exactly the hostile inputs [rect_to_ranks] must stay total on. *)
let degenerate_rect lo hi = { Rect.lo; hi }

let test_rect_to_ranks_degenerate () =
  let rng = Prng.create 231 in
  let pts = Array.init 80 (fun _ -> [| Prng.float rng 100.0; Prng.float rng 100.0 |]) in
  let rs = rank_space_of_points pts in
  let check name r = Alcotest.(check bool) name true (Rank_space.rect_to_ranks rs r = None) in
  check "nan lo" (degenerate_rect [| nan; 0.0 |] [| 100.0; 100.0 |]);
  check "nan hi" (degenerate_rect [| 0.0; 0.0 |] [| 100.0; nan |]);
  check "all nan" (degenerate_rect [| nan; nan |] [| nan; nan |]);
  check "inverted side" (degenerate_rect [| 60.0; 0.0 |] [| 40.0; 100.0 |]);
  check "inverted + nan" (degenerate_rect [| 60.0; nan |] [| 40.0; 100.0 |]);
  (* a point rectangle exactly on an object coordinate is a real query *)
  let p = pts.(7) in
  match Rank_space.rect_to_ranks rs (Rect.make (Array.copy p) (Array.copy p)) with
  | None -> Alcotest.fail "point rectangle on a data point must hit"
  | Some (lo, hi) ->
      Alcotest.(check bool) "point box is non-empty" true (lo.(0) <= hi.(0) && lo.(1) <= hi.(1))

let qcheck_rect_to_ranks_total =
  QCheck.Test.make ~name:"rect_to_ranks is total and sound on degenerate inputs" ~count:120
    QCheck.(small_int)
    (fun seed ->
      let rng = Prng.create (1000 + seed) in
      let n = 3 + Prng.int rng 40 in
      let pts = Array.init n (fun _ -> [| Prng.float rng 50.0; Prng.float rng 50.0 |]) in
      let rs = rank_space_of_points pts in
      let coord () =
        match Prng.int rng 5 with
        | 0 -> nan
        | 1 -> Float.neg_infinity
        | 2 -> Float.infinity
        | _ -> Prng.float rng 60.0 -. 5.0
      in
      let r = degenerate_rect [| coord (); coord () |] [| coord (); coord () |] in
      (* the documented contract: a NaN bound or inverted side means the
         rectangle is empty, whatever IEEE comparisons would say *)
      let degenerate =
        let bad = ref false in
        Array.iteri
          (fun j lo_j ->
            let hi_j = r.Rect.hi.(j) in
            if Float.is_nan lo_j || Float.is_nan hi_j || lo_j > hi_j then bad := true)
          r.Rect.lo;
        !bad
      in
      match Rank_space.rect_to_ranks rs r with
      | None ->
          (* no object may satisfy containment — unless the rectangle is
             degenerate, in which case None is the contract *)
          degenerate || Array.for_all (fun p -> not (Rect.contains_point r p)) pts
      | Some (lo, hi) ->
          (* object in the rectangle iff its rank vector is in the box *)
          let ok = ref true in
          Array.iteri
            (fun id p ->
              let rk = Rank_space.ranks rs id in
              let inside_box = rk.(0) >= lo.(0) && rk.(0) <= hi.(0) && rk.(1) >= lo.(1) && rk.(1) <= hi.(1) in
              if inside_box <> Rect.contains_point r p then ok := false)
            pts;
          !ok)

let test_orp_degenerate_rects () =
  let objs = Helpers.dataset ~seed:232 ~n:120 ~d:2 () in
  let t = Kwsc.Orp_kw.build ~k:2 objs in
  let ws = [| 1; 2 |] in
  Helpers.check_ids "nan rect" [||]
    (Kwsc.Orp_kw.query t (degenerate_rect [| nan; 0.0 |] [| 100.0; 100.0 |]) ws);
  Helpers.check_ids "inverted rect" [||]
    (Kwsc.Orp_kw.query t (degenerate_rect [| 90.0; 0.0 |] [| 10.0; 100.0 |]) ws);
  (* the keyword contract is validated even when geometry short-circuits *)
  Alcotest.check_raises "nan rect still validates keywords"
    (Invalid_argument "Transform.query: expected 2 distinct keywords, got 0") (fun () ->
      ignore (Kwsc.Orp_kw.query t (degenerate_rect [| nan; 0.0 |] [| 1.0; 1.0 |]) [||]))

(* ------------------------------------------------------------------ *)
(* The shared keyword-set contract, across every query surface          *)
(* ------------------------------------------------------------------ *)

(* Every k-constrained module funnels through
   [Transform.validate_keyword_arity], so the error message is identical
   everywhere; absent keywords are legal and answer empty. *)
let test_keyword_contract_all_surfaces () =
  let d2 = Helpers.dataset ~seed:233 ~n:150 ~d:2 () in
  let d3 = Helpers.dataset ~seed:234 ~n:120 ~d:3 () in
  let int2 =
    let rng = Prng.create 235 in
    let pts = Kwsc_workload.Gen.points_int ~rng ~n:120 ~d:2 ~max_coord:50 in
    let docs = Kwsc_workload.Gen.docs ~rng ~n:120 ~vocab:20 ~theta:0.8 ~len_min:1 ~len_max:4 in
    Array.init 120 (fun i -> (pts.(i), docs.(i)))
  in
  let rects1 =
    let rng = Prng.create 236 in
    Array.init 120 (fun _ ->
        let lo = Prng.float rng 100.0 in
        ( Rect.make [| lo |] [| lo +. Prng.float rng 10.0 |],
          Kwsc_invindex.Doc.of_list (List.init (1 + Prng.int rng 3) (fun _ -> 1 + Prng.int rng 15)) ))
  in
  let trivial = [ Halfspace.make [| 0.0; 0.0 |] 1.0 ] in
  let orp = Kwsc.Orp_kw.build ~k:2 d2 in
  let lc = Kwsc.Lc_kw.build ~k:2 d2 in
  let sp = Kwsc.Sp_kw.build ~k:2 d2 in
  let srp = Kwsc.Srp_kw.build ~k:2 d2 in
  let rr = Kwsc.Rr_kw.build ~k:2 rects1 in
  let linf = Kwsc.Linf_nn_kw.build ~k:2 d2 in
  let l2 = Kwsc.L2_nn_kw.build ~k:2 int2 in
  let dimred = Kwsc.Dimred.build ~k:2 d3 in
  let ids a = a in
  let nn_ids a = Array.map fst a in
  let surfaces =
    [
      ("orp", fun ws -> ids (Kwsc.Orp_kw.query orp (Rect.full 2) ws));
      ("lc", fun ws -> ids (Kwsc.Lc_kw.query lc trivial ws));
      ("sp", fun ws -> ids (Kwsc.Sp_kw.query_halfspaces sp trivial ws));
      ("srp", fun ws -> ids (Kwsc.Srp_kw.query srp (Sphere.make [| 50.0; 50.0 |] 5000.0) ws));
      ("rr", fun ws -> ids (Kwsc.Rr_kw.query rr (Rect.full 1) ws));
      ("linf", fun ws -> nn_ids (Kwsc.Linf_nn_kw.query linf [| 0.0; 0.0 |] ~t':3 ws));
      ("l2", fun ws -> nn_ids (Kwsc.L2_nn_kw.query l2 [| 0.0; 0.0 |] ~t':3 ws));
      ("dimred", fun ws -> ids (Kwsc.Dimred.query dimred (Rect.full 3) ws));
    ]
  in
  List.iter
    (fun (name, run) ->
      Alcotest.check_raises
        (name ^ ": empty keyword set")
        (Invalid_argument "Transform.query: expected 2 distinct keywords, got 0")
        (fun () -> ignore (run [||]));
      Alcotest.check_raises
        (name ^ ": oversized keyword set")
        (Invalid_argument "Transform.query: expected 2 distinct keywords, got 3")
        (fun () -> ignore (run [| 1; 2; 3 |]));
      Helpers.check_ids (name ^ ": absent keywords answer empty") [||] (run [| 901; 902 |]))
    surfaces;
  (* the unconstrained baseline: >= 1 keyword, any arity *)
  let inv = Kwsc_invindex.Inverted.build (Array.map snd d2) in
  Alcotest.check_raises "postings: empty keyword set"
    (Invalid_argument "Postings.query_into: need at least one keyword") (fun () ->
      ignore (Kwsc_invindex.Inverted.query inv [||]));
  Helpers.check_ids "postings: absent keyword" [||] (Kwsc_invindex.Inverted.query inv [| 901 |]);
  Helpers.check_ids "postings: 25 keywords intersect to empty" [||]
    (Kwsc_invindex.Inverted.query inv (Array.init 25 (fun i -> i + 1)))

let suite =
  [
    Alcotest.test_case "sp-kw tetrahedra (3d)" `Quick test_sp_tetrahedra;
    Alcotest.test_case "lc-kw k=4" `Quick test_lc_k4;
    Alcotest.test_case "srp lifted-tree invariants" `Quick test_srp_lifted_invariants;
    Alcotest.test_case "flex max_k=4" `Quick test_flex_max_k4;
    Alcotest.test_case "dimred k=4" `Quick test_dimred_k4;
    Alcotest.test_case "kd range-stats consistency" `Quick test_kd_range_stats_consistency;
    Alcotest.test_case "ptree stats consistency" `Quick test_ptree_stats_consistency;
    Alcotest.test_case "inverted single keyword" `Quick test_inverted_single_keyword;
    Alcotest.test_case "hotels via flex" `Quick test_hotels_pad_roundtrip;
    Alcotest.test_case "dynamic poison scenario" `Quick test_poisoned_dynamic;
    Alcotest.test_case "degenerate rectangles (rank space)" `Quick test_rect_to_ranks_degenerate;
    Alcotest.test_case "degenerate rectangles (orp)" `Quick test_orp_degenerate_rects;
    Alcotest.test_case "keyword contract on all surfaces" `Quick test_keyword_contract_all_surfaces;
    QCheck_alcotest.to_alcotest qcheck_rect_to_ranks_total;
  ]
