(* Seeded A2 violation: calls a parallel entry point without the
   [@@@kwsc.domain_safe] tag — the analyzer must demand the audit. *)

module Pool = struct
  let run f = f ()
end

let total = ref 0

let go () = Pool.run (fun () -> incr total)
