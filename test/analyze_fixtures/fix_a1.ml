[@@@kwsc.kernel]

(* Seeded A1 violations: one of each hot-context allocation class the
   analyzer must catch in a kernel-tagged module. *)

(* allocates a tuple in its body; callers in hot contexts inherit it *)
let helper_pair x = (x, x + 1)

let sum_pairs n =
  let acc = ref 0 in
  for i = 0 to n - 1 do
    (* allocating-call: propagated through the local call graph *)
    let p = helper_pair i in
    acc := !acc + fst p
  done;
  !acc

let boxed_min xs =
  let best = ref (-1) in
  Array.iter
    (fun x ->
      (* boxed-construct: a fresh Some per element of the callback *)
      match Some x with
      | Some v -> if !best < 0 || v < !best then best := v
      | None -> ())
    xs;
  !best

let scale_all xs k =
  let acc = ref 0 in
  for i = 0 to Array.length xs - 1 do
    (* closure: captures k and i, rebuilt every iteration *)
    let f = fun v -> (v * k) + i in
    acc := !acc + f xs.(i)
  done;
  !acc

let grow_each n =
  let out = ref [||] in
  for i = 0 to n - 1 do
    (* alloc-call: Array.append copies both sides every iteration *)
    out := Array.append !out (Array.make 1 i)
  done;
  !out
