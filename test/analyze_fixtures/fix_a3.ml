(* Seeded A3 violations: unsafe accesses with no dominating bounds
   guard, plus a backing-store escape — and one guarded (legal) access
   the analyzer must NOT flag. *)

module Buf = struct
  type t = { data : int array }

  let make n = { data = Array.make n 0 }
  let unsafe_data t = t.data
end

let sum_unguarded a i =
  (* unguarded-unsafe-get: no bounds check mentions i *)
  Array.unsafe_get a i + 1

let set_unguarded b j =
  (* unguarded-unsafe-set: no bounds check mentions j *)
  Bytes.unsafe_set b j 'x'

let sum_guarded a i =
  (* guarded: the condition names the exact index expression *)
  if i < Array.length a then Array.unsafe_get a i else 0

let peek t =
  (* representation-escape: Buf.unsafe_data outside its defining module *)
  (Buf.unsafe_data t).(0)
