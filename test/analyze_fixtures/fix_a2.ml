[@@@kwsc.domain_safe]

(* Seeded A2 violations: module-level mutable state and captured writes
   reachable from closures handed to a parallel entry point.  The local
   Pool stands in for Kwsc_util.Pool — the analyzer matches the last two
   path components of the callee. *)

module Pool = struct
  let parallel_map f xs = Array.map f xs
end

let shared = Hashtbl.create 16
let counter = ref 0

let bump_shared k =
  Hashtbl.replace shared k k;
  incr counter

let tally xs =
  Pool.parallel_map
    (fun x ->
      (* global-mutable: counter is module-level mutable state *)
      counter := !counter + x;
      (* mutating-call: bump_shared writes shared and counter *)
      bump_shared x;
      x)
    xs

let race out xs =
  Pool.parallel_map
    (fun i ->
      (* captured-write: out is captured from the enclosing scope *)
      out.(i) <- i;
      i)
    xs
