[@@@kwsc.kernel]
[@@@kwsc.domain_safe]

(* Clean control: a tagged module with allocation-free hot loops and no
   parallel calls — the analyzer must report nothing here. *)

let add a b = a + b

let sum n =
  let acc = ref 0 in
  for i = 0 to n - 1 do
    acc := !acc + add i i
  done;
  !acc

let count_below a x =
  let c = ref 0 in
  for i = 0 to Array.length a - 1 do
    if a.(i) < x then incr c
  done;
  !c
