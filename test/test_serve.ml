(* The serve layer: epochs, watermarks, checkpoints, and the differential
   against a naive live-object scan.

   The load-bearing property is snapshot consistency: an epoch, once
   published, answers every query exactly as a sequential replay stopped
   at its watermark — regardless of what the writer does afterwards and
   regardless of how many domains read it. *)

open Kwsc_geom
module Doc = Kwsc_invindex.Doc
module Prng = Kwsc_util.Prng
module Pool = Kwsc_util.Pool
module Serve = Kwsc_serve.Serve
module Epoch = Kwsc_serve.Epoch
module Stats = Kwsc.Stats

(* Pool sizes 1 and 4 per the serve differential gate (plus 2 to catch
   off-by-one sharding); joined at exit. *)
let pools =
  lazy
    (let ps = Array.map (fun n -> Pool.create ~domains:n ()) [| 1; 2; 4 |] in
     at_exit (fun () -> Array.iter Pool.shutdown ps);
     ps)

let with_audit f () =
  Unix.putenv "KWSC_AUDIT" "1";
  Fun.protect ~finally:(fun () -> Unix.putenv "KWSC_AUDIT" "0") f

let random_obj rng =
  let p = [| Prng.float rng 100.0; Prng.float rng 100.0 |] in
  let doc = Doc.of_list (List.init (1 + Prng.int rng 4) (fun _ -> 1 + Prng.int rng 12)) in
  (p, doc)

(* The naive reference: scan every id ever assigned through the server's
   own liveness map. *)
let naive_scan server ~next_id q ws =
  let hits = ref [] in
  for id = next_id - 1 downto 0 do
    match Serve.live server id with
    | Some (p, doc) when Rect.contains_point q p && Array.for_all (Doc.mem doc) ws ->
        hits := id :: !hits
    | _ -> ()
  done;
  Array.of_list !hits

let check_stats_eq what (a : Stats.query) (b : Stats.query) =
  let ck field va vb = Alcotest.(check int) (what ^ ": " ^ field) va vb in
  ck "nodes_visited" a.Stats.nodes_visited b.Stats.nodes_visited;
  ck "covered_nodes" a.Stats.covered_nodes b.Stats.covered_nodes;
  ck "crossing_nodes" a.Stats.crossing_nodes b.Stats.crossing_nodes;
  ck "pivot_checked" a.Stats.pivot_checked b.Stats.pivot_checked;
  ck "small_scanned" a.Stats.small_scanned b.Stats.small_scanned;
  ck "pruned_empty" a.Stats.pruned_empty b.Stats.pruned_empty;
  ck "pruned_geom" a.Stats.pruned_geom b.Stats.pruned_geom;
  ck "reported" a.Stats.reported b.Stats.reported;
  ck "alloc_words" a.Stats.alloc_words b.Stats.alloc_words;
  ck "work" (Stats.work a) (Stats.work b)

(* --- epochs are frozen ------------------------------------------------ *)

let test_epoch_isolation =
  with_audit (fun () ->
      let s = Serve.create ~k:2 ~d:2 () in
      let rng = Prng.create 311 in
      let ids = Array.init 60 (fun _ -> Serve.insert s (random_obj rng)) in
      let q = Rect.full 2 and ws = [| 1; 2 |] in
      let e0 = Serve.current s in
      let a0 = Epoch.query e0 q ws in
      let v0 = Epoch.version e0 in
      (* the writer keeps going: deletes, inserts, maintenance *)
      for i = 0 to 29 do
        Serve.delete s ids.(i)
      done;
      for _ = 1 to 20 do
        ignore (Serve.insert s (random_obj rng))
      done;
      ignore (Serve.maintain s);
      (* the pinned epoch is bit-identical to its original answers *)
      Alcotest.(check (array int)) "frozen answers" a0 (Epoch.query e0 q ws);
      Alcotest.(check int) "frozen watermark" v0 (Epoch.version e0);
      (* while the current epoch tracks the writer exactly *)
      let e1 = Serve.current s in
      Alcotest.(check int) "watermark advanced" (Serve.version s) (Epoch.version e1);
      Alcotest.(check (array int))
        "current = naive scan" (naive_scan s ~next_id:80 q ws) (Epoch.query e1 q ws))

let test_watermark_protocol =
  with_audit (fun () ->
      let s = Serve.create ~k:2 ~d:2 () in
      let rng = Prng.create 312 in
      Alcotest.(check int) "fresh server at watermark 0" 0 (Serve.version s);
      let id0 = Serve.insert s (random_obj rng) in
      let id1 = Serve.insert s (random_obj rng) in
      Alcotest.(check int) "insert ticks" 2 (Serve.version s);
      Serve.delete s id0;
      Alcotest.(check int) "delete ticks" 3 (Serve.version s);
      Serve.delete s id0;
      Alcotest.(check int) "re-delete does not tick" 3 (Serve.version s);
      Alcotest.(check int) "epoch carries the watermark" 3
        (Epoch.version (Serve.current s));
      ignore (Serve.maintain s);
      Alcotest.(check int) "maintenance does not tick" 3 (Serve.version s);
      ignore id1)

(* --- background maintenance ------------------------------------------ *)

let test_maintain_merges_small_levels =
  with_audit (fun () ->
      let s = Serve.create ~k:2 ~d:2 () in
      let rng = Prng.create 313 in
      for _ = 1 to 87 do
        ignore (Serve.insert s (random_obj rng))
      done;
      (* make sure the chain has at least two levels to fold *)
      while List.length (Serve.bucket_sizes s) < 2 do
        ignore (Serve.insert s (random_obj rng))
      done;
      let before = List.length (Serve.bucket_sizes s) in
      let q = Rect.full 2 and ws = [| 1; 2 |] in
      let answers = Serve.query s q ws in
      let changed = Serve.maintain ~small_cap:1000 s in
      Alcotest.(check bool) "maintenance folded the chain" true changed;
      Alcotest.(check bool)
        (Printf.sprintf "fewer levels (%d -> %d)" before (List.length (Serve.bucket_sizes s)))
        true
        (List.length (Serve.bucket_sizes s) < before);
      Alcotest.(check (array int)) "answers unchanged" answers (Serve.query s q ws);
      Alcotest.(check bool) "maintenance reaches a fixpoint" false
        (Serve.maintain ~small_cap:1000 s))

(* --- the qcheck differential (satellite): insert/delete/query/
       checkpoint/restore against the naive scan --------------------- *)

let qcheck_serve_differential =
  QCheck.Test.make ~name:"serve loop equals naive live-object scan" ~count:15
    QCheck.(small_int)
    (fun seed ->
      Unix.putenv "KWSC_AUDIT" "1";
      Fun.protect
        ~finally:(fun () -> Unix.putenv "KWSC_AUDIT" "0")
        (fun () ->
          let rng = Prng.create (7000 + seed) in
          let server = ref (Serve.create ~k:2 ~d:2 ()) in
          let next_id = ref 0 in
          let path = Filename.temp_file "kwsc_serve" ".snap" in
          Fun.protect
            ~finally:(fun () -> Sys.remove path)
            (fun () ->
              let ok = ref true in
              let check_query () =
                let q = Helpers.random_rect rng ~d:2 ~range:100.0 in
                let ws = Helpers.random_keywords rng ~vocab:12 ~k:2 in
                let expect = naive_scan !server ~next_id:!next_id q ws in
                if Serve.query !server q ws <> expect then ok := false
              in
              for _ = 1 to 120 do
                match Prng.int rng 10 with
                | 0 | 1 when !next_id > 0 ->
                    (* delete (possibly already dead) *)
                    Serve.delete !server (Prng.int rng !next_id)
                | 2 ->
                    (* checkpoint, restore, continue on the restored server *)
                    Serve.checkpoint !server path;
                    let v = Serve.version !server and n = Serve.size !server in
                    (match Serve.restore path with
                    | Error _ -> ok := false
                    | Ok s' ->
                        if Serve.version s' <> v || Serve.size s' <> n then ok := false;
                        server := s')
                | 3 -> ignore (Serve.maintain !server)
                | 4 -> check_query ()
                | _ ->
                    let id = Serve.insert !server (random_obj rng) in
                    if id <> !next_id then ok := false;
                    incr next_id
              done;
              check_query ();
              !ok)))

(* Slot-wise answer and counter equality across pool sizes 1/2/4 for a
   batch pinned to one epoch. *)
let test_batch_pool_equality =
  with_audit (fun () ->
      let s = Serve.create ~k:2 ~d:2 () in
      let rng = Prng.create 314 in
      let ids = Array.init 150 (fun _ -> Serve.insert s (random_obj rng)) in
      Array.iteri (fun i id -> if i mod 5 = 0 then Serve.delete s id) ids;
      let qs =
        Array.init 24 (fun _ ->
            ( Helpers.random_rect rng ~d:2 ~range:100.0,
              Helpers.random_keywords rng ~vocab:12 ~k:2 ))
      in
      let e = Serve.current s in
      let base_answers, base_stats = Epoch.query_batch ~pool:(Lazy.force pools).(0) e qs in
      (* the sequential reference is the naive scan, slot by slot *)
      Array.iteri
        (fun i (q, ws) ->
          Alcotest.(check (array int))
            (Printf.sprintf "slot %d = naive scan" i)
            (naive_scan s ~next_id:150 q ws)
            base_answers.(i))
        qs;
      Array.iter
        (fun pool ->
          let answers, stats = Epoch.query_batch ~pool e qs in
          Array.iteri
            (fun i a ->
              Alcotest.(check (array int))
                (Printf.sprintf "slot %d at %d domains" i (Pool.size pool))
                base_answers.(i) a)
            answers;
          check_stats_eq (Printf.sprintf "counters at %d domains" (Pool.size pool)) base_stats
            stats)
        (Lazy.force pools))

(* --- a real concurrent reader ---------------------------------------- *)

(* One reader domain hammers [current] while the writer churns: watermarks
   must be monotonic, and each pinned epoch must answer identically when
   queried twice (a torn or mutated epoch would not). *)
let test_concurrent_reader () =
  let s = Serve.create ~k:2 ~d:2 () in
  let rng = Prng.create 315 in
  let seed_ids = Array.init 50 (fun _ -> Serve.insert s (random_obj rng)) in
  let q = Rect.full 2 and ws = [| 1; 2 |] in
  let stop = Atomic.make false in
  let reader =
    Domain.spawn (fun () ->
        let last = ref (-1) in
        let checks = ref 0 in
        while not (Atomic.get stop) do
          let e = Serve.current s in
          let v = Epoch.version e in
          if v < !last then failwith "watermark went backwards";
          last := v;
          let a = Epoch.query e q ws in
          if a <> Epoch.query e q ws then failwith "epoch answers are not frozen";
          if Array.length a > Epoch.live_count e then failwith "answers exceed epoch live count";
          incr checks
        done;
        !checks)
  in
  for round = 1 to 400 do
    if round mod 3 = 0 && round / 3 <= 50 then Serve.delete s seed_ids.((round / 3) - 1)
    else ignore (Serve.insert s (random_obj rng));
    if round mod 97 = 0 then ignore (Serve.maintain s)
  done;
  Atomic.set stop true;
  let checks = Domain.join reader in
  Alcotest.(check bool) (Printf.sprintf "reader observed %d epochs" checks) true (checks > 0)

(* --- checkpoint → kill → restore ------------------------------------- *)

let test_checkpoint_restore_exact =
  with_audit (fun () ->
      let s = Serve.create ~k:2 ~d:2 () in
      let rng = Prng.create 316 in
      let ids = Array.init 90 (fun _ -> Serve.insert s (random_obj rng)) in
      Array.iteri (fun i id -> if i mod 4 = 0 then Serve.delete s id) ids;
      ignore (Serve.maintain s);
      let path = Filename.temp_file "kwsc_serve" ".snap" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          Serve.checkpoint s path;
          match Serve.restore path with
          | Error e -> Alcotest.failf "restore: %s" (Kwsc_snapshot.Codec.error_to_string e)
          | Ok s' ->
              Alcotest.(check int) "watermark" (Serve.version s) (Serve.version s');
              Alcotest.(check int) "live count" (Serve.size s) (Serve.size s');
              Alcotest.(check (list int)) "frozen chain" (Serve.bucket_sizes s)
                (Serve.bucket_sizes s');
              for _ = 1 to 40 do
                let q = Helpers.random_rect rng ~d:2 ~range:100.0 in
                let ws = Helpers.random_keywords rng ~vocab:12 ~k:2 in
                let a, st = Serve.query_stats s q ws in
                let a', st' = Serve.query_stats s' q ws in
                Alcotest.(check (array int)) "answers round-trip" a a';
                check_stats_eq "logical counters round-trip" st st'
              done))

let suite =
  [
    Alcotest.test_case "epoch isolation" `Quick test_epoch_isolation;
    Alcotest.test_case "watermark protocol" `Quick test_watermark_protocol;
    Alcotest.test_case "maintenance merges small levels" `Quick
      test_maintain_merges_small_levels;
    Alcotest.test_case "batch equality at 1/2/4 domains" `Quick test_batch_pool_equality;
    Alcotest.test_case "concurrent reader" `Quick test_concurrent_reader;
    Alcotest.test_case "checkpoint/restore is exact" `Quick test_checkpoint_restore_exact;
    QCheck_alcotest.to_alcotest qcheck_serve_differential;
  ]
