(* Durable snapshots (DESIGN.md section 9): every Table-1 index module and
   the inverted baseline must round-trip through the versioned binary
   codec answer- and work-counter-identically, and every corrupted input
   — truncation, bit flips, bad magic or version — must come back as a
   typed [Codec.error], never an exception or a silently wrong index. *)

open Kwsc_geom
module C = Kwsc_snapshot.Codec
module Doc = Kwsc_invindex.Doc
module Prng = Kwsc_util.Prng

let with_snap f =
  let path = Filename.temp_file "kwsc_test" ".snap" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let ok_exn = function
  | Ok t -> t
  | Error e -> Alcotest.failf "snapshot load failed: %s" (C.error_to_string e)

(* work counters, minus alloc_words (an implementation detail of scratch
   buffer reuse, not of the answer path) *)
let counters (st : Kwsc.Stats.query) =
  ( st.Kwsc.Stats.nodes_visited,
    st.Kwsc.Stats.covered_nodes,
    st.Kwsc.Stats.crossing_nodes,
    st.Kwsc.Stats.pivot_checked,
    st.Kwsc.Stats.small_scanned,
    st.Kwsc.Stats.pruned_empty,
    st.Kwsc.Stats.pruned_geom,
    st.Kwsc.Stats.reported )

let check_query name (ids_c, st_c) (ids_w, st_w) =
  Helpers.check_ids (name ^ " ids") ids_c ids_w;
  Alcotest.(check bool) (name ^ " work counters") true (counters st_c = counters st_w)

(* ------------------------------------------------------------------ *)
(* Round trips: the seven Table-1 problems plus the inverted baseline   *)
(* ------------------------------------------------------------------ *)

let test_orp_roundtrip () =
  let module Orp = Kwsc.Orp_kw in
  let objs = Helpers.dataset ~seed:91 ~n:300 ~d:2 () in
  let cold = Orp.build ~k:2 objs in
  with_snap (fun path ->
      Orp.save path cold;
      let warm = ok_exn (Orp.load path) in
      Alcotest.(check int) "k" (Orp.k cold) (Orp.k warm);
      Alcotest.(check int) "dim" (Orp.dim cold) (Orp.dim warm);
      Alcotest.(check int) "input size" (Orp.input_size cold) (Orp.input_size warm);
      let rng = Prng.create 911 in
      for _ = 1 to 40 do
        let q = Helpers.random_rect rng ~d:2 ~range:1000.0 in
        let ws = Helpers.random_keywords rng ~vocab:40 ~k:2 in
        check_query "orp" (Orp.query_stats cold q ws) (Orp.query_stats warm q ws)
      done)

let test_sp_roundtrip () =
  let module Sp = Kwsc.Sp_kw in
  let objs = Helpers.dataset ~seed:92 ~n:250 ~d:2 () in
  let cold = Sp.build ~k:2 objs in
  with_snap (fun path ->
      Sp.save path cold;
      let warm = ok_exn (Sp.load path) in
      let rng = Prng.create 912 in
      for _ = 1 to 25 do
        let poly = Polytope.of_rect (Helpers.random_rect rng ~d:2 ~range:1000.0) in
        let ws = Helpers.random_keywords rng ~vocab:40 ~k:2 in
        check_query "sp" (Sp.query_stats cold poly ws) (Sp.query_stats warm poly ws)
      done)

let test_srp_roundtrip () =
  let module Srp = Kwsc.Srp_kw in
  let objs = Helpers.dataset ~seed:93 ~n:250 ~d:2 () in
  let cold = Srp.build ~k:2 objs in
  with_snap (fun path ->
      Srp.save path cold;
      let warm = ok_exn (Srp.load path) in
      let rng = Prng.create 913 in
      for _ = 1 to 25 do
        let c = [| Prng.float rng 1000.0; Prng.float rng 1000.0 |] in
        let s = Sphere.make c (50.0 +. Prng.float rng 300.0) in
        let ws = Helpers.random_keywords rng ~vocab:40 ~k:2 in
        check_query "srp" (Srp.query_stats cold s ws) (Srp.query_stats warm s ws)
      done)

let test_lc_roundtrip () =
  let module Lc = Kwsc.Lc_kw in
  let objs = Helpers.dataset ~seed:94 ~n:250 ~d:2 () in
  let cold = Lc.build ~k:2 objs in
  with_snap (fun path ->
      Lc.save path cold;
      let warm = ok_exn (Lc.load path) in
      let rng = Prng.create 914 in
      for _ = 1 to 25 do
        let hs =
          [
            Halfspace.make
              [| Prng.float rng 2.0 -. 1.0; Prng.float rng 2.0 -. 1.0 |]
              (Prng.float rng 1000.0);
          ]
        in
        let ws = Helpers.random_keywords rng ~vocab:40 ~k:2 in
        check_query "lc" (Lc.query_stats cold hs ws) (Lc.query_stats warm hs ws)
      done)

let test_nn_roundtrip () =
  let module L2 = Kwsc.L2_nn_kw in
  let module Linf = Kwsc.Linf_nn_kw in
  let objs = Helpers.dataset ~seed:95 ~n:250 ~d:2 () in
  let objs3 = Helpers.dataset ~seed:96 ~n:200 ~d:3 () in
  (* L2 requires small integer coordinates (the paraboloid lifting) *)
  let l2_objs =
    let rng = Prng.create 950 in
    let pts = Kwsc_workload.Gen.points_int ~rng ~n:250 ~d:2 ~max_coord:100 in
    let docs = Kwsc_workload.Gen.docs ~rng ~n:250 ~vocab:40 ~theta:0.8 ~len_min:1 ~len_max:5 in
    Array.init 250 (fun i -> (pts.(i), docs.(i)))
  in
  let l2_cold = L2.build ~k:2 l2_objs in
  (* exercise both engines: Theorem-1 kd (d=2) and Theorem-2 dimension
     reduction (d=3) *)
  let linf_kd = Linf.build ~engine:`Kd ~k:2 objs in
  let linf_dr = Linf.build ~engine:`Dimred ~k:2 objs3 in
  let probe d rng = Array.init d (fun _ -> Prng.float rng 1000.0) in
  let check_nn name cold_q warm_q =
    Alcotest.(check bool) name true (cold_q = warm_q)
  in
  with_snap (fun path ->
      L2.save path l2_cold;
      let warm = ok_exn (L2.load path) in
      let rng = Prng.create 915 in
      for _ = 1 to 20 do
        (* L2 query points must be integral as well *)
        let q = Array.init 2 (fun _ -> float_of_int (Prng.int rng 100)) in
        let t' = 1 + Prng.int rng 8 in
        let ws = Helpers.random_keywords rng ~vocab:40 ~k:2 in
        check_nn "l2 nn" (L2.query l2_cold q ~t' ws) (L2.query warm q ~t' ws)
      done);
  with_snap (fun path ->
      Linf.save path linf_kd;
      let warm = ok_exn (Linf.load path) in
      let rng = Prng.create 916 in
      for _ = 1 to 20 do
        let q = probe 2 rng and t' = 1 + Prng.int rng 8 in
        let ws = Helpers.random_keywords rng ~vocab:40 ~k:2 in
        check_nn "linf nn (kd)" (Linf.query linf_kd q ~t' ws) (Linf.query warm q ~t' ws)
      done);
  with_snap (fun path ->
      Linf.save path linf_dr;
      let warm = ok_exn (Linf.load path) in
      let rng = Prng.create 917 in
      for _ = 1 to 20 do
        let q = probe 3 rng and t' = 1 + Prng.int rng 8 in
        let ws = Helpers.random_keywords rng ~vocab:40 ~k:2 in
        check_nn "linf nn (dimred)" (Linf.query linf_dr q ~t' ws) (Linf.query warm q ~t' ws)
      done)

let rr_dataset ~seed ~n ~d =
  let rng = Prng.create seed in
  let rects =
    Array.init n (fun _ ->
        let lo = Array.init d (fun _ -> Prng.float rng 1000.0) in
        let hi = Array.map (fun x -> x +. Prng.float rng 80.0) lo in
        Rect.make lo hi)
  in
  let docs = Kwsc_workload.Gen.docs ~rng ~n ~vocab:30 ~theta:0.9 ~len_min:1 ~len_max:5 in
  Array.init n (fun i -> (rects.(i), docs.(i)))

let test_rr_roundtrip () =
  let module Rr = Kwsc.Rr_kw in
  (* one round trip per engine: kd (1d intervals), dimension reduction and
     the footnote-3 partition-tree route (2d rectangles) *)
  List.iter
    (fun (name, engine, d) ->
      let objs = rr_dataset ~seed:(97 + d) ~n:200 ~d in
      let cold = Rr.build ~engine ~k:2 objs in
      with_snap (fun path ->
          Rr.save path cold;
          let warm = ok_exn (Rr.load path) in
          let rng = Prng.create (918 + d) in
          for _ = 1 to 20 do
            let q = Helpers.random_rect rng ~d ~range:1000.0 in
            let ws = Helpers.random_keywords rng ~vocab:30 ~k:2 in
            check_query name (Rr.query_stats cold q ws) (Rr.query_stats warm q ws)
          done))
    [ ("rr kd", `Kd, 1); ("rr dimred", `Dimred, 2); ("rr lc", `Lc, 2) ]

let test_inverted_roundtrip () =
  let module Inv = Kwsc_invindex.Inverted in
  let docs = Array.map snd (Helpers.dataset ~seed:99 ~n:300 ~d:2 ()) in
  let cold = Inv.build docs in
  with_snap (fun path ->
      Inv.save path cold;
      let warm = ok_exn (Inv.load path) in
      let rng = Prng.create 919 in
      for _ = 1 to 40 do
        let k = 1 + Prng.int rng 3 in
        let ws = Helpers.random_keywords rng ~vocab:40 ~k in
        Helpers.check_ids "inverted ids" (Inv.query cold ws) (Inv.query warm ws)
      done;
      Alcotest.(check int) "input size" (Inv.input_size cold) (Inv.input_size warm))

(* ------------------------------------------------------------------ *)
(* Codec primitives                                                     *)
(* ------------------------------------------------------------------ *)

let test_crc32 () =
  (* the standard CRC-32 check vector, plus the empty string *)
  Alcotest.(check int) "crc32(123456789)" 0xCBF43926 (C.crc32 "123456789");
  Alcotest.(check int) "crc32(empty)" 0 (C.crc32 "")

let test_primitive_roundtrip () =
  let vints =
    [ 0; 1; -1; 63; 64; -64; -65; 8191; 8192; 1 lsl 30; -(1 lsl 30); max_int; min_int ]
  in
  (* one array per byte width the writer can pick, signed both ways *)
  let iarrays =
    [
      [||];
      [| 0 |];
      [| 127; -128 |];
      [| 128; -129 |];
      [| 40_000; -40_000 |];
      [| 1 lsl 25; -(1 lsl 25) |];
      [| 1 lsl 40; -(1 lsl 40); max_int; min_int |];
    ]
  in
  let farray = [| 0.0; -0.0; 3.25; nan; infinity; neg_infinity; Float.min_float |] in
  let rows = [| [| 1; 2; 3 |]; [||]; [| 42 |] |] in
  let s =
    C.to_string (fun w ->
        List.iter (C.W.vint w) vints;
        List.iter (C.W.int_array w) iarrays;
        C.W.float_array w farray;
        C.W.int_array2 w rows;
        C.W.str w "hello\x00world";
        C.W.bool w true;
        C.W.i64 w (-42);
        C.W.f64 w 2.5)
  in
  let r = C.R.of_string s in
  List.iter (fun v -> Alcotest.(check int) "vint" v (C.R.vint r)) vints;
  List.iter
    (fun a -> Alcotest.(check (array int)) "int_array" a (C.R.int_array r))
    iarrays;
  let back = C.R.float_array r in
  Alcotest.(check int) "float_array length" (Array.length farray) (Array.length back);
  Array.iteri
    (fun i v ->
      (* bit-exact, so NaN and signed zero survive *)
      Alcotest.(check int64) "float bits" (Int64.bits_of_float v) (Int64.bits_of_float back.(i)))
    farray;
  Alcotest.(check bool) "int_array2" true (rows = C.R.int_array2 r);
  Alcotest.(check string) "str" "hello\x00world" (C.R.str r);
  Alcotest.(check bool) "bool" true (C.R.bool r);
  Alcotest.(check int) "i64" (-42) (C.R.i64 r);
  Alcotest.(check (float 0.0)) "f64" 2.5 (C.R.f64 r);
  Alcotest.(check bool) "at_end" true (C.R.at_end r)

let test_reader_rejects () =
  let reads_err s f =
    match C.run (fun () -> f (C.R.of_string s)) with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "truncated i64" true (reads_err "abc" C.R.i64);
  Alcotest.(check bool) "truncated vint" true (reads_err "\x80\x80" C.R.vint);
  Alcotest.(check bool) "overlong varint" true
    (reads_err "\x80\x80\x80\x80\x80\x80\x80\x80\x80\x80\x01" C.R.vint);
  (* int-array header claiming more elements than there are bytes *)
  Alcotest.(check bool) "oversized count" true (reads_err "\xfe\xff\x07\x01" C.R.int_array);
  (* width byte outside {1,2,3,4,8} *)
  Alcotest.(check bool) "invalid width" true (reads_err "\x02\x05\xaa" C.R.int_array)

let test_file_framing () =
  with_snap (fun path ->
      C.save_file ~path ~kind:"kwsc.test" [ ("alpha", "AAAA"); ("beta", "B") ];
      let kind, sections = C.load_file_exn ~path in
      Alcotest.(check string) "kind" "kwsc.test" kind;
      Alcotest.(check (list (pair string string)))
        "sections"
        [ ("alpha", "AAAA"); ("beta", "B") ]
        sections;
      (match C.peek_kind ~path with
      | Ok k -> Alcotest.(check string) "peek kind" "kwsc.test" k
      | Error e -> Alcotest.failf "peek_kind: %s" (C.error_to_string e));
      match C.run (fun () -> C.load_kind_exn ~path ~kind:"kwsc.other") with
      | Error (C.Bad_kind { expected; got }) ->
          Alcotest.(check string) "expected" "kwsc.other" expected;
          Alcotest.(check string) "got" "kwsc.test" got
      | Ok _ | Error _ -> Alcotest.fail "wrong kind must be Bad_kind")

(* ------------------------------------------------------------------ *)
(* Corruption: typed errors, never crashes or silent acceptance         *)
(* ------------------------------------------------------------------ *)

let small_orp () = Kwsc.Orp_kw.build ~k:2 (Helpers.dataset ~seed:77 ~n:60 ~d:2 ())

let read_all path = In_channel.with_open_bin path In_channel.input_all

let write_all path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let test_error_typing () =
  (match Kwsc.Orp_kw.load "/nonexistent/dir/missing.snap" with
  | Error (C.Io _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "missing file must be Io");
  with_snap (fun path ->
      write_all path "";
      (match Kwsc.Orp_kw.load path with
      | Error C.Bad_magic -> ()
      | Ok _ | Error _ -> Alcotest.fail "empty file must be Bad_magic");
      let t = small_orp () in
      Kwsc.Orp_kw.save path t;
      let good = read_all path in
      let b = Bytes.of_string good in
      Bytes.set b 0 'X';
      write_all path (Bytes.to_string b);
      (match Kwsc.Orp_kw.load path with
      | Error C.Bad_magic -> ()
      | Ok _ | Error _ -> Alcotest.fail "mangled magic must be Bad_magic");
      (* the version int64 starts right after the 8-byte magic *)
      let b = Bytes.of_string good in
      Bytes.set b 8 (Char.chr (Char.code (Bytes.get b 8) + 1));
      write_all path (Bytes.to_string b);
      (match Kwsc.Orp_kw.load path with
      | Error (C.Bad_version v) ->
          Alcotest.(check int) "reported version" (C.format_version + 1) v
      | Ok _ | Error _ -> Alcotest.fail "future version must be Bad_version");
      (* a valid snapshot of another module *)
      write_all path good;
      match Kwsc_invindex.Inverted.load path with
      | Error (C.Bad_kind { expected; got }) ->
          Alcotest.(check string) "expected" Kwsc_invindex.Inverted.kind expected;
          Alcotest.(check string) "got" Kwsc.Orp_kw.kind got
      | Ok _ | Error _ -> Alcotest.fail "wrong module must be Bad_kind")

let test_truncation_sweep () =
  let t = small_orp () in
  with_snap (fun path ->
      Kwsc.Orp_kw.save path t;
      let good = read_all path in
      let n = String.length good in
      List.iter
        (fun keep ->
          write_all path (String.sub good 0 keep);
          match Kwsc.Orp_kw.load path with
          | Error _ -> ()
          | Ok _ -> Alcotest.failf "accepted a %d/%d-byte truncation" keep n)
        [ 0; 4; 8; 12; n / 4; n / 2; n - 1 ])

(* Flipping any single byte must never corrupt silently: the header
   fields are validated and every section payload is covered by its CRC.
   The one benign family is a flip inside the version field that lands
   on another *supported* version (e.g. 3 -> 2): the payloads are
   untouched and still checksum-clean, and ORP's layout is the same at
   every supported version, so such a file may load — but then it must
   answer exactly like the original. *)
let qcheck_bit_flip =
  let good =
    lazy
      (let t = small_orp () in
       with_snap (fun path ->
           Kwsc.Orp_kw.save path t;
           (t, read_all path)))
  in
  QCheck.Test.make ~name:"single byte flip is always a typed load error" ~count:150
    QCheck.(small_nat)
    (fun off ->
      let cold, good = Lazy.force good in
      let off = off mod String.length good in
      let b = Bytes.of_string good in
      Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 1));
      with_snap (fun path ->
          write_all path (Bytes.to_string b);
          match Kwsc.Orp_kw.load path with
          | Error _ -> true
          | Ok warm ->
              (* only a version-field flip may load; answers must match *)
              off >= 8 && off < 16
              &&
              let rng = Prng.create 912 in
              let ok = ref true in
              for _ = 1 to 10 do
                let q = Helpers.random_rect rng ~d:2 ~range:1000.0 in
                let ws = Helpers.random_keywords rng ~vocab:40 ~k:2 in
                if Kwsc.Orp_kw.query cold q ws <> Kwsc.Orp_kw.query warm q ws then ok := false
              done;
              !ok))


(* ------------------------------------------------------------------ *)
(* Hybrid posting containers (PR 5): v2 layout, v1 back-compat          *)
(* ------------------------------------------------------------------ *)

module Inv = Kwsc_invindex.Inverted
module Pst = Kwsc_invindex.Postings
module Cont = Kwsc_util.Container
module Ibuf = Kwsc_util.Ibuf

(* mixed-density documents so the hybrid build yields all three container
   kinds: words 1..4 dense (~n/8 objects each), 11..14 one contiguous
   block each, 21..120 sparse tails *)
let mixed_docs ~seed ~n =
  let rng = Prng.create seed in
  Array.init n (fun i ->
      let b = Ibuf.create ~capacity:8 () in
      for w = 1 to 4 do
        if Prng.int rng 8 = 0 then Ibuf.push b w
      done;
      for j = 0 to 3 do
        let lo = j * (n / 4) and len = n / 8 in
        if i >= lo && i < lo + len then Ibuf.push b (11 + j)
      done;
      Ibuf.push b (21 + Prng.int rng 100);
      Doc.of_array (Ibuf.to_array b))

let check_inv_answers name cold warm =
  let rng = Prng.create 0x5eed in
  for _ = 1 to 60 do
    let k = 1 + Prng.int rng 3 in
    let ws = Array.init k (fun _ -> 1 + Prng.int rng 120) in
    Helpers.check_ids name (Inv.query cold ws) (Inv.query warm ws)
  done

let test_hybrid_inverted_roundtrip () =
  let cold = Inv.build (mixed_docs ~seed:1201 ~n:2048) in
  let s_c, d_c, r_c = Pst.kind_counts (Inv.postings cold) in
  Alcotest.(check bool) "all three kinds present" true (s_c > 0 && d_c > 0 && r_c > 0);
  with_snap (fun path ->
      Inv.save path cold;
      let warm = ok_exn (Inv.load path) in
      (* the physical layout round-trips exactly: same kind and
         cardinality per rank, not just the same answers *)
      Alcotest.(check bool) "kind counts preserved" true
        (Pst.kind_counts (Inv.postings warm) = (s_c, d_c, r_c));
      let pc = Inv.postings cold and pw = Inv.postings warm in
      for r = 0 to Pst.num_words pc - 1 do
        Alcotest.(check int) "word" (Pst.word pc r) (Pst.word pw r);
        Alcotest.(check bool) "rank kind" true
          (Cont.kind (Pst.container pc r) = Cont.kind (Pst.container pw r));
        Alcotest.(check int) "rank cardinality"
          (Cont.cardinality (Pst.container pc r))
          (Cont.cardinality (Pst.container pw r))
      done;
      check_inv_answers "hybrid inverted" cold warm;
      (* bit-exact: a second save of the loaded index reproduces the
         file byte for byte *)
      with_snap (fun path2 ->
          Inv.save path2 warm;
          Alcotest.(check bool) "save/load/save is byte-stable" true
            (read_all path = read_all path2)))

let test_inverted_v1_compat () =
  (* hand-write the version-1 flat-arena layout (vocab, offsets,
     concatenated sorted spans) and load it through today's reader *)
  let docs = mixed_docs ~seed:1301 ~n:1024 in
  let cold = Inv.build docs in
  let ps = Inv.postings cold in
  let nw = Pst.num_words ps in
  let vocab = Array.init nw (Pst.word ps) in
  let offsets = Array.make (nw + 1) 0 in
  let arena = Ibuf.create () in
  for r = 0 to nw - 1 do
    Array.iter (Ibuf.push arena) (Cont.to_sorted_array (Pst.container ps r));
    offsets.(r + 1) <- Ibuf.length arena
  done;
  with_snap (fun path ->
      C.save_file ~version:1 ~path ~kind:Inv.kind
        [
          ( "meta",
            C.to_string (fun w ->
                C.W.i64 w (Array.length docs);
                C.W.i64 w nw;
                C.W.i64 w (Inv.input_size cold)) );
          ( "index",
            C.to_string (fun w ->
                C.W.i64 w (Inv.input_size cold);
                C.W.int_array2 w (Array.map (fun (d : Doc.t) -> (d :> int array)) docs);
                C.W.int_array w vocab;
                C.W.int_array w offsets;
                C.W.int_array w (Ibuf.to_array arena)) );
        ];
      let warm = ok_exn (Inv.load path) in
      Alcotest.(check int) "input size" (Inv.input_size cold) (Inv.input_size warm);
      (* the old flat spans reclassify under the hybrid policy on load *)
      let _, d_w, r_w = Pst.kind_counts (Inv.postings warm) in
      Alcotest.(check bool) "v1 load promotes containers" true (d_w > 0 && r_w > 0);
      check_inv_answers "v1 inverted" cold warm)

(* corruption over the container columns: truncating any v3 column
   payload at any depth — even re-framed with a freshly valid CRC —
   must surface as a typed error from the column-budget checks, never a
   crash or a wrong index *)
let test_hybrid_section_corruption () =
  let cold = Inv.build (mixed_docs ~seed:1401 ~n:1024) in
  with_snap (fun path ->
      Inv.save path cold;
      let _, sections = C.load_file_exn ~path in
      let names = List.map fst sections in
      List.iter
        (fun name ->
          Alcotest.(check bool) (Printf.sprintf "v3 section %s present" name) true
            (List.mem name names))
        [ "meta"; "docs"; "vocab"; "sparsedir"; "sparse.0"; "runcounts"; "runs"; "dense" ];
      List.iter
        (fun victim ->
          let payload = List.assoc victim sections in
          let n = String.length payload in
          List.iter
            (fun keep ->
              if keep >= 0 && keep < n then
                with_snap (fun path2 ->
                    C.save_file ~path:path2 ~kind:Inv.kind
                      (List.map
                         (fun (name, p) ->
                           (name, if String.equal name victim then String.sub p 0 keep else p))
                         sections);
                    match Inv.load path2 with
                    | Error _ -> ()
                    | Ok _ ->
                        Alcotest.failf "accepted a %d/%d-byte %s section" keep n victim))
            [ 0; 1; n / 8; n / 4; n / 2; (3 * n) / 4; n - 2; n - 1 ])
        [ "docs"; "vocab"; "sparsedir"; "sparse.0"; "runcounts"; "runs"; "dense" ];
      (* whole-file bit flips are caught by the section CRCs *)
      let good = read_all path in
      let len = String.length good in
      for i = 0 to 39 do
        let off = i * (len / 40) in
        let b = Bytes.of_string good in
        Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0x10));
        with_snap (fun path2 ->
            write_all path2 (Bytes.to_string b);
            match Inv.load path2 with
            | Error _ -> ()
            | Ok _ -> Alcotest.failf "accepted a flipped byte at offset %d" off)
      done)

(* ------------------------------------------------------------------ *)
(* Sharded snapshots (lib/shard): per-shard sections, reshard-on-load   *)
(* ------------------------------------------------------------------ *)

module Sh = Kwsc_shard.Surfaces
module SPlan = Kwsc_shard.Plan

let find_sub hay needle =
  let n = String.length hay and m = String.length needle in
  let rec go i =
    if i + m > n then None
    else if String.sub hay i m = needle then Some i
    else go (i + 1)
  in
  if m = 0 then None else go 0

let test_sharded_roundtrip () =
  let docs = mixed_docs ~seed:2101 ~n:512 in
  let mono = Inv.build docs in
  List.iter
    (fun shards ->
      let what = Printf.sprintf "sharded inverted K=%d" shards in
      let cold = Sh.Inverted.build ~plan:(SPlan.Hash, shards) Cont.Hybrid docs in
      with_snap (fun path ->
          Sh.Inverted.save path cold;
          let warm = ok_exn (Sh.Inverted.load path) in
          Alcotest.(check int) (what ^ ": shards preserved") shards (Sh.Inverted.shards warm);
          Alcotest.(check int)
            (what ^ ": input size")
            (Inv.input_size mono)
            (Sh.Inverted.input_size warm);
          let rng = Prng.create (3000 + shards) in
          for _ = 1 to 40 do
            let k = 1 + Prng.int rng 3 in
            let ws = Array.init k (fun _ -> 1 + Prng.int rng 120) in
            let expect = Inv.query mono ws in
            Helpers.check_ids (what ^ ": cold answers") expect (Sh.Inverted.query cold ws);
            Helpers.check_ids (what ^ ": warm answers") expect (Sh.Inverted.query warm ws)
          done))
    [ 1; 3; 8 ];
  (* ORP: merged work counters round-trip too *)
  let objs = Helpers.dataset ~seed:2102 ~n:150 ~d:2 () in
  let cold = Sh.Orp.build ~plan:(SPlan.Range, 3) 2 objs in
  with_snap (fun path ->
      Sh.Orp.save path cold;
      let warm = ok_exn (Sh.Orp.load path) in
      let rng = Prng.create 2103 in
      for _ = 1 to 20 do
        let q = Helpers.random_rect rng ~d:2 ~range:1000.0 in
        let ws = Helpers.random_keywords rng ~vocab:40 ~k:2 in
        check_query "sharded orp" (Sh.Orp.query_stats cold (q, ws))
          (Sh.Orp.query_stats warm (q, ws))
      done);
  (* RR: the third sharded surface *)
  let rects =
    Array.map
      (fun (p, doc) -> (Rect.make [| p.(0) |] [| p.(0) +. 20.0 |], doc))
      (Helpers.dataset ~seed:2104 ~n:120 ~d:1 ())
  in
  let cold = Sh.Rr.build ~plan:(SPlan.Hash, 4) 2 rects in
  with_snap (fun path ->
      Sh.Rr.save path cold;
      let warm = ok_exn (Sh.Rr.load path) in
      let rng = Prng.create 2105 in
      for _ = 1 to 20 do
        let q = Helpers.random_rect rng ~d:1 ~range:1020.0 in
        let ws = Helpers.random_keywords rng ~vocab:40 ~k:2 in
        check_query "sharded rr" (Sh.Rr.query_stats cold (q, ws)) (Sh.Rr.query_stats warm (q, ws))
      done)

(* Corrupt exactly one shard section: the typed refusal must name that
   shard, and the same file with the section intact must load — the rot
   never spreads past its section. *)
let test_sharded_corrupt_one_shard () =
  let docs = mixed_docs ~seed:2201 ~n:400 in
  let t = Sh.Inverted.build ~plan:(SPlan.Hash, 4) Cont.Hybrid docs in
  with_snap (fun path ->
      Sh.Inverted.save path t;
      let _, sections = C.load_file_exn ~path in
      Alcotest.(check (list string))
        "one section per shard plus meta"
        [ "meta"; "shard.0"; "shard.1"; "shard.2"; "shard.3" ]
        (List.map fst sections);
      let good = read_all path in
      let payload = List.assoc "shard.2" sections in
      let off =
        match find_sub good payload with
        | Some o -> o + (String.length payload / 2)
        | None -> Alcotest.fail "shard.2 payload not found in the raw file"
      in
      let b = Bytes.of_string good in
      Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0x40));
      with_snap (fun path2 ->
          write_all path2 (Bytes.to_string b);
          (match Sh.Inverted.load path2 with
          | Error (C.Checksum_mismatch section) ->
              Alcotest.(check string) "refusal names the corrupt shard" "shard.2" section
          | Ok _ -> Alcotest.fail "accepted a corrupt shard section"
          | Error e ->
              Alcotest.failf "expected Checksum_mismatch, got %s" (C.error_to_string e));
          (* healthy sections are untouched: restoring shard.2 alone heals
             the snapshot *)
          write_all path2 good;
          ignore (ok_exn (Sh.Inverted.load path2))));
  (* a missing shard section is refused with a typed error too *)
  with_snap (fun path ->
      Sh.Inverted.save path t;
      let _, sections = C.load_file_exn ~path in
      with_snap (fun path2 ->
          C.save_file ~path:path2 ~kind:Sh.Inverted.kind
            (List.filter (fun (name, _) -> name <> "shard.1") sections);
          match Sh.Inverted.load path2 with
          | Error (C.Malformed msg) ->
              Alcotest.(check bool) "error names the missing shard" true
                (find_sub msg "shard.1" <> None)
          | Ok _ -> Alcotest.fail "accepted a snapshot missing a shard section"
          | Error e -> Alcotest.failf "expected Malformed, got %s" (C.error_to_string e)))

(* Loading a v2 *unsharded* snapshot into a sharded index repartitions
   the decoded objects (reshard-on-load). *)
let test_reshard_on_load () =
  let docs = mixed_docs ~seed:2301 ~n:512 in
  let mono = Inv.build docs in
  with_snap (fun path ->
      Inv.save path mono;
      let resharded = ok_exn (Sh.Inverted.load ~plan:(SPlan.Hash, 3) path) in
      Alcotest.(check int) "resharded into 3" 3 (Sh.Inverted.shards resharded);
      Alcotest.(check int) "input size survives" (Inv.input_size mono)
        (Sh.Inverted.input_size resharded);
      let rng = Prng.create 2302 in
      for _ = 1 to 40 do
        let k = 1 + Prng.int rng 3 in
        let ws = Array.init k (fun _ -> 1 + Prng.int rng 120) in
        Helpers.check_ids "resharded inverted answers" (Inv.query mono ws)
          (Sh.Inverted.query resharded ws)
      done);
  (* ORP reshards exactly: the rank tables surrender the original
     coordinates bit for bit *)
  let objs = Helpers.dataset ~seed:2303 ~n:150 ~d:2 () in
  let morp = Kwsc.Orp_kw.build ~k:2 objs in
  with_snap (fun path ->
      Kwsc.Orp_kw.save path morp;
      let resharded = ok_exn (Sh.Orp.load ~plan:(SPlan.Range, 4) path) in
      Alcotest.(check int) "orp resharded into 4" 4 (Sh.Orp.shards resharded);
      let rng = Prng.create 2304 in
      for _ = 1 to 20 do
        let q = Helpers.random_rect rng ~d:2 ~range:1000.0 in
        let ws = Helpers.random_keywords rng ~vocab:40 ~k:2 in
        Helpers.check_ids "resharded orp answers" (Kwsc.Orp_kw.query morp q ws)
          (Sh.Orp.query resharded (q, ws))
      done;
      (* and the reverse direction: a sharded snapshot refuses to load as
         the plain module (it is a different kind) *)
      with_snap (fun path2 ->
          Sh.Orp.save path2 resharded;
          match Kwsc.Orp_kw.load path2 with
          | Error (C.Bad_kind { got; _ }) ->
              Alcotest.(check string) "sharded kind is distinct" Sh.Orp.kind got
          | Ok _ | Error _ -> Alcotest.fail "sharded snapshot must be Bad_kind here"));
  (* RR cannot surrender its build input: typed refusal, not a crash *)
  let rects =
    Array.map
      (fun (p, doc) -> (Rect.make [| p.(0) |] [| p.(0) +. 10.0 |], doc))
      (Helpers.dataset ~seed:2305 ~n:80 ~d:1 ())
  in
  let mrr = Kwsc.Rr_kw.build ~k:2 rects in
  with_snap (fun path ->
      Kwsc.Rr_kw.save path mrr;
      match Sh.Rr.load ~plan:(SPlan.Hash, 2) path with
      | Error (C.Malformed msg) ->
          Alcotest.(check bool) "refusal mentions resharding" true
            (find_sub msg "reshard" <> None)
      | Ok _ -> Alcotest.fail "RR reshard-on-load must be refused"
      | Error e -> Alcotest.failf "expected Malformed, got %s" (C.error_to_string e))

let suite =
  [
    Alcotest.test_case "orp round trip" `Quick test_orp_roundtrip;
    Alcotest.test_case "sp round trip" `Quick test_sp_roundtrip;
    Alcotest.test_case "srp round trip" `Quick test_srp_roundtrip;
    Alcotest.test_case "lc round trip" `Quick test_lc_roundtrip;
    Alcotest.test_case "nn round trips (l2 + linf engines)" `Quick test_nn_roundtrip;
    Alcotest.test_case "rr round trips (all engines)" `Quick test_rr_roundtrip;
    Alcotest.test_case "inverted round trip" `Quick test_inverted_roundtrip;
    Alcotest.test_case "hybrid inverted round trip is byte-stable" `Quick
      test_hybrid_inverted_roundtrip;
    Alcotest.test_case "v1 flat-arena snapshots still load" `Quick test_inverted_v1_compat;
    Alcotest.test_case "container section corruption is typed" `Quick
      test_hybrid_section_corruption;
    Alcotest.test_case "sharded round trips (inverted, orp, rr)" `Quick
      test_sharded_roundtrip;
    Alcotest.test_case "corrupt shard section is refused by name" `Quick
      test_sharded_corrupt_one_shard;
    Alcotest.test_case "unsharded snapshots reshard on load" `Quick test_reshard_on_load;
    Alcotest.test_case "crc32 check vector" `Quick test_crc32;
    Alcotest.test_case "primitive round trips" `Quick test_primitive_roundtrip;
    Alcotest.test_case "reader rejects malformed input" `Quick test_reader_rejects;
    Alcotest.test_case "file framing" `Quick test_file_framing;
    Alcotest.test_case "typed errors" `Quick test_error_typing;
    Alcotest.test_case "truncation sweep" `Quick test_truncation_sweep;
    QCheck_alcotest.to_alcotest qcheck_bit_flip;
  ]
