(* Differential suite for the hybrid posting containers (PR 5): random
   id sets pushed through all three physical layouts must agree with
   plain sorted-array reference semantics for membership, intersection,
   union and iteration — every kind pair, every intersection strategy —
   and the automatic classifier must flip layouts exactly at the
   documented density thresholds. *)

module C = Kwsc_util.Container
module Ibuf = Kwsc_util.Ibuf
module Prng = Kwsc_util.Prng

(* ---------- reference semantics on plain sorted arrays ---------- *)

let ref_inter a b = List.filter (fun x -> Array.mem x b) (Array.to_list a)

let ref_union a b =
  List.sort_uniq compare (Array.to_list a @ Array.to_list b)

let ref_inter_all = function
  | [] -> invalid_arg "ref_inter_all"
  | first :: rest ->
      List.filter
        (fun x -> List.for_all (fun arr -> Array.mem x arr) rest)
        (Array.to_list first)

(* ---------- random set generation ---------- *)

(* a strictly increasing id set over [0, universe); [shape] picks the
   density regime so every layout arises naturally *)
let gen_set rng ~universe ~shape =
  let keep =
    match shape with
    | `Sparse -> fun _ -> Prng.int rng universe < 8
    | `Dense -> fun _ -> Prng.int rng 3 = 0
    | `Clustered ->
        let block = ref false in
        fun i ->
          if i mod (4 + Prng.int rng 13) = 0 then block := not !block;
          !block
    | `Empty -> fun _ -> false
  in
  let b = Ibuf.create () in
  for i = 0 to universe - 1 do
    if keep i then Ibuf.push b i
  done;
  Ibuf.to_array b

(* every kind the set can legally take: Dense and Runs layouts exist for
   any set (an empty set only as Sparse — the builders reject card = 0
   bitmaps with stray bits, but Dense/Runs of [||] are fine too) *)
let forced_kinds = [ C.Sparse; C.Dense; C.Runs ]

let containers_of rng ~universe ids =
  let auto = C.of_sorted_array ~universe (Array.copy ids) in
  let forced =
    List.map (fun k -> C.of_sorted_array_kind k ~universe (Array.copy ids)) forced_kinds
  in
  (* shuffle in the auto pick so kind pairs (auto x forced) also mix *)
  ignore rng;
  auto :: forced

let shapes = [| `Sparse; `Dense; `Clustered; `Empty |]

(* ---------- the differential property ---------- *)

let check_one_set ids cs ~universe =
  let ids_l = Array.to_list ids in
  List.iter
    (fun c ->
      Alcotest.(check int) "cardinality" (Array.length ids) (C.cardinality c);
      Alcotest.(check int) "recount" (Array.length ids) (C.recount c);
      Alcotest.(check (list int)) "to_sorted_array" ids_l (Array.to_list (C.to_sorted_array c));
      (* iter ascending == the reference order *)
      let seen = ref [] in
      C.iter (fun x -> seen := x :: !seen) c;
      Alcotest.(check (list int)) "iter order" ids_l (List.rev !seen);
      (* membership at and around every id, plus the borders *)
      List.iter
        (fun x ->
          Alcotest.(check bool) "mem present" true (C.mem c x);
          if not (Array.mem (x + 1) ids) && x + 1 < universe then
            Alcotest.(check bool) "mem absent" false (C.mem c (x + 1)))
        ids_l;
      Alcotest.(check bool) "mem out of range lo" false (C.mem c (-1));
      Alcotest.(check bool) "mem out of range hi" false (C.mem c universe))
    cs

let check_pair a_ids b_ids ca cb =
  let want_i = ref_inter a_ids b_ids in
  let want_u = ref_union a_ids b_ids in
  let out = Ibuf.create () in
  C.inter_into ca cb out;
  Alcotest.(check (list int)) "inter_into" want_i (Array.to_list (Ibuf.to_array out));
  Ibuf.clear out;
  C.inter_into cb ca out;
  Alcotest.(check (list int)) "inter_into commutes" want_i (Array.to_list (Ibuf.to_array out));
  Ibuf.clear out;
  C.union_into ca cb out;
  Alcotest.(check (list int)) "union_into" want_u (Array.to_list (Ibuf.to_array out));
  Ibuf.clear out;
  C.inter_span_into a_ids ~lo:0 ~hi:(Array.length a_ids) cb out;
  Alcotest.(check (list int)) "inter_span_into" want_i (Array.to_list (Ibuf.to_array out))

let qcheck_container_diff =
  QCheck.Test.make ~count:60 ~name:"hybrid containers == sorted-array reference"
    QCheck.(small_int)
    (fun seed ->
      let rng = Prng.create (0x60d + seed) in
      let universe = 24 + Prng.int rng 400 in
      let sa = shapes.(Prng.int rng 4) and sb = shapes.(Prng.int rng 4) in
      let a_ids = gen_set rng ~universe ~shape:sa in
      let b_ids = gen_set rng ~universe ~shape:sb in
      let cas = containers_of rng ~universe a_ids in
      let cbs = containers_of rng ~universe b_ids in
      check_one_set a_ids cas ~universe;
      check_one_set b_ids cbs ~universe;
      (* every kind pair, both directions *)
      List.iter (fun ca -> List.iter (fun cb -> check_pair a_ids b_ids ca cb) cbs) cas;
      true)

(* every strategy answers the same multi-way intersection; And_words
   degrades safely when inputs are not all dense *)
let qcheck_strategies =
  QCheck.Test.make ~count:60 ~name:"intersect_query strategies agree"
    QCheck.(small_int)
    (fun seed ->
      let rng = Prng.create (0x57a + seed) in
      let universe = 24 + Prng.int rng 300 in
      let k = 2 + Prng.int rng 3 in
      let idss =
        List.init k (fun _ -> gen_set rng ~universe ~shape:shapes.(Prng.int rng 4))
      in
      let want = ref_inter_all idss in
      let mk kindsel =
        Array.of_list
          (List.map
             (fun ids ->
               match kindsel with
               | `Auto -> C.of_sorted_array ~universe (Array.copy ids)
               | `Forced -> C.of_sorted_array_kind
                              (List.nth forced_kinds (Prng.int rng 3))
                              ~universe (Array.copy ids))
             idss)
      in
      let out = Ibuf.create () and tmp = Ibuf.create () in
      List.iter
        (fun kindsel ->
          let cs = mk kindsel in
          List.iter
            (fun strat ->
              C.intersect_query strat cs ~out ~tmp;
              Alcotest.(check (list int))
                "strategy answer" want
                (Array.to_list (Ibuf.to_array out)))
            [ C.Chain; C.Probe; C.And_words; Kwsc_util.Planner.choose cs ])
        [ `Auto; `Forced; `Forced ];
      true)

(* ---------- wide-kernel word boundaries (PR 8) ---------- *)

(* universes straddling the 63-bit word edge (62/63/64), the two-word
   edge (126/127) and the eight-word unroll stride 63 * 8 = 504
   (503/504/505): every kernel — membership, pairwise intersection,
   AND-count, span probing — must agree with the sorted-array reference
   on both sides of each boundary, for every kind pair. *)
let wide_universes = [ 62; 63; 64; 126; 127; 503; 504; 505 ]

let test_wide_boundaries () =
  let rng = Prng.create 0x3f in
  List.iter
    (fun universe ->
      (* adversarial sets for the last-word masks alongside the random
         shapes: empty, full, and the single topmost id *)
      let extremes =
        [ [||]; Array.init universe (fun i -> i); [| universe - 1 |] ]
      in
      let randoms =
        List.concat_map
          (fun shape -> [ gen_set rng ~universe ~shape ])
          [ `Sparse; `Dense; `Clustered ]
      in
      let sets = extremes @ randoms in
      List.iter
        (fun a_ids ->
          let cas = containers_of rng ~universe a_ids in
          check_one_set a_ids cas ~universe;
          List.iter
            (fun b_ids ->
              let cbs = containers_of rng ~universe b_ids in
              let want_i = ref_inter a_ids b_ids in
              let want_card = List.length want_i in
              let out = Ibuf.create () in
              List.iter
                (fun ca ->
                  List.iter
                    (fun cb ->
                      Ibuf.clear out;
                      C.inter_into ca cb out;
                      Alcotest.(check (list int)) "inter_into" want_i
                        (Array.to_list (Ibuf.to_array out));
                      Ibuf.clear out;
                      C.inter_span_into a_ids ~lo:0 ~hi:(Array.length a_ids) cb out;
                      Alcotest.(check (list int)) "inter_span_into" want_i
                        (Array.to_list (Ibuf.to_array out));
                      Alcotest.(check int) "inter_card" want_card (C.inter_card ca cb);
                      Alcotest.(check int) "inter_card commutes" want_card
                        (C.inter_card cb ca))
                    cbs)
                cas)
            sets)
        sets)
    wide_universes

(* ---------- feedback never changes an answer (PR 8) ---------- *)

(* Whatever the observed pair cardinality — absent, zero, tiny, or a lie
   larger than any input — the planner's pick still computes the exact
   intersection, with feedback enabled and disabled. *)
let qcheck_feedback_identity =
  QCheck.Test.make ~count:40 ~name:"selectivity feedback changes only the strategy"
    QCheck.(small_int)
    (fun seed ->
      let rng = Prng.create (0xfeed + seed) in
      let universe = 24 + Prng.int rng 500 in
      let k = 2 + Prng.int rng 3 in
      let idss =
        List.init k (fun _ -> gen_set rng ~universe ~shape:shapes.(Prng.int rng 4))
      in
      let want = ref_inter_all idss in
      let cs =
        Array.of_list
          (List.map (fun ids -> C.of_sorted_array ~universe (Array.copy ids)) idss)
      in
      Array.sort (fun a b -> Int.compare (C.cardinality a) (C.cardinality b)) cs;
      let module P = Kwsc_util.Planner in
      let saved = !P.feedback_enabled in
      Fun.protect
        ~finally:(fun () -> P.feedback_enabled := saved)
        (fun () ->
          let out = Ibuf.create () and tmp = Ibuf.create () in
          List.iter
            (fun fb ->
              P.feedback_enabled := fb;
              List.iter
                (fun observed ->
                  C.intersect_query (P.choose ~observed cs) cs ~out ~tmp;
                  Alcotest.(check (list int))
                    (Printf.sprintf "feedback=%b observed=%d" fb observed)
                    want
                    (Array.to_list (Ibuf.to_array out)))
                [ -1; 0; 1; C.cardinality cs.(0); universe ])
            [ true; false ]);
      true)

(* ---------- classification thresholds ---------- *)

(* card * dense_cutoff >= universe gates dense *eligibility*; the chosen
   layout is then the smallest footprint among the eligible ones, ties
   preferring Sparse — so the observable flip sits at the footprint
   crossover card > universe/32 words *)
let test_dense_threshold () =
  let universe = 4096 in
  (* scattered ids (stride 2: alternating, nruns = card so runs are never
     eligible) around both boundaries *)
  let at = universe / C.dense_cutoff in
  let words = (universe + 31) / 32 in
  let mk card = Array.init card (fun i -> 2 * i) in
  Alcotest.(check bool) "below eligibility: sparse" true
    (C.kind (C.of_sorted_array ~universe (mk (at - 1))) = C.Sparse);
  Alcotest.(check bool) "eligible but still smaller as array: sparse" true
    (C.kind (C.of_sorted_array ~universe (mk at)) = C.Sparse);
  Alcotest.(check bool) "footprint tie prefers sparse" true
    (C.kind (C.of_sorted_array ~universe (mk words)) = C.Sparse);
  Alcotest.(check bool) "past the crossover: dense" true
    (C.kind (C.of_sorted_array ~universe (mk (words + 1))) = C.Dense);
  (* the forced variants agree with the reference semantics either way *)
  List.iter
    (fun card ->
      let ids = mk card in
      List.iter
        (fun k ->
          let c = C.of_sorted_array_kind k ~universe (Array.copy ids) in
          Alcotest.(check (list int))
            "promotion/demotion preserves the set" (Array.to_list ids)
            (Array.to_list (C.to_sorted_array c)))
        forced_kinds)
    [ at; at - 1; words; words + 1 ]

(* nruns * runs_cutoff <= card flips run eligibility *)
let test_runs_threshold () =
  let universe = 4096 in
  (* nr runs of length len each: card = nr * len, nruns = nr *)
  let mk ~nr ~len =
    Array.init (nr * len) (fun i ->
        let r = i / len and o = i mod len in
        (r * 2 * len) + o)
  in
  (* eligible exactly when len >= runs_cutoff *)
  let ids_el = mk ~nr:8 ~len:C.runs_cutoff in
  let ids_not = mk ~nr:8 ~len:(C.runs_cutoff - 1) in
  let c_el = C.of_sorted_array ~universe ids_el in
  let c_not = C.of_sorted_array ~universe ids_not in
  Alcotest.(check bool) "at cutoff: runs" true (C.kind c_el = C.Runs);
  Alcotest.(check bool) "below cutoff: not runs" true (C.kind c_not <> C.Runs);
  Alcotest.(check int) "run_count exact" 8 (C.run_count c_el);
  (* classify agrees with what of_sorted_array picked *)
  Alcotest.(check bool) "classify matches build" true
    (C.classify ~policy:C.Hybrid ~universe ~card:(Array.length ids_el)
       ~nruns:(C.run_count c_el)
    = C.kind c_el)

let test_sparse_only_policy () =
  let universe = 1024 in
  let ids = Array.init 512 (fun i -> 2 * i) in
  let c = C.of_sorted_array ~policy:C.Sparse_only ~universe ids in
  Alcotest.(check bool) "Sparse_only never promotes" true (C.kind c = C.Sparse);
  let full = Array.init universe (fun i -> i) in
  let c = C.of_sorted_array ~policy:C.Sparse_only ~universe full in
  Alcotest.(check bool) "even the full universe stays sparse" true (C.kind c = C.Sparse)

(* round-trip through the snapshot encode surfaces *)
let test_codec_surfaces () =
  let universe = 777 in
  let rng = Prng.create 0xdec0 in
  let ids = gen_set rng ~universe ~shape:`Clustered in
  let r = C.of_sorted_array_kind C.Runs ~universe (Array.copy ids) in
  let r' = C.of_runs ~universe (C.runs_pairs r) in
  Alcotest.(check (list int)) "runs_pairs round trip" (Array.to_list ids)
    (Array.to_list (C.to_sorted_array r'));
  let d = C.of_sorted_array_kind C.Dense ~universe (Array.copy ids) in
  let d' = C.of_dense_bytes ~universe ~card:(Array.length ids) (C.dense_bytes d) ~off:0 in
  Alcotest.(check (list int)) "dense_bytes round trip" (Array.to_list ids)
    (Array.to_list (C.to_sorted_array d'))

(* v2 snapshots persist sets as packed bitmap bytes and re-derive the
   layout on load: whatever kind a set was encoded from, decoding yields
   the same ids and the same kind a fresh hybrid build would pick — the
   blob format is width-agnostic, so the 63-bit widening reads old bytes
   unchanged. Exercised across the word/stride boundary universes. *)
let test_bitmap_reclassify_roundtrip () =
  let rng = Prng.create 0xb17 in
  List.iter
    (fun universe ->
      List.iter
        (fun ids ->
          let auto = C.of_sorted_array ~universe (Array.copy ids) in
          List.iter
            (fun k ->
              let c = C.of_sorted_array_kind k ~universe (Array.copy ids) in
              let s = C.bitmap_bytes c in
              Alcotest.(check int) "blob length" ((universe + 7) / 8) (String.length s);
              (* encoding is kind-independent: same set, same bytes *)
              Alcotest.(check string) "blob kind-independent" (C.bitmap_bytes auto) s;
              let c' = C.of_bitmap_string ~universe s ~off:0 in
              Alcotest.(check (list int)) "bitmap round trip" (Array.to_list ids)
                (Array.to_list (C.to_sorted_array c'));
              Alcotest.(check bool) "reclassified on load" true (C.kind c' = C.kind auto);
              (* decode from a nonzero offset inside a larger blob *)
              let c_off = C.of_bitmap_string ~universe ("\xff" ^ s ^ "\xff") ~off:1 in
              Alcotest.(check (list int)) "offset decode" (Array.to_list ids)
                (Array.to_list (C.to_sorted_array c_off));
              (* the Sparse_only policy survives the round trip too *)
              let c_sp = C.of_bitmap_string ~policy:C.Sparse_only ~universe s ~off:0 in
              Alcotest.(check bool) "Sparse_only decode stays sparse" true
                (C.kind c_sp = C.Sparse))
            forced_kinds;
          (* dense byte payloads spill across the 63-bit words on decode *)
          let d = C.of_sorted_array_kind C.Dense ~universe (Array.copy ids) in
          let d' =
            C.of_dense_bytes ~universe ~card:(Array.length ids) (C.dense_bytes d) ~off:0
          in
          Alcotest.(check (list int)) "dense bytes at the boundary" (Array.to_list ids)
            (Array.to_list (C.to_sorted_array d')))
        [
          [||];
          Array.init universe (fun i -> i);
          [| universe - 1 |];
          gen_set rng ~universe ~shape:`Clustered;
          gen_set rng ~universe ~shape:`Dense;
          gen_set rng ~universe ~shape:`Sparse;
        ])
    wide_universes

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_container_diff;
    QCheck_alcotest.to_alcotest qcheck_strategies;
    Alcotest.test_case "wide kernels at the word boundaries" `Quick test_wide_boundaries;
    QCheck_alcotest.to_alcotest qcheck_feedback_identity;
    Alcotest.test_case "dense threshold flips the layout" `Quick test_dense_threshold;
    Alcotest.test_case "runs threshold flips the layout" `Quick test_runs_threshold;
    Alcotest.test_case "Sparse_only policy never promotes" `Quick test_sparse_only_policy;
    Alcotest.test_case "encode surfaces round trip" `Quick test_codec_surfaces;
    Alcotest.test_case "bitmap blobs reclassify on load" `Quick
      test_bitmap_reclassify_roundtrip;
  ]
