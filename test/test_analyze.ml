(* Meta-tests for kwsc-analyze: every analysis fires on its seeded
   fixture (with distinct finding kinds), guarded/clean code stays
   silent, the checked-in allowlist cannot suppress fixture findings
   (the CI gate), the justification discipline is enforced, and the CLI
   exit codes hold. *)

module A = Kwsc_analyze_lib.Analyze

let fixture_cmts =
  [ "analyze_fixtures/fix_a1.cmt";
    "analyze_fixtures/fix_a2.cmt";
    "analyze_fixtures/fix_a2_untagged.cmt";
    "analyze_fixtures/fix_a3.cmt";
    "analyze_fixtures/fix_clean.cmt" ]

let findings = lazy (A.analyze_files fixture_cmts)

let whats_of rule fs =
  List.filter_map
    (fun f -> if f.A.rule = rule then Some f.A.what else None)
    fs
  |> List.sort_uniq String.compare

let in_file name fs =
  List.filter (fun f -> Filename.basename f.A.file = name) fs

let test_each_analysis_fires () =
  let fs = Lazy.force findings in
  List.iter
    (fun r ->
      let distinct = whats_of r fs in
      Alcotest.(check bool)
        (Printf.sprintf "%s yields >= 2 distinct finding kinds" (A.rule_id r))
        true
        (List.length distinct >= 2))
    A.all_rules;
  List.iter
    (fun f ->
      Alcotest.(check bool) "finding line is positive" true (f.A.line > 0))
    fs

let test_a3_guard_discrimination () =
  let a3 = in_file "fix_a3.ml" (Lazy.force findings) in
  let count w = List.length (List.filter (fun f -> f.A.what = w) a3) in
  (* one unguarded get, one unguarded set — the guarded access in
     sum_guarded must NOT be flagged *)
  Alcotest.(check int) "exactly one unguarded get" 1 (count "unguarded-unsafe-get");
  Alcotest.(check int) "exactly one unguarded set" 1 (count "unguarded-unsafe-set");
  Alcotest.(check int) "one representation escape" 1 (count "representation-escape")

let test_domain_safe_tagging () =
  let fs = Lazy.force findings in
  let untagged f = f.A.what = "untagged-parallel-module" in
  Alcotest.(check bool) "untagged module is reported" true
    (List.exists untagged (in_file "fix_a2_untagged.ml" fs));
  Alcotest.(check bool) "tagged module is not" false
    (List.exists untagged (in_file "fix_a2.ml" fs))

let test_clean_fixture_is_clean () =
  Alcotest.(check int) "no findings in fix_clean.ml" 0
    (List.length (in_file "fix_clean.ml" (Lazy.force findings)))

let test_repo_allowlist_cannot_suppress_fixtures () =
  (* the CI gate: every entry of the real allowlist is scoped to lib/,
     so none may match (and thereby hide) a seeded fixture finding *)
  let allow = A.load_allow "../tools/analyze/allow.sexp" in
  Alcotest.(check bool) "repo allowlist is non-empty" true (allow <> []);
  let fs = Lazy.force findings in
  let kept, used = A.filter_allowed allow fs in
  Alcotest.(check int) "no fixture finding suppressed"
    (List.length fs) (List.length kept);
  Alcotest.(check int) "no allow entry consumed by fixtures" 0
    (List.length used)

let test_justification_is_mandatory () =
  (match A.parse_allow "(A1 lib/util/ibuf.ml 20) ; amortized doubling\n" with
  | [ e ] ->
      Alcotest.(check string) "rule parsed" "A1" e.A.a_rule;
      Alcotest.(check bool) "justification captured" true
        (String.length e.A.a_why > 0)
  | _ -> Alcotest.fail "one well-formed entry expected");
  Alcotest.check_raises "entry without justification rejected"
    (Failure
       "allow line 1: entry (A1 lib/util/ibuf.ml) has no justification — \
        append '; why this is safe'")
    (fun () -> ignore (A.parse_allow "(A1 lib/util/ibuf.ml)\n"))

let exe = "../tools/analyze/kwsc_analyze.exe"

let test_cli_nonzero_on_fixtures () =
  let cmd = Printf.sprintf "%s analyze_fixtures > /dev/null" exe in
  Alcotest.(check int) "CLI exits 1 on the fixture set" 1 (Sys.command cmd)

let test_cli_strict_rejects_stale_allow () =
  let tmp = Filename.temp_file "kwsc_analyze_allow" ".sexp" in
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () ->
      let oc = open_out tmp in
      output_string oc "(A1 analyze_fixtures/no_such_file.ml) ; stale on purpose\n";
      close_out oc;
      let cmd =
        Printf.sprintf "%s --allow %s --strict analyze_fixtures/fix_clean.cmt > /dev/null 2>&1"
          exe tmp
      in
      Alcotest.(check int) "stale entry fails --strict" 1 (Sys.command cmd);
      let cmd =
        Printf.sprintf "%s --allow %s analyze_fixtures/fix_clean.cmt > /dev/null 2>&1" exe tmp
      in
      Alcotest.(check int) "without --strict it only warns" 0 (Sys.command cmd))

let suite =
  [
    Alcotest.test_case "each analysis fires with distinct kinds" `Quick
      test_each_analysis_fires;
    Alcotest.test_case "A3 discriminates guarded from unguarded" `Quick
      test_a3_guard_discrimination;
    Alcotest.test_case "A2 keys off the domain-safe tag" `Quick
      test_domain_safe_tagging;
    Alcotest.test_case "clean fixture stays clean" `Quick
      test_clean_fixture_is_clean;
    Alcotest.test_case "repo allowlist cannot mask fixtures" `Quick
      test_repo_allowlist_cannot_suppress_fixtures;
    Alcotest.test_case "allow entries demand justification" `Quick
      test_justification_is_mandatory;
    Alcotest.test_case "cli: nonzero exit on fixtures" `Quick
      test_cli_nonzero_on_fixtures;
    Alcotest.test_case "cli: --strict rejects stale entries" `Quick
      test_cli_strict_rejects_stale_allow;
  ]
