open Kwsc_util

let test_bitset_basic () =
  let b = Bitset.create 100 in
  Alcotest.(check int) "length" 100 (Bitset.length b);
  Alcotest.(check bool) "initially clear" false (Bitset.get b 7);
  Bitset.set b 7;
  Bitset.set b 0;
  Bitset.set b 99;
  Alcotest.(check bool) "set 7" true (Bitset.get b 7);
  Alcotest.(check bool) "set 0" true (Bitset.get b 0);
  Alcotest.(check bool) "set 99" true (Bitset.get b 99);
  Alcotest.(check bool) "unset 8" false (Bitset.get b 8);
  Alcotest.(check int) "popcount" 3 (Bitset.popcount b);
  Bitset.clear b 7;
  Alcotest.(check bool) "cleared" false (Bitset.get b 7);
  Alcotest.(check int) "popcount after clear" 2 (Bitset.popcount b)

let test_bitset_bounds () =
  let b = Bitset.create 8 in
  Alcotest.check_raises "negative index" (Invalid_argument "Bitset: index out of range")
    (fun () -> ignore (Bitset.get b (-1)));
  Alcotest.check_raises "index = length" (Invalid_argument "Bitset: index out of range")
    (fun () -> Bitset.set b 8);
  Alcotest.check_raises "negative size" (Invalid_argument "Bitset.create: negative size")
    (fun () -> ignore (Bitset.create (-1)))

let test_bitset_zero () =
  let b = Bitset.create 0 in
  Alcotest.(check int) "empty popcount" 0 (Bitset.popcount b)

let test_prng_deterministic () =
  let a = Prng.create 123 and b = Prng.create 123 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Prng.int a 1000) (Prng.int b 1000)
  done

let test_prng_bounds () =
  let rng = Prng.create 5 in
  for _ = 1 to 1000 do
    let v = Prng.int rng 7 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 7)
  done;
  Alcotest.check_raises "zero bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int rng 0))

let test_prng_float_range () =
  let rng = Prng.create 9 in
  for _ = 1 to 1000 do
    let v = Prng.float rng 3.5 in
    Alcotest.(check bool) "float in range" true (v >= 0.0 && v < 3.5)
  done

let test_prng_shuffle_permutes () =
  let rng = Prng.create 77 in
  let a = Array.init 50 (fun i -> i) in
  Prng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 (fun i -> i)) sorted

let test_zipf_pmf_sums_to_one () =
  let z = Zipf.create ~n:100 ~theta:1.0 in
  let total = ref 0.0 in
  for r = 1 to 100 do
    total := !total +. Zipf.pmf z r
  done;
  Alcotest.(check (float 1e-9)) "pmf sums to 1" 1.0 !total

let test_zipf_skew () =
  let z = Zipf.create ~n:50 ~theta:1.2 in
  let rng = Prng.create 3 in
  let counts = Array.make 51 0 in
  for _ = 1 to 20000 do
    let r = Zipf.sample z rng in
    Alcotest.(check bool) "rank in range" true (r >= 1 && r <= 50);
    counts.(r) <- counts.(r) + 1
  done;
  Alcotest.(check bool) "rank 1 most frequent" true (counts.(1) > counts.(10));
  Alcotest.(check bool) "rank 10 beats rank 50" true (counts.(10) > counts.(50))

let test_zipf_uniform () =
  let z = Zipf.create ~n:10 ~theta:0.0 in
  for r = 1 to 10 do
    Alcotest.(check (float 1e-9)) "uniform pmf" 0.1 (Zipf.pmf z r)
  done

let test_stats_mean_stddev () =
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Stats.mean [| 1.0; 2.0; 3.0 |]);
  Alcotest.(check (float 1e-9)) "stddev" (sqrt (2.0 /. 3.0)) (Stats.stddev [| 1.0; 2.0; 3.0 |])

let test_stats_median_percentile () =
  Alcotest.(check (float 1e-9)) "odd median" 3.0 (Stats.median [| 5.0; 1.0; 3.0 |]);
  Alcotest.(check (float 1e-9)) "even median" 2.5 (Stats.median [| 4.0; 1.0; 2.0; 3.0 |]);
  Alcotest.(check (float 1e-9)) "p100" 9.0 (Stats.percentile [| 9.0; 1.0 |] 100.0)

let test_stats_fit_exponent () =
  (* y = 3 * x^1.7 exactly *)
  let pts = Array.init 10 (fun i ->
      let x = float_of_int (i + 2) in
      (x, 3.0 *. (x ** 1.7)))
  in
  Alcotest.(check (float 1e-6)) "recovers exponent" 1.7 (Stats.fit_exponent pts);
  Alcotest.(check (float 1e-6)) "r squared" 1.0
    (Stats.r_squared (Array.map (fun (x, y) -> (log x, log y)) pts))

let test_sorted_bounds () =
  let a = [| 1.0; 3.0; 3.0; 7.0 |] in
  Alcotest.(check int) "lower 3" 1 (Kwsc_util.Sorted.lower_bound a 3.0);
  Alcotest.(check int) "upper 3" 3 (Kwsc_util.Sorted.upper_bound a 3.0);
  Alcotest.(check int) "lower 0" 0 (Kwsc_util.Sorted.lower_bound a 0.0);
  Alcotest.(check int) "upper 9" 4 (Kwsc_util.Sorted.upper_bound a 9.0);
  Alcotest.(check int) "count in range" 3 (Kwsc_util.Sorted.count_in_range a 3.0 7.0)

let test_sorted_mem_intersect () =
  let a = [| 1; 4; 6; 9 |] and b = [| 2; 4; 9; 12 |] in
  Alcotest.(check bool) "mem hit" true (Kwsc_util.Sorted.mem_int a 6);
  Alcotest.(check bool) "mem miss" false (Kwsc_util.Sorted.mem_int a 5);
  Alcotest.(check (array int)) "intersect" [| 4; 9 |] (Kwsc_util.Sorted.intersect a b);
  Alcotest.(check (array int)) "dedup" [| 1; 2 |] (Kwsc_util.Sorted.dedup_int [| 1; 1; 2; 2; 2 |]);
  Alcotest.(check (array int)) "sort_dedup" [| 1; 3; 5 |] (Kwsc_util.Sorted.sort_dedup [ 5; 1; 3; 1 ])

let test_kth_abs_diff_brute () =
  let rng = Prng.create 11 in
  for _ = 1 to 50 do
    let cols =
      Array.init (1 + Prng.int rng 3) (fun _ ->
          let a = Array.init (1 + Prng.int rng 20) (fun _ -> Prng.float rng 100.0) in
          Array.sort compare a;
          (a, Prng.float rng 100.0))
    in
    let all =
      Array.concat
        (Array.to_list (Array.map (fun (a, q) -> Array.map (fun x -> abs_float (x -. q)) a) cols))
    in
    Array.sort compare all;
    let k = 1 + Prng.int rng (Array.length all) in
    let got = Kwsc_util.Sorted.kth_abs_diff cols k in
    Alcotest.(check (float 1e-9)) "kth candidate" all.(k - 1) got
  done

let test_kth_abs_diff_duplicates () =
  let cols = [| ([| 5.0; 5.0; 5.0 |], 5.0) |] in
  Alcotest.(check (float 1e-12)) "all zero" 0.0 (Kwsc_util.Sorted.kth_abs_diff cols 3)

let test_heap_order () =
  let h = Heap.create () in
  List.iter (fun (k, v) -> Heap.push h k v) [ (3.0, "c"); (1.0, "a"); (5.0, "e"); (2.0, "b") ];
  Alcotest.(check int) "size" 4 (Heap.size h);
  Alcotest.(check (option (pair (float 1e-9) string))) "peek max" (Some (5.0, "e")) (Heap.peek h);
  Alcotest.(check (option (pair (float 1e-9) string))) "pop max" (Some (5.0, "e")) (Heap.pop h);
  Alcotest.(check (option (pair (float 1e-9) string))) "next" (Some (3.0, "c")) (Heap.pop h);
  ignore (Heap.pop h);
  ignore (Heap.pop h);
  Alcotest.(check bool) "drained" true (Heap.is_empty h)

let qcheck_heap_sorts =
  QCheck.Test.make ~name:"heap pops in descending key order" ~count:200
    QCheck.(list (float_bound_exclusive 1000.0))
    (fun keys ->
      let h = Heap.create () in
      List.iter (fun k -> Heap.push h k ()) keys;
      let rec drain acc = match Heap.pop h with Some (k, ()) -> drain (k :: acc) | None -> acc in
      let popped = drain [] in
      popped = List.sort compare keys)

let qcheck_kth_abs_diff =
  QCheck.Test.make ~name:"kth_abs_diff agrees with sorting" ~count:100
    QCheck.(pair (list_of_size Gen.(1 -- 30) (float_bound_exclusive 50.0)) (float_bound_exclusive 50.0))
    (fun (xs, q) ->
      QCheck.assume (xs <> []);
      let a = Array.of_list xs in
      Array.sort compare a;
      let all = Array.map (fun x -> abs_float (x -. q)) a in
      Array.sort compare all;
      let k = 1 + (Array.length all / 2) in
      abs_float (Kwsc_util.Sorted.kth_abs_diff [| (a, q) |] k -. all.(k - 1)) < 1e-9)


(* ---------- gallop_intersect_into degenerate spans (PR 5) ---------- *)

let gallop a (alo, ahi) b (blo, bhi) =
  let out = Ibuf.create () in
  Sorted.gallop_intersect_into a ~alo ~ahi b ~blo ~bhi out;
  Ibuf.to_array out

let test_gallop_degenerate () =
  let a = [| 1; 3; 5; 7 |] and b = [| 10; 20; 30 |] in
  Alcotest.(check (array int)) "empty a span" [||] (gallop a (2, 2) b (0, 3));
  Alcotest.(check (array int)) "empty b span" [||] (gallop a (0, 4) b (1, 1));
  Alcotest.(check (array int)) "both spans empty" [||] (gallop a (0, 0) b (3, 3));
  (* fully-preceding spans: every a id below every b id, and vice versa *)
  Alcotest.(check (array int)) "a precedes b" [||] (gallop a (0, 4) b (0, 3));
  Alcotest.(check (array int)) "b precedes a" [||] (gallop b (0, 3) a (0, 4));
  (* sub-spans that only touch the disjoint halves *)
  Alcotest.(check (array int)) "disjoint sub-spans" [||] (gallop a (1, 3) b (1, 2))

let test_gallop_nested_spans () =
  (* b's range strictly inside a's: the skew dispatch gallops the short
     side; answers must match the plain intersection of the spans *)
  let a = Array.init 100 (fun i -> 2 * i) (* evens 0..198 *) in
  let b = [| 80; 81; 82; 84; 90; 95; 96 |] in
  Alcotest.(check (array int))
    "nested: b inside a" [| 80; 82; 84; 90; 96 |]
    (gallop a (0, 100) b (0, 7));
  Alcotest.(check (array int))
    "nested: restricted a window" [| 82; 84 |]
    (gallop a (41, 43) b (0, 7));
  (* identical arrays, shifted windows *)
  let c = [| 1; 2; 3; 4; 5; 6 |] in
  Alcotest.(check (array int)) "self overlap" [| 3; 4 |] (gallop c (2, 4) c (0, 6))

(* ---------- Zipf normalization cache (PR 5) ---------- *)

let test_zipf_memoized () =
  let a = Zipf.create ~n:321 ~theta:0.77 in
  let b = Zipf.create ~n:321 ~theta:0.77 in
  Alcotest.(check bool) "same (n, theta) shares one table" true (a == b);
  let c = Zipf.create ~n:321 ~theta:0.78 in
  Alcotest.(check bool) "different theta is a different table" true (not (b == c));
  let d = Zipf.create ~n:322 ~theta:0.77 in
  Alcotest.(check bool) "different n is a different table" true (not (a == d));
  (* sampling through the shared table is unchanged *)
  let r1 = Prng.create 42 and r2 = Prng.create 42 in
  for _ = 1 to 200 do
    Alcotest.(check int) "same stream through shared table" (Zipf.sample a r1)
      (Zipf.sample b r2)
  done

(* ---------- Wordops: the shared 63-bit word kernels ---------- *)

let test_wordops () =
  let naive w =
    let c = ref 0 in
    for b = 0 to 62 do
      if w land (1 lsl b) <> 0 then incr c
    done;
    !c
  in
  Alcotest.(check int) "zero" 0 (Wordops.popcount 0);
  Alcotest.(check int) "max_int" 62 (Wordops.popcount max_int);
  Alcotest.(check int) "all 63 bits" 63 (Wordops.popcount (-1));
  Alcotest.(check int) "single top bit" 1 (Wordops.popcount (1 lsl 62));
  Alcotest.(check int) "ntz of bit 0" 0 (Wordops.ntz 1);
  Alcotest.(check int) "ntz of the lone top bit" 62 (Wordops.ntz (1 lsl 62));
  let rng = Prng.create 0xbeef in
  for _ = 1 to 500 do
    let w =
      Prng.int rng 0x4000_0000
      lor (Prng.int rng 0x4000_0000 lsl 30)
      lor (Prng.int rng 8 lsl 60)
    in
    Alcotest.(check int) "popcount matches naive" (naive w) (Wordops.popcount w);
    if w <> 0 then begin
      let b = ref 0 in
      while w land (1 lsl !b) = 0 do
        incr b
      done;
      Alcotest.(check int) "ntz matches naive" !b (Wordops.ntz w)
    end
  done;
  (* division by the word width: exact through the magic-multiply range
     and total (hardware fallback) beyond it *)
  Alcotest.(check int) "word width" 63 Wordops.bits;
  List.iter
    (fun x ->
      Alcotest.(check int) (Printf.sprintf "div_bits %d" x) (x / 63) (Wordops.div_bits x);
      Alcotest.(check int) (Printf.sprintf "mod_bits %d" x) (x mod 63) (Wordops.mod_bits x))
    [ 0; 1; 62; 63; 64; 125; 126; 4095; 4096; 1_999_999_999; 2_000_000_000;
      2_000_000_001; 3_000_000_000; max_int / 63; max_int ];
  for _ = 1 to 500 do
    let x = Prng.int rng 0x3fff_ffff lor (Prng.int rng 2 lsl 30) in
    Alcotest.(check int) "div_bits random" (x / 63) (Wordops.div_bits x)
  done;
  List.iter
    (fun (u, w) ->
      Alcotest.(check int) (Printf.sprintf "nwords %d" u) w (Wordops.nwords u))
    [ (0, 0); (1, 1); (62, 1); (63, 1); (64, 2); (126, 2); (127, 3); (4096, 66) ];
  for b = 0 to 255 do
    Alcotest.(check int) "byte popcount table" (naive b) Wordops.byte_popcount.(b)
  done

(* ---------- Ibuf.reserve ---------- *)

let test_ibuf_reserve () =
  let b = Ibuf.create ~capacity:2 () in
  Ibuf.push b 10;
  Ibuf.reserve b 100;
  Alcotest.(check int) "reserve keeps length" 1 (Ibuf.length b);
  Alcotest.(check int) "reserve keeps contents" 10 (Ibuf.get b 0);
  Alcotest.(check bool) "capacity grew" true (Array.length (Ibuf.unsafe_data b) >= 100);
  (* borrowing unsafe_data as scratch after reserve is stable: no push
     in between means no reallocation *)
  let data = Ibuf.unsafe_data b in
  data.(50) <- 1234;
  Alcotest.(check bool) "same backing array" true (data == Ibuf.unsafe_data b);
  for i = 0 to 98 do
    Ibuf.push b i
  done;
  Alcotest.(check int) "pushes after reserve" 100 (Ibuf.length b)

(* ---------- Bitset pools and shared views (PR 5) ---------- *)

let test_bitset_pool_views () =
  let n = 21 in
  let pool = Bitset.pool_create ~count:3 ~n in
  let v0 = Bitset.pool_view pool ~index:0 ~n in
  let v1 = Bitset.pool_view pool ~index:1 ~n in
  let v2 = Bitset.pool_view pool ~index:2 ~n in
  Bitset.set v1 0;
  Bitset.set v1 20;
  Alcotest.(check int) "view popcount" 2 (Bitset.popcount v1);
  Alcotest.(check int) "neighbor left untouched" 0 (Bitset.popcount v0);
  Alcotest.(check int) "neighbor right untouched" 0 (Bitset.popcount v2);
  Alcotest.(check bool) "view get" true (Bitset.get v1 20);
  Alcotest.(check bool) "view get clear bit" false (Bitset.get v1 10);
  (* views serialize exactly like standalone bitsets of the same content *)
  let standalone = Bitset.create n in
  Bitset.set standalone 0;
  Bitset.set standalone 20;
  Alcotest.(check bytes) "view to_bytes" (Bitset.to_bytes standalone) (Bitset.to_bytes v1);
  Alcotest.(check int) "view words" (Bitset.words standalone) (Bitset.words v1);
  Alcotest.check_raises "view index out of pool"
    (Invalid_argument "Bitset.pool_view: slice out of range") (fun () ->
      ignore (Bitset.pool_view pool ~index:3 ~n))

let test_bitset_shared_bytes () =
  (* of_shared_bytes aliases: reads see later writes to the backing bytes *)
  let n = 12 in
  let backing = Bytes.make 4 '\000' in
  let v = Bitset.of_shared_bytes backing ~off:1 ~n in
  Alcotest.(check int) "initially clear" 0 (Bitset.popcount v);
  Bytes.set backing 1 '\005' (* bits 0 and 2 of the view *);
  Alcotest.(check bool) "aliased read" true (Bitset.get v 0 && Bitset.get v 2);
  Alcotest.(check int) "aliased popcount" 2 (Bitset.popcount v);
  Bitset.set v 11;
  Alcotest.(check bool) "aliased write lands in backing" true
    (Char.code (Bytes.get backing 2) land 0x08 <> 0);
  Alcotest.check_raises "window past the bytes"
    (Invalid_argument "Bitset.of_shared_bytes: slice out of range") (fun () ->
      ignore (Bitset.of_shared_bytes backing ~off:2 ~n:32))

(* Planner.choose boundary costs. Each case sits exactly at (or one
   element off) a crossover of the cost model, so a drift in any term —
   chain_step's gallop threshold, probe units, the all-dense AND gate or
   a tie-break direction — flips the chosen strategy and fails here.
   Shard-local planners instantiate the same module, so pinning the
   global one pins them all. *)

let with_planner_enabled f =
  let saved = !Planner.enabled in
  Planner.enabled := true;
  Fun.protect ~finally:(fun () -> Planner.enabled := saved) f

let seq_ids n = Array.init n (fun i -> i)

let forced kind ~universe n =
  Container.of_sorted_array_kind kind ~universe (seq_ids n)

let strategy_name = function
  | Container.Chain -> "Chain"
  | Container.Probe -> "Probe"
  | Container.And_words -> "And_words"

let check_strategy ?observed msg expected cs =
  Alcotest.(check string)
    msg (strategy_name expected)
    (strategy_name (Planner.choose ?observed cs))

let test_planner_gates () =
  with_planner_enabled (fun () ->
      (* k <= 1 is always Chain, whatever the container looks like. *)
      check_strategy "empty input" Container.Chain [||];
      check_strategy "single container" Container.Chain
        [| forced Container.Dense ~universe:4096 2048 |];
      (* A probe-favourable pair (10 vs 80 below) degrades to Chain the
         moment the planner is switched off. *)
      let cs =
        [| forced Container.Sparse ~universe:100_000 10;
           forced Container.Sparse ~universe:100_000 80 |]
      in
      check_strategy "enabled picks probe" Container.Probe cs;
      Planner.enabled := false;
      check_strategy "disabled forces chain" Container.Chain cs;
      Alcotest.(check bool)
        "disabled never caches" false
        (Planner.worth_caching ~n:1_000_000 ~k:2 ~cost:1_000_000);
      Planner.enabled := true)

let test_planner_ceil_log2_tau () =
  with_planner_enabled (fun () ->
      List.iter
        (fun (n, b) ->
          Alcotest.(check int) (Printf.sprintf "ceil_log2 %d" n) b
            (Planner.ceil_log2 n))
        [ (0, 1); (1, 1); (2, 1); (3, 2); (4, 2); (5, 3); (1024, 10);
          (1025, 11) ];
      Alcotest.(check (float 0.0)) "tau n=0" 0.0 (Planner.tau ~n:0 ~k:2);
      (* k=2: tau = sqrt n. n = 100 puts the threshold at exactly 10. *)
      Alcotest.(check (float 1e-9)) "tau n=100 k=2" 10.0
        (Planner.tau ~n:100 ~k:2);
      Alcotest.(check bool) "cost at tau caches" true
        (Planner.worth_caching ~n:100 ~k:2 ~cost:10);
      Alcotest.(check bool) "cost below tau skipped" false
        (Planner.worth_caching ~n:100 ~k:2 ~cost:9);
      (* k < 2 clamps to the square-root schedule, not n^0. *)
      Alcotest.(check (float 1e-9)) "k clamps at 2" 10.0
        (Planner.tau ~n:100 ~k:1))

let test_planner_chain_probe_boundary () =
  with_planner_enabled (fun () ->
      let u = 100_000 in
      let pair a b =
        [| forced Container.Sparse ~universe:u a;
           forced Container.Sparse ~universe:u b |]
      in
      (* c0=1: chain is one gallop of ceil_log2 101 = 7 and probe is
         1 * ceil_log2 101 = 7. Exact tie — strict < keeps Chain. *)
      check_strategy "equal costs tie-break to chain" Container.Chain
        (pair 1 100);
      (* c0=10, c1=80 sits on the merge side of the gallop threshold
         (10*8 < 80 is false): chain = 10+80 = 90, probe = 10*7 = 70. *)
      check_strategy "balanced merge loses to probe" Container.Probe
        (pair 10 80);
      (* One more element tips chain_step into galloping: chain becomes
         10 * ceil_log2 (81/10 + 1) = 40 and beats probe's 70. *)
      check_strategy "galloping chain wins at 81" Container.Chain
        (pair 10 81);
      (* Far out the skew keeps chain ahead: 10*ceil_log2 51 = 60 vs
         probe 10 * ceil_log2 501 = 90. *)
      check_strategy "deep skew stays chain" Container.Chain (pair 10 500))

let test_planner_dense_probe () =
  with_planner_enabled (fun () ->
      (* Dense probe targets cost one unit each: probe = 4 * 2 = 8 beats
         chain = 2 * (4 * ceil_log2 (66/4 + 1)) = 40 (a dense chain side
         walks its 66 63-bit words). The sparse driver disables
         And_words despite two dense inputs. *)
      let cs =
        [| forced Container.Sparse ~universe:4096 4;
           forced Container.Dense ~universe:4096 2048;
           forced Container.Dense ~universe:4096 2048 |]
      in
      check_strategy "dense targets are unit probes" Container.Probe cs)

let test_planner_and_words_boundary () =
  with_planner_enabled (fun () ->
      let u = 4096 in
      (* All dense over one universe of ceil(4096/63) = 66 words:
         cost_and = 2*66 = 132, chain = 2*(66+66) = 264. Probe = c0 * 2
         crosses 132 exactly at c0 = 66; ties go to And_words. (At the
         old 32-bit width this crossover sat at c0 = 128 — the word
         widening moved it, which is exactly what this pin watches.) *)
      let all_dense c0 =
        [| forced Container.Dense ~universe:u c0;
           forced Container.Dense ~universe:u 2048;
           forced Container.Dense ~universe:u 2048 |]
      in
      check_strategy "tie prefers and-words" Container.And_words
        (all_dense 66);
      check_strategy "one id cheaper flips to probe" Container.Probe
        (all_dense 65);
      (* Same shape but one universe differs: the AND gate closes and the
         former tie falls through to probe (probe 132 beats the chain's
         132 + step(66, 131) = 329). *)
      let mixed =
        [| forced Container.Dense ~universe:u 66;
           forced Container.Dense ~universe:u 2048;
           forced Container.Dense ~universe:8192 4096 |]
      in
      check_strategy "universe mismatch closes the AND gate" Container.Probe
        mixed)

(* Selectivity feedback: [choose ~observed] re-prices the chain's running
   accumulator from step two on. Each case sits one unit either side of
   the Chain <-> Probe crossover so any drift in how the observation
   enters the model fails here. *)
let test_planner_feedback_boundary () =
  with_planner_enabled (fun () ->
      let saved = !Planner.feedback_enabled in
      Planner.feedback_enabled := true;
      Fun.protect
        ~finally:(fun () -> Planner.feedback_enabled := saved)
        (fun () ->
          let u = 100_000 in
          let cs =
            [| forced Container.Sparse ~universe:u 10;
               forced Container.Sparse ~universe:u 80;
               forced Container.Sparse ~universe:u 80 |]
          in
          (* Uncorrelated model: chain = 2 * (10+80) = 180, probe =
             10 * (7+7) = 140 -> Probe. *)
          check_strategy "no observation keeps probe" Container.Probe cs;
          Alcotest.(check string)
            "observed = -1 is a non-observation" "Probe"
            (strategy_name (Planner.choose ~observed:(-1) cs));
          (* Observed pair cardinality o re-prices step two as
             chain_step (o, 80): chain = 90 + step. o = 9 gallops,
             step = 9 * ceil_log2 9 = 36, chain 126 < 140 -> Chain.
             o = 10 merges, step = 90, chain 180 -> Probe stays. *)
          check_strategy "collapsing pair flips to chain" Container.Chain cs
            ~observed:9;
          check_strategy "one more survivor keeps probe" Container.Probe cs
            ~observed:10;
          (* The gate: feedback off ignores the observation entirely. *)
          Planner.feedback_enabled := false;
          check_strategy "feedback off ignores observations" Container.Probe
            cs ~observed:0))

let test_planner_runs_pricing () =
  with_planner_enabled (fun () ->
      let u = 4096 in
      let runs2 = Container.of_runs ~universe:u [| 0; 500; 1000; 500 |] in
      Alcotest.(check int) "run container cardinality" 1000
        (Container.cardinality runs2);
      (* As the driver a 2-run container chains over 2 run pairs, not
         1000 ids: chain = 4 * ceil_log2 26 = 20 crushes probe's
         1000 * 7 = 7000. *)
      check_strategy "runs drive chain by run pairs" Container.Chain
        [| runs2; forced Container.Sparse ~universe:u 100 |];
      (* As a probe target it costs ceil_log2 (runs+1) = 2 units. c0 = 3:
         probe 6 < chain 7. c0 = 4: probe 8 ties chain 8 -> Chain. *)
      let vs_runs c0 =
        [| forced Container.Sparse ~universe:u c0; runs2 |]
      in
      check_strategy "runs target pays log run units" Container.Probe
        (vs_runs 3);
      check_strategy "runs target tie stays chain" Container.Chain
        (vs_runs 4))

let suite =
  [
    Alcotest.test_case "bitset basic" `Quick test_bitset_basic;
    Alcotest.test_case "bitset bounds" `Quick test_bitset_bounds;
    Alcotest.test_case "bitset zero-size" `Quick test_bitset_zero;
    Alcotest.test_case "prng deterministic" `Quick test_prng_deterministic;
    Alcotest.test_case "prng int bounds" `Quick test_prng_bounds;
    Alcotest.test_case "prng float range" `Quick test_prng_float_range;
    Alcotest.test_case "prng shuffle permutes" `Quick test_prng_shuffle_permutes;
    Alcotest.test_case "zipf pmf sums to one" `Quick test_zipf_pmf_sums_to_one;
    Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
    Alcotest.test_case "zipf theta=0 uniform" `Quick test_zipf_uniform;
    Alcotest.test_case "stats mean/stddev" `Quick test_stats_mean_stddev;
    Alcotest.test_case "stats median/percentile" `Quick test_stats_median_percentile;
    Alcotest.test_case "stats exponent fit" `Quick test_stats_fit_exponent;
    Alcotest.test_case "sorted bounds" `Quick test_sorted_bounds;
    Alcotest.test_case "sorted mem/intersect/dedup" `Quick test_sorted_mem_intersect;
    Alcotest.test_case "kth_abs_diff vs brute force" `Quick test_kth_abs_diff_brute;
    Alcotest.test_case "kth_abs_diff duplicates" `Quick test_kth_abs_diff_duplicates;
    Alcotest.test_case "heap order" `Quick test_heap_order;
    QCheck_alcotest.to_alcotest qcheck_heap_sorts;
    QCheck_alcotest.to_alcotest qcheck_kth_abs_diff;
    Alcotest.test_case "gallop degenerate spans bail O(1)" `Quick test_gallop_degenerate;
    Alcotest.test_case "gallop nested spans" `Quick test_gallop_nested_spans;
    Alcotest.test_case "zipf tables memoized" `Quick test_zipf_memoized;
    Alcotest.test_case "wordops 63-bit kernels" `Quick test_wordops;
    Alcotest.test_case "ibuf reserve" `Quick test_ibuf_reserve;
    Alcotest.test_case "bitset pool views are disjoint" `Quick test_bitset_pool_views;
    Alcotest.test_case "bitset shared-byte views alias" `Quick test_bitset_shared_bytes;
    Alcotest.test_case "planner gates (disabled, k<=1)" `Quick test_planner_gates;
    Alcotest.test_case "planner ceil_log2 and tau boundary" `Quick test_planner_ceil_log2_tau;
    Alcotest.test_case "planner chain/probe crossover" `Quick test_planner_chain_probe_boundary;
    Alcotest.test_case "planner dense probe units" `Quick test_planner_dense_probe;
    Alcotest.test_case "planner and-words crossover" `Quick test_planner_and_words_boundary;
    Alcotest.test_case "planner feedback crossover" `Quick test_planner_feedback_boundary;
    Alcotest.test_case "planner runs pricing" `Quick test_planner_runs_pricing;
  ]
