(* Differential suite for the flat layouts (PR 3): the frozen kd-tree,
   frozen partition tree and postings arena must return *identical*
   answers to their boxed sources — same slots, same order where the
   traversal order is part of the contract, same tie resolution — and
   the Stats allocation counters must behave like every other counter
   (monotone accumulation, merge-compatible). *)

open Kwsc_geom
module Kd = Kwsc_kdtree.Kd
module Kd_flat = Kwsc_kdtree.Kd_flat
module Ptree = Kwsc_ptree.Ptree
module Ptree_flat = Kwsc_ptree.Ptree_flat
module Inverted = Kwsc_invindex.Inverted
module Postings = Kwsc_invindex.Postings
module Prng = Kwsc_util.Prng
module Sorted = Kwsc_util.Sorted
module Ibuf = Kwsc_util.Ibuf
module Stats = Kwsc.Stats

let make_pts ~seed ~n ~d ~range =
  let rng = Prng.create seed in
  Array.init n (fun i -> (Array.init d (fun _ -> Prng.float rng range), i))

(* clumped coordinates: duplicates and ties exercise the shared-order
   contract hardest *)
let make_gridded ~seed ~n ~d =
  let rng = Prng.create seed in
  Array.init n (fun i -> (Array.init d (fun _ -> float_of_int (Prng.int rng 6)), i))

(* ---------- kd: boxed vs flat ---------- *)

(* range reporting must agree point-for-point IN ORDER: both kernels
   visit left-then-right preorder and dump covered subtrees in arena
   (= leaf) order *)
let check_kd_range_once t ft q =
  let boxed = ref [] in
  Kd.range_iter t q (fun p v -> boxed := (p, v) :: !boxed);
  let boxed = List.rev !boxed in
  let flat = ref [] in
  Kd_flat.range_iter ft q (fun s v -> flat := (s, v) :: !flat);
  let flat = List.rev !flat in
  Alcotest.(check int) "range cardinality" (List.length boxed) (List.length flat);
  List.iter2
    (fun (p, vb) (s, vf) ->
      Alcotest.(check int) "payload in order" vb vf;
      Alcotest.(check int) "slot resolves payload" vb (Kd_flat.payload ft s);
      Array.iteri
        (fun j x ->
          Alcotest.(check bool)
            "slot coordinates bit-equal" true
            (Float.equal x (Kd_flat.coord ft s j)))
        p)
    boxed flat;
  Alcotest.(check int) "count agrees" (Kd.count t q) (Kd_flat.range_count ft q)

let check_kd_nearest_once t ft metric q k =
  let boxed = Kd.nearest t ~metric q k in
  let flat = Kd_flat.nearest ft ~metric q k in
  Alcotest.(check int) "nearest cardinality" (List.length boxed) (Array.length flat);
  List.iteri
    (fun i (db, _, vb) ->
      let df, s = flat.(i) in
      Alcotest.(check bool) "nearest distance bit-equal" true (Float.equal db df);
      (* same heap, same push order => ties resolve to the same object *)
      Alcotest.(check int) "nearest payload" vb (Kd_flat.payload ft s))
    boxed

let kd_sweep seed =
  let d = 2 + (seed mod 3) in
  let n = 40 + (seed * 37 mod 400) in
  let pts =
    if seed mod 2 = 0 then make_pts ~seed ~n ~d ~range:100.0 else make_gridded ~seed ~n ~d
  in
  let t = Kd.build pts in
  let ft = Kd.freeze t in
  Alcotest.(check int) "flat size" (Kd.size t) (Kd_flat.size ft);
  let rng = Prng.create (seed + 1000) in
  for _ = 1 to 12 do
    let range = if seed mod 2 = 0 then 100.0 else 6.0 in
    check_kd_range_once t ft (Helpers.random_rect rng ~d ~range)
  done;
  check_kd_range_once t ft (Rect.full d);
  List.iter
    (fun metric ->
      for _ = 1 to 8 do
        let q = Array.init d (fun _ -> Prng.float rng 100.0) in
        check_kd_nearest_once t ft metric q (1 + Prng.int rng 12)
      done;
      check_kd_nearest_once t ft metric (Array.make d 0.0) (n + 5))
    [ `Linf; `L2 ];
  true

let qcheck_kd =
  QCheck.Test.make ~name:"kd boxed and flat kernels are slot-identical" ~count:12
    QCheck.(small_int)
    kd_sweep

(* ---------- ptree: boxed vs flat ---------- *)

let random_halfspaces rng d range =
  List.init
    (1 + Prng.int rng 3)
    (fun _ ->
      Halfspace.make
        (Array.init d (fun _ -> Prng.float rng 2.0 -. 1.0))
        (Prng.float rng range))

let sorted_ids l =
  let a = Array.of_list l in
  Array.sort Int.compare a;
  a

let ptree_sweep seed =
  let d = 2 + (seed mod 2) in
  let n = 40 + (seed * 53 mod 300) in
  let pts = make_pts ~seed:(seed + 7) ~n ~d ~range:100.0 in
  let t = Ptree.build pts in
  let ft = Ptree.freeze t in
  Alcotest.(check int) "flat size" (Ptree.size t) (Ptree_flat.size ft);
  let rng = Prng.create (seed + 2000) in
  for _ = 1 to 15 do
    let q = Polytope.make ~dim:d (random_halfspaces rng d 100.0) in
    let boxed = ref [] in
    Ptree.query_polytope_iter t q (fun _ v -> boxed := v :: !boxed);
    (* the list API is defined by the iter: prepend order *)
    Alcotest.(check (array int))
      "query_polytope = iter"
      (sorted_ids (List.map snd (Ptree.query_polytope t q)))
      (sorted_ids !boxed);
    let flat = ref [] in
    Ptree_flat.query_polytope_iter ft q (fun s v ->
        Alcotest.(check int) "slot resolves payload" v (Ptree_flat.payload ft s);
        flat := v :: !flat);
    Alcotest.(check (array int)) "flat ids = boxed ids" (sorted_ids !boxed) (sorted_ids !flat)
  done;
  true

let qcheck_ptree =
  QCheck.Test.make ~name:"ptree boxed and flat kernels report the same points" ~count:10
    QCheck.(small_int)
    ptree_sweep

(* ---------- freeze degenerate shapes: one point, all duplicates ---------- *)

(* A single-point tree and a tree of 37 copies of the same coordinate are
   the extremes of the split recursion: no split possible, every pivot
   tie-broken. Both flat layouts must still agree with their boxed source
   slot-for-slot. *)
let check_degenerate_kd pts =
  let d = Array.length (fst pts.(0)) in
  let t = Kd.build pts in
  let ft = Kd.freeze t in
  Alcotest.(check int) "flat size" (Kd.size t) (Kd_flat.size ft);
  let rng = Prng.create 4242 in
  check_kd_range_once t ft (Rect.full d);
  (* a point rectangle exactly on the data, and rectangles near-missing it *)
  let p = fst pts.(0) in
  check_kd_range_once t ft (Rect.make p p);
  check_kd_range_once t ft
    (Rect.make (Array.map (fun x -> x +. 0.5) p) (Array.map (fun x -> x +. 1.0) p));
  for _ = 1 to 6 do
    check_kd_range_once t ft (Helpers.random_rect rng ~d ~range:8.0)
  done;
  List.iter
    (fun metric ->
      (* k = 1, k = n and k > n, probing both on- and off-point *)
      check_kd_nearest_once t ft metric p 1;
      check_kd_nearest_once t ft metric (Array.make d (-3.0)) (Array.length pts);
      check_kd_nearest_once t ft metric (Array.make d 9.0) (Array.length pts + 4))
    [ `Linf; `L2 ]

let check_degenerate_ptree pts =
  let d = Array.length (fst pts.(0)) in
  let t = Ptree.build pts in
  let ft = Ptree.freeze t in
  Alcotest.(check int) "flat size" (Ptree.size t) (Ptree_flat.size ft);
  let rng = Prng.create 2424 in
  let check q =
    let boxed = ref [] in
    Ptree.query_polytope_iter t q (fun _ v -> boxed := v :: !boxed);
    let flat = ref [] in
    Ptree_flat.query_polytope_iter ft q (fun s v ->
        Alcotest.(check int) "slot resolves payload" v (Ptree_flat.payload ft s);
        flat := v :: !flat);
    Alcotest.(check (array int)) "flat ids = boxed ids" (sorted_ids !boxed) (sorted_ids !flat)
  in
  (* the whole space, an empty halfspace, and random cuts *)
  check (Polytope.make ~dim:d []);
  check (Polytope.make ~dim:d [ Halfspace.make (Array.init d (fun i -> if i = 0 then 1.0 else 0.0)) (-1e9) ]);
  for _ = 1 to 10 do
    check (Polytope.make ~dim:d (random_halfspaces rng d 8.0))
  done

let test_freeze_single_point () =
  check_degenerate_kd [| ([| 3.5; -1.0 |], 7) |];
  check_degenerate_kd [| ([| 3.5; -1.0; 2.25 |], 7) |];
  check_degenerate_ptree [| ([| 3.5; -1.0 |], 7) |];
  check_degenerate_ptree [| ([| 3.5; -1.0; 2.25 |], 7) |]

let test_freeze_all_duplicates () =
  List.iter
    (fun d ->
      let pts = Array.init 37 (fun i -> (Array.make d 2.0, i)) in
      check_degenerate_kd pts;
      check_degenerate_ptree pts)
    [ 2; 3 ]

(* ---------- postings: galloping arena vs list-based oracle ---------- *)

let random_sorted rng maxlen bound =
  Sorted.sort_dedup (List.init (Prng.int rng maxlen) (fun _ -> Prng.int rng bound))

let intersect_sweep seed =
  let rng = Prng.create (seed + 3000) in
  for _ = 1 to 40 do
    let a = random_sorted rng 120 150 and b = random_sorted rng 120 150 in
    Alcotest.(check (array int))
      "gallop = merge intersect" (Sorted.intersect a b)
      (Sorted.gallop_intersect a b);
    (* galloping is asymmetric in its probe pattern; the result must not be *)
    Alcotest.(check (array int))
      "gallop commutes" (Sorted.gallop_intersect a b)
      (Sorted.gallop_intersect b a)
  done;
  (* edges: empty, disjoint, identical, nested spans *)
  Alcotest.(check (array int)) "empty left" [||] (Sorted.gallop_intersect [||] [| 1; 2 |]);
  Alcotest.(check (array int)) "empty right" [||] (Sorted.gallop_intersect [| 1; 2 |] [||]);
  Alcotest.(check (array int))
    "disjoint" [||]
    (Sorted.gallop_intersect [| 1; 3; 5 |] [| 2; 4; 6 |]);
  Alcotest.(check (array int))
    "identical" [| 1; 2; 3 |]
    (Sorted.gallop_intersect [| 1; 2; 3 |] [| 1; 2; 3 |]);
  true

let qcheck_intersect =
  QCheck.Test.make ~name:"galloping intersection equals the merge oracle" ~count:10
    QCheck.(small_int)
    intersect_sweep

let inverted_sweep seed =
  let n = 60 + (seed * 41 mod 300) in
  let objs = Helpers.dataset ~seed:(seed + 11) ~n ~d:2 ~vocab:25 () in
  let docs = Array.map snd objs in
  let inv = Inverted.build docs in
  let ps = Inverted.postings inv in
  let rng = Prng.create (seed + 4000) in
  let out = Ibuf.create () and tmp = Ibuf.create () in
  for _ = 1 to 30 do
    let k = 1 + Prng.int rng 3 in
    let ws = Array.init k (fun _ -> 1 + Prng.int rng 30) in
    let oracle = Inverted.query_naive inv ws in
    Alcotest.(check (array int)) "query = naive" oracle (Inverted.query inv ws);
    (* reusing the same buffer pair across queries must not leak state *)
    Postings.query_into ps ws out tmp;
    Alcotest.(check (array int)) "query_into reusable buffers" oracle (Ibuf.to_array out)
  done;
  (* posting returns a fresh copy: mutating it must not corrupt the index *)
  let w = 1 + Prng.int rng 25 in
  let copy = Inverted.posting inv w in
  if Array.length copy > 0 then begin
    let before = Inverted.query inv [| w |] in
    copy.(0) <- max_int;
    Alcotest.(check (array int)) "posting copy is unaliased" before (Inverted.query inv [| w |])
  end;
  true

let qcheck_inverted =
  QCheck.Test.make ~name:"postings arena agrees with the intersection oracle" ~count:10
    QCheck.(small_int)
    inverted_sweep

(* ---------- Stats.alloc_words: monotone and merge-compatible ---------- *)

let test_alloc_counters () =
  let st = Stats.fresh_query () in
  Alcotest.(check int) "fresh counter is zero" 0 st.Stats.alloc_words;
  let x = Stats.count_alloc st (fun () -> 41 + 1) in
  Alcotest.(check int) "count_alloc returns f's value" 42 x;
  Alcotest.(check bool) "never negative" true (st.Stats.alloc_words >= 0);
  let before = st.Stats.alloc_words in
  (* arrays above Max_young_wosize would bypass the minor heap: allocate
     many small blocks instead *)
  let arr =
    Stats.count_alloc st (fun () -> Array.init 20 (fun _ -> Array.make 100 0.0))
  in
  Alcotest.(check int) "allocation really ran" 20 (Array.length arr);
  Alcotest.(check bool)
    "an allocating f is charged" true
    (st.Stats.alloc_words >= before + 2000);
  (* monotone accumulation: a second charge only grows the counter *)
  let mid = st.Stats.alloc_words in
  ignore (Stats.count_alloc st (fun () -> Array.make 64 0));
  Alcotest.(check bool) "accumulates monotonically" true (st.Stats.alloc_words > mid);
  (* merge-compatible: alloc_words sums like every other field *)
  let a = Stats.fresh_query () and b = Stats.fresh_query () in
  a.Stats.alloc_words <- 17;
  b.Stats.alloc_words <- 25;
  Alcotest.(check int) "merge sums alloc_words" 42 (Stats.merge a b).Stats.alloc_words;
  let acc = Stats.fresh_query () in
  Stats.add_into ~into:acc a;
  Stats.add_into ~into:acc b;
  Alcotest.(check int) "add_into accumulates alloc_words" 42 acc.Stats.alloc_words

(* the transformed query path measures its own allocation *)
let test_transform_alloc_measured () =
  let objs = Helpers.dataset ~seed:9 ~n:400 ~d:2 ~vocab:20 () in
  let t = Kwsc.Orp_kw.build ~k:2 objs in
  let rng = Prng.create 77 in
  let seen_positive = ref false in
  for _ = 1 to 20 do
    let q = Helpers.random_rect rng ~d:2 ~range:1000.0 in
    let ws = Helpers.random_keywords rng ~vocab:20 ~k:2 in
    let _, st = Kwsc.Orp_kw.query_stats t q ws in
    Alcotest.(check bool) "alloc_words >= 0" true (st.Stats.alloc_words >= 0);
    if st.Stats.alloc_words > 0 then seen_positive := true
  done;
  Alcotest.(check bool) "some query allocates a result" true !seen_positive

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_kd;
    QCheck_alcotest.to_alcotest qcheck_ptree;
    QCheck_alcotest.to_alcotest qcheck_intersect;
    QCheck_alcotest.to_alcotest qcheck_inverted;
    Alcotest.test_case "freeze: single-point trees" `Quick test_freeze_single_point;
    Alcotest.test_case "freeze: all-duplicate trees" `Quick test_freeze_all_duplicates;
    Alcotest.test_case "alloc counters monotone and mergeable" `Quick test_alloc_counters;
    Alcotest.test_case "transformed queries measure allocation" `Quick
      test_transform_alloc_measured;
  ]
