(* Randomized deep structural audits (the KWSC_AUDIT layer).

   Drives random insert/delete sequences through the dynamic index with
   KWSC_AUDIT=1 — so every insert, delete and interior carry-chain
   rebuild re-audits the Bentley–Saxe bookkeeping automatically — and
   after every batch rebuilds each static index (Kd, Ptree, Dimred,
   Inverted) from the live set and asserts its deep audit comes back
   clean.  Gridded coordinates force tie-breaking paths; a tiny
   vocabulary forces heavily shared keywords. *)

module Doc = Kwsc_invindex.Doc
module Prng = Kwsc_util.Prng
module Invariant = Kwsc_util.Invariant
module Dyn = Kwsc.Dynamic
module Dimred = Kwsc.Dimred
module Kd = Kwsc_kdtree.Kd
module Ptree = Kwsc_ptree.Ptree
module Inverted = Kwsc_invindex.Inverted

let fail_if_violations what vs =
  if vs <> [] then
    QCheck.Test.fail_reportf "%s audit failed:@.%s" what (Invariant.report vs)

let random_obj rng ~d =
  let p = Array.init d (fun _ -> float_of_int (Prng.int rng 8)) in
  let doc =
    Doc.of_list (List.init (1 + Prng.int rng 4) (fun _ -> Prng.int rng 10))
  in
  (p, doc)

let audit_statics objs =
  if Array.length objs > 0 then begin
    let tagged = Array.map (fun (p, _) -> (p, ())) objs in
    fail_if_violations "Kd" (Kd.check_invariants (Kd.build tagged));
    fail_if_violations "Ptree" (Ptree.check_invariants (Ptree.build tagged));
    fail_if_violations "Dimred" (Dimred.check_invariants (Dimred.build ~k:2 objs));
    fail_if_violations "Inverted"
      (Inverted.check_invariants (Inverted.build (Array.map snd objs)))
  end

(* The audit gate itself: off by default, raises when enabled. *)
let test_gate () =
  Unix.putenv "KWSC_AUDIT" "0";
  Alcotest.(check bool) "disabled when KWSC_AUDIT=0" false (Invariant.enabled ());
  Invariant.auto_check (fun () ->
      Alcotest.fail "auto_check must not run the checker when disabled");
  Unix.putenv "KWSC_AUDIT" "1";
  Alcotest.(check bool) "enabled when KWSC_AUDIT=1" true (Invariant.enabled ());
  let boom = Invariant.v ~structure:"Fake" ~locus:"root" "seeded violation" in
  Alcotest.check_raises "auto_check raises on violations"
    (Invariant.Audit_failure (Invariant.report [ boom ]))
    (fun () -> Invariant.auto_check (fun () -> [ boom ]));
  Unix.putenv "KWSC_AUDIT" "0"

(* 120 sequences is the thorough KWSC_SLOW=1 tier; the default keeps the
   audit representative without dominating the quick suite's runtime. *)
let audit_count = match Sys.getenv_opt "KWSC_SLOW" with Some "1" -> 120 | _ -> 25

let qcheck_audit =
  QCheck.Test.make
    ~name:"random op sequences leave every index audit-clean" ~count:audit_count
    QCheck.(small_int)
    (fun seed ->
      Unix.putenv "KWSC_AUDIT" "1";
      let rng = Prng.create (0x5eed + seed) in
      let d = 2 + Prng.int rng 2 in
      let t = Dyn.create ~k:2 ~d () in
      let model = ref [] in
      let ops = 40 in
      for i = 1 to ops do
        (if Prng.int rng 4 = 0 && !model <> [] then begin
           let victim, _ =
             List.nth !model (Prng.int rng (List.length !model))
           in
           Dyn.delete t victim;
           model := List.filter (fun (id, _) -> id <> victim) !model
         end
         else
           let obj = random_obj rng ~d in
           let id = Dyn.insert t obj in
           model := (id, obj) :: !model);
        if i mod 8 = 0 || i = ops then begin
          fail_if_violations "Dynamic" (Dyn.check_invariants t);
          audit_statics (Array.of_list (List.map snd !model))
        end
      done;
      true)

let suite =
  [
    Alcotest.test_case "KWSC_AUDIT gate" `Quick test_gate;
    QCheck_alcotest.to_alcotest qcheck_audit;
  ]
