(* Out-of-core pager tests (DESIGN.md section 15): the mmap-backed paged
   readers must (i) give bit-identical answers to the eager loaders over
   every query surface, (ii) refuse a corrupted section with the same
   typed [Checksum_mismatch name] the eager path gives — deferred to the
   first touch of exactly that section, leaving the others readable —
   and (iii) turn unreadable files into typed [Io] errors naming the
   path, never a raw [Sys_error]. *)

open Kwsc_geom
module C = Kwsc_snapshot.Codec
module Pager = Kwsc_snapshot.Pager
module Doc = Kwsc_invindex.Doc
module Inv = Kwsc_invindex.Inverted
module Pst = Kwsc_invindex.Postings
module Cont = Kwsc_util.Container
module Once = Kwsc_util.Pool.Once
module Prng = Kwsc_util.Prng
module Ibuf = Kwsc_util.Ibuf
module Dyn = Kwsc.Dynamic
module Kd_flat = Kwsc_kdtree.Kd_flat
module Ptree_flat = Kwsc_ptree.Ptree_flat

let with_snap f =
  let path = Filename.temp_file "kwsc_pager" ".snap" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let ok_exn = function
  | Ok t -> t
  | Error e -> Alcotest.failf "paged load failed: %s" (C.error_to_string e)

let read_all path = In_channel.with_open_bin path In_channel.input_all

let write_all path data =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc data)

let contains ~needle hay =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* run [f], demand it raises [Codec.Corrupt], hand back the payload *)
let corrupt_exn what f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Codec.Corrupt, got a value" what
  | exception C.Corrupt e -> e

(* the mixed workload of test_snapshot: words 1-4 dense, 11-14 run
   ranges, 21-120 sparse, so every container kind is present *)
let mixed_docs ~seed ~n =
  let rng = Prng.create seed in
  Array.init n (fun i ->
      let b = Ibuf.create ~capacity:8 () in
      for w = 1 to 4 do
        if Prng.int rng 8 = 0 then Ibuf.push b w
      done;
      for j = 0 to 3 do
        let lo = j * (n / 4) and len = n / 8 in
        if i >= lo && i < lo + len then Ibuf.push b (11 + j)
      done;
      Ibuf.push b (21 + Prng.int rng 100);
      Doc.of_array (Ibuf.to_array b))

(* flip one payload byte of the named section, via the clean directory *)
let flip_section src dst name =
  let bytes = Bytes.of_string (read_all src) in
  let pgr = ok_exn (Pager.open_file src) in
  let s =
    match
      Array.find_opt (fun s -> s.Pager.name = name) (Pager.sections pgr)
    with
    | Some s -> s
    | None -> Alcotest.failf "snapshot has no section %S" name
  in
  Alcotest.(check bool) (name ^ " payload nonempty") true (s.Pager.len > 0);
  let pos = s.Pager.off + (s.Pager.len / 2) in
  Bytes.set bytes pos (Char.chr (Char.code (Bytes.get bytes pos) lxor 0x10));
  write_all dst (Bytes.to_string bytes)

(* ------------------------------------------------------------------ *)
(* Framing and directory introspection                                 *)
(* ------------------------------------------------------------------ *)

let inv_sections =
  [ "meta"; "docs"; "vocab"; "sparsedir"; "sparse.0"; "runcounts"; "runs"; "dense" ]

let test_framing () =
  let cold = Inv.build (mixed_docs ~seed:1501 ~n:512) in
  with_snap (fun path ->
      Inv.save path cold;
      let pgr = ok_exn (Pager.open_file path) in
      Alcotest.(check string) "path" path (Pager.path pgr);
      Alcotest.(check string) "kind" Inv.kind (Pager.kind pgr);
      Alcotest.(check int) "version" C.format_version (Pager.version pgr);
      Alcotest.(check int) "file size" (String.length (read_all path))
        (Pager.file_size pgr);
      let ss = Pager.sections pgr in
      Alcotest.(check (list string)) "section directory" inv_sections
        (Array.to_list (Array.map (fun s -> s.Pager.name) ss));
      (* the directory tiles the file: offsets ascend, payloads fit *)
      Array.iter
        (fun s ->
          Alcotest.(check bool) "payload inside the file" true
            (s.Pager.off >= 0 && s.Pager.off + s.Pager.len <= Pager.file_size pgr))
        ss;
      for i = 1 to Array.length ss - 1 do
        Alcotest.(check bool) "offsets ascend" true
          (ss.(i).Pager.off >= ss.(i - 1).Pager.off + ss.(i - 1).Pager.len)
      done;
      (* nothing is verified at open; verification is per section *)
      List.iter
        (fun n -> Alcotest.(check bool) (n ^ " unverified at open") false
            (Pager.verified pgr n))
        inv_sections;
      Pager.verify pgr "vocab";
      Alcotest.(check bool) "vocab verified" true (Pager.verified pgr "vocab");
      Alcotest.(check bool) "meta still unverified" false (Pager.verified pgr "meta");
      Pager.verify_all pgr;
      List.iter
        (fun n ->
          Alcotest.(check bool) (n ^ " verified after verify_all") true
            (Pager.verified pgr n))
        inv_sections;
      (* a missing section is a framing error naming the section *)
      (match corrupt_exn "missing section"
               (fun () -> Pager.section_length pgr "no-such-section")
       with
      | C.Malformed msg ->
          Alcotest.(check bool) "names the section" true
            (contains ~needle:"no-such-section" msg)
      | e -> Alcotest.failf "missing section: %s" (C.error_to_string e));
      (* a foreign kind is refused at open, typed *)
      match Pager.open_kind path ~kind:"kwsc.other" with
      | Error (C.Bad_kind { expected = "kwsc.other"; got }) ->
          Alcotest.(check string) "got kind" Inv.kind got
      | Error e -> Alcotest.failf "bad kind: %s" (C.error_to_string e)
      | Ok _ -> Alcotest.fail "foreign kind accepted")

(* ------------------------------------------------------------------ *)
(* Unreadable files are typed Io errors naming the path                *)
(* ------------------------------------------------------------------ *)

let test_missing_file_is_typed_io () =
  let path = Filename.temp_file "kwsc_pager_gone" ".snap" in
  Sys.remove path;
  let expect_io what = function
    | Error (C.Io msg) ->
        Alcotest.(check bool) (what ^ " Io names the path") true
          (contains ~needle:path msg)
    | Error e -> Alcotest.failf "%s: expected Io, got %s" what (C.error_to_string e)
    | Ok _ -> Alcotest.failf "%s: a missing file loaded" what
  in
  expect_io "Pager.open_file" (Pager.open_file path);
  expect_io "Inverted.load" (Inv.load path);
  expect_io "Inverted.load_paged" (Inv.load_paged path);
  expect_io "Dynamic.load eager" (Dyn.load ~ooc:false path);
  expect_io "Dynamic.load paged" (Dyn.load ~ooc:true path);
  (match Kwsc_serve.Serve.restore ~ooc:true path with
  | Error (C.Io _) -> ()
  | Error e -> Alcotest.failf "Serve.restore: %s" (C.error_to_string e)
  | Ok _ -> Alcotest.fail "Serve.restore: a missing file loaded");
  (* an empty file maps to Truncated, not a crash from mmap *)
  with_snap (fun empty ->
      write_all empty "";
      match Pager.open_file empty with
      | Error C.Truncated -> ()
      | Error e -> Alcotest.failf "empty file: %s" (C.error_to_string e)
      | Ok _ -> Alcotest.fail "empty file mapped")

(* ------------------------------------------------------------------ *)
(* Once cells                                                          *)
(* ------------------------------------------------------------------ *)

let test_once () =
  let calls = ref 0 in
  let c =
    Once.make (fun () ->
        incr calls;
        !calls * 10)
  in
  Alcotest.(check bool) "fresh cell unforced" false (Once.is_forced c);
  Alcotest.(check int) "first force runs the thunk" 10 (Once.force c);
  Alcotest.(check bool) "forced after force" true (Once.is_forced c);
  Alcotest.(check int) "second force is cached" 10 (Once.force c);
  Alcotest.(check int) "thunk ran exactly once" 1 !calls;
  let r = Once.ready 7 in
  Alcotest.(check bool) "ready cell is forced" true (Once.is_forced r);
  Alcotest.(check int) "ready value" 7 (Once.force r);
  (* a raising thunk leaves the cell unforced: the next force retries —
     what lets a first-touch Checksum_mismatch repeat deterministically *)
  let tries = ref 0 in
  let c =
    Once.make (fun () ->
        incr tries;
        failwith "boom")
  in
  (match Once.force c with
  | _ -> Alcotest.fail "raising thunk returned"
  | exception Failure _ -> ());
  Alcotest.(check bool) "still unforced after a raise" false (Once.is_forced c);
  (match Once.force c with
  | _ -> Alcotest.fail "raising thunk returned"
  | exception Failure _ -> ());
  Alcotest.(check int) "each force retries" 2 !tries

(* ------------------------------------------------------------------ *)
(* Ints slabs: the packed int-array accessor over the mapping          *)
(* ------------------------------------------------------------------ *)

let test_ints_slab () =
  (* widths 1, 2, 3, 4 and 8 bytes, including negatives: the slab must
     sign-extend exactly like Codec.R.int_array *)
  let cases =
    [
      [| 0; 1; -1; 127; -128 |];
      [| 1000; -1000; 32767; -32768 |];
      [| 100000; -100000 |];
      [| 1 lsl 30; -(1 lsl 30) |];
      [| 1 lsl 55; -(1 lsl 55) |];
      [||];
    ]
  in
  with_snap (fun path ->
      let sections =
        List.mapi
          (fun i a -> (Printf.sprintf "ints.%d" i, C.to_string (fun w -> C.W.int_array w a)))
          cases
      in
      C.save_file ~path ~kind:"kwsc.test.ints" sections;
      let pgr = ok_exn (Pager.open_kind path ~kind:"kwsc.test.ints") in
      List.iteri
        (fun i a ->
          let s = Pager.ints pgr (Printf.sprintf "ints.%d" i) in
          Alcotest.(check int) "slab length" (Array.length a) (Pager.Ints.length s);
          Array.iteri
            (fun j v -> Alcotest.(check int) "slab element" v (Pager.Ints.get s j))
            a;
          (* out-of-bounds access is a typed refusal, not a crash *)
          match corrupt_exn "slab bounds" (fun () -> Pager.Ints.get s (Array.length a)) with
          | C.Malformed _ -> ()
          | e -> Alcotest.failf "slab bounds: %s" (C.error_to_string e))
        cases)

(* ------------------------------------------------------------------ *)
(* Paged vs eager: the inverted index differential                     *)
(* ------------------------------------------------------------------ *)

(* one shared snapshot for the differential sweeps; the temp file is
   removed after both loads (the mapping outlives the directory entry) *)
let inv_pair =
  lazy
    (let docs = mixed_docs ~seed:1601 ~n:1024 in
     let path = Filename.temp_file "kwsc_pager_diff" ".snap" in
     Fun.protect
       ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
       (fun () ->
         Inv.save path (Inv.build docs);
         let eager = ok_exn (Inv.load path) in
         let paged = ok_exn (Inv.load_paged path) in
         (eager, paged)))

let inv_diff_sweep seed =
  let eager, paged = Lazy.force inv_pair in
  let rng = Prng.create (0x9a6e + seed) in
  for _ = 1 to 10 do
    let k = 1 + Prng.int rng 3 in
    (* the word space deliberately includes absent keywords *)
    let ws = Array.init k (fun _ -> Prng.int rng 130) in
    if Inv.query eager ws <> Inv.query paged ws then
      QCheck.Test.fail_reportf "query diverges on %s"
        (String.concat "," (Array.to_list (Array.map string_of_int ws)))
  done;
  for _ = 1 to 20 do
    let w = Prng.int rng 130 in
    if Inv.frequency eager w <> Inv.frequency paged w then
      QCheck.Test.fail_reportf "frequency diverges on %d" w;
    if Inv.posting eager w <> Inv.posting paged w then
      QCheck.Test.fail_reportf "posting diverges on %d" w;
    let id = Prng.int rng 1024 in
    if
      Pst.mem (Inv.postings eager) w id <> Pst.mem (Inv.postings paged) w id
    then QCheck.Test.fail_reportf "mem diverges on (%d, %d)" w id
  done;
  true

let qcheck_inv_diff =
  QCheck.Test.make ~count:30
    ~name:"paged and eager inverted answers are bit-identical"
    QCheck.small_int inv_diff_sweep

let test_inv_paged_residency () =
  let docs = mixed_docs ~seed:1701 ~n:512 in
  with_snap (fun path ->
      Inv.save path (Inv.build docs);
      let eager = ok_exn (Inv.load path) in
      let paged = ok_exn (Inv.load_paged path) in
      let nw = Pst.num_words (Inv.postings paged) in
      Alcotest.(check int) "eager is fully resident" nw
        (Inv.resident_containers eager);
      Alcotest.(check int) "paged starts empty" 0 (Inv.resident_containers paged);
      (* the resident cardinality column plans without faulting in *)
      let w0 = (Inv.vocabulary eager).(0) in
      Alcotest.(check int) "frequency stays resident"
        (Inv.frequency eager w0) (Inv.frequency paged w0);
      Alcotest.(check int) "still empty after frequency" 0
        (Inv.resident_containers paged);
      Helpers.check_ids "first query" (Inv.query eager [| w0 |]) (Inv.query paged [| w0 |]);
      Alcotest.(check int) "one container after one query" 1
        (Inv.resident_containers paged);
      (* batch answers agree and prefault exactly the touched words *)
      let vocab = Inv.vocabulary eager in
      let wss = Array.map (fun w -> [| w |]) vocab in
      let be = Inv.query_batch eager wss and bp = Inv.query_batch paged wss in
      Array.iteri (fun i a -> Helpers.check_ids "batch slot" a bp.(i)) be;
      Alcotest.(check int) "batch over the vocabulary pages everything in" nw
        (Inv.resident_containers paged);
      (* physical layout parity, not just answers *)
      let pe = Inv.postings eager and pp = Inv.postings paged in
      Alcotest.(check bool) "kind counts" true
        (Pst.kind_counts pe = Pst.kind_counts pp);
      (* the deferred docs section materializes the exact build input *)
      let de = Inv.documents eager and dp = Inv.documents paged in
      Alcotest.(check int) "documents length" (Array.length de) (Array.length dp);
      Array.iteri
        (fun i d -> Helpers.check_ids "document" (Doc.to_array d) (Doc.to_array dp.(i)))
        de)

(* ------------------------------------------------------------------ *)
(* First-touch refusal: bit flips per section                          *)
(* ------------------------------------------------------------------ *)

(* one vocabulary word per container kind, read off the eager index *)
let kind_reps eager =
  let ps = Inv.postings eager in
  let rep = Hashtbl.create 3 in
  for r = 0 to Pst.num_words ps - 1 do
    let k = Cont.kind (Pst.container ps r) in
    if not (Hashtbl.mem rep k) then Hashtbl.add rep k (Pst.word ps r)
  done;
  let get k =
    match Hashtbl.find_opt rep k with
    | Some w -> w
    | None -> Alcotest.fail "workload is missing a container kind"
  in
  (get Cont.Sparse, get Cont.Dense, get Cont.Runs)

let test_inv_first_touch_refusal () =
  let docs = mixed_docs ~seed:1801 ~n:1024 in
  let cold = Inv.build docs in
  let ws, wd, wr = kind_reps cold in
  with_snap (fun path ->
      Inv.save path cold;
      with_snap (fun path2 ->
          (* the vocabulary columns are decoded at open: flipping any of
             them is refused by load_paged itself, naming the section *)
          List.iter
            (fun victim ->
              flip_section path path2 victim;
              match Inv.load_paged path2 with
              | Error (C.Checksum_mismatch name) ->
                  Alcotest.(check string) "refusal names the section" victim name
              | Error e ->
                  Alcotest.failf "%s flip: %s" victim (C.error_to_string e)
              | Ok _ -> Alcotest.failf "%s flip was accepted at open" victim)
            [ "meta"; "vocab"; "runcounts" ];
          (* a posting column flip surfaces on the first query that
             touches a container of that kind — and only that kind: the
             other columns keep answering, bit-identically *)
          List.iter
            (fun (victim, bad, good) ->
              flip_section path path2 victim;
              let warm = ok_exn (Inv.load_paged path2) in
              List.iter
                (fun w ->
                  Helpers.check_ids
                    (Printf.sprintf "%s flip leaves word %d intact" victim w)
                    (Inv.query cold [| w |]) (Inv.query warm [| w |]))
                good;
              (match corrupt_exn
                       (Printf.sprintf "%s flip, word %d" victim bad)
                       (fun () -> Inv.query warm [| bad |])
               with
              | C.Checksum_mismatch name ->
                  Alcotest.(check string) "refusal names the section" victim name
              | e -> Alcotest.failf "%s flip: %s" victim (C.error_to_string e));
              (* the refusal is sticky, not one-shot *)
              match corrupt_exn "repeat touch" (fun () -> Inv.query warm [| bad |]) with
              | C.Checksum_mismatch _ -> ()
              | e -> Alcotest.failf "repeat touch: %s" (C.error_to_string e))
            [
              (* [ws] is the lowest sparse rank, so its span sits at
                 element offset 0 — always chunk 0 *)
              ("sparse.0", ws, [ wd; wr ]);
              ("dense", wd, [ ws; wr ]);
              ("runs", wr, [ ws; wd ]);
            ];
          (* a docs flip defers to the documents accessor; queries never
             touch it *)
          flip_section path path2 "docs";
          let warm = ok_exn (Inv.load_paged path2) in
          List.iter
            (fun w ->
              Helpers.check_ids "docs flip leaves queries intact"
                (Inv.query cold [| w |]) (Inv.query warm [| w |]))
            [ ws; wd; wr ];
          (match corrupt_exn "documents" (fun () -> Inv.documents warm) with
          | C.Checksum_mismatch "docs" -> ()
          | e -> Alcotest.failf "docs flip: %s" (C.error_to_string e));
          (* multi-chunk tail: shrink the chunk size so the sparse column
             splits, flip the second chunk, and check that the chunk is
             the refusal granularity — words in clean chunks keep
             answering bit-identically, words in the flipped chunk raise
             a mismatch naming exactly that chunk *)
          with_snap (fun path3 ->
              Inv.save ~sparse_chunk_elems:64 path3 cold;
              let nchunks =
                Array.fold_left
                  (fun acc (s : Pager.section) ->
                    if
                      String.length s.Pager.name > 7
                      && String.sub s.Pager.name 0 7 = "sparse."
                    then acc + 1
                    else acc)
                  0
                  (Pager.sections (ok_exn (Pager.open_file path3)))
              in
              Alcotest.(check bool) "chunked save splits the tail" true (nchunks > 1);
              (* the eager loader reassembles the chunked column *)
              let eager2 = ok_exn (Inv.load path3) in
              List.iter
                (fun w ->
                  Helpers.check_ids "eager load of a chunked snapshot"
                    (Inv.query cold [| w |]) (Inv.query eager2 [| w |]))
                [ ws; wd; wr ];
              flip_section path3 path2 "sparse.1";
              let warm = ok_exn (Inv.load_paged path2) in
              let hit = ref 0 in
              let ps = Inv.postings cold in
              for r = 0 to Pst.num_words ps - 1 do
                if Cont.kind (Pst.container ps r) = Cont.Sparse then begin
                  let w = Pst.word ps r in
                  match Inv.query warm [| w |] with
                  | ids ->
                      Helpers.check_ids "word in a clean chunk"
                        (Inv.query cold [| w |]) ids
                  | exception C.Corrupt (C.Checksum_mismatch name) ->
                      Alcotest.(check string) "refusal names the chunk" "sparse.1" name;
                      incr hit
                end
              done;
              Alcotest.(check bool) "some word lands in the flipped chunk" true
                (!hit > 0))))

(* ------------------------------------------------------------------ *)
(* Dynamic checkpoints: deferred buckets                               *)
(* ------------------------------------------------------------------ *)

let random_obj rng =
  let p = [| Prng.float rng 100.0; Prng.float rng 100.0 |] in
  let doc = Doc.of_list (List.init (1 + Prng.int rng 4) (fun _ -> 1 + Prng.int rng 12)) in
  (p, doc)

let test_dynamic_paged () =
  let t = Dyn.create ~k:2 ~d:2 () in
  let rng = Prng.create 1901 in
  let ids = Array.init 150 (fun _ -> Dyn.insert t (random_obj rng)) in
  Array.iteri (fun i id -> if i mod 9 = 0 then Dyn.delete t id) ids;
  with_snap (fun path ->
      Dyn.save path t;
      let eager = ok_exn (Dyn.load ~ooc:false path) in
      let paged = ok_exn (Dyn.load ~ooc:true path) in
      (* resident metadata agrees without forcing a single bucket *)
      Alcotest.(check int) "size" (Dyn.size eager) (Dyn.size paged);
      Alcotest.(check int) "version" (Dyn.version eager) (Dyn.version paged);
      Alcotest.(check (list int)) "bucket chain" (Dyn.buckets eager)
        (Dyn.buckets paged);
      Array.iter
        (fun cell ->
          Alcotest.(check bool) "bucket deferred at open" false (Once.is_forced cell))
        (Dyn.view paged);
      for _ = 1 to 30 do
        let q = Helpers.random_rect rng ~d:2 ~range:100.0 in
        let ws = Helpers.random_keywords rng ~vocab:12 ~k:2 in
        Helpers.check_ids "paged = eager" (Dyn.query eager q ws) (Dyn.query paged q ws)
      done;
      Array.iter
        (fun cell ->
          Alcotest.(check bool) "bucket forced by queries" true (Once.is_forced cell))
        (Dyn.view paged);
      (* a paged restore accepts further audited updates *)
      Alcotest.(check int) "ids continue" 150 (Dyn.insert paged (random_obj rng));
      (* flip a bucket: the paged open succeeds, the first query is the
         typed refusal the eager path gives at load time *)
      with_snap (fun path2 ->
          flip_section path path2 "bucket.0";
          (match Dyn.load ~ooc:false path2 with
          | Error (C.Checksum_mismatch "bucket.0") -> ()
          | Error e -> Alcotest.failf "eager flip: %s" (C.error_to_string e)
          | Ok _ -> Alcotest.fail "eager load accepted a flipped bucket");
          let warm = ok_exn (Dyn.load ~ooc:true path2) in
          Alcotest.(check (list int)) "metadata still readable"
            (Dyn.buckets eager) (Dyn.buckets warm);
          let q = Rect.full 2 in
          match corrupt_exn "paged query" (fun () -> Dyn.query warm q [| 1 |]) with
          | C.Checksum_mismatch "bucket.0" -> ()
          | e -> Alcotest.failf "paged flip: %s" (C.error_to_string e)))

let test_serve_restore_paged () =
  let module Serve = Kwsc_serve.Serve in
  let module Epoch = Kwsc_serve.Epoch in
  let t = Serve.create ~k:2 ~d:2 () in
  let rng = Prng.create 2001 in
  let ids = Array.init 120 (fun _ -> Serve.insert t (random_obj rng)) in
  Array.iteri (fun i id -> if i mod 11 = 0 then Serve.delete t id) ids;
  with_snap (fun path ->
      Serve.checkpoint t path;
      let eager = ok_exn (Serve.restore ~ooc:false path) in
      let paged = ok_exn (Serve.restore ~ooc:true path) in
      Alcotest.(check (list int)) "bucket sizes without forcing"
        (Serve.bucket_sizes eager) (Serve.bucket_sizes paged);
      (* prefault pages every bucket in on this domain, then the epoch
         surfaces answer identically *)
      Epoch.prefault (Serve.current paged);
      for _ = 1 to 25 do
        let q = Helpers.random_rect rng ~d:2 ~range:100.0 in
        let ws = Helpers.random_keywords rng ~vocab:12 ~k:2 in
        let ids_e, st_e = Serve.query_stats eager q ws in
        let ids_p, st_p = Serve.query_stats paged q ws in
        Helpers.check_ids "restored answers" ids_e ids_p;
        Alcotest.(check bool) "logical work counters" true
          (st_e.Kwsc.Stats.reported = st_p.Kwsc.Stats.reported
          && st_e.Kwsc.Stats.nodes_visited = st_p.Kwsc.Stats.nodes_visited)
      done)

(* ------------------------------------------------------------------ *)
(* Deferred flat trees                                                 *)
(* ------------------------------------------------------------------ *)

(* rebuild the defer tuple of a frozen kd-tree from its accessors *)
let kd_tuple ft =
  let d = Kd_flat.dim ft and n = Kd_flat.size ft in
  let nn = Kd_flat.num_nodes ft in
  let b = Kd_flat.bounds ft in
  ( d,
    n,
    Array.copy b.Rect.lo,
    Array.copy b.Rect.hi,
    Array.init nn (Kd_flat.node_axis ft),
    Array.init nn (Kd_flat.node_split ft),
    Array.init nn (Kd_flat.node_right ft),
    Array.init nn (Kd_flat.node_start ft),
    Array.init nn (Kd_flat.node_count ft),
    Array.init (n * d) (fun i -> Kd_flat.coord ft (i / d) (i mod d)),
    Array.init n (Kd_flat.payload ft) )

let test_kd_defer () =
  let module Kd = Kwsc_kdtree.Kd in
  let rng = Prng.create 2101 in
  let pts =
    Array.init 200 (fun i -> (Array.init 2 (fun _ -> Prng.float rng 100.0), i))
  in
  let arena = Kd.freeze (Kd.build pts) in
  let forced = ref 0 in
  let lazy_t =
    Kd_flat.defer (fun () ->
        incr forced;
        kd_tuple arena)
  in
  Alcotest.(check bool) "deferred before first touch" true
    (Kd_flat.backing lazy_t = `Deferred);
  Alcotest.(check int) "size forces the thunk" 200 (Kd_flat.size lazy_t);
  Alcotest.(check bool) "arena after first touch" true
    (Kd_flat.backing lazy_t = `Arena);
  for _ = 1 to 15 do
    let q = Helpers.random_rect rng ~d:2 ~range:100.0 in
    let slots t =
      let acc = ref [] in
      Kd_flat.range_iter t q (fun s v -> acc := (s, v) :: !acc);
      List.rev !acc
    in
    Alcotest.(check bool) "range slots identical" true (slots arena = slots lazy_t);
    let p = Array.init 2 (fun _ -> Prng.float rng 100.0) in
    Alcotest.(check bool) "nearest identical" true
      (Kd_flat.nearest arena ~metric:`L2 p 5 = Kd_flat.nearest lazy_t ~metric:`L2 p 5)
  done;
  Alcotest.(check int) "thunk ran exactly once" 1 !forced;
  (* a thunk that fails its lazy CRC propagates and stays deferred *)
  let bad : int Kd_flat.t =
    Kd_flat.defer (fun () -> raise (C.Corrupt (C.Checksum_mismatch "kd")))
  in
  (match corrupt_exn "kd defer" (fun () -> Kd_flat.size bad) with
  | C.Checksum_mismatch "kd" -> ()
  | e -> Alcotest.failf "kd defer: %s" (C.error_to_string e));
  Alcotest.(check bool) "still deferred after the refusal" true
    (Kd_flat.backing bad = `Deferred)

let test_ptree_defer () =
  (* a single-leaf tree built by hand: the membership recheck in
     query_polytope_iter makes the answers exact regardless of shape *)
  let coords = [| 1.0; 1.0; 4.0; 2.0; 2.0; 8.0; 9.0; 9.0 |] in
  let tuple () =
    ( 2,
      4,
      [| 0.0; 0.0 |],
      [| 0.0 |],
      [| -1 |],
      [| 0 |],
      [| 4 |],
      Array.copy coords,
      [| 0; 1; 2; 3 |],
      100.0,
      Prng.create 7 )
  in
  let d, n, dir, m, right, start, count, cs, payload, box, rng = tuple () in
  let arena =
    Ptree_flat.unsafe_make ~d ~n ~dir ~m ~right ~start ~count ~coords:cs ~payload
      ~box ~rng
  in
  let lazy_t = Ptree_flat.defer tuple in
  Alcotest.(check bool) "deferred before first touch" true
    (Ptree_flat.backing lazy_t = `Deferred);
  let poly = Polytope.of_rect (Rect.make [| 0.0; 0.0 |] [| 5.0; 5.0 |]) in
  let hits t =
    let acc = ref [] in
    Ptree_flat.query_polytope_iter t poly (fun s v -> acc := (s, v) :: !acc);
    List.rev !acc
  in
  Alcotest.(check bool) "polytope hits identical" true (hits arena = hits lazy_t);
  Alcotest.(check bool) "arena after first touch" true
    (Ptree_flat.backing lazy_t = `Arena);
  Alcotest.(check int) "size" 4 (Ptree_flat.size lazy_t);
  (* the deferred materialization applies unsafe_make's validation *)
  let bad : int Ptree_flat.t =
    Ptree_flat.defer (fun () ->
        let d, n, dir, m, right, start, count, cs, payload, box, rng = tuple () in
        ignore payload;
        (d, n, dir, m, right, start, count, cs, [| 0 |], box, rng))
  in
  match Ptree_flat.size bad with
  | _ -> Alcotest.fail "inconsistent deferred arrays were accepted"
  | exception Invalid_argument _ -> ()

let suite =
  [
    Alcotest.test_case "framing and section directory" `Quick test_framing;
    Alcotest.test_case "unreadable files are typed Io errors" `Quick
      test_missing_file_is_typed_io;
    Alcotest.test_case "Once cells force exactly once" `Quick test_once;
    Alcotest.test_case "Ints slabs sign-extend like the codec" `Quick test_ints_slab;
    QCheck_alcotest.to_alcotest qcheck_inv_diff;
    Alcotest.test_case "paged residency grows with traffic" `Quick
      test_inv_paged_residency;
    Alcotest.test_case "bit flips refuse on first touch of that section" `Quick
      test_inv_first_touch_refusal;
    Alcotest.test_case "dynamic checkpoints page buckets lazily" `Quick
      test_dynamic_paged;
    Alcotest.test_case "serve restores out-of-core" `Quick test_serve_restore_paged;
    Alcotest.test_case "kd-tree defer is answer-identical" `Quick test_kd_defer;
    Alcotest.test_case "partition-tree defer is answer-identical" `Quick
      test_ptree_defer;
  ]
