(* Seeded violations for the kwsc-lint meta-test (test_lint.ml).

   This file is parsed by the linter but never compiled: the directory
   has no dune file, so no stanza claims it.  It seeds at least one
   violation per rule; the meta-test asserts every rule fires under
   --assume-hot --assume-lib --assume-kernel --require-mli and that the
   CLI exits nonzero.  R7 is the deliberate absence of bad.mli. *)

(* R1: polymorphic comparison on float-bearing data (hot-path scope) *)
let r1_compare p q = compare p q
let r1_operator a b = (a : Point.t) = b
let r1_value () = List.sort ( < ) [ 3; 1; 2 ]

(* R2: Obj.magic *)
let r2 x = (Obj.magic x : int)

(* R3: printing from library code (lib/ scope) *)
let r3 n = Printf.printf "debug: %d\n" n

(* R4: accidentally-quadratic list idioms (hot-path scope) *)
let r4_nth l = List.nth l 3
let r4_append a b c = (a @ b) @ c

(* R5: exact float equality *)
let r5 x = x = 1.0

(* R6: blanket exception handler *)
let r6 f = try f () with _ -> 0

(* R8: raw multicore primitives in library code (lib/ scope).  Under
   the meta-test's --assume-serve the Atomic uses fire R13 instead —
   the serving layer's epoch-discipline rule owns Atomic there — so R8
   is seeded with a non-Atomic primitive. *)
let r8_spawn f = Domain.spawn f
let r8_value = Mutex.lock

(* R13: Atomic outside lib/serve/serve.ml (serve scope) *)
let r13_publish c v = Atomic.set c v
let r13_value = Atomic.get

(* R9: Hashtbl and list construction in a query-kernel module (kernel scope) *)
let r9_table () = Hashtbl.create 7
let r9_cons x xs = x :: xs

(* R10: Marshal instead of the versioned snapshot codec *)
let r10_to x = Marshal.to_string x []
let r10_value = Marshal.from_channel

(* R11: raw container word access outside lib/util/container.ml *)
let r11_apply c = Kwsc_util.Container.unsafe_words c
let r11_value = Container.unsafe_words

(* R12: shard-id arithmetic outside lib/shard/ *)
let r12_apply p i = Kwsc_shard.Plan.owner_of p i
let r12_value = Plan.owner_of

(* R14: mmap primitives outside lib/snapshot/pager.ml *)
let r14_map fd n = Unix.map_file fd Bigarray.char Bigarray.c_layout false [| n |]
let r14_value = Bigarray.array1_of_genarray
