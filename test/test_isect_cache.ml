(* Isect_cache: LFU eviction mechanics, counter lifecycle, and the
   copy-on-both-sides ownership contract Inverted.query relies on. *)

module C = Kwsc_invindex.Isect_cache

let ids a = Array.of_list a

let test_capacity_eviction () =
  (* fill a default-capacity cache exactly: no evictions yet *)
  let c = C.create () in
  Alcotest.(check int) "default capacity" 64 (C.capacity c);
  for w = 0 to C.default_capacity - 1 do
    C.store c w (w + 1000) (ids [ w ])
  done;
  Alcotest.(check int) "full cache, no evictions" 0 (C.evictions c);
  List.iter
    (fun w ->
      match C.find c w (w + 1000) with
      | Some r -> Alcotest.(check (array int)) "resident pair" [| w |] r
      | None -> Alcotest.fail "pair missing before any eviction")
    [ 0; 17; C.default_capacity - 1 ];
  (* entry 65 tips it over: exactly one eviction *)
  C.store c 9999 10000 (ids [ 42 ]);
  Alcotest.(check int) "one past capacity evicts once" 1 (C.evictions c);
  Alcotest.(check bool) "newcomer resident" true (C.find c 9999 10000 <> None)

let test_lfu_frequency_tie () =
  (* capacity 3; bump two entries so the untouched one (freq 1) is the
     unique minimum and must be the victim *)
  let c = C.create ~capacity:3 () in
  C.store c 0 1 (ids [ 10 ]);
  C.store c 2 3 (ids [ 20 ]);
  C.store c 4 5 (ids [ 30 ]);
  ignore (C.find c 0 1);
  ignore (C.find c 4 5);
  C.store c 6 7 (ids [ 40 ]);
  Alcotest.(check bool) "cold entry evicted" true (C.find c 2 3 = None);
  Alcotest.(check bool) "hot entries survive" true
    (C.find c 0 1 <> None && C.find c 4 5 <> None && C.find c 6 7 <> None);
  (* all-tied frequencies: the first minimum in slot order is the victim *)
  let c = C.create ~capacity:3 () in
  C.store c 0 1 (ids [ 10 ]);
  C.store c 2 3 (ids [ 20 ]);
  C.store c 4 5 (ids [ 30 ]);
  C.store c 6 7 (ids [ 40 ]);
  Alcotest.(check bool) "tie evicts the first slot" true (C.find c 0 1 = None);
  Alcotest.(check bool) "later ties untouched" true
    (C.find c 2 3 <> None && C.find c 4 5 <> None)

let test_key_normalization () =
  let c = C.create ~capacity:4 () in
  C.store c 7 3 (ids [ 1; 2 ]);
  (match C.find c 3 7 with
  | Some r -> Alcotest.(check (array int)) "swapped key hits" [| 1; 2 |] r
  | None -> Alcotest.fail "unordered pair not normalized");
  Alcotest.(check int) "one hit" 1 (C.hits c)

let test_reset_clears_counters () =
  let c = C.create ~capacity:2 () in
  C.store c 0 1 (ids [ 5 ]);
  C.store c 2 3 (ids [ 6 ]);
  C.store c 4 5 (ids [ 7 ]);
  ignore (C.find c 0 1);
  ignore (C.find c 4 5);
  Alcotest.(check bool) "counters moved" true
    (C.hits c + C.misses c > 0 && C.evictions c = 1);
  C.reset c;
  Alcotest.(check int) "hits zeroed" 0 (C.hits c);
  Alcotest.(check int) "misses zeroed" 0 (C.misses c);
  Alcotest.(check int) "evictions zeroed" 0 (C.evictions c);
  Alcotest.(check bool) "entries dropped" true (C.find c 4 5 = None);
  (* the miss just counted proves the counters restart from zero *)
  Alcotest.(check int) "counting restarts" 1 (C.misses c)

let test_defensive_copies () =
  let c = C.create ~capacity:2 () in
  (* store copies: mutating the admitted array later must not leak in *)
  let src = ids [ 1; 2; 3 ] in
  C.store c 0 1 src;
  src.(0) <- 999;
  (match C.find c 0 1 with
  | Some r -> Alcotest.(check (array int)) "store copied" [| 1; 2; 3 |] r
  | None -> Alcotest.fail "stored pair missing");
  (* find copies: mutating a returned answer must not corrupt the cache *)
  (match C.find c 0 1 with
  | Some r -> r.(1) <- 888
  | None -> Alcotest.fail "stored pair missing");
  match C.find c 0 1 with
  | Some r -> Alcotest.(check (array int)) "find copied" [| 1; 2; 3 |] r
  | None -> Alcotest.fail "stored pair missing"

let suite =
  [
    Alcotest.test_case "eviction starts exactly past capacity" `Quick
      test_capacity_eviction;
    Alcotest.test_case "LFU victim selection and ties" `Quick
      test_lfu_frequency_tie;
    Alcotest.test_case "unordered keys share a slot" `Quick
      test_key_normalization;
    Alcotest.test_case "reset drops entries and zeroes counters" `Quick
      test_reset_clears_counters;
    Alcotest.test_case "copies on both sides of the API" `Quick
      test_defensive_copies;
  ]
