(* The ablation knobs of Transform.build must never change query answers —
   only costs. These tests pin correctness under every knob setting and
   check that the costs move the way the design says they should. *)

module Orp = Kwsc.Orp_kw
module Prng = Kwsc_util.Prng

let objs = Helpers.dataset ~seed:161 ~n:300 ~d:2 ()

let check_same_answers t =
  let rng = Prng.create 162 in
  for _ = 1 to 80 do
    let q = Helpers.random_rect rng ~d:2 ~range:1000.0 in
    let ws = Helpers.random_keywords rng ~vocab:40 ~k:2 in
    Helpers.check_ids "ablated index = oracle" (Helpers.oracle_rect objs q ws) (Orp.query t q ws)
  done

let test_tau_zero_correct () = check_same_answers (Orp.build ~tau_exponent:0.0 ~k:2 objs)
let test_tau_one_correct () = check_same_answers (Orp.build ~tau_exponent:1.0 ~k:2 objs)
let test_tau_half_correct () = check_same_answers (Orp.build ~tau_exponent:0.5 ~k:2 objs)
let test_no_bits_correct () = check_same_answers (Orp.build ~use_bits:false ~k:2 objs)

let test_tau_validation () =
  Alcotest.check_raises "tau out of range"
    (Invalid_argument "Transform.build: tau_exponent must be in [0,1]") (fun () ->
      ignore (Orp.build ~tau_exponent:1.5 ~k:2 objs))

(* tau = 1 means every keyword is small everywhere: the index degenerates to
   materialized-list scans, so no node should ever have a large keyword. *)
let test_tau_one_structure () =
  let t = Orp.build ~tau_exponent:1.0 ~k:2 objs in
  Orp.fold_nodes t ~init:() ~f:(fun () v ->
      Alcotest.(check int) "no large keywords" 0 v.Kwsc.Transform.num_large)

(* tau = 0 means every present keyword is large: nothing is ever
   materialized. *)
let test_tau_zero_structure () =
  let t = Orp.build ~tau_exponent:0.0 ~k:2 objs in
  Orp.fold_nodes t ~init:() ~f:(fun () v ->
      Alcotest.(check (list reject)) "nothing materialized" []
        (List.map (fun _ -> ()) v.Kwsc.Transform.materialized))

(* Dropping the emptiness bits must cost work on disjoint-keyword queries:
   with bits the probe prunes in O(1); without, it walks the tree. *)
let test_bits_prune_disjoint () =
  let rng = Prng.create 163 in
  let sets = Kwsc_workload.Gen.ksi_disjoint_heavy ~rng ~m:4 ~set_size:500 in
  let inst = Kwsc_invindex.Ksi_instance.create sets in
  let docs, _ = Kwsc_invindex.Ksi_instance.to_keyword_dataset inst in
  let with_bits = Kwsc.Ksi.of_docs ~k:2 docs in
  let without_bits = Kwsc.Ksi.of_docs ~use_bits:false ~k:2 docs in
  let _, st_with = Kwsc.Ksi.query_stats with_bits [| 1; 2 |] in
  let _, st_without = Kwsc.Ksi.query_stats without_bits [| 1; 2 |] in
  Helpers.check_ids "both empty" [||] (Kwsc.Ksi.query without_bits [| 1; 2 |]);
  Alcotest.(check bool)
    (Printf.sprintf "bits prune: %d with vs %d without" (Kwsc.Stats.work st_with)
       (Kwsc.Stats.work st_without))
    true
    (Kwsc.Stats.work st_with * 4 < Kwsc.Stats.work st_without)

(* The threshold 1 - 1/k trades query work against bit-array space:
   tau = 0 (everything large) blows the k-dimensional emptiness arrays up
   to vocab^k codes per node; tau = 1 (everything small) stores no bits
   but pays full list scans. The default must sit between the extremes on
   both axes. The emptiness arrays live as containers now, so an array
   with no lit codes costs nothing regardless of its code universe — the
   filler docs carry two keywords each so tau = 0 genuinely lights a code
   per doc and pays for it. *)
let test_tau_default_tradeoff () =
  let m = 4096 in
  let f = max 1 (int_of_float (sqrt (float_of_int m)) - 1) in
  (* wide vocabulary of filler keyword pairs makes the tau=0 code sets heavy *)
  let docs =
    Array.init m (fun i ->
        if i < 2 * f then Kwsc_invindex.Doc.of_list [ 1 + (i / f) ]
        else Kwsc_invindex.Doc.of_list [ 3 + (i mod 300); 303 + (i mod 301) ])
  in
  let build tau = Kwsc.Ksi.of_docs ~tau_exponent:tau ~k:2 docs in
  let work t =
    let _, st = Kwsc.Ksi.query_stats t [| 1; 2 |] in
    Kwsc.Stats.work st
  in
  let bits t = (Kwsc.Ksi.space_stats t).Kwsc.Stats.bitset_words in
  let t_def = build 0.5 and t_large = build 0.0 and t_small = build 1.0 in
  Alcotest.(check int) "tau=1 stores no bits" 0 (bits t_small);
  Alcotest.(check bool)
    (Printf.sprintf "bitset space: default %d << tau=0 %d" (bits t_def) (bits t_large))
    true
    (5 * bits t_def < bits t_large);
  Alcotest.(check bool)
    (Printf.sprintf "work: default %d <= tau=1 %d" (work t_def) (work t_small))
    true
    (work t_def <= work t_small)

let test_leaf_weight_correct () =
  List.iter
    (fun lw -> check_same_answers (Orp.build ~leaf_weight:lw ~k:2 objs))
    [ 1; 16; 1000000 ]

let suite =
  [
    Alcotest.test_case "tau=0 correct" `Quick test_tau_zero_correct;
    Alcotest.test_case "tau=1 correct" `Quick test_tau_one_correct;
    Alcotest.test_case "tau=0.5 correct" `Quick test_tau_half_correct;
    Alcotest.test_case "no bits correct" `Quick test_no_bits_correct;
    Alcotest.test_case "tau validation" `Quick test_tau_validation;
    Alcotest.test_case "tau=1 structure (all small)" `Quick test_tau_one_structure;
    Alcotest.test_case "tau=0 structure (all large)" `Quick test_tau_zero_structure;
    Alcotest.test_case "bits prune disjoint queries" `Quick test_bits_prune_disjoint;
    Alcotest.test_case "default tau trade-off" `Quick test_tau_default_tradeoff;
    Alcotest.test_case "leaf_weight extremes correct" `Quick test_leaf_weight_correct;
  ]
