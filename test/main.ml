let () =
  Alcotest.run "kwsc"
    [
      ("util", Test_util.suite);
      ("geom", Test_geom.suite);
      ("geom-more", Test_geom_more.suite);
      ("kdtree", Test_kdtree.suite);
      ("ptree", Test_ptree.suite);
      ("invindex", Test_invindex.suite);
      ("isect-cache", Test_isect_cache.suite);
      ("workload", Test_workload.suite);
      ("transform", Test_transform.suite);
      ("orp-kw", Test_orp.suite);
      ("ksi", Test_ksi.suite);
      ("lc/sp-kw", Test_lc_sp.suite);
      ("srp-kw", Test_srp.suite);
      ("rr-kw", Test_rr.suite);
      ("nn-kw", Test_nn.suite);
      ("dimred", Test_dimred.suite);
      ("baseline", Test_baseline.suite);
      ("csv-io", Test_csv.suite);
      ("ablation", Test_ablation.suite);
      ("integration", Test_integration.suite);
      ("dynamic/pad", Test_dynamic.suite);
      ("serve", Test_serve.suite);
      ("validation", Test_validation.suite);
      ("stress", Test_stress.suite);
      ("parallel-diff", Test_parallel_diff.suite);
      ("shard-diff", Test_shard_diff.suite);
      ("flat-diff", Test_flat_diff.suite);
      ("container-diff", Test_container_diff.suite);
      ("coverage", Test_coverage.suite);
      ("snapshot", Test_snapshot.suite);
      ("hardness", Test_hardness.suite);
      ("lint", Test_lint.suite);
      ("analyze", Test_analyze.suite);
      ("invariants", Test_invariants.suite);
    ]
