(* Meta-tests for kwsc-lint: every rule fires on the seeded fixture,
   path scoping behaves, the allowlist silences precisely, and the CLI
   exit codes are the contract CI relies on. *)

module Lint = Kwsc_lint_lib.Lint

let fixture = "lint_fixtures/bad.ml"

let strict =
  { Lint.default_config with
    assume_hot = true;
    assume_lib = true;
    assume_kernel = true;
    assume_serve = true;
    require_mli = true }

let rule_fires vs r = List.exists (fun v -> v.Lint.rule = r) vs

let test_every_rule_fires () =
  let vs = Lint.lint_file ~config:strict fixture in
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Printf.sprintf "%s fires on fixture" (Lint.rule_id r))
        true (rule_fires vs r))
    Lint.all_rules;
  List.iter
    (fun v ->
      Alcotest.(check bool) "violation line is positive" true (v.Lint.line > 0))
    vs

let test_scoping () =
  (* Outside lib/ and the hot-path dirs only the universal rules apply. *)
  let vs = Lint.lint_file ~config:Lint.default_config fixture in
  let ids =
    List.sort_uniq String.compare
      (List.map (fun v -> Lint.rule_id v.Lint.rule) vs)
  in
  Alcotest.(check (list string))
    "only universal rules outside lib/hot scope"
    [ "R10"; "R11"; "R12"; "R14"; "R2"; "R5"; "R6" ]
    ids

let test_allowlist () =
  let allow =
    Lint.parse_allow "; audited exceptions\n(R2 lint_fixtures/bad.ml)\nR6 bad.ml\n"
  in
  let vs = Lint.lint_file ~config:{ strict with allow } fixture in
  Alcotest.(check bool) "R2 silenced by full path" false (rule_fires vs Lint.R2);
  Alcotest.(check bool) "R6 silenced by suffix path" false (rule_fires vs Lint.R6);
  Alcotest.(check bool) "R4 unaffected" true (rule_fires vs Lint.R4)

let test_allowlist_line_scoped () =
  let vs0 = Lint.lint_file ~config:strict fixture in
  let r5 = List.find (fun v -> v.Lint.rule = Lint.R5) vs0 in
  let exact = Lint.parse_allow (Printf.sprintf "(R5 bad.ml %d)" r5.Lint.line) in
  let vs = Lint.lint_file ~config:{ strict with allow = exact } fixture in
  Alcotest.(check bool) "exact-line entry silences" false (rule_fires vs Lint.R5);
  let wrong = Lint.parse_allow "(R5 bad.ml 9999)" in
  let vs = Lint.lint_file ~config:{ strict with allow = wrong } fixture in
  Alcotest.(check bool) "wrong-line entry does not" true (rule_fires vs Lint.R5)

let test_stale_allow_detection () =
  let live = Lint.parse_allow "(R2 lint_fixtures/bad.ml)" in
  let stale = Lint.parse_allow "(R2 lint_fixtures/no_such.ml)\n(R5 bad.ml 9999)" in
  let raw = Lint.lint_file_raw ~config:strict fixture in
  let kept, used = Lint.filter_allowed (live @ stale) raw in
  Alcotest.(check bool) "live entry filters R2" false (rule_fires kept Lint.R2);
  Alcotest.(check (list string)) "only the live entry is used"
    [ "(R2 lint_fixtures/bad.ml)" ]
    (List.map Lint.pp_allow_entry used);
  Alcotest.(check (list string)) "both stale entries reported"
    [ "(R2 lint_fixtures/no_such.ml)"; "(R5 bad.ml 9999)" ]
    (List.map Lint.pp_allow_entry
       (Lint.unused_allow (live @ stale) ~used));
  (* raw linting ignores the allowlist entirely *)
  Alcotest.(check bool) "lint_file_raw keeps R2" true (rule_fires raw Lint.R2)

let exe = "../tools/lint/kwsc_lint.exe"

let test_cli_strict_rejects_stale_allow () =
  let tmp = Filename.temp_file "kwsc_lint_allow" ".sexp" in
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () ->
      let oc = open_out tmp in
      output_string oc "(R2 lint_fixtures/no_such.ml)\n";
      close_out oc;
      let good = Filename.temp_file "kwsc_lint_ok" ".ml" in
      Fun.protect
        ~finally:(fun () -> Sys.remove good)
        (fun () ->
          let oc = open_out good in
          output_string oc "let answer = 41 + 1\n";
          close_out oc;
          let run flags =
            Sys.command
              (Printf.sprintf "%s --allow %s %s %s > /dev/null 2>&1" exe tmp
                 flags good)
          in
          Alcotest.(check int) "stale entry fails --strict" 1 (run "--strict");
          Alcotest.(check int) "without --strict it only warns" 0 (run "")))

(* R13 scopes by path: an Atomic under lib/serve/ fires unless the file
   is serve.ml itself — the sanctioned holder of the published epoch
   cell — and that carve-out also keeps serve.ml's Atomic out of R8. *)
let test_serve_epoch_discipline () =
  let root = Filename.temp_file "kwsc_lint_serve" "" in
  Sys.remove root;
  let dir = Filename.concat (Filename.concat root "lib") "serve" in
  let rec mkdirs d =
    if not (Sys.file_exists d) then begin
      mkdirs (Filename.dirname d);
      Sys.mkdir d 0o755
    end
  in
  mkdirs dir;
  let write name text =
    let path = Filename.concat dir name in
    let oc = open_out path in
    output_string oc text;
    close_out oc;
    path
  in
  let rogue = write "cache.ml" "let cell = Atomic.make 0
" in
  let writer = write "serve.ml" "let cell = Atomic.make 0
" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove rogue;
      Sys.remove writer)
    (fun () ->
      let vs_rogue = Lint.lint_file ~config:Lint.default_config rogue in
      Alcotest.(check bool) "Atomic outside serve.ml fires R13" true
        (rule_fires vs_rogue Lint.R13);
      Alcotest.(check bool) "and is not double-reported as R8" false
        (rule_fires vs_rogue Lint.R8);
      let vs_writer = Lint.lint_file ~config:Lint.default_config writer in
      Alcotest.(check bool) "serve.ml's epoch Atomic is sanctioned (no R13)" false
        (rule_fires vs_writer Lint.R13);
      Alcotest.(check bool) "serve.ml's epoch Atomic is exempt from R8" false
        (rule_fires vs_writer Lint.R8))

let test_cli_nonzero_on_fixture () =
  let cmd =
    Printf.sprintf
      "%s --assume-hot --assume-lib --assume-kernel --require-mli %s > /dev/null" exe fixture
  in
  Alcotest.(check bool) "CLI exits nonzero on fixture" true (Sys.command cmd <> 0)

let test_cli_clean_on_good_file () =
  let tmp = Filename.temp_file "kwsc_lint_ok" ".ml" in
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () ->
      let oc = open_out tmp in
      output_string oc "let answer = 41 + 1\n";
      close_out oc;
      let cmd = Printf.sprintf "%s --assume-hot --assume-lib %s > /dev/null" exe tmp in
      Alcotest.(check int) "CLI exits 0 on a clean file" 0 (Sys.command cmd))

let suite =
  [
    Alcotest.test_case "every rule fires on the fixture" `Quick test_every_rule_fires;
    Alcotest.test_case "rules scope by path" `Quick test_scoping;
    Alcotest.test_case "allowlist silences by rule+path" `Quick test_allowlist;
    Alcotest.test_case "allowlist line scoping" `Quick test_allowlist_line_scoped;
    Alcotest.test_case "stale allow entries are detected" `Quick
      test_stale_allow_detection;
    Alcotest.test_case "serve epoch discipline (R13) scopes by path" `Quick
      test_serve_epoch_discipline;
    Alcotest.test_case "cli: --strict rejects stale entries" `Quick
      test_cli_strict_rejects_stale_allow;
    Alcotest.test_case "cli: nonzero exit on violations" `Quick test_cli_nonzero_on_fixture;
    Alcotest.test_case "cli: zero exit on clean input" `Quick test_cli_clean_on_good_file;
  ]
