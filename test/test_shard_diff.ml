(* Differential proof that sharding the data changes nothing.

   Ground truth is the unsharded index. For every shard count
   K ∈ {1, 2, 3, 8}, both partitioning policies, and three query
   surfaces (the inverted baseline, ORP-KW, RR-KW):

   - answers are bit-identical to the unsharded index, including the
     K > |universe| (empty shards) and K = 1 degenerate plans;
   - at K = 1 the single shard is byte-identical (Marshal digest) to
     the unsharded structure and its merged counters equal the
     unsharded counters field for field;
   - at fixed K the sharded build and the scatter-gather counters are
     identical at every pool size (the PR 2 determinism contract lifted
     to the router);
   - every shard-local LFU cache sees exactly the unsharded cache's
     key sequence: per-shard (hits, misses, evictions) equal the
     unsharded counters, and the cache traffic threaded through the
     merged Stats sums the per-shard deltas.

   Builds in the qcheck tests run under KWSC_AUDIT=1, so the deep
   structural audits also pass on every per-shard structure. *)

open Kwsc_geom
module Doc = Kwsc_invindex.Doc
module Inverted = Kwsc_invindex.Inverted
module Prng = Kwsc_util.Prng
module Pool = Kwsc_util.Pool
module Stats = Kwsc.Stats
module Plan = Kwsc_shard.Plan
module Gather = Kwsc_shard.Gather
module S = Kwsc_shard.Surfaces

let slow = match Sys.getenv_opt "KWSC_SLOW" with Some "1" -> true | _ -> false
let shard_counts = [| 1; 2; 3; 8 |]
let policies = [| Plan.Hash; Plan.Range |]

let pools =
  lazy
    (let ps = Array.map (fun n -> Pool.create ~domains:n ()) [| 1; 2; 4 |] in
     at_exit (fun () -> Array.iter Pool.shutdown ps);
     ps)

let with_each_pool f = Array.iter f (Lazy.force pools)
let pool1 () = (Lazy.force pools).(0)

let with_audit f =
  Unix.putenv "KWSC_AUDIT" "1";
  Fun.protect ~finally:(fun () -> Unix.putenv "KWSC_AUDIT" "0") f

let digest v = Digest.to_hex (Digest.string (Marshal.to_string v [ Marshal.Closures ]))
let digest_sub = function Some sub -> digest sub | None -> "<empty shard>"

let check_query_eq what (a : Stats.query) (b : Stats.query) =
  let ck field va vb = Alcotest.(check int) (what ^ ": " ^ field) va vb in
  ck "nodes_visited" a.Stats.nodes_visited b.Stats.nodes_visited;
  ck "covered_nodes" a.Stats.covered_nodes b.Stats.covered_nodes;
  ck "crossing_nodes" a.Stats.crossing_nodes b.Stats.crossing_nodes;
  ck "pivot_checked" a.Stats.pivot_checked b.Stats.pivot_checked;
  ck "small_scanned" a.Stats.small_scanned b.Stats.small_scanned;
  ck "pruned_empty" a.Stats.pruned_empty b.Stats.pruned_empty;
  ck "pruned_geom" a.Stats.pruned_geom b.Stats.pruned_geom;
  ck "reported" a.Stats.reported b.Stats.reported;
  ck "alloc_words" a.Stats.alloc_words b.Stats.alloc_words;
  ck "cache_hits" a.Stats.cache_hits b.Stats.cache_hits;
  ck "cache_misses" a.Stats.cache_misses b.Stats.cache_misses;
  ck "work" (Stats.work a) (Stats.work b)

(* ------------------------------------------------------------------ *)
(* The plan is a lawful partition.                                     *)
(* ------------------------------------------------------------------ *)

let test_plan_partition () =
  Array.iter
    (fun policy ->
      List.iter
        (fun (shards, n) ->
          let what =
            Printf.sprintf "%s K=%d n=%d" (Plan.policy_name policy) shards n
          in
          let plan = Plan.make ~policy ~shards ~n in
          Alcotest.(check int) (what ^ ": shards") shards (Plan.shards plan);
          Alcotest.(check int) (what ^ ": size") n (Plan.size plan);
          let seen = Array.make n false in
          let total = ref 0 in
          for s = 0 to shards - 1 do
            let g = Plan.global_ids plan s in
            Alcotest.(check int)
              (what ^ ": count agrees")
              (Array.length g) (Plan.count plan s);
            total := !total + Array.length g;
            Array.iteri
              (fun l id ->
                Alcotest.(check bool) (what ^ ": id in range") true (id >= 0 && id < n);
                Alcotest.(check bool) (what ^ ": no duplicate owner") false seen.(id);
                seen.(id) <- true;
                Alcotest.(check int) (what ^ ": owner_of consistent") s (Plan.owner_of plan id);
                if l > 0 then
                  Alcotest.(check bool)
                    (what ^ ": strictly ascending")
                    true
                    (g.(l - 1) < id))
              g
          done;
          Alcotest.(check int) (what ^ ": partition covers") n !total;
          (* range policy keeps shards contiguous *)
          if policy = Plan.Range then
            for s = 0 to shards - 1 do
              let g = Plan.global_ids plan s in
              if Array.length g > 0 then
                Alcotest.(check int)
                  (what ^ ": range shard is contiguous")
                  (g.(Array.length g - 1) - g.(0) + 1)
                  (Array.length g)
            done)
        [ (1, 0); (1, 17); (2, 17); (3, 17); (8, 5); (8, 64); (5, 5) ])
    policies;
  Alcotest.check_raises "shards must be >= 1"
    (Invalid_argument "Plan.make: shard count must be >= 1") (fun () ->
      ignore (Plan.make ~policy:Plan.Hash ~shards:0 ~n:3))

let test_plan_env () =
  let set v = Unix.putenv "KWSC_SHARDS" v in
  Fun.protect
    ~finally:(fun () -> set "")
    (fun () ->
      set "3";
      Alcotest.(check int) "KWSC_SHARDS=3" 3 (Plan.env_shards ());
      set "not-a-number";
      Alcotest.(check int) "garbage falls back to 1" 1 (Plan.env_shards ());
      set "0";
      Alcotest.(check int) "zero falls back to 1" 1 (Plan.env_shards ());
      set "";
      Alcotest.(check int) "empty falls back to 1" 1 (Plan.env_shards ()));
  Alcotest.(check bool)
    "policy_of_name round-trips" true
    (Plan.policy_of_name (Plan.policy_name Plan.Range) = Some Plan.Range
    && Plan.policy_of_name (Plan.policy_name Plan.Hash) = Some Plan.Hash
    && Plan.policy_of_name "bogus" = None)

let test_gather_merge () =
  let rng = Prng.create 99 in
  for _ = 1 to 50 do
    let n = 1 + Prng.int rng 60 in
    let shards = 1 + Prng.int rng 5 in
    let plan =
      Plan.make ~policy:(if Prng.int rng 2 = 0 then Plan.Hash else Plan.Range) ~shards ~n
    in
    (* pick a random global subset, split it by owner into local ids *)
    let chosen = Array.init n (fun _ -> Prng.int rng 2 = 0) in
    let globals = Array.init shards (Plan.global_ids plan) in
    let locals =
      Array.init shards (fun s ->
          let g = globals.(s) in
          let b = Kwsc_util.Ibuf.create () in
          Array.iteri (fun l id -> if chosen.(id) then Kwsc_util.Ibuf.push b l) g;
          Kwsc_util.Ibuf.to_array b)
    in
    let out = Kwsc_util.Ibuf.create () in
    Gather.merge_into ~globals ~locals ~cursors:(Array.make shards 0) out;
    let expect =
      Array.of_seq
        (Seq.filter (fun id -> chosen.(id)) (Seq.init n (fun i -> i)))
    in
    Helpers.check_ids "merge reassembles the global subset" expect
      (Kwsc_util.Ibuf.to_array out)
  done

(* ------------------------------------------------------------------ *)
(* Inverted baseline: answers, structures, cache counters.             *)
(* ------------------------------------------------------------------ *)

let random_docs rng n vocab =
  Array.init n (fun _ ->
      let len = 1 + Prng.int rng 5 in
      let l = List.init len (fun _ -> 1 + Prng.int rng vocab) in
      Doc.of_list l)

(* Query shapes the cache does and does not serve: singletons, distinct
   pairs (cacheable), pairs with duplicates, triples. *)
let random_keyword_sets rng vocab =
  Array.init 12 (fun _ ->
      match Prng.int rng 4 with
      | 0 -> [| 1 + Prng.int rng vocab |]
      | 1 | 2 ->
          let a = 1 + Prng.int rng vocab and b = 1 + Prng.int rng vocab in
          if Prng.int rng 3 = 0 then [| a; b; a |] else [| a; b |]
      | _ ->
          [| 1 + Prng.int rng vocab; 1 + Prng.int rng vocab; 1 + Prng.int rng vocab |])

let inverted_diff_iteration seed =
  let rng = Prng.create seed in
  let n = 20 + Prng.int rng 100 in
  let vocab = 4 + Prng.int rng 12 in
  let docs = random_docs rng n vocab in
  let queries = random_keyword_sets rng vocab in
  let pool = pool1 () in
  let mono = Inverted.build ~pool docs in
  (* digest the pristine structure: later queries mutate the LFU cache,
     and a fresh K=1 shard must match the index as built *)
  let mono_digest = digest mono in
  Array.iter
    (fun policy ->
      Array.iter
        (fun shards ->
          let what = Printf.sprintf "inv %s K=%d" (Plan.policy_name policy) shards in
          let t = S.Inverted.build ~pool ~plan:(policy, shards) Kwsc_util.Container.Hybrid docs in
          Alcotest.(check int) (what ^ ": input_size") (Inverted.input_size mono)
            (S.Inverted.input_size t);
          (* identical fresh structure at K=1 *)
          if shards = 1 then
            Alcotest.(check string)
              (what ^ ": single shard is byte-identical to unsharded")
              mono_digest
              (digest_sub (S.Inverted.shard t 0));
          (* replay the same query sequence on both; cache decisions and
             therefore per-shard counters must track the unsharded cache *)
          Inverted.reset_cache mono;
          Array.iter
            (fun ws ->
              let expect = Inverted.query mono ws in
              let got, st = S.Inverted.query_stats ~pool t ws in
              Helpers.check_ids (what ^ ": answers") expect got;
              Alcotest.(check int) (what ^ ": reported") (Array.length expect)
                st.Stats.reported)
            queries;
          let mh, mm, me = Inverted.cache_stats mono in
          let nonempty = ref 0 and sh = ref 0 and sm = ref 0 in
          for s = 0 to shards - 1 do
            match S.Inverted.shard t s with
            | None -> ()
            | Some sub ->
                incr nonempty;
                let h, m, e = Inverted.cache_stats sub in
                sh := !sh + h;
                sm := !sm + m;
                Alcotest.(check (triple int int int))
                  (Printf.sprintf "%s: shard %d cache counters equal unsharded" what s)
                  (mh, mm, me) (h, m, e)
          done;
          (* the per-shard counters sum to the expected multiple of the
             unsharded counter — at K=1 they are exactly equal *)
          Alcotest.(check (pair int int))
            (what ^ ": summed cache traffic")
            (!nonempty * mh, !nonempty * mm)
            (!sh, !sm))
        shard_counts)
    policies

let test_inverted_diff =
  QCheck.Test.make ~count:(if slow then 25 else 8)
    ~name:"sharded inverted == unsharded (answers, structures, caches)"
    QCheck.small_int
    (fun seed ->
      with_audit (fun () -> inverted_diff_iteration seed);
      true)

(* ------------------------------------------------------------------ *)
(* ORP-KW: answers at every K, full counters at K=1 and across pools.  *)
(* ------------------------------------------------------------------ *)

let orp_diff_iteration seed =
  let rng = Prng.create (seed + 1000) in
  let n = 20 + Prng.int rng 80 in
  let d = 1 + Prng.int rng 2 in
  let vocab = 12 in
  let objs = Helpers.dataset ~seed:(seed + 7) ~vocab ~n ~d () in
  let queries =
    Array.init 6 (fun _ ->
        (Helpers.random_rect rng ~d ~range:1000.0, Helpers.random_keywords rng ~vocab ~k:2))
  in
  let pool = pool1 () in
  let mono = Kwsc.Orp_kw.build ~pool ~k:2 objs in
  Array.iter
    (fun shards ->
      let what = Printf.sprintf "orp K=%d" shards in
      (* identical structure at every pool size, for the same plan *)
      let builds =
        Array.map
          (fun p -> S.Orp.build ~pool:p ~plan:(Plan.Hash, shards) 2 objs)
          (Lazy.force pools)
      in
      let t = builds.(0) in
      Array.iteri
        (fun i other ->
          if i > 0 then
            Alcotest.(check string)
              (what ^ ": build digest pool-size-independent")
              (digest t) (digest other))
        builds;
      if shards = 1 then
        Alcotest.(check string)
          (what ^ ": single shard is byte-identical to unsharded")
          (digest mono)
          (digest_sub (S.Orp.shard t 0));
      Array.iter
        (fun (q, ws) ->
          let expect, est = Kwsc.Orp_kw.query_stats mono q ws in
          let got, st = S.Orp.query_stats ~pool t (q, ws) in
          Helpers.check_ids (what ^ ": answers") expect got;
          Alcotest.(check int) (what ^ ": reported") (Array.length expect) st.Stats.reported;
          if shards = 1 then check_query_eq (what ^ ": K=1 counters") est st;
          (* merged counters are scatter-order-independent: every pool
             size reports the same Stats *)
          with_each_pool (fun p ->
              let got', st' = S.Orp.query_stats ~pool:p t (q, ws) in
              Helpers.check_ids (what ^ ": answers at every pool size") got got';
              check_query_eq (what ^ ": counters at every pool size") st st'))
        queries)
    shard_counts

let test_orp_diff =
  QCheck.Test.make ~count:(if slow then 15 else 5)
    ~name:"sharded ORP-KW == unsharded (answers, counters, structures)"
    QCheck.small_int
    (fun seed ->
      with_audit (fun () -> orp_diff_iteration seed);
      true)

(* ------------------------------------------------------------------ *)
(* RR-KW: the third surface.                                           *)
(* ------------------------------------------------------------------ *)

let rr_diff_iteration seed =
  let rng = Prng.create (seed + 2000) in
  let n = 15 + Prng.int rng 50 in
  let vocab = 10 in
  let objs =
    Array.map
      (fun (p, doc) ->
        let w = 1.0 +. Prng.float rng 50.0 in
        (Rect.make [| p.(0) |] [| p.(0) +. w |], doc))
      (Helpers.dataset ~seed:(seed + 11) ~vocab ~n ~d:1 ())
  in
  let queries =
    Array.init 5 (fun _ ->
        (Helpers.random_rect rng ~d:1 ~range:1050.0, Helpers.random_keywords rng ~vocab ~k:2))
  in
  let pool = pool1 () in
  let mono = Kwsc.Rr_kw.build ~pool ~k:2 objs in
  Array.iter
    (fun shards ->
      let what = Printf.sprintf "rr K=%d" shards in
      let t = S.Rr.build ~pool ~plan:(Plan.Range, shards) 2 objs in
      Array.iter
        (fun (q, ws) ->
          let expect, _ = Kwsc.Rr_kw.query_stats mono q ws in
          let got, st = S.Rr.query_stats ~pool t (q, ws) in
          Helpers.check_ids (what ^ ": answers") expect got;
          Alcotest.(check int) (what ^ ": reported") (Array.length expect) st.Stats.reported)
        queries)
    shard_counts

let test_rr_diff =
  QCheck.Test.make ~count:(if slow then 10 else 4)
    ~name:"sharded RR-KW == unsharded (answers)" QCheck.small_int
    (fun seed ->
      with_audit (fun () -> rr_diff_iteration seed);
      true)

(* ------------------------------------------------------------------ *)
(* Degenerate plans: more shards than objects, tiny universes.         *)
(* ------------------------------------------------------------------ *)

let test_degenerate () =
  let pool = pool1 () in
  Array.iter
    (fun policy ->
      (* K = 8 > |universe| = 5: some shards must stay empty *)
      let docs = random_docs (Prng.create 5) 5 6 in
      let mono = Inverted.build ~pool docs in
      let t = S.Inverted.build ~pool ~plan:(policy, 8) Kwsc_util.Container.Hybrid docs in
      let empty = ref 0 in
      for s = 0 to 7 do
        if S.Inverted.shard t s = None then incr empty
      done;
      Alcotest.(check bool) "K > n leaves empty shards" true (!empty >= 3);
      List.iter
        (fun ws ->
          let ws = Array.of_list ws in
          Helpers.check_ids "inv K>n answers" (Inverted.query mono ws)
            (S.Inverted.query ~pool t ws))
        [ [ 1 ]; [ 1; 2 ]; [ 2; 3; 4 ]; [ 6 ] ];
      (* a one-object universe across many shards *)
      let one = [| Doc.of_list [ 1; 2 ] |] in
      let mono1 = Inverted.build ~pool one in
      let t1 = S.Inverted.build ~pool ~plan:(policy, 8) Kwsc_util.Container.Hybrid one in
      Helpers.check_ids "inv n=1 answers" (Inverted.query mono1 [| 1; 2 |])
        (S.Inverted.query ~pool t1 [| 1; 2 |]);
      (* ORP with K > n: empty shards skip Orp_kw.build (which refuses
         empty input) and contribute nothing *)
      let objs = Helpers.dataset ~seed:3 ~vocab:6 ~n:5 ~d:2 () in
      let morp = Kwsc.Orp_kw.build ~pool ~k:2 objs in
      let torp = S.Orp.build ~pool ~plan:(policy, 8) 2 objs in
      let rng = Prng.create 17 in
      for _ = 1 to 5 do
        let q = Helpers.random_rect rng ~d:2 ~range:1000.0 in
        let ws = Helpers.random_keywords rng ~vocab:6 ~k:2 in
        Helpers.check_ids "orp K>n answers" (Kwsc.Orp_kw.query morp q ws)
          (S.Orp.query ~pool torp (q, ws))
      done)
    policies

(* ------------------------------------------------------------------ *)
(* The LFU caches stay hot and aligned through a long mixed sequence.  *)
(* ------------------------------------------------------------------ *)

let test_cache_alignment () =
  let pool = pool1 () in
  let rng = Prng.create 31 in
  (* few keywords + many docs = heavy pair frequencies, so pairs clear
     the tau admission threshold and the cache takes real traffic,
     including evictions once distinct pairs exceed the LFU capacity *)
  let docs = random_docs rng 400 40 in
  let mono = Inverted.build ~pool docs in
  let seq =
    Array.init 300 (fun _ ->
        let a = 1 + Prng.int rng 40 and b = 1 + Prng.int rng 40 in
        if a = b then [| a |] else [| a; b |])
  in
  Array.iter
    (fun shards ->
      let what = Printf.sprintf "cache K=%d" shards in
      let t = S.Inverted.build ~pool ~plan:(Plan.Hash, shards) Kwsc_util.Container.Hybrid docs in
      Inverted.reset_cache mono;
      let hits = ref 0 and misses = ref 0 in
      Array.iter
        (fun ws ->
          let expect = Inverted.query mono ws in
          let got, st = S.Inverted.query_stats ~pool t ws in
          Helpers.check_ids (what ^ ": answers") expect got;
          hits := !hits + st.Stats.cache_hits;
          misses := !misses + st.Stats.cache_misses)
        seq;
      let mh, mm, me = Inverted.cache_stats mono in
      Alcotest.(check bool) (what ^ ": the sequence exercises the cache") true (mh > 0 && mm > 0);
      let nonempty = ref 0 in
      for s = 0 to shards - 1 do
        match S.Inverted.shard t s with
        | None -> ()
        | Some sub ->
            incr nonempty;
            Alcotest.(check (triple int int int))
              (Printf.sprintf "%s: shard %d counters equal unsharded" what s)
              (mh, mm, me)
              (Inverted.cache_stats sub)
      done;
      (* the Stats threading accounts for every find: summed per-query
         deltas = sum of the per-shard counters *)
      Alcotest.(check (pair int int))
        (what ^ ": Stats deltas sum the shard caches")
        (!nonempty * mh, !nonempty * mm)
        (!hits, !misses))
    shard_counts

(* ------------------------------------------------------------------ *)
(* Planner & feedback are purely physical: nothing observable moves    *)
(* across planner on/off × feedback on/off × K ∈ {1, 4} (PR 8).        *)
(* ------------------------------------------------------------------ *)

let with_planner ~planner ~feedback f =
  let module P = Kwsc_util.Planner in
  let sp = !P.enabled and sf = !P.feedback_enabled in
  P.enabled := planner;
  P.feedback_enabled := feedback;
  Fun.protect
    ~finally:(fun () ->
      P.enabled := sp;
      P.feedback_enabled := sf)
    f

let grid =
  [ (true, true); (true, false); (false, true); (false, false) ]

let grid_shards = [ 1; 4 ]

(* Inverted surface: answers and reported counts identical everywhere;
   the LFU cache hit/miss sequence identical across feedback on/off (the
   feedback side table never steers admission); planner off bypasses the
   cache entirely — the PR 3 contract — so its counters pin at zero. *)
let test_inverted_planner_grid () =
  let pool = pool1 () in
  let rng = Prng.create 47 in
  (* small vocab + many docs: pairs clear the tau admission threshold,
     triples consult the observations those pairs record *)
  let docs = random_docs rng 300 24 in
  let queries =
    Array.init 80 (fun _ ->
        let a = 1 + Prng.int rng 24 and b = 1 + Prng.int rng 24 and c = 1 + Prng.int rng 24 in
        match Prng.int rng 4 with
        | 0 -> [| a |]
        | 1 | 2 -> if a = b then [| a |] else [| a; b |]
        | _ -> [| a; b; c |])
  in
  let run ~planner ~feedback shards =
    with_planner ~planner ~feedback (fun () ->
        let t =
          S.Inverted.build ~pool ~plan:(Plan.Hash, shards) Kwsc_util.Container.Hybrid docs
        in
        Array.map
          (fun ws ->
            let got, st = S.Inverted.query_stats ~pool t ws in
            (Array.to_list got, st.Stats.reported, st.Stats.cache_hits, st.Stats.cache_misses))
          queries)
  in
  List.iter
    (fun shards ->
      (* per-K reference: feedback on, the session default *)
      let base = run ~planner:true ~feedback:true shards in
      List.iter
        (fun (planner, feedback) ->
          let what = Printf.sprintf "inv planner=%b feedback=%b K=%d" planner feedback shards in
          let got = run ~planner ~feedback shards in
          Array.iteri
            (fun i (ga, gr, gh, gm) ->
              let ea, er, eh, em = base.(i) in
              Alcotest.(check (list int)) (what ^ ": answers") ea ga;
              Alcotest.(check int) (what ^ ": reported") er gr;
              if planner then begin
                Alcotest.(check int) (what ^ ": cache_hits") eh gh;
                Alcotest.(check int) (what ^ ": cache_misses") em gm
              end
              else begin
                Alcotest.(check int) (what ^ ": planner off bypasses the cache") 0 gh;
                Alcotest.(check int) (what ^ ": planner off bypasses the cache") 0 gm
              end)
            got)
        grid;
      (* the cache genuinely ran in the reference configuration *)
      let th = Array.fold_left (fun acc (_, _, h, _) -> acc + h) 0 base in
      let tm = Array.fold_left (fun acc (_, _, _, m) -> acc + m) 0 base in
      Alcotest.(check bool)
        (Printf.sprintf "K=%d: the sequence exercises the cache" shards)
        true (th > 0 && tm > 0))
    grid_shards

(* ORP-KW over the transform: full logical counter equality across the
   whole grid — the planner and its feedback reroute tree-descent
   intersections through different kernels, but every Stats field,
   including small_scanned and the work total, stays bit-identical. *)
let test_orp_planner_grid () =
  let pool = pool1 () in
  let rng = Prng.create 53 in
  let vocab = 10 in
  let objs = Helpers.dataset ~seed:59 ~vocab ~n:120 ~d:2 () in
  let queries =
    Array.init 10 (fun _ ->
        (Helpers.random_rect rng ~d:2 ~range:1000.0, Helpers.random_keywords rng ~vocab ~k:2))
  in
  let run ~planner ~feedback shards =
    with_planner ~planner ~feedback (fun () ->
        let t = S.Orp.build ~pool ~plan:(Plan.Hash, shards) 2 objs in
        Array.map
          (fun q ->
            let got, st = S.Orp.query_stats ~pool t q in
            (Array.to_list got, st))
          queries)
  in
  (* every logical field; alloc_words is excluded — it measures physical
     GC words, which the strategy choice legitimately moves *)
  let check_logical_eq what (a : Stats.query) (b : Stats.query) =
    let ck field va vb = Alcotest.(check int) (what ^ ": " ^ field) va vb in
    ck "nodes_visited" a.Stats.nodes_visited b.Stats.nodes_visited;
    ck "covered_nodes" a.Stats.covered_nodes b.Stats.covered_nodes;
    ck "crossing_nodes" a.Stats.crossing_nodes b.Stats.crossing_nodes;
    ck "pivot_checked" a.Stats.pivot_checked b.Stats.pivot_checked;
    ck "small_scanned" a.Stats.small_scanned b.Stats.small_scanned;
    ck "pruned_empty" a.Stats.pruned_empty b.Stats.pruned_empty;
    ck "pruned_geom" a.Stats.pruned_geom b.Stats.pruned_geom;
    ck "reported" a.Stats.reported b.Stats.reported;
    ck "cache_hits" a.Stats.cache_hits b.Stats.cache_hits;
    ck "cache_misses" a.Stats.cache_misses b.Stats.cache_misses;
    ck "work" (Stats.work a) (Stats.work b)
  in
  List.iter
    (fun shards ->
      let base = run ~planner:true ~feedback:true shards in
      List.iter
        (fun (planner, feedback) ->
          let what = Printf.sprintf "orp planner=%b feedback=%b K=%d" planner feedback shards in
          let got = run ~planner ~feedback shards in
          Array.iteri
            (fun i (ga, gst) ->
              let ea, est = base.(i) in
              Alcotest.(check (list int)) (what ^ ": answers") ea ga;
              check_logical_eq what est gst)
            got)
        grid)
    grid_shards

let suite =
  let qt = QCheck_alcotest.to_alcotest in
  [
    Alcotest.test_case "plans partition the universe" `Quick test_plan_partition;
    Alcotest.test_case "KWSC_SHARDS / policy parsing" `Quick test_plan_env;
    Alcotest.test_case "gather merge reassembles subsets" `Quick test_gather_merge;
    qt test_inverted_diff;
    qt test_orp_diff;
    qt test_rr_diff;
    Alcotest.test_case "degenerate plans (K > n, n = 1)" `Quick test_degenerate;
    Alcotest.test_case "shard caches align with the unsharded cache" `Quick
      test_cache_alignment;
    Alcotest.test_case "planner/feedback grid: inverted observables" `Quick
      test_inverted_planner_grid;
    Alcotest.test_case "planner/feedback grid: ORP counters" `Quick test_orp_planner_grid;
  ]
