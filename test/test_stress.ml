(* Larger instances, higher dimensions and arities — the configurations the
   quick suites keep small. *)

open Kwsc_geom
module Prng = Kwsc_util.Prng

let test_orp_20k () =
  let objs = Helpers.dataset ~seed:211 ~n:20000 ~d:2 ~vocab:60 () in
  let t = Kwsc.Orp_kw.build ~k:2 objs in
  let rng = Prng.create 212 in
  for _ = 1 to 25 do
    let q = Helpers.random_rect rng ~d:2 ~range:1000.0 in
    let ws = Helpers.random_keywords rng ~vocab:60 ~k:2 in
    Helpers.check_ids "orp 20k = oracle" (Helpers.oracle_rect objs q ws) (Kwsc.Orp_kw.query t q ws)
  done;
  (* space must stay a small multiple of N *)
  let words = (Kwsc.Orp_kw.space_stats t).Kwsc.Stats.total_words in
  Alcotest.(check bool)
    (Printf.sprintf "space %d words for N=%d" words (Kwsc.Orp_kw.input_size t))
    true
    (words < 8 * Kwsc.Orp_kw.input_size t)

let test_dimred_5d () =
  let objs = Helpers.dataset ~seed:213 ~n:400 ~d:5 () in
  let t = Kwsc.Dimred.build ~k:2 objs in
  let rng = Prng.create 214 in
  for _ = 1 to 30 do
    let q = Helpers.random_rect rng ~d:5 ~range:1200.0 in
    let ws = Helpers.random_keywords rng ~vocab:40 ~k:2 in
    Helpers.check_ids "dimred 5d = oracle" (Helpers.oracle_rect objs q ws) (Kwsc.Dimred.query t q ws)
  done

let test_sp_4d () =
  let objs = Helpers.dataset ~seed:215 ~n:250 ~d:4 () in
  let t = Kwsc.Sp_kw.build ~k:2 objs in
  let rng = Prng.create 216 in
  for _ = 1 to 25 do
    let hs =
      List.init 2 (fun _ ->
          Halfspace.make
            (Array.init 4 (fun _ -> Prng.float rng 2.0 -. 1.0))
            (Prng.float rng 1500.0))
    in
    let ws = Helpers.random_keywords rng ~vocab:40 ~k:2 in
    Helpers.check_ids "sp 4d = oracle"
      (Helpers.oracle objs (fun p -> List.for_all (fun h -> Halfspace.satisfies h p) hs) ws)
      (Kwsc.Sp_kw.query_halfspaces t hs ws)
  done

let test_ksi_k5 () =
  let rng = Prng.create 217 in
  let docs =
    Array.init 400 (fun _ ->
        Kwsc_invindex.Doc.of_list (List.init (4 + Prng.int rng 6) (fun _ -> 1 + Prng.int rng 10)))
  in
  let t = Kwsc.Ksi.of_docs ~k:5 docs in
  let inv = Kwsc_invindex.Inverted.build docs in
  for _ = 1 to 60 do
    let ws = Helpers.random_keywords rng ~vocab:10 ~k:5 in
    Helpers.check_ids "ksi k=5" (Kwsc_invindex.Inverted.query_naive inv ws) (Kwsc.Ksi.query t ws)
  done

let test_dynamic_3000_ops () =
  let t = Kwsc.Dynamic.create ~k:2 ~d:2 () in
  let rng = Prng.create 218 in
  let model : (int, Point.t * Kwsc_invindex.Doc.t) Hashtbl.t = Hashtbl.create 64 in
  let live = ref [] in
  for round = 1 to 3000 do
    if Prng.int rng 3 = 0 && !live <> [] then begin
      let victim = List.nth !live (Prng.int rng (List.length !live)) in
      Kwsc.Dynamic.delete t victim;
      Hashtbl.remove model victim;
      live := List.filter (fun id -> id <> victim) !live
    end
    else begin
      let p = [| Prng.float rng 100.0; Prng.float rng 100.0 |] in
      let doc =
        Kwsc_invindex.Doc.of_list (List.init (1 + Prng.int rng 4) (fun _ -> 1 + Prng.int rng 15))
      in
      let id = Kwsc.Dynamic.insert t (p, doc) in
      Hashtbl.add model id (p, doc);
      live := id :: !live
    end;
    if round mod 500 = 0 then begin
      let q = Helpers.random_rect rng ~d:2 ~range:100.0 in
      let ws = Helpers.random_keywords rng ~vocab:15 ~k:2 in
      let expected =
        Hashtbl.fold
          (fun id (p, doc) acc ->
            if Rect.contains_point q p && Kwsc_invindex.Doc.mem_all doc ws then id :: acc else acc)
          model []
      in
      let expected = Array.of_list expected in
      Array.sort compare expected;
      Helpers.check_ids "dynamic 3000 ops" expected (Kwsc.Dynamic.query t q ws)
    end
  done;
  Alcotest.(check int) "size" (Hashtbl.length model) (Kwsc.Dynamic.size t)

let test_rr_intervals_10k () =
  let rng = Prng.create 219 in
  let objs =
    Array.init 10000 (fun _ ->
        let s = Prng.float rng 1000.0 in
        ( Rect.make [| s |] [| s +. Prng.float rng 40.0 |],
          Kwsc_invindex.Doc.of_list (List.init (1 + Prng.int rng 3) (fun _ -> 1 + Prng.int rng 25)) ))
  in
  let t = Kwsc.Rr_kw.build ~k:2 objs in
  for _ = 1 to 15 do
    let a = Prng.float rng 900.0 in
    let q = Rect.make [| a |] [| a +. 50.0 |] in
    let ws = Helpers.random_keywords rng ~vocab:25 ~k:2 in
    let expected = ref [] in
    Array.iteri
      (fun id (r, doc) ->
        if Rect.intersects r q && Kwsc_invindex.Doc.mem_all doc ws then expected := id :: !expected)
      objs;
    let e = Array.of_list !expected in
    Array.sort compare e;
    Helpers.check_ids "rr 10k intervals" e (Kwsc.Rr_kw.query t q ws)
  done

(* The heavy tier only runs when KWSC_SLOW=1 (scripts/ci.sh second pass);
   the default suite stays fast enough for an edit-compile-test loop. *)
let suite =
  match Sys.getenv_opt "KWSC_SLOW" with
  | Some "1" ->
      [
        Alcotest.test_case "orp 20k objects" `Slow test_orp_20k;
        Alcotest.test_case "dimred 5 dimensions" `Slow test_dimred_5d;
        Alcotest.test_case "sp-kw 4 dimensions" `Slow test_sp_4d;
        Alcotest.test_case "ksi k=5" `Slow test_ksi_k5;
        Alcotest.test_case "dynamic 3000 operations" `Slow test_dynamic_3000_ops;
        Alcotest.test_case "rr 10k intervals" `Slow test_rr_intervals_10k;
      ]
  | _ -> []
