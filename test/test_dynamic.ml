(* The Bentley–Saxe dynamization and the wildcard padding extension. *)

open Kwsc_geom
module Dyn = Kwsc.Dynamic
module Doc = Kwsc_invindex.Doc
module Prng = Kwsc_util.Prng

(* Mirror model: a plain association list of live objects. *)
let model_query model q ws =
  let hits =
    List.filter_map
      (fun (id, (p, doc)) ->
        if Rect.contains_point q p && Array.for_all (fun w -> Doc.mem doc w) ws then Some id
        else None)
      model
  in
  let a = Array.of_list hits in
  Array.sort compare a;
  a

let random_obj rng =
  let p = [| Prng.float rng 100.0; Prng.float rng 100.0 |] in
  let doc = Doc.of_list (List.init (1 + Prng.int rng 4) (fun _ -> 1 + Prng.int rng 12)) in
  (p, doc)

let test_insert_then_query () =
  let t = Dyn.create ~k:2 ~d:2 () in
  let rng = Prng.create 191 in
  let model = ref [] in
  for _ = 1 to 300 do
    let obj = random_obj rng in
    let id = Dyn.insert t obj in
    model := (id, obj) :: !model
  done;
  Alcotest.(check int) "size" 300 (Dyn.size t);
  for _ = 1 to 80 do
    let q = Helpers.random_rect rng ~d:2 ~range:100.0 in
    let ws = Helpers.random_keywords rng ~vocab:12 ~k:2 in
    Helpers.check_ids "dynamic = model" (model_query !model q ws) (Dyn.query t q ws)
  done

let test_interleaved_insert_delete () =
  let t = Dyn.create ~k:2 ~d:2 () in
  let rng = Prng.create 192 in
  let model = ref [] in
  for round = 1 to 500 do
    if Prng.int rng 3 = 0 && !model <> [] then begin
      (* delete a random live object *)
      let n = List.length !model in
      let victim, _ = List.nth !model (Prng.int rng n) in
      Dyn.delete t victim;
      model := List.filter (fun (id, _) -> id <> victim) !model
    end
    else begin
      let obj = random_obj rng in
      let id = Dyn.insert t obj in
      model := (id, obj) :: !model
    end;
    if round mod 25 = 0 then begin
      let q = Helpers.random_rect rng ~d:2 ~range:100.0 in
      let ws = Helpers.random_keywords rng ~vocab:12 ~k:2 in
      Helpers.check_ids "interleaved = model" (model_query !model q ws) (Dyn.query t q ws);
      Alcotest.(check int) "size tracks model" (List.length !model) (Dyn.size t)
    end
  done

let test_delete_everything () =
  let t = Dyn.create ~k:2 ~d:2 () in
  let rng = Prng.create 193 in
  let ids = List.init 64 (fun _ -> Dyn.insert t (random_obj rng)) in
  List.iter (Dyn.delete t) ids;
  Alcotest.(check int) "empty" 0 (Dyn.size t);
  Helpers.check_ids "no results" [||] (Dyn.query t (Rect.full 2) [| 1; 2 |]);
  (* inserting again still works after the full rebuild *)
  let obj = ([| 1.0; 1.0 |], Doc.of_list [ 1; 2 ]) in
  let id = Dyn.insert t obj in
  Helpers.check_ids "revived" [| id |] (Dyn.query t (Rect.full 2) [| 1; 2 |])

let test_delete_validation () =
  let t = Dyn.create ~k:2 ~d:2 () in
  Alcotest.check_raises "unknown id" (Invalid_argument "Dynamic.delete: unknown id") (fun () ->
      Dyn.delete t 0);
  let id = Dyn.insert t ([| 0.0; 0.0 |], Doc.of_list [ 1 ]) in
  Dyn.delete t id;
  Dyn.delete t id (* idempotent *)

(* Regression: [live] is total — out-of-range ids (negative, beyond
   next_id, or wildly large) must answer [None], not crash on an
   unchecked array access. *)
let test_live_total () =
  let t = Dyn.create ~k:2 ~d:2 () in
  Alcotest.(check bool) "fresh: id 0" true (Dyn.live t 0 = None);
  Alcotest.(check bool) "fresh: negative id" true (Dyn.live t (-1) = None);
  Alcotest.(check bool) "fresh: huge id" true (Dyn.live t 1_000_000 = None);
  let obj = ([| 1.0; 2.0 |], Doc.of_list [ 3; 4 ]) in
  let id = Dyn.insert t obj in
  (match Dyn.live t id with
  | Some (p, doc) ->
      Alcotest.(check bool) "live point" true (p = fst obj);
      Alcotest.(check bool) "live doc" true (Doc.to_array doc = Doc.to_array (snd obj))
  | None -> Alcotest.fail "inserted object must be live");
  Alcotest.(check bool) "one past next_id" true (Dyn.live t (id + 16) = None);
  Dyn.delete t id;
  Alcotest.(check bool) "deleted id" true (Dyn.live t id = None)

let test_buckets_logarithmic () =
  let t = Dyn.create ~k:2 ~d:2 () in
  let rng = Prng.create 194 in
  for _ = 1 to 1000 do
    ignore (Dyn.insert t (random_obj rng))
  done;
  let buckets = Dyn.buckets t in
  Alcotest.(check bool)
    (Printf.sprintf "%d buckets for 1000 inserts" (List.length buckets))
    true
    (List.length buckets <= 12);
  Alcotest.(check int) "buckets partition the objects" 1000 (List.fold_left ( + ) 0 buckets)

(* --- Pad -------------------------------------------------------------- *)

let test_pad_fewer_keywords () =
  let objs = Helpers.dataset ~seed:195 ~n:200 ~d:2 () in
  let padded_docs, pad = Kwsc.Pad.docs ~k:3 (Array.map snd objs) in
  let padded = Array.mapi (fun i (p, _) -> (p, padded_docs.(i))) objs in
  let idx = Kwsc.Orp_kw.build ~k:3 padded in
  let rng = Prng.create 196 in
  for _ = 1 to 60 do
    let q = Helpers.random_rect rng ~d:2 ~range:1000.0 in
    let j = 1 + Prng.int rng 3 in
    let ws = Helpers.random_keywords rng ~vocab:40 ~k:j in
    let expected = Helpers.oracle objs (Rect.contains_point q) ws in
    Helpers.check_ids
      (Printf.sprintf "padded query with %d keywords" j)
      expected
      (Kwsc.Orp_kw.query idx q (Kwsc.Pad.keywords pad ws))
  done

let test_pad_validation () =
  let docs = [| Kwsc_invindex.Doc.of_list [ 1; 2 ] |] in
  let _, pad = Kwsc.Pad.docs ~k:3 docs in
  Alcotest.(check int) "two wildcards" 2 (Array.length (Kwsc.Pad.reserved pad));
  Alcotest.check_raises "empty keywords" (Invalid_argument "Pad.keywords: need at least one keyword")
    (fun () -> ignore (Kwsc.Pad.keywords pad [||]));
  Alcotest.check_raises "too many"
    (Invalid_argument "Pad.keywords: more keywords than the index's k") (fun () ->
      ignore (Kwsc.Pad.keywords pad [| 1; 2; 3; 4 |]));
  let w = (Kwsc.Pad.reserved pad).(0) in
  Alcotest.check_raises "reserved collision"
    (Invalid_argument "Pad.keywords: keyword collides with a reserved wildcard") (fun () ->
      ignore (Kwsc.Pad.keywords pad [| w |]))

let test_pad_input_growth () =
  let docs = Array.make 50 (Kwsc_invindex.Doc.of_list [ 1; 2; 3 ]) in
  let padded, _ = Kwsc.Pad.docs ~k:2 docs in
  Array.iter (fun d -> Alcotest.(check int) "one wildcard appended" 4 (Kwsc_invindex.Doc.size d)) padded

let test_flex_arities () =
  let objs = Helpers.dataset ~seed:197 ~n:250 ~d:2 () in
  let t = Kwsc.Flex.build ~max_k:3 objs in
  let rng = Prng.create 198 in
  for _ = 1 to 80 do
    let q = Helpers.random_rect rng ~d:2 ~range:1000.0 in
    let j = 1 + Prng.int rng 3 in
    let ws = Helpers.random_keywords rng ~vocab:40 ~k:j in
    Helpers.check_ids
      (Printf.sprintf "flex arity %d" j)
      (Helpers.oracle objs (Rect.contains_point q) ws)
      (Kwsc.Flex.query t q ws)
  done;
  Alcotest.check_raises "arity 0"
    (Invalid_argument "Pad.keywords: need at least one keyword") (fun () ->
      ignore (Kwsc.Flex.query t (Rect.full 2) [||]));
  Alcotest.check_raises "arity 4"
    (Invalid_argument "Pad.keywords: more keywords than the index's k") (fun () ->
      ignore (Kwsc.Flex.query t (Rect.full 2) [| 1; 2; 3; 4 |]))

let qcheck_dynamic =
  QCheck.Test.make ~name:"dynamic index equals model after random ops" ~count:40
    QCheck.(small_int)
    (fun seed ->
      let rng = Prng.create seed in
      let t = Dyn.create ~k:2 ~d:2 () in
      let model = ref [] in
      for _ = 1 to 120 do
        if Prng.int rng 4 = 0 && !model <> [] then begin
          let victim, _ = List.nth !model (Prng.int rng (List.length !model)) in
          Dyn.delete t victim;
          model := List.filter (fun (id, _) -> id <> victim) !model
        end
        else begin
          let obj = random_obj rng in
          let id = Dyn.insert t obj in
          model := (id, obj) :: !model
        end
      done;
      let q = Helpers.random_rect rng ~d:2 ~range:100.0 in
      let ws = Helpers.random_keywords rng ~vocab:12 ~k:2 in
      model_query !model q ws = Dyn.query t q ws)

let suite =
  [
    Alcotest.test_case "insert then query" `Quick test_insert_then_query;
    Alcotest.test_case "interleaved insert/delete" `Quick test_interleaved_insert_delete;
    Alcotest.test_case "delete everything" `Quick test_delete_everything;
    Alcotest.test_case "delete validation" `Quick test_delete_validation;
    Alcotest.test_case "live is total on any id" `Quick test_live_total;
    Alcotest.test_case "buckets stay logarithmic" `Quick test_buckets_logarithmic;
    Alcotest.test_case "pad: fewer keywords" `Quick test_pad_fewer_keywords;
    Alcotest.test_case "pad: validation" `Quick test_pad_validation;
    Alcotest.test_case "pad: input growth" `Quick test_pad_input_growth;
    Alcotest.test_case "flex: mixed arities" `Quick test_flex_arities;
    QCheck_alcotest.to_alcotest qcheck_dynamic;
  ]
