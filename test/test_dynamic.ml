(* The Bentley–Saxe dynamization and the wildcard padding extension. *)

open Kwsc_geom
module Dyn = Kwsc.Dynamic
module Doc = Kwsc_invindex.Doc
module Prng = Kwsc_util.Prng

(* Mirror model: a plain association list of live objects. *)
let model_query model q ws =
  let hits =
    List.filter_map
      (fun (id, (p, doc)) ->
        if Rect.contains_point q p && Array.for_all (fun w -> Doc.mem doc w) ws then Some id
        else None)
      model
  in
  let a = Array.of_list hits in
  Array.sort compare a;
  a

let random_obj rng =
  let p = [| Prng.float rng 100.0; Prng.float rng 100.0 |] in
  let doc = Doc.of_list (List.init (1 + Prng.int rng 4) (fun _ -> 1 + Prng.int rng 12)) in
  (p, doc)

let test_insert_then_query () =
  let t = Dyn.create ~k:2 ~d:2 () in
  let rng = Prng.create 191 in
  let model = ref [] in
  for _ = 1 to 300 do
    let obj = random_obj rng in
    let id = Dyn.insert t obj in
    model := (id, obj) :: !model
  done;
  Alcotest.(check int) "size" 300 (Dyn.size t);
  for _ = 1 to 80 do
    let q = Helpers.random_rect rng ~d:2 ~range:100.0 in
    let ws = Helpers.random_keywords rng ~vocab:12 ~k:2 in
    Helpers.check_ids "dynamic = model" (model_query !model q ws) (Dyn.query t q ws)
  done

let test_interleaved_insert_delete () =
  let t = Dyn.create ~k:2 ~d:2 () in
  let rng = Prng.create 192 in
  let model = ref [] in
  for round = 1 to 500 do
    if Prng.int rng 3 = 0 && !model <> [] then begin
      (* delete a random live object *)
      let n = List.length !model in
      let victim, _ = List.nth !model (Prng.int rng n) in
      Dyn.delete t victim;
      model := List.filter (fun (id, _) -> id <> victim) !model
    end
    else begin
      let obj = random_obj rng in
      let id = Dyn.insert t obj in
      model := (id, obj) :: !model
    end;
    if round mod 25 = 0 then begin
      let q = Helpers.random_rect rng ~d:2 ~range:100.0 in
      let ws = Helpers.random_keywords rng ~vocab:12 ~k:2 in
      Helpers.check_ids "interleaved = model" (model_query !model q ws) (Dyn.query t q ws);
      Alcotest.(check int) "size tracks model" (List.length !model) (Dyn.size t)
    end
  done

let test_delete_everything () =
  let t = Dyn.create ~k:2 ~d:2 () in
  let rng = Prng.create 193 in
  let ids = List.init 64 (fun _ -> Dyn.insert t (random_obj rng)) in
  List.iter (Dyn.delete t) ids;
  Alcotest.(check int) "empty" 0 (Dyn.size t);
  Helpers.check_ids "no results" [||] (Dyn.query t (Rect.full 2) [| 1; 2 |]);
  (* inserting again still works after the full rebuild *)
  let obj = ([| 1.0; 1.0 |], Doc.of_list [ 1; 2 ]) in
  let id = Dyn.insert t obj in
  Helpers.check_ids "revived" [| id |] (Dyn.query t (Rect.full 2) [| 1; 2 |])

let test_delete_validation () =
  let t = Dyn.create ~k:2 ~d:2 () in
  Alcotest.check_raises "unknown id" (Invalid_argument "Dynamic.delete: unknown id") (fun () ->
      Dyn.delete t 0);
  let id = Dyn.insert t ([| 0.0; 0.0 |], Doc.of_list [ 1 ]) in
  Dyn.delete t id;
  Dyn.delete t id (* idempotent *)

(* Regression: [live] is total — out-of-range ids (negative, beyond
   next_id, or wildly large) must answer [None], not crash on an
   unchecked array access. *)
let test_live_total () =
  let t = Dyn.create ~k:2 ~d:2 () in
  Alcotest.(check bool) "fresh: id 0" true (Dyn.live t 0 = None);
  Alcotest.(check bool) "fresh: negative id" true (Dyn.live t (-1) = None);
  Alcotest.(check bool) "fresh: huge id" true (Dyn.live t 1_000_000 = None);
  let obj = ([| 1.0; 2.0 |], Doc.of_list [ 3; 4 ]) in
  let id = Dyn.insert t obj in
  (match Dyn.live t id with
  | Some (p, doc) ->
      Alcotest.(check bool) "live point" true (p = fst obj);
      Alcotest.(check bool) "live doc" true (Doc.to_array doc = Doc.to_array (snd obj))
  | None -> Alcotest.fail "inserted object must be live");
  Alcotest.(check bool) "one past next_id" true (Dyn.live t (id + 16) = None);
  Dyn.delete t id;
  Alcotest.(check bool) "deleted id" true (Dyn.live t id = None)

let test_buckets_logarithmic () =
  let t = Dyn.create ~k:2 ~d:2 () in
  let rng = Prng.create 194 in
  for _ = 1 to 1000 do
    ignore (Dyn.insert t (random_obj rng))
  done;
  let buckets = Dyn.buckets t in
  Alcotest.(check bool)
    (Printf.sprintf "%d buckets for 1000 inserts" (List.length buckets))
    true
    (List.length buckets <= 12);
  Alcotest.(check int) "buckets partition the objects" 1000 (List.fold_left ( + ) 0 buckets)

(* --- Pad -------------------------------------------------------------- *)

let test_pad_fewer_keywords () =
  let objs = Helpers.dataset ~seed:195 ~n:200 ~d:2 () in
  let padded_docs, pad = Kwsc.Pad.docs ~k:3 (Array.map snd objs) in
  let padded = Array.mapi (fun i (p, _) -> (p, padded_docs.(i))) objs in
  let idx = Kwsc.Orp_kw.build ~k:3 padded in
  let rng = Prng.create 196 in
  for _ = 1 to 60 do
    let q = Helpers.random_rect rng ~d:2 ~range:1000.0 in
    let j = 1 + Prng.int rng 3 in
    let ws = Helpers.random_keywords rng ~vocab:40 ~k:j in
    let expected = Helpers.oracle objs (Rect.contains_point q) ws in
    Helpers.check_ids
      (Printf.sprintf "padded query with %d keywords" j)
      expected
      (Kwsc.Orp_kw.query idx q (Kwsc.Pad.keywords pad ws))
  done

let test_pad_validation () =
  let docs = [| Kwsc_invindex.Doc.of_list [ 1; 2 ] |] in
  let _, pad = Kwsc.Pad.docs ~k:3 docs in
  Alcotest.(check int) "two wildcards" 2 (Array.length (Kwsc.Pad.reserved pad));
  Alcotest.check_raises "empty keywords" (Invalid_argument "Pad.keywords: need at least one keyword")
    (fun () -> ignore (Kwsc.Pad.keywords pad [||]));
  Alcotest.check_raises "too many"
    (Invalid_argument "Pad.keywords: more keywords than the index's k") (fun () ->
      ignore (Kwsc.Pad.keywords pad [| 1; 2; 3; 4 |]));
  let w = (Kwsc.Pad.reserved pad).(0) in
  Alcotest.check_raises "reserved collision"
    (Invalid_argument "Pad.keywords: keyword collides with a reserved wildcard") (fun () ->
      ignore (Kwsc.Pad.keywords pad [| w |]))

let test_pad_input_growth () =
  let docs = Array.make 50 (Kwsc_invindex.Doc.of_list [ 1; 2; 3 ]) in
  let padded, _ = Kwsc.Pad.docs ~k:2 docs in
  Array.iter (fun d -> Alcotest.(check int) "one wildcard appended" 4 (Kwsc_invindex.Doc.size d)) padded

let test_flex_arities () =
  let objs = Helpers.dataset ~seed:197 ~n:250 ~d:2 () in
  let t = Kwsc.Flex.build ~max_k:3 objs in
  let rng = Prng.create 198 in
  for _ = 1 to 80 do
    let q = Helpers.random_rect rng ~d:2 ~range:1000.0 in
    let j = 1 + Prng.int rng 3 in
    let ws = Helpers.random_keywords rng ~vocab:40 ~k:j in
    Helpers.check_ids
      (Printf.sprintf "flex arity %d" j)
      (Helpers.oracle objs (Rect.contains_point q) ws)
      (Kwsc.Flex.query t q ws)
  done;
  Alcotest.check_raises "arity 0"
    (Invalid_argument "Pad.keywords: need at least one keyword") (fun () ->
      ignore (Kwsc.Flex.query t (Rect.full 2) [||]));
  Alcotest.check_raises "arity 4"
    (Invalid_argument "Pad.keywords: more keywords than the index's k") (fun () ->
      ignore (Kwsc.Flex.query t (Rect.full 2) [| 1; 2; 3; 4 |]))

let qcheck_dynamic =
  QCheck.Test.make ~name:"dynamic index equals model after random ops" ~count:40
    QCheck.(small_int)
    (fun seed ->
      let rng = Prng.create seed in
      let t = Dyn.create ~k:2 ~d:2 () in
      let model = ref [] in
      for _ = 1 to 120 do
        if Prng.int rng 4 = 0 && !model <> [] then begin
          let victim, _ = List.nth !model (Prng.int rng (List.length !model)) in
          Dyn.delete t victim;
          model := List.filter (fun (id, _) -> id <> victim) !model
        end
        else begin
          let obj = random_obj rng in
          let id = Dyn.insert t obj in
          model := (id, obj) :: !model
        end
      done;
      let q = Helpers.random_rect rng ~d:2 ~range:100.0 in
      let ws = Helpers.random_keywords rng ~vocab:12 ~k:2 in
      model_query !model q ws = Dyn.query t q ws)

(* --- Delete-trigger boundary pins (run under KWSC_AUDIT=1) ----------- *)

(* Every case below runs with the deep auditor armed, so the exactness
   invariants (dead_pending = tombstones the buckets still reference, the
   tombstone bitmap mirroring the slots, no buckets at size 0) are checked
   after every single update — each of these sequences violated at least
   one of them before the bookkeeping fixes. *)
let with_audit f () =
  Unix.putenv "KWSC_AUDIT" "1";
  Fun.protect ~finally:(fun () -> Unix.putenv "KWSC_AUDIT" "0") f

let bucket_total t = List.fold_left ( + ) 0 (Dyn.buckets t)

(* Half-dead trigger at an odd live count: the rebuild must fire exactly
   when tombstones catch up with the live objects, leaving a compacted
   chain with no dead entries. *)
let test_boundary_half_dead_odd =
  with_audit (fun () ->
      let t = Dyn.create ~k:2 ~d:2 () in
      let rng = Prng.create 991 in
      let ids = Array.init 21 (fun _ -> Dyn.insert t (random_obj rng)) in
      for i = 0 to 10 do
        Dyn.delete t ids.(i)
      done;
      (* 11 dead vs 10 live crossed the threshold: chain is compacted *)
      Alcotest.(check int) "live" 10 (Dyn.size t);
      Alcotest.(check int) "no tombstones left in buckets" (Dyn.size t) (bucket_total t))

(* Deleting down to size 0 with at most 8 tombstones used to leave
   all-dead buckets behind forever (the >8 floor kept the rebuild from
   firing); the chain must be empty instead. *)
let test_boundary_delete_to_zero =
  with_audit (fun () ->
      List.iter
        (fun n ->
          let t = Dyn.create ~k:2 ~d:2 () in
          let rng = Prng.create (992 + n) in
          let ids = List.init n (fun _ -> Dyn.insert t (random_obj rng)) in
          List.iter (Dyn.delete t) ids;
          Alcotest.(check int) (Printf.sprintf "n=%d: empty" n) 0 (Dyn.size t);
          Alcotest.(check (list int)) (Printf.sprintf "n=%d: no buckets" n) [] (Dyn.buckets t);
          Helpers.check_ids
            (Printf.sprintf "n=%d: no answers" n)
            [||]
            (Dyn.query t (Rect.full 2) [| 1; 2 |]))
        [ 1; 5; 8; 64 ])

(* Delete-all-then-insert: ids stay stable (never reused), the version
   watermark keeps ticking, and the fresh chain holds exactly the new
   objects. *)
let test_boundary_delete_all_then_insert =
  with_audit (fun () ->
      let t = Dyn.create ~k:2 ~d:2 () in
      let rng = Prng.create 993 in
      let ids = List.init 12 (fun _ -> Dyn.insert t (random_obj rng)) in
      List.iter (Dyn.delete t) ids;
      Alcotest.(check int) "24 updates so far" 24 (Dyn.version t);
      let fresh = ref [] in
      for _ = 1 to 3 do
        fresh := Dyn.insert t (random_obj rng) :: !fresh
      done;
      Alcotest.(check (list int)) "ids continue, never reused" [ 12; 13; 14 ] (List.rev !fresh);
      Alcotest.(check int) "only the new objects are stored" 3 (bucket_total t);
      Alcotest.(check int) "watermark" 27 (Dyn.version t);
      (* re-deleting a tombstone is a no-op for the watermark *)
      Dyn.delete t (List.hd ids);
      Alcotest.(check int) "idempotent delete does not tick" 27 (Dyn.version t))

(* Carry merges drop tombstones: the credit they return to dead_pending
   is what the auditor's exactness check pins (the old code over-counted
   here, firing spurious global rebuilds after insert-heavy phases). *)
let test_boundary_carry_compaction =
  with_audit (fun () ->
      let t = Dyn.create ~k:2 ~d:2 () in
      let rng = Prng.create 994 in
      let ids = Array.init 40 (fun _ -> Dyn.insert t (random_obj rng)) in
      for i = 0 to 9 do
        Dyn.delete t ids.(i)
      done;
      (* insert-heavy phase: carries compact most of the 10 tombstones *)
      for _ = 1 to 40 do
        ignore (Dyn.insert t (random_obj rng))
      done;
      let stored = bucket_total t in
      Alcotest.(check bool)
        (Printf.sprintf "tombstones were compacted (stored %d, live %d)" stored (Dyn.size t))
        true
        (stored - Dyn.size t <= 10);
      (* and the audited delete path keeps working from this state *)
      for i = 10 to 39 do
        Dyn.delete t ids.(i)
      done;
      Alcotest.(check int) "live after churn" 40 (Dyn.size t))

let test_merge_smallest =
  with_audit (fun () ->
      let t = Dyn.create ~k:2 ~d:2 () in
      let rng = Prng.create 995 in
      let model = ref [] in
      for _ = 1 to 100 do
        let obj = random_obj rng in
        let id = Dyn.insert t obj in
        model := (id, obj) :: !model
      done;
      (* knock a few holes so the fold also drops tombstones *)
      List.iteri
        (fun i (id, _) -> if i mod 9 = 0 then Dyn.delete t id)
        !model;
      model := List.filteri (fun i _ -> i mod 9 <> 0) !model;
      let v = Dyn.version t in
      let before = List.length (Dyn.buckets t) in
      let steps = ref 0 in
      while Dyn.merge_smallest t && !steps < 64 do
        incr steps
      done;
      Alcotest.(check bool) "maintenance made progress" true (!steps > 0);
      Alcotest.(check bool)
        (Printf.sprintf "chain no longer than before (%d -> %d)" before
           (List.length (Dyn.buckets t)))
        true
        (List.length (Dyn.buckets t) <= before);
      Alcotest.(check int) "watermark untouched" v (Dyn.version t);
      for _ = 1 to 30 do
        let q = Helpers.random_rect rng ~d:2 ~range:100.0 in
        let ws = Helpers.random_keywords rng ~vocab:12 ~k:2 in
        Helpers.check_ids "merged chain = model" (model_query !model q ws) (Dyn.query t q ws)
      done)

let test_save_load_roundtrip =
  with_audit (fun () ->
      let t = Dyn.create ~k:2 ~d:2 () in
      let rng = Prng.create 996 in
      let ids = Array.init 80 (fun _ -> Dyn.insert t (random_obj rng)) in
      Array.iteri (fun i id -> if i mod 7 = 0 then Dyn.delete t id) ids;
      let path = Filename.temp_file "kwsc_dyn" ".snap" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          Dyn.save path t;
          match Dyn.load path with
          | Error e -> Alcotest.failf "load: %s" (Kwsc_snapshot.Codec.error_to_string e)
          | Ok t' ->
              Alcotest.(check int) "version" (Dyn.version t) (Dyn.version t');
              Alcotest.(check int) "size" (Dyn.size t) (Dyn.size t');
              Alcotest.(check (list int)) "bucket chain" (Dyn.buckets t) (Dyn.buckets t');
              for _ = 1 to 40 do
                let q = Helpers.random_rect rng ~d:2 ~range:100.0 in
                let ws = Helpers.random_keywords rng ~vocab:12 ~k:2 in
                Helpers.check_ids "restored = original" (Dyn.query t q ws) (Dyn.query t' q ws)
              done;
              (* the restored index accepts further audited updates *)
              let id = Dyn.insert t' (random_obj rng) in
              Alcotest.(check int) "ids continue after restore" 80 id))

let test_load_refuses_corruption () =
  let t = Dyn.create ~k:2 ~d:2 () in
  let rng = Prng.create 997 in
  let ids = Array.init 30 (fun _ -> Dyn.insert t (random_obj rng)) in
  Dyn.delete t ids.(3);
  let path = Filename.temp_file "kwsc_dyn" ".snap" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Dyn.save path t;
      let bytes = In_channel.with_open_bin path In_channel.input_all in
      (* pin the eager loader: this sweep asserts the load-time refusal
         contract, and the paged loader defers bucket CRCs to first touch *)
      let expect_error what data =
        Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc data);
        match Dyn.load ~ooc:false path with
        | Error _ -> ()
        | Ok _ -> Alcotest.failf "%s: corrupt snapshot was accepted" what
      in
      expect_error "truncated" (String.sub bytes 0 (String.length bytes / 2));
      expect_error "empty" "";
      let n = String.length bytes in
      List.iter
        (fun pos ->
          let b = Bytes.of_string bytes in
          Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x40));
          expect_error (Printf.sprintf "bit flip at %d" pos) (Bytes.to_string b))
        [ 4; n / 3; n / 2; (2 * n / 3); n - 2 ];
      (* another module's snapshot is refused by kind, not mis-decoded *)
      let objs =
        Array.of_list
          (List.filter_map (fun id -> Dyn.live t id) (Array.to_list ids))
      in
      Kwsc.Orp_kw.save path (Kwsc.Orp_kw.build ~k:2 objs);
      match Dyn.load path with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "foreign kind was accepted")

let suite =
  [
    Alcotest.test_case "insert then query" `Quick test_insert_then_query;
    Alcotest.test_case "interleaved insert/delete" `Quick test_interleaved_insert_delete;
    Alcotest.test_case "delete everything" `Quick test_delete_everything;
    Alcotest.test_case "delete validation" `Quick test_delete_validation;
    Alcotest.test_case "live is total on any id" `Quick test_live_total;
    Alcotest.test_case "buckets stay logarithmic" `Quick test_buckets_logarithmic;
    Alcotest.test_case "pad: fewer keywords" `Quick test_pad_fewer_keywords;
    Alcotest.test_case "pad: validation" `Quick test_pad_validation;
    Alcotest.test_case "pad: input growth" `Quick test_pad_input_growth;
    Alcotest.test_case "flex: mixed arities" `Quick test_flex_arities;
    Alcotest.test_case "boundary: half-dead at odd live count" `Quick test_boundary_half_dead_odd;
    Alcotest.test_case "boundary: delete down to size 0" `Quick test_boundary_delete_to_zero;
    Alcotest.test_case "boundary: delete all then insert" `Quick
      test_boundary_delete_all_then_insert;
    Alcotest.test_case "boundary: carry merges credit tombstones" `Quick
      test_boundary_carry_compaction;
    Alcotest.test_case "maintenance: merge smallest level" `Quick test_merge_smallest;
    Alcotest.test_case "checkpoint round-trip" `Quick test_save_load_roundtrip;
    Alcotest.test_case "checkpoint refuses corruption" `Quick test_load_refuses_corruption;
    QCheck_alcotest.to_alcotest qcheck_dynamic;
  ]
