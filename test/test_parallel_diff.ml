(* Differential proof that the multicore paths change nothing.

   Ground truth is always a pool of size 1, which runs every combinator
   inline; pools of size 2 and 4 must be indistinguishable from it:
   builds byte-identical (Marshal digest) or answer-identical with equal
   machine-independent work counters, batched queries slot-for-slot equal
   to a sequential loop with the same merged counters. Every build in the
   qcheck test runs under KWSC_AUDIT=1, so the deep structural audits
   also pass on parallel-built structures. *)

module Doc = Kwsc_invindex.Doc
module Prng = Kwsc_util.Prng
module Pool = Kwsc_util.Pool
module Kd = Kwsc_kdtree.Kd
module Ptree = Kwsc_ptree.Ptree
module Inverted = Kwsc_invindex.Inverted
module Stats = Kwsc.Stats

let slow = match Sys.getenv_opt "KWSC_SLOW" with Some "1" -> true | _ -> false

(* One pool per size under test, shared by every case in this file and
   joined at exit so the runtime can terminate. *)
let pools =
  lazy
    (let ps = Array.map (fun n -> Pool.create ~domains:n ()) [| 1; 2; 4 |] in
     at_exit (fun () -> Array.iter Pool.shutdown ps);
     ps)

let with_each_pool f = Array.iter f (Lazy.force pools)

let with_audit f =
  Unix.putenv "KWSC_AUDIT" "1";
  Fun.protect ~finally:(fun () -> Unix.putenv "KWSC_AUDIT" "0") f

(* In-process byte identity: closures are marshaled by code pointer, so
   two builds of the same program state digest equally iff the structures
   (including captured environments) are identical. *)
let digest v = Digest.to_hex (Digest.string (Marshal.to_string v [ Marshal.Closures ]))

let check_query_eq what (a : Stats.query) (b : Stats.query) =
  let ck field va vb = Alcotest.(check int) (what ^ ": " ^ field) va vb in
  ck "nodes_visited" a.Stats.nodes_visited b.Stats.nodes_visited;
  ck "covered_nodes" a.Stats.covered_nodes b.Stats.covered_nodes;
  ck "crossing_nodes" a.Stats.crossing_nodes b.Stats.crossing_nodes;
  ck "pivot_checked" a.Stats.pivot_checked b.Stats.pivot_checked;
  ck "small_scanned" a.Stats.small_scanned b.Stats.small_scanned;
  ck "pruned_empty" a.Stats.pruned_empty b.Stats.pruned_empty;
  ck "pruned_geom" a.Stats.pruned_geom b.Stats.pruned_geom;
  ck "reported" a.Stats.reported b.Stats.reported;
  ck "alloc_words" a.Stats.alloc_words b.Stats.alloc_words;
  ck "cache_hits" a.Stats.cache_hits b.Stats.cache_hits;
  ck "cache_misses" a.Stats.cache_misses b.Stats.cache_misses;
  ck "work" (Stats.work a) (Stats.work b)

(* --- satellite: Stats.merge is exactly sequential accumulation --- *)

let test_stats_merge () =
  let mk (a, b, c, d, e, f, g, h, w) =
    {
      Stats.nodes_visited = a;
      covered_nodes = b;
      crossing_nodes = c;
      pivot_checked = d;
      small_scanned = e;
      pruned_empty = f;
      pruned_geom = g;
      reported = h;
      alloc_words = w;
      cache_hits = 0;
      cache_misses = 0;
    }
  in
  let q1 = mk (1, 2, 3, 4, 5, 6, 7, 8, 9) in
  let q2 = mk (10, 20, 30, 40, 50, 60, 70, 80, 90) in
  let q3 = mk (9, 8, 7, 6, 5, 4, 3, 2, 1) in
  (* merge = field-wise sum *)
  check_query_eq "q1+q2" (mk (11, 22, 33, 44, 55, 66, 77, 88, 99)) (Stats.merge q1 q2);
  (* identity *)
  check_query_eq "merge with fresh" q1 (Stats.merge (Stats.fresh_query ()) q1);
  (* associativity: per-domain partial sums fold like a sequential loop *)
  check_query_eq "associativity"
    (Stats.merge (Stats.merge q1 q2) q3)
    (Stats.merge q1 (Stats.merge q2 q3));
  (* add_into over a stream == fold of merge over the same stream *)
  let stream = [ q1; q2; q3; q2; q1 ] in
  let acc = Stats.fresh_query () in
  List.iter (fun q -> Stats.add_into ~into:acc q) stream;
  let folded = List.fold_left Stats.merge (Stats.fresh_query ()) stream in
  check_query_eq "add_into vs merge fold" acc folded;
  (* merge leaves its arguments untouched *)
  check_query_eq "q1 unchanged" (mk (1, 2, 3, 4, 5, 6, 7, 8, 9)) q1

(* --- parallel builds of the plain structures are byte-identical --- *)

let test_static_digests () =
  List.iter
    (fun seed ->
      let objs = Helpers.dataset ~seed ~n:6000 ~d:2 ~vocab:50 () in
      let tagged = Array.map (fun (p, _) -> (p, ())) objs in
      let docs = Array.map snd objs in
      let reference = ref None in
      with_each_pool (fun pool ->
          let dk = digest (Kd.build ~pool tagged) in
          let dp = digest (Ptree.build ~pool tagged) in
          let di = digest (Inverted.build ~pool docs) in
          match !reference with
          | None -> reference := Some (dk, dp, di)
          | Some (k0, p0, i0) ->
              Alcotest.(check string)
                (Printf.sprintf "kd digest at %d domains" (Pool.size pool))
                k0 dk;
              Alcotest.(check string)
                (Printf.sprintf "ptree digest at %d domains" (Pool.size pool))
                p0 dp;
              Alcotest.(check string)
                (Printf.sprintf "inverted digest at %d domains" (Pool.size pool))
                i0 di))
    [ 3; 77 ]

(* --- satellite: same seed, same domain count, run twice --- *)

let test_determinism () =
  let objs = Helpers.dataset ~seed:901 ~n:5000 ~d:2 ~vocab:50 () in
  let tagged = Array.map (fun (p, _) -> (p, ())) objs in
  with_each_pool (fun pool ->
      let what fmt = Printf.sprintf fmt (Pool.size pool) in
      Alcotest.(check string)
        (what "kd repeat build at %d domains")
        (digest (Kd.build ~pool tagged))
        (digest (Kd.build ~pool tagged));
      Alcotest.(check string)
        (what "ptree repeat build at %d domains")
        (digest (Ptree.build ~pool ~seed:11 tagged))
        (digest (Ptree.build ~pool ~seed:11 tagged));
      Alcotest.(check string)
        (what "orp repeat build at %d domains")
        (digest (Kwsc.Orp_kw.build ~pool ~k:2 objs))
        (digest (Kwsc.Orp_kw.build ~pool ~k:2 objs)));
  (* and across domain counts: the parallel structure IS the sequential one *)
  let digests =
    Array.map
      (fun pool -> digest (Kwsc.Orp_kw.build ~pool ~k:2 objs))
      (Lazy.force pools)
  in
  Alcotest.(check string) "orp digest 1 vs 2 domains" digests.(0) digests.(1);
  Alcotest.(check string) "orp digest 1 vs 4 domains" digests.(0) digests.(2)

(* --- batched queries == a sequential loop, counters included --- *)

let test_batch_equivalence () =
  let vocab = 30 in
  let objs = Helpers.dataset ~seed:314 ~n:2000 ~d:2 ~vocab () in
  let docs = Array.map snd objs in
  let rng = Prng.create 315 in
  let qs =
    Array.init 64 (fun _ ->
        (Helpers.random_rect rng ~d:2 ~range:1000.0, Helpers.random_keywords rng ~vocab ~k:2))
  in
  (* ORP-KW: slot-wise answers and merged counters *)
  let t = Kwsc.Orp_kw.build ~k:2 objs in
  let seq = Array.map (fun (q, ws) -> Kwsc.Orp_kw.query_stats t q ws) qs in
  let seq_acc = Stats.fresh_query () in
  Array.iter (fun (_, st) -> Stats.add_into ~into:seq_acc st) seq;
  with_each_pool (fun pool ->
      let out, st = Kwsc.Orp_kw.query_batch ~pool t qs in
      Array.iteri
        (fun i ids -> Helpers.check_ids (Printf.sprintf "orp batch slot %d" i) (fst seq.(i)) ids)
        out;
      check_query_eq (Printf.sprintf "orp batch stats at %d domains" (Pool.size pool)) seq_acc st);
  (* the limit knob flows through the batch path too *)
  with_each_pool (fun pool ->
      let out, _ = Kwsc.Orp_kw.query_batch ~pool ~limit:3 t qs in
      Array.iteri
        (fun i ids ->
          Helpers.check_ids
            (Printf.sprintf "orp capped batch slot %d" i)
            (fst (Kwsc.Orp_kw.query_stats ~limit:3 t (fst qs.(i)) (snd qs.(i))))
            ids)
        out);
  (* inverted index *)
  let inv = Inverted.build docs in
  let wss = Array.map snd qs in
  let seq_inv = Array.map (Inverted.query inv) wss in
  with_each_pool (fun pool ->
      let out = Inverted.query_batch ~pool inv wss in
      Array.iteri
        (fun i ids -> Helpers.check_ids (Printf.sprintf "inverted batch slot %d" i) seq_inv.(i) ids)
        out);
  (* k-SI through the framework *)
  let ksi = Kwsc.Ksi.of_docs ~k:2 docs in
  let seq_ksi = Array.map (fun ws -> Kwsc.Ksi.query_stats ksi ws) wss in
  let seq_ksi_acc = Stats.fresh_query () in
  Array.iter (fun (_, st) -> Stats.add_into ~into:seq_ksi_acc st) seq_ksi;
  with_each_pool (fun pool ->
      let out, st = Kwsc.Ksi.query_batch ~pool ksi wss in
      Array.iteri
        (fun i ids -> Helpers.check_ids (Printf.sprintf "ksi batch slot %d" i) (fst seq_ksi.(i)) ids)
        out;
      check_query_eq (Printf.sprintf "ksi batch stats at %d domains" (Pool.size pool)) seq_ksi_acc st);
  (* dimension reduction: profile counters instead of Stats.query *)
  let objs3 = Helpers.dataset ~seed:316 ~n:500 ~d:3 ~vocab () in
  let td = Kwsc.Dimred.build ~k:2 objs3 in
  let rng3 = Prng.create 317 in
  let qs3 =
    Array.init 32 (fun _ ->
        (Helpers.random_rect rng3 ~d:3 ~range:1000.0, Helpers.random_keywords rng3 ~vocab ~k:2))
  in
  let seq3 = Array.map (fun (q, ws) -> Kwsc.Dimred.query_profile td q ws) qs3 in
  let sum f = Array.fold_left (fun acc (_, p) -> acc + f p) 0 seq3 in
  with_each_pool (fun pool ->
      let out, p = Kwsc.Dimred.query_batch ~pool td qs3 in
      Array.iteri
        (fun i ids -> Helpers.check_ids (Printf.sprintf "dimred batch slot %d" i) (fst seq3.(i)) ids)
        out;
      let what field = Printf.sprintf "dimred %s at %d domains" field (Pool.size pool) in
      Alcotest.(check int) (what "type1") (sum (fun p -> p.Kwsc.Dimred.type1)) p.Kwsc.Dimred.type1;
      Alcotest.(check int) (what "type2") (sum (fun p -> p.Kwsc.Dimred.type2)) p.Kwsc.Dimred.type2;
      Alcotest.(check int) (what "pivot_checked")
        (sum (fun p -> p.Kwsc.Dimred.pivot_checked))
        p.Kwsc.Dimred.pivot_checked;
      Alcotest.(check int) (what "work") (sum (fun p -> p.Kwsc.Dimred.work)) p.Kwsc.Dimred.work;
      Array.iteri
        (fun l c ->
          let expect =
            Array.fold_left
              (fun acc (_, q) ->
                acc
                + if l < Array.length q.Kwsc.Dimred.type2_by_level then q.Kwsc.Dimred.type2_by_level.(l) else 0)
              0 seq3
          in
          Alcotest.(check int) (what (Printf.sprintf "type2_by_level[%d]" l)) expect c)
        p.Kwsc.Dimred.type2_by_level)

(* --- differential qcheck over the transform family, audits on --- *)

let fail_diff structure pool_size what =
  QCheck.Test.fail_reportf "%s: %d-domain build disagrees with sequential on %s" structure
    pool_size what

let check_same structure pool_size what ids0 ids =
  if ids <> ids0 then fail_diff structure pool_size what

let diff_transform =
  QCheck.Test.make
    ~name:"parallel builds answer like sequential ones (KWSC_AUDIT=1)"
    ~count:(if slow then 15 else 5)
    QCheck.small_int
    (fun seed ->
      with_audit (fun () ->
          let pools = Lazy.force pools in
          let vocab = 40 in
          let rng = Prng.create (0xd1ff + seed) in
          (* heavy enough that the par_cutoff actually forks at the root *)
          let objs = Helpers.dataset ~seed:(1 + (seed * 31)) ~n:2500 ~d:2 ~vocab () in
          let orp = Array.map (fun pool -> Kwsc.Orp_kw.build ~pool ~k:2 objs) pools in
          for _ = 1 to 8 do
            let q = Helpers.random_rect rng ~d:2 ~range:1000.0 in
            let ws = Helpers.random_keywords rng ~vocab ~k:2 in
            let ids0, st0 = Kwsc.Orp_kw.query_stats orp.(0) q ws in
            Helpers.check_ids "sequential orp = oracle" (Helpers.oracle_rect objs q ws) ids0;
            Array.iter
              (fun t ->
                let ids, st = Kwsc.Orp_kw.query_stats t q ws in
                check_same "orp" (Kwsc.Orp_kw.input_size t) "answers" ids0 ids;
                if Stats.work st <> Stats.work st0 then fail_diff "orp" 0 "work counters")
              orp
          done;
          (* SP-KW / LC-KW share the partition-tree path; seeded palette *)
          let objs3 = Helpers.dataset ~seed:(2 + (seed * 31)) ~n:1500 ~d:3 ~vocab () in
          let sp = Array.map (fun pool -> Kwsc.Sp_kw.build ~pool ~seed:5 ~k:2 objs3) pools in
          let lc = Array.map (fun pool -> Kwsc.Lc_kw.build ~pool ~seed:5 ~k:2 objs3) pools in
          for _ = 1 to 6 do
            let hs =
              List.init 2 (fun _ ->
                  Kwsc_geom.Halfspace.make
                    (Array.init 3 (fun _ -> Prng.float rng 2.0 -. 1.0))
                    (Prng.float rng 1500.0))
            in
            let ws = Helpers.random_keywords rng ~vocab ~k:2 in
            let ids0 = Kwsc.Sp_kw.query_halfspaces sp.(0) hs ws in
            Helpers.check_ids "sequential sp = oracle"
              (Helpers.oracle objs3
                 (fun p -> List.for_all (fun h -> Kwsc_geom.Halfspace.satisfies h p) hs)
                 ws)
              ids0;
            Array.iter
              (fun t -> check_same "sp" 0 "answers" ids0 (Kwsc.Sp_kw.query_halfspaces t hs ws))
              sp;
            Array.iter
              (fun t -> check_same "lc" 0 "answers" ids0 (Kwsc.Lc_kw.query t hs ws))
              lc
          done;
          (* dimension reduction, d = 3 *)
          let dim = Array.map (fun pool -> Kwsc.Dimred.build ~pool ~k:2 objs3) pools in
          for _ = 1 to 6 do
            let q = Helpers.random_rect rng ~d:3 ~range:1000.0 in
            let ws = Helpers.random_keywords rng ~vocab ~k:2 in
            let ids0, p0 = Kwsc.Dimred.query_profile dim.(0) q ws in
            Helpers.check_ids "sequential dimred = oracle" (Helpers.oracle_rect objs3 q ws) ids0;
            Array.iter
              (fun t ->
                let ids, p = Kwsc.Dimred.query_profile t q ws in
                check_same "dimred" 0 "answers" ids0 ids;
                if p.Kwsc.Dimred.work <> p0.Kwsc.Dimred.work then
                  fail_diff "dimred" 0 "work counters")
              dim
          done;
          (* rectangle reporting (appendix F lift over the kd engine) *)
          let rects =
            Array.map
              (fun (p, doc) ->
                (Kwsc_geom.Rect.make [| p.(0) |] [| p.(0) +. (1.0 +. p.(1) /. 25.0) |], doc))
              objs
          in
          let rr = Array.map (fun pool -> Kwsc.Rr_kw.build ~pool ~k:2 rects) pools in
          for _ = 1 to 6 do
            let a = Prng.float rng 950.0 in
            let q = Kwsc_geom.Rect.make [| a |] [| a +. 50.0 |] in
            let ws = Helpers.random_keywords rng ~vocab ~k:2 in
            let ids0 = Kwsc.Rr_kw.query rr.(0) q ws in
            Array.iter
              (fun t -> check_same "rr" 0 "answers" ids0 (Kwsc.Rr_kw.query t q ws))
              rr
          done;
          true))

(* --- slow tier: larger instances, deeper fork trees --- *)

let test_parallel_stress () =
  let objs = Helpers.dataset ~seed:4242 ~n:40000 ~d:2 ~vocab:80 () in
  let tagged = Array.map (fun (p, _) -> (p, ())) objs in
  let reference = ref None in
  with_each_pool (fun pool ->
      let dk = digest (Kd.build ~pool tagged) in
      let dp = digest (Ptree.build ~pool tagged) in
      match !reference with
      | None -> reference := Some (dk, dp)
      | Some (k0, p0) ->
          Alcotest.(check string)
            (Printf.sprintf "kd 40k digest at %d domains" (Pool.size pool))
            k0 dk;
          Alcotest.(check string)
            (Printf.sprintf "ptree 40k digest at %d domains" (Pool.size pool))
            p0 dp);
  let sub = Array.sub objs 0 20000 in
  let rng = Prng.create 4243 in
  let ts = Array.map (fun pool -> Kwsc.Orp_kw.build ~pool ~k:2 sub) (Lazy.force pools) in
  for _ = 1 to 10 do
    let q = Helpers.random_rect rng ~d:2 ~range:1000.0 in
    let ws = Helpers.random_keywords rng ~vocab:80 ~k:2 in
    let ids0 = Kwsc.Orp_kw.query ts.(0) q ws in
    Helpers.check_ids "orp 20k = oracle" (Helpers.oracle_rect sub q ws) ids0;
    Array.iter
      (fun t -> Helpers.check_ids "orp 20k parallel = sequential" ids0 (Kwsc.Orp_kw.query t q ws))
      ts
  done

let suite =
  [
    Alcotest.test_case "Stats.merge equals sequential accumulation" `Quick test_stats_merge;
    Alcotest.test_case "kd/ptree/inverted parallel builds byte-identical" `Quick
      test_static_digests;
    Alcotest.test_case "same seed, same domains: repeat builds byte-identical" `Quick
      test_determinism;
    Alcotest.test_case "batched queries equal a sequential loop" `Quick test_batch_equivalence;
    QCheck_alcotest.to_alcotest diff_transform;
  ]
  @ if slow then [ Alcotest.test_case "parallel stress (KWSC_SLOW)" `Slow test_parallel_stress ]
    else []
