.PHONY: all build test test-slow bench bench-quick bench-parallel bench-flat bench-snap bench-cmp bench-shard bench-wide bench-serve bench-ooc bench-smoke examples clean doc lint analyze audit ci

# `make doc` requires odoc (opam install odoc)

all: build

build:
	dune build @all

test:
	dune runtest --force

# The heavy tier: large stress instances, the 120-sequence dynamic audit
# and the parallel stress test, under deep audits and a 4-domain pool.
test-slow:
	KWSC_SLOW=1 KWSC_AUDIT=1 KWSC_DOMAINS=4 dune runtest --force

# Repo-specific static analysis over the parsetree (tools/lint; rules
# R1-R12).
lint:
	dune build @lint

# Typed, interprocedural analysis over the typedtree (tools/analyze;
# rules A1 allocation-freedom, A2 domain-safety, A3 unsafe-access gating).
analyze:
	dune build @analyze

# Re-run the suite with deep structural audits on every index build/update.
audit:
	KWSC_AUDIT=1 dune runtest --force

# Everything CI checks: build + tests at 1 and 4 domains + slow tier +
# lint + typed analysis.
ci:
	sh scripts/ci.sh

bench:
	dune exec bench/main.exe

bench-quick:
	dune exec bench/main.exe -- --quick

# Multicore build-throughput and batched-QPS scaling (writes BENCH_pr2.json).
bench-parallel:
	dune exec bench/main.exe -- --only PAR

# Flat (frozen) layouts vs boxed trees: build/range/NN/intersection
# throughput and words allocated per query (writes BENCH_pr3.json).
bench-flat:
	dune exec bench/main.exe -- --only FLAT

# Durable snapshots: save/load round trip vs cold build, answer- and
# counter-identical (writes BENCH_pr4.json).
bench-snap:
	dune exec bench/main.exe -- --only SNAP

# Hybrid containers vs sparse-only postings, gated on the committed
# deterministic work-counter reference (±10%; the reference holds
# smoke-footprint values, so the gate replays the experiment at smoke
# size first, then the full measurement run writes BENCH_pr5.json).
# Regenerate the reference with scripts/regen_cmp_ref.sh after an
# intentional counter change.
bench-cmp:
	dune exec bench/main.exe -- --smoke --no-micro --only CMP --check-ref scripts/cmp_ref.txt
	dune exec bench/main.exe -- --only CMP

# Per-shard indexes behind the scatter-gather router vs the monolithic
# index, answer-checked at K in {1,2,4,8} (writes BENCH_pr6.json).
bench-shard:
	dune exec bench/main.exe -- --only SHARD

# 63-bit wide bitmap kernels vs an in-bench scalar 32-bit reference,
# plus the end-to-end CMP rows on this build (writes BENCH_pr8.json).
bench-wide:
	dune exec bench/main.exe -- --only WIDE

# The serving loop: epoch-pinned read latency under a mixed
# update/query stream, checkpoint restore vs a cold replay rebuild
# (writes BENCH_pr9.json).
bench-serve:
	dune exec bench/main.exe -- --only SERVE

# Out-of-core paged snapshots: time-to-first-query and resident-set
# growth vs the eager loader, answers cross-checked (writes
# BENCH_pr10.json).
bench-ooc:
	dune exec bench/main.exe -- --only OOC

bench-smoke:
	dune exec bench/main.exe -- --smoke --no-micro

examples:
	dune exec examples/quickstart.exe
	dune exec examples/temporal_search.exe
	dune exec examples/geo_search.exe
	dune exec examples/set_intersection.exe
	dune exec examples/streaming_updates.exe

doc:
	dune build @doc

clean:
	dune clean
