.PHONY: all build test bench bench-quick examples clean doc

# `make doc` requires odoc (opam install odoc)

all: build

build:
	dune build @all

test:
	dune runtest --force

bench:
	dune exec bench/main.exe

bench-quick:
	dune exec bench/main.exe -- --quick

examples:
	dune exec examples/quickstart.exe
	dune exec examples/temporal_search.exe
	dune exec examples/geo_search.exe
	dune exec examples/set_intersection.exe
	dune exec examples/streaming_updates.exe

doc:
	dune build @doc

clean:
	dune clean
