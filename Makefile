.PHONY: all build test bench bench-quick examples clean doc lint audit ci

# `make doc` requires odoc (opam install odoc)

all: build

build:
	dune build @all

test:
	dune runtest --force

# Repo-specific static analysis (tools/lint; rules R1-R7).
lint:
	dune build @lint

# Re-run the suite with deep structural audits on every index build/update.
audit:
	KWSC_AUDIT=1 dune runtest --force

# Everything CI checks: build + tests + lint.
ci:
	sh scripts/ci.sh

bench:
	dune exec bench/main.exe

bench-quick:
	dune exec bench/main.exe -- --quick

examples:
	dune exec examples/quickstart.exe
	dune exec examples/temporal_search.exe
	dune exec examples/geo_search.exe
	dune exec examples/set_intersection.exe
	dune exec examples/streaming_updates.exe

doc:
	dune build @doc

clean:
	dune clean
