open Kwsc_geom
module Sp = Kwsc.Sp_kw
module Lc = Kwsc.Lc_kw
module Prng = Kwsc_util.Prng

let random_halfspace rng d range =
  Halfspace.make
    (Array.init d (fun _ -> Prng.float rng 2.0 -. 1.0))
    (Prng.float rng (range *. 1.5))

let random_triangle rng range =
  let v () = [| Prng.float rng range; Prng.float rng range |] in
  let rec go attempts =
    if attempts > 50 then Alcotest.fail "no triangle"
    else
      match Simplex.of_vertices [| v (); v (); v () |] with
      | s -> s
      | exception Invalid_argument _ -> go (attempts + 1)
  in
  go 0

let test_sp_matches_oracle () =
  let objs = Helpers.dataset ~seed:61 ~n:300 ~d:2 () in
  let t = Sp.build ~k:2 objs in
  let rng = Prng.create 301 in
  for _ = 1 to 60 do
    let s = random_triangle rng 1000.0 in
    let ws = Helpers.random_keywords rng ~vocab:40 ~k:2 in
    Helpers.check_ids "sp = oracle"
      (Helpers.oracle objs (Simplex.contains s) ws)
      (Sp.query_simplex t s ws)
  done

let test_lc_single_constraint () =
  let objs = Helpers.dataset ~seed:62 ~n:300 ~d:2 () in
  let t = Lc.build ~k:2 objs in
  let rng = Prng.create 302 in
  for _ = 1 to 60 do
    let h = random_halfspace rng 2 1000.0 in
    let ws = Helpers.random_keywords rng ~vocab:40 ~k:2 in
    Helpers.check_ids "lc s=1 = oracle"
      (Helpers.oracle objs (Halfspace.satisfies h) ws)
      (Lc.query t [ h ] ws)
  done

let test_lc_multi_constraints () =
  let objs = Helpers.dataset ~seed:63 ~n:300 ~d:2 () in
  let t = Lc.build ~k:2 objs in
  let rng = Prng.create 303 in
  for _ = 1 to 60 do
    let hs = List.init (1 + Prng.int rng 3) (fun _ -> random_halfspace rng 2 1000.0) in
    let ws = Helpers.random_keywords rng ~vocab:40 ~k:2 in
    Helpers.check_ids "lc multi = oracle"
      (Helpers.oracle objs (fun p -> List.for_all (fun h -> Halfspace.satisfies h p) hs) ws)
      (Lc.query t hs ws)
  done

let test_lc_3d () =
  let objs = Helpers.dataset ~seed:64 ~n:200 ~d:3 () in
  let t = Lc.build ~k:2 objs in
  let rng = Prng.create 304 in
  for _ = 1 to 30 do
    let hs = List.init 2 (fun _ -> random_halfspace rng 3 1000.0) in
    let ws = Helpers.random_keywords rng ~vocab:40 ~k:2 in
    Helpers.check_ids "lc 3d = oracle"
      (Helpers.oracle objs (fun p -> List.for_all (fun h -> Halfspace.satisfies h p) hs) ws)
      (Lc.query t hs ws)
  done

let test_lc_rect_equals_orp () =
  (* the remark after Theorem 5: ORP-KW through 2d linear constraints *)
  let objs = Helpers.dataset ~seed:65 ~n:250 ~d:2 () in
  let lc = Lc.build ~k:2 objs in
  let orp = Kwsc.Orp_kw.build ~k:2 objs in
  let rng = Prng.create 305 in
  for _ = 1 to 60 do
    let q = Helpers.random_rect rng ~d:2 ~range:1000.0 in
    let ws = Helpers.random_keywords rng ~vocab:40 ~k:2 in
    Helpers.check_ids "LC-KW(rect) = ORP-KW" (Kwsc.Orp_kw.query orp q ws) (Lc.query_rect lc q ws)
  done

let test_lc_via_simplices_agrees () =
  let objs = Helpers.dataset ~seed:66 ~n:200 ~d:2 () in
  let t = Lc.build ~k:2 objs in
  let rng = Prng.create 306 in
  let tried = ref 0 in
  while !tried < 20 do
    (* bounded region: a random query rectangle as constraints, plus a cut *)
    let r = Helpers.random_rect rng ~d:2 ~range:1000.0 in
    let hs = random_halfspace rng 2 1000.0 :: Halfspace.of_rect r in
    let ws = Helpers.random_keywords rng ~vocab:40 ~k:2 in
    let direct = Lc.query t hs ws in
    let via = Lc.query_via_simplices t hs ws in
    (* only compare when no object sits on a triangulation edge: the
       decomposition is exact for interior points, boundary points can be
       assigned either way by float rounding, so allow the rare off-by-edge
       by re-checking membership *)
    Helpers.check_ids "simplex decomposition agrees" direct via;
    incr tried
  done

let test_empty_region () =
  let objs = Helpers.dataset ~seed:67 ~n:100 ~d:2 () in
  let t = Lc.build ~k:2 objs in
  let hs = [ Halfspace.make [| 1.0; 0.0 |] 0.0; Halfspace.make [| -1.0; 0.0 |] (-1.0) ] in
  Helpers.check_ids "infeasible constraints" [||] (Lc.query t hs [| 1; 2 |])

let test_whole_space () =
  let objs = Helpers.dataset ~seed:68 ~n:200 ~d:2 () in
  let t = Lc.build ~k:2 objs in
  let inv = Kwsc_invindex.Inverted.build (Array.map snd objs) in
  let rng = Prng.create 307 in
  for _ = 1 to 40 do
    let ws = Helpers.random_keywords rng ~vocab:40 ~k:2 in
    Helpers.check_ids "no constraints = pure keyword search"
      (Kwsc_invindex.Inverted.query_naive inv ws)
      (Lc.query t [] ws)
  done

let test_duplicate_points_sp () =
  let doc i = Kwsc_invindex.Doc.of_list [ 1 + (i mod 2); 9 ] in
  let objs = Array.init 80 (fun i -> ((if i < 40 then [| 1.0; 1.0 |] else [| 9.0; 9.0 |]), doc i)) in
  let t = Sp.build ~k:2 objs in
  let s = Simplex.of_vertices [| [| 0.0; 0.0 |]; [| 4.0; 0.0 |]; [| 0.0; 4.0 |] |] in
  Helpers.check_ids "duplicates respected"
    (Helpers.oracle objs (Simplex.contains s) [| 1; 9 |])
    (Sp.query_simplex t s [| 1; 9 |])

let test_sp_invariants () =
  let objs = Helpers.dataset ~seed:69 ~n:300 ~d:2 () in
  let t = Sp.build ~k:2 objs in
  Sp.fold_nodes t ~init:() ~f:(fun () v ->
      let bound = float_of_int (Sp.input_size t) /. (2.0 ** float_of_int v.Kwsc.Transform.depth) in
      Alcotest.(check bool) "weight halving" true (float_of_int v.Kwsc.Transform.n_u <= bound +. 1e-9))

let qcheck_lc =
  QCheck.Test.make ~name:"LC-KW equals oracle" ~count:40
    QCheck.(small_int)
    (fun seed ->
      let objs = Helpers.dataset ~seed ~n:100 ~d:2 ~vocab:15 () in
      let t = Lc.build ~k:2 objs in
      let rng = Prng.create (seed + 777) in
      let hs = List.init (1 + Prng.int rng 2) (fun _ -> random_halfspace rng 2 1000.0) in
      let ws = Helpers.random_keywords rng ~vocab:15 ~k:2 in
      Helpers.oracle objs (fun p -> List.for_all (fun h -> Halfspace.satisfies h p) hs) ws
      = Lc.query t hs ws)

let suite =
  [
    Alcotest.test_case "SP-KW matches oracle" `Quick test_sp_matches_oracle;
    Alcotest.test_case "LC-KW single constraint" `Quick test_lc_single_constraint;
    Alcotest.test_case "LC-KW multiple constraints" `Quick test_lc_multi_constraints;
    Alcotest.test_case "LC-KW 3d" `Quick test_lc_3d;
    Alcotest.test_case "LC-KW(rect) = ORP-KW" `Quick test_lc_rect_equals_orp;
    Alcotest.test_case "simplex decomposition agrees" `Quick test_lc_via_simplices_agrees;
    Alcotest.test_case "infeasible region" `Quick test_empty_region;
    Alcotest.test_case "whole space" `Quick test_whole_space;
    Alcotest.test_case "duplicate points" `Quick test_duplicate_points_sp;
    Alcotest.test_case "SP-KW weight invariant" `Quick test_sp_invariants;
    QCheck_alcotest.to_alcotest qcheck_lc;
  ]
