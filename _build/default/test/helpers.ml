(* Shared generators and naive oracles for the test suites. *)

open Kwsc_geom
module Doc = Kwsc_invindex.Doc
module Prng = Kwsc_util.Prng

let ints = Alcotest.(array int)

(* Deterministic random dataset: n objects, d dims, Zipf documents. *)
let dataset ?(seed = 42) ?(vocab = 40) ?(theta = 0.9) ?(len_min = 1) ?(len_max = 6)
    ?(range = 1000.0) ~n ~d () =
  let rng = Prng.create seed in
  let pts = Kwsc_workload.Gen.points_uniform ~rng ~n ~d ~range in
  let docs = Kwsc_workload.Gen.docs ~rng ~n ~vocab ~theta ~len_min ~len_max in
  Array.init n (fun i -> (pts.(i), docs.(i)))

(* Dataset with deliberately clumped coordinates to exercise tie-breaking
   (Step 4: removal of general position). *)
let gridded_dataset ?(seed = 7) ?(vocab = 15) ~n ~d () =
  let rng = Prng.create seed in
  let pts =
    Array.init n (fun _ -> Array.init d (fun _ -> float_of_int (Prng.int rng 8)))
  in
  let docs =
    Kwsc_workload.Gen.docs ~rng ~n ~vocab ~theta:0.7 ~len_min:1 ~len_max:4
  in
  Array.init n (fun i -> (pts.(i), docs.(i)))

let doc_all doc ws = Array.for_all (fun w -> Doc.mem doc w) ws

(* Ground truth for any geometric predicate. *)
let oracle objs pred ws =
  let hits = ref [] in
  Array.iteri (fun id (p, doc) -> if pred p && doc_all doc ws then hits := id :: !hits) objs;
  let a = Array.of_list !hits in
  Array.sort compare a;
  a

let oracle_rect objs q ws = oracle objs (Rect.contains_point q) ws

(* Ground-truth t'-nearest matching objects under a metric. *)
let oracle_nn objs metric q t' ws =
  let dist = match metric with `Linf -> Point.linf_dist | `L2 -> Point.l2_dist in
  let matches = ref [] in
  Array.iteri
    (fun id (p, doc) -> if doc_all doc ws then matches := (id, dist q p) :: !matches)
    objs;
  let a = Array.of_list !matches in
  Array.sort (fun (ia, da) (ib, db) -> if da <> db then compare da db else compare ia ib) a;
  Array.sub a 0 (min t' (Array.length a))

let random_rect rng ~d ~range =
  let a = Array.init d (fun _ -> Prng.float rng range) in
  let b = Array.init d (fun _ -> Prng.float rng range) in
  Rect.make
    (Array.init d (fun i -> Float.min a.(i) b.(i)))
    (Array.init d (fun i -> Float.max a.(i) b.(i)))

(* k distinct keywords, mixing ranks so large and small cases both occur. *)
let random_keywords rng ~vocab ~k =
  let seen = Hashtbl.create k in
  while Hashtbl.length seen < k do
    Hashtbl.replace seen (1 + Prng.int rng vocab) ()
  done;
  Array.of_list (Hashtbl.fold (fun w () acc -> w :: acc) seen [])

let check_ids = Alcotest.(check (array int))
