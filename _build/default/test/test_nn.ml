module Linf = Kwsc.Linf_nn_kw
module L2 = Kwsc.L2_nn_kw
module Prng = Kwsc_util.Prng

(* NN answers may differ from the oracle in *which* equidistant object is
   picked, but the distance multiset of the t answers must match. *)
let check_distances name expected got =
  Alcotest.(check int) (name ^ " count") (Array.length expected) (Array.length got);
  Array.iteri
    (fun i (_, d) ->
      let _, ed = expected.(i) in
      Alcotest.(check (float 1e-9)) (Printf.sprintf "%s dist[%d]" name i) ed d)
    got

let test_linf_matches_oracle () =
  let objs = Helpers.dataset ~seed:81 ~n:300 ~d:2 () in
  let t = Linf.build ~k:2 objs in
  let rng = Prng.create 501 in
  for _ = 1 to 50 do
    let q = [| Prng.float rng 1000.0; Prng.float rng 1000.0 |] in
    let t' = 1 + Prng.int rng 10 in
    let ws = Helpers.random_keywords rng ~vocab:40 ~k:2 in
    let expected = Helpers.oracle_nn objs `Linf q t' ws in
    let got = Linf.query t q ~t' ws in
    check_distances "linf nn" expected got
  done

let test_linf_fewer_matches_than_t () =
  let objs =
    [|
      ([| 0.0; 0.0 |], Kwsc_invindex.Doc.of_list [ 1; 2 ]);
      ([| 5.0; 0.0 |], Kwsc_invindex.Doc.of_list [ 1; 2 ]);
      ([| 9.0; 0.0 |], Kwsc_invindex.Doc.of_list [ 1; 3 ]);
    |]
  in
  let t = Linf.build ~k:2 objs in
  let got = Linf.query t [| 0.0; 0.0 |] ~t':10 [| 1; 2 |] in
  Alcotest.(check int) "only two match" 2 (Array.length got);
  Alcotest.(check int) "nearest first" 0 (fst got.(0));
  Alcotest.(check int) "then the other" 1 (fst got.(1))

let test_linf_t1 () =
  let objs = Helpers.dataset ~seed:82 ~n:200 ~d:2 () in
  let t = Linf.build ~k:2 objs in
  let rng = Prng.create 502 in
  for _ = 1 to 50 do
    let q = [| Prng.float rng 1000.0; Prng.float rng 1000.0 |] in
    let ws = Helpers.random_keywords rng ~vocab:40 ~k:2 in
    let expected = Helpers.oracle_nn objs `Linf q 1 ws in
    let got = Linf.query t q ~t':1 ws in
    check_distances "1-nn" expected got
  done

let test_linf_probe_count_logarithmic () =
  let objs = Helpers.dataset ~seed:83 ~n:1000 ~d:2 () in
  let t = Linf.build ~k:2 objs in
  let _, probes = Linf.query_count t [| 500.0; 500.0 |] ~t':5 [| 1; 2 |] in
  (* binary search over 2N candidates: ~log2(2000) + the final full query *)
  Alcotest.(check bool) (Printf.sprintf "probes %d = O(log N)" probes) true (probes <= 16)

let test_l2_matches_oracle () =
  let rng = Prng.create 503 in
  let pts = Kwsc_workload.Gen.points_int ~rng ~n:250 ~d:2 ~max_coord:100 in
  let docs = Kwsc_workload.Gen.docs ~rng ~n:250 ~vocab:30 ~theta:0.8 ~len_min:1 ~len_max:5 in
  let objs = Array.init 250 (fun i -> (pts.(i), docs.(i))) in
  let t = L2.build ~k:2 objs in
  for _ = 1 to 40 do
    let q = [| float_of_int (Prng.int rng 101); float_of_int (Prng.int rng 101) |] in
    let t' = 1 + Prng.int rng 8 in
    let ws = Helpers.random_keywords rng ~vocab:30 ~k:2 in
    let expected = Helpers.oracle_nn objs `L2 q t' ws in
    let got = L2.query t q ~t' ws in
    check_distances "l2 nn" expected got
  done

let test_l2_rejects_non_integers () =
  Alcotest.check_raises "non-integer coordinates"
    (Invalid_argument "L2_nn_kw.build: coordinates must be small non-negative integers")
    (fun () ->
      ignore (L2.build ~k:2 [| ([| 0.5; 1.0 |], Kwsc_invindex.Doc.of_list [ 1 ]) |]))

let test_l2_probe_count () =
  let rng = Prng.create 504 in
  let pts = Kwsc_workload.Gen.points_int ~rng ~n:400 ~d:2 ~max_coord:64 in
  let docs = Kwsc_workload.Gen.docs ~rng ~n:400 ~vocab:20 ~theta:0.8 ~len_min:1 ~len_max:4 in
  let objs = Array.init 400 (fun i -> (pts.(i), docs.(i))) in
  let t = L2.build ~k:2 objs in
  let _, probes = L2.query_count t [| 32.0; 32.0 |] ~t':3 [| 1; 2 |] in
  (* binary search over integer squared radii: log2(4 * (d * 64^2 + ...)) *)
  Alcotest.(check bool) (Printf.sprintf "probes %d logarithmic" probes) true (probes <= 24)

let test_linf_3d_engines () =
  let objs = Helpers.dataset ~seed:84 ~n:200 ~d:3 () in
  let kd = Linf.build ~engine:`Kd ~k:2 objs in
  let dr = Linf.build ~engine:`Dimred ~k:2 objs in
  let rng = Prng.create 505 in
  for _ = 1 to 30 do
    let q = Array.init 3 (fun _ -> Prng.float rng 1000.0) in
    let t' = 1 + Prng.int rng 6 in
    let ws = Helpers.random_keywords rng ~vocab:40 ~k:2 in
    let expected = Helpers.oracle_nn objs `Linf q t' ws in
    check_distances "3d kd engine" expected (Linf.query kd q ~t' ws);
    check_distances "3d dimred engine" expected (Linf.query dr q ~t' ws)
  done

let qcheck_linf =
  QCheck.Test.make ~name:"Linf NN distances equal oracle" ~count:40
    QCheck.(small_int)
    (fun seed ->
      let objs = Helpers.dataset ~seed ~n:80 ~d:2 ~vocab:12 () in
      let t = Linf.build ~k:2 objs in
      let rng = Prng.create (seed + 999) in
      let q = [| Prng.float rng 1000.0; Prng.float rng 1000.0 |] in
      let t' = 1 + Prng.int rng 5 in
      let ws = Helpers.random_keywords rng ~vocab:12 ~k:2 in
      let expected = Helpers.oracle_nn objs `Linf q t' ws in
      let got = Linf.query t q ~t' ws in
      Array.length expected = Array.length got
      && Array.for_all2 (fun (_, a) (_, b) -> abs_float (a -. b) < 1e-9) expected got)

let suite =
  [
    Alcotest.test_case "Linf NN matches oracle" `Quick test_linf_matches_oracle;
    Alcotest.test_case "Linf fewer matches than t" `Quick test_linf_fewer_matches_than_t;
    Alcotest.test_case "Linf t=1" `Quick test_linf_t1;
    Alcotest.test_case "Linf probe count O(log N)" `Quick test_linf_probe_count_logarithmic;
    Alcotest.test_case "Linf 3d engines agree with oracle" `Quick test_linf_3d_engines;
    Alcotest.test_case "L2 NN matches oracle" `Quick test_l2_matches_oracle;
    Alcotest.test_case "L2 rejects non-integers" `Quick test_l2_rejects_non_integers;
    Alcotest.test_case "L2 probe count" `Quick test_l2_probe_count;
    QCheck_alcotest.to_alcotest qcheck_linf;
  ]
