module Hardness = Kwsc.Hardness
module Ksi_instance = Kwsc_invindex.Ksi_instance
module Prng = Kwsc_util.Prng

let random_instance seed =
  let rng = Prng.create seed in
  let m = 2 + Prng.int rng 5 in
  Ksi_instance.create
    (Array.init m (fun _ -> Array.init (1 + Prng.int rng 25) (fun _ -> Prng.int rng 50)))

let test_ksi_as_orp_equivalence () =
  let rng = Prng.create 901 in
  for seed = 1 to 40 do
    let inst = random_instance seed in
    let m = Ksi_instance.num_sets inst in
    let reduction = Hardness.ksi_as_orp ~k:2 inst in
    let a = 1 + Prng.int rng m in
    let b = 1 + ((a + Prng.int rng (max 1 (m - 1))) mod m) in
    if a <> b then begin
      let got = Hardness.ksi_query_via_orp reduction [| a; b |] in
      Array.sort compare got;
      Alcotest.(check (array int)) "orp reduction = naive intersection"
        (Ksi_instance.reporting inst [| a; b |])
        got
    end
  done

let test_ksi_via_linf_nn () =
  let rng = Prng.create 902 in
  for seed = 50 to 80 do
    let inst = random_instance seed in
    let m = Ksi_instance.num_sets inst in
    let a = 1 + Prng.int rng m in
    let b = 1 + ((a + Prng.int rng (max 1 (m - 1))) mod m) in
    if a <> b then
      Alcotest.(check (array int)) "doubling-t NN reduction = naive"
        (Ksi_instance.reporting inst [| a; b |])
        (Hardness.ksi_via_linf_nn ~k:2 inst [| a; b |])
  done

let test_ksi_via_linf_nn_empty_intersection () =
  let inst = Ksi_instance.create [| [| 1; 2; 3 |]; [| 4; 5; 6 |] |] in
  Alcotest.(check (array int)) "empty intersection" [||]
    (Hardness.ksi_via_linf_nn ~k:2 inst [| 1; 2 |])

let test_lemma8_delta () =
  (* for tiny eps the binding term is eps/(1 - 1/k + eps) *)
  let d = Hardness.lemma8_delta ~k:2 ~eps:0.01 in
  Alcotest.(check (float 1e-9)) "small eps branch" (0.01 /. (0.5 +. 0.01)) d;
  (* for large eps it saturates at 1/k *)
  let d2 = Hardness.lemma8_delta ~k:2 ~eps:10.0 in
  Alcotest.(check (float 1e-9)) "saturates at 1/k" 0.5 d2;
  Alcotest.(check bool) "monotone in eps" true
    (Hardness.lemma8_delta ~k:3 ~eps:0.2 > Hardness.lemma8_delta ~k:3 ~eps:0.1);
  Alcotest.check_raises "bad k" (Invalid_argument "Hardness.lemma8_delta") (fun () ->
      ignore (Hardness.lemma8_delta ~k:1 ~eps:0.1))

let suite =
  [
    Alcotest.test_case "k-SI as ORP-KW" `Quick test_ksi_as_orp_equivalence;
    Alcotest.test_case "k-SI via Linf-NN doubling" `Quick test_ksi_via_linf_nn;
    Alcotest.test_case "NN reduction, empty intersection" `Quick test_ksi_via_linf_nn_empty_intersection;
    Alcotest.test_case "Lemma 8 arithmetic" `Quick test_lemma8_delta;
  ]
