(* Direct tests of the Transform framework through a minimal hand-written
   space (1-D integer cells), independent of the real geometry
   instantiations. *)

module T = Kwsc.Transform
module Doc = Kwsc_invindex.Doc
module Prng = Kwsc_util.Prng

(* Cells are closed integer intervals over object ids; queries are the same.
   Splitting halves the id range — a faithful toy space-partitioning
   index. *)
let interval_space n : ((int * int), (int * int)) T.space =
  let classify (qa, qb) (ca, cb) =
    if cb < qa || ca > qb then T.Disjoint
    else if qa <= ca && cb <= qb then T.Covered
    else T.Crossing
  in
  let split ~depth:_ (ca, cb) ids =
    let mid = (ca + cb) / 2 in
    let left = Array.of_list (List.filter (fun id -> id < mid) (Array.to_list ids)) in
    let right = Array.of_list (List.filter (fun id -> id > mid) (Array.to_list ids)) in
    let pivots = Array.of_list (List.filter (fun id -> id = mid) (Array.to_list ids)) in
    ([| ((ca, mid), left); ((mid, cb), right) |], pivots)
  in
  {
    T.root_cell = (0, n - 1);
    split;
    classify;
    contains = (fun (qa, qb) id -> qa <= id && id <= qb);
  }

let random_docs ~seed ~n ~vocab =
  let rng = Prng.create seed in
  Array.init n (fun _ ->
      Doc.of_list (List.init (1 + Prng.int rng 4) (fun _ -> 1 + Prng.int rng vocab)))

let oracle docs (qa, qb) ws =
  let hits = ref [] in
  Array.iteri
    (fun id doc ->
      if id >= qa && id <= qb && Array.for_all (fun w -> Doc.mem doc w) ws then hits := id :: !hits)
    docs;
  let a = Array.of_list !hits in
  Array.sort compare a;
  a

let test_interval_space_oracle () =
  let n = 300 in
  let docs = random_docs ~seed:181 ~n ~vocab:20 in
  let t = T.build ~k:2 ~space:(interval_space n) docs in
  let rng = Prng.create 182 in
  for _ = 1 to 150 do
    let a = Prng.int rng n and b = Prng.int rng n in
    let q = (min a b, max a b) in
    let ws = Helpers.random_keywords rng ~vocab:20 ~k:2 in
    Helpers.check_ids "interval transform = oracle" (oracle docs q ws) (T.query t q ws)
  done

let test_stats_consistency () =
  let n = 400 in
  let docs = random_docs ~seed:183 ~n ~vocab:15 in
  let t = T.build ~k:2 ~space:(interval_space n) docs in
  let rng = Prng.create 184 in
  for _ = 1 to 60 do
    let a = Prng.int rng n and b = Prng.int rng n in
    let q = (min a b, max a b) in
    let ws = Helpers.random_keywords rng ~vocab:15 ~k:2 in
    let ids, st = T.query_stats t q ws in
    Alcotest.(check int) "covered + crossing = visited" st.Kwsc.Stats.nodes_visited
      (st.Kwsc.Stats.covered_nodes + st.Kwsc.Stats.crossing_nodes);
    Alcotest.(check int) "reported = |ids|" (Array.length ids) st.Kwsc.Stats.reported;
    Alcotest.(check bool) "work >= reported" true (Kwsc.Stats.work st >= Array.length ids)
  done

let test_input_size () =
  let docs = [| Doc.of_list [ 1; 2 ]; Doc.of_list [ 3 ]; Doc.of_list [ 1; 2; 3; 4 ] |] in
  let t = T.build ~k:2 ~space:(interval_space 3) docs in
  Alcotest.(check int) "N = sum of doc sizes" 7 (T.input_size t);
  Alcotest.(check int) "k" 2 (T.k t)

(* A splitter that never separates anything: the framework must fall back to
   a leaf instead of looping. *)
let test_non_progress_splitter () =
  let stuck_space : (unit, unit) T.space =
    {
      T.root_cell = ();
      split = (fun ~depth:_ () ids -> ([| ((), ids) |], [||]));
      classify = (fun () () -> T.Covered);
      contains = (fun () _ -> true);
    }
  in
  let docs = random_docs ~seed:185 ~n:50 ~vocab:8 in
  let t = T.build ~k:2 ~space:stuck_space docs in
  let inv = Kwsc_invindex.Inverted.build docs in
  let rng = Prng.create 186 in
  for _ = 1 to 40 do
    let ws = Helpers.random_keywords rng ~vocab:8 ~k:2 in
    Helpers.check_ids "degenerate splitter still correct"
      (Kwsc_invindex.Inverted.query_naive inv ws)
      (T.query t () ws)
  done

(* A splitter that drops every object into pivots immediately. *)
let test_all_pivots_splitter () =
  let pivot_space : (unit, unit) T.space =
    {
      T.root_cell = ();
      split = (fun ~depth:_ () ids -> ([||], ids));
      classify = (fun () () -> T.Covered);
      contains = (fun () _ -> true);
    }
  in
  let docs = random_docs ~seed:187 ~n:60 ~vocab:8 in
  let t = T.build ~k:2 ~space:pivot_space docs in
  let inv = Kwsc_invindex.Inverted.build docs in
  let ws = [| 1; 2 |] in
  Helpers.check_ids "all-pivot splitter correct"
    (Kwsc_invindex.Inverted.query_naive inv ws)
    (T.query t () ws)

(* One object whose document dwarfs everything else: the weighted median
   must absorb it as a pivot without breaking the halving invariant
   elsewhere. *)
let test_heavy_object () =
  let heavy = Doc.of_list (List.init 200 (fun i -> 1000 + i)) in
  let docs = Array.append [| heavy |] (random_docs ~seed:188 ~n:100 ~vocab:10) in
  let t = T.build ~k:2 ~space:(interval_space (Array.length docs)) docs in
  let inv = Kwsc_invindex.Inverted.build docs in
  let rng = Prng.create 189 in
  for _ = 1 to 40 do
    let ws = Helpers.random_keywords rng ~vocab:10 ~k:2 in
    Helpers.check_ids "heavy object correct"
      (Kwsc_invindex.Inverted.query_naive inv ws)
      (T.query t (0, Array.length docs - 1) ws)
  done;
  (* keywords of the heavy doc *)
  Helpers.check_ids "heavy doc keywords" [| 0 |] (T.query t (0, Array.length docs - 1) [| 1000; 1199 |])

let test_negative_keywords () =
  let docs = [| Doc.of_list [ -5; 3 ]; Doc.of_list [ -5; -2 ]; Doc.of_list [ 3; -2 ] |] in
  let t = T.build ~k:2 ~space:(interval_space 3) docs in
  Helpers.check_ids "negative ids work" [| 0 |] (T.query t (0, 2) [| -5; 3 |]);
  Helpers.check_ids "negative pair" [| 1 |] (T.query t (0, 2) [| -5; -2 |])

let test_limit_edge_cases () =
  let docs = Array.make 30 (Doc.of_list [ 7; 8 ]) in
  let t = T.build ~k:2 ~space:(interval_space 30) docs in
  Alcotest.(check int) "limit 1" 1 (Array.length (T.query ~limit:1 t (0, 29) [| 7; 8 |]));
  Alcotest.(check int) "limit = OUT" 30 (Array.length (T.query ~limit:30 t (0, 29) [| 7; 8 |]));
  Alcotest.(check int) "limit > OUT" 30 (Array.length (T.query ~limit:100 t (0, 29) [| 7; 8 |]));
  Alcotest.check_raises "limit 0 rejected" (Invalid_argument "Transform.query: limit must be >= 1")
    (fun () -> ignore (T.query ~limit:0 t (0, 29) [| 7; 8 |]))

let test_k4 () =
  let rng = Prng.create 190 in
  let docs =
    Array.init 200 (fun _ ->
        Doc.of_list (List.init (3 + Prng.int rng 5) (fun _ -> 1 + Prng.int rng 10)))
  in
  let t = T.build ~k:4 ~space:(interval_space 200) docs in
  let inv = Kwsc_invindex.Inverted.build docs in
  for _ = 1 to 60 do
    let ws = Helpers.random_keywords rng ~vocab:10 ~k:4 in
    Helpers.check_ids "k=4 correct" (Kwsc_invindex.Inverted.query_naive inv ws) (T.query t (0, 199) ws)
  done

let qcheck_interval =
  QCheck.Test.make ~name:"interval transform equals oracle" ~count:80
    QCheck.(small_int)
    (fun seed ->
      let n = 100 in
      let docs = random_docs ~seed ~n ~vocab:12 in
      let t = T.build ~k:2 ~space:(interval_space n) docs in
      let rng = Prng.create (seed + 4242) in
      let a = Prng.int rng n and b = Prng.int rng n in
      let q = (min a b, max a b) in
      let ws = Helpers.random_keywords rng ~vocab:12 ~k:2 in
      oracle docs q ws = T.query t q ws)

let suite =
  [
    Alcotest.test_case "interval space vs oracle" `Quick test_interval_space_oracle;
    Alcotest.test_case "stats consistency" `Quick test_stats_consistency;
    Alcotest.test_case "input size" `Quick test_input_size;
    Alcotest.test_case "non-progress splitter" `Quick test_non_progress_splitter;
    Alcotest.test_case "all-pivots splitter" `Quick test_all_pivots_splitter;
    Alcotest.test_case "heavy object" `Quick test_heavy_object;
    Alcotest.test_case "negative keywords" `Quick test_negative_keywords;
    Alcotest.test_case "limit edge cases" `Quick test_limit_edge_cases;
    Alcotest.test_case "k=4" `Quick test_k4;
    QCheck_alcotest.to_alcotest qcheck_interval;
  ]
