open Kwsc_geom
module Prng = Kwsc_util.Prng

let test_linalg_solve () =
  match Linalg.solve [| [| 2.0; 1.0 |]; [| 1.0; 3.0 |] |] [| 5.0; 10.0 |] with
  | None -> Alcotest.fail "system is regular"
  | Some x ->
      Alcotest.(check (float 1e-9)) "x0" 1.0 x.(0);
      Alcotest.(check (float 1e-9)) "x1" 3.0 x.(1)

let test_linalg_singular () =
  match Linalg.solve [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] [| 1.0; 2.0 |] with
  | None -> ()
  | Some _ -> Alcotest.fail "singular system must be rejected"

let test_linalg_det () =
  Alcotest.(check (float 1e-9)) "det 2x2" (-2.0) (Linalg.det [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |]);
  Alcotest.(check (float 1e-9)) "det singular" 0.0 (Linalg.det [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |]);
  Alcotest.(check (float 1e-6)) "det 3x3 identity" 1.0
    (Linalg.det [| [| 1.; 0.; 0. |]; [| 0.; 1.; 0. |]; [| 0.; 0.; 1. |] |])

let test_point_metrics () =
  let p = [| 0.0; 0.0 |] and q = [| 3.0; 4.0 |] in
  Alcotest.(check (float 1e-9)) "l2" 5.0 (Point.l2_dist p q);
  Alcotest.(check (float 1e-9)) "l2 sq" 25.0 (Point.l2_dist_sq p q);
  Alcotest.(check (float 1e-9)) "linf" 4.0 (Point.linf_dist p q);
  Alcotest.(check bool) "linf <= l2" true (Point.linf_dist p q <= Point.l2_dist p q)

let test_rect_ops () =
  let r = Rect.make [| 0.0; 0.0 |] [| 10.0; 5.0 |] in
  Alcotest.(check bool) "inside" true (Rect.contains_point r [| 5.0; 2.0 |]);
  Alcotest.(check bool) "boundary" true (Rect.contains_point r [| 10.0; 5.0 |]);
  Alcotest.(check bool) "outside" false (Rect.contains_point r [| 10.1; 5.0 |]);
  let s = Rect.make [| 9.0; 4.0 |] [| 20.0; 20.0 |] in
  Alcotest.(check bool) "intersects" true (Rect.intersects r s);
  Alcotest.(check bool) "not contains" false (Rect.contains_rect r s);
  Alcotest.(check bool) "full contains" true (Rect.contains_rect (Rect.full 2) r);
  (match Rect.inter r s with
  | None -> Alcotest.fail "intersection exists"
  | Some i ->
      Alcotest.(check (float 1e-9)) "inter lo" 9.0 i.Rect.lo.(0);
      Alcotest.(check (float 1e-9)) "inter hi" 10.0 i.Rect.hi.(0));
  let far = Rect.make [| 100.0; 100.0 |] [| 101.0; 101.0 |] in
  Alcotest.(check bool) "disjoint" false (Rect.intersects r far);
  Alcotest.(check (option reject)) "inter none" None
    (Option.map (fun _ -> ()) (Rect.inter r far))

let test_rect_invalid () =
  Alcotest.check_raises "lo > hi" (Invalid_argument "Rect.make: lo > hi") (fun () ->
      ignore (Rect.make [| 1.0 |] [| 0.0 |]))

let test_linf_ball () =
  let b = Rect.linf_ball [| 5.0; 5.0 |] 2.0 in
  Alcotest.(check bool) "corner inside (L-inf)" true (Rect.contains_point b [| 7.0; 7.0 |]);
  Alcotest.(check bool) "outside" false (Rect.contains_point b [| 7.1; 5.0 |])

let test_halfspace () =
  (* x + 2y <= 4 *)
  let h = Halfspace.make [| 1.0; 2.0 |] 4.0 in
  Alcotest.(check bool) "inside" true (Halfspace.satisfies h [| 0.0; 0.0 |]);
  Alcotest.(check bool) "boundary" true (Halfspace.satisfies h [| 4.0; 0.0 |]);
  Alcotest.(check bool) "outside" false (Halfspace.satisfies h [| 4.0; 1.0 |]);
  let c = Halfspace.complement_open h in
  Alcotest.(check bool) "complement outside" true (Halfspace.satisfies c [| 4.0; 1.0 |]);
  Alcotest.(check bool) "complement inside" false (Halfspace.satisfies c [| 0.0; 0.0 |])

let test_halfspace_of_rect () =
  let r = Rect.make [| 1.0; neg_infinity |] [| 3.0; 8.0 |] in
  let hs = Halfspace.of_rect r in
  Alcotest.(check int) "three finite sides" 3 (List.length hs);
  let inside p = List.for_all (fun h -> Halfspace.satisfies h p) hs in
  Alcotest.(check bool) "in" true (inside [| 2.0; -1000.0 |]);
  Alcotest.(check bool) "out x" false (inside [| 0.0; 0.0 |]);
  Alcotest.(check bool) "out y" false (inside [| 2.0; 9.0 |])

(* Barycentric-free simplex oracle in 2D: sign tests against each edge. *)
let tri = Simplex.of_vertices [| [| 0.0; 0.0 |]; [| 4.0; 0.0 |]; [| 0.0; 4.0 |] |]

let test_simplex_2d () =
  Alcotest.(check bool) "centroid" true (Simplex.contains tri [| 1.0; 1.0 |]);
  Alcotest.(check bool) "vertex" true (Simplex.contains tri [| 0.0; 0.0 |]);
  Alcotest.(check bool) "edge midpoint" true (Simplex.contains tri [| 2.0; 2.0 |]);
  Alcotest.(check bool) "outside" false (Simplex.contains tri [| 3.0; 3.0 |]);
  Alcotest.(check bool) "far" false (Simplex.contains tri [| -1.0; 0.0 |]);
  Alcotest.(check int) "three facets" 3 (List.length (Simplex.halfspaces tri))

let test_simplex_3d () =
  let s =
    Simplex.of_vertices
      [| [| 0.; 0.; 0. |]; [| 2.; 0.; 0. |]; [| 0.; 2.; 0. |]; [| 0.; 0.; 2. |] |]
  in
  Alcotest.(check bool) "inside" true (Simplex.contains s [| 0.3; 0.3; 0.3 |]);
  Alcotest.(check bool) "outside" false (Simplex.contains s [| 1.0; 1.0; 1.0 |]);
  Alcotest.(check bool) "face" true (Simplex.contains s [| 1.0; 1.0; 0.0 |])

let test_simplex_degenerate () =
  Alcotest.check_raises "collinear"
    (Invalid_argument "Simplex.of_vertices: degenerate simplex") (fun () ->
      ignore (Simplex.of_vertices [| [| 0.0; 0.0 |]; [| 1.0; 1.0 |]; [| 2.0; 2.0 |] |]))

let test_sphere () =
  let s = Sphere.make [| 1.0; 1.0 |] 2.0 in
  Alcotest.(check bool) "center" true (Sphere.contains s [| 1.0; 1.0 |]);
  Alcotest.(check bool) "boundary" true (Sphere.contains s [| 3.0; 1.0 |]);
  Alcotest.(check bool) "outside" false (Sphere.contains s [| 3.0; 2.0 |]);
  let b = Sphere.bounding_rect s in
  Alcotest.(check (float 1e-9)) "bbox lo" (-1.0) b.Rect.lo.(0)

let test_lift_property () =
  let rng = Prng.create 21 in
  for _ = 1 to 500 do
    let p = Array.init 2 (fun _ -> Prng.float rng 20.0 -. 10.0) in
    let c = Array.init 2 (fun _ -> Prng.float rng 20.0 -. 10.0) in
    let r = Prng.float rng 10.0 in
    let s = Sphere.make c r in
    let h = Lift.sphere s in
    Alcotest.(check bool) "lifting equivalence" (Sphere.contains s p)
      (Halfspace.satisfies h (Lift.point p))
  done

let test_lift_point () =
  let p' = Lift.point [| 3.0; 4.0 |] in
  Alcotest.(check int) "dim+1" 3 (Array.length p');
  Alcotest.(check (float 1e-9)) "paraboloid coord" 25.0 p'.(2)

(* --- Seidel LP ------------------------------------------------------- *)

let rng = Prng.create 1234

let test_lp_basic () =
  (* min x + y st x >= 1, y >= 2  -> (1,2) *)
  let cs = [ Halfspace.make [| -1.0; 0.0 |] (-1.0); Halfspace.make [| 0.0; -1.0 |] (-2.0) ] in
  match Seidel_lp.minimize ~rng ~dim:2 cs [| 1.0; 1.0 |] with
  | Seidel_lp.Infeasible -> Alcotest.fail "feasible"
  | Seidel_lp.Optimal x ->
      Alcotest.(check (float 1e-6)) "x" 1.0 x.(0);
      Alcotest.(check (float 1e-6)) "y" 2.0 x.(1)

let test_lp_infeasible () =
  let cs = [ Halfspace.make [| 1.0; 0.0 |] 0.0; Halfspace.make [| -1.0; 0.0 |] (-1.0) ] in
  Alcotest.(check bool) "x<=0 and x>=1" false (Seidel_lp.feasible ~rng ~dim:2 cs)

let test_lp_feasible_point () =
  let cs =
    [
      Halfspace.make [| 1.0; 1.0 |] 5.0;
      Halfspace.make [| -1.0; 0.0 |] 0.0;
      Halfspace.make [| 0.0; -1.0 |] 0.0;
    ]
  in
  Alcotest.(check bool) "triangle feasible" true (Seidel_lp.feasible ~rng ~dim:2 cs)

let test_lp_max_value () =
  let cs =
    [
      Halfspace.make [| 1.0; 0.0 |] 3.0;
      Halfspace.make [| 0.0; 1.0 |] 4.0;
      Halfspace.make [| -1.0; 0.0 |] 0.0;
      Halfspace.make [| 0.0; -1.0 |] 0.0;
    ]
  in
  (match Seidel_lp.max_value ~rng ~dim:2 cs [| 1.0; 1.0 |] with
  | None -> Alcotest.fail "feasible"
  | Some v -> Alcotest.(check (float 1e-6)) "max x+y over box" 7.0 v);
  match Seidel_lp.max_value ~rng ~dim:2 cs [| 1.0; -1.0 |] with
  | None -> Alcotest.fail "feasible"
  | Some v -> Alcotest.(check (float 1e-6)) "max x-y" 3.0 v

let test_lp_3d () =
  (* min z st z >= x + y, x >= 1, y >= 1 -> z = 2 *)
  let cs =
    [
      Halfspace.make [| 1.0; 1.0; -1.0 |] 0.0;
      Halfspace.make [| -1.0; 0.0; 0.0 |] (-1.0);
      Halfspace.make [| 0.0; -1.0; 0.0 |] (-1.0);
    ]
  in
  match Seidel_lp.minimize ~rng ~dim:3 cs [| 0.0; 0.0; 1.0 |] with
  | Seidel_lp.Infeasible -> Alcotest.fail "feasible"
  | Seidel_lp.Optimal x -> Alcotest.(check (float 1e-6)) "z" 2.0 x.(2)

(* Randomized cross-check: feasibility of random 2D systems vs a dense grid
   sample (grid hit => feasible must agree; LP feasible with no grid hit is
   possible for thin regions, so only one direction is asserted). *)
let qcheck_lp_grid =
  QCheck.Test.make ~name:"seidel feasibility is never false-negative on grid hits" ~count:200
    QCheck.(small_int)
    (fun seed ->
      let r = Prng.create seed in
      let cs =
        List.init (1 + Prng.int r 5) (fun _ ->
            Halfspace.make
              [| Prng.float r 2.0 -. 1.0; Prng.float r 2.0 -. 1.0 |]
              (Prng.float r 10.0 -. 2.0))
      in
      let grid_hit = ref false in
      for i = -10 to 10 do
        for j = -10 to 10 do
          let p = [| float_of_int i; float_of_int j |] in
          if List.for_all (fun h -> Halfspace.eval h p <= -1e-6) cs then grid_hit := true
        done
      done;
      (not !grid_hit) || Seidel_lp.feasible ~rng:r ~dim:2 cs)

(* --- Polytope --------------------------------------------------------- *)

let unit_square = Polytope.of_rect (Rect.make [| 0.0; 0.0 |] [| 1.0; 1.0 |])

let test_polytope_classify () =
  let cell = Polytope.of_rect (Rect.make [| 0.2; 0.2 |] [| 0.4; 0.4 |]) in
  Alcotest.(check bool) "covered" true
    (Polytope.classify ~rng cell unit_square = Polytope.Covered);
  let cell2 = Polytope.of_rect (Rect.make [| 0.5; 0.5 |] [| 2.0; 2.0 |]) in
  Alcotest.(check bool) "crossing" true
    (Polytope.classify ~rng cell2 unit_square = Polytope.Crossing);
  let cell3 = Polytope.of_rect (Rect.make [| 5.0; 5.0 |] [| 6.0; 6.0 |]) in
  Alcotest.(check bool) "disjoint" true
    (Polytope.classify ~rng cell3 unit_square = Polytope.Disjoint)

let test_polytope_mem () =
  Alcotest.(check bool) "mem in" true (Polytope.mem unit_square [| 0.5; 0.5 |]);
  Alcotest.(check bool) "mem boundary" true (Polytope.mem unit_square [| 1.0; 0.0 |]);
  Alcotest.(check bool) "mem out" false (Polytope.mem unit_square [| 1.5; 0.5 |])

let test_polytope_vertices_2d () =
  let vs = Polytope.vertices_2d unit_square in
  Alcotest.(check int) "four corners" 4 (List.length vs);
  List.iter
    (fun v ->
      Alcotest.(check bool) "corner coords" true
        (List.exists (fun (x, y) -> abs_float (v.(0) -. x) < 1e-6 && abs_float (v.(1) -. y) < 1e-6)
           [ (0.0, 0.0); (1.0, 0.0); (0.0, 1.0); (1.0, 1.0) ]))
    vs

let test_polytope_triangulate () =
  let tris = Polytope.triangulate_2d unit_square in
  Alcotest.(check int) "two triangles" 2 (List.length tris);
  (* triangulation covers the square: sample points *)
  let r = Prng.create 5 in
  for _ = 1 to 200 do
    let p = [| Prng.float r 1.0; Prng.float r 1.0 |] in
    Alcotest.(check bool) "covered by a triangle" true
      (List.exists (fun t -> Simplex.contains t p) tris)
  done

let test_polytope_empty () =
  let e =
    Polytope.make ~dim:2
      [ Halfspace.make [| 1.0; 0.0 |] 0.0; Halfspace.make [| -1.0; 0.0 |] (-1.0) ]
  in
  Alcotest.(check bool) "empty region" true (Polytope.is_empty ~rng e);
  Alcotest.(check (list reject)) "no vertices" []
    (List.map (fun _ -> ()) (Polytope.vertices_2d e));
  Alcotest.(check (list reject)) "no triangles" []
    (List.map (fun _ -> ()) (Polytope.triangulate_2d e))

(* --- Rank space ------------------------------------------------------- *)

let test_rank_space_distinct () =
  let pts = [| [| 1.0; 1.0 |]; [| 1.0; 1.0 |]; [| 0.5; 2.0 |] |] in
  let rs = Rank_space.create pts in
  let all = Array.init 3 (fun i -> Rank_space.ranks rs i) in
  for j = 0 to 1 do
    let col = Array.map (fun r -> r.(j)) all in
    Array.sort compare col;
    Alcotest.(check (array int)) "ranks are a permutation" [| 0; 1; 2 |] col
  done

let test_rank_space_query_equiv () =
  let r = Prng.create 99 in
  let pts = Array.init 60 (fun _ -> [| float_of_int (Prng.int r 10); float_of_int (Prng.int r 10) |]) in
  let rs = Rank_space.create pts in
  for _ = 1 to 100 do
    let q = Helpers.random_rect r ~d:2 ~range:10.0 in
    let expected =
      Array.of_list
        (List.filteri (fun _ _ -> true)
           (List.filter_map
              (fun i -> if Rect.contains_point q pts.(i) then Some i else None)
              (List.init 60 Fun.id)))
    in
    let got =
      match Rank_space.rect_to_ranks rs q with
      | None -> [||]
      | Some (lo, hi) ->
          Array.of_list
            (List.filter_map
               (fun i ->
                 let rk = Rank_space.ranks rs i in
                 if rk.(0) >= lo.(0) && rk.(0) <= hi.(0) && rk.(1) >= lo.(1) && rk.(1) <= hi.(1)
                 then Some i
                 else None)
               (List.init 60 Fun.id))
    in
    Alcotest.(check (array int)) "rank-space preserves results" expected got
  done

let suite =
  [
    Alcotest.test_case "linalg solve" `Quick test_linalg_solve;
    Alcotest.test_case "linalg singular" `Quick test_linalg_singular;
    Alcotest.test_case "linalg det" `Quick test_linalg_det;
    Alcotest.test_case "point metrics" `Quick test_point_metrics;
    Alcotest.test_case "rect operations" `Quick test_rect_ops;
    Alcotest.test_case "rect invalid" `Quick test_rect_invalid;
    Alcotest.test_case "linf ball" `Quick test_linf_ball;
    Alcotest.test_case "halfspace" `Quick test_halfspace;
    Alcotest.test_case "halfspace of rect" `Quick test_halfspace_of_rect;
    Alcotest.test_case "simplex 2d" `Quick test_simplex_2d;
    Alcotest.test_case "simplex 3d" `Quick test_simplex_3d;
    Alcotest.test_case "simplex degenerate" `Quick test_simplex_degenerate;
    Alcotest.test_case "sphere" `Quick test_sphere;
    Alcotest.test_case "lifting map property" `Quick test_lift_property;
    Alcotest.test_case "lift point" `Quick test_lift_point;
    Alcotest.test_case "lp basic" `Quick test_lp_basic;
    Alcotest.test_case "lp infeasible" `Quick test_lp_infeasible;
    Alcotest.test_case "lp feasible triangle" `Quick test_lp_feasible_point;
    Alcotest.test_case "lp max value" `Quick test_lp_max_value;
    Alcotest.test_case "lp 3d" `Quick test_lp_3d;
    QCheck_alcotest.to_alcotest qcheck_lp_grid;
    Alcotest.test_case "polytope classify" `Quick test_polytope_classify;
    Alcotest.test_case "polytope mem" `Quick test_polytope_mem;
    Alcotest.test_case "polytope vertices 2d" `Quick test_polytope_vertices_2d;
    Alcotest.test_case "polytope triangulate" `Quick test_polytope_triangulate;
    Alcotest.test_case "polytope empty" `Quick test_polytope_empty;
    Alcotest.test_case "rank space distinct" `Quick test_rank_space_distinct;
    Alcotest.test_case "rank space query equivalence" `Quick test_rank_space_query_equiv;
  ]
