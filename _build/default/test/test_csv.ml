module Csv_io = Kwsc_workload.Csv_io
module Doc = Kwsc_invindex.Doc

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) name

let test_round_trip () =
  let objs = Helpers.dataset ~seed:151 ~n:120 ~d:3 () in
  let path = tmp "kwsc_roundtrip.csv" in
  Csv_io.save path objs;
  let back = Csv_io.load path in
  Alcotest.(check int) "count" (Array.length objs) (Array.length back);
  Array.iteri
    (fun i (p, doc) ->
      let p', doc' = back.(i) in
      Alcotest.(check bool) "point equal" true (Kwsc_geom.Point.equal p p');
      Alcotest.(check (array int)) "doc equal" (Doc.to_array doc) (Doc.to_array doc'))
    objs;
  Sys.remove path

let test_round_trip_preserves_queries () =
  let objs = Helpers.dataset ~seed:152 ~n:200 ~d:2 () in
  let path = tmp "kwsc_queries.csv" in
  Csv_io.save path objs;
  let back = Csv_io.load path in
  Sys.remove path;
  let t1 = Kwsc.Orp_kw.build ~k:2 objs in
  let t2 = Kwsc.Orp_kw.build ~k:2 back in
  let rng = Kwsc_util.Prng.create 153 in
  for _ = 1 to 50 do
    let q = Helpers.random_rect rng ~d:2 ~range:1000.0 in
    let ws = Helpers.random_keywords rng ~vocab:40 ~k:2 in
    Helpers.check_ids "same answers after round trip" (Kwsc.Orp_kw.query t1 q ws)
      (Kwsc.Orp_kw.query t2 q ws)
  done

let test_malformed () =
  let path = tmp "kwsc_malformed.csv" in
  let oc = open_out path in
  output_string oc "1.0,2.0|3;4\nnot-a-line\n";
  close_out oc;
  Alcotest.check_raises "malformed line reported with number"
    (Failure "Csv_io.load: malformed line 2") (fun () -> ignore (Csv_io.load path));
  Sys.remove path

let test_bad_keyword () =
  let path = tmp "kwsc_badkw.csv" in
  let oc = open_out path in
  output_string oc "1.0|x\n";
  close_out oc;
  Alcotest.check_raises "non-integer keyword" (Failure "Csv_io.load: malformed line 1")
    (fun () -> ignore (Csv_io.load path));
  Sys.remove path

let test_empty_file () =
  let path = tmp "kwsc_empty.csv" in
  let oc = open_out path in
  close_out oc;
  Alcotest.(check int) "empty file loads empty" 0 (Array.length (Csv_io.load path));
  Sys.remove path

let test_blank_lines_skipped () =
  let path = tmp "kwsc_blank.csv" in
  let oc = open_out path in
  output_string oc "\n1.0,2.0|3\n\n4.0,5.0|6;7\n";
  close_out oc;
  let objs = Csv_io.load path in
  Sys.remove path;
  Alcotest.(check int) "two objects" 2 (Array.length objs);
  Alcotest.(check (array int)) "second doc" [| 6; 7 |] (Doc.to_array (snd objs.(1)))

let suite =
  [
    Alcotest.test_case "round trip" `Quick test_round_trip;
    Alcotest.test_case "round trip preserves queries" `Quick test_round_trip_preserves_queries;
    Alcotest.test_case "malformed line" `Quick test_malformed;
    Alcotest.test_case "bad keyword" `Quick test_bad_keyword;
    Alcotest.test_case "empty file" `Quick test_empty_file;
    Alcotest.test_case "blank lines skipped" `Quick test_blank_lines_skipped;
  ]
