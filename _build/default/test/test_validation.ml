(* Error-path coverage: every public entry point must reject malformed
   input with a descriptive Invalid_argument instead of misbehaving. *)

open Kwsc_geom
module Doc = Kwsc_invindex.Doc

let objs2 = Helpers.dataset ~seed:201 ~n:40 ~d:2 ()
let objs3 = Helpers.dataset ~seed:202 ~n:40 ~d:3 ()

let raises_invalid name f =
  Alcotest.test_case name `Quick (fun () ->
      match f () with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "%s: expected Invalid_argument" name)

let orp = Kwsc.Orp_kw.build ~k:2 objs2
let lc = Kwsc.Lc_kw.build ~k:2 objs2
let srp = Kwsc.Srp_kw.build ~k:2 objs2
let nn = Kwsc.Linf_nn_kw.build ~k:2 objs2
let dimred = Kwsc.Dimred.build ~k:2 objs3

let suite =
  [
    raises_invalid "orp: query dim mismatch" (fun () ->
        Kwsc.Orp_kw.query orp (Rect.full 3) [| 1; 2 |]);
    raises_invalid "orp: k=1 build" (fun () -> Kwsc.Orp_kw.build ~k:1 objs2);
    raises_invalid "orp: empty build" (fun () -> Kwsc.Orp_kw.build ~k:2 [||]);
    raises_invalid "orp: mixed dims" (fun () ->
        Kwsc.Orp_kw.build ~k:2 [| ([| 1.0 |], Doc.of_list [ 1 ]); ([| 1.0; 2.0 |], Doc.of_list [ 2 ]) |]);
    raises_invalid "orp: bad leaf weight" (fun () -> Kwsc.Orp_kw.build ~leaf_weight:0 ~k:2 objs2);
    raises_invalid "orp: too few keywords" (fun () ->
        Kwsc.Orp_kw.query orp (Rect.full 2) [| 1 |]);
    raises_invalid "orp: too many keywords" (fun () ->
        Kwsc.Orp_kw.query orp (Rect.full 2) [| 1; 2; 3 |]);
    raises_invalid "orp: count_at_least threshold 0" (fun () ->
        Kwsc.Orp_kw.count_at_least orp (Rect.full 2) [| 1; 2 |] ~threshold:0);
    raises_invalid "lc: constraint dim mismatch" (fun () ->
        Kwsc.Lc_kw.query lc [ Halfspace.make [| 1.0 |] 0.0 ] [| 1; 2 |]);
    raises_invalid "lc: rect dim mismatch" (fun () ->
        Kwsc.Lc_kw.query_rect lc (Rect.full 3) [| 1; 2 |]);
    raises_invalid "lc: simplices on non-2d" (fun () ->
        Kwsc.Lc_kw.query_via_simplices (Kwsc.Lc_kw.build ~k:2 objs3) [] [| 1; 2 |]);
    raises_invalid "srp: center dim mismatch" (fun () ->
        Kwsc.Srp_kw.query srp (Sphere.make [| 0.0 |] 1.0) [| 1; 2 |]);
    raises_invalid "srp: negative squared radius" (fun () ->
        Kwsc.Srp_kw.query_ball_sq srp [| 0.0; 0.0 |] (-1.0) [| 1; 2 |]);
    raises_invalid "sphere: negative radius" (fun () -> Sphere.make [| 0.0 |] (-1.0));
    raises_invalid "nn: t=0" (fun () -> Kwsc.Linf_nn_kw.query nn [| 0.0; 0.0 |] ~t':0 [| 1; 2 |]);
    raises_invalid "nn: point dim mismatch" (fun () ->
        Kwsc.Linf_nn_kw.query nn [| 0.0 |] ~t':1 [| 1; 2 |]);
    raises_invalid "dimred: query dim mismatch" (fun () ->
        Kwsc.Dimred.query dimred (Rect.full 2) [| 1; 2 |]);
    raises_invalid "dynamic: d=0" (fun () -> Kwsc.Dynamic.create ~k:2 ~d:0 ());
    raises_invalid "dynamic: k=1" (fun () -> Kwsc.Dynamic.create ~k:1 ~d:2 ());
    raises_invalid "dynamic: insert dim mismatch" (fun () ->
        let t = Kwsc.Dynamic.create ~k:2 ~d:2 () in
        Kwsc.Dynamic.insert t ([| 1.0 |], Doc.of_list [ 1 ]));
    raises_invalid "dynamic: query dim mismatch" (fun () ->
        let t = Kwsc.Dynamic.create ~k:2 ~d:2 () in
        Kwsc.Dynamic.query t (Rect.full 1) [| 1; 2 |]);
    raises_invalid "rr: unbounded data rect" (fun () ->
        Kwsc.Rr_kw.build ~k:2 [| (Rect.full 1, Doc.of_list [ 1 ]) |]);
    raises_invalid "ksi instance: one set" (fun () ->
        Kwsc_invindex.Ksi_instance.create [| [| 1 |] |]);
    raises_invalid "ksi instance: bad id" (fun () ->
        Kwsc_invindex.Ksi_instance.set (Kwsc_invindex.Ksi_instance.create [| [| 1 |]; [| 2 |] |]) 3);
    raises_invalid "inverted: no keywords" (fun () ->
        Kwsc_invindex.Inverted.query (Kwsc_invindex.Inverted.build [| Doc.of_list [ 1 ] |]) [||]);
    raises_invalid "zipf: n=0" (fun () -> Kwsc_util.Zipf.create ~n:0 ~theta:1.0);
    raises_invalid "zipf: negative theta" (fun () -> Kwsc_util.Zipf.create ~n:5 ~theta:(-0.1));
    raises_invalid "gen docs: bad lengths" (fun () ->
        Kwsc_workload.Gen.docs ~rng:(Kwsc_util.Prng.create 1) ~n:5 ~vocab:5 ~theta:1.0 ~len_min:3
          ~len_max:2);
    raises_invalid "gen clustered: zero clusters" (fun () ->
        Kwsc_workload.Gen.points_clustered ~rng:(Kwsc_util.Prng.create 1) ~n:5 ~d:2 ~clusters:0
          ~spread:1.0 ~range:10.0);
    raises_invalid "stats: empty mean" (fun () -> Kwsc_util.Stats.mean [||]);
    raises_invalid "stats: one-point fit" (fun () ->
        Kwsc_util.Stats.linear_fit [| (1.0, 1.0) |]);
    raises_invalid "stats: non-positive exponent point" (fun () ->
        Kwsc_util.Stats.fit_exponent [| (0.0, 1.0); (2.0, 2.0) |]);
    raises_invalid "sorted: kth out of range" (fun () ->
        Kwsc_util.Sorted.kth_abs_diff [| ([| 1.0 |], 0.0) |] 2);
    raises_invalid "timer: zero repeats" (fun () ->
        Kwsc_util.Timer.time_median ~repeats:0 (fun () -> ()));
    raises_invalid "rank space: empty" (fun () -> Rank_space.create [||]);
    raises_invalid "polytope: dim 0" (fun () -> Polytope.make ~dim:0 []);
    raises_invalid "seidel: objective mismatch" (fun () ->
        Seidel_lp.minimize ~rng:(Kwsc_util.Prng.create 1) ~dim:2 [] [| 1.0 |]);
    raises_invalid "kd: leaf size 0" (fun () ->
        Kwsc_kdtree.Kd.build ~leaf_size:0 [| ([| 1.0 |], 0) |]);
    raises_invalid "ptree: empty" (fun () -> Kwsc_ptree.Ptree.build ([||] : (Point.t * int) array));
  ]
