open Kwsc_geom
module Baseline = Kwsc.Baseline
module Prng = Kwsc_util.Prng

let objs = Helpers.dataset ~seed:131 ~n:300 ~d:2 ()
let b = Baseline.build objs

let test_rect_agree () =
  let rng = Prng.create 801 in
  for _ = 1 to 80 do
    let q = Helpers.random_rect rng ~d:2 ~range:1000.0 in
    let ws = Helpers.random_keywords rng ~vocab:40 ~k:2 in
    let expected = Helpers.oracle_rect objs q ws in
    let s, _ = Baseline.rect_structured b q ws in
    let k, _ = Baseline.rect_keywords b q ws in
    Helpers.check_ids "structured = oracle" expected s;
    Helpers.check_ids "keywords = oracle" expected k
  done

let test_poly_agree () =
  let rng = Prng.create 802 in
  for _ = 1 to 40 do
    let h =
      Halfspace.make [| Prng.float rng 2.0 -. 1.0; Prng.float rng 2.0 -. 1.0 |] (Prng.float rng 800.0)
    in
    let q = Polytope.make ~dim:2 [ h ] in
    let ws = Helpers.random_keywords rng ~vocab:40 ~k:2 in
    let expected = Helpers.oracle objs (Halfspace.satisfies h) ws in
    let s, _ = Baseline.poly_structured b q ws in
    let k, _ = Baseline.poly_keywords b q ws in
    Helpers.check_ids "poly structured" expected s;
    Helpers.check_ids "poly keywords" expected k
  done

let test_sphere_agree () =
  let rng = Prng.create 803 in
  for _ = 1 to 40 do
    let s = Sphere.make [| Prng.float rng 1000.0; Prng.float rng 1000.0 |] (Prng.float rng 400.0) in
    let ws = Helpers.random_keywords rng ~vocab:40 ~k:2 in
    let expected = Helpers.oracle objs (Sphere.contains s) ws in
    let s1, _ = Baseline.sphere_structured b s ws in
    let s2, _ = Baseline.sphere_keywords b s ws in
    Helpers.check_ids "sphere structured" expected s1;
    Helpers.check_ids "sphere keywords" expected s2
  done

let test_nn_agree () =
  let rng = Prng.create 804 in
  List.iter
    (fun metric ->
      for _ = 1 to 30 do
        let q = [| Prng.float rng 1000.0; Prng.float rng 1000.0 |] in
        let t' = 1 + Prng.int rng 8 in
        let ws = Helpers.random_keywords rng ~vocab:40 ~k:2 in
        let expected = Helpers.oracle_nn objs metric q t' ws in
        let s, _ = Baseline.nn_structured b ~metric q ~t' ws in
        let k, _ = Baseline.nn_keywords b ~metric q ~t' ws in
        Alcotest.(check int) "nn structured count" (Array.length expected) (Array.length s);
        Alcotest.(check int) "nn keywords count" (Array.length expected) (Array.length k);
        Array.iteri
          (fun i (_, d) ->
            Alcotest.(check (float 1e-9)) "structured dist" (snd expected.(i)) d;
            Alcotest.(check (float 1e-9)) "keywords dist" (snd expected.(i)) (snd k.(i)))
          s
      done)
    [ `Linf; `L2 ]

let test_poison_workload_costs () =
  (* the Section-1 motivation: both baselines scan Theta(n), answer empty *)
  let rng = Prng.create 805 in
  let pobjs, q = Kwsc_workload.Gen.poison ~rng ~n:400 ~d:2 ~range:1000.0 ~kws:[| 1; 2 |] in
  let pb = Baseline.build pobjs in
  let rs, examined_s = Baseline.rect_structured pb q [| 1; 2 |] in
  let rk, examined_k = Baseline.rect_keywords pb q [| 1; 2 |] in
  Helpers.check_ids "poison: empty result (structured)" [||] rs;
  Helpers.check_ids "poison: empty result (keywords)" [||] rk;
  Alcotest.(check bool) "structured scans ~n/2" true (examined_s >= 150);
  Alcotest.(check bool) "keywords scans ~n/2" true (examined_k >= 150);
  (* the transformed index answers the same query with sublinear work *)
  let orp = Kwsc.Orp_kw.build ~k:2 pobjs in
  let ids, st = Kwsc.Orp_kw.query_stats orp q [| 1; 2 |] in
  Helpers.check_ids "poison: empty result (orp)" [||] ids;
  Alcotest.(check bool)
    (Printf.sprintf "orp work %d << baselines %d/%d" (Kwsc.Stats.work st) examined_s examined_k)
    true
    (Kwsc.Stats.work st < examined_s / 2)

let test_scan_oracle_consistency () =
  let rng = Prng.create 806 in
  for _ = 1 to 40 do
    let q = Helpers.random_rect rng ~d:2 ~range:1000.0 in
    let ws = Helpers.random_keywords rng ~vocab:40 ~k:2 in
    Helpers.check_ids "scan = oracle" (Helpers.oracle_rect objs q ws) (Baseline.scan b q ws)
  done

let suite =
  [
    Alcotest.test_case "rect baselines agree" `Quick test_rect_agree;
    Alcotest.test_case "polytope baselines agree" `Quick test_poly_agree;
    Alcotest.test_case "sphere baselines agree" `Quick test_sphere_agree;
    Alcotest.test_case "nn baselines agree" `Quick test_nn_agree;
    Alcotest.test_case "poison workload costs" `Quick test_poison_workload_costs;
    Alcotest.test_case "scan oracle" `Quick test_scan_oracle_consistency;
  ]
