(* Deeper geometry properties: LP against a vertex-enumeration oracle,
   simplex membership against sign tests, classification soundness. *)

open Kwsc_geom
module Prng = Kwsc_util.Prng

let rng = Prng.create 2718

(* 2-D LP oracle: enumerate all pairwise line intersections clipped to a
   box; the LP optimum over a non-empty bounded region is attained at one
   of them. *)
let lp_oracle_max cs obj box =
  let hs = cs @ Halfspace.of_rect (Rect.make [| -.box; -.box |] [| box; box |]) in
  let arr = Array.of_list hs in
  let best = ref neg_infinity in
  let n = Array.length arr in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      match
        Linalg.solve
          [| arr.(i).Halfspace.coeffs; arr.(j).Halfspace.coeffs |]
          [| arr.(i).Halfspace.bound; arr.(j).Halfspace.bound |]
      with
      | None -> ()
      | Some p ->
          if
            List.for_all
              (fun h -> Halfspace.eval h p <= 1e-7 *. (1.0 +. abs_float h.Halfspace.bound))
              hs
          then best := Float.max !best (Linalg.dot obj p)
    done
  done;
  !best

let test_lp_vs_vertex_oracle () =
  for trial = 1 to 150 do
    ignore trial;
    let cs =
      List.init
        (1 + Prng.int rng 5)
        (fun _ ->
          Halfspace.make
            [| Prng.float rng 2.0 -. 1.0; Prng.float rng 2.0 -. 1.0 |]
            (Prng.float rng 20.0 -. 5.0))
    in
    let obj = [| Prng.float rng 2.0 -. 1.0; Prng.float rng 2.0 -. 1.0 |] in
    let oracle = lp_oracle_max cs obj 100.0 in
    match Seidel_lp.max_value ~box:100.0 ~rng ~dim:2 cs obj with
    | None -> Alcotest.(check bool) "both infeasible" true (oracle = neg_infinity)
    | Some v ->
        if oracle > neg_infinity then
          Alcotest.(check bool)
            (Printf.sprintf "lp %.6f ~ oracle %.6f" v oracle)
            true
            (abs_float (v -. oracle) <= 1e-4 *. (1.0 +. abs_float oracle))
  done

(* Simplex membership agrees with the determinant sign test in 2D. *)
let sign_test tri p =
  let v = Simplex.vertices tri in
  let cross a b c =
    ((b.(0) -. a.(0)) *. (c.(1) -. a.(1))) -. ((b.(1) -. a.(1)) *. (c.(0) -. a.(0)))
  in
  let d0 = cross v.(0) v.(1) p and d1 = cross v.(1) v.(2) p and d2 = cross v.(2) v.(0) p in
  let tol = 1e-9 in
  (d0 >= -.tol && d1 >= -.tol && d2 >= -.tol) || (d0 <= tol && d1 <= tol && d2 <= tol)

let qcheck_simplex_sign =
  QCheck.Test.make ~name:"simplex membership = determinant sign test" ~count:300
    QCheck.(small_int)
    (fun seed ->
      let r = Prng.create seed in
      let v () = [| Prng.float r 20.0; Prng.float r 20.0 |] in
      match Simplex.of_vertices [| v (); v (); v () |] with
      | exception Invalid_argument _ -> true
      | tri ->
          let p = [| Prng.float r 25.0 -. 2.5; Prng.float r 25.0 -. 2.5 |] in
          (* skip points within tolerance of an edge where the two tests may
             legitimately differ by rounding *)
          let v = Simplex.vertices tri in
          let near_edge =
            let seg a b =
              let ux = b.(0) -. a.(0) and uy = b.(1) -. a.(1) in
              let len = sqrt ((ux *. ux) +. (uy *. uy)) in
              abs_float (((p.(0) -. a.(0)) *. uy) -. ((p.(1) -. a.(1)) *. ux)) /. Float.max 1e-9 len
              < 1e-5
            in
            seg v.(0) v.(1) || seg v.(1) v.(2) || seg v.(2) v.(0)
          in
          near_edge || Simplex.contains tri p = sign_test tri p)

(* Polytope classification is sound: Disjoint cells contain no point of the
   query; Covered cells contain only points of the query. *)
let qcheck_classify_sound =
  QCheck.Test.make ~name:"polytope classification soundness" ~count:200
    QCheck.(small_int)
    (fun seed ->
      let r = Prng.create seed in
      let rect () =
        let a = [| Prng.float r 10.0; Prng.float r 10.0 |] in
        let b = [| a.(0) +. Prng.float r 5.0; a.(1) +. Prng.float r 5.0 |] in
        Rect.make a b
      in
      let cell_r = rect () and q_r = rect () in
      let cell = Polytope.of_rect cell_r and q = Polytope.of_rect q_r in
      let samples =
        Array.init 50 (fun _ ->
            [|
              cell_r.Rect.lo.(0) +. Prng.float r (cell_r.Rect.hi.(0) -. cell_r.Rect.lo.(0) +. 1e-12);
              cell_r.Rect.lo.(1) +. Prng.float r (cell_r.Rect.hi.(1) -. cell_r.Rect.lo.(1) +. 1e-12);
            |])
      in
      match Polytope.classify ~rng:r cell q with
      | Polytope.Disjoint -> Array.for_all (fun p -> not (Rect.contains_point q_r p)) samples
      | Polytope.Covered -> Array.for_all (fun p -> Rect.contains_point q_r p) samples
      | Polytope.Crossing -> true)

(* Rect <-> halfspace conversion round-trips membership. *)
let qcheck_rect_halfspaces =
  QCheck.Test.make ~name:"rect = conjunction of its halfspaces" ~count:300
    QCheck.(small_int)
    (fun seed ->
      let r = Prng.create seed in
      let a = [| Prng.float r 10.0; Prng.float r 10.0; Prng.float r 10.0 |] in
      let b = Array.map (fun x -> x +. Prng.float r 5.0) a in
      let rect = Rect.make a b in
      let hs = Halfspace.of_rect rect in
      let p = Array.init 3 (fun _ -> Prng.float r 20.0 -. 2.0) in
      Rect.contains_point rect p = List.for_all (fun h -> Halfspace.satisfies h p) hs)

(* Lifting is exact also for points ON the sphere boundary with integral
   data. *)
let test_lift_boundary_exact () =
  for x = 0 to 20 do
    for y = 0 to 20 do
      let p = [| float_of_int x; float_of_int y |] in
      let c = [| 10.0; 10.0 |] in
      let r2 = Point.l2_dist_sq c p in
      (* halfspace for exactly this squared radius: p must be inside *)
      let coeffs = [| -2.0 *. c.(0); -2.0 *. c.(1); 1.0 |] in
      let h = Halfspace.make coeffs (r2 -. Linalg.dot c c) in
      Alcotest.(check bool) "boundary point inside" true (Halfspace.satisfies h (Lift.point p));
      (* and outside for one less *)
      if r2 > 0.0 then begin
        let h' = Halfspace.make coeffs (r2 -. 1.0 -. Linalg.dot c c) in
        Alcotest.(check bool) "outside smaller ball" false (Halfspace.satisfies h' (Lift.point p))
      end
    done
  done

let test_kd_nearest_duplicates () =
  let pts = Array.init 40 (fun i -> ([| float_of_int (i mod 2); 0.0 |], i)) in
  let t = Kwsc_kdtree.Kd.build pts in
  let res = Kwsc_kdtree.Kd.nearest t ~metric:`L2 [| 0.0; 0.0 |] 25 in
  Alcotest.(check int) "k respected with ties" 25 (List.length res);
  let zeros = List.filter (fun (d, _, _) -> d = 0.0) res in
  Alcotest.(check int) "all 20 duplicates at distance 0 first" 20 (List.length zeros)

let suite =
  [
    Alcotest.test_case "LP vs vertex-enumeration oracle" `Quick test_lp_vs_vertex_oracle;
    QCheck_alcotest.to_alcotest qcheck_simplex_sign;
    QCheck_alcotest.to_alcotest qcheck_classify_sound;
    QCheck_alcotest.to_alcotest qcheck_rect_halfspaces;
    Alcotest.test_case "lifting exact on boundary" `Quick test_lift_boundary_exact;
    Alcotest.test_case "kd nearest with duplicates" `Quick test_kd_nearest_duplicates;
  ]
