(* Coverage for configurations not hit elsewhere: 3-D simplices, higher
   arities across index families, structural invariants on the lifted
   (SRP) tree, and pure-geometry accounting. *)

open Kwsc_geom
module Prng = Kwsc_util.Prng

let test_sp_tetrahedra () =
  let objs = Helpers.dataset ~seed:221 ~n:200 ~d:3 () in
  let t = Kwsc.Sp_kw.build ~k:2 objs in
  let rng = Prng.create 222 in
  let tried = ref 0 in
  while !tried < 25 do
    let v () = Array.init 3 (fun _ -> Prng.float rng 1400.0 -. 200.0) in
    match Simplex.of_vertices [| v (); v (); v (); v () |] with
    | exception Invalid_argument _ -> ()
    | s ->
        incr tried;
        let ws = Helpers.random_keywords rng ~vocab:40 ~k:2 in
        Helpers.check_ids "tetrahedron query"
          (Helpers.oracle objs (Simplex.contains s) ws)
          (Kwsc.Sp_kw.query_simplex t s ws)
  done

let test_lc_k4 () =
  let rng = Prng.create 223 in
  let objs =
    Array.init 250 (fun _ ->
        ( [| Prng.float rng 100.0; Prng.float rng 100.0 |],
          Kwsc_invindex.Doc.of_list (List.init (3 + Prng.int rng 5) (fun _ -> 1 + Prng.int rng 9)) ))
  in
  let t = Kwsc.Lc_kw.build ~k:4 objs in
  for _ = 1 to 40 do
    let h =
      Halfspace.make [| Prng.float rng 2.0 -. 1.0; Prng.float rng 2.0 -. 1.0 |] (Prng.float rng 120.0)
    in
    let ws = Helpers.random_keywords rng ~vocab:9 ~k:4 in
    Helpers.check_ids "lc k=4" (Helpers.oracle objs (Halfspace.satisfies h) ws) (Kwsc.Lc_kw.query t [ h ] ws)
  done

let test_srp_lifted_invariants () =
  (* the lifted SP tree must keep the Transform invariants in d+1 *)
  let objs = Helpers.dataset ~seed:224 ~n:300 ~d:2 () in
  let t = Kwsc.Srp_kw.build ~k:2 objs in
  let sp_stats = Kwsc.Srp_kw.space_stats t in
  Alcotest.(check bool) "pivots stay small" true (sp_stats.Kwsc.Stats.max_pivot <= 8);
  Alcotest.(check bool) "space linear-ish" true
    (sp_stats.Kwsc.Stats.total_words < 12 * Kwsc.Srp_kw.input_size t)

let test_flex_max_k4 () =
  let rng = Prng.create 225 in
  let objs =
    Array.init 150 (fun _ ->
        ( [| Prng.float rng 100.0; Prng.float rng 100.0 |],
          Kwsc_invindex.Doc.of_list (List.init (1 + Prng.int rng 4) (fun _ -> 1 + Prng.int rng 12)) ))
  in
  let t = Kwsc.Flex.build ~max_k:4 objs in
  for _ = 1 to 60 do
    let q = Helpers.random_rect rng ~d:2 ~range:100.0 in
    let j = 1 + Prng.int rng 4 in
    let ws = Helpers.random_keywords rng ~vocab:12 ~k:j in
    Helpers.check_ids
      (Printf.sprintf "flex max_k=4 arity %d" j)
      (Helpers.oracle objs (Rect.contains_point q) ws)
      (Kwsc.Flex.query t q ws)
  done

let test_dimred_k4 () =
  let rng = Prng.create 226 in
  let objs =
    Array.init 200 (fun _ ->
        ( Array.init 3 (fun _ -> Prng.float rng 100.0),
          Kwsc_invindex.Doc.of_list (List.init (3 + Prng.int rng 4) (fun _ -> 1 + Prng.int rng 8)) ))
  in
  let t = Kwsc.Dimred.build ~k:4 objs in
  for _ = 1 to 40 do
    let q = Helpers.random_rect rng ~d:3 ~range:100.0 in
    let ws = Helpers.random_keywords rng ~vocab:8 ~k:4 in
    Helpers.check_ids "dimred k=4" (Helpers.oracle_rect objs q ws) (Kwsc.Dimred.query t q ws)
  done

let test_kd_range_stats_consistency () =
  let rng = Prng.create 227 in
  let pts = Array.init 500 (fun i -> ([| Prng.float rng 100.0; Prng.float rng 100.0 |], i)) in
  let t = Kwsc_kdtree.Kd.build pts in
  for _ = 1 to 60 do
    let q = Helpers.random_rect rng ~d:2 ~range:100.0 in
    let st = Kwsc_kdtree.Kd.range_stats t q in
    Alcotest.(check int) "covered + crossing = nodes" st.Kwsc_kdtree.Kd.nodes
      (st.Kwsc_kdtree.Kd.covered + st.Kwsc_kdtree.Kd.crossing);
    Alcotest.(check bool) "leaves <= nodes" true
      (st.Kwsc_kdtree.Kd.leaves_scanned <= st.Kwsc_kdtree.Kd.nodes)
  done

let test_ptree_stats_consistency () =
  let rng = Prng.create 228 in
  let pts = Array.init 300 (fun i -> ([| Prng.float rng 100.0; Prng.float rng 100.0 |], i)) in
  let t = Kwsc_ptree.Ptree.build pts in
  for _ = 1 to 20 do
    let h =
      Halfspace.make [| Prng.float rng 2.0 -. 1.0; Prng.float rng 2.0 -. 1.0 |] (Prng.float rng 100.0)
    in
    let st = Kwsc_ptree.Ptree.stats_polytope t (Polytope.make ~dim:2 [ h ]) in
    Alcotest.(check int) "visited = covered + crossing" st.Kwsc_ptree.Ptree.visited
      (st.Kwsc_ptree.Ptree.covered + st.Kwsc_ptree.Ptree.crossing)
  done

let test_inverted_single_keyword () =
  let docs =
    [| Kwsc_invindex.Doc.of_list [ 3 ]; Kwsc_invindex.Doc.of_list [ 3; 5 ]; Kwsc_invindex.Doc.of_list [ 5 ] |]
  in
  let inv = Kwsc_invindex.Inverted.build docs in
  Alcotest.(check (array int)) "k=1 query" [| 0; 1 |] (Kwsc_invindex.Inverted.query inv [| 3 |])

let test_hotels_pad_roundtrip () =
  (* the introduction's 3-keyword query answered at arity 2 via Flex *)
  let rng = Prng.create 229 in
  let hotels = Kwsc_workload.Hotels.generate ~rng ~n:400 in
  let objs = Kwsc_workload.Hotels.to_objects hotels in
  let flex = Kwsc.Flex.build ~max_k:3 objs in
  let pool = Kwsc_workload.Hotels.tag_id "pool" and wifi = Kwsc_workload.Hotels.tag_id "wifi" in
  let q = Rect.make [| 50.0; 0.0 |] [| 600.0; 10.0 |] in
  let expected = Helpers.oracle objs (Rect.contains_point q) [| pool; wifi |] in
  Helpers.check_ids "hotel arity-2 on k=3 index" expected (Kwsc.Flex.query flex q [| pool; wifi |])

let test_poisoned_dynamic () =
  (* delete all keyword-bearing objects: the standing query must go empty *)
  let rng = Prng.create 230 in
  let objs, q, kws = (fun () ->
      let kws = [| 1; 2 |] in
      let objs, q = Kwsc_workload.Gen.poison ~rng ~n:300 ~d:2 ~range:100.0 ~kws in
      (objs, q, kws)) ()
  in
  let t = Kwsc.Dynamic.create ~k:2 ~d:2 () in
  let ids = Array.map (fun o -> Kwsc.Dynamic.insert t o) objs in
  (* move half the keyword objects inside the rectangle *)
  Array.iteri
    (fun i (p, doc) ->
      ignore p;
      if Kwsc_invindex.Doc.mem_all doc kws && i mod 4 = 0 then begin
        Kwsc.Dynamic.delete t ids.(i);
        ignore (Kwsc.Dynamic.insert t ([| 10.0; 10.0 |], doc))
      end)
    objs;
  let res = Kwsc.Dynamic.query t q kws in
  Alcotest.(check bool) "moved objects now match" true (Array.length res > 0);
  Array.iter (fun id -> Kwsc.Dynamic.delete t id) (Kwsc.Dynamic.query t (Rect.full 2) kws);
  Helpers.check_ids "after deleting all matches" [||] (Kwsc.Dynamic.query t q kws)

let suite =
  [
    Alcotest.test_case "sp-kw tetrahedra (3d)" `Quick test_sp_tetrahedra;
    Alcotest.test_case "lc-kw k=4" `Quick test_lc_k4;
    Alcotest.test_case "srp lifted-tree invariants" `Quick test_srp_lifted_invariants;
    Alcotest.test_case "flex max_k=4" `Quick test_flex_max_k4;
    Alcotest.test_case "dimred k=4" `Quick test_dimred_k4;
    Alcotest.test_case "kd range-stats consistency" `Quick test_kd_range_stats_consistency;
    Alcotest.test_case "ptree stats consistency" `Quick test_ptree_stats_consistency;
    Alcotest.test_case "inverted single keyword" `Quick test_inverted_single_keyword;
    Alcotest.test_case "hotels via flex" `Quick test_hotels_pad_roundtrip;
    Alcotest.test_case "dynamic poison scenario" `Quick test_poisoned_dynamic;
  ]
