module Ksi = Kwsc.Ksi
module Ksi_instance = Kwsc_invindex.Ksi_instance
module Doc = Kwsc_invindex.Doc
module Prng = Kwsc_util.Prng

let test_of_docs_vs_inverted () =
  let rng = Prng.create 201 in
  let docs =
    Array.init 300 (fun _ ->
        Doc.of_list (List.init (1 + Prng.int rng 6) (fun _ -> 1 + Prng.int rng 25)))
  in
  let t = Ksi.of_docs ~k:2 docs in
  let inv = Kwsc_invindex.Inverted.build docs in
  for _ = 1 to 200 do
    let ws = Helpers.random_keywords rng ~vocab:25 ~k:2 in
    Helpers.check_ids "ksi = inverted" (Kwsc_invindex.Inverted.query_naive inv ws) (Ksi.query t ws)
  done

let test_k3 () =
  let rng = Prng.create 202 in
  let docs =
    Array.init 200 (fun _ ->
        Doc.of_list (List.init (2 + Prng.int rng 6) (fun _ -> 1 + Prng.int rng 12)))
  in
  let t = Ksi.of_docs ~k:3 docs in
  let inv = Kwsc_invindex.Inverted.build docs in
  for _ = 1 to 150 do
    let ws = Helpers.random_keywords rng ~vocab:12 ~k:3 in
    Helpers.check_ids "ksi k=3" (Kwsc_invindex.Inverted.query_naive inv ws) (Ksi.query t ws)
  done

let test_of_instance () =
  let inst = Ksi_instance.create [| [| 1; 2; 3 |]; [| 2; 3; 4 |]; [| 3; 4; 5 |] |] in
  let t, elements = Ksi.of_instance ~k:2 inst in
  let got = Array.map (fun id -> elements.(id)) (Ksi.query t [| 1; 3 |]) in
  Array.sort compare got;
  Alcotest.(check (array int)) "instance query" [| 3 |] got

let test_emptiness () =
  let inst = Ksi_instance.create [| [| 1; 2 |]; [| 3; 4 |]; [| 2; 3 |] |] in
  let t, _ = Ksi.of_instance ~k:2 inst in
  Alcotest.(check bool) "disjoint pair" true (Ksi.emptiness t [| 1; 2 |]);
  Alcotest.(check bool) "overlapping pair" false (Ksi.emptiness t [| 1; 3 |])

let test_adversarial_disjoint () =
  let rng = Prng.create 203 in
  let sets = Kwsc_workload.Gen.ksi_disjoint_heavy ~rng ~m:8 ~set_size:100 in
  let inst = Ksi_instance.create sets in
  let t, _ = Ksi.of_instance ~k:2 inst in
  for a = 1 to 8 do
    for b = a + 1 to 8 do
      Alcotest.(check bool) "all pairs empty" true (Ksi.emptiness t [| a; b |])
    done
  done;
  (* the emptiness probe must be cheap: far below N = 800 object scans *)
  let _, st = Ksi.query_stats ~limit:1 t [| 1; 2 |] in
  Alcotest.(check bool)
    (Printf.sprintf "emptiness work %d sublinear" (Kwsc.Stats.work st))
    true
    (Kwsc.Stats.work st < 400)

let test_sublinear_vs_out () =
  (* when OUT is small, examined objects should be far below N *)
  let rng = Prng.create 204 in
  let docs =
    Array.init 2000 (fun i ->
        (* keywords 1 and 2 each appear in ~half the docs but intersect rarely *)
        let base = if i mod 2 = 0 then [ 1 ] else [ 2 ] in
        let base = if i mod 997 = 0 then [ 1; 2 ] else base in
        Doc.of_list (base @ [ 100 + Prng.int rng 50 ]))
  in
  let t = Ksi.of_docs ~k:2 docs in
  let ids, st = Ksi.query_stats t [| 1; 2 |] in
  Alcotest.(check int) "small OUT" 3 (Array.length ids);
  let n = Ksi.input_size t in
  Alcotest.(check bool)
    (Printf.sprintf "work %d << N=%d" (Kwsc.Stats.work st) n)
    true
    (Kwsc.Stats.work st < n / 2)

let qcheck_ksi =
  QCheck.Test.make ~name:"Ksi equals naive intersection" ~count:80
    QCheck.(small_int)
    (fun seed ->
      let rng = Prng.create seed in
      let m = 2 + Prng.int rng 5 in
      let sets =
        Array.init m (fun _ -> Array.init (1 + Prng.int rng 20) (fun _ -> Prng.int rng 40))
      in
      let inst = Ksi_instance.create sets in
      let t, elements = Ksi.of_instance ~k:2 inst in
      let a = 1 + Prng.int rng m in
      let b = 1 + ((a + Prng.int rng (m - 1)) mod m) in
      if a = b then true
      else begin
        let got = Array.map (fun id -> elements.(id)) (Ksi.query t [| a; b |]) in
        Array.sort compare got;
        got = Ksi_instance.reporting inst [| a; b |]
      end)

let suite =
  [
    Alcotest.test_case "of_docs vs inverted" `Quick test_of_docs_vs_inverted;
    Alcotest.test_case "k=3" `Quick test_k3;
    Alcotest.test_case "of_instance" `Quick test_of_instance;
    Alcotest.test_case "emptiness" `Quick test_emptiness;
    Alcotest.test_case "adversarial disjoint sets" `Quick test_adversarial_disjoint;
    Alcotest.test_case "sublinear work at small OUT" `Quick test_sublinear_vs_out;
    QCheck_alcotest.to_alcotest qcheck_ksi;
  ]
