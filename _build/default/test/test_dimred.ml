module Dimred = Kwsc.Dimred
module Prng = Kwsc_util.Prng

let test_matches_oracle_3d () =
  let objs = Helpers.dataset ~seed:121 ~n:300 ~d:3 () in
  let t = Dimred.build ~k:2 objs in
  let rng = Prng.create 701 in
  for _ = 1 to 80 do
    let q = Helpers.random_rect rng ~d:3 ~range:1000.0 in
    let ws = Helpers.random_keywords rng ~vocab:40 ~k:2 in
    Helpers.check_ids "dimred 3d = oracle" (Helpers.oracle_rect objs q ws) (Dimred.query t q ws)
  done

let test_matches_oracle_4d () =
  let objs = Helpers.dataset ~seed:122 ~n:200 ~d:4 () in
  let t = Dimred.build ~k:2 objs in
  let rng = Prng.create 702 in
  for _ = 1 to 50 do
    let q = Helpers.random_rect rng ~d:4 ~range:1000.0 in
    let ws = Helpers.random_keywords rng ~vocab:40 ~k:2 in
    Helpers.check_ids "dimred 4d = oracle" (Helpers.oracle_rect objs q ws) (Dimred.query t q ws)
  done

let test_matches_orp_2d () =
  (* for d <= 2 the structure degenerates to the Theorem-1 index *)
  let objs = Helpers.dataset ~seed:123 ~n:250 ~d:2 () in
  let dr = Dimred.build ~k:2 objs in
  let orp = Kwsc.Orp_kw.build ~k:2 objs in
  let rng = Prng.create 703 in
  for _ = 1 to 60 do
    let q = Helpers.random_rect rng ~d:2 ~range:1000.0 in
    let ws = Helpers.random_keywords rng ~vocab:40 ~k:2 in
    Helpers.check_ids "dimred(d=2) = orp" (Kwsc.Orp_kw.query orp q ws) (Dimred.query dr q ws)
  done

let test_k3 () =
  let objs = Helpers.dataset ~seed:124 ~n:250 ~d:3 ~len_min:2 ~len_max:7 () in
  let t = Dimred.build ~k:3 objs in
  let rng = Prng.create 704 in
  for _ = 1 to 40 do
    let q = Helpers.random_rect rng ~d:3 ~range:1000.0 in
    let ws = Helpers.random_keywords rng ~vocab:40 ~k:3 in
    Helpers.check_ids "dimred k=3" (Helpers.oracle_rect objs q ws) (Dimred.query t q ws)
  done

let test_duplicate_x_coordinates () =
  let rng = Prng.create 705 in
  let objs =
    Array.init 200 (fun _ ->
        ( [| float_of_int (Prng.int rng 5); Prng.float rng 100.0; Prng.float rng 100.0 |],
          Kwsc_invindex.Doc.of_list (List.init (1 + Prng.int rng 3) (fun _ -> 1 + Prng.int rng 10)) ))
  in
  let t = Dimred.build ~k:2 objs in
  for _ = 1 to 60 do
    let q = Helpers.random_rect rng ~d:3 ~range:100.0 in
    let ws = Helpers.random_keywords rng ~vocab:10 ~k:2 in
    Helpers.check_ids "x-ties = oracle" (Helpers.oracle_rect objs q ws) (Dimred.query t q ws)
  done

(* Proposition 1: the cut tree has O(log log N) levels. *)
let test_depth_loglog () =
  let objs = Helpers.dataset ~seed:125 ~n:2000 ~d:3 () in
  let t = Dimred.build ~k:2 objs in
  let max_level = ref 0 in
  Dimred.cut_stats t (fun ~level ~fanout:_ ~weight:_ ~children:_ ~pivots:_ ->
      max_level := max !max_level level);
  (* N ~ 7000; log2(log2 N) ~ 3.7; allow constant slack *)
  Alcotest.(check bool) (Printf.sprintf "depth %d = O(loglog N)" !max_level) true (!max_level <= 8)

(* Proposition 2 analogue: child weight <= parent weight / fanout. *)
let test_weight_decay () =
  let objs = Helpers.dataset ~seed:126 ~n:800 ~d:3 () in
  let t = Dimred.build ~k:2 objs in
  let by_level : (int, int) Hashtbl.t = Hashtbl.create 8 in
  Dimred.cut_stats t (fun ~level ~fanout:_ ~weight ~children:_ ~pivots:_ ->
      let cur = Option.value ~default:0 (Hashtbl.find_opt by_level level) in
      Hashtbl.replace by_level level (max cur weight));
  let w0 = Option.value ~default:0 (Hashtbl.find_opt by_level 0) in
  (match Hashtbl.find_opt by_level 1 with
  | Some w1 ->
      Alcotest.(check bool)
        (Printf.sprintf "level-1 weight %d <= level-0 %d / 4" w1 w0)
        true
        (w1 <= w0 / 4)
  | None -> ());
  match Hashtbl.find_opt by_level 2 with
  | Some w2 ->
      Alcotest.(check bool) "level-2 weight collapses" true (w2 <= w0 / 16)
  | None -> ()

(* Figure 2: each query touches at most two type-2 nodes per level of each
   cut tree it descends. The top-level tree is measured directly. *)
let test_type2_per_level () =
  let objs = Helpers.dataset ~seed:127 ~n:1000 ~d:3 () in
  let t = Dimred.build ~k:2 objs in
  let rng = Prng.create 706 in
  for _ = 1 to 60 do
    let q = Helpers.random_rect rng ~d:3 ~range:1000.0 in
    let ws = Helpers.random_keywords rng ~vocab:40 ~k:2 in
    let _, profile = Dimred.query_profile t q ws in
    Array.iteri
      (fun level count ->
        Alcotest.(check bool)
          (Printf.sprintf "level %d has %d type-2 nodes" level count)
          true (count <= 2))
      profile.Dimred.type2_by_level
  done

let test_space_factor_reasonable () =
  let objs = Helpers.dataset ~seed:128 ~n:1000 ~d:3 () in
  let t3 = Dimred.build ~k:2 objs in
  let objs2 = Array.map (fun (p, doc) -> (Array.sub p 0 2, doc)) objs in
  let t2 = Dimred.build ~k:2 objs2 in
  let w3 = Dimred.space_words t3 and w2 = Dimred.space_words t2 in
  (* one extra dimension costs a loglog-ish factor, not a polynomial one *)
  Alcotest.(check bool)
    (Printf.sprintf "3d words %d within 12x of 2d words %d" w3 w2)
    true
    (w3 <= 12 * w2)

let test_limit () =
  let objs = Helpers.dataset ~seed:129 ~n:300 ~d:3 ~vocab:6 () in
  let t = Dimred.build ~k:2 objs in
  let rng = Prng.create 707 in
  for _ = 1 to 40 do
    let q = Helpers.random_rect rng ~d:3 ~range:1200.0 in
    let ws = Helpers.random_keywords rng ~vocab:6 ~k:2 in
    let full = Dimred.query t q ws in
    let l = 1 + Prng.int rng 5 in
    let capped = Dimred.query ~limit:l t q ws in
    Alcotest.(check int) "capped size"
      (min l (Array.length full))
      (Array.length capped);
    Array.iter
      (fun id -> Alcotest.(check bool) "capped subset" true (Array.mem id full))
      capped
  done

let qcheck_dimred =
  QCheck.Test.make ~name:"Dimred equals oracle (3d)" ~count:30
    QCheck.(small_int)
    (fun seed ->
      let objs = Helpers.dataset ~seed ~n:100 ~d:3 ~vocab:12 () in
      let t = Dimred.build ~k:2 objs in
      let rng = Prng.create (seed + 2222) in
      let q = Helpers.random_rect rng ~d:3 ~range:1000.0 in
      let ws = Helpers.random_keywords rng ~vocab:12 ~k:2 in
      Helpers.oracle_rect objs q ws = Dimred.query t q ws)

let suite =
  [
    Alcotest.test_case "matches oracle 3d" `Quick test_matches_oracle_3d;
    Alcotest.test_case "matches oracle 4d" `Quick test_matches_oracle_4d;
    Alcotest.test_case "d=2 equals ORP-KW" `Quick test_matches_orp_2d;
    Alcotest.test_case "k=3" `Quick test_k3;
    Alcotest.test_case "duplicate x coordinates" `Quick test_duplicate_x_coordinates;
    Alcotest.test_case "Prop 1: loglog depth" `Quick test_depth_loglog;
    Alcotest.test_case "Prop 2: weight decay" `Quick test_weight_decay;
    Alcotest.test_case "Fig 2: <=2 type-2 nodes per level" `Quick test_type2_per_level;
    Alcotest.test_case "space factor per dimension" `Quick test_space_factor_reasonable;
    Alcotest.test_case "output limit" `Quick test_limit;
    QCheck_alcotest.to_alcotest qcheck_dimred;
  ]
