(* Cross-index integration: every index family must agree with every other
   on queries they can all express, on shared data. *)

open Kwsc_geom
module Prng = Kwsc_util.Prng

let objs = Helpers.dataset ~seed:171 ~n:250 ~d:2 ()

let orp = Kwsc.Orp_kw.build ~k:2 objs
let dimred = Kwsc.Dimred.build ~k:2 objs
let lc = Kwsc.Lc_kw.build ~k:2 objs
let srp = Kwsc.Srp_kw.build ~k:2 objs
let base = Kwsc.Baseline.build objs

let test_rect_consensus () =
  let rng = Prng.create 172 in
  for _ = 1 to 60 do
    let q = Helpers.random_rect rng ~d:2 ~range:1000.0 in
    let ws = Helpers.random_keywords rng ~vocab:40 ~k:2 in
    let truth = Kwsc.Baseline.scan base q ws in
    Helpers.check_ids "orp" truth (Kwsc.Orp_kw.query orp q ws);
    Helpers.check_ids "dimred" truth (Kwsc.Dimred.query dimred q ws);
    Helpers.check_ids "lc(rect)" truth (Kwsc.Lc_kw.query_rect lc q ws)
  done

let test_ball_consensus () =
  let rng = Prng.create 173 in
  for _ = 1 to 60 do
    let c = [| Prng.float rng 1000.0; Prng.float rng 1000.0 |] in
    let r = Prng.float rng 300.0 in
    let ws = Helpers.random_keywords rng ~vocab:40 ~k:2 in
    (* the L2 ball through SRP-KW vs a scan with the exact predicate *)
    let truth = Kwsc.Baseline.scan_pred base (Sphere.contains (Sphere.make c r)) ws in
    Helpers.check_ids "srp" truth (Kwsc.Srp_kw.query srp (Sphere.make c r) ws)
  done

let test_emptiness_consensus () =
  let rng = Prng.create 174 in
  for _ = 1 to 60 do
    let q = Helpers.random_rect rng ~d:2 ~range:1500.0 in
    let ws = Helpers.random_keywords rng ~vocab:45 ~k:2 in
    let truth = Array.length (Kwsc.Baseline.scan base q ws) = 0 in
    Alcotest.(check bool) "orp emptiness" truth (Kwsc.Orp_kw.emptiness orp q ws);
    Alcotest.(check bool) "lc emptiness" truth
      (Kwsc.Lc_kw.emptiness lc (Halfspace.of_rect q) ws)
  done

let test_count_at_least () =
  let rng = Prng.create 175 in
  for _ = 1 to 60 do
    let q = Helpers.random_rect rng ~d:2 ~range:1000.0 in
    let ws = Helpers.random_keywords rng ~vocab:40 ~k:2 in
    let truth = Array.length (Kwsc.Baseline.scan base q ws) in
    let threshold = 1 + Prng.int rng 10 in
    Alcotest.(check bool) "count_at_least" (truth >= threshold)
      (Kwsc.Orp_kw.count_at_least orp q ws ~threshold)
  done

let test_rr_engines_agree () =
  let rng = Prng.create 176 in
  let rects =
    Array.map
      (fun (p, doc) -> (Rect.make p (Array.map (fun x -> x +. 30.0) p), doc))
      objs
  in
  let kd = Kwsc.Rr_kw.build ~engine:`Kd ~k:2 rects in
  let dr = Kwsc.Rr_kw.build ~engine:`Dimred ~k:2 rects in
  for _ = 1 to 60 do
    let q = Helpers.random_rect rng ~d:2 ~range:1000.0 in
    let ws = Helpers.random_keywords rng ~vocab:40 ~k:2 in
    Helpers.check_ids "rr engines agree" (Kwsc.Rr_kw.query kd q ws) (Kwsc.Rr_kw.query dr q ws)
  done

let test_nn_vs_range_consistency () =
  (* the t-th NN distance defines a ball whose range query returns >= t
     matching objects *)
  let nn = Kwsc.Linf_nn_kw.build ~k:2 objs in
  let rng = Prng.create 177 in
  for _ = 1 to 40 do
    let q = [| Prng.float rng 1000.0; Prng.float rng 1000.0 |] in
    let ws = Helpers.random_keywords rng ~vocab:40 ~k:2 in
    let res = Kwsc.Linf_nn_kw.query nn q ~t':5 ws in
    if Array.length res = 5 then begin
      let _, r5 = res.(4) in
      let ball = Rect.linf_ball q r5 in
      let in_ball = Kwsc.Orp_kw.query orp ball ws in
      Alcotest.(check bool) "ball of 5th NN holds >= 5 matches" true
        (Array.length in_ball >= 5)
    end
  done

let suite =
  [
    Alcotest.test_case "rectangle consensus (orp/dimred/lc)" `Quick test_rect_consensus;
    Alcotest.test_case "ball consensus (srp)" `Quick test_ball_consensus;
    Alcotest.test_case "emptiness consensus" `Quick test_emptiness_consensus;
    Alcotest.test_case "count_at_least" `Quick test_count_at_least;
    Alcotest.test_case "rr engines agree" `Quick test_rr_engines_agree;
    Alcotest.test_case "nn vs range consistency" `Quick test_nn_vs_range_consistency;
  ]
