open Kwsc_geom
module Ptree = Kwsc_ptree.Ptree
module Prng = Kwsc_util.Prng

let make_pts ~seed ~n ~d ~range =
  let rng = Prng.create seed in
  Array.init n (fun i -> (Array.init d (fun _ -> Prng.float rng range), i))

let naive pts pred =
  Array.to_list pts
  |> List.filter_map (fun (p, i) -> if pred p then Some i else None)
  |> List.sort compare

let ids_of l = List.sort compare (List.map snd l)

let random_triangle rng range =
  let v () = [| Prng.float rng range; Prng.float rng range |] in
  let rec go attempts =
    if attempts > 50 then Alcotest.fail "could not sample a triangle"
    else
      match Simplex.of_vertices [| v (); v (); v () |] with
      | s -> s
      | exception Invalid_argument _ -> go (attempts + 1)
  in
  go 0

let test_simplex_matches_naive () =
  let pts = make_pts ~seed:31 ~n:400 ~d:2 ~range:100.0 in
  let t = Ptree.build pts in
  let rng = Prng.create 32 in
  for _ = 1 to 60 do
    let s = random_triangle rng 100.0 in
    Alcotest.(check (list int)) "simplex query = naive"
      (naive pts (Simplex.contains s))
      (ids_of (Ptree.query_simplex t s))
  done

let test_halfspace_matches_naive () =
  let pts = make_pts ~seed:33 ~n:400 ~d:2 ~range:100.0 in
  let t = Ptree.build pts in
  let rng = Prng.create 34 in
  for _ = 1 to 60 do
    let h =
      Halfspace.make
        [| Prng.float rng 2.0 -. 1.0; Prng.float rng 2.0 -. 1.0 |]
        (Prng.float rng 100.0)
    in
    Alcotest.(check (list int)) "halfspace query = naive"
      (naive pts (Halfspace.satisfies h))
      (ids_of (Ptree.query_halfspaces t [ h ]))
  done

let test_polytope_3d () =
  let pts = make_pts ~seed:35 ~n:250 ~d:3 ~range:50.0 in
  let t = Ptree.build pts in
  let rng = Prng.create 36 in
  for _ = 1 to 30 do
    let hs =
      List.init 3 (fun _ ->
          Halfspace.make
            [| Prng.float rng 2.0 -. 1.0; Prng.float rng 2.0 -. 1.0; Prng.float rng 2.0 -. 1.0 |]
            (Prng.float rng 80.0 -. 10.0))
    in
    let q = Polytope.make ~dim:3 hs in
    Alcotest.(check (list int)) "3d polytope query = naive"
      (naive pts (Polytope.mem q))
      (ids_of (Ptree.query_polytope t q))
  done

let test_full_and_empty () =
  let pts = make_pts ~seed:37 ~n:100 ~d:2 ~range:10.0 in
  let t = Ptree.build pts in
  Alcotest.(check int) "whole space" 100
    (List.length (Ptree.query_polytope t (Polytope.make ~dim:2 [])));
  let empty =
    Polytope.make ~dim:2
      [ Halfspace.make [| 1.0; 0.0 |] 0.0; Halfspace.make [| -1.0; 0.0 |] (-1.0) ]
  in
  Alcotest.(check int) "empty region" 0 (List.length (Ptree.query_polytope t empty))

let test_duplicates () =
  let pts = Array.init 64 (fun i -> ([| 3.0; 3.0 |], i)) in
  let t = Ptree.build pts in
  let q = Polytope.of_rect (Rect.make [| 2.0; 2.0 |] [| 4.0; 4.0 |]) in
  Alcotest.(check int) "duplicates all found" 64 (List.length (Ptree.query_polytope t q))

let test_depth_logarithmic () =
  let pts = make_pts ~seed:38 ~n:2048 ~d:2 ~range:100.0 in
  let t = Ptree.build ~leaf_size:1 pts in
  Alcotest.(check bool)
    (Printf.sprintf "depth %d <= 2 log n" (Ptree.depth t))
    true
    (Ptree.depth t <= 2 * 11 + 2)

(* The substitute structure's crossing exponent should be clearly sublinear
   (DESIGN.md substitution 1 predicts ~N^0.79 in 2D). *)
let test_crossing_sublinear () =
  let crossing n =
    let pts = make_pts ~seed:39 ~n ~d:2 ~range:1000.0 in
    let t = Ptree.build ~leaf_size:1 pts in
    let h = Halfspace.make [| 1.0; 1.0 |] 1000.0 in
    (Ptree.stats_polytope t (Polytope.make ~dim:2 [ h ])).Ptree.crossing
  in
  let c1 = crossing 512 and c2 = crossing 2048 in
  (* 4x points must give far less than 4x crossings *)
  Alcotest.(check bool)
    (Printf.sprintf "crossing growth %d -> %d sublinear" c1 c2)
    true
    (float_of_int c2 <= 3.4 *. float_of_int c1)

let qcheck_simplex =
  QCheck.Test.make ~name:"ptree simplex query equals filter" ~count:50
    QCheck.(small_int)
    (fun seed ->
      let pts = make_pts ~seed ~n:80 ~d:2 ~range:30.0 in
      let t = Ptree.build pts in
      let rng = Prng.create (seed + 555) in
      let s = random_triangle rng 30.0 in
      naive pts (Simplex.contains s) = ids_of (Ptree.query_simplex t s))

let suite =
  [
    Alcotest.test_case "simplex matches naive" `Quick test_simplex_matches_naive;
    Alcotest.test_case "halfspace matches naive" `Quick test_halfspace_matches_naive;
    Alcotest.test_case "3d polytope" `Quick test_polytope_3d;
    Alcotest.test_case "full and empty regions" `Quick test_full_and_empty;
    Alcotest.test_case "duplicate points" `Quick test_duplicates;
    Alcotest.test_case "depth logarithmic" `Quick test_depth_logarithmic;
    Alcotest.test_case "crossing sublinear" `Quick test_crossing_sublinear;
    QCheck_alcotest.to_alcotest qcheck_simplex;
  ]
