open Kwsc_geom
module Rr = Kwsc.Rr_kw
module Prng = Kwsc_util.Prng

let random_rects ~seed ~n ~d ~range ~side =
  let rng = Prng.create seed in
  Array.init n (fun _ ->
      let lo = Array.init d (fun _ -> Prng.float rng range) in
      let hi = Array.map (fun x -> x +. Prng.float rng side) lo in
      Rect.make lo hi)

let dataset ~seed ~n ~d =
  let rng = Prng.create (seed + 1) in
  let rects = random_rects ~seed ~n ~d ~range:1000.0 ~side:80.0 in
  let docs = Kwsc_workload.Gen.docs ~rng ~n ~vocab:30 ~theta:0.9 ~len_min:1 ~len_max:5 in
  Array.init n (fun i -> (rects.(i), docs.(i)))

let oracle objs q ws =
  let hits = ref [] in
  Array.iteri
    (fun id (r, doc) ->
      if Rect.intersects r q && Array.for_all (fun w -> Kwsc_invindex.Doc.mem doc w) ws then
        hits := id :: !hits)
    objs;
  let a = Array.of_list !hits in
  Array.sort compare a;
  a

let test_intervals_1d () =
  (* temporal keyword search: documents with lifespans *)
  let objs = dataset ~seed:111 ~n:300 ~d:1 in
  let t = Rr.build ~k:2 objs in
  let rng = Prng.create 601 in
  for _ = 1 to 80 do
    let q = Helpers.random_rect rng ~d:1 ~range:1000.0 in
    let ws = Helpers.random_keywords rng ~vocab:30 ~k:2 in
    Helpers.check_ids "1d intervals = oracle" (oracle objs q ws) (Rr.query t q ws)
  done

let test_rects_2d () =
  let objs = dataset ~seed:112 ~n:250 ~d:2 in
  let t = Rr.build ~k:2 objs in
  let rng = Prng.create 602 in
  for _ = 1 to 60 do
    let q = Helpers.random_rect rng ~d:2 ~range:1000.0 in
    let ws = Helpers.random_keywords rng ~vocab:30 ~k:2 in
    Helpers.check_ids "2d rectangles = oracle" (oracle objs q ws) (Rr.query t q ws)
  done

let test_touching_rectangles () =
  let doc = Kwsc_invindex.Doc.of_list [ 1; 2 ] in
  let objs =
    [|
      (Rect.make [| 0.0 |] [| 1.0 |], doc);
      (Rect.make [| 1.0 |] [| 2.0 |], doc);
      (Rect.make [| 3.0 |] [| 4.0 |], doc);
    |]
  in
  let t = Rr.build ~k:2 objs in
  (* query [1,1] touches the first two intervals at a single point *)
  Helpers.check_ids "touching counts as intersecting" [| 0; 1 |]
    (Rr.query t (Rect.make [| 1.0 |] [| 1.0 |]) [| 1; 2 |]);
  Helpers.check_ids "gap misses" [| 0; 1 |] (Rr.query t (Rect.make [| 0.5 |] [| 2.5 |]) [| 1; 2 |])

let test_containment_both_ways () =
  let doc = Kwsc_invindex.Doc.of_list [ 5; 6 ] in
  let objs =
    [| (Rect.make [| 0.0; 0.0 |] [| 100.0; 100.0 |], doc); (Rect.make [| 40.0; 40.0 |] [| 60.0; 60.0 |], doc) |]
  in
  let t = Rr.build ~k:2 objs in
  (* tiny query inside the big rect *)
  Helpers.check_ids "query inside data rect" [| 0; 1 |]
    (Rr.query t (Rect.make [| 45.0; 45.0 |] [| 46.0; 46.0 |]) [| 5; 6 |]);
  (* huge query containing both *)
  Helpers.check_ids "query containing data" [| 0; 1 |]
    (Rr.query t (Rect.make [| -10.0; -10.0 |] [| 200.0; 200.0 |]) [| 5; 6 |])

let test_rejects_unbounded_data () =
  Alcotest.check_raises "unbounded data rectangle"
    (Invalid_argument "Rr_kw.build: data rectangles must be bounded") (fun () ->
      ignore
        (Rr.build ~k:2
           [| (Rect.make [| 0.0 |] [| infinity |], Kwsc_invindex.Doc.of_list [ 1 ]) |]))

let test_engines_agree_all () =
  let objs = dataset ~seed:115 ~n:150 ~d:2 in
  let kd = Rr.build ~engine:`Kd ~k:2 objs in
  let dr = Rr.build ~engine:`Dimred ~k:2 objs in
  let lc = Rr.build ~engine:`Lc ~k:2 objs in
  let rng = Prng.create 603 in
  for _ = 1 to 40 do
    let q = Helpers.random_rect rng ~d:2 ~range:1000.0 in
    let ws = Helpers.random_keywords rng ~vocab:30 ~k:2 in
    let expected = oracle objs q ws in
    Helpers.check_ids "kd engine" expected (Rr.query kd q ws);
    Helpers.check_ids "dimred engine" expected (Rr.query dr q ws);
    Helpers.check_ids "lc engine" expected (Rr.query lc q ws)
  done

let qcheck_rr =
  QCheck.Test.make ~name:"RR-KW equals oracle" ~count:40
    QCheck.(small_int)
    (fun seed ->
      let objs = dataset ~seed ~n:100 ~d:2 in
      let t = Rr.build ~k:2 objs in
      let rng = Prng.create (seed + 1111) in
      let q = Helpers.random_rect rng ~d:2 ~range:1000.0 in
      let ws = Helpers.random_keywords rng ~vocab:30 ~k:2 in
      oracle objs q ws = Rr.query t q ws)

let suite =
  [
    Alcotest.test_case "1d intervals (temporal)" `Quick test_intervals_1d;
    Alcotest.test_case "2d rectangles" `Quick test_rects_2d;
    Alcotest.test_case "touching rectangles" `Quick test_touching_rectangles;
    Alcotest.test_case "containment both ways" `Quick test_containment_both_ways;
    Alcotest.test_case "rejects unbounded data" `Quick test_rejects_unbounded_data;
    Alcotest.test_case "all three engines agree" `Quick test_engines_agree_all;
    QCheck_alcotest.to_alcotest qcheck_rr;
  ]
