module Gen = Kwsc_workload.Gen
module Hotels = Kwsc_workload.Hotels
module Prng = Kwsc_util.Prng

let test_docs_shape () =
  let rng = Prng.create 141 in
  let docs = Gen.docs ~rng ~n:200 ~vocab:30 ~theta:0.9 ~len_min:2 ~len_max:6 in
  Alcotest.(check int) "count" 200 (Array.length docs);
  Array.iter
    (fun d ->
      let size = Kwsc_invindex.Doc.size d in
      Alcotest.(check bool) "non-empty" true (size >= 1);
      Alcotest.(check bool) "within max" true (size <= 6);
      Kwsc_invindex.Doc.iter
        (fun w -> Alcotest.(check bool) "keyword in vocab" true (w >= 1 && w <= 30))
        d)
    docs

let test_docs_zipf_skew () =
  let rng = Prng.create 142 in
  let docs = Gen.docs ~rng ~n:2000 ~vocab:50 ~theta:1.0 ~len_min:1 ~len_max:4 in
  let inv = Kwsc_invindex.Inverted.build docs in
  Alcotest.(check bool) "rank-1 keyword much more frequent" true
    (Kwsc_invindex.Inverted.frequency inv 1 > 3 * Kwsc_invindex.Inverted.frequency inv 40)

let test_points_ranges () =
  let rng = Prng.create 143 in
  let pts = Gen.points_uniform ~rng ~n:100 ~d:3 ~range:50.0 in
  Array.iter
    (Array.iter (fun x -> Alcotest.(check bool) "uniform in range" true (x >= 0.0 && x < 50.0)))
    pts;
  let ipts = Gen.points_int ~rng ~n:100 ~d:2 ~max_coord:9 in
  Array.iter
    (Array.iter (fun x ->
         Alcotest.(check bool) "integer coords" true (Float.is_integer x && x >= 0.0 && x <= 9.0)))
    ipts

let test_points_clustered () =
  let rng = Prng.create 144 in
  let pts = Gen.points_clustered ~rng ~n:300 ~d:2 ~clusters:3 ~spread:5.0 ~range:1000.0 in
  Alcotest.(check int) "count" 300 (Array.length pts)

let test_keywords_by_rank () =
  let rng = Prng.create 145 in
  let docs = Gen.docs ~rng ~n:500 ~vocab:20 ~theta:1.0 ~len_min:1 ~len_max:5 in
  let inv = Kwsc_invindex.Inverted.build docs in
  (match Gen.keywords_by_rank inv ~rank:1 ~k:2 with
  | None -> Alcotest.fail "vocabulary has >= 2 keywords"
  | Some ws ->
      Alcotest.(check int) "two keywords" 2 (Array.length ws);
      Alcotest.(check bool) "first is most frequent" true
        (Kwsc_invindex.Inverted.frequency inv ws.(0) >= Kwsc_invindex.Inverted.frequency inv ws.(1)));
  Alcotest.(check bool) "rank beyond vocab" true (Gen.keywords_by_rank inv ~rank:1000 ~k:2 = None)

let test_ksi_disjoint () =
  let rng = Prng.create 146 in
  let sets = Gen.ksi_disjoint_heavy ~rng ~m:5 ~set_size:20 in
  Alcotest.(check int) "m sets" 5 (Array.length sets);
  for i = 0 to 4 do
    for j = i + 1 to 4 do
      Alcotest.(check (array int)) "pairwise disjoint" [||]
        (Kwsc_util.Sorted.intersect sets.(i) sets.(j))
    done
  done

let test_poison_structure () =
  let rng = Prng.create 147 in
  let objs, q = Gen.poison ~rng ~n:200 ~d:2 ~range:1000.0 ~kws:[| 1; 2 |] in
  Alcotest.(check int) "n objects" 200 (Array.length objs);
  (* nothing satisfies both sides *)
  Alcotest.(check (array int)) "intersection empty" [||] (Helpers.oracle_rect objs q [| 1; 2 |]);
  let kw_matches = ref 0 and rect_matches = ref 0 in
  Array.iter
    (fun (p, doc) ->
      if Kwsc_invindex.Doc.mem_all doc [| 1; 2 |] then incr kw_matches;
      if Kwsc_geom.Rect.contains_point q p then incr rect_matches)
    objs;
  Alcotest.(check int) "half match keywords" 100 !kw_matches;
  Alcotest.(check int) "half match rectangle" 100 !rect_matches

let test_topical () =
  let rng = Prng.create 149 in
  let objs =
    Gen.topical ~rng ~n:800 ~d:2 ~topics:4 ~vocab_per_topic:10 ~correlation:1.0 ~range:1000.0
  in
  Alcotest.(check int) "count" 800 (Array.length objs);
  (* with full correlation, a document's keywords come from one topic block *)
  Array.iter
    (fun (_, doc) ->
      let kws = Kwsc_invindex.Doc.to_array doc in
      let topic_of w = (w - 1) / 10 in
      let t0 = topic_of kws.(0) in
      Array.iter (fun w -> Alcotest.(check int) "one topic per doc" t0 (topic_of w)) kws)
    objs;
  Alcotest.check_raises "bad correlation"
    (Invalid_argument "Gen.topical: correlation must be in [0,1]") (fun () ->
      ignore
        (Gen.topical ~rng ~n:5 ~d:2 ~topics:2 ~vocab_per_topic:3 ~correlation:1.5 ~range:10.0))

let test_hotels () =
  let rng = Prng.create 148 in
  let hs = Hotels.generate ~rng ~n:50 in
  Alcotest.(check int) "count" 50 (Array.length hs);
  Array.iter
    (fun h ->
      Alcotest.(check bool) "price range" true (h.Hotels.price >= 50.0 && h.Hotels.price <= 550.0);
      Alcotest.(check bool) "rating range" true (h.Hotels.rating >= 0.0 && h.Hotels.rating <= 10.0))
    hs;
  Alcotest.(check string) "tag round trip" "pool" (Hotels.tag_name (Hotels.tag_id "pool"));
  Alcotest.check_raises "unknown tag" Not_found (fun () -> ignore (Hotels.tag_id "nonexistent"));
  let objs = Hotels.to_objects hs in
  Alcotest.(check int) "objects" 50 (Array.length objs);
  Alcotest.(check (float 1e-9)) "point is (price, rating)" hs.(0).Hotels.price (fst objs.(0)).(0)

let suite =
  [
    Alcotest.test_case "docs shape" `Quick test_docs_shape;
    Alcotest.test_case "docs zipf skew" `Quick test_docs_zipf_skew;
    Alcotest.test_case "point ranges" `Quick test_points_ranges;
    Alcotest.test_case "clustered points" `Quick test_points_clustered;
    Alcotest.test_case "keywords by rank" `Quick test_keywords_by_rank;
    Alcotest.test_case "ksi disjoint heavy" `Quick test_ksi_disjoint;
    Alcotest.test_case "poison workload" `Quick test_poison_structure;
    Alcotest.test_case "topical generator" `Quick test_topical;
    Alcotest.test_case "hotels" `Quick test_hotels;
  ]
