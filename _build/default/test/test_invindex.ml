module Doc = Kwsc_invindex.Doc
module Inverted = Kwsc_invindex.Inverted
module Ksi_instance = Kwsc_invindex.Ksi_instance
module Prng = Kwsc_util.Prng

let test_doc_basics () =
  let d = Doc.of_list [ 5; 1; 3; 1 ] in
  Alcotest.(check int) "dedup size" 3 (Doc.size d);
  Alcotest.(check bool) "mem 3" true (Doc.mem d 3);
  Alcotest.(check bool) "mem 2" false (Doc.mem d 2);
  Alcotest.(check bool) "mem_all subset" true (Doc.mem_all d [| 1; 5 |]);
  Alcotest.(check bool) "mem_all miss" false (Doc.mem_all d [| 1; 2 |]);
  Alcotest.(check (array int)) "sorted" [| 1; 3; 5 |] (Doc.to_array d)

let test_doc_empty () =
  Alcotest.check_raises "empty doc" (Invalid_argument "Doc.of_list: documents must be non-empty")
    (fun () -> ignore (Doc.of_list []))

let random_docs ~seed ~n ~vocab =
  let rng = Prng.create seed in
  Array.init n (fun _ ->
      Doc.of_list (List.init (1 + Prng.int rng 5) (fun _ -> 1 + Prng.int rng vocab)))

let test_inverted_query_vs_naive () =
  let docs = random_docs ~seed:41 ~n:300 ~vocab:20 in
  let inv = Inverted.build docs in
  let rng = Prng.create 42 in
  for _ = 1 to 200 do
    let ws = Helpers.random_keywords rng ~vocab:22 ~k:(1 + Prng.int rng 3) in
    Alcotest.(check (array int)) "query = naive" (Inverted.query_naive inv ws)
      (Inverted.query inv ws)
  done

let test_inverted_postings () =
  let docs = [| Doc.of_list [ 1; 2 ]; Doc.of_list [ 2 ]; Doc.of_list [ 1; 3 ] |] in
  let inv = Inverted.build docs in
  Alcotest.(check (array int)) "posting 1" [| 0; 2 |] (Inverted.posting inv 1);
  Alcotest.(check (array int)) "posting 2" [| 0; 1 |] (Inverted.posting inv 2);
  Alcotest.(check (array int)) "posting missing" [||] (Inverted.posting inv 9);
  Alcotest.(check int) "frequency" 2 (Inverted.frequency inv 1);
  Alcotest.(check int) "input size" 5 (Inverted.input_size inv);
  Alcotest.(check (array int)) "vocabulary" [| 1; 2; 3 |] (Inverted.vocabulary inv)

let test_inverted_emptiness () =
  let docs = [| Doc.of_list [ 1 ]; Doc.of_list [ 2 ] |] in
  let inv = Inverted.build docs in
  Alcotest.(check bool) "disjoint" true (Inverted.is_empty_query inv [| 1; 2 |]);
  Alcotest.(check bool) "nonempty" false (Inverted.is_empty_query inv [| 1 |])

let test_ksi_instance_reporting () =
  let inst = Ksi_instance.create [| [| 1; 2; 3; 4 |]; [| 3; 4; 5 |]; [| 4; 6 |] |] in
  Alcotest.(check int) "m" 3 (Ksi_instance.num_sets inst);
  Alcotest.(check int) "N" 9 (Ksi_instance.input_size inst);
  Alcotest.(check (array int)) "S1 cap S2" [| 3; 4 |] (Ksi_instance.reporting inst [| 1; 2 |]);
  Alcotest.(check (array int)) "S1 cap S2 cap S3" [| 4 |] (Ksi_instance.reporting inst [| 1; 2; 3 |]);
  Alcotest.(check bool) "emptiness false" false (Ksi_instance.emptiness inst [| 1; 3 |])

let test_ksi_keyword_encoding () =
  let inst = Ksi_instance.create [| [| 10; 20 |]; [| 20; 30 |] |] in
  let docs, elements = Ksi_instance.to_keyword_dataset inst in
  Alcotest.(check (array int)) "elements" [| 10; 20; 30 |] elements;
  Alcotest.(check (array int)) "doc of 10" [| 1 |] (Doc.to_array docs.(0));
  Alcotest.(check (array int)) "doc of 20" [| 1; 2 |] (Doc.to_array docs.(1));
  Alcotest.(check (array int)) "doc of 30" [| 2 |] (Doc.to_array docs.(2));
  (* round trip: keyword query = set intersection *)
  let inv = Inverted.build docs in
  let via_kw = Array.map (fun id -> elements.(id)) (Inverted.query inv [| 1; 2 |]) in
  Alcotest.(check (array int)) "reduction equivalence" (Ksi_instance.reporting inst [| 1; 2 |]) via_kw

let qcheck_ksi_roundtrip =
  QCheck.Test.make ~name:"k-SI <-> keyword search round trip" ~count:100
    QCheck.(small_int)
    (fun seed ->
      let rng = Prng.create seed in
      let m = 2 + Prng.int rng 4 in
      let sets =
        Array.init m (fun _ ->
            Array.init (1 + Prng.int rng 15) (fun _ -> Prng.int rng 30))
      in
      let inst = Ksi_instance.create sets in
      let docs, elements = Ksi_instance.to_keyword_dataset inst in
      let inv = Inverted.build docs in
      let a = 1 + Prng.int rng m and b = 1 + Prng.int rng m in
      if a = b then true
      else
        let via_kw = Array.map (fun id -> elements.(id)) (Inverted.query inv [| a; b |]) in
        Array.sort compare via_kw;
        via_kw = Ksi_instance.reporting inst [| a; b |])

let suite =
  [
    Alcotest.test_case "doc basics" `Quick test_doc_basics;
    Alcotest.test_case "doc must be non-empty" `Quick test_doc_empty;
    Alcotest.test_case "inverted query vs naive" `Quick test_inverted_query_vs_naive;
    Alcotest.test_case "inverted postings" `Quick test_inverted_postings;
    Alcotest.test_case "inverted emptiness" `Quick test_inverted_emptiness;
    Alcotest.test_case "ksi instance reporting" `Quick test_ksi_instance_reporting;
    Alcotest.test_case "ksi keyword encoding" `Quick test_ksi_keyword_encoding;
    QCheck_alcotest.to_alcotest qcheck_ksi_roundtrip;
  ]
