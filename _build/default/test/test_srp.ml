open Kwsc_geom
module Srp = Kwsc.Srp_kw
module Prng = Kwsc_util.Prng

let random_sphere rng ~range = Sphere.make [| Prng.float rng range; Prng.float rng range |] (Prng.float rng (range /. 2.0))

let test_matches_oracle () =
  let objs = Helpers.dataset ~seed:71 ~n:300 ~d:2 () in
  let t = Srp.build ~k:2 objs in
  let rng = Prng.create 401 in
  for _ = 1 to 60 do
    let s = random_sphere rng ~range:1000.0 in
    let ws = Helpers.random_keywords rng ~vocab:40 ~k:2 in
    Helpers.check_ids "srp = oracle" (Helpers.oracle objs (Sphere.contains s) ws) (Srp.query t s ws)
  done

let test_k3 () =
  let objs = Helpers.dataset ~seed:72 ~n:250 ~d:2 ~len_min:2 ~len_max:7 () in
  let t = Srp.build ~k:3 objs in
  let rng = Prng.create 402 in
  for _ = 1 to 40 do
    let s = random_sphere rng ~range:1000.0 in
    let ws = Helpers.random_keywords rng ~vocab:40 ~k:3 in
    Helpers.check_ids "srp k=3" (Helpers.oracle objs (Sphere.contains s) ws) (Srp.query t s ws)
  done

let test_zero_radius () =
  let objs =
    [|
      ([| 5.0; 5.0 |], Kwsc_invindex.Doc.of_list [ 1; 2 ]);
      ([| 5.0; 6.0 |], Kwsc_invindex.Doc.of_list [ 1; 2 ]);
    |]
  in
  let t = Srp.build ~k:2 objs in
  Helpers.check_ids "point sphere hits exactly" [| 0 |]
    (Srp.query t (Sphere.make [| 5.0; 5.0 |] 0.0) [| 1; 2 |])

let test_huge_radius () =
  let objs = Helpers.dataset ~seed:73 ~n:150 ~d:2 () in
  let t = Srp.build ~k:2 objs in
  let inv = Kwsc_invindex.Inverted.build (Array.map snd objs) in
  let rng = Prng.create 403 in
  for _ = 1 to 30 do
    let ws = Helpers.random_keywords rng ~vocab:40 ~k:2 in
    Helpers.check_ids "everything inside = pure keyword search"
      (Kwsc_invindex.Inverted.query_naive inv ws)
      (Srp.query t (Sphere.make [| 500.0; 500.0 |] 1e6) ws)
  done

let test_ball_sq_exact_integers () =
  let objs =
    Array.init 50 (fun i ->
        ([| float_of_int (i mod 10); float_of_int (i / 10) |], Kwsc_invindex.Doc.of_list [ 1; 2 ]))
  in
  let t = Srp.build ~k:2 objs in
  (* squared radius 2 around (0,0): points (0,0) (1,0) (0,1) (1,1) *)
  let got = Srp.query_ball_sq t [| 0.0; 0.0 |] 2.0 [| 1; 2 |] in
  let expect = Helpers.oracle objs (fun p -> Point.l2_dist_sq [| 0.0; 0.0 |] p <= 2.0) [| 1; 2 |] in
  Helpers.check_ids "integer squared radius exact" expect got

let test_3d () =
  let objs = Helpers.dataset ~seed:74 ~n:150 ~d:3 () in
  let t = Srp.build ~k:2 objs in
  let rng = Prng.create 404 in
  for _ = 1 to 20 do
    let s =
      Sphere.make
        [| Prng.float rng 1000.0; Prng.float rng 1000.0; Prng.float rng 1000.0 |]
        (Prng.float rng 500.0)
    in
    let ws = Helpers.random_keywords rng ~vocab:40 ~k:2 in
    Helpers.check_ids "srp 3d" (Helpers.oracle objs (Sphere.contains s) ws) (Srp.query t s ws)
  done

let qcheck_srp =
  QCheck.Test.make ~name:"SRP-KW equals oracle" ~count:40
    QCheck.(small_int)
    (fun seed ->
      let objs = Helpers.dataset ~seed ~n:100 ~d:2 ~vocab:15 () in
      let t = Srp.build ~k:2 objs in
      let rng = Prng.create (seed + 888) in
      let s = random_sphere rng ~range:1000.0 in
      let ws = Helpers.random_keywords rng ~vocab:15 ~k:2 in
      Helpers.oracle objs (Sphere.contains s) ws = Srp.query t s ws)

let suite =
  [
    Alcotest.test_case "matches oracle" `Quick test_matches_oracle;
    Alcotest.test_case "k=3" `Quick test_k3;
    Alcotest.test_case "zero radius" `Quick test_zero_radius;
    Alcotest.test_case "huge radius" `Quick test_huge_radius;
    Alcotest.test_case "integer squared radius" `Quick test_ball_sq_exact_integers;
    Alcotest.test_case "3d spheres" `Quick test_3d;
    QCheck_alcotest.to_alcotest qcheck_srp;
  ]
