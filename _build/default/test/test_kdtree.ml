open Kwsc_geom
module Kd = Kwsc_kdtree.Kd
module Prng = Kwsc_util.Prng

let make_pts ~seed ~n ~d ~range =
  let rng = Prng.create seed in
  Array.init n (fun i -> (Array.init d (fun _ -> Prng.float rng range), i))

let naive_range pts q =
  Array.to_list pts
  |> List.filter_map (fun (p, i) -> if Rect.contains_point q p then Some i else None)
  |> List.sort compare

let ids_of l = List.sort compare (List.map snd l)

let test_range_matches_naive () =
  let pts = make_pts ~seed:1 ~n:500 ~d:2 ~range:100.0 in
  let t = Kd.build pts in
  let rng = Prng.create 2 in
  for _ = 1 to 200 do
    let q = Helpers.random_rect rng ~d:2 ~range:100.0 in
    Alcotest.(check (list int)) "range = naive" (naive_range pts q) (ids_of (Kd.range t q))
  done

let test_range_3d () =
  let pts = make_pts ~seed:3 ~n:300 ~d:3 ~range:50.0 in
  let t = Kd.build pts in
  let rng = Prng.create 4 in
  for _ = 1 to 100 do
    let q = Helpers.random_rect rng ~d:3 ~range:50.0 in
    Alcotest.(check (list int)) "3d range" (naive_range pts q) (ids_of (Kd.range t q))
  done

let test_count () =
  let pts = make_pts ~seed:5 ~n:400 ~d:2 ~range:10.0 in
  let t = Kd.build pts in
  let rng = Prng.create 6 in
  for _ = 1 to 100 do
    let q = Helpers.random_rect rng ~d:2 ~range:10.0 in
    Alcotest.(check int) "count = |range|" (List.length (naive_range pts q)) (Kd.count t q)
  done

let test_full_space () =
  let pts = make_pts ~seed:7 ~n:123 ~d:2 ~range:10.0 in
  let t = Kd.build pts in
  Alcotest.(check int) "full space reports all" 123 (List.length (Kd.range t (Rect.full 2)))

let test_duplicates () =
  let pts = Array.init 100 (fun i -> ([| 1.0; 2.0 |], i)) in
  let t = Kd.build pts in
  Alcotest.(check int) "all duplicates found" 100
    (List.length (Kd.range t (Rect.make [| 1.0; 2.0 |] [| 1.0; 2.0 |])));
  Alcotest.(check int) "none outside" 0
    (List.length (Kd.range t (Rect.make [| 0.0; 0.0 |] [| 0.5; 0.5 |])))

let naive_nearest pts metric q k =
  let dist = match metric with `Linf -> Point.linf_dist | `L2 -> Point.l2_dist in
  let a = Array.map (fun (p, i) -> (dist q p, i)) pts in
  Array.sort compare a;
  Array.to_list (Array.sub a 0 (min k (Array.length a)))

let test_nearest () =
  let pts = make_pts ~seed:8 ~n:300 ~d:2 ~range:100.0 in
  let t = Kd.build pts in
  let rng = Prng.create 9 in
  List.iter
    (fun metric ->
      for _ = 1 to 50 do
        let q = [| Prng.float rng 100.0; Prng.float rng 100.0 |] in
        let k = 1 + Prng.int rng 10 in
        let got = List.map (fun (d, _, _) -> d) (Kd.nearest t ~metric q k) in
        let expected = List.map fst (naive_nearest pts metric q k) in
        List.iter2 (fun g e -> Alcotest.(check (float 1e-9)) "nn distance" e g) got expected
      done)
    [ `Linf; `L2 ]

let test_nearest_more_than_n () =
  let pts = make_pts ~seed:10 ~n:5 ~d:2 ~range:10.0 in
  let t = Kd.build pts in
  Alcotest.(check int) "k > n returns n" 5 (List.length (Kd.nearest t ~metric:`L2 [| 0.0; 0.0 |] 50))

(* Lemma 10 context: a vertical line crosses O(sqrt N) cells of a 2D
   kd-tree. Check the growth rate empirically on the raw structure. *)
let test_crossing_sqrt_scaling () =
  let crossing n =
    let pts = make_pts ~seed:11 ~n ~d:2 ~range:1000.0 in
    let t = Kd.build ~leaf_size:1 pts in
    let line = Rect.make [| 500.0; neg_infinity |] [| 500.0; infinity |] in
    (Kd.range_stats t line).Kd.crossing
  in
  let c1 = crossing 1024 and c2 = crossing 4096 in
  (* sqrt scaling: 4x points -> ~2x crossings; allow generous slack *)
  Alcotest.(check bool)
    (Printf.sprintf "crossing growth %d -> %d is ~2x" c1 c2)
    true
    (float_of_int c2 < 3.2 *. float_of_int c1)

let test_build_invalid () =
  Alcotest.check_raises "empty" (Invalid_argument "Kd.build: empty input") (fun () ->
      ignore (Kd.build ([||] : (Point.t * int) array)))

let qcheck_range =
  QCheck.Test.make ~name:"kd range equals filter on random data" ~count:100
    QCheck.(small_int)
    (fun seed ->
      let pts = make_pts ~seed ~n:120 ~d:2 ~range:20.0 in
      let t = Kd.build pts in
      let rng = Prng.create (seed + 1000) in
      let q = Helpers.random_rect rng ~d:2 ~range:20.0 in
      naive_range pts q = ids_of (Kd.range t q))

let suite =
  [
    Alcotest.test_case "range matches naive (2d)" `Quick test_range_matches_naive;
    Alcotest.test_case "range matches naive (3d)" `Quick test_range_3d;
    Alcotest.test_case "count" `Quick test_count;
    Alcotest.test_case "full-space query" `Quick test_full_space;
    Alcotest.test_case "duplicate points" `Quick test_duplicates;
    Alcotest.test_case "nearest neighbors" `Quick test_nearest;
    Alcotest.test_case "nearest with k > n" `Quick test_nearest_more_than_n;
    Alcotest.test_case "vertical-line crossing ~ sqrt(N)" `Quick test_crossing_sqrt_scaling;
    Alcotest.test_case "build validation" `Quick test_build_invalid;
    QCheck_alcotest.to_alcotest qcheck_range;
  ]
