open Kwsc_geom
module Orp = Kwsc.Orp_kw
module Prng = Kwsc_util.Prng

let build ?(k = 2) objs = Orp.build ~k objs

let test_matches_oracle_2d_k2 () =
  let objs = Helpers.dataset ~n:400 ~d:2 () in
  let t = build objs in
  let rng = Prng.create 101 in
  for _ = 1 to 150 do
    let q = Helpers.random_rect rng ~d:2 ~range:1000.0 in
    let ws = Helpers.random_keywords rng ~vocab:40 ~k:2 in
    Helpers.check_ids "orp = oracle" (Helpers.oracle_rect objs q ws) (Orp.query t q ws)
  done

let test_matches_oracle_2d_k3 () =
  let objs = Helpers.dataset ~seed:55 ~n:300 ~d:2 ~len_min:2 ~len_max:8 () in
  let t = build ~k:3 objs in
  let rng = Prng.create 102 in
  for _ = 1 to 100 do
    let q = Helpers.random_rect rng ~d:2 ~range:1000.0 in
    let ws = Helpers.random_keywords rng ~vocab:40 ~k:3 in
    Helpers.check_ids "orp k=3 = oracle" (Helpers.oracle_rect objs q ws) (Orp.query t q ws)
  done

let test_matches_oracle_1d () =
  let objs = Helpers.dataset ~seed:77 ~n:250 ~d:1 () in
  let t = build objs in
  let rng = Prng.create 103 in
  for _ = 1 to 100 do
    let q = Helpers.random_rect rng ~d:1 ~range:1000.0 in
    let ws = Helpers.random_keywords rng ~vocab:40 ~k:2 in
    Helpers.check_ids "orp 1d = oracle" (Helpers.oracle_rect objs q ws) (Orp.query t q ws)
  done

let test_ties_grid_data () =
  (* many duplicate coordinates: exercises rank-space tie-breaking (Step 4) *)
  let objs = Helpers.gridded_dataset ~n:300 ~d:2 () in
  let t = build objs in
  let rng = Prng.create 104 in
  for _ = 1 to 150 do
    let q = Helpers.random_rect rng ~d:2 ~range:8.0 in
    let ws = Helpers.random_keywords rng ~vocab:15 ~k:2 in
    Helpers.check_ids "gridded = oracle" (Helpers.oracle_rect objs q ws) (Orp.query t q ws)
  done

let test_identical_points () =
  let doc i = Kwsc_invindex.Doc.of_list [ 1 + (i mod 3); 10 ] in
  let objs = Array.init 60 (fun i -> ([| 5.0; 5.0 |], doc i)) in
  let t = build objs in
  let hit = Rect.make [| 5.0; 5.0 |] [| 5.0; 5.0 |] in
  let miss = Rect.make [| 6.0; 6.0 |] [| 7.0; 7.0 |] in
  Helpers.check_ids "all identical, keyword filter"
    (Helpers.oracle_rect objs hit [| 1; 10 |])
    (Orp.query t hit [| 1; 10 |]);
  Helpers.check_ids "identical, miss rect" [||] (Orp.query t miss [| 1; 10 |])

let test_no_results_keywords () =
  let objs = Helpers.dataset ~n:100 ~d:2 () in
  let t = build objs in
  (* keyword 9999 appears nowhere *)
  Helpers.check_ids "absent keyword" [||] (Orp.query t (Rect.full 2) [| 1; 9999 |])

let test_full_space_equals_pure_keyword_search () =
  let objs = Helpers.dataset ~seed:91 ~n:350 ~d:2 () in
  let t = build objs in
  let docs = Array.map snd objs in
  let inv = Kwsc_invindex.Inverted.build docs in
  let rng = Prng.create 105 in
  for _ = 1 to 100 do
    let ws = Helpers.random_keywords rng ~vocab:40 ~k:2 in
    Helpers.check_ids "full-space = inverted index"
      (Kwsc_invindex.Inverted.query_naive inv ws)
      (Orp.query t (Rect.full 2) ws)
  done

let test_limit () =
  let objs = Helpers.dataset ~seed:13 ~n:400 ~d:2 ~vocab:5 () in
  let t = build objs in
  let full = Orp.query t (Rect.full 2) [| 1; 2 |] in
  if Array.length full > 3 then begin
    let capped = Orp.query ~limit:3 t (Rect.full 2) [| 1; 2 |] in
    Alcotest.(check int) "limit respected" 3 (Array.length capped);
    Array.iter
      (fun id -> Alcotest.(check bool) "capped subset of full" true (Array.mem id full))
      capped
  end

let test_keyword_validation () =
  let objs = Helpers.dataset ~n:50 ~d:2 () in
  let t = build objs in
  Alcotest.check_raises "wrong arity"
    (Invalid_argument "Transform.query: expected 2 distinct keywords, got 1") (fun () ->
      ignore (Orp.query t (Rect.full 2) [| 1 |]));
  Alcotest.check_raises "duplicates collapse"
    (Invalid_argument "Transform.query: expected 2 distinct keywords, got 1") (fun () ->
      ignore (Orp.query t (Rect.full 2) [| 3; 3 |]))

let test_build_validation () =
  Alcotest.check_raises "k=1 rejected" (Invalid_argument "Transform.build: k must be >= 2")
    (fun () -> ignore (build ~k:1 (Helpers.dataset ~n:10 ~d:2 ())));
  Alcotest.check_raises "empty rejected" (Invalid_argument "Orp_kw.build: empty input")
    (fun () -> ignore (build [||]))

let test_single_object () =
  let objs = [| ([| 1.0; 2.0 |], Kwsc_invindex.Doc.of_list [ 4; 7 ]) |] in
  let t = build objs in
  Helpers.check_ids "singleton hit" [| 0 |] (Orp.query t (Rect.full 2) [| 4; 7 |]);
  Helpers.check_ids "singleton keyword miss" [||] (Orp.query t (Rect.full 2) [| 4; 8 |]);
  Helpers.check_ids "singleton rect miss" [||]
    (Orp.query t (Rect.make [| 5.0; 5.0 |] [| 6.0; 6.0 |]) [| 4; 7 |])

(* --- structural invariants (Appendix B budget) ------------------------ *)

let test_invariant_weight_halving () =
  let objs = Helpers.dataset ~seed:3 ~n:500 ~d:2 () in
  let t = build objs in
  let n = Orp.input_size t in
  Orp.fold_nodes t ~init:() ~f:(fun () v ->
      let bound = float_of_int n /. (2.0 ** float_of_int v.Kwsc.Transform.depth) in
      Alcotest.(check bool)
        (Printf.sprintf "N_u=%d <= N/2^%d" v.Kwsc.Transform.n_u v.Kwsc.Transform.depth)
        true
        (float_of_int v.Kwsc.Transform.n_u <= bound +. 1e-9))

let test_invariant_pivot_constant () =
  let objs = Helpers.dataset ~seed:4 ~n:500 ~d:2 ~len_min:1 ~len_max:4 () in
  let t = Orp.build ~leaf_weight:4 ~k:2 objs in
  Orp.fold_nodes t ~init:() ~f:(fun () v ->
      if v.Kwsc.Transform.num_children > 0 then
        Alcotest.(check bool) "internal pivot O(1)" true (Array.length v.Kwsc.Transform.pivot <= 2)
      else
        (* leaves absorb at most leaf_weight words of objects *)
        Alcotest.(check bool) "leaf pivot bounded" true (Array.length v.Kwsc.Transform.pivot <= 4))

let test_invariant_large_budget () =
  let objs = Helpers.dataset ~seed:5 ~n:600 ~d:2 () in
  let t = build objs in
  Orp.fold_nodes t ~init:() ~f:(fun () v ->
      let cap = float_of_int v.Kwsc.Transform.n_u ** 0.5 in
      Alcotest.(check bool)
        (Printf.sprintf "num_large=%d <= sqrt(N_u)=%g" v.Kwsc.Transform.num_large cap)
        true
        (float_of_int v.Kwsc.Transform.num_large <= cap +. 1e-9))

let test_invariant_materialize_once () =
  let objs = Helpers.dataset ~seed:6 ~n:400 ~d:2 () in
  let t = build objs in
  let seen : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
  Orp.fold_nodes t ~init:() ~f:(fun () v ->
      List.iter
        (fun (w, ids) ->
          Array.iter
            (fun id ->
              let key = (id, w) in
              Hashtbl.replace seen key (1 + Option.value ~default:0 (Hashtbl.find_opt seen key)))
            ids)
        v.Kwsc.Transform.materialized);
  Hashtbl.iter
    (fun (id, w) count ->
      Alcotest.(check bool)
        (Printf.sprintf "(obj %d, kw %d) materialized %d times" id w count)
        true (count = 1))
    seen

(* Lemma 9: every covered node's subtree contributes at least one reported
   object per covered leaf, so covered nodes are few when OUT is small:
   covered <= (OUT + 1) * (max depth + 1). *)
let test_lemma9_covered_bound () =
  let objs = Helpers.dataset ~seed:7 ~n:600 ~d:2 () in
  let t = build objs in
  let depth = (Orp.space_stats t).Kwsc.Stats.max_depth in
  let rng = Prng.create 106 in
  for _ = 1 to 100 do
    let q = Helpers.random_rect rng ~d:2 ~range:1200.0 in
    let ws = Helpers.random_keywords rng ~vocab:40 ~k:2 in
    let ids, st = Orp.query_stats t q ws in
    let out = Array.length ids in
    Alcotest.(check bool)
      (Printf.sprintf "covered=%d <= (OUT=%d + 1) * (depth+1)" st.Kwsc.Stats.covered_nodes out)
      true
      (st.Kwsc.Stats.covered_nodes <= (out + 1) * (depth + 1))
  done

let test_space_linear () =
  (* total words grow ~linearly in N: compare two sizes *)
  let words n =
    let objs = Helpers.dataset ~seed:8 ~n ~d:2 () in
    (Orp.space_stats (build objs)).Kwsc.Stats.total_words
  in
  let w1 = words 500 and w2 = words 2000 in
  Alcotest.(check bool)
    (Printf.sprintf "space %d -> %d stays ~linear" w1 w2)
    true
    (float_of_int w2 <= 6.5 *. float_of_int w1)

let qcheck_orp_oracle =
  QCheck.Test.make ~name:"ORP-KW equals oracle on random instances" ~count:60
    QCheck.(small_int)
    (fun seed ->
      let objs = Helpers.dataset ~seed ~n:120 ~d:2 ~vocab:15 () in
      let t = build objs in
      let rng = Prng.create (seed + 31337) in
      let q = Helpers.random_rect rng ~d:2 ~range:1000.0 in
      let ws = Helpers.random_keywords rng ~vocab:15 ~k:2 in
      Helpers.oracle_rect objs q ws = Orp.query t q ws)

let suite =
  [
    Alcotest.test_case "matches oracle 2d k=2" `Quick test_matches_oracle_2d_k2;
    Alcotest.test_case "matches oracle 2d k=3" `Quick test_matches_oracle_2d_k3;
    Alcotest.test_case "matches oracle 1d" `Quick test_matches_oracle_1d;
    Alcotest.test_case "tie-heavy grid data" `Quick test_ties_grid_data;
    Alcotest.test_case "identical points" `Quick test_identical_points;
    Alcotest.test_case "absent keyword" `Quick test_no_results_keywords;
    Alcotest.test_case "full space = pure keyword search" `Quick test_full_space_equals_pure_keyword_search;
    Alcotest.test_case "output limit" `Quick test_limit;
    Alcotest.test_case "keyword validation" `Quick test_keyword_validation;
    Alcotest.test_case "build validation" `Quick test_build_validation;
    Alcotest.test_case "single object" `Quick test_single_object;
    Alcotest.test_case "invariant: weight halving" `Quick test_invariant_weight_halving;
    Alcotest.test_case "invariant: pivot O(1)" `Quick test_invariant_pivot_constant;
    Alcotest.test_case "invariant: large-keyword budget" `Quick test_invariant_large_budget;
    Alcotest.test_case "invariant: materialize once" `Quick test_invariant_materialize_once;
    Alcotest.test_case "Lemma 9: covered-node bound" `Quick test_lemma9_covered_bound;
    Alcotest.test_case "space stays linear" `Quick test_space_linear;
    QCheck_alcotest.to_alcotest qcheck_orp_oracle;
  ]
