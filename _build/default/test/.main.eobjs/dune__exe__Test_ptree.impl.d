test/test_ptree.ml: Alcotest Array Halfspace Kwsc_geom Kwsc_ptree Kwsc_util List Polytope Printf QCheck QCheck_alcotest Rect Simplex
