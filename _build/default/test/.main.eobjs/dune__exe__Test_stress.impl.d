test/test_stress.ml: Alcotest Array Halfspace Hashtbl Helpers Kwsc Kwsc_geom Kwsc_invindex Kwsc_util List Point Printf Rect
