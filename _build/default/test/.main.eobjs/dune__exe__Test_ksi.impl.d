test/test_ksi.ml: Alcotest Array Helpers Kwsc Kwsc_invindex Kwsc_util Kwsc_workload List Printf QCheck QCheck_alcotest
