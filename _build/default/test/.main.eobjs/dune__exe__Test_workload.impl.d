test/test_workload.ml: Alcotest Array Float Helpers Kwsc_geom Kwsc_invindex Kwsc_util Kwsc_workload
