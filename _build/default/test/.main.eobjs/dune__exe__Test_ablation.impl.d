test/test_ablation.ml: Alcotest Array Helpers Kwsc Kwsc_invindex Kwsc_util Kwsc_workload List Printf
