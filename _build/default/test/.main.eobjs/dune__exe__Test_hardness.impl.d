test/test_hardness.ml: Alcotest Array Kwsc Kwsc_invindex Kwsc_util
