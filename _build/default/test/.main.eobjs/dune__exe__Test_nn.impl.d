test/test_nn.ml: Alcotest Array Helpers Kwsc Kwsc_invindex Kwsc_util Kwsc_workload Printf QCheck QCheck_alcotest
