test/test_integration.ml: Alcotest Array Halfspace Helpers Kwsc Kwsc_geom Kwsc_util Rect Sphere
