test/test_validation.ml: Alcotest Halfspace Helpers Kwsc Kwsc_geom Kwsc_invindex Kwsc_kdtree Kwsc_ptree Kwsc_util Kwsc_workload Point Polytope Rank_space Rect Seidel_lp Sphere
