test/test_kdtree.ml: Alcotest Array Helpers Kwsc_geom Kwsc_kdtree Kwsc_util List Point Printf QCheck QCheck_alcotest Rect
