test/helpers.ml: Alcotest Array Float Hashtbl Kwsc_geom Kwsc_invindex Kwsc_util Kwsc_workload Point Rect
