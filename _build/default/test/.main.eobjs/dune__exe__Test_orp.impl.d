test/test_orp.ml: Alcotest Array Hashtbl Helpers Kwsc Kwsc_geom Kwsc_invindex Kwsc_util List Option Printf QCheck QCheck_alcotest Rect
