test/test_dynamic.ml: Alcotest Array Helpers Kwsc Kwsc_geom Kwsc_invindex Kwsc_util List Printf QCheck QCheck_alcotest Rect
