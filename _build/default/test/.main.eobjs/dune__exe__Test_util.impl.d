test/test_util.ml: Alcotest Array Bitset Gen Heap Kwsc_util List Prng QCheck QCheck_alcotest Stats Zipf
