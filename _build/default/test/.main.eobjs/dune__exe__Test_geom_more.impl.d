test/test_geom_more.ml: Alcotest Array Float Halfspace Kwsc_geom Kwsc_kdtree Kwsc_util Lift Linalg List Point Polytope Printf QCheck QCheck_alcotest Rect Seidel_lp Simplex
