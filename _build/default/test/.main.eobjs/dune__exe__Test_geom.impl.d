test/test_geom.ml: Alcotest Array Fun Halfspace Helpers Kwsc_geom Kwsc_util Lift Linalg List Option Point Polytope QCheck QCheck_alcotest Rank_space Rect Seidel_lp Simplex Sphere
