test/test_lc_sp.ml: Alcotest Array Halfspace Helpers Kwsc Kwsc_geom Kwsc_invindex Kwsc_util List QCheck QCheck_alcotest Simplex
