test/test_csv.ml: Alcotest Array Filename Helpers Kwsc Kwsc_geom Kwsc_invindex Kwsc_util Kwsc_workload Sys
