test/test_srp.ml: Alcotest Array Helpers Kwsc Kwsc_geom Kwsc_invindex Kwsc_util Point QCheck QCheck_alcotest Sphere
