test/test_coverage.ml: Alcotest Array Halfspace Helpers Kwsc Kwsc_geom Kwsc_invindex Kwsc_kdtree Kwsc_ptree Kwsc_util Kwsc_workload List Polytope Printf Rect Simplex
