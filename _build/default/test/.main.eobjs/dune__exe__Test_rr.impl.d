test/test_rr.ml: Alcotest Array Helpers Kwsc Kwsc_geom Kwsc_invindex Kwsc_util Kwsc_workload QCheck QCheck_alcotest Rect
