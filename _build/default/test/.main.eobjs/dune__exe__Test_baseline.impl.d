test/test_baseline.ml: Alcotest Array Halfspace Helpers Kwsc Kwsc_geom Kwsc_util Kwsc_workload List Polytope Printf Sphere
