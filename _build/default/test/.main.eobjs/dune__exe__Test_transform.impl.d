test/test_transform.ml: Alcotest Array Helpers Kwsc Kwsc_invindex Kwsc_util List QCheck QCheck_alcotest
