test/test_invindex.ml: Alcotest Array Helpers Kwsc_invindex Kwsc_util List QCheck QCheck_alcotest
