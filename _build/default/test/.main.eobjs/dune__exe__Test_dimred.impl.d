test/test_dimred.ml: Alcotest Array Hashtbl Helpers Kwsc Kwsc_invindex Kwsc_util List Option Printf QCheck QCheck_alcotest
