test/main.mli:
