bench/micro.ml: Analyze Array Bechamel Benchmark Halfspace Harness Hashtbl Kwsc Kwsc_geom Kwsc_invindex Kwsc_util Kwsc_workload List Measure Printf Rect Sphere Staged Test Time Toolkit
