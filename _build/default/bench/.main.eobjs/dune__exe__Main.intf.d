bench/main.mli:
