bench/main.ml: Array Experiments Harness Kwsc_util List Micro Printf Sys
