bench/harness.ml: Array Kwsc_geom Kwsc_invindex Kwsc_util Kwsc_workload List Printf
