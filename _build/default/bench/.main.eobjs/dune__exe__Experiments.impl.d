bench/experiments.ml: Array Float Halfspace Harness Kwsc Kwsc_geom Kwsc_invindex Kwsc_util Kwsc_workload List Printf Rect Sphere String
