(* Bechamel micro-benchmarks: one Test.make per Table-1 row, measuring the
   steady-state latency of a single representative query on a fixed
   mid-size instance (the scaling story lives in Experiments; this pins the
   absolute per-query cost). *)

open Bechamel
open Kwsc_geom
module Prng = Kwsc_util.Prng
module H = Harness

let n_micro () = if !H.quick then 2048 else 8192

let tests () =
  let n = n_micro () in
  let rng = Prng.create 31415 in
  let objs2, q2, kws2 = H.poison_workload ~rng ~n ~d:2 ~k:2 ~range:1000.0 in
  let objs3, q3, kws3 = H.poison_workload ~rng ~n ~d:3 ~k:2 ~range:1000.0 in
  let orp = Kwsc.Orp_kw.build ~k:2 objs2 in
  let dimred = Kwsc.Dimred.build ~k:2 objs3 in
  let lc = Kwsc.Lc_kw.build ~k:2 objs2 in
  let srp = Kwsc.Srp_kw.build ~k:2 objs2 in
  let sphere = Sphere.make [| 200.0; 200.0 |] 120.0 in
  let rects =
    Array.init (n / 2) (fun i ->
        let (p, doc) = objs2.(i) in
        (Rect.make p (Array.map (fun x -> x +. 5.0) p), doc))
  in
  let rr = Kwsc.Rr_kw.build ~k:2 rects in
  let nn_objs = Array.init n (fun i ->
      let p = [| Prng.float rng 1000.0; Prng.float rng 1000.0 |] in
      let doc =
        if i mod 2 = 0 then Kwsc_invindex.Doc.of_list [ 1; 2 ]
        else Kwsc_invindex.Doc.of_list [ 3 ]
      in
      (p, doc))
  in
  let linf = Kwsc.Linf_nn_kw.build ~k:2 nn_objs in
  let ipts = Kwsc_workload.Gen.points_int ~rng ~n ~d:2 ~max_coord:1023 in
  let iobjs = Array.init n (fun i -> (ipts.(i), snd nn_objs.(i))) in
  let l2 = Kwsc.L2_nn_kw.build ~k:2 iobjs in
  let ksi_docs = Array.map snd objs2 in
  let ksi = Kwsc.Ksi.of_docs ~k:2 ksi_docs in
  let hs = List.filteri (fun i _ -> i < 2) (Halfspace.of_rect q2) in
  [
    Test.make ~name:"T1.1 orp-kw d=2 rect query"
      (Staged.stage (fun () -> Kwsc.Orp_kw.query orp q2 kws2));
    Test.make ~name:"T1.2 dimred d=3 rect query"
      (Staged.stage (fun () -> Kwsc.Dimred.query dimred q3 kws3));
    Test.make ~name:"T1.3 lc-kw rect-as-constraints"
      (Staged.stage (fun () -> Kwsc.Lc_kw.query_rect lc q2 kws2));
    Test.make ~name:"T1.4 rr-kw rect-intersection query"
      (Staged.stage (fun () -> Kwsc.Rr_kw.query rr q2 kws2));
    Test.make ~name:"T1.5 linf-nn t=8"
      (Staged.stage (fun () -> Kwsc.Linf_nn_kw.query linf [| 500.0; 500.0 |] ~t':8 [| 1; 2 |]));
    Test.make ~name:"T1.6 lc-kw two constraints"
      (Staged.stage (fun () -> Kwsc.Lc_kw.query lc hs kws2));
    Test.make ~name:"T1.8 srp-kw sphere query"
      (Staged.stage (fun () -> Kwsc.Srp_kw.query srp sphere kws2));
    Test.make ~name:"T1.10 l2-nn t=8"
      (Staged.stage (fun () -> Kwsc.L2_nn_kw.query l2 [| 512.0; 512.0 |] ~t':8 [| 1; 2 |]));
    Test.make ~name:"H1 ksi emptiness probe"
      (Staged.stage (fun () -> Kwsc.Ksi.query ~limit:1 ksi kws2));
  ]

let run () =
  Printf.printf "\n==== Bechamel micro-benchmarks (N ~ %d per structure) ====\n" (n_micro ());
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"kwsc" (tests ())) in
  let res = Analyze.all ols instance raw in
  let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) res [] in
  List.iter
    (fun (name, r) ->
      match Analyze.OLS.estimates r with
      | Some (est :: _) -> Printf.printf "  %-42s %12.1f ns/query\n" name est
      | _ -> Printf.printf "  %-42s (no estimate)\n" name)
    (List.sort compare rows)
