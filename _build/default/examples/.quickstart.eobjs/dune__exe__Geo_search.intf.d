examples/geo_search.mli:
