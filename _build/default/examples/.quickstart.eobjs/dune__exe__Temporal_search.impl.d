examples/temporal_search.ml: Array Kwsc Kwsc_geom Kwsc_invindex Kwsc_util List Printf Rect String
