examples/set_intersection.ml: Array Kwsc Kwsc_invindex Kwsc_util Kwsc_workload List Printf
