examples/quickstart.mli:
