examples/quickstart.ml: Array Halfspace Kwsc Kwsc_geom Kwsc_invindex Kwsc_util Kwsc_workload List Printf Rect String
