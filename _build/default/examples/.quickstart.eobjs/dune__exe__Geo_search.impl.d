examples/geo_search.ml: Array Kwsc Kwsc_geom Kwsc_invindex Kwsc_util Kwsc_workload List Printf Sphere String
