examples/temporal_search.mli:
