examples/streaming_updates.ml: Array Kwsc Kwsc_geom Kwsc_util Kwsc_workload List Printf Rect String
