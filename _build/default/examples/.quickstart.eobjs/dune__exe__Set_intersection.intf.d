examples/set_intersection.mli:
