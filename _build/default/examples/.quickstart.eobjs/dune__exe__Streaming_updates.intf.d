examples/streaming_updates.mli:
