(* Geographic keyword search: "find hotels within 1km of an address with the
   requested amenities" (SRP-KW, Corollary 6) and "the t nearest matching
   hotels" (L∞NN-KW / L2NN-KW, Corollaries 4 and 7). *)

open Kwsc_geom
module Hotels = Kwsc_workload.Hotels
module Prng = Kwsc_util.Prng

let () =
  let rng = Prng.create 99 in
  let n = 8000 in
  (* city-like clustered coordinates in a 20km x 20km grid (meters) *)
  let pts =
    Kwsc_workload.Gen.points_clustered ~rng ~n ~d:2 ~clusters:12 ~spread:1500.0 ~range:20000.0
  in
  let hotels = Hotels.generate ~rng ~n in
  let objs = Array.init n (fun i -> (pts.(i), hotels.(i).Hotels.features)) in
  let kws = [| Hotels.tag_id "pool"; Hotels.tag_id "wifi" |] in
  Printf.printf "Indexed %d hotels with clustered coordinates.\n" n;
  Printf.printf "Amenities wanted: pool, wifi (k = 2)\n\n";

  (* --- boolean range query with keywords (SRP-KW) --------------------- *)
  let srp = Kwsc.Srp_kw.build ~k:2 objs in
  let address = [| 10000.0; 10000.0 |] in
  List.iter
    (fun radius ->
      let ids = Kwsc.Srp_kw.query srp (Sphere.make address radius) kws in
      Printf.printf "within %5.0fm of the address: %4d matching hotels\n" radius
        (Array.length ids))
    [ 500.0; 1000.0; 2000.0; 5000.0 ];

  (* --- t nearest matching hotels under L-infinity --------------------- *)
  let nn = Kwsc.Linf_nn_kw.build ~k:2 objs in
  let top, probes = Kwsc.Linf_nn_kw.query_count nn address ~t':5 kws in
  Printf.printf "\n5 nearest (L-infinity) matching hotels (%d index probes):\n" probes;
  Array.iter
    (fun (id, dist) ->
      Printf.printf "  %s at %.0fm  [%s]\n" hotels.(id).Hotels.name dist
        (String.concat ", "
           (List.map Hotels.tag_name
              (Array.to_list (Kwsc_invindex.Doc.to_array hotels.(id).Hotels.features)))))
    top;

  (* --- exact Euclidean t-NN on integer coordinates (Corollary 7) ------ *)
  let ipts = Kwsc_workload.Gen.points_int ~rng ~n ~d:2 ~max_coord:20000 in
  let iobjs = Array.init n (fun i -> (ipts.(i), hotels.(i).Hotels.features)) in
  let l2 = Kwsc.L2_nn_kw.build ~k:2 iobjs in
  let top2, probes2 = Kwsc.L2_nn_kw.query_count l2 [| 10000.0; 10000.0 |] ~t':5 kws in
  Printf.printf "\n5 nearest (Euclidean, integer grid) matching hotels (%d probes):\n" probes2;
  Array.iter (fun (id, dist) -> Printf.printf "  %s at %.1fm\n" hotels.(id).Hotels.name dist) top2
