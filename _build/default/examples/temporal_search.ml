(* Temporal keyword search (RR-KW with d = 1, citing Anand et al. [7] in the
   paper): each document carries a lifespan interval; a query asks for the
   documents alive at some point of a time window that contain all supplied
   keywords. *)

open Kwsc_geom
module Doc = Kwsc_invindex.Doc
module Prng = Kwsc_util.Prng

(* A tiny newswire: versioned articles with validity intervals (days). *)
let vocabulary =
  [| "election"; "budget"; "storm"; "transit"; "housing"; "energy"; "health"; "sports" |]

let kw name =
  let found = ref 0 in
  Array.iteri (fun i t -> if t = name then found := i + 1) vocabulary;
  assert (!found > 0);
  !found

let () =
  let rng = Prng.create 7 in
  let n = 20000 in
  let articles =
    Array.init n (fun _ ->
        let start = Prng.float rng 3650.0 in
        let span = 1.0 +. Prng.float rng 90.0 in
        let topics =
          List.sort_uniq compare
            (List.init (1 + Prng.int rng 3) (fun _ -> 1 + Prng.int rng (Array.length vocabulary)))
        in
        (Rect.make [| start |] [| start +. span |], Doc.of_list topics))
  in
  let idx = Kwsc.Rr_kw.build ~k:2 articles in
  Printf.printf "Indexed %d versioned articles over a ten-year window (N = %d).\n\n" n
    (Kwsc.Rr_kw.input_size idx);

  let queries =
    [
      ("days 1000-1014", 1000.0, 1014.0, [ "election"; "budget" ]);
      ("days 2500-2501", 2500.0, 2501.0, [ "storm"; "transit" ]);
      ("whole archive", 0.0, 4000.0, [ "housing"; "energy" ]);
    ]
  in
  List.iter
    (fun (label, a, b, topics) ->
      let ws = Array.of_list (List.map kw topics) in
      let window = Rect.make [| a |] [| b |] in
      let ids, st = Kwsc.Rr_kw.query_stats idx window ws in
      Printf.printf "%-16s topics {%s}: %5d alive articles (index examined %d objects)\n" label
        (String.concat ", " topics) (Array.length ids) (Kwsc.Stats.work st))
    queries;

  (* spot-check one query against a scan *)
  let ws = [| kw "election"; kw "budget" |] in
  let window = Rect.make [| 1000.0 |] [| 1014.0 |] in
  let expected = ref 0 in
  Array.iter
    (fun (r, doc) -> if Rect.intersects r window && Doc.mem_all doc ws then incr expected)
    articles;
  let got = Array.length (Kwsc.Rr_kw.query idx window ws) in
  Printf.printf "\nScan cross-check for the first query: %d (index) = %d (scan)\n" got !expected;
  assert (got = !expected)
