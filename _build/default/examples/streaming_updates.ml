(* Streaming updates: the Bentley–Saxe dynamization (lib/core/dynamic.ml)
   maintaining an ORP-KW index under a live feed of hotel openings and
   closures — the natural follow-up the static paper leaves open. *)

open Kwsc_geom
module Hotels = Kwsc_workload.Hotels
module Dyn = Kwsc.Dynamic
module Prng = Kwsc_util.Prng

let () =
  let rng = Prng.create 2024 in
  let t = Dyn.create ~k:2 ~d:2 () in
  let kws = [| Hotels.tag_id "pool"; Hotels.tag_id "wifi" |] in
  let q = Rect.make [| 100.0; 8.0 |] [| 250.0; 10.0 |] in
  Printf.printf
    "Standing query: price in [100, 250], rating >= 8, amenities {pool, wifi}\n\n";

  let open_ids = ref [] in
  let batch = 2000 in
  for epoch = 1 to 5 do
    (* a batch of new hotels opens *)
    let hotels = Hotels.generate ~rng ~n:batch in
    Array.iter
      (fun h ->
        let id = Dyn.insert t ([| h.Hotels.price; h.Hotels.rating |], h.Hotels.features) in
        open_ids := id :: !open_ids)
      hotels;
    (* ~10% of the currently open hotels close *)
    let victims, survivors =
      List.partition (fun _ -> Prng.int rng 10 = 0) !open_ids
    in
    List.iter (Dyn.delete t) victims;
    open_ids := survivors;
    let matches = Dyn.query t q kws in
    Printf.printf
      "epoch %d: +%d opened, -%d closed, %6d live  ->  %3d matches   (buckets: %s)\n" epoch
      batch (List.length victims) (Dyn.size t) (Array.length matches)
      (String.concat "," (List.map string_of_int (Dyn.buckets t)))
  done;

  (* consistency spot check against a scan over the live set *)
  let live = Dyn.query t (Rect.full 2) [| Hotels.tag_id "pool"; Hotels.tag_id "wifi" |] in
  Printf.printf "\n%d live hotels currently offer pool+wifi; " (Array.length live);
  Printf.printf "final standing-query answer: %d hotels\n" (Array.length (Dyn.query t q kws))
