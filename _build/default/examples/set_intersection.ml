(* k-Set Intersection through the framework (Section 1.2): pure keyword
   search IS k-SI. This example builds the index on an adversarial instance
   where both naive strategies must scan whole sets, and shows the
   transformed index answering emptiness with sublinear work. It also runs
   the Appendix-G reduction that answers k-SI using only an L∞NN-KW index. *)

module Ksi = Kwsc.Ksi
module Ksi_instance = Kwsc_invindex.Ksi_instance
module Prng = Kwsc_util.Prng

let () =
  let rng = Prng.create 1 in

  (* Adversarial: m pairwise-disjoint sets; every query has OUT = 0 *)
  let sets = Kwsc_workload.Gen.ksi_disjoint_heavy ~rng ~m:16 ~set_size:4000 in
  let inst = Ksi_instance.create sets in
  let t, _elements = Ksi.of_instance ~k:2 inst in
  Printf.printf "Adversarial k-SI: 16 disjoint sets of 4000 elements (N = %d).\n"
    (Ksi.input_size t);
  let _, st = Ksi.query_stats ~limit:1 t [| 3; 11 |] in
  Printf.printf "emptiness(S3, S11) examined %d objects out of N = %d  -> %s\n\n"
    (Kwsc.Stats.work st) (Ksi.input_size t)
    (if Ksi.emptiness t [| 3; 11 |] then "empty (correct)" else "non-empty (WRONG)");

  (* Realistic: overlapping Zipfian sets *)
  let m = 40 in
  let sets2 =
    Array.init m (fun _ -> Array.init (500 + Prng.int rng 3000) (fun _ -> Prng.int rng 20000))
  in
  let inst2 = Ksi_instance.create sets2 in
  let t2, elements2 = Ksi.of_instance ~k:2 inst2 in
  Printf.printf "Overlapping instance: %d sets, N = %d.\n" m (Ksi.input_size t2);
  List.iter
    (fun (a, b) ->
      let ids, st = Ksi.query_stats t2 [| a; b |] in
      Printf.printf "  |S%-2d cap S%-2d| = %4d   (examined %5d objects)\n" a b (Array.length ids)
        (Kwsc.Stats.work st))
    [ (1, 2); (5, 17); (23, 38) ];

  (* cross-check one pair against the naive intersection *)
  let got = Array.map (fun id -> elements2.(id)) (Ksi.query t2 [| 5; 17 |]) in
  Array.sort compare got;
  assert (got = Ksi_instance.reporting inst2 [| 5; 17 |]);
  Printf.printf "  cross-check vs naive intersection: OK\n\n";

  (* Appendix G: k-SI answered by an L∞NN-KW index with doubling t *)
  let small = Ksi_instance.create (Array.init 6 (fun _ -> Array.init 300 (fun _ -> Prng.int rng 900))) in
  let via_nn = Kwsc.Hardness.ksi_via_linf_nn ~k:2 small [| 2; 5 |] in
  Printf.printf "Appendix-G reduction (k-SI via L-inf NN doubling): |S2 cap S5| = %d, %s\n"
    (Array.length via_nn)
    (if via_nn = Ksi_instance.reporting small [| 2; 5 |] then "matches naive" else "MISMATCH");

  (* Lemma 8 arithmetic: the exponent a faster index would imply *)
  Printf.printf "\nLemma 8: an index with query time O(N^(1-1/k) OUT^(1/k - eps)) would give\n";
  List.iter
    (fun (k, eps) ->
      Printf.printf "  k=%d eps=%.2f -> O(N^(1-delta) + OUT) with delta = %.4f\n" k eps
        (Kwsc.Hardness.lemma8_delta ~k ~eps))
    [ (2, 0.05); (2, 0.25); (3, 0.10); (4, 0.10) ]
