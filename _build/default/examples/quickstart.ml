(* Quickstart: the paper's introductory Hotel(price, rating, Doc) scenario.

   Two queries over the same data, mirroring Section 1:
     C1  price in [100, 200] and rating >= 8     (ORP-KW, Theorem 1)
     C2  c1*price + c2*(10 - rating) <= c3       (LC-KW, Theorem 5)
   both conjoined with keywords {pool, free-parking, pet-friendly}. *)

open Kwsc_geom
module Hotels = Kwsc_workload.Hotels

let () =
  let rng = Kwsc_util.Prng.create 2023 in
  let hotels = Hotels.generate ~rng ~n:5000 in
  let objs = Hotels.to_objects hotels in
  Printf.printf "Indexed %d hotels (input size N = %d keywords total).\n\n"
    (Array.length hotels)
    (Array.fold_left (fun acc h -> acc + Kwsc_invindex.Doc.size h.Hotels.features) 0 hotels);

  let kws =
    [| Hotels.tag_id "pool"; Hotels.tag_id "free-parking"; Hotels.tag_id "pet-friendly" |]
  in
  Printf.printf "Keywords: pool, free-parking, pet-friendly (k = 3)\n\n";

  (* --- C1: orthogonal range + keywords (Theorem 1) ------------------- *)
  let orp = Kwsc.Orp_kw.build ~k:3 objs in
  let c1 = Rect.make [| 100.0; 8.0 |] [| 200.0; 10.0 |] in
  let ids, st = Kwsc.Orp_kw.query_stats orp c1 kws in
  Printf.printf "C1: price in [100, 200] and rating >= 8\n";
  Printf.printf "    %d hotels match; index examined %d objects (N = %d)\n" (Array.length ids)
    (Kwsc.Stats.work st) (Kwsc.Orp_kw.input_size orp);
  Array.iteri
    (fun i id ->
      if i < 5 then
        let h = hotels.(id) in
        Printf.printf "      %s  $%.0f  rating %.1f  [%s]\n" h.Hotels.name h.Hotels.price
          h.Hotels.rating
          (String.concat ", "
             (List.map Hotels.tag_name (Array.to_list (Kwsc_invindex.Doc.to_array h.Hotels.features)))))
    ids;
  if Array.length ids > 5 then Printf.printf "      ... and %d more\n" (Array.length ids - 5);

  (* --- C2: linear constraint + keywords (Theorem 5) ------------------ *)
  let lc = Kwsc.Lc_kw.build ~k:3 objs in
  (* 1.0*price + 40*(10 - rating) <= 260  <=>  price - 40*rating <= -140 *)
  let c2 = Halfspace.make [| 1.0; -40.0 |] (-140.0) in
  let ids2 = Kwsc.Lc_kw.query lc [ c2 ] kws in
  Printf.printf "\nC2: price + 40*(10 - rating) <= 260 (cheap AND well-rated trade-off)\n";
  Printf.printf "    %d hotels match\n" (Array.length ids2);
  Array.iteri
    (fun i id ->
      if i < 5 then
        let h = hotels.(id) in
        Printf.printf "      %s  $%.0f  rating %.1f\n" h.Hotels.name h.Hotels.price h.Hotels.rating)
    ids2;

  (* --- the naive baselines on C1, for contrast ------------------------ *)
  let b = Kwsc.Baseline.build objs in
  let r1, examined_structured = Kwsc.Baseline.rect_structured b c1 kws in
  let r2, examined_keywords = Kwsc.Baseline.rect_keywords b c1 kws in
  assert (r1 = ids && r2 = ids);
  Printf.printf "\nNaive baselines on C1 (same answers, more candidates examined):\n";
  Printf.printf "    structured-only examined %d candidates\n" examined_structured;
  Printf.printf "    keywords-only  examined %d candidates\n" examined_keywords;
  Printf.printf "    transformed index examined %d\n" (Kwsc.Stats.work st)
