(** Wall-clock timing for the scaling harness (Bechamel handles the
    micro-benchmarks; this is for the coarse N-sweeps). *)

val now : unit -> float
(** Monotonic-ish wall-clock time in seconds. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result with the elapsed seconds. *)

val time_median : ?repeats:int -> (unit -> 'a) -> 'a * float
(** [time_median ~repeats f] runs [f] [repeats] times (default 5) and returns
    the last result with the median elapsed time — robust to GC noise. *)
