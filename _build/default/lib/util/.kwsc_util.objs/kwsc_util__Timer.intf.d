lib/util/timer.mli:
