lib/util/sorted.mli:
