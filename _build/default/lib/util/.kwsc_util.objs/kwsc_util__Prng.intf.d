lib/util/prng.mli:
