lib/util/bitset.mli:
