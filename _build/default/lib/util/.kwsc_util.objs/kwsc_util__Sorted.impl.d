lib/util/sorted.ml: Array Float
