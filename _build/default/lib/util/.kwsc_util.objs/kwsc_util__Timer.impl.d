lib/util/timer.ml: Array Stats Unix
