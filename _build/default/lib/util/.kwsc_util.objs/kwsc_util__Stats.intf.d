lib/util/stats.mli:
