lib/util/heap.mli:
