(** Small statistics toolbox for the benchmark harness.

    The central tool is [fit_exponent]: the paper's Table 1 claims query-time
    bounds of the form [c * N^alpha]; the harness measures times over a
    geometric sweep of [N] and fits [alpha] by least squares on the log-log
    points. *)

val mean : float array -> float
(** Arithmetic mean. @raise Invalid_argument on empty input. *)

val stddev : float array -> float
(** Population standard deviation. @raise Invalid_argument on empty input. *)

val median : float array -> float
(** Median (does not mutate the input). @raise Invalid_argument on empty. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0,100\]], nearest-rank method. *)

val linear_fit : (float * float) array -> float * float
(** [linear_fit pts] is [(slope, intercept)] of the least-squares line.
    @raise Invalid_argument if fewer than two points. *)

val fit_exponent : (float * float) array -> float
(** [fit_exponent pts] where [pts] are [(x, y)] with positive entries:
    the least-squares slope of [log y] against [log x], i.e. the estimate of
    [alpha] in [y ~ c * x^alpha]. *)

val r_squared : (float * float) array -> float
(** Coefficient of determination of the linear fit. *)
