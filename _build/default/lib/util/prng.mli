(** Deterministic pseudo-random number generator (splitmix64).

    All workloads and randomized structures in this repository draw from this
    generator so that every experiment and test is reproducible from a seed. *)

type t

val create : int -> t
(** [create seed] is a fresh generator. Equal seeds give equal streams. *)

val copy : t -> t
(** Independent copy with the same current state. *)

val next64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. @raise Invalid_argument if
    [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
