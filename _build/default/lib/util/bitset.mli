(** Fixed-capacity bit set backed by [Bytes].

    Used by the transformation framework (Section 3.2 of the paper) to store,
    for every internal node [u] and child [v], the k-dimensional emptiness
    array over the large keywords of [u]: bit [i] answers "is the
    intersection of the active sets of the i-th combination empty?". *)

type t

val create : int -> t
(** [create n] is a bit set with [n] bits, all cleared.
    @raise Invalid_argument if [n < 0]. *)

val length : t -> int
(** Number of bits. *)

val set : t -> int -> unit
(** [set b i] sets bit [i]. @raise Invalid_argument on out-of-range. *)

val clear : t -> int -> unit
(** [clear b i] clears bit [i]. @raise Invalid_argument on out-of-range. *)

val get : t -> int -> bool
(** [get b i] is the value of bit [i]. @raise Invalid_argument on
    out-of-range. *)

val popcount : t -> int
(** Number of set bits. *)

val words : t -> int
(** Storage footprint in 64-bit words (for space accounting). *)
