type 'a t = { mutable keys : float array; mutable vals : 'a array; mutable n : int }

let create () = { keys = Array.make 16 0.0; vals = [||]; n = 0 }
let size t = t.n
let is_empty t = t.n = 0

let grow t v =
  if t.n = 0 && Array.length t.vals = 0 then begin
    t.vals <- Array.make (Array.length t.keys) v
  end
  else if t.n = Array.length t.keys then begin
    let nk = Array.make (2 * t.n) 0.0 and nv = Array.make (2 * t.n) t.vals.(0) in
    Array.blit t.keys 0 nk 0 t.n;
    Array.blit t.vals 0 nv 0 t.n;
    t.keys <- nk;
    t.vals <- nv
  end

let swap t i j =
  let k = t.keys.(i) in
  t.keys.(i) <- t.keys.(j);
  t.keys.(j) <- k;
  let v = t.vals.(i) in
  t.vals.(i) <- t.vals.(j);
  t.vals.(j) <- v

let push t key v =
  grow t v;
  t.keys.(t.n) <- key;
  t.vals.(t.n) <- v;
  let i = ref t.n in
  t.n <- t.n + 1;
  while !i > 0 && t.keys.((!i - 1) / 2) < t.keys.(!i) do
    swap t !i ((!i - 1) / 2);
    i := (!i - 1) / 2
  done

let peek t = if t.n = 0 then None else Some (t.keys.(0), t.vals.(0))

let pop t =
  if t.n = 0 then None
  else begin
    let top = (t.keys.(0), t.vals.(0)) in
    t.n <- t.n - 1;
    if t.n > 0 then begin
      t.keys.(0) <- t.keys.(t.n);
      t.vals.(0) <- t.vals.(t.n);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let largest = ref !i in
        if l < t.n && t.keys.(l) > t.keys.(!largest) then largest := l;
        if r < t.n && t.keys.(r) > t.keys.(!largest) then largest := r;
        if !largest <> !i then begin
          swap t !i !largest;
          i := !largest
        end
        else continue := false
      done
    end;
    Some top
  end

let to_list t = List.init t.n (fun i -> (t.keys.(i), t.vals.(i)))
