let now () = Unix.gettimeofday ()

let time f =
  let t0 = now () in
  let r = f () in
  (r, now () -. t0)

let time_median ?(repeats = 5) f =
  if repeats <= 0 then invalid_arg "Timer.time_median: repeats must be positive";
  let times = Array.make repeats 0.0 in
  let result = ref None in
  for i = 0 to repeats - 1 do
    let r, t = time f in
    result := Some r;
    times.(i) <- t
  done;
  match !result with
  | None -> assert false
  | Some r -> (r, Stats.median times)
