(** Binary max-heap keyed by floats; used for bounded k-nearest-neighbor
    search (keep the t best candidates, peek the current worst). *)

type 'a t

val create : unit -> 'a t
val size : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> float -> 'a -> unit
(** Insert with key. *)

val peek : 'a t -> (float * 'a) option
(** Largest key, without removing. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the largest key. *)

val to_list : 'a t -> (float * 'a) list
(** All entries, unordered. *)
