lib/kdtree/kd.ml: Array Float Kwsc_util Point Rect
