lib/kdtree/kd.mli: Point Rect
