(** Synthetic workloads. The paper is purely theoretical, so the experiments
    need data whose parameters (skew, selectivity, adversarial structure) are
    controlled; every generator is deterministic given the [Prng.t]. *)

open Kwsc_geom

val docs :
  rng:Kwsc_util.Prng.t ->
  n:int ->
  vocab:int ->
  theta:float ->
  len_min:int ->
  len_max:int ->
  Kwsc_invindex.Doc.t array
(** [docs ~rng ~n ~vocab ~theta ~len_min ~len_max]: [n] documents whose
    keywords are drawn Zipf([theta]) from [\[1, vocab\]]; document sizes
    uniform in [\[len_min, len_max\]] (distinct keywords, so a very small
    vocabulary may cap the realized size). *)

val points_uniform : rng:Kwsc_util.Prng.t -> n:int -> d:int -> range:float -> Point.t array
(** [n] points uniform in [\[0, range\]^d]. *)

val points_clustered :
  rng:Kwsc_util.Prng.t -> n:int -> d:int -> clusters:int -> spread:float -> range:float -> Point.t array
(** Gaussian-ish clusters: centers uniform, offsets uniform in a
    [spread]-sized box — models geographic entity clustering. *)

val points_int : rng:Kwsc_util.Prng.t -> n:int -> d:int -> max_coord:int -> Point.t array
(** Integer-coordinate points in [\[0, max_coord\]^d] (the N^d domain of the
    L2NN-KW problem). *)

val rect_query : rng:Kwsc_util.Prng.t -> d:int -> range:float -> side:float -> Rect.t
(** Random axis-parallel query rectangle of side length [side] whose corner
    is uniform in the data range. *)

val keywords_by_rank : Kwsc_invindex.Inverted.t -> rank:int -> k:int -> int array option
(** [k] distinct keywords whose frequency ranks start at [rank] (1 = most
    frequent); [None] if the vocabulary is too small. Lets experiments pick
    "frequent" vs "rare" query keywords deliberately. *)

val ksi_disjoint_heavy : rng:Kwsc_util.Prng.t -> m:int -> set_size:int -> int array array
(** Adversarial k-SI input: [m] pairwise-disjoint sets of [set_size]
    elements each. Any k-SI query has OUT = 0 while both naive strategies
    scan Θ(set_size); this is the regime of the strong k-set-disjointness
    conjecture. *)

val poison :
  rng:Kwsc_util.Prng.t ->
  n:int ->
  d:int ->
  range:float ->
  kws:int array ->
  (Point.t * Kwsc_invindex.Doc.t) array * Rect.t
(** The Section-1 motivating workload: returns objects and a rectangle such
    that roughly n/2 objects contain all of [kws] but lie outside the
    rectangle, and n/2 lie inside the rectangle but miss the keywords —
    both naive baselines scan Θ(n) candidates, the true answer is empty.
    A filler keyword (max of [kws] + 1) pads documents so every document is
    non-empty and distinct from [kws]. *)

val topical :
  rng:Kwsc_util.Prng.t ->
  n:int ->
  d:int ->
  topics:int ->
  vocab_per_topic:int ->
  correlation:float ->
  range:float ->
  (Point.t * Kwsc_invindex.Doc.t) array
(** Correlated spatial-keyword data, the shape real geo-text corpora have:
    each of [topics] topics owns a spatial cluster center and a keyword
    sub-vocabulary of size [vocab_per_topic]. An object picks a topic, draws
    its location near the topic's center, and draws keywords from the
    topic's sub-vocabulary with probability [correlation] (from the global
    vocabulary otherwise). [correlation] = 0 is uncorrelated;
    1 is fully topic-locked. *)
