open Kwsc_geom

let tags =
  [|
    "pool"; "free-parking"; "pet-friendly"; "wifi"; "breakfast"; "gym"; "spa"; "bar";
    "airport-shuttle"; "sea-view"; "family-room"; "ev-charger"; "laundry"; "rooftop";
    "kitchenette"; "casino"; "golf"; "hot-tub"; "bike-rental"; "concierge";
  |]

let tag_id name =
  let found = ref 0 in
  Array.iteri (fun i t -> if t = name then found := i + 1) tags;
  if !found = 0 then raise Not_found else !found

let tag_name id =
  if id < 1 || id > Array.length tags then invalid_arg "Hotels.tag_name: id out of range";
  tags.(id - 1)

type hotel = { name : string; price : float; rating : float; features : Kwsc_invindex.Doc.t }

let generate ~rng ~n =
  let z = Kwsc_util.Zipf.create ~n:(Array.length tags) ~theta:0.8 in
  Array.init n (fun i ->
      let target = 2 + Kwsc_util.Prng.int rng 5 in
      let seen = Hashtbl.create target in
      let attempts = ref 0 in
      while Hashtbl.length seen < target && !attempts < 200 do
        incr attempts;
        Hashtbl.replace seen (Kwsc_util.Zipf.sample z rng) ()
      done;
      {
        name = Printf.sprintf "hotel-%04d" i;
        price = 50.0 +. Kwsc_util.Prng.float rng 500.0;
        rating = Kwsc_util.Prng.float rng 10.0;
        features = Kwsc_invindex.Doc.of_list (Hashtbl.fold (fun w () acc -> w :: acc) seen []);
      })

let to_objects hotels =
  Array.map (fun h -> (([| h.price; h.rating |] : Point.t), h.features)) hotels
