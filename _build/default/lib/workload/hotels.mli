(** The running example of the paper's introduction: a relation
    Hotel(price, rating, Doc) where Doc holds feature tags such as
    'pool' and 'pet-friendly'. Generates hotels as 2-D points
    (price, rating) with tag documents, and exposes the tag vocabulary by
    name so examples read like the paper. *)

open Kwsc_geom

val tags : string array
(** The named tag vocabulary; tag id [i+1] is [tags.(i)]. *)

val tag_id : string -> int
(** @raise Not_found for an unknown tag name. *)

val tag_name : int -> string
(** @raise Invalid_argument for an out-of-range id. *)

type hotel = { name : string; price : float; rating : float; features : Kwsc_invindex.Doc.t }

val generate : rng:Kwsc_util.Prng.t -> n:int -> hotel array
(** [n] hotels: price in [\[50, 550\]], rating in [\[0, 10\]], 2–6 Zipfian
    tags each. *)

val to_objects : hotel array -> (Point.t * Kwsc_invindex.Doc.t) array
(** Points are (price, rating) pairs — the attribute layout of conditions
    C1/C2 in the introduction. *)
