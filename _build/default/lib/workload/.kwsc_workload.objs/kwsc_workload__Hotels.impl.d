lib/workload/hotels.ml: Array Hashtbl Kwsc_geom Kwsc_invindex Kwsc_util Point Printf
