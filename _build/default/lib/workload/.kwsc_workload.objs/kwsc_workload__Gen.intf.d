lib/workload/gen.mli: Kwsc_geom Kwsc_invindex Kwsc_util Point Rect
