lib/workload/hotels.mli: Kwsc_geom Kwsc_invindex Kwsc_util Point
