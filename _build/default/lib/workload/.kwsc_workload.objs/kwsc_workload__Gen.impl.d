lib/workload/gen.ml: Array Float Hashtbl Kwsc_geom Kwsc_invindex Kwsc_util Rect
