lib/workload/csv_io.mli: Kwsc_geom Kwsc_invindex Point
