lib/workload/csv_io.ml: Array Fun Kwsc_invindex List Printf String
