let point p =
  let d = Array.length p in
  let out = Array.make (d + 1) 0.0 in
  Array.blit p 0 out 0 d;
  let s = ref 0.0 in
  Array.iter (fun x -> s := !s +. (x *. x)) p;
  out.(d) <- !s;
  out

let sphere (b : Sphere.t) =
  let c = b.Sphere.center in
  let d = Array.length c in
  let coeffs = Array.make (d + 1) 0.0 in
  for i = 0 to d - 1 do
    coeffs.(i) <- -2.0 *. c.(i)
  done;
  coeffs.(d) <- 1.0;
  let norm2 = Linalg.dot c c in
  Halfspace.make coeffs ((b.Sphere.radius *. b.Sphere.radius) -. norm2)
