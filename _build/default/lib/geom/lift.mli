(** The lifting technique of Corollary 6 (Aurenhammer [8]): map R^d onto the
    paraboloid in R^{d+1}. A d-sphere becomes a single halfspace in R^{d+1},
    so SRP-KW reduces to (d+1)-dimensional LC-KW with one constraint. *)

val point : Point.t -> Point.t
(** [point p] appends [sum_i p_i^2] as coordinate d+1. *)

val sphere : Sphere.t -> Halfspace.t
(** [sphere b] is the halfspace [h] in R^{d+1} with: [p] is inside [b] iff
    [point p] satisfies [h]. Derivation: |p - c|^2 <= r^2 unfolds to
    [-2 c . p + (sum p_i^2) <= r^2 - |c|^2]. *)
