type t = { coeffs : float array; bound : float }

let make coeffs bound = { coeffs = Array.copy coeffs; bound }
let dim h = Array.length h.coeffs

let eval h p =
  if Array.length p <> dim h then invalid_arg "Halfspace.eval: dimension mismatch";
  Linalg.dot h.coeffs p -. h.bound

let satisfies h p = eval h p <= 0.0
let complement_open h = { coeffs = Array.map (fun c -> -.c) h.coeffs; bound = -.h.bound }

let of_rect (r : Rect.t) =
  let d = Rect.dim r in
  let cs = ref [] in
  for i = d - 1 downto 0 do
    if r.Rect.hi.(i) < infinity then begin
      let c = Array.make d 0.0 in
      c.(i) <- 1.0;
      cs := { coeffs = c; bound = r.Rect.hi.(i) } :: !cs
    end;
    if r.Rect.lo.(i) > neg_infinity then begin
      let c = Array.make d 0.0 in
      c.(i) <- -1.0;
      cs := { coeffs = c; bound = -.r.Rect.lo.(i) } :: !cs
    end
  done;
  !cs

let to_string h =
  let terms =
    List.init (dim h) (fun i -> Printf.sprintf "%+gx%d" h.coeffs.(i) (i + 1))
  in
  String.concat " " terms ^ Printf.sprintf " <= %g" h.bound
