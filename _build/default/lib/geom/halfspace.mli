(** Linear constraints [sum_i c_i * x_i <= c_{d+1}] — the query predicate of
    the LC-KW problem (Section 1.1). *)

type t = { coeffs : float array; bound : float }

val make : float array -> float -> t
(** [make coeffs bound] is the constraint [coeffs . x <= bound]. *)

val dim : t -> int

val satisfies : t -> Point.t -> bool
(** Closed test [coeffs . p <= bound]. *)

val eval : t -> Point.t -> float
(** [eval h p = coeffs . p - bound]; non-positive iff [p] satisfies [h]. *)

val complement_open : t -> t
(** The (closure of the) complement [coeffs . x >= bound], expressed again
    as a [<=] constraint by negation. Used for covered-ness tests: a convex
    cell fails to be inside [h] iff it meets this complement with positive
    slack. *)

val of_rect : Rect.t -> t list
(** A d-rectangle as the conjunction of up to 2d linear constraints
    (the reduction noted after Theorem 5); infinite sides yield no
    constraint. *)

val to_string : t -> string
