(** Dense linear algebra on tiny systems (dimension = the constant [d] of the
    paper's problems). Used to derive facet hyperplanes of simplices and the
    lifting map's algebra. *)

val solve : float array array -> float array -> float array option
(** [solve a b] solves [a x = b] by Gaussian elimination with partial
    pivoting; [None] if [a] is singular (up to a 1e-12 pivot threshold).
    [a] is row-major and is not mutated. *)

val dot : float array -> float array -> float
(** Dot product. @raise Invalid_argument on length mismatch. *)

val det : float array array -> float
(** Determinant by LU decomposition (not mutating the input). *)
