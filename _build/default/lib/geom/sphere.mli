(** L2 balls in R^d — the query range of the SRP-KW problem. *)

type t = { center : Point.t; radius : float }

val make : Point.t -> float -> t
(** @raise Invalid_argument on negative radius. *)

val contains : t -> Point.t -> bool
(** Closed containment under the Euclidean metric. *)

val bounding_rect : t -> Rect.t
