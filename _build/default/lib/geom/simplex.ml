type t = { verts : Point.t array; facets : Halfspace.t list }

(* Normal of the hyperplane through points [pts] (d points in R^d), computed
   as the generalized cross product of the d-1 edge vectors: component i is
   the signed cofactor obtained by deleting column i. *)
let hyperplane_normal pts =
  let d = Array.length pts.(0) in
  let edges = Array.init (d - 1) (fun j -> Array.init d (fun c -> pts.(j + 1).(c) -. pts.(0).(c))) in
  let normal =
    Array.init d (fun i ->
        let minor = Array.map (fun row -> Array.init (d - 1) (fun c -> row.(if c < i then c else c + 1))) edges in
        let sign = if i mod 2 = 0 then 1.0 else -1.0 in
        if d = 1 then sign else sign *. Linalg.det minor)
  in
  normal

let of_vertices vs =
  let n = Array.length vs in
  if n = 0 then invalid_arg "Simplex.of_vertices: no vertices";
  let d = Array.length vs.(0) in
  if n <> d + 1 then invalid_arg "Simplex.of_vertices: need d+1 vertices in R^d";
  Array.iter (fun v -> if Array.length v <> d then invalid_arg "Simplex.of_vertices: mixed dimensions") vs;
  let facets = ref [] in
  for omit = 0 to d do
    let face = Array.of_list (List.filteri (fun i _ -> i <> omit) (Array.to_list vs)) in
    let normal = hyperplane_normal face in
    let norm2 = Linalg.dot normal normal in
    if norm2 < 1e-18 then invalid_arg "Simplex.of_vertices: degenerate simplex";
    let b = Linalg.dot normal face.(0) in
    (* orient so that the omitted vertex satisfies the constraint *)
    let side = Linalg.dot normal vs.(omit) -. b in
    if abs_float side < 1e-12 *. (1.0 +. abs_float b) then
      invalid_arg "Simplex.of_vertices: degenerate simplex";
    let h =
      if side <= 0.0 then Halfspace.make normal b
      else Halfspace.make (Array.map (fun c -> -.c) normal) (-.b)
    in
    facets := h :: !facets
  done;
  { verts = Array.map Array.copy vs; facets = !facets }

let dim t = Array.length t.verts.(0)
let vertices t = Array.map Array.copy t.verts
let halfspaces t = t.facets
let contains t p = List.for_all (fun h -> Halfspace.satisfies h p) t.facets

let bounding_rect t =
  let d = dim t in
  let lo = Array.make d infinity and hi = Array.make d neg_infinity in
  Array.iter
    (fun v ->
      for i = 0 to d - 1 do
        lo.(i) <- Float.min lo.(i) v.(i);
        hi.(i) <- Float.max hi.(i) v.(i)
      done)
    t.verts;
  Rect.make lo hi
