(** Seidel's randomized linear programming in small (constant) dimension.

    The partition-tree instantiation of the framework (Appendix D) needs
    exact convex tests: "does this cell intersect the query simplex?" and
    "is this cell fully inside it?". Both reduce to feasibility/optimization
    of a system of halfspaces, which this module solves in expected O(n)
    time for fixed dimension — the classical incremental algorithm with
    recursion on the violated constraint's hyperplane.

    All problems are implicitly intersected with the box [|x_i| <= box] to
    guarantee boundedness; callers choose [box] larger than their data
    extent. *)

type result =
  | Optimal of float array  (** an optimal vertex *)
  | Infeasible

val minimize :
  ?box:float -> rng:Kwsc_util.Prng.t -> dim:int -> Halfspace.t list -> float array -> result
(** [minimize ~rng ~dim cs obj] minimizes [obj . x] subject to [cs] and the
    box (default 1e9). @raise Invalid_argument if [dim < 1], a constraint has
    the wrong dimension, or [obj] does. *)

val feasible : ?box:float -> rng:Kwsc_util.Prng.t -> dim:int -> Halfspace.t list -> bool
(** Is the intersection of the halfspaces (within the box) non-empty? *)

val max_value : ?box:float -> rng:Kwsc_util.Prng.t -> dim:int -> Halfspace.t list -> float array -> float option
(** Maximum of [obj . x] over the feasible region; [None] if infeasible. *)
