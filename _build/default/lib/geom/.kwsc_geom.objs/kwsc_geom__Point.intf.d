lib/geom/point.mli:
