lib/geom/halfspace.ml: Array Linalg List Printf Rect String
