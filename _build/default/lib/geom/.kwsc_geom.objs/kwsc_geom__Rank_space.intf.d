lib/geom/rank_space.mli: Point Rect
