lib/geom/simplex.ml: Array Float Halfspace Linalg List Point Rect
