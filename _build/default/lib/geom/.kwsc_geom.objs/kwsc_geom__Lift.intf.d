lib/geom/lift.mli: Halfspace Point Sphere
