lib/geom/polytope.mli: Halfspace Kwsc_util Point Rect Simplex
