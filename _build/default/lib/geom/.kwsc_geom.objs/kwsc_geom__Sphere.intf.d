lib/geom/sphere.mli: Point Rect
