lib/geom/linalg.ml: Array
