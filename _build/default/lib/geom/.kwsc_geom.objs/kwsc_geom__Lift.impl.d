lib/geom/lift.ml: Array Halfspace Linalg Sphere
