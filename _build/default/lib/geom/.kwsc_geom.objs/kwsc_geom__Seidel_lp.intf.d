lib/geom/seidel_lp.mli: Halfspace Kwsc_util
