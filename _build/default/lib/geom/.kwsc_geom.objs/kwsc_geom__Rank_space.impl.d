lib/geom/rank_space.ml: Array Kwsc_util Rect
