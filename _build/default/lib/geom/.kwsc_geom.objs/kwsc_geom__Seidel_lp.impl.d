lib/geom/seidel_lp.ml: Array Float Halfspace Kwsc_util Linalg List
