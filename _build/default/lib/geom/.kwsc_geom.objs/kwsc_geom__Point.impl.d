lib/geom/point.ml: Array Float Printf String
