lib/geom/linalg.mli:
