lib/geom/rect.ml: Array Float List Printf String
