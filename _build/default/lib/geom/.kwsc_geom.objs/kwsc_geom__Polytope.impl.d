lib/geom/polytope.ml: Array Halfspace Linalg List Point Rect Seidel_lp Simplex
