lib/geom/halfspace.mli: Point Rect
