lib/geom/rect.mli: Point
