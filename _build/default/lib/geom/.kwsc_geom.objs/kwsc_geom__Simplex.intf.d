lib/geom/simplex.mli: Halfspace Point Rect
