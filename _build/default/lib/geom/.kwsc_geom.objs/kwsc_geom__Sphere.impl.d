lib/geom/sphere.ml: Array Point Rect
