(** Axis-parallel d-rectangles [\[x_1,y_1\] x ... x \[x_d,y_d\]] (footnote 1
    of the paper). Sides may be infinite, so the whole space and halfspace
    slabs are representable. *)

type t = { lo : float array; hi : float array }

val make : float array -> float array -> t
(** [make lo hi]. @raise Invalid_argument if lengths differ or some
    [lo.(i) > hi.(i)] (empty rectangles are not representable; use
    [is_empty_candidate] semantics at call sites instead). *)

val of_intervals : (float * float) list -> t
(** Build from per-dimension intervals. *)

val full : int -> t
(** The whole of R^d. *)

val dim : t -> int

val contains_point : t -> Point.t -> bool
(** Closed containment. *)

val intersects : t -> t -> bool
(** Do the two closed rectangles share a point? *)

val contains_rect : t -> t -> bool
(** [contains_rect outer inner]: is [inner] a subset of [outer]? *)

val inter : t -> t -> t option
(** Intersection rectangle, [None] if disjoint. *)

val linf_ball : Point.t -> float -> t
(** [linf_ball q r] is the L∞ ball [B(q, r)] of Corollary 4 — a
    d-rectangle. *)

val to_string : t -> string
