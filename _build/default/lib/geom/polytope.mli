(** Convex polytopes as halfspace intersections.

    These serve two roles: (i) the cells of the BSP partition tree
    (Appendix D.1) and (ii) LC-KW query regions — the conjunction of the
    query's s linear constraints. Emptiness and covered-ness tests go through
    Seidel's LP, so they are exact up to the LP tolerance. *)

type t

val make : dim:int -> Halfspace.t list -> t
(** The region satisfying all constraints ([\[\]] is the whole space).
    @raise Invalid_argument on a dimension mismatch. *)

val of_rect : Rect.t -> t
val of_simplex : Simplex.t -> t

val dim : t -> int
val halfspaces : t -> Halfspace.t list

val add : t -> Halfspace.t -> t
(** Intersect with one more halfspace. *)

val mem : t -> Point.t -> bool
(** Closed containment. *)

val is_empty : ?box:float -> rng:Kwsc_util.Prng.t -> t -> bool
(** Is the region (within the box) empty? *)

val intersects : ?box:float -> rng:Kwsc_util.Prng.t -> t -> t -> bool
(** Do the two regions share a point (within the box)? *)

val covered_by : ?box:float -> rng:Kwsc_util.Prng.t -> t -> t -> bool
(** [covered_by ~rng cell q]: is [cell] (within the box) a subset of [q]?
    Implemented facet-by-facet: [cell] escapes [q] iff for some facet
    [a.x <= b] of [q] the maximum of [a.x] over [cell] exceeds [b]. *)

type relation = Disjoint | Covered | Crossing

val classify : ?box:float -> rng:Kwsc_util.Prng.t -> t -> t -> relation
(** [classify ~rng cell q] — the covered/crossing trichotomy of Section 3.3. *)

val vertices_2d : ?box:float -> t -> Point.t list
(** Vertices of a 2-dimensional polytope (clipped to the box), in
    counter-clockwise order. @raise Invalid_argument if [dim <> 2]. *)

val triangulate_2d : ?box:float -> t -> Simplex.t list
(** Fan triangulation of a 2-dimensional polytope into 2-simplices — the
    decomposition step in the proof of Theorem 5 (LC-KW region into
    simplices). Returns [\[\]] for empty or degenerate (lower-dimensional)
    regions. @raise Invalid_argument if [dim <> 2]. *)
