type t = { center : Point.t; radius : float }

let make center radius =
  if radius < 0.0 then invalid_arg "Sphere.make: negative radius";
  { center = Array.copy center; radius }

let contains t p = Point.l2_dist_sq t.center p <= t.radius *. t.radius

let bounding_rect t = Rect.linf_ball t.center t.radius
