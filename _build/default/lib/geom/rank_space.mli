(** Rank-space conversion (Section 3.4): sort the objects on each dimension,
    breaking ties by object id, so that no two objects share a coordinate —
    the concrete removal of the general-position assumption. A query
    rectangle of the original space converts to a rank-space rectangle in
    O(d log n) without changing the result set. *)

type t

val create : Point.t array -> t
(** [create pts] indexes the points; [pts.(i)] is object [i]'s location.
    @raise Invalid_argument on empty input or mixed dimensions. *)

val dim : t -> int

val size : t -> int
(** Number of objects. *)

val ranks : t -> int -> int array
(** [ranks t id] is object [id]'s rank vector: [ranks t id].(j) is in
    [\[0, size-1\]] and distinct across objects on every dimension [j]. *)

val rect_to_ranks : t -> Rect.t -> (int array * int array) option
(** Convert a query rectangle to closed rank intervals [(lo, hi)];
    [None] if the rectangle contains no object coordinate on some dimension
    (the query result is then certainly empty). An object is inside the
    original rectangle iff its rank vector is inside the rank rectangle. *)
