type t = { lo : float array; hi : float array }

let make lo hi =
  if Array.length lo <> Array.length hi then invalid_arg "Rect.make: dimension mismatch";
  Array.iteri (fun i l -> if l > hi.(i) then invalid_arg "Rect.make: lo > hi") lo;
  { lo = Array.copy lo; hi = Array.copy hi }

let of_intervals ivs =
  let lo = Array.of_list (List.map fst ivs) in
  let hi = Array.of_list (List.map snd ivs) in
  make lo hi

let full d = { lo = Array.make d neg_infinity; hi = Array.make d infinity }
let dim r = Array.length r.lo

let contains_point r p =
  if Array.length p <> dim r then invalid_arg "Rect.contains_point: dimension mismatch";
  let ok = ref true in
  for i = 0 to dim r - 1 do
    if p.(i) < r.lo.(i) || p.(i) > r.hi.(i) then ok := false
  done;
  !ok

let intersects a b =
  if dim a <> dim b then invalid_arg "Rect.intersects: dimension mismatch";
  let ok = ref true in
  for i = 0 to dim a - 1 do
    if a.hi.(i) < b.lo.(i) || b.hi.(i) < a.lo.(i) then ok := false
  done;
  !ok

let contains_rect outer inner =
  if dim outer <> dim inner then invalid_arg "Rect.contains_rect: dimension mismatch";
  let ok = ref true in
  for i = 0 to dim outer - 1 do
    if inner.lo.(i) < outer.lo.(i) || inner.hi.(i) > outer.hi.(i) then ok := false
  done;
  !ok

let inter a b =
  if intersects a b then
    Some
      {
        lo = Array.init (dim a) (fun i -> Float.max a.lo.(i) b.lo.(i));
        hi = Array.init (dim a) (fun i -> Float.min a.hi.(i) b.hi.(i));
      }
  else None

let linf_ball q r =
  if r < 0.0 then invalid_arg "Rect.linf_ball: negative radius";
  { lo = Array.map (fun x -> x -. r) q; hi = Array.map (fun x -> x +. r) q }

let to_string r =
  String.concat " x "
    (List.init (dim r) (fun i -> Printf.sprintf "[%g, %g]" r.lo.(i) r.hi.(i)))
