(** d-simplices in R^d: the query range of the SP-KW problem (Appendix D).
    A simplex is stored both as its d+1 vertices and as the d+1 facet
    halfspaces derived from them. *)

type t

val of_vertices : Point.t array -> t
(** [of_vertices vs] builds the simplex spanned by [d+1] affinely independent
    points in R^d.
    @raise Invalid_argument if the count is not [d+1] or the points are
    affinely dependent (degenerate simplex). *)

val dim : t -> int

val vertices : t -> Point.t array
(** The defining vertices (copies). *)

val halfspaces : t -> Halfspace.t list
(** Facet constraints; a point is in the simplex iff it satisfies all. *)

val contains : t -> Point.t -> bool
(** Closed containment. *)

val bounding_rect : t -> Rect.t
(** Axis-parallel bounding rectangle of the vertices. *)
