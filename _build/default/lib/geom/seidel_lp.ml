type result = Optimal of float array | Infeasible

let tol = 1e-9

(* A constraint in the recursion: coefficient row [a] and bound [b] meaning
   a . x <= b.  Box constraints are kept explicit per-variable instead. *)
type cons = { a : float array; b : float }

exception Infeasible_exn

(* Solve in dimension [d] over variables x_0..x_{d-1}, each restricted to
   [-box, box], constraints [cs] (in fixed random order already), objective
   [obj] (minimize).  Returns the optimal point. *)
let rec solve rng d box cs obj =
  if d = 1 then begin
    let lo = ref (-.box) and hi = ref box in
    List.iter
      (fun { a; b } ->
        let c = a.(0) in
        if abs_float c <= tol then begin
          if b < -.tol then raise Infeasible_exn
        end
        else if c > 0.0 then hi := Float.min !hi (b /. c)
        else lo := Float.max !lo (b /. c))
      cs;
    if !lo > !hi +. tol then raise Infeasible_exn;
    let x = if obj.(0) >= 0.0 then !lo else !hi in
    [| x |]
  end
  else begin
    (* optimum over the box alone *)
    let x = ref (Array.init d (fun i -> if obj.(i) > 0.0 then -.box else if obj.(i) < 0.0 then box else 0.0)) in
    let seen = ref [] in
    List.iter
      (fun ({ a; b } as h) ->
        if Linalg.dot a !x > b +. (tol *. (1.0 +. abs_float b)) then begin
          (* optimum of (seen + h + box) lies on a.x = b: eliminate the
             variable with the largest coefficient magnitude *)
          let j = ref 0 in
          for i = 1 to d - 1 do
            if abs_float a.(i) > abs_float a.(!j) then j := i
          done;
          if abs_float a.(!j) <= tol then raise Infeasible_exn;
          let j = !j in
          let aj = a.(j) in
          (* x_j = (b - sum_{i<>j} a_i x_i) / a_j =: beta - sum gamma_i x_i *)
          let beta = b /. aj in
          let gamma = Array.init d (fun i -> if i = j then 0.0 else a.(i) /. aj) in
          let drop v = Array.init (d - 1) (fun i -> if i < j then v.(i) else v.(i + 1)) in
          (* substitute into a constraint row (a', b') over d vars *)
          let subst { a = a'; b = b' } =
            let coef_j = a'.(j) in
            let a2 = Array.init d (fun i -> if i = j then 0.0 else a'.(i) -. (coef_j *. gamma.(i))) in
            { a = drop a2; b = b' -. (coef_j *. beta) }
          in
          (* box constraints on the eliminated variable become constraints on
             the remaining ones: -box <= beta - gamma.x <= box *)
          let box_hi = { a = drop (Array.map (fun g -> -.g) gamma); b = box -. beta } in
          let box_lo = { a = drop gamma; b = box +. beta } in
          let sub_cs = box_hi :: box_lo :: List.rev_map subst !seen in
          let coef_j = obj.(j) in
          let sub_obj = drop (Array.init d (fun i -> if i = j then 0.0 else obj.(i) -. (coef_j *. gamma.(i)))) in
          let y = solve rng (d - 1) box sub_cs sub_obj in
          let lifted = Array.make d 0.0 in
          let yi = ref 0 in
          for i = 0 to d - 1 do
            if i <> j then begin
              lifted.(i) <- y.(!yi);
              incr yi
            end
          done;
          lifted.(j) <- beta -. Linalg.dot gamma lifted;
          x := lifted
        end;
        seen := h :: !seen)
      cs;
    !x
  end

let prepare ~dim cs obj =
  if dim < 1 then invalid_arg "Seidel_lp: dim must be >= 1";
  if Array.length obj <> dim then invalid_arg "Seidel_lp: objective dimension mismatch";
  List.map
    (fun h ->
      if Halfspace.dim h <> dim then invalid_arg "Seidel_lp: constraint dimension mismatch";
      { a = Array.copy h.Halfspace.coeffs; b = h.Halfspace.bound })
    cs

let minimize ?(box = 1e9) ~rng ~dim cs obj =
  let rows = Array.of_list (prepare ~dim cs obj) in
  Kwsc_util.Prng.shuffle rng rows;
  match solve rng dim box (Array.to_list rows) obj with
  | x -> Optimal x
  | exception Infeasible_exn -> Infeasible

let feasible ?box ~rng ~dim cs =
  match minimize ?box ~rng ~dim cs (Array.make dim 0.0) with
  | Optimal _ -> true
  | Infeasible -> false

let max_value ?box ~rng ~dim cs obj =
  match minimize ?box ~rng ~dim cs (Array.map (fun c -> -.c) obj) with
  | Optimal x -> Some (Linalg.dot obj x)
  | Infeasible -> None
