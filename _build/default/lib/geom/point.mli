(** Points in R^d, represented as float arrays of length [d]. *)

type t = float array

val dim : t -> int
(** Dimensionality. *)

val linf_dist : t -> t -> float
(** L∞ (Chebyshev) distance — the metric of Corollary 4.
    @raise Invalid_argument on dimension mismatch. *)

val l2_dist : t -> t -> float
(** Euclidean distance — the metric of Corollary 7. *)

val l2_dist_sq : t -> t -> float
(** Squared Euclidean distance (avoids the square root; exact on integer
    coordinates, which Corollary 7 assumes). *)

val equal : t -> t -> bool
(** Coordinate-wise equality. *)

val compare_lex : t -> t -> int
(** Lexicographic order. *)

val to_string : t -> string
(** Human-readable rendering, e.g. ["(1.5, 2)"] . *)
