open Kwsc_geom
module Doc = Kwsc_invindex.Doc

type tree =
  | Base of Orp_kw.t * int array (* index on the active set + local-to-global ids *)
  | Cut of cut_node

and cut_node = {
  sigma : float * float; (* x-extent of the active set *)
  level : int;
  fanout : int;
  weight : int;
  pivots : int array; (* global ids *)
  secondary : tree; (* (d-1)-dim index on the active set, x ignored *)
  children : cut_node array;
}

type t = {
  root : tree;
  pts : Point.t array;
  docs : Doc.t array;
  d : int;
  k_ : int;
  n : int;
}

(* f_u = 2 * 2^(k^level), equation (10), clamped so the shift stays sane;
   any fanout beyond the active-set weight behaves identically (every
   object becomes a pivot). *)
let fanout_at ~k level =
  let rec kpow acc i = if i = 0 || acc > 40 then min acc 40 else kpow (acc * k) (i - 1) in
  let e = min 40 (kpow 1 level) in
  2 * (1 lsl e)

let build ?leaf_weight ~k objs =
  if Array.length objs = 0 then invalid_arg "Dimred.build: empty input";
  if k < 2 then invalid_arg "Dimred.build: k must be >= 2";
  let pts = Array.map fst objs in
  let docs = Array.map snd objs in
  let d = Array.length pts.(0) in
  Array.iter (fun p -> if Array.length p <> d then invalid_arg "Dimred.build: mixed dimensions") pts;
  let n = Array.fold_left (fun acc doc -> acc + Doc.size doc) 0 docs in
  (* [subset]: global ids; [proj_from]: how many leading dimensions have
     been stripped for this subtree *)
  let rec make_tree subset proj_from dims =
    if dims <= 2 then begin
      let local =
        Array.map
          (fun id -> (Array.sub pts.(id) proj_from dims, docs.(id)))
          subset
      in
      Base (Orp_kw.build ?leaf_weight ~k local, subset)
    end
    else Cut (make_cut subset proj_from dims 0)
  and make_cut subset proj_from dims level =
    let x id = pts.(id).(proj_from) in
    let sorted = Array.copy subset in
    Array.sort
      (fun a b ->
        let c = compare (x a) (x b) in
        if c <> 0 then c else compare a b)
      sorted;
    let w_total = Array.fold_left (fun acc id -> acc + Doc.size docs.(id)) 0 sorted in
    let f = fanout_at ~k level in
    let target = float_of_int w_total /. float_of_int f in
    (* footnote 13: greedy packing, the object that overflows a group
       becomes the separating pivot *)
    let groups = ref [] and pivots = ref [] in
    let cur = ref [] and cur_w = ref 0 in
    Array.iter
      (fun id ->
        let w = Doc.size docs.(id) in
        if float_of_int (!cur_w + w) <= target +. 1e-9 then begin
          cur := id :: !cur;
          cur_w := !cur_w + w
        end
        else begin
          groups := Array.of_list (List.rev !cur) :: !groups;
          pivots := id :: !pivots;
          cur := [];
          cur_w := 0
        end)
      sorted;
    groups := Array.of_list (List.rev !cur) :: !groups;
    let groups = List.rev !groups and pivots = Array.of_list (List.rev !pivots) in
    let children =
      List.filter_map
        (fun g -> if Array.length g = 0 then None else Some (make_cut g proj_from dims (level + 1)))
        groups
    in
    {
      sigma = (x sorted.(0), x sorted.(Array.length sorted - 1));
      level;
      fanout = f;
      weight = w_total;
      pivots;
      secondary = make_tree subset (proj_from + 1) (dims - 1);
      children = Array.of_list children;
    }
  in
  let all = Array.init (Array.length objs) (fun i -> i) in
  { root = make_tree all 0 d; pts; docs; d; k_ = k; n }

let k t = t.k_
let dim t = t.d
let input_size t = t.n

type profile = {
  type1 : int;
  type2 : int;
  type2_by_level : int array;
  pivot_checked : int;
  work : int; (* total objects/nodes examined, secondaries included *)
}

(* Strip the leading [from] dimensions of a query rectangle. *)
let drop_dims (q : Rect.t) from =
  let d = Rect.dim q in
  Rect.make (Array.sub q.Rect.lo from (d - from)) (Array.sub q.Rect.hi from (d - from))

exception Limit_reached

let query_profile ?limit t q ws =
  if Rect.dim q <> t.d then invalid_arg "Dimred.query: dimension mismatch";
  (match limit with
  | Some l when l < 1 -> invalid_arg "Dimred.query: limit must be >= 1"
  | _ -> ());
  let type1 = ref 0 and type2 = ref 0 and pivot_checked = ref 0 in
  let inner_work = ref 0 in
  let n_found = ref 0 in
  let note_found () =
    incr n_found;
    match limit with Some l when !n_found >= l -> raise Limit_reached | _ -> ()
  in
  let t2l : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let out = ref [] in
  let ws_sorted = Kwsc_util.Sorted.sort_dedup (Array.to_list ws) in
  let full_match id =
    Rect.contains_point q t.pts.(id) && Array.for_all (fun w -> Doc.mem t.docs.(id) w) ws_sorted
  in
  let rec q_tree tree (q' : Rect.t) =
    match tree with
    | Base (orp, ids) ->
        let found, st = Orp_kw.query_stats ?limit orp q' ws in
        inner_work := !inner_work + Stats.work st;
        Array.iter
          (fun local ->
            out := ids.(local) :: !out;
            note_found ())
          found
    | Cut node -> q_cut node q'
  and q_cut node (q' : Rect.t) =
    let qlo = q'.Rect.lo.(0) and qhi = q'.Rect.hi.(0) in
    let slo, shi = node.sigma in
    if shi < qlo || slo > qhi then () (* sigma disjoint from q[1]: skip *)
    else if qlo <= slo && shi <= qhi then begin
      (* type 1: answer entirely through the secondary, x unconstrained *)
      incr type1;
      q_tree node.secondary (drop_dims q' 1)
    end
    else begin
      (* type 2: scan pivots, recurse into touching children *)
      incr type2;
      Hashtbl.replace t2l node.level (1 + Option.value ~default:0 (Hashtbl.find_opt t2l node.level));
      Array.iter
        (fun id ->
          incr pivot_checked;
          if full_match id then begin
            out := id :: !out;
            note_found ()
          end)
        node.pivots;
      Array.iter (fun child -> q_cut child q') node.children
    end
  in
  (try q_tree t.root q with Limit_reached -> ());
  let ids = Kwsc_util.Sorted.sort_dedup !out in
  let max_level = Hashtbl.fold (fun l _ acc -> max acc l) t2l (-1) in
  let by_level = Array.make (max_level + 1) 0 in
  Hashtbl.iter (fun l c -> by_level.(l) <- c) t2l;
  ( ids,
    {
      type1 = !type1;
      type2 = !type2;
      type2_by_level = by_level;
      pivot_checked = !pivot_checked;
      work = !inner_work + !pivot_checked + !type1 + !type2;
    } )

let query ?limit t q ws = fst (query_profile ?limit t q ws)

let cut_stats t f =
  let rec go = function Base _ -> () | Cut node -> go_cut node
  and go_cut node =
    f ~level:node.level ~fanout:node.fanout ~weight:node.weight
      ~children:(Array.length node.children) ~pivots:(Array.length node.pivots);
    (* the secondary of a cut node may itself contain cut trees *)
    go node.secondary;
    Array.iter go_cut node.children
  in
  go t.root

let space_words t =
  let rec words = function
    | Base (orp, ids) -> (Orp_kw.space_stats orp).Stats.total_words + Array.length ids
    | Cut node ->
        let own = Array.length node.pivots + 4 in
        Array.fold_left
          (fun acc c -> acc + words (Cut c))
          (own + words node.secondary)
          node.children
  in
  words t.root
