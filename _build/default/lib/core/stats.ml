type query = {
  mutable nodes_visited : int;
  mutable covered_nodes : int;
  mutable crossing_nodes : int;
  mutable pivot_checked : int;
  mutable small_scanned : int;
  mutable pruned_empty : int;
  mutable pruned_geom : int;
  mutable reported : int;
}

let fresh_query () =
  {
    nodes_visited = 0;
    covered_nodes = 0;
    crossing_nodes = 0;
    pivot_checked = 0;
    small_scanned = 0;
    pruned_empty = 0;
    pruned_geom = 0;
    reported = 0;
  }

let work q = q.pivot_checked + q.small_scanned + q.nodes_visited

type space = {
  nodes : int;
  max_depth : int;
  max_pivot : int;
  pivot_words : int;
  materialized_words : int;
  bitset_words : int;
  table_words : int;
  total_words : int;
}

let pp_space fmt s =
  Format.fprintf fmt
    "nodes=%d depth=%d max_pivot=%d words{pivot=%d mat=%d bits=%d tbl=%d total=%d}" s.nodes
    s.max_depth s.max_pivot s.pivot_words s.materialized_words s.bitset_words s.table_words
    s.total_words
