(** The two naive strategies of Section 1 — the yardsticks every transformed
    index is measured against.

    - "Structured only": evaluate the geometric predicate with a classical
      index (kd-tree for rectangles and metric balls, partition tree for
      linear constraints), then discard candidates missing a keyword.
    - "Keywords only": intersect inverted lists, then discard candidates
      failing the geometry.

    Every query returns the result together with the number of candidate
    objects examined, the quantity whose Θ(N) worst case motivates the
    paper. *)

open Kwsc_geom

type t

val build : ?seed:int -> (Point.t * Kwsc_invindex.Doc.t) array -> t
val n_objects : t -> int
val input_size : t -> int

val rect_structured : t -> Rect.t -> int array -> int array * int
val rect_keywords : t -> Rect.t -> int array -> int array * int

val poly_structured : t -> Polytope.t -> int array -> int array * int
val poly_keywords : t -> Polytope.t -> int array -> int array * int

val sphere_structured : t -> Sphere.t -> int array -> int array * int
val sphere_keywords : t -> Sphere.t -> int array -> int array * int

val nn_structured :
  t -> metric:[ `Linf | `L2 ] -> Point.t -> t':int -> int array -> (int * float) array * int
(** Classical NN-then-filter: fetch nearest points in growing batches until
    [t'] keyword matches are found. *)

val nn_keywords :
  t -> metric:[ `Linf | `L2 ] -> Point.t -> t':int -> int array -> (int * float) array * int
(** Posting intersection, then sort the matches by distance. *)

val scan : t -> Rect.t -> int array -> int array
(** Ground-truth oracle: test every object (used by the test suites). *)

val scan_pred : t -> (Point.t -> bool) -> int array -> int array
(** Oracle with an arbitrary geometric predicate. *)
