(** The executable side of the hardness discussion (Section 1.2,
    Appendices E and G): the reductions are real programs here, tested for
    result equality, and the Lemma-8 arithmetic is provided for the bench
    report.

    These functions do not prove lower bounds (nothing can, short of
    resolving the conjectures); they demonstrate that every structured
    problem *contains* k-SI, which is what transfers the conjectured
    hardness. *)


val ksi_as_orp : k:int -> Kwsc_invindex.Ksi_instance.t -> Orp_kw.t * int array
(** Section 1.2's reduction: embed a k-SI instance as an ORP-KW instance
    (objects mapped to arbitrary points in R^2, documents = owning set ids).
    Returns the index and the element labels. A k-SI reporting query with
    set ids [ws] equals [full-space ORP-KW query with keywords ws], mapped
    through the labels. *)

val ksi_query_via_orp : Orp_kw.t * int array -> int array -> int array
(** Run the reduction's query side: full-space rectangle + keywords. *)

val ksi_via_linf_nn : k:int -> Kwsc_invindex.Ksi_instance.t -> int array -> int array
(** Appendix G: answer a k-SI reporting query using only an L∞NN-KW index —
    issue NN queries with doubling t until the reported count falls short
    of t, at which point the whole intersection has been found. *)

val lemma8_delta : k:int -> eps:float -> float
(** delta = min(1/k, eps / (1 - 1/k + eps)) — the exponent Lemma 8 shows a
    hypothetical faster index would achieve, defying the strong
    set-intersection conjecture. *)
