module Doc = Kwsc_invindex.Doc

type t = { k : int; wildcards : int array }

let docs ~k ds =
  if k < 2 then invalid_arg "Pad.docs: k must be >= 2";
  if Array.length ds = 0 then invalid_arg "Pad.docs: empty dataset";
  let max_kw =
    Array.fold_left
      (fun acc d -> Array.fold_left max acc (Doc.to_array d))
      min_int ds
  in
  let base = max_kw + 1 in
  let wildcards = Array.init (k - 1) (fun i -> base + i) in
  let padded =
    Array.map
      (fun d -> Doc.of_list (Array.to_list (Doc.to_array d) @ Array.to_list wildcards))
      ds
  in
  (padded, { k; wildcards })

let keywords t ws =
  let distinct = Kwsc_util.Sorted.sort_dedup (Array.to_list ws) in
  let j = Array.length distinct in
  if j = 0 then invalid_arg "Pad.keywords: need at least one keyword";
  if j > t.k then invalid_arg "Pad.keywords: more keywords than the index's k";
  Array.iter
    (fun w ->
      if Array.exists (fun r -> r = w) t.wildcards then
        invalid_arg "Pad.keywords: keyword collides with a reserved wildcard")
    distinct;
  Array.append distinct (Array.sub t.wildcards 0 (t.k - j))

let reserved t = Array.copy t.wildcards
