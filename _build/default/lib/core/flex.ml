
type t = { orp : Orp_kw.t; pad : Pad.t; k : int }

let build ?leaf_weight ~max_k objs =
  if Array.length objs = 0 then invalid_arg "Flex.build: empty input";
  let padded_docs, pad = Pad.docs ~k:max_k (Array.map snd objs) in
  let padded = Array.mapi (fun i (p, _) -> (p, padded_docs.(i))) objs in
  { orp = Orp_kw.build ?leaf_weight ~k:max_k padded; pad; k = max_k }

let max_k t = t.k
let input_size t = Orp_kw.input_size t.orp
let query_stats ?limit t q ws = Orp_kw.query_stats ?limit t.orp q (Pad.keywords t.pad ws)
let query ?limit t q ws = fst (query_stats ?limit t q ws)
