(** Wildcard padding: answering queries with fewer than k keywords.

    Every index in this library fixes the keyword count k at build time
    (as the paper does). To serve a query with j < k keywords, append
    k - j *universal* keywords — reserved ids present in every document —
    to both the data and the query. Documents grow by k - 1 entries, so N
    (and all bounds in N) inflate by at most a factor 1 + (k-1)/min|doc|;
    correctness is unaffected because the universal keywords filter
    nothing.

    Typical use:
    {[
      let padded, pad = Pad.docs ~k objs_docs in
      let idx = Orp_kw.build ~k (Array.map2 (fun (p,_) d -> (p,d)) objs padded) in
      let ws' = Pad.keywords pad ws in   (* ws may have 1..k keywords *)
      Orp_kw.query idx q ws'
    ]} *)

type t
(** The reserved wildcard ids chosen for one dataset. *)

val docs : k:int -> Kwsc_invindex.Doc.t array -> Kwsc_invindex.Doc.t array * t
(** [docs ~k ds] appends k-1 fresh universal keywords (larger than any
    keyword in [ds]) to every document.
    @raise Invalid_argument if [k < 2] or [ds] is empty. *)

val keywords : t -> int array -> int array
(** [keywords pad ws] pads [ws] (1 to k distinct real keywords, none of
    them reserved) up to exactly k using the wildcards.
    @raise Invalid_argument if [ws] is empty, has more than k distinct
    entries, or collides with a reserved id. *)

val reserved : t -> int array
(** The wildcard ids (for display/debugging). *)
