lib/core/flex.mli: Kwsc_geom Kwsc_invindex Point Rect Stats
