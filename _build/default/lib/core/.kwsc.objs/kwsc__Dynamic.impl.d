lib/core/dynamic.ml: Array Kwsc_geom Kwsc_invindex List Option Orp_kw Point Rect
