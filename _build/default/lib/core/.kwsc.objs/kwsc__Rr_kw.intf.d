lib/core/rr_kw.mli: Kwsc_geom Kwsc_invindex Rect Stats
