lib/core/hardness.mli: Kwsc_invindex Orp_kw
