lib/core/orp_kw.ml: Array Kwsc_geom Kwsc_invindex Kwsc_util Printf Rank_space Rect Stats Transform
