lib/core/pad.mli: Kwsc_invindex
