lib/core/dimred.ml: Array Hashtbl Kwsc_geom Kwsc_invindex Kwsc_util List Option Orp_kw Point Rect Stats
