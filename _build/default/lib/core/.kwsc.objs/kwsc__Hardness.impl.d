lib/core/hardness.ml: Array Float Kwsc_geom Kwsc_invindex Linf_nn_kw Orp_kw Rect
