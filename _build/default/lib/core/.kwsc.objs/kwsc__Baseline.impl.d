lib/core/baseline.ml: Array Kwsc_geom Kwsc_invindex Kwsc_kdtree Kwsc_ptree List Point Polytope Rect Sphere
