lib/core/ksi.mli: Kwsc_invindex Stats Transform
