lib/core/lc_kw.ml: Array Halfspace Kwsc_geom Kwsc_util List Polytope Rect Sp_kw
