lib/core/srp_kw.mli: Kwsc_geom Kwsc_invindex Point Sphere Stats
