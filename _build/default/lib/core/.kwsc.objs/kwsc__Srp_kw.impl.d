lib/core/srp_kw.ml: Array Halfspace Kwsc_geom Lift Linalg Polytope Sp_kw Sphere
