lib/core/baseline.mli: Kwsc_geom Kwsc_invindex Point Polytope Rect Sphere
