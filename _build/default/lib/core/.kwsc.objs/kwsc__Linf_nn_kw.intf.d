lib/core/linf_nn_kw.mli: Kwsc_geom Kwsc_invindex Point
