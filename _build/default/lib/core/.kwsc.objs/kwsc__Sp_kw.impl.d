lib/core/sp_kw.ml: Array Float Halfspace Kwsc_geom Kwsc_invindex Kwsc_util Linalg List Polytope Rect Transform
