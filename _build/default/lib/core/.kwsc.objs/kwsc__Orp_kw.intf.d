lib/core/orp_kw.mli: Kwsc_geom Kwsc_invindex Point Rect Stats Transform
