lib/core/lc_kw.mli: Halfspace Kwsc_geom Kwsc_invindex Point Rect Sp_kw Stats
