lib/core/dimred.mli: Kwsc_geom Kwsc_invindex Point Rect
