lib/core/sp_kw.mli: Halfspace Kwsc_geom Kwsc_invindex Point Polytope Simplex Stats Transform
