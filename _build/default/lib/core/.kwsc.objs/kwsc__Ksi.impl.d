lib/core/ksi.ml: Array Kwsc_invindex Transform
