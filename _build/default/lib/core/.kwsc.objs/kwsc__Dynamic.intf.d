lib/core/dynamic.mli: Kwsc_geom Kwsc_invindex Point Rect
