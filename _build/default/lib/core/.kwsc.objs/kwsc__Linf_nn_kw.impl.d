lib/core/linf_nn_kw.ml: Array Dimred Kwsc_geom Kwsc_util Orp_kw Point Rect
