lib/core/pad.ml: Array Kwsc_invindex Kwsc_util
