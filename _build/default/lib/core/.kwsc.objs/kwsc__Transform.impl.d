lib/core/transform.ml: Array Hashtbl Kwsc_invindex Kwsc_util List Printf Stats
