lib/core/transform.mli: Kwsc_invindex Stats
