lib/core/rr_kw.ml: Array Dimred Halfspace Kwsc_geom Lc_kw Orp_kw Rect Stats
