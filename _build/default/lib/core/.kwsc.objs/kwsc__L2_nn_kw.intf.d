lib/core/l2_nn_kw.mli: Kwsc_geom Kwsc_invindex Point Srp_kw
