lib/core/l2_nn_kw.ml: Array Float Kwsc_geom Point Srp_kw
