lib/core/flex.ml: Array Orp_kw Pad
