(** Flexible-arity keyword search: one index serving queries with 1 to k
    keywords.

    The paper (and every index here) fixes the keyword count k at build
    time. Real query loads mix arities, so this convenience layer builds a
    single ORP-KW index at arity [max_k] over wildcard-padded documents
    ({!Pad}) and pads each incoming query up to [max_k]. Space and query
    bounds are those of the padded instance: N grows by at most a factor
    [1 + (max_k - 1) / min |doc|], and a j-keyword query runs at the
    [max_k] exponent — the price of arity flexibility. *)

open Kwsc_geom

type t

val build : ?leaf_weight:int -> max_k:int -> (Point.t * Kwsc_invindex.Doc.t) array -> t
(** @raise Invalid_argument if [max_k < 2] or the input is empty. *)

val max_k : t -> int
val input_size : t -> int

val query : ?limit:int -> t -> Rect.t -> int array -> int array
(** [query t q ws] with 1 to [max_k] distinct keywords: sorted ids of the
    objects in [q] whose documents contain all of [ws].
    @raise Invalid_argument on an empty or oversized keyword set. *)

val query_stats : ?limit:int -> t -> Rect.t -> int array -> int array * Stats.query
