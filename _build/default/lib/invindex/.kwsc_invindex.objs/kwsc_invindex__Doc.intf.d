lib/invindex/doc.mli:
