lib/invindex/inverted.mli: Doc
