lib/invindex/inverted.ml: Array Doc Hashtbl Kwsc_util List
