lib/invindex/doc.ml: Array Kwsc_util
