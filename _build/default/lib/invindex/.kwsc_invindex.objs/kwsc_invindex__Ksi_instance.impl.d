lib/invindex/ksi_instance.ml: Array Doc Kwsc_util
