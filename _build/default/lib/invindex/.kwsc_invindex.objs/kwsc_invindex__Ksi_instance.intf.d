lib/invindex/ksi_instance.mli: Doc
