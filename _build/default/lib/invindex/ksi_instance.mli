(** k-Set Intersection instances (Section 1.2) and the paper's two-way
    reduction between k-SI and pure keyword search: for each keyword [w],
    the posting set [S_w]; conversely, given sets [S_1..S_m], build
    [D := union S_i] with [e.Doc := { i | e in S_i }]. *)

type t

val create : int array array -> t
(** [create sets] — each array is one set (sorted and deduplicated
    internally); set ids are [1..m] as in the paper.
    @raise Invalid_argument if there are fewer than two sets or a set is
    empty. *)

val num_sets : t -> int

val set : t -> int -> int array
(** [set t i] with [i] in [\[1, m\]]. Do not mutate the result. *)

val input_size : t -> int
(** N = sum of set sizes. *)

val reporting : t -> int array -> int array
(** Naive k-SI reporting: the sorted intersection of the named sets. *)

val emptiness : t -> int array -> bool
(** k-SI emptiness. *)

val to_keyword_dataset : t -> Doc.t array * int array
(** The keyword-search instance of Section 1.2: returns [(docs, elements)]
    where object [j] corresponds to the distinct element [elements.(j)] of
    the union and [docs.(j) = { i | elements.(j) in S_i }]. A reporting
    query with set ids [w1..wk] on the k-SI instance returns exactly the
    elements of the objects returned by the keyword query [w1..wk]. *)
