type t = { docs : Doc.t array; postings : (int, int array) Hashtbl.t; n : int; vocab : int array }

let build docs =
  let postings_l : (int, int list ref) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri
    (fun id doc ->
      Doc.iter
        (fun w ->
          match Hashtbl.find_opt postings_l w with
          | Some l -> l := id :: !l
          | None -> Hashtbl.add postings_l w (ref [ id ]))
        doc)
    docs;
  let postings = Hashtbl.create (Hashtbl.length postings_l) in
  Hashtbl.iter
    (fun w l ->
      let a = Array.of_list !l in
      Array.sort compare a;
      Hashtbl.add postings w a)
    postings_l;
  let n = Array.fold_left (fun acc d -> acc + Doc.size d) 0 docs in
  let vocab = Kwsc_util.Sorted.sort_dedup (Hashtbl.fold (fun w _ acc -> w :: acc) postings []) in
  { docs; postings; n; vocab }

let input_size t = t.n
let vocabulary t = Array.copy t.vocab
let posting t w = match Hashtbl.find_opt t.postings w with Some a -> a | None -> [||]
let frequency t w = Array.length (posting t w)

let query t ws =
  if Array.length ws = 0 then invalid_arg "Inverted.query: need at least one keyword";
  let rarest = ref ws.(0) in
  Array.iter (fun w -> if frequency t w < frequency t !rarest then rarest := w) ws;
  let base = posting t !rarest in
  let others = Array.of_list (List.filter (fun w -> w <> !rarest) (Array.to_list ws)) in
  let hits = ref [] and count = ref 0 in
  Array.iter
    (fun id ->
      if Array.for_all (fun w -> Doc.mem t.docs.(id) w) others then begin
        hits := id :: !hits;
        incr count
      end)
    base;
  let out = Array.make !count 0 in
  let rest = ref !hits in
  for i = !count - 1 downto 0 do
    (match !rest with
    | x :: tl ->
        out.(i) <- x;
        rest := tl
    | [] -> assert false)
  done;
  out

let query_naive t ws =
  if Array.length ws = 0 then invalid_arg "Inverted.query_naive: need at least one keyword";
  let lists = Array.map (posting t) ws in
  Array.sort (fun a b -> compare (Array.length a) (Array.length b)) lists;
  Array.fold_left Kwsc_util.Sorted.intersect lists.(0) (Array.sub lists 1 (Array.length lists - 1))

let is_empty_query t ws = Array.length (query t ws) = 0
