lib/ptree/ptree.ml: Array Float Halfspace Kwsc_util Linalg Point Polytope
