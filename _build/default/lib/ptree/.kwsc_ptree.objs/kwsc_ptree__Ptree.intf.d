lib/ptree/ptree.mli: Halfspace Point Polytope Simplex
