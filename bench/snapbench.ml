(* SNAP: durable snapshots vs cold rebuilds. No paper claim backs this
   experiment — snapshots are an operational feature (DESIGN.md section 9)
   — so it records raw numbers: cold build time, snapshot save/load time
   and file size for ORP-KW and the inverted baseline, with every loaded
   index answer- and work-counter-checked against the cold one, both as a
   table and as machine-readable BENCH_pr4.json. Target: a snapshot load
   at least 10x faster than the cold build it replaces. *)

module H = Harness
module Prng = Kwsc_util.Prng
module C = Kwsc_snapshot.Codec
module Orp = Kwsc.Orp_kw
module Inverted = Kwsc_invindex.Inverted

let counters (st : Kwsc.Stats.query) =
  ( st.Kwsc.Stats.nodes_visited,
    st.Kwsc.Stats.covered_nodes,
    st.Kwsc.Stats.crossing_nodes,
    st.Kwsc.Stats.pivot_checked,
    st.Kwsc.Stats.small_scanned,
    st.Kwsc.Stats.pruned_empty,
    st.Kwsc.Stats.pruned_geom,
    st.Kwsc.Stats.reported )

let load_orp path =
  match Orp.load path with Ok t -> t | Error e -> failwith (C.error_to_string e)

let load_inv path =
  match Inverted.load path with Ok t -> t | Error e -> failwith (C.error_to_string e)

let file_size path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> in_channel_length ic)

let run () =
  H.header "SNAP: durable snapshots vs cold rebuilds"
    "no claim (operational feature); identical answers, load >= 10x faster than build";
  let n = H.sized (if !H.quick then 20_000 else 100_000) in
  let nq = H.sized 200 in
  let rng = Prng.create 0x4242 in
  let objs = H.zipf_objs ~rng ~n ~d:2 ~vocab:60 ~range:1000.0 in
  let rects = Array.init nq (fun _ -> H.rect_of_trial rng) in
  let wss =
    (* two keywords drawn from disjoint ranges: distinct by construction *)
    Array.init nq (fun _ -> [| 1 + Prng.int rng 20; 21 + Prng.int rng 39 |])
  in
  let snap = Filename.temp_file "kwsc_snap_orp" ".snap" in
  let snap_inv = Filename.temp_file "kwsc_snap_inv" ".snap" in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove snap with Sys_error _ -> ());
      try Sys.remove snap_inv with Sys_error _ -> ())
    (fun () ->
      (* ---- ORP-KW (Theorem 1) ---------------------------------------- *)
      let cold, build_s = Kwsc_util.Timer.time (fun () -> Orp.build ~k:2 objs) in
      let (), save_s = Kwsc_util.Timer.time (fun () -> Orp.save snap cold) in
      let warm, load_s = H.time_best ~reps:7 (fun () -> load_orp snap) in
      let mismatches = ref 0 in
      Array.iteri
        (fun i q ->
          let ids_c, st_c = Orp.query_stats cold q wss.(i) in
          let ids_w, st_w = Orp.query_stats warm q wss.(i) in
          if ids_c <> ids_w || counters st_c <> counters st_w then incr mismatches)
        rects;
      let bytes = file_size snap in
      Printf.printf
        "  ORP-KW    N=%d  build=%7.1fms  save=%6.1fms  load=%6.1fms  %7d bytes\n" n
        (build_s *. 1e3) (save_s *. 1e3) (load_s *. 1e3) bytes;
      Printf.printf "  %d/%d queries identical (ids + work counters) on the loaded index\n"
        (nq - !mismatches) nq;
      if !mismatches > 0 then failwith "SNAP: loaded ORP-KW index disagrees with the cold build";

      (* ---- inverted baseline ----------------------------------------- *)
      let docs = Array.map snd objs in
      let inv_cold, inv_build_s = Kwsc_util.Timer.time (fun () -> Inverted.build docs) in
      let (), inv_save_s = Kwsc_util.Timer.time (fun () -> Inverted.save snap_inv inv_cold) in
      let inv_warm, inv_load_s = H.time_best ~reps:7 (fun () -> load_inv snap_inv) in
      let inv_bad = ref 0 in
      Array.iter
        (fun ws -> if Inverted.query inv_cold ws <> Inverted.query inv_warm ws then incr inv_bad)
        wss;
      Printf.printf
        "  inverted  N=%d  build=%7.1fms  save=%6.1fms  load=%6.1fms  %7d bytes\n" n
        (inv_build_s *. 1e3) (inv_save_s *. 1e3) (inv_load_s *. 1e3) (file_size snap_inv);
      if !inv_bad > 0 then failwith "SNAP: loaded inverted index disagrees with the cold build";

      let speedup = build_s /. load_s in
      let inv_speedup = inv_build_s /. inv_load_s in
      Printf.printf "  -> load vs cold build: orp %.1fx, inverted %.1fx (target >= 10x) %s\n"
        speedup inv_speedup
        (if speedup >= 10.0 then "[OK]" else "[BELOW TARGET]");
      if !H.smoke then Printf.printf "  (smoke run: BENCH_pr4.json not written)\n"
      else begin
        let oc = open_out "BENCH_pr4.json" in
        Printf.fprintf oc
          "{\n\
          \  \"bench\": \"snapshot load vs cold build\",\n\
          \  \"n\": %d,\n\
          \  \"queries\": %d,\n\
          \  \"orp\": {\"build_s\": %.6f, \"save_s\": %.6f, \"load_s\": %.6f, \"bytes\": %d, \"speedup\": %.3f},\n\
          \  \"inverted\": {\"build_s\": %.6f, \"save_s\": %.6f, \"load_s\": %.6f, \"bytes\": %d, \"speedup\": %.3f},\n\
          \  \"answers_identical\": true\n\
           }\n"
          n nq build_s save_s load_s bytes speedup inv_build_s inv_save_s inv_load_s
          (file_size snap_inv) inv_speedup;
        close_out oc;
        Printf.printf "  wrote BENCH_pr4.json\n"
      end)
