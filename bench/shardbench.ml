(* SHARD: per-shard hybrid indexes behind the scatter-gather router vs
   the monolithic index. No paper claim backs this experiment — sharding
   is an operational feature (DESIGN.md section 12) — so it records raw
   numbers at K in {1, 2, 4, 8}: build time, scatter-gather query
   latency vs the monolithic index, and parallel per-shard snapshot
   save/load, with every sharded answer checked bit-identical against
   the unsharded one (the same contract test/test_shard_diff.ml proves
   exhaustively). Single-machine numbers are honest 1-box numbers: the
   router pays a fan-out/merge tax at small N, and this table records
   it rather than hiding it. Writes BENCH_pr6.json. *)

module H = Harness
module Prng = Kwsc_util.Prng
module Pool = Kwsc_util.Pool
module Timer = Kwsc_util.Timer
module Inverted = Kwsc_invindex.Inverted
module Orp = Kwsc.Orp_kw
module Sh = Kwsc_shard.Surfaces
module SPlan = Kwsc_shard.Plan

let shard_counts = [ 1; 2; 4; 8 ]

type row = {
  shards : int;
  inv_build_s : float;
  inv_query_s : float;
  orp_build_s : float;
  orp_query_s : float;
  save_s : float;
  load_s : float;
}

let run () =
  H.header "SHARD: scatter-gather router vs monolithic index"
    "no claim (operational feature); answers bit-identical at every shard count";
  let n = H.sized (if !H.quick then 20_000 else 100_000) in
  let nq = H.sized 400 in
  let rng = Prng.create 0x5A5A in
  let objs = H.zipf_objs ~rng ~n ~d:2 ~vocab:60 ~range:1000.0 in
  let docs = Array.map snd objs in
  let rects = Array.init nq (fun _ -> H.rect_of_trial rng) in
  let wss =
    (* two keywords from disjoint ranges: distinct by construction *)
    Array.init nq (fun _ -> [| 1 + Prng.int rng 20; 21 + Prng.int rng 39 |])
  in
  let pool = Pool.create () in
  let snap = Filename.temp_file "kwsc_shard_orp" ".snap" in
  Fun.protect
    ~finally:(fun () ->
      Pool.shutdown pool;
      try Sys.remove snap with Sys_error _ -> ())
    (fun () ->
      (* ---- monolithic baselines -------------------------------------- *)
      let inv_mono, inv_mono_build =
        Timer.time (fun () -> Inverted.build ~pool docs)
      in
      let inv_answers = Array.map (Inverted.query inv_mono) wss in
      let (), inv_mono_query =
        Timer.time (fun () -> Array.iter (fun ws -> ignore (Inverted.query inv_mono ws)) wss)
      in
      let orp_mono, orp_mono_build = Timer.time (fun () -> Orp.build ~pool ~k:2 objs) in
      let orp_answers =
        Array.init nq (fun i -> Orp.query orp_mono rects.(i) wss.(i))
      in
      let (), orp_mono_query =
        Timer.time (fun () ->
            Array.iteri (fun i r -> ignore (Orp.query orp_mono r wss.(i))) rects)
      in
      Printf.printf
        "  mono      inv-build=%7.1fms inv-q=%6.1fms  orp-build=%7.1fms orp-q=%6.1fms\n"
        (inv_mono_build *. 1e3) (inv_mono_query *. 1e3) (orp_mono_build *. 1e3)
        (orp_mono_query *. 1e3);

      (* ---- sharded at K in {1, 2, 4, 8} ------------------------------- *)
      let rows =
        List.map
          (fun k ->
            let plan = (SPlan.Hash, k) in
            let inv, inv_build_s =
              Timer.time (fun () -> Sh.Inverted.build ~pool ~plan Kwsc_util.Container.Hybrid docs)
            in
            let bad = ref 0 in
            Array.iteri
              (fun i ws ->
                if Sh.Inverted.query ~pool inv ws <> inv_answers.(i) then incr bad)
              wss;
            let (), inv_query_s =
              Timer.time (fun () ->
                  Array.iter (fun ws -> ignore (Sh.Inverted.query ~pool inv ws)) wss)
            in
            let orp, orp_build_s =
              Timer.time (fun () -> Sh.Orp.build ~pool ~plan 2 objs)
            in
            Array.iteri
              (fun i r ->
                if Sh.Orp.query ~pool orp (r, wss.(i)) <> orp_answers.(i) then incr bad)
              rects;
            let (), orp_query_s =
              Timer.time (fun () ->
                  Array.iteri (fun i r -> ignore (Sh.Orp.query ~pool orp (r, wss.(i)))) rects)
            in
            if !bad > 0 then
              failwith
                (Printf.sprintf "SHARD: K=%d disagrees with the monolithic index on %d queries"
                   k !bad);
            let (), save_s = Timer.time (fun () -> Sh.Orp.save ~pool snap orp) in
            let warm, load_s =
              H.time_best ~reps:5 (fun () ->
                  match Sh.Orp.load ~pool snap with
                  | Ok t -> t
                  | Error e -> failwith (Kwsc_snapshot.Codec.error_to_string e))
            in
            if Sh.Orp.query ~pool warm (rects.(0), wss.(0)) <> orp_answers.(0) then
              failwith "SHARD: loaded sharded index disagrees";
            Printf.printf
              "  K=%d       inv-build=%7.1fms inv-q=%6.1fms  orp-build=%7.1fms \
               orp-q=%6.1fms  save=%6.1fms load=%6.1fms\n"
              k (inv_build_s *. 1e3) (inv_query_s *. 1e3) (orp_build_s *. 1e3)
              (orp_query_s *. 1e3) (save_s *. 1e3) (load_s *. 1e3);
            { shards = k; inv_build_s; inv_query_s = inv_query_s; orp_build_s;
              orp_query_s; save_s; load_s })
          shard_counts
      in
      Printf.printf "  -> all %d queries bit-identical to the monolithic index at every K\n"
        (2 * nq);
      if !H.smoke then Printf.printf "  (smoke run: BENCH_pr6.json not written)\n"
      else begin
        let oc = open_out "BENCH_pr6.json" in
        Printf.fprintf oc
          "{\n\
          \  \"bench\": \"sharded scatter-gather vs monolithic\",\n\
          \  \"n\": %d,\n\
          \  \"queries\": %d,\n\
          \  \"domains\": %d,\n\
          \  \"mono\": {\"inv_build_s\": %.6f, \"inv_query_s\": %.6f, \"orp_build_s\": %.6f, \"orp_query_s\": %.6f},\n\
          \  \"sharded\": [\n"
          n nq (Pool.size pool) inv_mono_build inv_mono_query orp_mono_build
          orp_mono_query;
        List.iteri
          (fun i r ->
            Printf.fprintf oc
              "    {\"shards\": %d, \"inv_build_s\": %.6f, \"inv_query_s\": %.6f, \
               \"orp_build_s\": %.6f, \"orp_query_s\": %.6f, \"save_s\": %.6f, \
               \"load_s\": %.6f}%s\n"
              r.shards r.inv_build_s r.inv_query_s r.orp_build_s r.orp_query_s
              r.save_s r.load_s
              (if i = List.length rows - 1 then "" else ","))
          rows;
        Printf.fprintf oc "  ],\n  \"answers_identical\": true\n}\n";
        close_out oc;
        Printf.printf "  wrote BENCH_pr6.json\n"
      end)
