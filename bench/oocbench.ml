(* OOC: out-of-core paged snapshots (PR 10) vs the eager loader. No
   paper claim backs this experiment — mmap-backed paging with lazy CRC
   verification (DESIGN.md §15) is an implementation optimisation — so
   it records raw numbers on the two axes the pager exists for:

   - time-to-first-query: load a snapshot and answer one query, eager
     vs paged, best of several runs. The paged open parses only the
     section directory and the small vocabulary columns; the posting
     containers a query needs page in on first touch. Target >= 20x at
     the full N = 10^5.
   - resident footprint: the VmRSS growth of running a Zipf-skewed
     query mix against a freshly opened index. The skew means a small
     hot set of keywords carries most queries, so the paged reader
     faults in a fraction of the containers. Target <= 50% of the
     eager delta.

   Answers are cross-checked query for query — every paged answer must
   be bit-identical to the eager one, and the per-rank container kinds
   (the planner's physical decisions) must agree exactly. A divergence
   fails the run; it never just reports a fast number. *)

module H = Harness
module Prng = Kwsc_util.Prng
module Inv = Kwsc_invindex.Inverted
module Pst = Kwsc_invindex.Postings

let ok = function
  | Ok t -> t
  | Error e -> failwith ("OOC: " ^ Kwsc_snapshot.Codec.error_to_string e)

(* VmRSS of this process, in bytes, from /proc/self/status; 0 when the
   proc filesystem is unavailable (the RSS rows are skipped then) *)
let vm_rss () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> 0
  | ic ->
      let rec scan () =
        match input_line ic with
        | exception End_of_file -> 0
        | line ->
            if String.length line > 6 && String.sub line 0 6 = "VmRSS:" then
              Scanf.sscanf (String.sub line 6 (String.length line - 6)) " %d kB"
                (fun kb -> kb * 1024)
            else scan ()
      in
      Fun.protect ~finally:(fun () -> close_in_noerr ic) scan

let mib b = float_of_int b /. (1024.0 *. 1024.0)

(* an order-sensitive checksum of one answer (both sides emit sorted ids) *)
let sum_ids ids = Array.fold_left (fun acc x -> (acc * 31) + x + 7) (Array.length ids) ids

(* --- the RSS phases run in re-exec'd child processes ----------------

   A single-process A/B comparison of VmRSS deltas is meaningless: the
   allocator reuses pages freed by whichever phase ran first, so the
   second phase appears to cost nothing. Each phase instead re-execs
   this binary with [--ooc-phase] (dispatched by bench/main.ml before
   the harness starts): a fresh process loads the snapshot, answers the
   whole mix, and reports its VmRSS growth plus the per-query answer
   checksums, which the parent cross-checks between the two phases. *)

(* the phase hand-off files are snapshots too: dogfood the codec *)
let ipc_kind = "kwsc.bench.ooc"
module C = Kwsc_snapshot.Codec

let child_phase ~mode ~snap ~qfile ~ofile =
  let queries =
    C.decode_section (C.load_kind_exn ~path:qfile ~kind:ipc_kind) "queries" C.R.int_array2
  in
  let load =
    match mode with
    | "eager" -> Inv.load
    | "paged" -> Inv.load_paged
    | m -> failwith ("--ooc-phase: unknown mode " ^ m)
  in
  let before = vm_rss () in
  let t = ok (load snap) in
  let sums = Array.map (fun ws -> sum_ids (Inv.query t ws)) queries in
  Gc.compact ();
  let delta = max 0 (vm_rss () - before) in
  let resident = Inv.resident_containers t in
  C.save_file ~path:ofile ~kind:ipc_kind
    [
      ("rss", C.to_string (fun w -> C.W.int_array w [| delta; resident |]));
      ("sums", C.to_string (fun w -> C.W.int_array w sums));
    ]

let run_phase ~mode ~qfile snap =
  let ofile = Filename.temp_file "kwsc_ooc_out" ".bin" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove ofile with Sys_error _ -> ())
    (fun () ->
      let null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
      let pid =
        Unix.create_process Sys.executable_name
          [| Sys.executable_name; "--ooc-phase"; mode; snap; qfile; ofile |]
          Unix.stdin null Unix.stderr
      in
      Unix.close null;
      (match Unix.waitpid [] pid with
      | _, Unix.WEXITED 0 -> ()
      | _ -> failwith ("OOC: the " ^ mode ^ " phase child failed"));
      let sections = C.load_kind_exn ~path:ofile ~kind:ipc_kind in
      let rss = C.decode_section sections "rss" C.R.int_array in
      let sums = C.decode_section sections "sums" C.R.int_array in
      (rss.(0), rss.(1), sums))

let run () =
  H.header "OOC: mmap-backed paged snapshots vs eager load"
    "no claim (implementation optimisation); identical answers, measured TTFQ + RSS";
  let n = H.sized 100_000 in
  let nq = H.sized 2_000 in
  let rng = Prng.create 0x00c9 in
  let docs =
    Kwsc_workload.Gen.docs ~rng ~n ~vocab:4_000 ~theta:0.9 ~len_min:1 ~len_max:6
  in
  let path = Filename.temp_file "kwsc_ooc" ".snap" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Inv.save path (Inv.build docs);
      let file_b = (Unix.stat path).Unix.st_size in
      (* Zipf-skewed query mix: keywords are drawn from random documents,
         so their frequencies follow the corpus skew — a hot head of
         dense words answers most queries, the sparse tail goes mostly
         untouched. Generated before any measurement. *)
      let queries =
        Array.init nq (fun _ ->
            let doc = Kwsc_invindex.Doc.to_array docs.(Prng.int rng n) in
            let k = 1 + Prng.int rng (min 2 (Array.length doc)) in
            Array.init k (fun _ -> doc.(Prng.int rng (Array.length doc))))
      in
      Printf.printf "  N=%d  vocab words=%d  snapshot=%.1f MiB  queries=%d (zipf mix)\n" n
        (Array.length (Inv.vocabulary (ok (Inv.load_paged path))))
        (mib file_b) nq;

      (* --- time to first query: load + answer one zipf query ---------- *)
      let first = queries.(0) in
      let reps = if !H.smoke then 2 else 3 in
      let (_ : int array), eager_ttfq =
        H.time_best ~reps (fun () -> Inv.query (ok (Inv.load path)) first)
      in
      let (_ : int array), paged_ttfq =
        H.time_best ~reps (fun () -> Inv.query (ok (Inv.load_paged path)) first)
      in
      let ttfq_speedup = eager_ttfq /. paged_ttfq in
      Printf.printf "  TTFQ   eager=%8.2fms  paged=%8.2fms  speedup=%6.1fx\n"
        (eager_ttfq *. 1e3) (paged_ttfq *. 1e3) ttfq_speedup;

      (* --- resident footprint under the mix: one fresh child each ----- *)
      let qfile = Filename.temp_file "kwsc_ooc_q" ".bin" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove qfile with Sys_error _ -> ())
      (fun () ->
      C.save_file ~path:qfile ~kind:ipc_kind
        [ ("queries", C.to_string (fun w -> C.W.int_array2 w queries)) ];
      let eager_rss, _, eager_sums = run_phase ~mode:"eager" ~qfile path in
      let paged_rss, resident, paged_sums = run_phase ~mode:"paged" ~qfile path in
      (* the physical planner decisions must agree, not just the answers:
         compare per-rank kinds on in-process loads (forces everything,
         which is why it happens outside the measured children) *)
      let nw = Pst.num_words (Inv.postings (ok (Inv.load_paged path))) in
      let eager_kinds = Pst.kind_counts (Inv.postings (ok (Inv.load path))) in
      let paged_kinds = Pst.kind_counts (Inv.postings (ok (Inv.load_paged path))) in
      let answers_ok = paged_sums = eager_sums in
      let kinds_ok = paged_kinds = eager_kinds in
      if not answers_ok then failwith "OOC: paged and eager answers diverged";
      if not kinds_ok then failwith "OOC: paged and eager container kinds diverged";
      let rss_ratio =
        if eager_rss > 0 then float_of_int paged_rss /. float_of_int eager_rss else nan
      in
      Printf.printf "  RSS    eager=+%7.1fMiB  paged=+%7.1fMiB  ratio=%5.2f  (containers %d/%d)\n"
        (mib eager_rss) (mib paged_rss) rss_ratio resident nw;
      Printf.printf "  answers: %d/%d queries bit-identical; kind counts agree\n"
        (Array.length queries) (Array.length queries);

      let ttfq_ok = ttfq_speedup >= 20.0 in
      let rss_ok = eager_rss > 0 && paged_rss * 2 <= eager_rss in
      Printf.printf "  -> TTFQ speedup %.1fx (target >= 20x) %s\n" ttfq_speedup
        (if ttfq_ok then "[OK]" else "[BELOW TARGET]");
      Printf.printf "  -> paged RSS %.2fx of eager (target <= 0.50x) %s\n" rss_ratio
        (if rss_ok then "[OK]" else "[ABOVE TARGET]");
      if !H.smoke then Printf.printf "  (smoke run: numbers are crash-test only)\n";

      let oc = open_out "BENCH_pr10.json" in
      Printf.fprintf oc
        "{\n\
        \  \"bench\": \"out-of-core paged snapshots vs eager load\",\n\
        \  \"smoke\": %b,\n\
        \  \"n\": %d,\n\
        \  \"queries\": %d,\n\
        \  \"snapshot_bytes\": %d,\n\
        \  \"ttfq\": {\"eager_ms\": %.3f, \"paged_ms\": %.3f, \"speedup\": %.1f},\n\
        \  \"rss\": {\"eager_delta_mib\": %.2f, \"paged_delta_mib\": %.2f, \"ratio\": %.3f,\n\
        \          \"containers_faulted\": %d, \"containers_total\": %d},\n\
        \  \"answers_identical\": %b,\n\
        \  \"kind_counts_identical\": %b,\n\
        \  \"targets\": {\"ttfq_speedup_ge_20\": %b, \"paged_rss_le_half_eager\": %b,\n\
        \              \"answers_identical\": %b}\n\
         }\n"
        !H.smoke n nq file_b (eager_ttfq *. 1e3) (paged_ttfq *. 1e3) ttfq_speedup
        (mib eager_rss) (mib paged_rss) rss_ratio resident nw answers_ok kinds_ok ttfq_ok
        rss_ok (answers_ok && kinds_ok);
      close_out oc;
      Printf.printf "  wrote BENCH_pr10.json\n"))
