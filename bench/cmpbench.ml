(* CMP: hybrid posting containers vs the sparse-only flat arrays they
   replaced. No paper claim backs this experiment — the three-way
   container (sorted array / packed bitmap / run pairs, DESIGN.md §10)
   is an implementation optimisation — so it records raw numbers: the
   kind census of a mixed-density index, dense / clustered / sparse
   intersection throughput under both policies, the planner-on vs
   planner-off equivalence sweep over every query surface, and the
   materialized-intersection cache counters. Results land in
   BENCH_pr5.json; the deterministic work counters double as the CI
   perf-regression reference (--check-ref scripts/cmp_ref.txt).

   Targets: >= 2x on dense-keyword intersections (both postings above
   the universe/64 density cutoff), <= 1.1x overhead where the hybrid
   index degenerates to the same sparse arrays (pure dispatch cost),
   and bit-identical answers + Stats counters with the planner on or
   off. Differential correctness of the container kinds themselves is
   the test suite's job (test_container_diff); this experiment measures
   and cross-checks checksums only. *)

module H = Harness
module Prng = Kwsc_util.Prng
module Ibuf = Kwsc_util.Ibuf
module Planner = Kwsc_util.Planner
module Doc = Kwsc_invindex.Doc
module Inverted = Kwsc_invindex.Inverted
module Postings = Kwsc_invindex.Postings

(* --check-ref FILE (bench/main.ml): compare this run's deterministic
   work counters against the committed reference and exit nonzero on
   more than 10% drift. CI runs this in --smoke mode, so the committed
   file holds smoke-footprint values. *)
let check_ref : string option ref = ref None

(* ------------------------------------------------------------------ *)
(* Mixed-density workload                                              *)
(* ------------------------------------------------------------------ *)

(* Controlled document collection over [n] objects:
   - keywords 1..4   dense: ~n/8 random objects each (above the n/64
     density cutoff, so the hybrid policy packs them as bitmaps);
   - keywords 11..14 clustered: one contiguous quarter-width block each
     (a single run pair under the hybrid policy);
   - keywords 21..120 sparse: ~n/100 objects each (below every cutoff,
     stored as sorted arrays under both policies). *)
let mixed_docs ~rng ~n =
  Array.init n (fun i ->
      let b = Kwsc_util.Ibuf.create ~capacity:8 () in
      for w = 1 to 4 do
        if Prng.int rng 8 = 0 then Kwsc_util.Ibuf.push b w
      done;
      for j = 0 to 3 do
        let lo = j * (n / 4) and len = n / 8 in
        if i >= lo && i < lo + len then Kwsc_util.Ibuf.push b (11 + j)
      done;
      Kwsc_util.Ibuf.push b (21 + Prng.int rng 100);
      Doc.of_array (Kwsc_util.Ibuf.to_array b))

(* Time [Postings.query_into] over a query set on both indexes and
   cross-check the output checksums; returns (sparse_us, hybrid_us). *)
let time_pair ~label ~nq sparse_pst hybrid_pst wss =
  let out = Ibuf.create () and tmp = Ibuf.create () in
  let run pst () =
    let sum = ref 0 in
    Array.iter
      (fun ws ->
        Postings.query_into pst ws out tmp;
        sum := !sum + Ibuf.length out)
      wss;
    !sum
  in
  let per t = t /. float_of_int nq *. 1e6 in
  let s_sum, s_t = H.time_best ~reps:5 (run sparse_pst) in
  let h_sum, h_t = H.time_best ~reps:5 (run hybrid_pst) in
  if s_sum <> h_sum then failwith ("CMP: sparse/hybrid checksums disagree on " ^ label);
  Printf.printf "  %-24s sparse=%8.2fus/q  hybrid=%8.2fus/q  ratio=%5.2fx  (sum=%d)\n" label
    (per s_t) (per h_t)
    (per s_t /. per h_t)
    s_sum;
  (per s_t, per h_t, s_sum)

(* ------------------------------------------------------------------ *)
(* Planner-on vs planner-off equivalence sweep                         *)
(* ------------------------------------------------------------------ *)

(* One pass over every query surface; returns (surface, answer ids,
   total Stats.work) per surface. Run once with the planner off and once
   with it on: both lists must be slot-identical — the planner changes
   only the physical kernels, never an answer or a counter. *)
let sweep_surfaces ~orp ~lc ~srp ~sp ~rr ~l2 ~linf ~inv ~rects ~halfs ~spheres ~polys ~probes
    ~triples =
  let zip name parts = (name, Array.concat (List.rev (fst parts)), snd parts) in
  let fold f qs =
    List.fold_left
      (fun (ids, w) q ->
        let a, st = f q in
        (a :: ids, w + Kwsc.Stats.work st))
      ([], 0) qs
  in
  let nn_fold f =
    List.fold_left
      (fun (ids, w) p ->
        let rs, scanned = f p in
        (Array.map fst rs :: ids, w + scanned))
      ([], 0) probes
  in
  [
    zip "orp" (fold (fun (q, ws) -> Kwsc.Orp_kw.query_stats orp q ws) rects);
    zip "lc" (fold (fun (hs, ws) -> Kwsc.Lc_kw.query_stats lc hs ws) halfs);
    zip "srp" (fold (fun (s, ws) -> Kwsc.Srp_kw.query_stats srp s ws) spheres);
    zip "sp" (fold (fun (p, ws) -> Kwsc.Sp_kw.query_stats sp p ws) polys);
    zip "rr" (fold (fun (q, ws) -> Kwsc.Rr_kw.query_stats rr q ws) rects);
    zip "l2" (nn_fold (fun (p, ws) -> Kwsc.L2_nn_kw.query_count l2 p ~t':5 ws));
    zip "linf" (nn_fold (fun (p, ws) -> Kwsc.Linf_nn_kw.query_count linf p ~t':5 ws));
    zip "inverted"
      (List.fold_left
         (fun (ids, w) ws ->
           let a = Inverted.query inv ws in
           (a :: ids, w + Array.length a))
         ([], 0) triples);
  ]

(* ------------------------------------------------------------------ *)
(* Reference-counter gate                                              *)
(* ------------------------------------------------------------------ *)

let print_counters counters =
  Printf.printf "  work counters (scripts/cmp_ref.txt format):\n";
  List.iter (fun (k, v) -> Printf.printf "    %s %d\n" k v) counters

(* [key value] lines, [#]-comments and blanks skipped. Every reference
   key must exist in this run and stay within 10% (with a +-2 absolute
   floor for tiny counters); every computed counter must appear in the
   reference, so adding a counter forces regenerating the file. *)
let check_against_ref counters path =
  let ic = open_in path in
  let refs =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let entries = ref [] in
        (try
           while true do
             let line = String.trim (input_line ic) in
             if line <> "" && line.[0] <> '#' then
               match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
               | [ k; v ] -> entries := (k, int_of_string v) :: !entries
               | _ -> failwith (Printf.sprintf "CMP --check-ref: malformed line %S in %s" line path)
           done
         with End_of_file -> ());
        List.rev !entries)
  in
  let drift = ref [] in
  List.iter
    (fun (k, expect) ->
      match List.assoc_opt k counters with
      | None -> drift := Printf.sprintf "%s: in reference but not measured" k :: !drift
      | Some got ->
          let tol = max 2 (abs expect / 10) in
          if abs (got - expect) > tol then
            drift :=
              Printf.sprintf "%s: measured %d vs reference %d (tolerance %d)" k got expect tol
              :: !drift)
    refs;
  List.iter
    (fun (k, _) ->
      if not (List.mem_assoc k refs) then
        drift := Printf.sprintf "%s: measured but missing from %s (regenerate it)" k path :: !drift)
    counters;
  match List.rev !drift with
  | [] -> Printf.printf "  -> counter reference check vs %s [OK]\n" path
  | ds ->
      List.iter (fun d -> Printf.printf "  -> counter drift: %s\n" d) ds;
      Printf.eprintf "CMP: %d work counter(s) drifted beyond 10%% of %s\n" (List.length ds) path;
      exit 1

(* ------------------------------------------------------------------ *)
(* The experiment                                                      *)
(* ------------------------------------------------------------------ *)

let run () =
  H.header "CMP: hybrid containers vs sparse-only postings"
    "no claim (implementation optimisation); same answers, measured speedups";
  let saved_planner = !Planner.enabled in
  Fun.protect
    ~finally:(fun () -> Planner.enabled := saved_planner)
    (fun () ->
      Planner.enabled := true;
      let n = H.sized (if !H.quick then 50_000 else 200_000) in
      let nq = H.sized 512 in
      let rng = Prng.create 0xc39b in
      let docs = mixed_docs ~rng ~n in
      let hybrid = Inverted.build docs in
      let sparse = Inverted.build ~policy:Kwsc_util.Container.Sparse_only docs in
      let hp = Inverted.postings hybrid and sp_pst = Inverted.postings sparse in
      let hs, hd, hr = Postings.kind_counts hp in
      let ss, sd, sr = Postings.kind_counts sp_pst in
      Printf.printf "  N=%d  kinds: hybrid sparse=%d dense=%d runs=%d | sparse-only %d/%d/%d\n" n
        hs hd hr ss sd sr;
      if sd + sr <> 0 then failwith "CMP: Sparse_only policy produced non-sparse containers";
      if hd < 4 || hr < 4 then failwith "CMP: mixed workload failed to produce dense/run containers";

      (* Intersection throughput by density regime. *)
      let pick arr = Array.init nq (fun i -> arr.(i mod Array.length arr)) in
      let dense_pairs = pick [| [| 1; 2 |]; [| 2; 3 |]; [| 3; 4 |]; [| 1; 3 |]; [| 2; 4 |] |] in
      let clustered_pairs = pick [| [| 11; 1 |]; [| 12; 2 |]; [| 13; 14 |]; [| 11; 12 |] |] in
      let sparse_pairs =
        Array.init nq (fun _ -> [| 21 + Prng.int rng 100; 21 + Prng.int rng 100 |])
      in
      let d_s, d_h, d_sum = time_pair ~label:"dense x dense" ~nq sp_pst hp dense_pairs in
      let c_s, c_h, c_sum = time_pair ~label:"clustered / mixed" ~nq sp_pst hp clustered_pairs in
      let sp_s, sp_h, sp_sum = time_pair ~label:"sparse x sparse" ~nq sp_pst hp sparse_pairs in

      (* The adversarial sparse regime: the threshold workload's postings
         are contiguous blocks, so the hybrid policy stores them as runs —
         overhead here is the whole dispatch + planning stack. *)
      let tm = H.sized 100_000 in
      let tobjs, tkws = H.threshold_workload ~rng ~m:tm ~k:2 ~d:2 ~range:1000.0 in
      let tdocs = Array.map snd tobjs in
      let th = Inverted.build tdocs in
      let ts = Inverted.build ~policy:Kwsc_util.Container.Sparse_only tdocs in
      let t_qs = pick [| tkws |] in
      let t_s, t_h, t_sum =
        time_pair ~label:"threshold workload" ~nq (Inverted.postings ts) (Inverted.postings th)
          t_qs
      in

      let dense_speedup = d_s /. d_h in
      let overhead = max (sp_h /. sp_s) (t_h /. t_s) in
      Printf.printf "  -> dense speedup %.2fx (target >= 2x) %s\n" dense_speedup
        (if dense_speedup >= 2.0 then "[OK]" else "[BELOW TARGET]");
      Printf.printf "  -> sparse overhead %.2fx (target <= 1.1x) %s\n" overhead
        (if overhead <= 1.1 then "[OK]" else "[ABOVE TARGET]");

      (* Planner on/off equivalence across every query surface. *)
      let n2 = H.sized 20_000 in
      let nq2 = if !H.smoke then 24 else 64 in
      let k = 3 in
      (* integer coordinates so the L2 engine (Corollary 7: small
         non-negative integer coordinates) accepts the same dataset *)
      let objs =
        let docs2 =
          Kwsc_workload.Gen.docs ~rng ~n:n2 ~vocab:100 ~theta:0.9 ~len_min:1 ~len_max:6
        in
        Array.init n2 (fun i ->
            (Array.init 2 (fun _ -> float_of_int (Prng.int rng 1000)), docs2.(i)))
      in
      let orp = Kwsc.Orp_kw.build ~k objs in
      let lc = Kwsc.Lc_kw.build ~k objs in
      let srp = Kwsc.Srp_kw.build ~k objs in
      let sp = Kwsc.Sp_kw.build ~k objs in
      let rr =
        (* Rr_kw indexes rectangle objects: inflate each point to a unit box. *)
        Kwsc.Rr_kw.build ~k
          (Array.map
             (fun (p, doc) ->
               (Kwsc_geom.Rect.make p (Array.map (fun x -> x +. 1.0) p), doc))
             objs)
      in
      let l2 = Kwsc.L2_nn_kw.build ~k objs in
      let linf = Kwsc.Linf_nn_kw.build ~k objs in
      let inv = Inverted.build (Array.map snd objs) in
      let triple () =
        let a = 1 + Prng.int rng 100 in
        let b = ref (1 + Prng.int rng 100) in
        while !b = a do
          b := 1 + Prng.int rng 100
        done;
        let c = ref (1 + Prng.int rng 100) in
        while !c = a || !c = !b do
          c := 1 + Prng.int rng 100
        done;
        [| a; !b; !c |]
      in
      let triples = List.init nq2 (fun _ -> triple ()) in
      let rects = List.map (fun ws -> (H.rect_of_trial rng, ws)) triples in
      let halfs =
        List.map
          (fun ws ->
            let c = Array.init 2 (fun _ -> Prng.float rng 2.0 -. 1.0) in
            ([ Kwsc_geom.Halfspace.make c (Prng.float rng 1000.0) ], ws))
          triples
      in
      let spheres =
        List.map
          (fun ws ->
            let c = Array.init 2 (fun _ -> Prng.float rng 1000.0) in
            (Kwsc_geom.Sphere.make c (100.0 +. Prng.float rng 200.0), ws))
          triples
      in
      let polys =
        List.map
          (fun ((q, _), ws) ->
            let lo = q.Kwsc_geom.Rect.lo and hi = q.Kwsc_geom.Rect.hi in
            let box =
              [
                Kwsc_geom.Halfspace.make [| 1.0; 0.0 |] hi.(0);
                Kwsc_geom.Halfspace.make [| -1.0; 0.0 |] (-.lo.(0));
                Kwsc_geom.Halfspace.make [| 0.0; 1.0 |] hi.(1);
                Kwsc_geom.Halfspace.make [| 0.0; -1.0 |] (-.lo.(1));
              ]
            in
            (Kwsc_geom.Polytope.make ~dim:2 box, ws))
          (List.combine rects triples)
      in
      let probes =
        List.map
          (fun ws -> (Array.init 2 (fun _ -> float_of_int (Prng.int rng 1000)), ws))
          triples
      in
      let sweep () =
        sweep_surfaces ~orp ~lc ~srp ~sp ~rr ~l2 ~linf ~inv ~rects ~halfs ~spheres ~polys ~probes
          ~triples
      in
      Planner.enabled := false;
      let off = sweep () in
      Planner.enabled := true;
      Inverted.reset_cache inv;
      let on = sweep () in
      List.iter2
        (fun (name, ids_off, w_off) (name', ids_on, w_on) ->
          assert (name = name');
          if ids_off <> ids_on then
            failwith (Printf.sprintf "CMP: planner changed answers on surface %s" name);
          if w_off <> w_on then
            failwith
              (Printf.sprintf "CMP: planner changed work counters on surface %s (%d vs %d)" name
                 w_off w_on))
        off on;
      Printf.printf
        "  -> planner on/off: answers and work counters slot-identical over %d surfaces [OK]\n"
        (List.length on);

      (* Cache: hammer one cache-worthy dense pair. *)
      Inverted.reset_cache hybrid;
      let hot = [| 1; 2 |] in
      let hot_len = Array.length (Inverted.query hybrid hot) in
      for _ = 1 to 99 do
        ignore (Inverted.query hybrid hot)
      done;
      let hits, misses, evictions = Inverted.cache_stats hybrid in
      Printf.printf "  cache on hot pair: hits=%d misses=%d evictions=%d (|isect|=%d)\n" hits
        misses evictions hot_len;
      if hits < 90 then failwith "CMP: hot pair was not served from the cache";

      let counters =
        [
          ("n", n);
          ("kinds_sparse", hs);
          ("kinds_dense", hd);
          ("kinds_runs", hr);
          ("dense_sum", d_sum);
          ("clustered_sum", c_sum);
          ("sparse_sum", sp_sum);
          ("threshold_sum", t_sum);
          ("cache_hits", hits);
          ("cache_misses", misses);
        ]
        @ List.map (fun (name, _, w) -> ("work_" ^ name, w)) on
      in
      print_counters counters;
      (match !check_ref with Some path -> check_against_ref counters path | None -> ());

      if !H.smoke then Printf.printf "  (smoke run: numbers are crash-test only)\n";
      let oc = open_out "BENCH_pr5.json" in
      Printf.fprintf oc
        "{\n\
        \  \"bench\": \"hybrid containers vs sparse-only postings\",\n\
        \  \"smoke\": %b,\n\
        \  \"n\": %d,\n\
        \  \"queries\": %d,\n\
        \  \"kinds_hybrid\": {\"sparse\": %d, \"dense\": %d, \"runs\": %d},\n\
        \  \"dense\": {\"sparse_us_per_q\": %.3f, \"hybrid_us_per_q\": %.3f, \"speedup\": %.3f},\n\
        \  \"clustered\": {\"sparse_us_per_q\": %.3f, \"hybrid_us_per_q\": %.3f, \"speedup\": \
         %.3f},\n\
        \  \"sparse\": {\"sparse_us_per_q\": %.3f, \"hybrid_us_per_q\": %.3f, \"overhead\": \
         %.3f},\n\
        \  \"threshold\": {\"sparse_us_per_q\": %.3f, \"hybrid_us_per_q\": %.3f, \"overhead\": \
         %.3f},\n\
        \  \"planner_equivalent\": true,\n\
        \  \"cache\": {\"hits\": %d, \"misses\": %d, \"evictions\": %d},\n\
        \  \"work\": {%s}\n\
         }\n"
        !H.smoke n nq hs hd hr d_s d_h (d_s /. d_h) c_s c_h (c_s /. c_h) sp_s sp_h (sp_h /. sp_s)
        t_s t_h (t_h /. t_s) hits misses evictions
        (String.concat ", "
           (List.map (fun (name, _, w) -> Printf.sprintf "\"%s\": %d" name w) on));
      close_out oc;
      Printf.printf "  wrote BENCH_pr5.json\n")
