(* FLAT: frozen arena-backed layouts vs the boxed pointer structures they
   are compiled from. No paper claim backs this experiment — the flat
   kernels are an implementation optimisation (DESIGN.md section 8) — so
   it records raw numbers: build + freeze cost, range reporting, k-NN and
   posting-intersection throughput, and words allocated per query on each
   path, both as a table and as machine-readable BENCH_pr3.json.
   Differential correctness of the two paths is the test suite's job
   (test_flat_diff); this experiment only measures.

   --boxed / --flat restrict which side is timed (for profiling one path
   in isolation); BENCH_pr3.json is written only when both sides ran. *)

module H = Harness
module Prng = Kwsc_util.Prng
module Ibuf = Kwsc_util.Ibuf
module Kd = Kwsc_kdtree.Kd
module Kd_flat = Kwsc_kdtree.Kd_flat
module Inverted = Kwsc_invindex.Inverted
module Postings = Kwsc_invindex.Postings

let side : [ `Both | `Boxed | `Flat ] ref = ref `Both
let run_boxed () = !side <> `Flat
let run_flat () = !side <> `Boxed

(* Words allocated per run of [f], averaged over [iters] runs and counting
   both heaps: arrays above Max_young_wosize bypass the minor heap, so a
   minor-words delta alone would hide the boxed paths' big copies. *)
let words_per ~iters f =
  ignore (f ());
  (* warm caches and reusable buffers *)
  let before = Gc.allocated_bytes () in
  for _ = 1 to iters do
    ignore (f ())
  done;
  (Gc.allocated_bytes () -. before)
  /. float_of_int iters
  /. float_of_int (Sys.word_size / 8)

let run () =
  H.header "FLAT: flat layouts vs boxed trees"
    "no claim (implementation optimisation); same answers, measured speedups";
  let n = H.sized (if !H.quick then 20_000 else 100_000) in
  let nq = H.sized (if !H.quick then 256 else 1024) in
  let rng = Prng.create 0xf1a7 in
  let objs = H.zipf_objs ~rng ~n ~d:2 ~vocab:200 ~range:1000.0 in
  let tagged = Array.init n (fun i -> (fst objs.(i), i)) in
  let rects = Array.init nq (fun _ -> H.rect_of_trial rng) in
  let probes = Array.init nq (fun _ -> Array.init 2 (fun _ -> Prng.float rng 1000.0)) in
  let wss =
    Array.init nq (fun _ -> [| 1 + Prng.int rng 20; 21 + Prng.int rng 60 |])
  in
  (* Both sides need the boxed builds: the flat form is compiled from them. *)
  let kd, build_t = H.time_best ~reps:3 (fun () -> Kd.build tagged) in
  let kdf, freeze_t = H.time_best ~reps:3 (fun () -> Kd.freeze kd) in
  let inv, inv_t =
    H.time_best ~reps:3 (fun () -> Inverted.build (Array.map snd objs))
  in
  let pst = Inverted.postings inv in
  Printf.printf
    "  N=%d  kd-build=%7.1fms  freeze=%6.1fms (%4.1f%% of build)  inv-build=%7.1fms\n"
    n (build_t *. 1e3) (freeze_t *. 1e3)
    (100.0 *. freeze_t /. build_t)
    (inv_t *. 1e3);

  (* -------------------------------------------------------------- *)
  (* Throughput: each thunk runs the whole query set once.           *)
  (* -------------------------------------------------------------- *)
  let per t = t /. float_of_int nq *. 1e6 in
  let section label ~reps boxed flat =
    let bt = if run_boxed () then per (snd (H.time_best ~reps boxed)) else nan in
    let ft = if run_flat () then per (snd (H.time_best ~reps flat)) else nan in
    if run_boxed () && run_flat () then
      Printf.printf "  %-24s boxed=%8.2fus/q  flat=%8.2fus/q  speedup=%5.2fx\n"
        label bt ft (bt /. ft)
    else
      Printf.printf "  %-24s %s=%8.2fus/q\n" label
        (if run_boxed () then "boxed" else "flat")
        (if run_boxed () then bt else ft);
    (bt, ft)
  in
  (* Range reporting, kernel vs kernel (callback APIs on both sides). *)
  let sum_boxed = ref 0 and sum_flat = ref 0 in
  let boxed_range () =
    sum_boxed := 0;
    Array.iter (fun q -> Kd.range_iter kd q (fun _ v -> sum_boxed := !sum_boxed + v)) rects
  in
  let flat_range () =
    sum_flat := 0;
    Array.iter
      (fun q -> Kd_flat.range_iter kdf q (fun _ v -> sum_flat := !sum_flat + v))
      rects
  in
  let range_bt, range_ft = section "range reporting" ~reps:5 boxed_range flat_range in
  if run_boxed () && run_flat () && !sum_boxed <> !sum_flat then
    failwith "FLAT: boxed and flat range checksums disagree";
  (* k-NN, k = 8, Linf. *)
  let sink = ref 0.0 in
  let boxed_nn () =
    Array.iter
      (fun q ->
        List.iter (fun (dist, _, _) -> sink := !sink +. dist) (Kd.nearest kd ~metric:`Linf q 8))
      probes
  in
  let flat_nn () =
    Array.iter
      (fun q ->
        Array.iter
          (fun (dist, _) -> sink := !sink +. dist)
          (Kd_flat.nearest kdf ~metric:`Linf q 8))
      probes
  in
  let nn_bt, nn_ft = section "nearest (k=8, Linf)" ~reps:5 boxed_nn flat_nn in
  (* Posting intersection: fresh-copy pairwise merge (the pre-arena idiom)
     vs rarest-first galloping into reused buffers. *)
  let isum_boxed = ref 0 and isum_flat = ref 0 in
  let boxed_isect () =
    isum_boxed := 0;
    Array.iter
      (fun ws ->
        let acc = ref (Inverted.posting inv ws.(0)) in
        for i = 1 to Array.length ws - 1 do
          acc := Kwsc_util.Sorted.intersect !acc (Inverted.posting inv ws.(i))
        done;
        isum_boxed := !isum_boxed + Array.length !acc)
      wss
  in
  let out = Ibuf.create () and tmp = Ibuf.create () in
  let flat_isect () =
    isum_flat := 0;
    Array.iter
      (fun ws ->
        Postings.query_into pst ws out tmp;
        isum_flat := !isum_flat + Ibuf.length out)
      wss
  in
  let isect_bt, isect_ft = section "posting intersection" ~reps:5 boxed_isect flat_isect in
  if run_boxed () && run_flat () && !isum_boxed <> !isum_flat then
    failwith "FLAT: boxed and flat intersection checksums disagree";

  (* -------------------------------------------------------------- *)
  (* Allocation: words per query, old list/copy APIs vs flat kernels. *)
  (* -------------------------------------------------------------- *)
  let iters = 3 in
  let alloc label boxed flat =
    let wq f = words_per ~iters f /. float_of_int nq in
    let wb = if run_boxed () then wq boxed else nan in
    let wf = if run_flat () then wq flat else nan in
    if run_boxed () && run_flat () then
      Printf.printf "  %-24s boxed=%9.1f w/q   flat=%9.1f w/q   ratio=%6.1fx\n" label wb
        (* a zero-allocation steady state divides by the callback sink's
           noise floor; clamp to one word so the ratio stays finite *)
        (max wf 1.0)
        (wb /. max wf 1.0)
    else
      Printf.printf "  %-24s %s=%9.1f w/q\n" label
        (if run_boxed () then "boxed" else "flat")
        (if run_boxed () then wb else wf);
    (wb, max wf 1.0)
  in
  let boxed_range_list () =
    Array.iter (fun q -> ignore (Kd.range kd q)) rects
  in
  let ra_b, ra_f = alloc "alloc: range" boxed_range_list flat_range in
  let al_b, al_f = alloc "alloc: intersection" boxed_isect flat_isect in

  (* -------------------------------------------------------------- *)
  (* Verdicts and JSON.                                              *)
  (* -------------------------------------------------------------- *)
  if run_boxed () && run_flat () then (
    let speed_ok = range_bt /. range_ft >= 1.5 && isect_bt /. isect_ft >= 1.5 in
    let alloc_ok = ra_b /. ra_f >= 10.0 && al_b /. al_f >= 10.0 in
    Printf.printf "  -> flat speedups: range %.2fx, intersection %.2fx (target >= 1.5x) %s\n"
      (range_bt /. range_ft) (isect_bt /. isect_ft)
      (if speed_ok then "[OK]" else "[BELOW TARGET]");
    Printf.printf "  -> alloc reduction: range %.1fx, intersection %.1fx (target >= 10x) %s\n"
      (ra_b /. ra_f) (al_b /. al_f)
      (if alloc_ok then "[OK]" else "[BELOW TARGET]");
    if !H.smoke then Printf.printf "  (smoke run: BENCH_pr3.json not written)\n"
    else begin
    let oc = open_out "BENCH_pr3.json" in
    Printf.fprintf oc
      "{\n\
      \  \"bench\": \"flat layouts vs boxed trees\",\n\
      \  \"n\": %d,\n\
      \  \"queries\": %d,\n\
      \  \"kd_build_s\": %.6f,\n\
      \  \"freeze_s\": %.6f,\n\
      \  \"inv_build_s\": %.6f,\n\
      \  \"range\": {\"boxed_us_per_q\": %.3f, \"flat_us_per_q\": %.3f, \"speedup\": %.3f},\n\
      \  \"nearest\": {\"boxed_us_per_q\": %.3f, \"flat_us_per_q\": %.3f, \"speedup\": %.3f},\n\
      \  \"intersection\": {\"boxed_us_per_q\": %.3f, \"flat_us_per_q\": %.3f, \"speedup\": %.3f},\n\
      \  \"alloc_words_per_q\": {\n\
      \    \"range\": {\"boxed\": %.1f, \"flat\": %.1f, \"ratio\": %.1f},\n\
      \    \"intersection\": {\"boxed\": %.1f, \"flat\": %.1f, \"ratio\": %.1f}\n\
      \  }\n\
       }\n"
      n nq build_t freeze_t inv_t range_bt range_ft (range_bt /. range_ft) nn_bt nn_ft
      (nn_bt /. nn_ft) isect_bt isect_ft (isect_bt /. isect_ft) ra_b ra_f (ra_b /. ra_f)
      al_b al_f (al_b /. al_f);
    close_out oc;
    Printf.printf "  wrote BENCH_pr3.json\n"
    end)
  else
    Printf.printf "  (one side disabled by --boxed/--flat: no speedups, no BENCH_pr3.json)\n"
