(* Multicore scaling: bulk-build throughput and batched-query QPS at 1, 2
   and 4 domains. No paper claim backs this experiment — the pool is an
   implementation extension — so instead of a shape verdict it records
   raw numbers, both as a table and as machine-readable BENCH_pr2.json
   (with the host's core count, since speedup on a 1-core runner is
   honestly ~1x). Correctness of the parallel paths is the test suite's
   job (test_parallel_diff); this experiment only measures. *)

module H = Harness
module Prng = Kwsc_util.Prng
module Pool = Kwsc_util.Pool

let time_best = H.time_best

let run () =
  H.header "PAR: multicore bulk-build & batched queries"
    "no claim (implementation extension); structures identical at every pool size";
  let n = H.sized (if !H.quick then 30_000 else 100_000) in
  let nq = H.sized (if !H.quick then 512 else 2048) in
  let rng = Prng.create 0xbead in
  let objs = H.zipf_objs ~rng ~n ~d:2 ~vocab:200 ~range:1000.0 in
  let tagged = Array.map (fun (p, _) -> (p, ())) objs in
  let sub = Array.sub objs 0 (n / 4) in
  let queries =
    Array.init nq (fun _ ->
        (H.rect_of_trial rng, [| 1 + Prng.int rng 20; 21 + Prng.int rng 40 |]))
  in
  let cores = Domain.recommended_domain_count () in
  let dcounts =
    if cores = 1 then (
      Printf.printf
        "  !! host reports 1 core: skipping the 2- and 4-domain rows \
         (multi-domain \"speedups\" on one core measure scheduler noise, \
         not scaling)\n";
      [ 1 ])
    else [ 1; 2; 4 ]
  in
  let rows =
    List.map
      (fun dcount ->
        let pool = Pool.create ~domains:dcount () in
        Fun.protect
          ~finally:(fun () -> Pool.shutdown pool)
          (fun () ->
            let _, kd_t = time_best ~reps:3 (fun () -> Kwsc_kdtree.Kd.build ~pool tagged) in
            let orp, orp_t =
              time_best ~reps:(if !H.quick then 1 else 2) (fun () ->
                  Kwsc.Orp_kw.build ~pool ~k:2 sub)
            in
            let _, batch_t =
              time_best ~reps:3 (fun () -> Kwsc.Orp_kw.query_batch ~pool orp queries)
            in
            Printf.printf
              "  domains=%d  kd-build=%7.1fms (%5.2f Mpts/s)  orp-build=%7.1fms  \
               batch=%7.1fms (%7.0f q/s)\n"
              dcount (kd_t *. 1e3)
              (float_of_int n /. kd_t /. 1e6)
              (orp_t *. 1e3) (batch_t *. 1e3)
              (float_of_int nq /. batch_t);
            (dcount, kd_t, orp_t, batch_t)))
      dcounts
  in
  let _, kd1, orp1, batch1 = List.hd rows in
  List.iter
    (fun (d, kd_t, orp_t, batch_t) ->
      if d > 1 then
        Printf.printf "  -> domains=%d speedup: kd-build %.2fx  orp-build %.2fx  batch %.2fx\n" d
          (kd1 /. kd_t) (orp1 /. orp_t) (batch1 /. batch_t))
    rows;
  if !H.smoke then Printf.printf "  (smoke run: BENCH_pr2.json not written)\n"
  else begin
  let oc = open_out "BENCH_pr2.json" in
  Printf.fprintf oc
    "{\n\
    \  \"bench\": \"multicore bulk-build & batched queries\",\n\
    \  \"cores\": %d,\n\
    \  \"kd_points\": %d,\n\
    \  \"orp_objects\": %d,\n\
    \  \"batch_queries\": %d,\n\
    \  \"rows\": [\n\
     %s\n\
    \  ]\n\
     }\n"
    cores n (Array.length sub) nq
    (String.concat ",\n"
       (List.map
          (fun (d, kd_t, orp_t, batch_t) ->
            Printf.sprintf
              "    {\"domains\": %d, \"kd_build_s\": %.6f, \"orp_build_s\": %.6f, \
               \"query_batch_s\": %.6f, \"kd_speedup\": %.3f, \"orp_speedup\": %.3f, \
               \"batch_speedup\": %.3f}"
              d kd_t orp_t batch_t (kd1 /. kd_t) (orp1 /. orp_t) (batch1 /. batch_t))
          rows));
  close_out oc;
  Printf.printf "  wrote BENCH_pr2.json\n"
  end
