(* Benchmark harness entry point.

   Usage:
     dune exec bench/main.exe                 -- every experiment + micro
     dune exec bench/main.exe -- --quick      -- smaller sweeps
     dune exec bench/main.exe -- --smoke      -- tiny-N CI sanity run
     dune exec bench/main.exe -- --only T1.1  -- one experiment
     dune exec bench/main.exe -- --no-micro   -- skip Bechamel section
     dune exec bench/main.exe -- --domains 4  -- default pool size (KWSC_DOMAINS)
     dune exec bench/main.exe -- --flat       -- FLAT: time only the flat side
     dune exec bench/main.exe -- --boxed      -- FLAT: time only the boxed side

   Each experiment regenerates one Table-1 row or figure of the paper
   (DESIGN.md section 3 maps ids to paper artifacts; EXPERIMENTS.md records
   paper-vs-measured). *)

let () =
  (* OOC's RSS measurement re-execs this binary, one fresh process per
     phase; dispatch before the harness banner prints anything *)
  (match Array.to_list Sys.argv with
  | _ :: "--ooc-phase" :: mode :: snap :: qfile :: ofile :: _ ->
      Oocbench.child_phase ~mode ~snap ~qfile ~ofile;
      exit 0
  | _ -> ());
  let only = ref None and micro = ref true in
  let args = Array.to_list Sys.argv in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
        Harness.quick := true;
        parse rest
    | "--smoke" :: rest ->
        (* Smoke implies quick; Harness.sized then shrinks every dataset
           so CI can crash-test all experiments in seconds. *)
        Harness.quick := true;
        Harness.smoke := true;
        parse rest
    | "--no-micro" :: rest ->
        micro := false;
        parse rest
    | "--flat" :: rest ->
        Flatbench.side := `Flat;
        parse rest
    | "--boxed" :: rest ->
        Flatbench.side := `Boxed;
        parse rest
    | "--check-ref" :: path :: rest ->
        (* CMP: gate this run's deterministic work counters against the
           committed reference (scripts/cmp_ref.txt); exit nonzero on
           more than 10% drift. *)
        Cmpbench.check_ref := Some path;
        parse rest
    | "--only" :: id :: rest ->
        only := Some id;
        parse rest
    | "--domains" :: d :: rest ->
        (* Sets the default pool's size for every experiment; parsed
           before any build runs, so the lazy default pool sees it. *)
        (match int_of_string_opt d with
        | Some n when n >= 1 -> Unix.putenv "KWSC_DOMAINS" d
        | _ ->
            Printf.eprintf "--domains expects a positive integer, got %s\n" d;
            exit 1);
        parse rest
    | "--help" :: _ ->
        print_endline
          "options: [--quick] [--smoke] [--no-micro] [--only EXPID] [--domains N] \
           [--flat|--boxed] [--check-ref FILE]";
        print_endline "experiment ids:";
        List.iter (fun (id, desc, _) -> Printf.printf "  %-6s %s\n" id desc) Experiments.all;
        exit 0
    | _ :: rest -> parse rest
  in
  parse (List.tl args);
  let selected =
    match !only with
    | None -> Experiments.all
    | Some id -> (
        match List.filter (fun (i, _, _) -> i = id) Experiments.all with
        | [] ->
            Printf.eprintf "unknown experiment id %s (try --help)\n" id;
            exit 1
        | l -> l)
  in
  Printf.printf "kwsc benchmark harness (%s mode, %d experiments)\n"
    (if !Harness.quick then "quick" else "full")
    (List.length selected);
  List.iter
    (fun (id, _, fn) ->
      let _, elapsed = Kwsc_util.Timer.time fn in
      Printf.printf "[%s done in %.1fs]\n" id elapsed)
    selected;
  if !micro && !only = None then Micro.run ();
  print_endline "\nAll experiments completed."
