(* Shared machinery for the experiment harness: controlled workloads,
   work/time measurement, exponent fits, table printing. *)

module Prng = Kwsc_util.Prng
module Doc = Kwsc_invindex.Doc

let quick = ref false

(* Smoke mode (--smoke, `make bench-smoke`): every experiment at tiny N so
   CI can exercise the whole harness end-to-end in seconds. Numbers from a
   smoke run are for crash-testing only, not measurement. *)
let smoke = ref false

(* Scale a dataset / query-count choice down to the smoke footprint. *)
let sized n = if !smoke then max 256 (n / 50) else n

let fmt_exp = Printf.sprintf "%.3f"

let header title paper_claim =
  Printf.printf "\n==== %s ====\n" title;
  Printf.printf "paper: %s\n" paper_claim

let row fmt = Printf.printf fmt

let verdict ~label ~measured ~target ~tolerance =
  let ok = abs_float (measured -. target) <= tolerance in
  Printf.printf "  -> %s: measured %.3f vs paper %.3f (tolerance %.2f) %s\n" label measured target
    tolerance
    (if ok then "[shape OK]" else "[DEVIATES]")

(* ------------------------------------------------------------------ *)
(* Workloads                                                           *)
(* ------------------------------------------------------------------ *)

(* OUT = 0 regime of Section 1: half the objects carry all query keywords
   but live outside the query region; the other half live inside it without
   the keywords. Returns (objects, query rectangle, keywords). *)
let poison_workload ~rng ~n ~d ~k ~range =
  let kws = Array.init k (fun i -> i + 1) in
  let objs, q = Kwsc_workload.Gen.poison ~rng ~n ~d ~range ~kws in
  (objs, q, kws)

(* Controlled-output regime: a fraction [frac] of the keyword-bearing
   objects is moved inside the query rectangle, so OUT ~ frac * n/2. *)
let overlap_workload ~rng ~n ~d ~k ~range ~frac =
  let kws = Array.init k (fun i -> i + 1) in
  let objs, q = Kwsc_workload.Gen.poison ~rng ~n ~d ~range ~kws in
  let half = range /. 2.0 in
  let moved =
    Array.map
      (fun ((p, doc) as obj) ->
        if Doc.mem_all doc kws && Prng.float rng 1.0 < frac then
          (Array.map (fun _ -> Prng.float rng (half -. 2.0)) p, doc)
        else obj)
      objs
  in
  (moved, q, kws)

(* Zipfian general-purpose dataset. *)
let zipf_objs ~rng ~n ~d ~vocab ~range =
  let pts = Kwsc_workload.Gen.points_uniform ~rng ~n ~d ~range in
  let docs = Kwsc_workload.Gen.docs ~rng ~n ~vocab ~theta:0.9 ~len_min:1 ~len_max:6 in
  Array.init n (fun i -> (pts.(i), docs.(i)))

(* ------------------------------------------------------------------ *)
(* Measurement                                                         *)
(* ------------------------------------------------------------------ *)

(* Median work (objects/nodes examined) and wall time over [queries]. *)
let measure_queries queries =
  let works = Array.map (fun f -> float_of_int (f ())) queries in
  let _, elapsed = Kwsc_util.Timer.time (fun () -> Array.iter (fun f -> ignore (f ())) queries) in
  (Kwsc_util.Stats.median works, elapsed /. float_of_int (Array.length queries))

let n_sweep ~base =
  if !smoke then [ max 128 (base / 8); max 256 (base / 4) ]
  else if !quick then [ base; base * 2; base * 4 ]
  else [ base; base * 2; base * 4; base * 8 ]

(* Best-of-[reps] wall time of [f]; returns the last result too. *)
let time_best ~reps f =
  let best = ref infinity in
  let result = ref None in
  for _ = 1 to reps do
    let r, t = Kwsc_util.Timer.time f in
    result := Some r;
    if t < !best then best := t
  done;
  (Option.get !result, !best)

let fit_and_print ~label ~target ~tolerance pts =
  let e = Kwsc_util.Stats.fit_exponent pts in
  verdict ~label ~measured:e ~target ~tolerance;
  e

(* Per-N row printer: N, median work, mean time. *)
let print_scale_row n work time extra =
  Printf.printf "  N=%7d  work=%9.1f  time=%8.1fus%s\n" n work (time *. 1e6) extra

(* Worst-case OUT = 0 instance: k keywords with pairwise-disjoint supports,
   each of frequency just below the root large-threshold N^(1-1/k), so the
   query must scan one whole materialized list — the tight regime of the
   strong k-set-disjointness conjecture. All documents have size 1, hence
   N = m. *)
let threshold_workload ~rng ~m ~k ~d ~range =
  let f = max 1 (int_of_float (float_of_int m ** (1.0 -. (1.0 /. float_of_int k))) - 1) in
  let objs =
    Array.init m (fun i ->
        let doc =
          if i < k * f then Doc.of_list [ 1 + (i / f) ]
          else Doc.of_list [ k + 1 + (i mod 50) ]
        in
        (Array.init d (fun _ -> Prng.float rng range), doc))
  in
  (objs, Array.init k (fun i -> i + 1))

(* Every document contains both query keywords (plus filler), so keyword
   pruning never fires and a query's cost is purely the geometric
   crossing structure — the measurement for Lemmas 9-10 and the
   d > k geometric terms. *)
let covered_workload ~rng ~n ~d ~range =
  let objs =
    Array.init n (fun i ->
        ( Array.init d (fun _ -> Prng.float rng range),
          Doc.of_list [ 1; 2; 3 + (i mod 40) ] ))
  in
  (objs, [| 1; 2 |])

(* Validate an upper bound: every (n, out, work) row must satisfy
   work <= c * bound n out for a modest constant c. *)
let check_bound ~label ~bound ~max_ratio rows =
  let worst = ref 0.0 in
  List.iter
    (fun (n, out, work) ->
      let b = bound n out in
      let r = work /. b in
      if r > !worst then worst := r;
      Printf.printf "  N=%7d OUT=%6d work=%9.0f bound=%9.0f ratio=%.3f\n" n out work b r)
    rows;
  Printf.printf "  -> %s: worst work/bound ratio %.3f (must stay <= %.1f) %s\n" label !worst
    max_ratio
    (if !worst <= max_ratio then "[bound holds]" else "[BOUND VIOLATED]")

(* Threshold workload variant with a guaranteed small intersection: all k
   keywords stay just below the large threshold, and [shared] extra objects
   contain all of them — the worst-case regime for the NN probes of
   Corollaries 4 and 7. *)
let threshold_nn_workload ~rng ~m ~k ~d ~range ~shared =
  let f =
    max 1 (int_of_float (float_of_int m ** (1.0 -. (1.0 /. float_of_int k))) - shared - 2)
  in
  let all = List.init k (fun i -> i + 1) in
  let objs =
    Array.init m (fun i ->
        let doc =
          if i < shared then Doc.of_list all
          else if i < shared + (k * f) then Doc.of_list [ 1 + ((i - shared) / f) ]
          else Doc.of_list [ k + 1 + (i mod 50) ]
        in
        (Array.init d (fun _ -> Prng.float rng range), doc))
  in
  (objs, Array.of_list all)


(* A mid-size random query rectangle in [0, 1000]^2. *)
let rect_of_trial rng =
  let a = Array.init 2 (fun _ -> Prng.float rng 800.0) in
  Kwsc_geom.Rect.make a (Array.map (fun x -> x +. 100.0 +. Prng.float rng 100.0) a)
