(* SERVE: the kwsc serve loop — epoch-pinned read latency under a mixed
   update/query stream, and durable checkpoint restore vs a cold replay
   rebuild (DESIGN.md section 14). No paper claim backs this experiment:
   serving is the repo's dynamization follow-up, so it records raw
   operational numbers as a table and as machine-readable BENCH_pr9.json.
   Targets: restored answers and counters identical to the live server's,
   and a checkpoint restore at least 5x faster than the cold rebuild it
   replaces (at N = 10^5 in full mode). *)

module H = Harness
module Prng = Kwsc_util.Prng
module C = Kwsc_snapshot.Codec
module Serve = Kwsc_serve.Serve

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0 else sorted.(min (n - 1) (int_of_float (p *. float_of_int n)))

let counters (st : Kwsc.Stats.query) =
  ( st.Kwsc.Stats.nodes_visited,
    st.Kwsc.Stats.covered_nodes,
    st.Kwsc.Stats.crossing_nodes,
    st.Kwsc.Stats.pivot_checked,
    st.Kwsc.Stats.small_scanned,
    st.Kwsc.Stats.pruned_empty,
    st.Kwsc.Stats.pruned_geom,
    st.Kwsc.Stats.reported )

let restore_exn path =
  match Serve.restore path with Ok s -> s | Error e -> failwith (C.error_to_string e)

let file_size path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> in_channel_length ic)

let run () =
  H.header "SERVE: live serving loop (epoch reads, checkpoint restore)"
    "no claim (serving layer); identical answers, restore >= 5x faster than cold rebuild";
  let n = H.sized (if !H.quick then 20_000 else 100_000) in
  let nq = H.sized 400 in
  let rng = Prng.create 0x5e4e in
  let objs = H.zipf_objs ~rng ~n ~d:2 ~vocab:60 ~range:1000.0 in
  let rects = Array.init nq (fun _ -> H.rect_of_trial rng) in
  let wss =
    (* two keywords from disjoint ranges: distinct by construction *)
    Array.init nq (fun _ -> [| 1 + Prng.int rng 20; 21 + Prng.int rng 39 |])
  in

  (* ---- mixed update/query stream ---------------------------------- *)
  (* Seed the server with half the objects, then stream the rest in as a
     writer while timing single epoch-pinned reads between updates: one
     read after every update, a delete every 4th update, maintenance
     every 256th. Each read pins the then-current epoch, so the
     latencies below are exactly what a reader domain would see. *)
  let server = Serve.create ~k:2 ~d:2 () in
  let half = n / 2 in
  for i = 0 to half - 1 do
    ignore (Serve.insert server objs.(i))
  done;
  let stream = n - half in
  let lat = Array.make stream 0.0 in
  let reads = ref 0 and read_work = ref 0 in
  let (), stream_s =
    Kwsc_util.Timer.time (fun () ->
        for i = 0 to stream - 1 do
          let id = Serve.insert server objs.(half + i) in
          if i land 3 = 3 then Serve.delete server (id - Prng.int rng half);
          if i land 255 = 255 then ignore (Serve.maintain server);
          let q = !reads mod nq in
          let ids, st = Serve.query_stats server rects.(q) wss.(q) in
          let t0 = Kwsc_util.Timer.now () in
          ignore (Serve.query server rects.(q) wss.(q));
          lat.(i) <- (Kwsc_util.Timer.now () -. t0) *. 1e6;
          ignore ids;
          read_work := !read_work + st.Kwsc.Stats.reported;
          incr reads
        done)
  in
  Array.sort Float.compare lat;
  let p50 = percentile lat 0.50 and p99 = percentile lat 0.99 in
  Printf.printf
    "  stream: %d updates + %d reads in %.2fs  levels=%d  v=%d  read p50=%.1fus p99=%.1fus\n"
    stream !reads stream_s
    (List.length (Serve.bucket_sizes server))
    (Serve.version server) p50 p99;

  (* ---- checkpoint restore vs cold replay rebuild ------------------- *)
  ignore (Serve.maintain server);
  let snap = Filename.temp_file "kwsc_serve" ".snap" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove snap with Sys_error _ -> ())
    (fun () ->
      let (), save_s = Kwsc_util.Timer.time (fun () -> Serve.checkpoint server snap) in
      let warm, restore_s = H.time_best ~reps:5 (fun () -> restore_exn snap) in
      (* the no-checkpoint restart path: replay the whole history (every
         insert in id order, then the surviving tombstones) *)
      let dead =
        (* every id ever assigned is in [0, n): the stream inserted all n *)
        let out = ref [] in
        for id = n - 1 downto 0 do
          if Serve.live server id = None then out := id :: !out
        done;
        !out (* built downto, so ascending id order *)
      in
      let cold, cold_s =
        Kwsc_util.Timer.time (fun () ->
            let s = Serve.create ~k:2 ~d:2 () in
            Array.iter (fun o -> ignore (Serve.insert s o)) objs;
            List.iter (fun id -> Serve.delete s id) dead;
            s)
      in
      let mismatches = ref 0 in
      for q = 0 to nq - 1 do
        let ids, st = Serve.query_stats server rects.(q) wss.(q) in
        let wids, wst = Serve.query_stats warm rects.(q) wss.(q) in
        let cids, _ = Serve.query_stats cold rects.(q) wss.(q) in
        if ids <> wids || counters st <> counters wst then incr mismatches;
        if ids <> cids then incr mismatches
      done;
      if !mismatches > 0 then
        failwith (Printf.sprintf "SERVE: %d of %d queries diverged after restore" !mismatches nq);
      if Serve.version warm <> Serve.version server then
        failwith "SERVE: restore did not round-trip the watermark";
      let speedup = cold_s /. restore_s in
      Printf.printf "  checkpoint: %d bytes  save=%.3fs  restore=%.4fs  cold=%.3fs\n"
        (file_size snap) save_s restore_s cold_s;
      Printf.printf "  -> restore speedup %.1fx vs cold rebuild (target >= 5x) %s\n" speedup
        (if speedup >= 5.0 then "[OK]" else "[BELOW TARGET]");
      Printf.printf "  -> %d/%d queries identical (answers + counters) after restore\n" nq nq;
      if !H.smoke then Printf.printf "  (smoke run: numbers are crash-test only)\n";
      let oc = open_out "BENCH_pr9.json" in
      Printf.fprintf oc
        "{\n\
        \  \"bench\": \"kwsc serve: epoch reads + checkpoint restore\",\n\
        \  \"smoke\": %b,\n\
        \  \"n\": %d,\n\
        \  \"stream\": {\"updates\": %d, \"reads\": %d, \"wall_s\": %.3f,\n\
        \             \"read_p50_us\": %.3f, \"read_p99_us\": %.3f, \"read_reported\": %d},\n\
        \  \"checkpoint\": {\"bytes\": %d, \"save_s\": %.4f, \"restore_s\": %.5f,\n\
        \                 \"cold_rebuild_s\": %.4f, \"speedup\": %.2f},\n\
        \  \"targets\": {\"answers_identical\": %b, \"restore_speedup_ge_5\": %b}\n\
         }\n"
        !H.smoke n stream !reads stream_s p50 p99 !read_work (file_size snap) save_s restore_s
        cold_s speedup (!mismatches = 0) (speedup >= 5.0);
      close_out oc;
      Printf.printf "  wrote BENCH_pr9.json\n")
