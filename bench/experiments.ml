(* One experiment per Table-1 row plus the two figures, the hardness
   machinery and the naive-baseline motivation (see DESIGN.md section 3 for
   the experiment index and EXPERIMENTS.md for recorded outcomes).

   Workload choices per regime:
   - OUT = 0 worst case: [Harness.threshold_workload] (keywords just below
     the large threshold, disjoint supports) — pins the N^(1-1/k) term.
   - OUT sweeps: [Harness.overlap_workload] with the bound-ratio check
     work <= c * N^(1-1/k) (1 + OUT^(1/k)).
   - geometric terms (d > k, Figure 1): [Harness.covered_workload] (all
     documents contain the query keywords, so cost = crossing structure).
   - baseline contrast: [Harness.poison_workload] (Section 1 motivation). *)

open Kwsc_geom
module Prng = Kwsc_util.Prng
module Doc = Kwsc_invindex.Doc
module H = Harness

let invk k = 1.0 -. (1.0 /. float_of_int k)

(* A region containing every point: exercises the normal query path while
   keeping keyword work dominant. *)
let all_halfspace d = Halfspace.make (Array.init d (fun i -> if i = 0 then -1.0 else 0.0)) 1.0

(* Random OUT=0 query rectangles inside the keyword-free half of a poison
   workload (coordinates in [0, range/2]). *)
let poison_queries ~rng ~d ~range ~count =
  Array.init count (fun _ ->
      let half = range /. 2.0 in
      let a = Array.init d (fun _ -> Prng.float rng (half /. 2.0)) in
      let b = Array.map (fun x -> x +. Prng.float rng (half /. 2.0)) a in
      Rect.make a b)

(* ------------------------------------------------------------------ *)

let orp_threshold_exponent ~k ~d ~base ~label =
  let pts = ref [] in
  List.iter
    (fun m ->
      let rng = Prng.create (1000 + m + k + d) in
      let objs, kws = H.threshold_workload ~rng ~m ~k ~d ~range:1000.0 in
      let t = Kwsc.Orp_kw.build ~k objs in
      let work, time =
        H.measure_queries
          (Array.init 8 (fun _ ->
               fun () ->
                 let _, st = Kwsc.Orp_kw.query_stats t (Rect.full d) kws in
                 Kwsc.Stats.work st))
      in
      let nn = Kwsc.Orp_kw.input_size t in
      let words = (Kwsc.Orp_kw.space_stats t).Kwsc.Stats.total_words in
      H.print_scale_row nn work time
        (Printf.sprintf "  space=%.1f words per input word" (float_of_int words /. float_of_int nn));
      pts := (float_of_int nn, work) :: !pts)
    (H.n_sweep ~base);
  ignore (H.fit_and_print ~label ~target:(invk k) ~tolerance:0.12 (Array.of_list !pts))

let t1_1 () =
  H.header "T1.1  ORP-KW d=2 (Theorem 1, kd transform)"
    "O(N) space; query O(N^(1-1/k) (1 + OUT^(1/k)))";
  Printf.printf "-- OUT = 0 worst case (threshold workload) --\n";
  orp_threshold_exponent ~k:2 ~d:2 ~base:4096 ~label:"work exponent vs N (k=2)";
  orp_threshold_exponent ~k:3 ~d:2 ~base:4096 ~label:"work exponent vs N (k=3)";
  Printf.printf "-- OUT sweep at fixed N (k=2): bound work <= c N^(1/2)(1+OUT^(1/2)) --\n";
  let n = H.sized (if !H.quick then 8192 else 16384) in
  let rows = ref [] in
  List.iter
    (fun frac ->
      let rng = Prng.create 777 in
      let objs, q, kws = H.overlap_workload ~rng ~n ~d:2 ~k:2 ~range:1000.0 ~frac in
      let t = Kwsc.Orp_kw.build ~k:2 objs in
      let ids, st = Kwsc.Orp_kw.query_stats t q kws in
      rows :=
        (Kwsc.Orp_kw.input_size t, Array.length ids, float_of_int (Kwsc.Stats.work st)) :: !rows)
    [ 0.0; 0.02; 0.1; 0.3; 1.0 ];
  H.check_bound ~label:"Theorem 1 bound" ~max_ratio:2.0
    ~bound:(fun n out -> sqrt (float_of_int n) *. (1.0 +. sqrt (float_of_int out)))
    (List.rev !rows)

let t1_2 () =
  H.header "T1.2  ORP-KW d>=3 (Theorem 2, dimension reduction)"
    "space O(N (loglog N)^(d-2)); query O(N^(1-1/k) (1 + OUT^(1/k)))";
  List.iter
    (fun d ->
      Printf.printf "-- d = %d, k = 2, threshold workload --\n" d;
      let pts = ref [] in
      List.iter
        (fun m ->
          let rng = Prng.create (2000 + m + d) in
          let objs, kws = H.threshold_workload ~rng ~m ~k:2 ~d ~range:1000.0 in
          let t = Kwsc.Dimred.build ~k:2 objs in
          let works = ref [] in
          let _, time =
            Kwsc_util.Timer.time (fun () ->
                for _ = 1 to 6 do
                  let _, p = Kwsc.Dimred.query_profile t (Rect.full d) kws in
                  works := float_of_int p.Kwsc.Dimred.work :: !works
                done)
          in
          let words = Kwsc.Dimred.space_words t in
          let nn = Kwsc.Dimred.input_size t in
          let work = Kwsc_util.Stats.median (Array.of_list !works) in
          H.print_scale_row nn work (time /. 6.0)
            (Printf.sprintf "  space=%.1f words per input word" (float_of_int words /. float_of_int nn));
          pts := (float_of_int nn, work) :: !pts)
        (H.n_sweep ~base:(if d = 3 then 2048 else 1024));
      ignore
        (H.fit_and_print ~label:(Printf.sprintf "work exponent vs N (d=%d)" d) ~target:0.5
           ~tolerance:0.15 (Array.of_list !pts)))
    [ 3; 4 ];
  (* space blow-up per dimension at fixed N *)
  Printf.printf "-- space per input word across d (fixed N) --\n";
  let m = H.sized (if !H.quick then 4096 else 8192) in
  List.iter
    (fun d ->
      let rng = Prng.create (2100 + d) in
      let objs, _ = H.threshold_workload ~rng ~m ~k:2 ~d ~range:1000.0 in
      let t = Kwsc.Dimred.build ~k:2 objs in
      Printf.printf "  d=%d: %.1f words per input word\n" d
        (float_of_int (Kwsc.Dimred.space_words t) /. float_of_int (Kwsc.Dimred.input_size t)))
    [ 2; 3; 4 ]

let lc_threshold_exponent ~k ~d ~base ~label ~target ~tolerance =
  let pts = ref [] in
  List.iter
    (fun m ->
      let rng = Prng.create (3000 + m + k + (10 * d)) in
      let objs, kws = H.threshold_workload ~rng ~m ~k ~d ~range:1000.0 in
      let t = Kwsc.Lc_kw.build ~k objs in
      let work, time =
        H.measure_queries
          (Array.init 6 (fun _ ->
               fun () ->
                 let _, st = Kwsc.Lc_kw.query_stats t [ all_halfspace d ] kws in
                 Kwsc.Stats.work st))
      in
      H.print_scale_row (Kwsc.Lc_kw.input_size t) work time "";
      pts := (float_of_int (Kwsc.Lc_kw.input_size t), work) :: !pts)
    (H.n_sweep ~base);
  ignore (H.fit_and_print ~label ~target ~tolerance (Array.of_list !pts))

let t1_3 () =
  H.header "T1.3  ORP-KW via LC-KW, d<=k (Theorem 5 remark)"
    "O(N) space; query O(N^(1-1/k) (log N + OUT^(1/k)))";
  let pts = ref [] in
  List.iter
    (fun m ->
      let rng = Prng.create (3100 + m) in
      let objs, kws = H.threshold_workload ~rng ~m ~k:2 ~d:2 ~range:1000.0 in
      let t = Kwsc.Lc_kw.build ~k:2 objs in
      let q = Rect.make [| -1.0; -1.0 |] [| 1001.0; 1001.0 |] in
      let work, time =
        H.measure_queries
          (Array.init 6 (fun _ ->
               fun () ->
                 let _, st = Kwsc.Lc_kw.query_stats t (Halfspace.of_rect q) kws in
                 Kwsc.Stats.work st))
      in
      H.print_scale_row (Kwsc.Lc_kw.input_size t) work time "";
      pts := (float_of_int (Kwsc.Lc_kw.input_size t), work) :: !pts)
    (H.n_sweep ~base:1024);
  ignore
    (H.fit_and_print ~label:"work exponent vs N (k=2, rect-as-constraints)" ~target:0.5
       ~tolerance:0.2 (Array.of_list !pts))

let t1_4 () =
  H.header "T1.4  RR-KW (Corollary 3)"
    "space O(N (loglog N)^(2d-2)); query O(N^(1-1/k) (1 + OUT^(1/k))); d=1 is temporal search";
  let pts = ref [] in
  List.iter
    (fun m ->
      let rng = Prng.create (4000 + m) in
      (* threshold-style keyword structure on intervals *)
      let f = max 1 (int_of_float (sqrt (float_of_int m)) - 1) in
      let objs =
        Array.init m (fun i ->
            let s = Prng.float rng 1000.0 in
            let doc =
              if i < 2 * f then Doc.of_list [ 1 + (i / f) ] else Doc.of_list [ 3 + (i mod 50) ]
            in
            (Rect.make [| s |] [| s +. 10.0 |], doc))
      in
      let t = Kwsc.Rr_kw.build ~k:2 objs in
      let q = Rect.make [| -10.0 |] [| 2000.0 |] in
      let work, time =
        H.measure_queries
          (Array.init 8 (fun _ ->
               fun () ->
                 let _, st = Kwsc.Rr_kw.query_stats t q [| 1; 2 |] in
                 Kwsc.Stats.work st))
      in
      H.print_scale_row (Kwsc.Rr_kw.input_size t) work time "";
      pts := (float_of_int (Kwsc.Rr_kw.input_size t), work) :: !pts)
    (H.n_sweep ~base:4096);
  ignore
    (H.fit_and_print ~label:"work exponent vs N (k=2, 1d intervals)" ~target:0.5 ~tolerance:0.15
       (Array.of_list !pts))

let nn_workload ~rng ~n ~k ~range ~integer =
  Array.init n (fun i ->
      let p =
        if integer then
          [| float_of_int (Prng.int rng (int_of_float range)); float_of_int (Prng.int rng (int_of_float range)) |]
        else [| Prng.float rng range; Prng.float rng range |]
      in
      let doc =
        if i mod 2 = 0 then Doc.of_list (List.init k (fun j -> j + 1))
        else Doc.of_list [ k + 1 + Prng.int rng 20 ]
      in
      (p, doc))

let t1_5 () =
  H.header "T1.5  Linf-NN-KW (Corollary 4)"
    "space O(N (loglog N)^(d-2)); query O(N^(1-1/k) t^(1/k) log N)";
  let n = H.sized (if !H.quick then 4096 else 16384) in
  let rng = Prng.create 5001 in
  let objs = nn_workload ~rng ~n ~k:2 ~range:1000.0 ~integer:false in
  let t = Kwsc.Linf_nn_kw.build ~k:2 objs in
  let kws = [| 1; 2 |] in
  Printf.printf "-- t sweep at N=%d (k=2): probes must stay O(log N) --\n"
    (Kwsc.Linf_nn_kw.input_size t);
  List.iter
    (fun t' ->
      let qs = Array.init 8 (fun _ -> [| Prng.float rng 1000.0; Prng.float rng 1000.0 |]) in
      let probes = ref 0 in
      let _, time =
        H.measure_queries
          (Array.map
             (fun q () ->
               let res, p = Kwsc.Linf_nn_kw.query_count t q ~t' kws in
               probes := p;
               Array.length res)
             qs)
      in
      Printf.printf "  t=%4d  time=%8.1fus  probes=%d\n" t' (time *. 1e6) !probes;
      assert (!probes <= 20))
    [ 1; 4; 16; 64; 256 ];
  Printf.printf "-- N sweep at t=8 (threshold keyword structure, 16 shared) --\n";
  let pts = ref [] in
  List.iter
    (fun m ->
      let rng = Prng.create (5100 + m) in
      let objs, kws = H.threshold_nn_workload ~rng ~m ~k:2 ~d:2 ~range:1000.0 ~shared:16 in
      let t = Kwsc.Linf_nn_kw.build ~k:2 objs in
      let qs = Array.init 5 (fun _ -> [| Prng.float rng 1000.0; Prng.float rng 1000.0 |]) in
      let _, time =
        H.measure_queries
          (Array.map (fun q () -> Array.length (Kwsc.Linf_nn_kw.query t q ~t':8 kws)) qs)
      in
      H.print_scale_row (Kwsc.Linf_nn_kw.input_size t) 0.0 time "";
      pts := (float_of_int (Kwsc.Linf_nn_kw.input_size t), time) :: !pts)
    (H.n_sweep ~base:2048);
  ignore
    (H.fit_and_print ~label:"time exponent vs N (t=8)" ~target:0.5 ~tolerance:0.35
       (Array.of_list !pts))

let t1_6 () =
  H.header "T1.6  LC-KW d<=k (Theorem 5)" "O(N) space; query O(N^(1-1/k) (log N + OUT^(1/k)))";
  Printf.printf "-- d=2, k=2 --\n";
  lc_threshold_exponent ~k:2 ~d:2 ~base:1024 ~label:"work exponent (d=2,k=2)" ~target:0.5
    ~tolerance:0.2;
  Printf.printf "-- d=2, k=3 --\n";
  lc_threshold_exponent ~k:3 ~d:2 ~base:1024 ~label:"work exponent (d=2,k=3)" ~target:(2.0 /. 3.0)
    ~tolerance:0.2

let crossing_exponent_lc ~d ~base ~halfspace_of ~label ~paper_target =
  let pts = ref [] in
  List.iter
    (fun n ->
      let rng = Prng.create (6000 + n + d) in
      let objs, kws = H.covered_workload ~rng ~n ~d ~range:1000.0 in
      let t = Kwsc.Lc_kw.build ~k:2 objs in
      let h : Halfspace.t = halfspace_of () in
      let ids, st = Kwsc.Lc_kw.query_stats t [ h ] kws in
      let work = float_of_int (Kwsc.Stats.work st) in
      Printf.printf "  N=%7d  work=%9.0f  OUT=%d\n" (Kwsc.Lc_kw.input_size t) work
        (Array.length ids);
      pts := (float_of_int (Kwsc.Lc_kw.input_size t), work) :: !pts)
    (H.n_sweep ~base);
  let e = Kwsc_util.Stats.fit_exponent (Array.of_list !pts) in
  Printf.printf
    "  -> %s: measured %.3f; paper (optimal partition tree) %.3f; BSP substitute is weaker by design (DESIGN.md sub 1)\n"
    label e paper_target

let t1_7 () =
  H.header "T1.7  LC-KW d>k"
    "query O(N^(1-1/d) + N^(1-1/k) OUT^(1/k)); geometric term measured on the substituted splitter";
  Printf.printf "-- d=3, k=2: halfspace boundary through the cloud, all keywords matching --\n";
  crossing_exponent_lc ~d:3 ~base:1024
    ~halfspace_of:(fun () -> Halfspace.make [| 1.0; 1.0; 1.0 |] 450.0)
    ~label:"geometric work exponent (d=3)" ~paper_target:(2.0 /. 3.0)

let t1_8 () =
  H.header "T1.8  SRP-KW d<=k-1 (Corollary 6)" "O(N) space; query O(N^(1-1/k) (log N + OUT^(1/k)))";
  Printf.printf "-- d=2, k=3, threshold workload, all-containing sphere --\n";
  let pts = ref [] in
  List.iter
    (fun m ->
      let rng = Prng.create (7000 + m) in
      let objs, kws = H.threshold_workload ~rng ~m ~k:3 ~d:2 ~range:1000.0 in
      let t = Kwsc.Srp_kw.build ~k:3 objs in
      let q = Sphere.make [| 500.0; 500.0 |] 5000.0 in
      let work, time =
        H.measure_queries
          (Array.init 6 (fun _ ->
               fun () ->
                 let _, st = Kwsc.Srp_kw.query_stats t q kws in
                 Kwsc.Stats.work st))
      in
      H.print_scale_row (Kwsc.Srp_kw.input_size t) work time "";
      pts := (float_of_int (Kwsc.Srp_kw.input_size t), work) :: !pts)
    (H.n_sweep ~base:1024);
  ignore
    (H.fit_and_print ~label:"work exponent (d=2,k=3)" ~target:(2.0 /. 3.0) ~tolerance:0.2
       (Array.of_list !pts))

let t1_9 () =
  H.header "T1.9  SRP-KW d>k-1 (Corollary 6)"
    "query O(N^(1-1/(d+1)) + N^(1-1/k) OUT^(1/k)); geometric term on the substituted splitter";
  Printf.printf "-- d=2, k=2: sphere boundary through the cloud, all keywords matching --\n";
  let pts = ref [] in
  List.iter
    (fun n ->
      let rng = Prng.create (7500 + n) in
      let objs, kws = H.covered_workload ~rng ~n ~d:2 ~range:1000.0 in
      let t = Kwsc.Srp_kw.build ~k:2 objs in
      let q = Sphere.make [| 0.0; 0.0 |] 200.0 in
      let ids, st = Kwsc.Srp_kw.query_stats t q kws in
      let work = float_of_int (Kwsc.Stats.work st) in
      Printf.printf "  N=%7d  work=%9.0f  OUT=%d\n" (Kwsc.Srp_kw.input_size t) work
        (Array.length ids);
      pts := (float_of_int (Kwsc.Srp_kw.input_size t), work) :: !pts)
    (H.n_sweep ~base:1024);
  let e = Kwsc_util.Stats.fit_exponent (Array.of_list !pts) in
  Printf.printf
    "  -> geometric work exponent (sphere boundary): measured %.3f; paper %.3f; BSP substitute weaker by design\n"
    e 0.667

let l2nn_sweeps ~k ~label_prefix =
  let n = H.sized (if !H.quick then 2048 else 8192) in
  let rng = Prng.create (8000 + k) in
  let objs = nn_workload ~rng ~n ~k ~range:1024.0 ~integer:true in
  let t = Kwsc.L2_nn_kw.build ~k objs in
  let kws = Array.init k (fun i -> i + 1) in
  Printf.printf "-- t sweep at N=%d (%s): probes must stay O(log N) --\n"
    (Kwsc.L2_nn_kw.input_size t) label_prefix;
  List.iter
    (fun t' ->
      let qs =
        Array.init 5 (fun _ ->
            [| float_of_int (Prng.int rng 1024); float_of_int (Prng.int rng 1024) |])
      in
      let probes = ref 0 in
      let _, time =
        H.measure_queries
          (Array.map
             (fun q () ->
               let res, p = Kwsc.L2_nn_kw.query_count t q ~t' kws in
               probes := p;
               Array.length res)
             qs)
      in
      Printf.printf "  t=%4d  time=%8.1fus  probes=%d\n" t' (time *. 1e6) !probes;
      assert (!probes <= 30))
    [ 1; 4; 16; 64 ]

let t1_10 () =
  H.header "T1.10  L2-NN-KW d<=k-1 (Corollary 7)"
    "O(N) space; query O(log N * N^(1-1/k) (log N + t^(1/k)))";
  l2nn_sweeps ~k:3 ~label_prefix:"d=2,k=3"

let t1_11 () =
  H.header "T1.11  L2-NN-KW d>k (context: d=2,k=2 boundary case)"
    "query O(log N * (N^(1-1/(d+1)) + N^(1-1/k) t^(1/k)))";
  l2nn_sweeps ~k:2 ~label_prefix:"d=2,k=2"

let f1 () =
  H.header "F1  Figure 1 / Lemmas 9-10: crossing sensitivity of the kd transform"
    "a vertical line's crossing cost is O(N^(1-1/k)); covered cost O(N^(1-1/k)(1+OUT^(1/k)))";
  let pts_cross = ref [] and pts_work = ref [] in
  List.iter
    (fun n ->
      let rng = Prng.create (9000 + n) in
      let objs, kws = H.covered_workload ~rng ~n ~d:2 ~range:1000.0 in
      let t = Kwsc.Orp_kw.build ~k:2 objs in
      let crossing = ref [] and works = ref [] in
      for _ = 1 to 10 do
        (* a vertical line through an actual data coordinate, so the rank
           conversion does not collapse it to an empty query *)
        let x = (fst objs.(Prng.int rng n)).(0) in
        let q = Rect.make [| x; neg_infinity |] [| x; infinity |] in
        let _, st = Kwsc.Orp_kw.query_stats t q kws in
        crossing := float_of_int st.Kwsc.Stats.crossing_nodes :: !crossing;
        works := float_of_int (Kwsc.Stats.work st) :: !works
      done;
      let med l = Kwsc_util.Stats.median (Array.of_list l) in
      let nn = Kwsc.Orp_kw.input_size t in
      Printf.printf "  N=%7d  crossing nodes=%7.1f  work=%9.1f\n" nn (med !crossing) (med !works);
      pts_cross := (float_of_int nn, Float.max 1.0 (med !crossing)) :: !pts_cross;
      pts_work := (float_of_int nn, Float.max 1.0 (med !works)) :: !pts_work)
    (H.n_sweep ~base:4096);
  ignore
    (H.fit_and_print ~label:"crossing-node exponent (vertical line)" ~target:0.5 ~tolerance:0.15
       (Array.of_list !pts_cross));
  ignore
    (H.fit_and_print ~label:"total work exponent (vertical line)" ~target:0.5 ~tolerance:0.2
       (Array.of_list !pts_work))

let f2 () =
  H.header "F2  Figure 2 / Propositions 1-3: dimension-reduction tree shape"
    "depth O(loglog N); <=2 type-2 nodes per level; f_u = O(N^(1-1/k))";
  List.iter
    (fun n ->
      let rng = Prng.create (9500 + n) in
      let objs, q, kws = H.poison_workload ~rng ~n ~d:3 ~k:2 ~range:1000.0 in
      ignore q;
      let t = Kwsc.Dimred.build ~k:2 objs in
      let max_level = ref 0 and max_fanout = ref 0 in
      Kwsc.Dimred.cut_stats t (fun ~level ~fanout ~weight:_ ~children:_ ~pivots:_ ->
          max_level := max !max_level level;
          max_fanout := max !max_fanout fanout);
      let worst_t2 = ref 0 in
      for _ = 1 to 10 do
        let a = Array.init 3 (fun _ -> Prng.float rng 800.0) in
        let qr = Rect.make a (Array.map (fun x -> x +. 150.0) a) in
        let _, p = Kwsc.Dimred.query_profile t qr kws in
        Array.iter (fun c -> worst_t2 := max !worst_t2 c) p.Kwsc.Dimred.type2_by_level
      done;
      let nn = Kwsc.Dimred.input_size t in
      Printf.printf
        "  N=%7d  depth=%d (loglogN=%.1f)  max fanout=%d (N^(1-1/k)=%.0f)  worst type-2/level=%d\n"
        nn !max_level
        (log (log (float_of_int nn) /. log 2.0) /. log 2.0)
        !max_fanout
        (sqrt (float_of_int nn))
        !worst_t2;
      assert (!worst_t2 <= 2))
    (H.n_sweep ~base:2048)

let h1 () =
  H.header "H1  k-SI hardness machinery (Section 1.2, Lemma 8, Appendix G)"
    "k-SI reporting: work O(N^(1-1/k) (1 + OUT^(1/k))); every reduction result-equal";
  let s = H.sized (if !H.quick then 2048 else 8192) in
  Printf.printf "-- bound check, two sets of %d elements sharing OUT (k=2) --\n" s;
  let rows = ref [] in
  List.iter
    (fun out ->
      let docs =
        Array.init ((2 * s) - out) (fun i ->
            if i < s - out then Doc.of_list [ 1 ]
            else if i < (2 * s) - (2 * out) then Doc.of_list [ 2 ]
            else Doc.of_list [ 1; 2 ])
      in
      let t = Kwsc.Ksi.of_docs ~k:2 docs in
      let ids, st = Kwsc.Ksi.query_stats t [| 1; 2 |] in
      assert (Array.length ids = out);
      rows := (Kwsc.Ksi.input_size t, out, float_of_int (Kwsc.Stats.work st)) :: !rows)
    (* cap OUT at s/2 so the instance stays well-formed at smoke sizes *)
    (List.filter (fun out -> out <= s / 2) [ 0; 4; 16; 64; 256; 1024 ]);
  H.check_bound ~label:"k-SI reporting bound" ~max_ratio:2.0
    ~bound:(fun n out -> sqrt (float_of_int n) *. (1.0 +. sqrt (float_of_int out)))
    (List.rev !rows);
  (* N scaling in the threshold regime *)
  Printf.printf "-- N sweep in the threshold regime (OUT = 0) --\n";
  let pts = ref [] in
  List.iter
    (fun m ->
      let rng = Prng.create (9700 + m) in
      let objs, kws = H.threshold_workload ~rng ~m ~k:2 ~d:1 ~range:1000.0 in
      let t = Kwsc.Ksi.of_docs ~k:2 (Array.map snd objs) in
      let _, st = Kwsc.Ksi.query_stats t kws in
      let work = float_of_int (Kwsc.Stats.work st) in
      Printf.printf "  N=%7d  work=%8.0f\n" (Kwsc.Ksi.input_size t) work;
      pts := (float_of_int (Kwsc.Ksi.input_size t), work) :: !pts)
    (H.n_sweep ~base:4096);
  ignore
    (H.fit_and_print ~label:"k-SI work exponent vs N" ~target:0.5 ~tolerance:0.12
       (Array.of_list !pts));
  (* reductions *)
  let rng = Prng.create 424242 in
  let inst =
    Kwsc_invindex.Ksi_instance.create
      (Array.init 6 (fun _ -> Array.init 400 (fun _ -> Prng.int rng 1200)))
  in
  let red = Kwsc.Hardness.ksi_as_orp ~k:2 inst in
  let via_orp = Kwsc.Hardness.ksi_query_via_orp red [| 1; 4 |] in
  Array.sort compare via_orp;
  let naive = Kwsc_invindex.Ksi_instance.reporting inst [| 1; 4 |] in
  Printf.printf "  reduction k-SI -> ORP-KW: %s (|result| = %d)\n"
    (if via_orp = naive then "result-equal" else "MISMATCH")
    (Array.length naive);
  let via_nn = Kwsc.Hardness.ksi_via_linf_nn ~k:2 inst [| 2; 5 |] in
  Printf.printf "  reduction k-SI -> Linf-NN (doubling t): %s\n"
    (if via_nn = Kwsc_invindex.Ksi_instance.reporting inst [| 2; 5 |] then "result-equal"
     else "MISMATCH");
  Printf.printf "  Lemma 8 delta(k=2, eps=0.1) = %.4f\n"
    (Kwsc.Hardness.lemma8_delta ~k:2 ~eps:0.1)

let b1 () =
  H.header "B1  Naive baselines vs transformed index (Section 1 motivation)"
    "both naive methods examine Theta(N) candidates at OUT=0; the index stays sublinear; at OUT=Theta(N) all are Omega(OUT)";
  Printf.printf "-- OUT = 0 (poison workload, d=2, k=2) --\n";
  List.iter
    (fun n ->
      let rng = Prng.create (9900 + n) in
      let objs, q, kws = H.poison_workload ~rng ~n ~d:2 ~k:2 ~range:1000.0 in
      let b = Kwsc.Baseline.build objs in
      let orp = Kwsc.Orp_kw.build ~k:2 objs in
      let _, ex_s = Kwsc.Baseline.rect_structured b q kws in
      let _, ex_k = Kwsc.Baseline.rect_keywords b q kws in
      let _, st = Kwsc.Orp_kw.query_stats orp q kws in
      Printf.printf "  N=%7d  structured=%7d  keywords=%7d  transformed=%6d  -> %s wins\n"
        (Kwsc.Orp_kw.input_size orp) ex_s ex_k (Kwsc.Stats.work st)
        (if Kwsc.Stats.work st < min ex_s ex_k then "transformed" else "baseline");
      assert (Kwsc.Stats.work st < min ex_s ex_k))
    (H.n_sweep ~base:4096);
  Printf.printf "-- worst case (threshold workload): sublinear vs the keyword baseline --\n";
  List.iter
    (fun m ->
      let rng = Prng.create (9950 + m) in
      let objs, kws = H.threshold_workload ~rng ~m ~k:2 ~d:2 ~range:1000.0 in
      let b = Kwsc.Baseline.build objs in
      let orp = Kwsc.Orp_kw.build ~k:2 objs in
      let _, ex_k = Kwsc.Baseline.rect_keywords b (Rect.full 2) kws in
      let _, st = Kwsc.Orp_kw.query_stats orp (Rect.full 2) kws in
      Printf.printf "  N=%7d  keywords-baseline=%7d  transformed=%7d\n"
        (Kwsc.Orp_kw.input_size orp) ex_k (Kwsc.Stats.work st))
    (H.n_sweep ~base:4096);
  Printf.printf "-- crossover: growing OUT at fixed N --\n";
  let n = H.sized (if !H.quick then 8192 else 16384) in
  List.iter
    (fun frac ->
      let rng = Prng.create 99999 in
      let objs, q, kws = H.overlap_workload ~rng ~n ~d:2 ~k:2 ~range:1000.0 ~frac in
      let b = Kwsc.Baseline.build objs in
      let orp = Kwsc.Orp_kw.build ~k:2 objs in
      let ids, st = Kwsc.Orp_kw.query_stats orp q kws in
      let _, ex_k = Kwsc.Baseline.rect_keywords b q kws in
      Printf.printf "  OUT=%6d  keywords-baseline=%7d  transformed=%7d  ratio=%.2f\n"
        (Array.length ids) ex_k (Kwsc.Stats.work st)
        (float_of_int (Kwsc.Stats.work st) /. float_of_int (max 1 ex_k)))
    [ 0.0; 0.1; 0.5; 1.0 ]

let a1 () =
  H.header "A1  Ablation: the large/small threshold exponent (Section 3.2)"
    "tau = 1 - 1/k balances scan work against bit-array space; the extremes lose on one axis";
  let m = H.sized (if !H.quick then 8192 else 32768) in
  let rng = Prng.create 10001 in
  (* threshold structure plus a wide filler vocabulary *)
  let f = max 1 (int_of_float (sqrt (float_of_int m)) - 1) in
  let docs =
    Array.init m (fun i ->
        if i < 2 * f then Doc.of_list [ 1 + (i / f) ] else Doc.of_list [ 3 + (i mod 500) ])
  in
  ignore rng;
  Printf.printf "  %-10s %12s %14s %12s\n" "tau" "query work" "bitset words" "total words";
  List.iter
    (fun tau ->
      let t = Kwsc.Ksi.of_docs ~tau_exponent:tau ~k:2 docs in
      let _, st = Kwsc.Ksi.query_stats t [| 1; 2 |] in
      let sp = Kwsc.Ksi.space_stats t in
      Printf.printf "  %-10.2f %12d %14d %12d%s\n" tau (Kwsc.Stats.work st)
        sp.Kwsc.Stats.bitset_words sp.Kwsc.Stats.total_words
        (if Float.equal tau 0.5 then "   <- paper's 1 - 1/k" else ""))
    [ 0.0; 0.25; 0.5; 0.75; 1.0 ]

let a2 () =
  H.header "A2  Ablation: the child-emptiness bit arrays (Section 3.2)"
    "without the bits, disjoint-keyword probes degrade from O(1)-per-node pruning to tree walks";
  let s = H.sized (if !H.quick then 2048 else 8192) in
  (* eight pairwise-disjoint keywords, supports interleaved by object id so
     that every subtree keeps seeing both query keywords *)
  let docs = Array.init (8 * s) (fun i -> Doc.of_list [ 1 + (i mod 8) ]) in
  Printf.printf "  %-12s %12s %14s\n" "bits" "probe work" "bitset words";
  List.iter
    (fun use_bits ->
      let t = Kwsc.Ksi.of_docs ~use_bits ~k:2 docs in
      let _, st = Kwsc.Ksi.query_stats ~limit:1 t [| 1; 5 |] in
      let sp = Kwsc.Ksi.space_stats t in
      Printf.printf "  %-12s %12d %14d\n"
        (if use_bits then "on" else "off")
        (Kwsc.Stats.work st) sp.Kwsc.Stats.bitset_words)
    [ true; false ];
  Printf.printf "-- leaf_weight sensitivity (threshold workload, k=2) --\n";
  let m = H.sized (if !H.quick then 8192 else 16384) in
  List.iter
    (fun lw ->
      let rng = Prng.create 10003 in
      let objs, kws = H.threshold_workload ~rng ~m ~k:2 ~d:2 ~range:1000.0 in
      let t = Kwsc.Orp_kw.build ~leaf_weight:lw ~k:2 objs in
      let _, st = Kwsc.Orp_kw.query_stats t (Rect.full 2) kws in
      let sp = Kwsc.Orp_kw.space_stats t in
      Printf.printf "  leaf_weight=%4d  work=%6d  nodes=%7d  words=%8d\n" lw
        (Kwsc.Stats.work st) sp.Kwsc.Stats.nodes sp.Kwsc.Stats.total_words)
    [ 1; 4; 16; 64 ]

let dyn () =
  H.header "DYN  Extension: Bentley-Saxe dynamization of ORP-KW"
    "decomposability gives inserts/deletes at an O(log n) query overhead (beyond the paper)";
  let n = H.sized (if !H.quick then 4096 else 16384) in
  let rng = Prng.create 11001 in
  let objs, _, kws = H.poison_workload ~rng ~n ~d:2 ~k:2 ~range:1000.0 in
  (* build dynamically and statically over the same objects *)
  let dyn = Kwsc.Dynamic.create ~k:2 ~d:2 () in
  let _, insert_time =
    Kwsc_util.Timer.time (fun () -> Array.iter (fun o -> ignore (Kwsc.Dynamic.insert dyn o)) objs)
  in
  let static = Kwsc.Orp_kw.build ~k:2 objs in
  let qs = poison_queries ~rng ~d:2 ~range:1000.0 ~count:20 in
  let _, t_dyn =
    H.measure_queries (Array.map (fun q () -> Array.length (Kwsc.Dynamic.query dyn q kws)) qs)
  in
  let _, t_static =
    H.measure_queries (Array.map (fun q () -> Array.length (Kwsc.Orp_kw.query static q kws)) qs)
  in
  Printf.printf "  %d inserts in %.2fs (%.1fus each); buckets now: [%s]\n" n insert_time
    (insert_time /. float_of_int n *. 1e6)
    (String.concat "; " (List.map string_of_int (Kwsc.Dynamic.buckets dyn)));
  Printf.printf "  query: dynamic %.1fus vs static %.1fus (x%.1f overhead; theory O(log n))\n"
    (t_dyn *. 1e6) (t_static *. 1e6) (t_dyn /. Float.max 1e-9 t_static);
  (* deletions: remove half, answers must shrink accordingly *)
  let victims = Array.init (n / 2) (fun i -> 2 * i) in
  let _, delete_time =
    Kwsc_util.Timer.time (fun () -> Array.iter (Kwsc.Dynamic.delete dyn) victims)
  in
  Printf.printf "  %d deletes in %.2fs; size now %d\n" (n / 2) delete_time (Kwsc.Dynamic.size dyn)

let w1 () =
  H.header "W1  Robustness: correlated spatial-keyword data"
    "real geo-text corpora cluster keywords with locations; sublinearity must survive correlation";
  let n = H.sized (if !H.quick then 8192 else 16384) in
  List.iter
    (fun correlation ->
      let rng = Prng.create (12000 + int_of_float (correlation *. 100.0)) in
      let objs =
        Kwsc_workload.Gen.topical ~rng ~n ~d:2 ~topics:16 ~vocab_per_topic:12 ~correlation
          ~range:1000.0
      in
      let t = Kwsc.Orp_kw.build ~k:2 objs in
      let inv = Kwsc_invindex.Inverted.build (Array.map snd objs) in
      (* query two keywords of one topic over another topic's region *)
      let works = ref [] and outs = ref [] in
      for trial = 1 to 20 do
        let topic = trial mod 16 in
        let w1 = (topic * 12) + 1 and w2 = (topic * 12) + 2 in
        if Kwsc_invindex.Inverted.frequency inv w1 > 0 && Kwsc_invindex.Inverted.frequency inv w2 > 0
        then begin
          let q = H.rect_of_trial rng in
          let ids, st = Kwsc.Orp_kw.query_stats t q [| w1; w2 |] in
          works := float_of_int (Kwsc.Stats.work st) :: !works;
          outs := Array.length ids :: !outs
        end
      done;
      let med = Kwsc_util.Stats.median (Array.of_list !works) in
      let avg_out =
        float_of_int (List.fold_left ( + ) 0 !outs) /. float_of_int (max 1 (List.length !outs))
      in
      Printf.printf "  correlation=%.2f  median work=%7.0f  avg OUT=%5.1f  (N=%d)\n" correlation
        med avg_out (Kwsc.Orp_kw.input_size t);
      assert (med < float_of_int (Kwsc.Orp_kw.input_size t) /. 4.0))
    [ 0.0; 0.5; 0.9; 1.0 ]

let all : (string * string * (unit -> unit)) list =
  [
    ("T1.1", "ORP-KW d<=2 (Theorem 1)", t1_1);
    ("T1.2", "ORP-KW d>=3 (Theorem 2)", t1_2);
    ("T1.3", "ORP-KW via LC-KW d<=k (Theorem 5)", t1_3);
    ("T1.4", "RR-KW (Corollary 3)", t1_4);
    ("T1.5", "Linf-NN-KW (Corollary 4)", t1_5);
    ("T1.6", "LC-KW d<=k (Theorem 5)", t1_6);
    ("T1.7", "LC-KW d>k (Theorem 5)", t1_7);
    ("T1.8", "SRP-KW d<=k-1 (Corollary 6)", t1_8);
    ("T1.9", "SRP-KW d>k-1 (Corollary 6)", t1_9);
    ("T1.10", "L2-NN-KW d<=k-1 (Corollary 7)", t1_10);
    ("T1.11", "L2-NN-KW d>k (Corollary 7)", t1_11);
    ("F1", "Figure 1 / Lemmas 9-10: crossing sensitivity", f1);
    ("F2", "Figure 2 / Propositions 1-3: dimred tree shape", f2);
    ("H1", "Hardness machinery (Section 1.2)", h1);
    ("B1", "Naive baselines vs transformed index", b1);
    ("A1", "Ablation: large/small threshold", a1);
    ("A2", "Ablation: emptiness bits, leaf weight", a2);
    ("DYN", "Extension: dynamization (Bentley-Saxe)", dyn);
    ("W1", "Robustness: correlated geo-text workload", w1);
    ("PAR", "Multicore scaling: pool builds & batched queries", Parallel.run);
    ("FLAT", "Flat vs boxed layouts: build/range/NN/intersection + alloc", Flatbench.run);
    ("SNAP", "Durable snapshots: load vs cold build, identical answers", Snapbench.run);
    ("CMP", "Hybrid containers vs sparse-only postings + planner equivalence", Cmpbench.run);
    ("SHARD", "Per-shard indexes + scatter-gather router vs monolithic", Shardbench.run);
    ("WIDE", "63-bit wide bitmap kernels vs scalar 32-bit reference", Widebench.run);
    ("SERVE", "kwsc serve: epoch read latency + checkpoint restore vs cold rebuild",
      Servebench.run);
    ("OOC", "Out-of-core paged snapshots: time-to-first-query + resident set vs eager load",
      Oocbench.run);
  ]
