(* WIDE: the PR 8 63-bit wide bitmap kernels vs a scalar 32-bit
   reference. No paper claim backs this experiment — the word widening
   and eight-way unrolling (DESIGN.md §13) are implementation
   optimisations — so it records raw numbers on two axes:

   - kernel-level: the production dense kernels (AND-materialize,
     AND-count, span membership probe) against in-bench scalar 32-bit
     re-implementations of the PR 5 shape (one 32-bit word per
     iteration, per-word popcount). Same machine, same run, same
     inputs — a machine-independent speedup figure. Target >= 1.5x on
     every dense row.
   - end-to-end: the CMP dense/clustered/sparse/threshold rows replayed
     through [Postings.query_into] on this build, so BENCH_pr8.json is
     directly comparable with a BENCH_pr5.json measured on the same
     host. Sparse rows are pure dispatch overhead; target <= 1.05x.

   Checksums cross-check every timed pair — a wrong kernel fails the
   run, it never just reports a fast number. *)

module H = Harness
module Prng = Kwsc_util.Prng
module Ibuf = Kwsc_util.Ibuf
module Wordops = Kwsc_util.Wordops
module C = Kwsc_util.Container
module Inverted = Kwsc_invindex.Inverted
module Postings = Kwsc_invindex.Postings

(* ------------------------------------------------------------------ *)
(* Scalar 32-bit reference kernels (the PR 5 shape)                    *)
(* ------------------------------------------------------------------ *)

let words32 u = (u + 31) / 32

let bitmap32 ~universe ids =
  let w = Array.make (max 1 (words32 universe)) 0 in
  Array.iter (fun x -> w.(x lsr 5) <- w.(x lsr 5) lor (1 lsl (x land 31))) ids;
  w

(* one word per iteration, SWAR popcount per word *)
let and32_count a b =
  let n = min (Array.length a) (Array.length b) in
  let c = ref 0 in
  for i = 0 to n - 1 do
    c := !c + Wordops.popcount (a.(i) land b.(i))
  done;
  !c

(* one word per iteration, lowest-set-bit extraction *)
let and32_into a b out =
  let n = min (Array.length a) (Array.length b) in
  for i = 0 to n - 1 do
    let m = ref (a.(i) land b.(i)) in
    while !m <> 0 do
      let bit = !m land (- !m) in
      Ibuf.push out ((i lsl 5) + Wordops.ntz bit);
      m := !m lxor bit
    done
  done

(* per-id 32-bit word probe of a sorted span against a bitmap *)
let probe32_into span w out =
  Array.iter (fun x -> if w.(x lsr 5) land (1 lsl (x land 31)) <> 0 then Ibuf.push out x) span

(* ------------------------------------------------------------------ *)
(* Measurement helpers                                                 *)
(* ------------------------------------------------------------------ *)

(* Time [scalar] and [wide] (each returning an int checksum) over [iters]
   inner repetitions, best of 5 outer reps; cross-check the checksums and
   print one row. Returns (scalar_us, wide_us, checksum). *)
let time_kernel ~label ~iters scalar wide =
  let run f () =
    let sum = ref 0 in
    for _ = 1 to iters do
      sum := f ()
    done;
    !sum
  in
  let s_sum, s_t = H.time_best ~reps:5 (run scalar) in
  let w_sum, w_t = H.time_best ~reps:5 (run wide) in
  if s_sum <> w_sum then
    failwith (Printf.sprintf "WIDE: scalar/wide checksums disagree on %s (%d vs %d)" label s_sum w_sum);
  let per t = t /. float_of_int iters *. 1e6 in
  Printf.printf "  %-24s scalar32=%8.2fus  wide=%8.2fus  speedup=%5.2fx  (sum=%d)\n" label
    (per s_t) (per w_t)
    (per s_t /. per w_t)
    s_sum;
  (per s_t, per w_t, s_sum)

(* sum of ids in a buffer — an order-sensitive-enough checksum for the
   materializing kernels (both sides emit ascending ids) *)
let sum_ibuf b =
  let s = ref (Ibuf.length b) in
  Ibuf.iter (fun x -> s := !s + x) b;
  !s

(* Pull the dense "hybrid_us_per_q" figure out of a BENCH_pr5.json
   written by the CMP experiment on this host (our own fixed printf
   format, so a plain substring scan suffices); None when the file is
   absent, mode-mismatched or unparsable. *)
let pr5_dense_us path ~smoke =
  if not (Sys.file_exists path) then None
  else
    let ic = open_in path in
    let s =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let find_from start key =
      let rec scan i =
        if i + String.length key > String.length s then None
        else if String.sub s i (String.length key) = key then Some (i + String.length key)
        else scan (i + 1)
      in
      scan start
    in
    let mode = if smoke then "\"smoke\": true" else "\"smoke\": false" in
    match find_from 0 mode with
    | None -> None
    | Some _ -> (
        match find_from 0 "\"dense\": {" with
        | None -> None
        | Some dense_at -> (
            match find_from dense_at "\"hybrid_us_per_q\": " with
            | None -> None
            | Some j ->
                let k = ref j in
                while
                  !k < String.length s
                  && (match s.[!k] with '0' .. '9' | '.' | '-' -> true | _ -> false)
                do
                  incr k
                done;
                float_of_string_opt (String.sub s j (!k - j))))

(* ------------------------------------------------------------------ *)
(* The experiment                                                      *)
(* ------------------------------------------------------------------ *)

let run () =
  H.header "WIDE: 63-bit wide bitmap kernels vs scalar 32-bit reference"
    "no claim (implementation optimisation); same answers, measured kernel speedups";
  let n = H.sized (if !H.quick then 50_000 else 200_000) in
  let iters = if !H.smoke then 20 else 200 in
  let rng = Prng.create 0x81de in

  (* Two dense sets at CMP's dense density (1/8 of the universe) and a
     sparse probe span (1/100), over one universe. *)
  let gen frac =
    let b = Ibuf.create () in
    for i = 0 to n - 1 do
      if Prng.int rng frac = 0 then Ibuf.push b i
    done;
    Ibuf.to_array b
  in
  let a_ids = gen 8 and b_ids = gen 8 and span = gen 100 in
  let ca = C.of_sorted_array ~universe:n (Array.copy a_ids) in
  let cb = C.of_sorted_array ~universe:n (Array.copy b_ids) in
  if C.kind ca <> C.Dense || C.kind cb <> C.Dense then
    failwith "WIDE: the dense workload did not classify as Dense";
  let wa = bitmap32 ~universe:n a_ids and wb = bitmap32 ~universe:n b_ids in
  Printf.printf "  N=%d  |A|=%d  |B|=%d  |span|=%d  words32=%d  words63=%d\n" n
    (Array.length a_ids) (Array.length b_ids) (Array.length span) (words32 n) (Wordops.nwords n);

  let out = Ibuf.create () and tmp = Ibuf.create () in
  let cnt_s, cnt_w, _ =
    time_kernel ~label:"dense AND-count" ~iters
      (fun () -> and32_count wa wb)
      (fun () -> C.inter_card ca cb)
  in
  let and_s, and_w, _ =
    time_kernel ~label:"dense AND-materialize" ~iters
      (fun () ->
        Ibuf.clear out;
        and32_into wa wb out;
        sum_ibuf out)
      (fun () ->
        Ibuf.clear out;
        Ibuf.clear tmp;
        C.inter_into ca cb out;
        sum_ibuf out)
  in
  let pr_s, pr_w, _ =
    time_kernel ~label:"span membership probe" ~iters
      (fun () ->
        Ibuf.clear out;
        probe32_into span wb out;
        sum_ibuf out)
      (fun () ->
        Ibuf.clear out;
        C.inter_span_into span ~lo:0 ~hi:(Array.length span) cb out;
        sum_ibuf out)
  in
  let kernel_speedup = min (cnt_s /. cnt_w) (and_s /. and_w) in
  Printf.printf "  -> dense kernel speedup %.2fx (target >= 1.5x) %s\n" kernel_speedup
    (if kernel_speedup >= 1.5 then "[OK]" else "[BELOW TARGET]");
  (* PR 9 probe recovery: the word-cursor probe kernel must at least
     match the scalar 32-bit `lsr 5` reference it used to trail
     (0.6-0.9x with the per-id magic-division probe). *)
  let probe_speedup = pr_s /. pr_w in
  Printf.printf "  -> span probe speedup %.2fx (target >= 1.0x) %s\n" probe_speedup
    (if probe_speedup >= 1.0 then "[OK]" else "[BELOW TARGET]");

  (* End-to-end CMP rows on this build: sparse-only vs hybrid postings
     through the full planner + container stack. *)
  let nq = H.sized 512 in
  let mrng = Prng.create 0xc39b (* CMP's seed: the same mixed workload *) in
  let docs = Cmpbench.mixed_docs ~rng:mrng ~n in
  let hybrid = Inverted.build docs in
  let sparse = Inverted.build ~policy:Kwsc_util.Container.Sparse_only docs in
  let hp = Inverted.postings hybrid and sp_pst = Inverted.postings sparse in
  let pick arr = Array.init nq (fun i -> arr.(i mod Array.length arr)) in
  let dense_pairs = pick [| [| 1; 2 |]; [| 2; 3 |]; [| 3; 4 |]; [| 1; 3 |]; [| 2; 4 |] |] in
  let clustered_pairs = pick [| [| 11; 1 |]; [| 12; 2 |]; [| 13; 14 |]; [| 11; 12 |] |] in
  let sparse_pairs =
    Array.init nq (fun _ -> [| 21 + Prng.int mrng 100; 21 + Prng.int mrng 100 |])
  in
  let d_s, d_h, _ = Cmpbench.time_pair ~label:"dense x dense" ~nq sp_pst hp dense_pairs in
  let c_s, c_h, _ = Cmpbench.time_pair ~label:"clustered / mixed" ~nq sp_pst hp clustered_pairs in
  let sp_s, sp_h, _ = Cmpbench.time_pair ~label:"sparse x sparse" ~nq sp_pst hp sparse_pairs in
  let tm = H.sized 100_000 in
  let tobjs, tkws = H.threshold_workload ~rng:mrng ~m:tm ~k:2 ~d:2 ~range:1000.0 in
  let tdocs = Array.map snd tobjs in
  let th = Inverted.build tdocs in
  let ts = Inverted.build ~policy:Kwsc_util.Container.Sparse_only tdocs in
  let t_s, t_h, _ =
    Cmpbench.time_pair ~label:"threshold workload" ~nq (Inverted.postings ts)
      (Inverted.postings th) (pick [| tkws |])
  in
  let overhead = max (sp_h /. sp_s) (t_h /. t_s) in
  Printf.printf "  -> sparse overhead %.2fx (target <= 1.05x) %s\n" overhead
    (if overhead <= 1.05 then "[OK]" else "[ABOVE TARGET]");

  (* Cross-file comparison against a same-host, same-mode BENCH_pr5.json
     when one is lying around (informational — machines vary; the
     in-bench scalar reference above is the stable figure). *)
  let pr5 = pr5_dense_us "BENCH_pr5.json" ~smoke:!H.smoke in
  (match pr5 with
  | Some us when us > 0.0 ->
      Printf.printf "  -> dense vs BENCH_pr5.json on this host: %.2fus -> %.2fus (%.2fx)\n" us d_h
        (us /. d_h)
  | _ -> Printf.printf "  (no comparable BENCH_pr5.json on this host; skipping cross-file row)\n");

  if !H.smoke then Printf.printf "  (smoke run: numbers are crash-test only)\n";
  let oc = open_out "BENCH_pr8.json" in
  Printf.fprintf oc
    "{\n\
    \  \"bench\": \"63-bit wide bitmap kernels vs scalar 32-bit reference\",\n\
    \  \"smoke\": %b,\n\
    \  \"n\": %d,\n\
    \  \"kernel\": {\n\
    \    \"and_count\": {\"scalar32_us\": %.3f, \"wide_us\": %.3f, \"speedup\": %.3f},\n\
    \    \"and_materialize\": {\"scalar32_us\": %.3f, \"wide_us\": %.3f, \"speedup\": %.3f},\n\
    \    \"probe_span\": {\"scalar32_us\": %.3f, \"wide_us\": %.3f, \"speedup\": %.3f}\n\
    \  },\n\
    \  \"endtoend\": {\n\
    \    \"dense\": {\"sparse_us_per_q\": %.3f, \"hybrid_us_per_q\": %.3f, \"speedup\": %.3f},\n\
    \    \"clustered\": {\"sparse_us_per_q\": %.3f, \"hybrid_us_per_q\": %.3f, \"speedup\": \
     %.3f},\n\
    \    \"sparse\": {\"sparse_us_per_q\": %.3f, \"hybrid_us_per_q\": %.3f, \"overhead\": %.3f},\n\
    \    \"threshold\": {\"sparse_us_per_q\": %.3f, \"hybrid_us_per_q\": %.3f, \"overhead\": \
     %.3f}\n\
    \  },\n\
    \  \"pr5_dense_hybrid_us_per_q\": %s,\n\
    \  \"targets\": {\"dense_kernel_speedup_ge_1_5\": %b, \"probe_speedup_ge_1_0\": %b, \
     \"sparse_overhead_le_1_05\": %b}\n\
     }\n"
    !H.smoke n cnt_s cnt_w (cnt_s /. cnt_w) and_s and_w (and_s /. and_w) pr_s pr_w (pr_s /. pr_w)
    d_s d_h (d_s /. d_h) c_s c_h (c_s /. c_h) sp_s sp_h (sp_h /. sp_s) t_s t_h (t_h /. t_s)
    (match pr5 with Some us -> Printf.sprintf "%.3f" us | None -> "null")
    (kernel_speedup >= 1.5) (probe_speedup >= 1.0) (overhead <= 1.05);
  close_out oc;
  Printf.printf "  wrote BENCH_pr8.json\n"
