(** Hybrid posting containers (Roaring-style three-way dichotomy over flat
    int arrays): one keyword's sorted id set stored as a sorted array
    (sparse), a packed bitmap of native 63-bit words (dense), or
    (start, length) run pairs (clustered), with the exact cardinality
    kept per container so the cost-based planner never estimates. The
    dense kernels (AND, AND-count, span membership) walk the word banks
    eight words per iteration; {!Wordops} owns the width constant and
    the SWAR helpers.

    This module is a tagged query kernel (lint rule R9): no [Hashtbl], no
    list construction. All kernels append ascending ids into caller-owned
    reusable buffers. Raw bitmap words are confined here by lint rule R11
    — [unsafe_words] exists only for this module's own kernels and the
    lint fixture. *)

type kind = Sparse | Dense | Runs

type policy =
  | Hybrid  (** classify each set by density (the default) *)
  | Sparse_only  (** force sorted arrays everywhere (PR 3 behavior, for A/B benches) *)

(** Physical execution strategy for a multi-way intersection, chosen by
    {!Planner.choose}. *)
type strategy =
  | Chain  (** pairwise rarest-first, ping-ponging through the buffers *)
  | Probe  (** scan the rarest container, membership-test the others *)
  | And_words  (** word-parallel bitmap AND; requires all-dense inputs *)

type t

val dense_cutoff : int
(** A set is bitmap-eligible when [card * dense_cutoff >= universe] (64:
    density at least 1/64, so the bitmap costs at most ~2 words/id). *)

val runs_cutoff : int
(** A set is run-eligible when [nruns * runs_cutoff <= card] (4: the run
    pairs then cost at most half the sorted array). *)

val classify : policy:policy -> universe:int -> card:int -> nruns:int -> kind
(** The layout [of_sorted_array] would pick: the smallest physical
    footprint among the eligible layouts (ties prefer [Sparse], then
    [Runs]); [Sparse_only] always answers [Sparse]. The dense footprint
    term is frozen at the snapshot-v2 32-bit word count [(u + 31) / 32]
    — kinds are stored in v2 snapshots and re-derived on load, so this
    decision cannot move with the physical word width. *)

val of_sorted_array : ?policy:policy -> universe:int -> int array -> t
(** [of_sorted_array ~universe ids] classifies and packs a strictly
    increasing id array over [\[0, universe)]. The array may be adopted
    (not copied) — callers must not mutate it afterwards.
    @raise Invalid_argument if ids are unsorted, duplicated or out of
    range. *)

val of_sorted_array_kind : kind -> universe:int -> int array -> t
(** Same, but with the layout forced — the promotion/demotion surface the
    differential suite uses to pin kernel equivalence at the thresholds. *)

val of_runs : universe:int -> int array -> t
(** Rebuild a run container from flattened (start, length) pairs — the
    snapshot decode path. Pairs must be sorted, disjoint and maximal
    (adjacent runs merged), lengths [>= 1], within the universe.
    @raise Invalid_argument otherwise. *)

val of_dense_bytes : universe:int -> card:int -> string -> off:int -> t
(** Rebuild a dense container from [(universe + 7) / 8] packed bytes of
    [s] at [off] (bit [i] is bit [i land 7] of byte [i lsr 3], as in
    {!Bitset}) — the snapshot decode path.
    @raise Invalid_argument if the slice falls outside [s], the popcount
    disagrees with [card], or bits beyond the universe are set. *)

val kind : t -> kind
val cardinality : t -> int

val universe : t -> int
(** Ids live in [\[0, universe)]. *)

val mem : t -> int -> bool
(** O(log card) sparse, O(1) dense, O(log runs) run containers. *)

val iter : (int -> unit) -> t -> unit
(** Ascending id order, every kind. *)

val to_sorted_array : t -> int array
val append_into : t -> Ibuf.t -> unit

val recount : t -> int
(** Cardinality recomputed from the physical layout (audit helper —
    equals {!cardinality} on a well-formed container). *)

val run_count : t -> int
(** Number of maximal runs in the stored set: O(1) for [Runs], one pass
    otherwise. *)

val runs_pairs : t -> int array
(** Fresh copy of the flattened (start, length) pairs — the snapshot
    encode path. @raise Invalid_argument unless [kind t = Runs]. *)

val inter_into : t -> t -> Ibuf.t -> unit
(** Pairwise intersection appended to the buffer, dispatching on the kind
    pair: array×array adaptive gallop/merge, array×bitmap bit probes,
    bitmap×bitmap word-AND with bit extraction, run short-circuits. Both
    containers must share one universe. *)

val inter_card : t -> t -> int
(** Exact [|a ∩ b|] without materializing the result: dense×dense runs
    the eight-wide AND-count kernel, every other pair probes the rarer
    side's memberships against the other. *)

val inter_span_into : int array -> lo:int -> hi:int -> t -> Ibuf.t -> unit
(** Intersect the strictly increasing span [a.(lo) .. a.(hi - 1)] (ids
    within the container's universe) with a container — the chain step
    that feeds a running result back through the remaining containers. *)

val union_into : t -> t -> Ibuf.t -> unit
(** Sorted duplicate-free union (differential-test surface, not a hot
    kernel; dense×dense runs word-parallel, everything else merges). *)

val intersect_query : strategy -> t array -> out:Ibuf.t -> tmp:Ibuf.t -> unit
(** [intersect_query strategy cs ~out ~tmp] leaves the sorted
    intersection of all containers in [out] ([tmp] is scratch; both are
    cleared first). [cs] should be ordered rarest-first for [Chain] and
    [Probe]; [And_words] silently degrades to [Chain] unless every
    container is dense over one universe, so a planner miss can never
    produce a wrong answer. @raise Invalid_argument on an empty array. *)

val unsafe_words : t -> int array
(** The raw 63-bit word bank of a dense container ([[||]] otherwise),
    aliased, not copied. Lint rule R11 bans touching this outside
    [lib/util/container.ml] — every legitimate word-level operation
    belongs in this module's kernels. *)

val dense_bytes : t -> string
(** Dense payload as packed bytes (see {!of_dense_bytes}). The byte
    layout is width-agnostic — bit [i] is bit [i land 7] of byte
    [i lsr 3] regardless of the in-memory word size — so v2 snapshot
    blobs survived the 32 -> 63 bit widening unchanged.
    @raise Invalid_argument unless [kind t = Dense]. *)

val bitmap_bytes : t -> string
(** The whole container as [(universe + 7) / 8] packed bitmap bytes,
    any kind — byte-compatible with {!dense_bytes} and the historical
    [Bitset.to_bytes] convention (the transform's emptiness arrays
    persist through this). *)

val of_bitmap_string : ?policy:policy -> universe:int -> string -> off:int -> t
(** Rebuild a container from [(universe + 7) / 8] packed bitmap bytes of
    [s] at [off], classifying the decoded set under [policy] (default
    [Hybrid]).
    @raise Invalid_argument if the slice falls outside [s] or bits at or
    beyond the universe are set. *)
