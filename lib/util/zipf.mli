(** Zipf-distributed sampler over [{1, ..., n}].

    Keyword frequencies in text corpora are famously Zipfian; the workload
    generator uses this sampler to draw document keywords so that the
    large/small keyword dichotomy of the paper (Section 3.2) is exercised on
    realistic skew. Sampling is by inversion on the precomputed CDF,
    O(log n) per draw. *)

type t

val create : n:int -> theta:float -> t
(** [create ~n ~theta] prepares a sampler over ranks [1..n] with exponent
    [theta >= 0] ([theta = 0] is uniform; larger is more skewed). The
    O(n) normalization table is memoized per (n, theta) — benchmark
    sweeps that rebuild the same sampler hundreds of times pay for it
    once; repeated calls return the identical (shared, immutable) table.
    @raise Invalid_argument if [n <= 0] or [theta < 0]. *)

val sample : t -> Prng.t -> int
(** Draw a rank in [\[1, n\]]. *)

val pmf : t -> int -> float
(** [pmf t r] is the probability of rank [r]. *)
