(** Operations on sorted arrays: the building blocks for documents (sorted
    keyword arrays), posting lists and the candidate-radius selection of
    Corollary 4. *)

val mem_int : int array -> int -> bool
(** Binary-search membership in a sorted int array. This realizes the paper's
    footnote-9 per-document membership test (we accept O(log |Doc|) instead
    of perfect hashing; see DESIGN.md substitution 2). *)

val lower_bound : float array -> float -> int
(** [lower_bound a x] is the least index [i] with [a.(i) >= x], or
    [Array.length a] if none. [a] must be sorted ascending.

    NaN caveat: the probe uses IEEE [>=], under which every comparison
    against NaN is false, so [lower_bound a nan = Array.length a] — a NaN
    needle behaves like +infinity, NOT like the above-+inf position
    [Float.compare] would give it. Callers with possibly-NaN query bounds
    (e.g. {!Kwsc_geom.Rank_space.rect_to_ranks}) must reject NaN before
    searching. *)

val upper_bound : float array -> float -> int
(** Least index [i] with [a.(i) > x], or length if none. Same NaN caveat
    as {!lower_bound}: [upper_bound a nan = Array.length a]. *)

val lower_bound_int : int array -> int -> int
(** As [lower_bound] for int arrays. *)

val upper_bound_int : int array -> int -> int
(** As [upper_bound] for int arrays. *)

val dedup_int : int array -> int array
(** Sorted array with duplicates removed (input must be sorted). *)

val sort_dedup : int list -> int array
(** Sort a list of ints and remove duplicates. *)

val intersect : int array -> int array -> int array
(** Intersection of two sorted int arrays (linear merge; the oracle the
    galloping kernel is tested against). *)

val gallop_lower_bound : int array -> lo:int -> hi:int -> int -> int
(** [gallop_lower_bound a ~lo ~hi x] is the least index [i] in [\[lo, hi)]
    with [a.(i) >= x] ([hi] if none), found by exponential probing from
    [lo] — O(log r) where [r] is the distance advanced, the primitive
    behind the adaptive intersection. *)

val gallop_intersect_into :
  int array -> alo:int -> ahi:int -> int array -> blo:int -> bhi:int -> Ibuf.t -> unit
(** Intersect the sorted spans [a\[alo, ahi)] and [b\[blo, bhi)],
    appending the common elements to the buffer. Adaptive: spans of
    comparable length stream through a sequential merge; spans skewed
    beyond 8x gallop the short one through the long one, costing
    O(short * log(long/short)) instead of O(short + long). Allocation-free
    apart from the buffer's own growth. Operating on spans lets callers
    intersect slices of a postings arena in place. *)

val gallop_intersect : int array -> int array -> int array
(** Whole-array convenience wrapper around {!gallop_intersect_into}. *)

val count_in_range : float array -> float -> float -> int
(** [count_in_range a lo hi] counts entries in the closed interval
    [\[lo, hi\]] of a sorted array. *)

val kth_abs_diff : (float array * float) array -> int -> float
(** [kth_abs_diff columns k] treats each pair [(a, q)] in [columns] as the
    multiset [{ |x - q| : x in a }] ([a] sorted ascending) — exactly the
    candidate radii of Corollary 4, one column per dimension with [q] the
    query coordinate on that dimension — and returns the k-th smallest value
    of the union (1-indexed) without materializing it.
    @raise Invalid_argument if [k] is out of range or a column is empty. *)
