(** Fixed-size domain pool with work-stealing deques.

    The OCaml 5 multicore substrate for every parallel code path in the
    repository: bulk index construction forks independent subtree tasks
    into the pool, and the batched-query APIs shard query streams across
    it. A pool owns [size - 1] spawned domains plus the submitting caller
    (worker 0), each with its own deque: owners push and pop LIFO for
    locality, idle workers steal the oldest task from a sibling, and a
    joiner helps — it runs queued tasks while the future it waits on is
    unresolved — so nested fork/join (a subtree task forking its own
    children) cannot deadlock.

    Determinism contract: the pool schedules, it never splits work.
    Callers decompose their job into a scheduling-independent task DAG
    (e.g. "left subtree" / "right subtree"), so results are identical at
    every pool size; [test_parallel_diff] enforces this differentially.

    Degradation: a pool of size 1 spawns no domains and runs every
    combinator inline — [parallel_for] is a for loop, [fork_join] calls
    its closures in order — which is both the [KWSC_DOMAINS=1] escape
    hatch and the mode the differential tests use as ground truth. *)

type t

val create : ?domains:int -> unit -> t
(** [create ~domains ()] spawns a pool of [domains] workers total
    (including the caller). Defaults to {!env_domains}. Values are
    clamped to [\[1, 128\]]. *)

val default : unit -> t
(** The process-wide shared pool, created on first use from
    {!env_domains} and shut down automatically at exit. Every [?pool]
    argument in the library defaults to it. *)

val env_domains : unit -> int
(** The domain count requested by the environment: [KWSC_DOMAINS] if set
    to a positive integer, otherwise [Domain.recommended_domain_count ()].
    Read at every call, so tests may [putenv] before creating a pool. *)

val size : t -> int
(** Total workers, caller included; [size t = 1] means sequential. *)

val sequential : t -> bool
(** [size t <= 1]: combinators run inline with zero scheduling cost. *)

val shutdown : t -> unit
(** Signal the workers to exit and join their domains. Idempotent.
    Submitting to a pool after shutdown raises [Invalid_argument]. *)

type 'a future

val async : t -> (unit -> 'a) -> 'a future
(** Submit a task. On a sequential pool the task runs immediately. *)

val await : t -> 'a future -> 'a
(** Wait for a future, helping with queued work meanwhile. Re-raises the
    task's exception (with its backtrace) if it failed. *)

val fork_join : t -> (unit -> 'a) -> (unit -> 'b) -> 'a * 'b
(** [fork_join p f g] runs [f] in the caller and [g] in the pool,
    returning both results. If [f] raises, [g] is still awaited before
    the exception propagates, so no task outlives the call. *)

val fork_join_array : t -> (unit -> 'a) array -> 'a array
(** N-ary [fork_join]: thunk [i]'s result lands in slot [i]. The last
    thunk runs in the caller; the rest are offered to the pool. *)

val parallel_for : t -> ?chunk:int -> lo:int -> hi:int -> (int -> unit) -> unit
(** [parallel_for p ~lo ~hi body] runs [body i] for [lo <= i < hi],
    recursively halving the range into pool tasks until a subrange is at
    most [chunk] (default 1) wide. Iterations must be independent. *)

val parallel_map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [Array.map], one pool task per element chunk. *)

val fork_depth : t -> int
(** ceil(log2 size) + 2 — how many levels of a binary recursion are worth
    forking before the pool is saturated; the tree builders stop forking
    below this depth (and below their size cutoffs). *)

(** Domain-safe write-once cells, used by the out-of-core paged readers
    to defer a section's CRC check and decode to first touch. Racing
    forcers may both run the thunk (it must be a deterministic pure
    function); the first to finish publishes, with release/acquire
    visibility for every write made producing the value. *)
module Once : sig
  type 'a t

  val ready : 'a -> 'a t
  (** A cell that is already forced — the heap-resident (eager) case. *)

  val make : (unit -> 'a) -> 'a t

  val force : 'a t -> 'a
  (** Run the thunk on first touch (re-raising whatever it raises, e.g.
      [Codec.Corrupt] from a lazy CRC check) and cache the value. *)

  val is_forced : 'a t -> bool
end
