(** Cost-based strategy selection for multi-container intersections.

    The planner changes only the physical kernel — never the answer, never
    the logical work counters — so callers consult it unconditionally and
    [--planner=off] restores the pre-planner chain behavior exactly. *)

val enabled : bool ref
(** Global escape hatch. Initialized from [KWSC_PLANNER] ("off", "0" or
    "false" disables; anything else, or unset, enables). When false,
    {!choose} always answers [Chain] and {!worth_caching} always answers
    false. *)

val feedback_enabled : bool ref
(** Selectivity-feedback escape hatch, same convention, initialized from
    [KWSC_PLANNER_FEEDBACK]. When false, {!choose} ignores its
    [?observed] argument and prices chains with the uncorrelated PR 5
    model. Feedback is a purely physical refinement — answers and
    logical work counters are bit-identical either way. *)

val tau : n:int -> k:int -> float
(** The paper's N^(1 - 1/k) crossover threshold — the same algebra the
    transform uses for the large/small keyword dichotomy, reused here to
    gate LFU-cache admission. [k] is clamped to at least 2. *)

val ceil_log2 : int -> int
(** Smallest [b >= 1] with [2^b >= n] — the planner's integer log. *)

val choose : ?observed:int -> Container.t array -> Container.strategy
(** [choose cs] picks the cheapest strategy for intersecting [cs]
    (ordered rarest-first, cardinalities exact): word-parallel AND when
    every container is dense over one universe and the word passes beat
    both alternatives, probing when the rarest cardinality times the
    per-container membership cost undercuts the adaptive chain, the
    chain otherwise. Answers [Chain] when disabled or [k <= 1].

    [?observed] (default [-1] = unknown) is the observed intersection
    cardinality of the two rarest containers, as recorded by the LFU
    pair cache. When non-negative and {!feedback_enabled}, chain steps
    after the first are priced against a running accumulator of that
    length instead of the rarest container's full scan length —
    correlation correction over the uncorrelated cost model. *)

val worth_caching : n:int -> k:int -> cost:int -> bool
(** Admission test for the materialized-intersection cache: only
    intersections whose estimated cost reaches [tau ~n ~k] — the point
    where tree descent would beat rescanning — are worth pinning. *)
