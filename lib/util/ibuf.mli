(** Growable int buffer: the result accumulator of the allocation-free
    query kernels. A kernel pushes ids into a reusable buffer instead of
    consing a list, so the hot loop allocates nothing beyond the rare
    doubling of one flat array ([clear] + refill reuses the storage and
    allocates nothing at all once the buffer has warmed up). *)

type t

val create : ?capacity:int -> unit -> t
(** Fresh empty buffer. [capacity] (default 16) pre-sizes the storage.
    @raise Invalid_argument if [capacity < 1]. *)

val length : t -> int

val clear : t -> unit
(** Reset to empty, keeping the storage (no allocation). *)

val push : t -> int -> unit
(** Append one element; amortized O(1), allocation only on doubling. *)

val reserve : t -> int -> unit
(** Ensure the backing store holds at least [n] slots without changing
    the length — lets a kernel borrow [unsafe_data] as fixed-size
    scratch (e.g. a word bank for a bitmap AND) with at most one
    allocation. *)

val swap : t -> t -> unit
(** Exchange the contents (storage and length) of two buffers in O(1) —
    lets a ping-pong intersection end with the result in the caller's
    output buffer without copying. *)

val get : t -> int -> int
(** @raise Invalid_argument outside [\[0, length)]. *)

val unsafe_data : t -> int array
(** The backing store; only the first [length] slots are meaningful, and
    the array is invalidated by the next [push] that grows the buffer.
    For kernels that scan their own accumulator without copying. *)

val to_array : t -> int array
(** Fresh array of the first [length] elements. *)

val sorted_array : t -> int array
(** [to_array] sorted ascending ([Int.compare]). *)

val iter : (int -> unit) -> t -> unit
