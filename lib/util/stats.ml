let mean xs =
  if Array.length xs = 0 then invalid_arg "Stats.mean: empty";
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let stddev xs =
  if Array.length xs = 0 then invalid_arg "Stats.stddev: empty";
  let m = mean xs in
  let var = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
  sqrt (var /. float_of_int (Array.length xs))

let median xs =
  if Array.length xs = 0 then invalid_arg "Stats.median: empty";
  let a = Array.copy xs in
  Array.sort Float.compare a;
  let n = Array.length a in
  if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

let percentile xs p =
  if Array.length xs = 0 then invalid_arg "Stats.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let a = Array.copy xs in
  Array.sort Float.compare a;
  let n = Array.length a in
  let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
  a.(max 0 (min (n - 1) (rank - 1)))

let linear_fit pts =
  let n = Array.length pts in
  if n < 2 then invalid_arg "Stats.linear_fit: need at least two points";
  let fn = float_of_int n in
  let sx = Array.fold_left (fun a (x, _) -> a +. x) 0.0 pts in
  let sy = Array.fold_left (fun a (_, y) -> a +. y) 0.0 pts in
  let sxx = Array.fold_left (fun a (x, _) -> a +. (x *. x)) 0.0 pts in
  let sxy = Array.fold_left (fun a (x, y) -> a +. (x *. y)) 0.0 pts in
  let denom = (fn *. sxx) -. (sx *. sx) in
  if abs_float denom < 1e-12 then invalid_arg "Stats.linear_fit: degenerate x values";
  let slope = ((fn *. sxy) -. (sx *. sy)) /. denom in
  let intercept = (sy -. (slope *. sx)) /. fn in
  (slope, intercept)

let fit_exponent pts =
  let logged =
    Array.map
      (fun (x, y) ->
        if x <= 0.0 || y <= 0.0 then invalid_arg "Stats.fit_exponent: non-positive point";
        (log x, log y))
      pts
  in
  fst (linear_fit logged)

let r_squared pts =
  let slope, intercept = linear_fit pts in
  let ys = Array.map snd pts in
  let my = mean ys in
  let ss_tot = Array.fold_left (fun a y -> a +. ((y -. my) ** 2.0)) 0.0 ys in
  let ss_res =
    Array.fold_left (fun a (x, y) -> a +. ((y -. ((slope *. x) +. intercept)) ** 2.0)) 0.0 pts
  in
  if ss_tot < 1e-12 then 1.0 else 1.0 -. (ss_res /. ss_tot)
