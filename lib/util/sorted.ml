[@@@kwsc.kernel]

let mem_int a x =
  let lo = ref 0 and hi = ref (Array.length a - 1) in
  let found = ref false in
  while (not !found) && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    if a.(mid) = x then found := true
    else if a.(mid) < x then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let lower_bound a x =
  let lo = ref 0 and hi = ref (Array.length a) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if a.(mid) >= x then hi := mid else lo := mid + 1
  done;
  !lo

let upper_bound a x =
  let lo = ref 0 and hi = ref (Array.length a) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if a.(mid) > x then hi := mid else lo := mid + 1
  done;
  !lo

let lower_bound_int a x =
  let lo = ref 0 and hi = ref (Array.length a) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if a.(mid) >= x then hi := mid else lo := mid + 1
  done;
  !lo

let upper_bound_int a x =
  let lo = ref 0 and hi = ref (Array.length a) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if a.(mid) > x then hi := mid else lo := mid + 1
  done;
  !lo

let dedup_int a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    (* count pass + fill pass: no intermediate list *)
    let count = ref 1 in
    for i = 1 to n - 1 do
      if a.(i) <> a.(i - 1) then incr count
    done;
    let res = Array.make !count 0 in
    res.(0) <- a.(0);
    let k = ref 1 in
    for i = 1 to n - 1 do
      if a.(i) <> a.(i - 1) then begin
        res.(!k) <- a.(i);
        incr k
      end
    done;
    res
  end

let sort_dedup l =
  let a = Array.of_list l in
  Array.sort Int.compare a;
  dedup_int a

let intersect a b =
  let na = Array.length a and nb = Array.length b in
  (* write into a |shorter side| scratch; no intermediate list *)
  let res = Array.make (if na < nb then na else nb) 0 in
  let i = ref 0 and j = ref 0 and k = ref 0 in
  while !i < na && !j < nb do
    if a.(!i) = b.(!j) then begin
      res.(!k) <- a.(!i);
      incr k;
      incr i;
      incr j
    end
    else if a.(!i) < b.(!j) then incr i
    else incr j
  done;
  if !k = Array.length res then res else Array.sub res 0 !k

(* Exponential-probe (galloping) lower bound within [lo, hi): first index
   with a.(i) >= x. Probes lo+1, lo+2, lo+4, ... then binary-searches the
   bracketed window, so advancing past a run of r misses costs O(log r)
   instead of O(log (hi - lo)). *)
let gallop_lower_bound a ~lo ~hi x =
  if lo >= hi || a.(lo) >= x then lo
  else begin
    (* a.(lo) < x: gallop until the probe meets or passes the target *)
    let step = ref 1 and last = ref lo in
    while lo + !step < hi && a.(lo + !step) < x do
      last := lo + !step;
      step := !step * 2
    done;
    let l = ref (!last + 1) and h = ref (min (lo + !step) hi) in
    while !l < !h do
      let mid = (!l + !h) / 2 in
      if a.(mid) >= x then h := mid else l := mid + 1
    done;
    !l
  end

(* Sequential merge intersection of two sorted spans: one comparison per
   step, perfectly prefetchable — the fastest kernel when the spans are of
   comparable length. *)
let merge_intersect_into a ~alo ~ahi b ~blo ~bhi out =
  let i = ref alo and j = ref blo in
  while !i < ahi && !j < bhi do
    let x = a.(!i) and y = b.(!j) in
    if x = y then begin
      Ibuf.push out x;
      incr i;
      incr j
    end
    else if x < y then incr i
    else incr j
  done

(* Gallop the (short) span a[alo, ahi) through the (long) span b[blo, bhi):
   each element of [a] advances [b]'s cursor by an exponential probe, so a
   run of r skipped elements costs O(log r). *)
let gallop_short_into a ~alo ~ahi b ~blo ~bhi out =
  let i = ref alo and j = ref blo in
  while !i < ahi && !j < bhi do
    let x = a.(!i) in
    j := gallop_lower_bound b ~lo:!j ~hi:bhi x;
    if !j < bhi && b.(!j) = x then begin
      Ibuf.push out x;
      incr j
    end;
    incr i
  done

(* Adaptive intersection of the sorted spans a[alo, ahi) and b[blo, bhi),
   appended to [out]. Balanced spans take the sequential merge (galloping's
   probe-and-bisect overhead loses to one-comparison-per-step streaming);
   spans skewed beyond 8x gallop the short one through the long one,
   costing O(short * log(long / short)) instead of O(short + long). The
   only allocation either way is the output buffer's occasional doubling.

   Degenerate spans bail in O(1) before any probing: an empty span, or
   one whose entire range precedes the other's (max < min), cannot
   contribute — the guards cost two comparisons and spare the gallop's
   probe-and-bisect startup on every chain step that has already run
   dry or hit disjoint id ranges. *)
let gallop_intersect_into a ~alo ~ahi b ~blo ~bhi out =
  let la = ahi - alo and lb = bhi - blo in
  if la <= 0 || lb <= 0 || a.(ahi - 1) < b.(blo) || b.(bhi - 1) < a.(alo) then ()
  else if la * 8 < lb then gallop_short_into a ~alo ~ahi b ~blo ~bhi out
  else if lb * 8 < la then gallop_short_into b ~alo:blo ~ahi:bhi a ~blo:alo ~bhi:ahi out
  else merge_intersect_into a ~alo ~ahi b ~blo ~bhi out

let gallop_intersect a b =
  let out = Ibuf.create ~capacity:(max 1 (min (Array.length a) (Array.length b))) () in
  gallop_intersect_into a ~alo:0 ~ahi:(Array.length a) b ~blo:0 ~bhi:(Array.length b) out;
  Ibuf.to_array out

let count_in_range a lo hi = if hi < lo then 0 else upper_bound a hi - lower_bound a lo

(* Candidate-radius selection (Corollary 4).

   All comparisons below operate on the *computed* candidate values
   [abs_float (x -. q)], never on re-derived interval endpoints, so the
   counting function and the candidate values are consistent under floating
   point by construction.  Within a sorted column, |x - q| is monotone
   decreasing left of q and increasing right of q, so each side is binary
   searchable. *)
let kth_abs_diff columns k =
  if Array.length columns = 0 then invalid_arg "Sorted.kth_abs_diff: no columns";
  let total =
    Array.fold_left
      (fun acc (a, _) ->
        if Array.length a = 0 then invalid_arg "Sorted.kth_abs_diff: empty column";
        acc + Array.length a)
      0 columns
  in
  if k < 1 || k > total then invalid_arg "Sorted.kth_abs_diff: k out of range";
  (* per column: number of candidates <= r *)
  let count_col (a, q) r =
    let m = lower_bound a q in
    (* left side [0, m): values q -. x, decreasing; true on a suffix *)
    let left =
      let lo = ref 0 and hi = ref m in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if q -. a.(mid) <= r then hi := mid else lo := mid + 1
      done;
      m - !lo
    in
    (* right side [m, len): values x -. q, increasing; true on a prefix *)
    let right =
      let len = Array.length a in
      let lo = ref m and hi = ref len in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if a.(mid) -. q <= r then lo := mid + 1 else hi := mid
      done;
      !lo - m
    in
    left + right
  in
  let count r =
    (* explicit loop: a fold closure here would allocate per bisection step *)
    let acc = ref 0 in
    for c = 0 to Array.length columns - 1 do
      acc := !acc + count_col columns.(c) r
    done;
    !acc
  in
  (* per column: smallest candidate value strictly greater than r *)
  let next_col (a, q) r =
    let m = lower_bound a q in
    let best = ref infinity in
    (let lo = ref 0 and hi = ref m in
     while !lo < !hi do
       let mid = (!lo + !hi) / 2 in
       if q -. a.(mid) <= r then hi := mid else lo := mid + 1
     done;
     if !lo > 0 then best := Float.min !best (q -. a.(!lo - 1)));
    (let len = Array.length a in
     let lo = ref m and hi = ref len in
     while !lo < !hi do
       let mid = (!lo + !hi) / 2 in
       if a.(mid) -. q <= r then lo := mid + 1 else hi := mid
     done;
     if !lo < Array.length a then best := Float.min !best (a.(!lo) -. q));
    !best
  in
  let next_candidate r =
    let best = ref infinity in
    for c = 0 to Array.length columns - 1 do
      best := Float.min !best (next_col columns.(c) r)
    done;
    !best
  in
  if count 0.0 >= k then 0.0
  else begin
    let hi0 =
      Array.fold_left
        (fun acc (a, q) ->
          Float.max acc
            (Float.max (abs_float (a.(0) -. q)) (abs_float (a.(Array.length a - 1) -. q))))
        0.0 columns
    in
    let lo = ref 0.0 and hi = ref hi0 in
    for _ = 1 to 80 do
      let mid = (!lo +. !hi) /. 2.0 in
      if count mid >= k then hi := mid else lo := mid
    done;
    (* count !lo < k <= count !hi: walk the discrete candidates above !lo *)
    let r = ref !lo in
    let ans = ref nan in
    while Float.is_nan !ans do
      let c = next_candidate !r in
      if Float.equal c infinity then ans := !r
      else if count c >= k then ans := c
      else r := c
    done;
    !ans
  end
