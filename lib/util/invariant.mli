(** Deep structural-invariant auditing shared by every index.

    Each index module exports a [check_invariants : t -> Invariant.violation
    list] walking its entire structure and reporting every broken invariant
    (median balance, weight bounds, sortedness, ...). The checks are linear
    (or worse) in the structure size, so they never run on the hot path by
    default: builds and updates self-audit only when the [KWSC_AUDIT]
    environment variable is set to [1] (see [enabled]), which is how the
    qcheck audit tests run and how a suspect workload can be re-run under
    full checking without recompiling. *)

type violation = {
  structure : string;  (** which index, e.g. ["Kd"] *)
  locus : string;  (** where inside it, e.g. ["node[0.1.0]"] *)
  detail : string;  (** what is broken, human-readable *)
}

val v : structure:string -> locus:string -> string -> violation
(** Build one violation record. *)

val vf :
  structure:string ->
  locus:string ->
  ('a, unit, string, violation) format4 ->
  'a
(** [vf ~structure ~locus fmt ...] — printf-style [v]. *)

val to_string : violation -> string
(** ["Kd: node[0.1]: left subtree ..."]. *)

val report : violation list -> string
(** All violations, one per line (empty string for the empty list). *)

exception Audit_failure of string
(** Raised by [auto_check] when auditing is enabled and violations exist.
    The payload is [report] of the violations. *)

val enabled : unit -> bool
(** True iff the environment variable [KWSC_AUDIT] is ["1"] (re-read on
    every call so tests can toggle it with [putenv]). *)

val auto_check : (unit -> violation list) -> unit
(** [auto_check f] does nothing unless [enabled ()]; otherwise runs [f] and
    raises {!Audit_failure} if any violations come back. Index builds and
    dynamic updates call this on themselves, so [KWSC_AUDIT=1 dune runtest]
    audits every structure the suite ever constructs, while release
    binaries pay only an environment-variable lookup per build. *)
