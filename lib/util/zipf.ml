type t = { cdf : float array; pmf : float array }

let build ~n ~theta =
  let w = Array.init n (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) theta) in
  let total = Array.fold_left ( +. ) 0.0 w in
  let pmf = Array.map (fun x -> x /. total) w in
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i p ->
      acc := !acc +. p;
      cdf.(i) <- !acc)
    pmf;
  cdf.(n - 1) <- 1.0;
  { cdf; pmf }

(* The normalization table is O(n) to build and the workload generators
   rebuild identical samplers for every sweep row, so [create] memoizes
   the last few (n, theta) tables. Entries are immutable and the cache is
   only ever swapped whole, so a racy double-build is benign (both
   winners are equivalent). *)
let cache_limit = 16
let cache : (int * float * t) array ref = ref [||]

let create ~n ~theta =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  if theta < 0.0 then invalid_arg "Zipf.create: theta must be non-negative";
  let entries = !cache in
  let hit = ref None in
  Array.iter
    (fun (n', theta', t) ->
      match !hit with
      | Some _ -> ()
      | None -> if n' = n && Float.equal theta' theta then hit := Some t)
    entries;
  match !hit with
  | Some t -> t
  | None ->
      let t = build ~n ~theta in
      let keep = min (Array.length entries) (cache_limit - 1) in
      let next = Array.make (keep + 1) (n, theta, t) in
      Array.blit entries 0 next 1 keep;
      cache := next;
      t

let sample t rng =
  let u = Prng.float rng 1.0 in
  (* least index with cdf >= u *)
  let lo = ref 0 and hi = ref (Array.length t.cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) >= u then hi := mid else lo := mid + 1
  done;
  !lo + 1

let pmf t r =
  if r < 1 || r > Array.length t.pmf then invalid_arg "Zipf.pmf: rank out of range";
  t.pmf.(r - 1)
