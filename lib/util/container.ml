[@@@kwsc.kernel]

(* Hybrid posting containers: one keyword's sorted id set stored in the
   cheapest of three physical layouts, chosen by exact density — sorted
   arrays for sparse sets, packed bitmaps of native 63-bit words for
   dense ones, and (start, length) run pairs for clustered ranges (the
   Roaring-bitmap container dichotomy adapted to flat int arrays).
   Cardinality is kept exact per container so the query planner never
   estimates.

   The dense word layout is 63 bits per int (Wordops owns the width, the
   magic-division bit addressing and the SWAR helpers); the AND,
   AND-count and word-extraction loops below walk the banks eight words
   per iteration with unchecked reads, guarded by one `w + 8 <= nw`
   check per stride (analyzer rule A3 gates every unsafe access).

   This module is a tagged query kernel (lint rule R9): no Hashtbl, no
   list construction. All intersection kernels append ascending ids into
   caller-owned reusable buffers; raw bitmap words never leave this file
   except through [unsafe_words] (lint rule R11 confines its use here). *)

type kind = Sparse | Dense | Runs
type policy = Hybrid | Sparse_only
type strategy = Chain | Probe | And_words

type t = {
  kind : kind;
  card : int; (* exact cardinality *)
  universe : int; (* ids live in [0, universe) *)
  ids : int array; (* Sparse: sorted ids; Runs: flattened (start, len) pairs *)
  words : int array; (* Dense: 63-bit little-endian packed words (Wordops) *)
}

(* append every set bit of one word: bit j of [m] becomes id [base + j].
   Top-level (not a local closure) so the unrolled kernels below stay
   allocation-free under analyzer rule A1. *)
let push_word_bits out base m =
  let m = ref m in
  while !m <> 0 do
    Ibuf.push out (base + Wordops.ntz !m);
    m := !m land (!m - 1)
  done

(* span membership probe against a dense word bank, batched per 63-bit
   word. The cursor (base = 63 * wi, cur = words.(wi)) caches the word
   under the previous id: ids landing in the same word probe with a
   subtract + mask and zero divisions. A word crossing re-derives the
   cursor from the id alone — one branch-free magic multiply that
   depends only on [x], never on the previous cursor, so back-to-back
   crossings pipeline instead of serialising through a loop-carried
   multiply chain. Tail recursion keeps the cursor in registers.
   Top-level for the same A1 reason as [push_word_bits]. Both
   unchecked loads lean on entry checks in [inter_span_into]'s Dense
   arm: the span read on [hi <= length a] plus the [i < hi] test here,
   the word load on [a.(hi - 1) < universe] (the span is ascending, so
   every wi < nwords universe = length words) — and the magic multiply
   is exact because ids stay under [Wordops.div_bits_magic_bound],
   checked against the universe at the same entry point (A3). *)
let rec probe_span_dense a ~hi words out i base cur =
  if i < hi then begin
    let x = Array.unsafe_get a i in
    let off = x - base in
    if off < Wordops.bits then begin
      if cur land (1 lsl off) <> 0 then Ibuf.push out x;
      probe_span_dense a ~hi words out (i + 1) base cur
    end
    else begin
      let wi = Wordops.div_bits_magic x in
      let base = (wi lsl 6) - wi (* 63 * wi, strength-reduced *) in
      let cur = Array.unsafe_get words wi in
      if cur land (1 lsl (x - base)) <> 0 then Ibuf.push out x;
      probe_span_dense a ~hi words out (i + 1) base cur
    end
  end

(* wide-gap spans (average gap of a word or more): the cursor above
   would miss its cached word on nearly every id and pay the test for
   nothing, so probe four ids per stride with the branch-free magic
   divide instead — each probe depends only on its own id, so the four
   multiply chains overlap in the pipeline. Sequential hit tests keep
   the output ascending. Licensed by the same Dense-arm entry checks
   as [probe_span_dense]: [!i + 4 <= hi] with [hi <= length a] covers
   the span reads, ids < universe covers the word loads (A3). *)
let probe_span_dense_wide a ~lo ~hi words out =
  let i = ref lo in
  while !i + 4 <= hi do
    let j = !i in
    let x0 = Array.unsafe_get a j in
    let x1 = Array.unsafe_get a (j + 1) in
    let x2 = Array.unsafe_get a (j + 2) in
    let x3 = Array.unsafe_get a (j + 3) in
    let w0 = Wordops.div_bits_magic x0 in
    let w1 = Wordops.div_bits_magic x1 in
    let w2 = Wordops.div_bits_magic x2 in
    let w3 = Wordops.div_bits_magic x3 in
    let c0 = Array.unsafe_get words w0 in
    let c1 = Array.unsafe_get words w1 in
    let c2 = Array.unsafe_get words w2 in
    let c3 = Array.unsafe_get words w3 in
    if c0 land (1 lsl (x0 - ((w0 lsl 6) - w0))) <> 0 then Ibuf.push out x0;
    if c1 land (1 lsl (x1 - ((w1 lsl 6) - w1))) <> 0 then Ibuf.push out x1;
    if c2 land (1 lsl (x2 - ((w2 lsl 6) - w2))) <> 0 then Ibuf.push out x2;
    if c3 land (1 lsl (x3 - ((w3 lsl 6) - w3))) <> 0 then Ibuf.push out x3;
    i := j + 4
  done;
  while !i < hi do
    let x = a.(!i) in
    let wi = Wordops.div_bits_magic x in
    if words.(wi) land (1 lsl (x - ((wi lsl 6) - wi))) <> 0 then Ibuf.push out x;
    incr i
  done

(* ------------------------------------------------------------------ *)
(* Classification                                                      *)
(* ------------------------------------------------------------------ *)

(* A set is dense enough for a bitmap when it fills at least 1/64 of the
   universe (the bitmap then costs at most 2 words per stored id), and
   run-compressible when it has at most card/4 maximal runs (pairs then
   cost at most half the sorted array). *)
let dense_cutoff = 64
let runs_cutoff = 4

(* Frozen v2 classification footprint: the dense-eligibility comparison
   keeps pricing a bitmap at the PR 5 32-bit word count even though the
   physical words are now 63-bit. Snapshot v2 stores each container's
   kind, and both check_invariants and the v1-reclassify load path
   re-derive kinds through [classify] — repricing this term would flip
   kinds near the footprint tie and refuse every existing snapshot. The
   *runtime* cost model (Planner.chain_len / the And_words pass count)
   tracks the real 63-bit word counts independently; only this stored,
   format-visible decision stays pinned. *)
let dense_words_v2 universe = (universe + 31) lsr 5

let classify ~policy ~universe ~card ~nruns =
  match policy with
  | Sparse_only -> Sparse
  | Hybrid ->
      if card = 0 then Sparse
      else begin
        (* smallest physical footprint among the eligible layouts; ties
           prefer the simpler representation (Sparse, then Runs) *)
        let s_sparse = card in
        let s_runs = if nruns * runs_cutoff <= card then 2 * nruns else max_int in
        let s_dense =
          if card * dense_cutoff >= universe then dense_words_v2 universe else max_int
        in
        if s_sparse <= s_runs && s_sparse <= s_dense then Sparse
        else if s_runs <= s_dense then Runs
        else Dense
      end

let count_runs ids =
  let n = Array.length ids in
  if n = 0 then 0
  else begin
    let r = ref 1 in
    for i = 1 to n - 1 do
      if ids.(i) <> ids.(i - 1) + 1 then incr r
    done;
    !r
  end

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let validate_ids ~universe ids =
  let n = Array.length ids in
  for i = 0 to n - 1 do
    let x = ids.(i) in
    if x < 0 || x >= universe then invalid_arg "Container: id outside the universe";
    if i > 0 && ids.(i - 1) >= x then invalid_arg "Container: ids must be strictly increasing"
  done

let build_sparse ~universe ids =
  { kind = Sparse; card = Array.length ids; universe; ids; words = [||] }

let build_dense ~universe ids =
  let w = Array.make (Wordops.nwords universe) 0 in
  Array.iter
    (fun x -> w.(Wordops.div_bits x) <- w.(Wordops.div_bits x) lor (1 lsl Wordops.mod_bits x))
    ids;
  { kind = Dense; card = Array.length ids; universe; ids = [||]; words = w }

let build_runs ~universe ids =
  let nr = count_runs ids in
  let pairs = Array.make (2 * nr) 0 in
  let r = ref (-1) in
  Array.iteri
    (fun i x ->
      if i = 0 || x <> ids.(i - 1) + 1 then begin
        incr r;
        pairs.(2 * !r) <- x
      end;
      pairs.((2 * !r) + 1) <- pairs.((2 * !r) + 1) + 1)
    ids;
  { kind = Runs; card = Array.length ids; universe; ids = pairs; words = [||] }

let of_sorted_array_kind k ~universe ids =
  validate_ids ~universe ids;
  match k with
  | Sparse -> build_sparse ~universe ids
  | Dense -> build_dense ~universe ids
  | Runs -> build_runs ~universe ids

let of_sorted_array ?(policy = Hybrid) ~universe ids =
  validate_ids ~universe ids;
  let card = Array.length ids in
  match classify ~policy ~universe ~card ~nruns:(count_runs ids) with
  | Sparse -> build_sparse ~universe ids
  | Dense -> build_dense ~universe ids
  | Runs -> build_runs ~universe ids

let of_runs ~universe pairs =
  let np = Array.length pairs in
  if np land 1 <> 0 then invalid_arg "Container.of_runs: odd pair array";
  let card = ref 0 in
  for r = 0 to (np lsr 1) - 1 do
    let s = pairs.(2 * r) and len = pairs.((2 * r) + 1) in
    if len < 1 then invalid_arg "Container.of_runs: run length must be >= 1";
    if s < 0 || s + len > universe then invalid_arg "Container.of_runs: run outside the universe";
    (* maximal runs: the next run must leave a gap of at least one id *)
    if r > 0 && s <= pairs.(2 * (r - 1)) + pairs.((2 * (r - 1)) + 1) then
      invalid_arg "Container.of_runs: runs must be sorted, disjoint and maximal";
    card := !card + len
  done;
  { kind = Runs; card = !card; universe; ids = pairs; words = [||] }

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let kind t = t.kind
let cardinality t = t.card
let universe t = t.universe
let unsafe_words t = t.words

let runs_pairs t =
  match t.kind with
  | Runs -> Array.copy t.ids
  | Sparse | Dense -> invalid_arg "Container.runs_pairs: not a run container"

let mem t x =
  x >= 0 && x < t.universe
  &&
  match t.kind with
  | Sparse -> Sorted.mem_int t.ids x
  | Dense ->
      (* one magic division, the bit offset derived from it — membership
         is the per-id hot path of the Probe strategy *)
      let w = Wordops.div_bits x in
      t.words.(w) land (1 lsl (x - (Wordops.bits * w))) <> 0
  | Runs ->
      (* last run with start <= x, by binary search over the pair array *)
      let nr = Array.length t.ids lsr 1 in
      let lo = ref 0 and hi = ref nr in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if t.ids.(2 * mid) <= x then lo := mid + 1 else hi := mid
      done;
      !lo > 0 && x < t.ids.(2 * (!lo - 1)) + t.ids.((2 * (!lo - 1)) + 1)

let iter f t =
  match t.kind with
  | Sparse -> Array.iter f t.ids
  | Dense ->
      let base = ref 0 in
      for w = 0 to Array.length t.words - 1 do
        let m = ref t.words.(w) in
        while !m <> 0 do
          f (!base + Wordops.ntz !m);
          m := !m land (!m - 1)
        done;
        base := !base + Wordops.bits
      done
  | Runs ->
      for r = 0 to (Array.length t.ids lsr 1) - 1 do
        let s = t.ids.(2 * r) in
        for x = s to s + t.ids.((2 * r) + 1) - 1 do
          f x
        done
      done

let to_sorted_array t =
  let out = Array.make t.card 0 in
  let i = ref 0 in
  iter
    (fun x ->
      out.(!i) <- x;
      incr i)
    t;
  out

let append_into t out = iter (fun x -> Ibuf.push out x) t

(* recompute the cardinality from the physical layout (audit helper) *)
let recount t =
  match t.kind with
  | Sparse -> Array.length t.ids
  | Dense -> Array.fold_left (fun acc w -> acc + Wordops.popcount w) 0 t.words
  | Runs ->
      let acc = ref 0 in
      for r = 0 to (Array.length t.ids lsr 1) - 1 do
        acc := !acc + t.ids.((2 * r) + 1)
      done;
      !acc

(* number of maximal runs in the stored id set: O(1) for Runs, one pass
   otherwise (audit / classification helper) *)
let run_count t =
  match t.kind with
  | Runs -> Array.length t.ids lsr 1
  | Sparse -> count_runs t.ids
  | Dense ->
      let r = ref 0 and prev = ref (-2) in
      iter
        (fun x ->
          if x <> !prev + 1 then incr r;
          prev := x)
        t;
      !r

(* ------------------------------------------------------------------ *)
(* Intersection kernels                                                *)
(* ------------------------------------------------------------------ *)

(* [inter_span_into a ~lo ~hi b out] appends the intersection of the
   sorted strictly-increasing span a.[lo, hi) with container [b]. The
   span's ids must lie in [0, universe b) — chain steps feed back prior
   intersections of [b]'s siblings, which satisfy this by construction. *)
let inter_span_into a ~lo ~hi b out =
  match b.kind with
  | Sparse -> Sorted.gallop_intersect_into a ~alo:lo ~ahi:hi b.ids ~blo:0 ~bhi:b.card out
  | Dense ->
      (* membership probes batched per 63-bit word (see
         [probe_span_dense]). The entry checks here license the
         kernel's unchecked loads and its branch-free magic divide;
         the initial base of [-bits] forces the first id onto the
         crossing path, which derives a real cursor. Universes beyond
         the magic-exact range (never seen in practice) fall back to
         per-id [Wordops.div_bits] probes with checked loads. *)
      if hi > Array.length a then invalid_arg "inter_span_into: span bound exceeds array";
      if lo < hi then begin
        if a.(hi - 1) >= b.universe then
          invalid_arg "inter_span_into: span id exceeds the container universe";
        if b.universe <= Wordops.div_bits_magic_bound then begin
          (* average gap under one word: neighbouring ids share words,
             so the cursor kernel amortises its cached word; wider
             gaps: the four-wide independent-probe kernel *)
          if a.(hi - 1) - a.(lo) < (hi - lo) * Wordops.bits then
            probe_span_dense a ~hi b.words out lo (-Wordops.bits) 0
          else probe_span_dense_wide a ~lo ~hi b.words out
        end
        else begin
          let w = b.words in
          for i = lo to hi - 1 do
            let x = a.(i) in
            let wi = Wordops.div_bits x in
            if w.(wi) land (1 lsl (x - (Wordops.bits * wi))) <> 0 then Ibuf.push out x
          done
        end
      end
  | Runs ->
      let pairs = b.ids in
      let nr = Array.length pairs lsr 1 in
      let i = ref lo and r = ref 0 in
      while !i < hi && !r < nr do
        let s = pairs.(2 * !r) in
        let e = s + pairs.((2 * !r) + 1) in
        let x = a.(!i) in
        if x < s then i := Sorted.gallop_lower_bound a ~lo:!i ~hi s
        else if x >= e then incr r
        else begin
          Ibuf.push out x;
          incr i
        end
      done

let inter_dense_dense a b out =
  let wa = a.words and wb = b.words in
  let nw = min (Array.length wa) (Array.length wb) in
  let w = ref 0 in
  while !w + 8 <= nw do
    let i = !w in
    let m0 = Array.unsafe_get wa i land Array.unsafe_get wb i in
    let m1 = Array.unsafe_get wa (i + 1) land Array.unsafe_get wb (i + 1) in
    let m2 = Array.unsafe_get wa (i + 2) land Array.unsafe_get wb (i + 2) in
    let m3 = Array.unsafe_get wa (i + 3) land Array.unsafe_get wb (i + 3) in
    let m4 = Array.unsafe_get wa (i + 4) land Array.unsafe_get wb (i + 4) in
    let m5 = Array.unsafe_get wa (i + 5) land Array.unsafe_get wb (i + 5) in
    let m6 = Array.unsafe_get wa (i + 6) land Array.unsafe_get wb (i + 6) in
    let m7 = Array.unsafe_get wa (i + 7) land Array.unsafe_get wb (i + 7) in
    let base = i * Wordops.bits in
    if m0 <> 0 then push_word_bits out base m0;
    if m1 <> 0 then push_word_bits out (base + Wordops.bits) m1;
    if m2 <> 0 then push_word_bits out (base + (2 * Wordops.bits)) m2;
    if m3 <> 0 then push_word_bits out (base + (3 * Wordops.bits)) m3;
    if m4 <> 0 then push_word_bits out (base + (4 * Wordops.bits)) m4;
    if m5 <> 0 then push_word_bits out (base + (5 * Wordops.bits)) m5;
    if m6 <> 0 then push_word_bits out (base + (6 * Wordops.bits)) m6;
    if m7 <> 0 then push_word_bits out (base + (7 * Wordops.bits)) m7;
    w := i + 8
  done;
  while !w < nw do
    let m = wa.(!w) land wb.(!w) in
    if m <> 0 then push_word_bits out (!w * Wordops.bits) m;
    incr w
  done

(* AND-count over two dense banks without materializing the result —
   the same eight-wide stride as [inter_dense_dense] feeding popcounts *)
let inter_dense_card a b =
  let wa = a.words and wb = b.words in
  let nw = min (Array.length wa) (Array.length wb) in
  let acc = ref 0 in
  let w = ref 0 in
  while !w + 8 <= nw do
    let i = !w in
    let c0 = Wordops.popcount (Array.unsafe_get wa i land Array.unsafe_get wb i) in
    let c1 = Wordops.popcount (Array.unsafe_get wa (i + 1) land Array.unsafe_get wb (i + 1)) in
    let c2 = Wordops.popcount (Array.unsafe_get wa (i + 2) land Array.unsafe_get wb (i + 2)) in
    let c3 = Wordops.popcount (Array.unsafe_get wa (i + 3) land Array.unsafe_get wb (i + 3)) in
    let c4 = Wordops.popcount (Array.unsafe_get wa (i + 4) land Array.unsafe_get wb (i + 4)) in
    let c5 = Wordops.popcount (Array.unsafe_get wa (i + 5) land Array.unsafe_get wb (i + 5)) in
    let c6 = Wordops.popcount (Array.unsafe_get wa (i + 6) land Array.unsafe_get wb (i + 6)) in
    let c7 = Wordops.popcount (Array.unsafe_get wa (i + 7) land Array.unsafe_get wb (i + 7)) in
    acc := !acc + c0 + c1 + c2 + c3 + c4 + c5 + c6 + c7;
    w := i + 8
  done;
  while !w < nw do
    acc := !acc + Wordops.popcount (wa.(!w) land wb.(!w));
    incr w
  done;
  !acc

let inter_runs_dense runs dense out =
  let pairs = runs.ids and w = dense.words in
  let hi_cap = dense.universe in
  for r = 0 to (Array.length pairs lsr 1) - 1 do
    let s = pairs.(2 * r) in
    let e = min (s + pairs.((2 * r) + 1)) hi_cap in
    if s < e then begin
      (* walk the run with an incrementally maintained (word, offset)
         cursor: one division per run, not one per id *)
      let wi = ref (Wordops.div_bits s) and off = ref (Wordops.mod_bits s) in
      for x = s to e - 1 do
        if w.(!wi) land (1 lsl !off) <> 0 then Ibuf.push out x;
        incr off;
        if !off = Wordops.bits then begin
          off := 0;
          incr wi
        end
      done
    end
  done

let inter_runs_runs a b out =
  let pa = a.ids and pb = b.ids in
  let na = Array.length pa lsr 1 and nb = Array.length pb lsr 1 in
  (* disjoint-span bail, mirroring Sorted.gallop_intersect_into: when one
     side ends before the other begins, the merge walk degenerates to
     pure bookkeeping — answer empty in O(1) instead *)
  if
    na = 0 || nb = 0
    || pa.((2 * (na - 1)) + 1) + pa.(2 * (na - 1)) <= pb.(0)
    || pb.((2 * (nb - 1)) + 1) + pb.(2 * (nb - 1)) <= pa.(0)
  then ()
  else begin
    let i = ref 0 and j = ref 0 in
    while !i < na && !j < nb do
      let sa = pa.(2 * !i) in
      let ea = sa + pa.((2 * !i) + 1) in
      let sb = pb.(2 * !j) in
      let eb = sb + pb.((2 * !j) + 1) in
      let lo = max sa sb and hi = min ea eb in
      if lo < hi then
        for x = lo to hi - 1 do
          Ibuf.push out x
        done;
      if ea <= eb then incr i else incr j
    done
  end

let inter_into a b out =
  match (a.kind, b.kind) with
  | Sparse, _ -> inter_span_into a.ids ~lo:0 ~hi:a.card b out
  | _, Sparse -> inter_span_into b.ids ~lo:0 ~hi:b.card a out
  | Dense, Dense -> inter_dense_dense a b out
  | Runs, Dense -> inter_runs_dense a b out
  | Dense, Runs -> inter_runs_dense b a out
  | Runs, Runs -> inter_runs_runs a b out

(* exact |a ∩ b| without materializing: dense pairs run the word-count
   kernel; every other pair probes the rarer side's memberships *)
let inter_card a b =
  match (a.kind, b.kind) with
  | Dense, Dense -> inter_dense_card a b
  | _ ->
      let small, big = if a.card <= b.card then (a, b) else (b, a) in
      let acc = ref 0 in
      iter (fun x -> if mem big x then incr acc) small;
      !acc

(* ------------------------------------------------------------------ *)
(* Union (differential-test and maintenance surface, not a hot kernel)  *)
(* ------------------------------------------------------------------ *)

let union_into a b out =
  if a.kind = Dense && b.kind = Dense && a.universe = b.universe then begin
    let wa = a.words and wb = b.words in
    let base = ref 0 in
    for w = 0 to Array.length wa - 1 do
      let m = wa.(w) lor wb.(w) in
      if m <> 0 then push_word_bits out !base m;
      base := !base + Wordops.bits
    done
  end
  else begin
    let xs = to_sorted_array a and ys = to_sorted_array b in
    let nx = Array.length xs and ny = Array.length ys in
    let i = ref 0 and j = ref 0 in
    while !i < nx && !j < ny do
      let x = xs.(!i) and y = ys.(!j) in
      if x < y then begin
        Ibuf.push out x;
        incr i
      end
      else if y < x then begin
        Ibuf.push out y;
        incr j
      end
      else begin
        Ibuf.push out x;
        incr i;
        incr j
      end
    done;
    while !i < nx do
      Ibuf.push out xs.(!i);
      incr i
    done;
    while !j < ny do
      Ibuf.push out ys.(!j);
      incr j
    done
  end

(* ------------------------------------------------------------------ *)
(* Multi-way intersection                                              *)
(* ------------------------------------------------------------------ *)

let all_dense_same_universe cs =
  let ok = ref true in
  let u = cs.(0).universe in
  Array.iter (fun c -> if c.kind <> Dense || c.universe <> u then ok := false) cs;
  !ok

let chain cs ~out ~tmp =
  let k = Array.length cs in
  inter_into cs.(0) cs.(1) out;
  let i = ref 2 in
  while !i < k && Ibuf.length out > 0 do
    Ibuf.clear tmp;
    inter_span_into (Ibuf.unsafe_data out) ~lo:0 ~hi:(Ibuf.length out) cs.(!i) tmp;
    Ibuf.swap out tmp;
    incr i
  done

(* [intersect_query strategy cs ~out ~tmp] leaves the sorted intersection
   of all containers in [out] ([tmp] is scratch; both cleared first).
   [cs] should be ordered rarest-first for Chain/Probe; And_words is
   order-insensitive and silently degrades to Chain unless every
   container is Dense over one universe. *)
let intersect_query strategy cs ~out ~tmp =
  let k = Array.length cs in
  if k = 0 then invalid_arg "Container.intersect_query: need at least one container";
  Ibuf.clear out;
  Ibuf.clear tmp;
  if k = 1 then append_into cs.(0) out
  else
    match strategy with
    | Probe ->
        iter
          (fun x ->
            let ok = ref true in
            let i = ref 1 in
            while !ok && !i < k do
              if not (mem cs.(!i) x) then ok := false;
              incr i
            done;
            if !ok then Ibuf.push out x)
          cs.(0)
    | And_words when all_dense_same_universe cs ->
        if k = 2 then
          (* single-pass AND + extraction: no scratch blit needed *)
          inter_dense_dense cs.(0) cs.(1) out
        else begin
          let nw = Wordops.nwords cs.(0).universe in
          Ibuf.reserve tmp nw;
          let sw = Ibuf.unsafe_data tmp in
          Array.blit cs.(0).words 0 sw 0 nw;
          for c = 1 to k - 1 do
            let wc = cs.(c).words in
            let w = ref 0 in
            while !w + 8 <= nw do
              let i = !w in
              Array.unsafe_set sw i (Array.unsafe_get sw i land Array.unsafe_get wc i);
              Array.unsafe_set sw (i + 1)
                (Array.unsafe_get sw (i + 1) land Array.unsafe_get wc (i + 1));
              Array.unsafe_set sw (i + 2)
                (Array.unsafe_get sw (i + 2) land Array.unsafe_get wc (i + 2));
              Array.unsafe_set sw (i + 3)
                (Array.unsafe_get sw (i + 3) land Array.unsafe_get wc (i + 3));
              Array.unsafe_set sw (i + 4)
                (Array.unsafe_get sw (i + 4) land Array.unsafe_get wc (i + 4));
              Array.unsafe_set sw (i + 5)
                (Array.unsafe_get sw (i + 5) land Array.unsafe_get wc (i + 5));
              Array.unsafe_set sw (i + 6)
                (Array.unsafe_get sw (i + 6) land Array.unsafe_get wc (i + 6));
              Array.unsafe_set sw (i + 7)
                (Array.unsafe_get sw (i + 7) land Array.unsafe_get wc (i + 7));
              w := i + 8
            done;
            while !w < nw do
              sw.(!w) <- sw.(!w) land wc.(!w);
              incr w
            done
          done;
          let base = ref 0 in
          for w = 0 to nw - 1 do
            let m = sw.(w) in
            if m <> 0 then push_word_bits out !base m;
            base := !base + Wordops.bits
          done
        end
    | And_words | Chain -> chain cs ~out ~tmp

(* ------------------------------------------------------------------ *)
(* Serialization surface                                               *)
(* ------------------------------------------------------------------ *)

(* Dense payload as packed little-endian bytes: bit [i] of the set is bit
   [i land 7] of byte [i lsr 3] — the same convention as Bitset, so the
   snapshot layer stores bitmaps byte-exactly and width-tag-free. The
   byte layout is width-agnostic: byte [j] straddles two 63-bit words
   whenever its bit span [8j, 8j + 8) crosses a word boundary, so the
   v2 blob format survived the 32 -> 63 bit widening unchanged. *)
let dense_bytes t =
  if t.kind <> Dense then invalid_arg "Container.dense_bytes: not a dense container";
  let nb = (t.universe + 7) lsr 3 in
  let words = t.words in
  let nw = Array.length words in
  String.init nb (fun j ->
      let bit = j lsl 3 in
      let wi = Wordops.div_bits bit in
      let off = Wordops.mod_bits bit in
      let b = words.(wi) lsr off in
      let b =
        if off > Wordops.bits - 8 && wi + 1 < nw then
          b lor (words.(wi + 1) lsl (Wordops.bits - off))
        else b
      in
      Char.chr (b land 0xff))

let of_dense_bytes ~universe ~card s ~off =
  if universe < 0 then invalid_arg "Container.of_dense_bytes: negative universe";
  let nb = (universe + 7) lsr 3 in
  if off < 0 || off > String.length s - nb then
    invalid_arg "Container.of_dense_bytes: slice out of range";
  let nw = Wordops.nwords universe in
  let w = Array.make nw 0 in
  for j = 0 to nb - 1 do
    (* cold load path: the checked accessor costs nothing measurable *)
    let b = Char.code (String.get s (off + j)) in
    if b <> 0 then begin
      let bit = j lsl 3 in
      let wi = Wordops.div_bits bit in
      let o = Wordops.mod_bits bit in
      (* [lsl] silently drops the bits past position 62: exactly the
         spill this byte owes the next word *)
      w.(wi) <- w.(wi) lor (b lsl o);
      if o > Wordops.bits - 8 then begin
        let spill = b lsr (Wordops.bits - o) in
        if spill <> 0 then
          if wi + 1 < nw then w.(wi + 1) <- w.(wi + 1) lor spill
          else invalid_arg "Container.of_dense_bytes: bits set beyond the universe"
      end
    end
  done;
  let total = Array.fold_left (fun acc x -> acc + Wordops.popcount x) 0 w in
  if total <> card then invalid_arg "Container.of_dense_bytes: popcount disagrees with cardinality";
  (* bits at or beyond the universe must be clear *)
  (if nw > 0 then
     let rem = universe - ((nw - 1) * Wordops.bits) in
     if rem < Wordops.bits && w.(nw - 1) lsr rem <> 0 then
       invalid_arg "Container.of_dense_bytes: bits set beyond the universe");
  { kind = Dense; card; universe; ids = [||]; words = w }

(* Whole-container bitmap serialization (any kind), byte-compatible with
   both [dense_bytes] and the historical Bitset.to_bytes convention —
   the transform's emptiness arrays persist through this so their
   snapshot bytes did not move when they became containers. *)
let bitmap_bytes t =
  match t.kind with
  | Dense -> dense_bytes t
  | Sparse | Runs ->
      let nb = (t.universe + 7) lsr 3 in
      let buf = Bytes.make nb '\000' in
      iter
        (fun x ->
          let j = x lsr 3 in
          Bytes.set buf j (Char.chr (Char.code (Bytes.get buf j) lor (1 lsl (x land 7)))))
        t;
      Bytes.unsafe_to_string buf

let of_bitmap_string ?policy ~universe s ~off =
  if universe < 0 then invalid_arg "Container.of_bitmap_string: negative universe";
  let nb = (universe + 7) lsr 3 in
  if off < 0 || off > String.length s - nb then
    invalid_arg "Container.of_bitmap_string: slice out of range";
  let buf = Ibuf.create ~capacity:16 () in
  for j = 0 to nb - 1 do
    let b = Char.code (String.get s (off + j)) in
    let base = j lsl 3 in
    let m = ref b in
    while !m <> 0 do
      let x = base + Wordops.ntz !m in
      if x >= universe then
        invalid_arg "Container.of_bitmap_string: bits set beyond the universe";
      Ibuf.push buf x;
      m := !m land (!m - 1)
    done
  done;
  of_sorted_array ?policy ~universe (Ibuf.to_array buf)
