type violation = { structure : string; locus : string; detail : string }

let v ~structure ~locus detail = { structure; locus; detail }

let vf ~structure ~locus fmt =
  Printf.ksprintf (fun detail -> { structure; locus; detail }) fmt

let to_string { structure; locus; detail } =
  Printf.sprintf "%s: %s: %s" structure locus detail

let report vs = String.concat "\n" (List.map to_string vs)

exception Audit_failure of string

let enabled () =
  match Sys.getenv_opt "KWSC_AUDIT" with Some "1" -> true | Some _ | None -> false

let auto_check f =
  if enabled () then
    match f () with [] -> () | vs -> raise (Audit_failure (report vs))
