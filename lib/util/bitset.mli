(** Fixed-capacity bit set backed by [Bytes].

    Used by the transformation framework (Section 3.2 of the paper) to store,
    for every internal node [u] and child [v], the k-dimensional emptiness
    array over the large keywords of [u]: bit [i] answers "is the
    intersection of the active sets of the i-th combination empty?". *)

type t

val create : int -> t
(** [create n] is a bit set with [n] bits, all cleared.
    @raise Invalid_argument if [n < 0]. *)

val length : t -> int
(** Number of bits. *)

val set : t -> int -> unit
(** [set b i] sets bit [i]. @raise Invalid_argument on out-of-range. *)

val clear : t -> int -> unit
(** [clear b i] clears bit [i]. @raise Invalid_argument on out-of-range. *)

val get : t -> int -> bool
(** [get b i] is the value of bit [i]. @raise Invalid_argument on
    out-of-range. *)

val popcount : t -> int
(** Number of set bits. *)

val words : t -> int
(** Storage footprint in 64-bit words (for space accounting). *)

val to_bytes : t -> Bytes.t
(** The backing storage, copied — bit [i] is bit [i land 7] of byte
    [i lsr 3]. Together with {!length}, everything a serializer needs. *)

val of_bytes : int -> Bytes.t -> t
(** [of_bytes n bits] rebuilds an [n]-bit set from storage produced by
    {!to_bytes} (copied, not aliased).
    @raise Invalid_argument unless [Bytes.length bits = (n + 7) / 8]. *)

val of_sub_string : int -> string -> int -> t
(** [of_sub_string n s off] rebuilds an [n]-bit set from the
    [(n + 7) / 8] bytes of [s] starting at [off] — the single-copy path
    for deserializing many bit sets out of one pooled string.
    @raise Invalid_argument if the slice falls outside [s]. *)

val pool_create : count:int -> n:int -> Bytes.t
(** One zeroed backing store for [count] bit sets of [n] bits each,
    byte-aligned back to back. A builder that needs a set per child
    allocates the pool once and hands each child a {!pool_view}; the
    views' byte ranges are disjoint, so parallel tasks may fill sibling
    views concurrently. @raise Invalid_argument on negative inputs. *)

val pool_view : Bytes.t -> index:int -> n:int -> t
(** The [index]-th [n]-bit window of a pool — aliased, not copied:
    mutations through the view write the pool.
    @raise Invalid_argument if the window falls outside the pool. *)

val of_shared_bytes : Bytes.t -> off:int -> n:int -> t
(** An [n]-bit view of [bits] starting at byte [off] — aliased, not
    copied: the zero-copy path for deserializing many bit sets out of
    one pooled buffer. @raise Invalid_argument if the slice falls
    outside [bits]. *)
