[@@@kwsc.kernel]

type t = { mutable data : int array; mutable len : int }

let create ?(capacity = 16) () =
  if capacity < 1 then invalid_arg "Ibuf.create: capacity must be >= 1";
  { data = Array.make capacity 0; len = 0 }

let length t = t.len

let clear t = t.len <- 0

let grow t needed =
  let cap = ref (Array.length t.data) in
  while !cap < needed do
    cap := !cap * 2
  done;
  let data = Array.make !cap 0 in
  Array.blit t.data 0 data 0 t.len;
  t.data <- data
[@@kwsc.alloc_ok
  "amortized doubling: O(1) amortized per push, and callers that \
   Ibuf.reserve up front never reach it on the query path"]

let reserve t n = if n > Array.length t.data then grow t n

let push t x =
  if t.len = Array.length t.data then grow t (t.len + 1);
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let swap a b =
  let data = a.data and len = a.len in
  a.data <- b.data;
  a.len <- b.len;
  b.data <- data;
  b.len <- len

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Ibuf.get: index out of bounds";
  t.data.(i)

let unsafe_data t = t.data

let to_array t = Array.sub t.data 0 t.len

let sorted_array t =
  let a = to_array t in
  Array.sort Int.compare a;
  a

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done
