(** Wide word primitives shared by every bitmap layer ({!Container}'s
    dense kernels, {!Bitset}'s byte windows): native OCaml ints used as
    63-bit unsigned bit banks. One kernel-tagged module owns the SWAR
    tricks and the word-width constant, so the bitmap layers cannot
    drift apart. *)

val bits : int
(** Payload bits per word (63: a native int minus the tag bit; bit 62
    makes the int negative, which every operation here tolerates). *)

val nwords : int -> int
(** Words needed for a bank of that many bits. *)

val div_bits : int -> int
(** [div_bits x] is [x / bits] — magic-multiply division on the hot
    range, exact for every non-negative [x]. *)

val mod_bits : int -> int
(** [mod_bits x] is [x mod bits] for non-negative [x]. *)

val popcount : int -> int
(** SWAR popcount of a 63-bit word (all 63 payload bits counted). *)

val ntz : int -> int
(** Number of trailing zeros of a non-zero word. *)

val byte_popcount : int array
(** [byte_popcount.(b)] is the popcount of byte value [b] (256 entries,
    filled at module init). *)
