(** Wide word primitives shared by every bitmap layer ({!Container}'s
    dense kernels, {!Bitset}'s byte windows): native OCaml ints used as
    63-bit unsigned bit banks. One kernel-tagged module owns the SWAR
    tricks and the word-width constant, so the bitmap layers cannot
    drift apart. *)

val bits : int
(** Payload bits per word (63: a native int minus the tag bit; bit 62
    makes the int negative, which every operation here tolerates). *)

val nwords : int -> int
(** Words needed for a bank of that many bits. *)

val div_bits : int -> int
(** [div_bits x] is [x / bits] — magic-multiply division on the hot
    range, exact for every non-negative [x]. *)

val mod_bits : int -> int
(** [mod_bits x] is [x mod bits] for non-negative [x]. *)

val div_bits_magic : int -> int
(** The branch-free magic-multiply step of {!div_bits}: exact for
    [0 <= x <= div_bits_magic_bound], garbage beyond. For kernels that
    check the range once per span instead of once per element. *)

val div_bits_magic_bound : int
(** Largest [x] for which {!div_bits_magic} is exact (about 2e9). *)

val popcount : int -> int
(** SWAR popcount of a 63-bit word (all 63 payload bits counted). *)

val ntz : int -> int
(** Number of trailing zeros of a non-zero word. *)

val byte_popcount : int array
(** [byte_popcount.(b)] is the popcount of byte value [b] (256 entries,
    filled at module init). *)
