(* A bit set is a window of [n] bits starting at byte [boff] of a backing
   store. Standalone sets own their whole store (boff = 0); pooled sets
   share one store with byte-aligned disjoint windows, so a builder can
   allocate the emptiness arrays of all children of a node at once and
   parallel child tasks can fill them without false structural sharing
   issues (each task writes only its own byte range). *)
type t = { bits : Bytes.t; boff : int; n : int }

let bytes_for n = (n + 7) / 8

let create n =
  if n < 0 then invalid_arg "Bitset.create: negative size";
  { bits = Bytes.make (bytes_for n) '\000'; boff = 0; n }

let length t = t.n

let check t i = if i < 0 || i >= t.n then invalid_arg "Bitset: index out of range"

let set t i =
  check t i;
  let j = t.boff + (i lsr 3) in
  let byte = Char.code (Bytes.get t.bits j) in
  Bytes.set t.bits j (Char.chr (byte lor (1 lsl (i land 7))))

let clear t i =
  check t i;
  let j = t.boff + (i lsr 3) in
  let byte = Char.code (Bytes.get t.bits j) in
  Bytes.set t.bits j (Char.chr (byte land lnot (1 lsl (i land 7)) land 0xff))

let get t i =
  check t i;
  Char.code (Bytes.get t.bits (t.boff + (i lsr 3))) land (1 lsl (i land 7)) <> 0

(* per-byte popcounts come from the shared word-ops kernel module, so
   this layer and Container's bitmap kernels cannot drift apart *)
let popcount t =
  let c = ref 0 in
  for j = t.boff to t.boff + bytes_for t.n - 1 do
    c := !c + Wordops.byte_popcount.(Char.code (Bytes.get t.bits j))
  done;
  !c

let words t = (bytes_for t.n + 7) / 8

let to_bytes t = Bytes.sub t.bits t.boff (bytes_for t.n)

let of_bytes n bits =
  if n < 0 then invalid_arg "Bitset.of_bytes: negative size";
  if Bytes.length bits <> bytes_for n then
    invalid_arg "Bitset.of_bytes: storage does not match the bit count";
  { bits = Bytes.copy bits; boff = 0; n }

let of_sub_string n s off =
  if n < 0 then invalid_arg "Bitset.of_sub_string: negative size";
  let nb = bytes_for n in
  if off < 0 || off > String.length s - nb then
    invalid_arg "Bitset.of_sub_string: slice out of range";
  let bits = Bytes.create nb in
  Bytes.blit_string s off bits 0 nb;
  { bits; boff = 0; n }

let pool_create ~count ~n =
  if count < 0 then invalid_arg "Bitset.pool_create: negative count";
  if n < 0 then invalid_arg "Bitset.pool_create: negative size";
  Bytes.make (count * bytes_for n) '\000'

let pool_view pool ~index ~n =
  if n < 0 then invalid_arg "Bitset.pool_view: negative size";
  let nb = bytes_for n in
  let off = index * nb in
  if index < 0 || off + nb > Bytes.length pool then
    invalid_arg "Bitset.pool_view: slice out of range";
  { bits = pool; boff = off; n }

let of_shared_bytes bits ~off ~n =
  if n < 0 then invalid_arg "Bitset.of_shared_bytes: negative size";
  let nb = bytes_for n in
  if off < 0 || off > Bytes.length bits - nb then
    invalid_arg "Bitset.of_shared_bytes: slice out of range";
  { bits; boff = off; n }
