type t = { bits : Bytes.t; n : int }

let create n =
  if n < 0 then invalid_arg "Bitset.create: negative size";
  { bits = Bytes.make ((n + 7) / 8) '\000'; n }

let length t = t.n

let check t i = if i < 0 || i >= t.n then invalid_arg "Bitset: index out of range"

let set t i =
  check t i;
  let byte = Char.code (Bytes.get t.bits (i lsr 3)) in
  Bytes.set t.bits (i lsr 3) (Char.chr (byte lor (1 lsl (i land 7))))

let clear t i =
  check t i;
  let byte = Char.code (Bytes.get t.bits (i lsr 3)) in
  Bytes.set t.bits (i lsr 3) (Char.chr (byte land lnot (1 lsl (i land 7)) land 0xff))

let get t i =
  check t i;
  Char.code (Bytes.get t.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0

let popcount t =
  let c = ref 0 in
  for i = 0 to Bytes.length t.bits - 1 do
    let b = ref (Char.code (Bytes.get t.bits i)) in
    while !b <> 0 do
      c := !c + (!b land 1);
      b := !b lsr 1
    done
  done;
  !c

let words t = (Bytes.length t.bits + 7) / 8

let to_bytes t = Bytes.copy t.bits

let of_bytes n bits =
  if n < 0 then invalid_arg "Bitset.of_bytes: negative size";
  if Bytes.length bits <> (n + 7) / 8 then
    invalid_arg "Bitset.of_bytes: storage does not match the bit count";
  { bits = Bytes.copy bits; n }

let of_sub_string n s off =
  if n < 0 then invalid_arg "Bitset.of_sub_string: negative size";
  let nb = (n + 7) / 8 in
  if off < 0 || off > String.length s - nb then
    invalid_arg "Bitset.of_sub_string: slice out of range";
  let bits = Bytes.create nb in
  Bytes.blit_string s off bits 0 nb;
  { bits; n }
