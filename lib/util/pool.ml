(* Work-stealing domain pool (see pool.mli for the contract).

   Concurrency design, kept deliberately boring:
   - one deque per worker, each a mutex-protected LIFO list. Owners push
     and pop at the head (hot subtree first); thieves take from the tail
     (the oldest entry is the biggest remaining subproblem). Tasks are
     coarse — builders stop forking below a size cutoff — so the deques
     hold at most a few dozen closures and O(len) tail removal is noise.
   - [pending] counts queued-but-untaken tasks; workers park on a
     condition variable only when it reaches zero. Pushers increment
     before signalling and parkers re-check under the park mutex, so no
     wakeup is lost.
   - a joiner never blocks: [await] runs queued tasks (its own deque
     first, then steals) while its future is pending, so a task that
     forks and joins children from inside the pool makes progress even
     when every worker is busy — the standard help-first work-stealing
     argument for deadlock freedom.
   - futures are [Atomic]s, so completing a task publishes (release) all
     the memory it wrote and [await]'s read (acquire) of [Done] makes
     those writes visible to the joiner.

   This module is the only place in lib/ allowed to touch Domain /
   Atomic / Mutex / Condition — lint rule R8 confines the primitives
   here so every other module expresses parallelism through the
   scheduling-independent combinators below. *)

type task = unit -> unit

type deque = { lock : Mutex.t; mutable tasks : task list (* head = newest *) }

type t = {
  uid : int;
  size_ : int;
  deques : deque array;
  mutable domains : unit Domain.t array;
  pending : int Atomic.t;
  park : Mutex.t;
  wake : Condition.t;
  stop : bool Atomic.t;
}

let uid_counter = Atomic.make 0

(* (pool uid, worker index) of the current domain; (-1, 0) = not a pool
   worker, which maps every foreign submitter onto deque 0 (the caller's,
   shared safely under its mutex). *)
let dls_key : (int * int) Domain.DLS.key = Domain.DLS.new_key (fun () -> (-1, 0))

let my_id pool =
  let u, i = Domain.DLS.get dls_key in
  if u = pool.uid then i else 0

let size t = t.size_
let sequential t = t.size_ <= 1

let fork_depth t =
  let rec log2up acc n = if n <= 1 then acc else log2up (acc + 1) ((n + 1) / 2) in
  log2up 0 t.size_ + 2

let env_domains () =
  match Sys.getenv_opt "KWSC_DOMAINS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> min n 128
      | Some _ | None ->
          invalid_arg "Pool.env_domains: KWSC_DOMAINS must be a positive integer")
  | None -> max 1 (min 128 (Domain.recommended_domain_count ()))

let push pool id task =
  let dq = pool.deques.(id) in
  Mutex.lock dq.lock;
  dq.tasks <- task :: dq.tasks;
  Mutex.unlock dq.lock;
  Atomic.incr pool.pending;
  Mutex.lock pool.park;
  Condition.signal pool.wake;
  Mutex.unlock pool.park

let pop_newest dq =
  Mutex.lock dq.lock;
  let r =
    match dq.tasks with
    | [] -> None
    | t :: rest ->
        dq.tasks <- rest;
        Some t
  in
  Mutex.unlock dq.lock;
  r

let pop_oldest dq =
  Mutex.lock dq.lock;
  let r =
    match dq.tasks with
    | [] -> None
    | [ t ] ->
        dq.tasks <- [];
        Some t
    | l ->
        let rec split acc = function
          | [ t ] -> (List.rev acc, t)
          | x :: tl -> split (x :: acc) tl
          | [] -> assert false
        in
        let rest, t = split [] l in
        dq.tasks <- rest;
        Some t
  in
  Mutex.unlock dq.lock;
  r

(* Own deque LIFO first, then steal the oldest task round-robin. *)
let try_take pool me =
  let n = pool.size_ in
  let got = ref (pop_newest pool.deques.(me)) in
  let j = ref 1 in
  while Option.is_none !got && !j < n do
    got := pop_oldest pool.deques.((me + !j) mod n);
    incr j
  done;
  (match !got with Some _ -> Atomic.decr pool.pending | None -> ());
  !got

let rec worker_loop pool id =
  match try_take pool id with
  | Some t ->
      t ();
      worker_loop pool id
  | None ->
      if Atomic.get pool.stop then ()
      else begin
        Mutex.lock pool.park;
        if Atomic.get pool.pending = 0 && not (Atomic.get pool.stop) then
          Condition.wait pool.wake pool.park;
        Mutex.unlock pool.park;
        worker_loop pool id
      end

let create ?domains () =
  let n = match domains with Some n -> n | None -> env_domains () in
  let n = max 1 (min 128 n) in
  let pool =
    {
      uid = Atomic.fetch_and_add uid_counter 1;
      size_ = n;
      deques = Array.init n (fun _ -> { lock = Mutex.create (); tasks = [] });
      domains = [||];
      pending = Atomic.make 0;
      park = Mutex.create ();
      wake = Condition.create ();
      stop = Atomic.make false;
    }
  in
  if n > 1 then
    pool.domains <-
      Array.init (n - 1) (fun i ->
          Domain.spawn (fun () ->
              Domain.DLS.set dls_key (pool.uid, i + 1);
              worker_loop pool (i + 1)));
  pool

let shutdown pool =
  if not (Atomic.exchange pool.stop true) then begin
    Mutex.lock pool.park;
    Condition.broadcast pool.wake;
    Mutex.unlock pool.park;
    Array.iter Domain.join pool.domains;
    pool.domains <- [||]
  end

let default_pool : t option Atomic.t = Atomic.make None

let default () =
  match Atomic.get default_pool with
  | Some p -> p
  | None ->
      let p = create () in
      if Atomic.compare_and_set default_pool None (Some p) then begin
        at_exit (fun () -> shutdown p);
        p
      end
      else begin
        (* lost the publication race: retire ours, use the winner *)
        shutdown p;
        match Atomic.get default_pool with Some q -> q | None -> assert false
      end

(* ------------------------------------------------------------------ *)
(* Futures and combinators                                             *)
(* ------------------------------------------------------------------ *)

type 'a state = Pending | Done of 'a | Failed of exn * Printexc.raw_backtrace

type 'a future = 'a state Atomic.t

let run_to fut f =
  let r = try Done (f ()) with e -> Failed (e, Printexc.get_raw_backtrace ()) in
  Atomic.set fut r

let async pool f =
  if Atomic.get pool.stop then invalid_arg "Pool.async: pool is shut down";
  let fut = Atomic.make Pending in
  if pool.size_ <= 1 then run_to fut f
  else push pool (my_id pool) (fun () -> run_to fut f);
  fut

let rec await pool fut =
  match Atomic.get fut with
  | Done v -> v
  | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
  | Pending ->
      (match try_take pool (my_id pool) with
      | Some t -> t ()
      | None -> Domain.cpu_relax ());
      await pool fut

let fork_join pool f g =
  if pool.size_ <= 1 then begin
    let a = f () in
    let b = g () in
    (a, b)
  end
  else begin
    let fg = async pool g in
    match f () with
    | a -> (a, await pool fg)
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        (* drain the forked task so nothing outlives the call; the
           primary exception wins *)
        (match await pool fg with _ -> () | exception _secondary -> ());
        Printexc.raise_with_backtrace e bt
  end

let fork_join_array pool thunks =
  let n = Array.length thunks in
  if n = 0 then [||]
  else if pool.size_ <= 1 || n = 1 then Array.map (fun f -> f ()) thunks
  else begin
    let futs = Array.init (n - 1) (fun i -> async pool thunks.(i)) in
    match thunks.(n - 1) () with
    | last ->
        let out = Array.make n last in
        let err = ref None in
        Array.iteri
          (fun i fut ->
            match await pool fut with
            | v -> out.(i) <- v
            | exception e ->
                if Option.is_none !err then err := Some (e, Printexc.get_raw_backtrace ()))
          futs;
        (match !err with
        | None -> out
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt)
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        Array.iter
          (fun fut -> match await pool fut with _ -> () | exception _secondary -> ())
          futs;
        Printexc.raise_with_backtrace e bt
  end

let parallel_for pool ?(chunk = 1) ~lo ~hi body =
  if chunk < 1 then invalid_arg "Pool.parallel_for: chunk must be >= 1";
  let rec go lo hi =
    if hi - lo <= chunk then
      for i = lo to hi - 1 do
        body i
      done
    else begin
      let mid = lo + ((hi - lo) / 2) in
      let (), () = fork_join pool (fun () -> go lo mid) (fun () -> go mid hi) in
      ()
    end
  in
  if hi > lo then
    if pool.size_ <= 1 then
      for i = lo to hi - 1 do
        body i
      done
    else go lo hi

let parallel_map pool f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else if pool.size_ <= 1 then Array.map f arr
  else begin
    let out = Array.make n None in
    let chunk = max 1 (n / (pool.size_ * 8)) in
    parallel_for pool ~chunk ~lo:0 ~hi:n (fun i -> out.(i) <- Some (f arr.(i)));
    Array.map (function Some v -> v | None -> assert false) out
  end

(* ------------------------------------------------------------------ *)
(* Once-cells                                                          *)
(* ------------------------------------------------------------------ *)

(* A domain-safe write-once cell for the out-of-core paged readers: a
   deferred bucket or container decode lives behind one of these so a
   snapshot section is only decoded (and CRC-verified) on first touch.
   The [Atomic] lives here under rule R8 like the rest of the pool's
   primitives. Racing forcers may both run the thunk — paged decode
   thunks are deterministic pure functions of an immutable mapping, so
   both compute the same value and the first CAS wins; the loser's copy
   is garbage. The CAS gives release/acquire publication: any domain
   that observes [Done v] also observes every write made producing it. *)
module Once = struct
  type 'a state = Done of 'a | Thunk of (unit -> 'a)
  type 'a t = 'a state Atomic.t

  let ready v = Atomic.make (Done v)
  let make f = Atomic.make (Thunk f)

  let force c =
    match Atomic.get c with
    | Done v -> v
    | Thunk f as prev ->
        let v = f () in
        if Atomic.compare_and_set c prev (Done v) then v
        else (match Atomic.get c with Done v -> v | Thunk _ -> assert false)

  let is_forced c = match Atomic.get c with Done _ -> true | Thunk _ -> false
end
