[@@@kwsc.kernel]

(* Wide word primitives shared by every bitmap layer (Container's dense
   kernels, Bitset's byte windows). One module owns the SWAR tricks so
   the 63-bit widening happened in exactly one place.

   Words are native OCaml ints used as 63-bit unsigned bit banks: bits
   0..62 are payload (bit 62 makes the int negative — harmless, all
   operators below are sign-oblivious: [land]/[lor]/[lsr] and the
   borrow-free SWAR steps). 63 bits per word instead of a 64-bit box
   keeps the hot kernels allocation-free (Int64 is boxed) while still
   walking ~2x fewer words than the old 32-bit layout. *)

let bits = 63

(* words needed for a [universe]-bit bank *)
let nwords universe = (universe + bits - 1) / bits

(* Bit addressing: x / 63 and x mod 63 by magic multiplication —
   [div_bits x = (x * 2_181_570_691) lsr 37] is exact for
   0 <= x <= ~2.1e9 (2_181_570_691 = ceil(2^37 / 63); the error term
   2_181_570_691 * 63 - 2^37 = 61 keeps the truncation exact while
   x * 61 < 2^37, and the product x * magic stays below 2^62). Beyond
   that bound — universes larger than two billion bits, never seen in
   practice — one predictable branch falls back to hardware division,
   so the function is total and exact for every non-negative x. *)
let magic = 2_181_570_691
let exact_bound = 2_000_000_000

let div_bits x = if x <= exact_bound then (x * magic) lsr 37 else x / bits
let mod_bits x = x - (bits * div_bits x)

(* the branch-free magic step alone, for kernels that hoist the
   [exact_bound] range check out of their per-element loop (one check
   against the universe bound licenses the whole span) *)
let div_bits_magic x = (x * magic) lsr 37
let div_bits_magic_bound = exact_bound

(* SWAR popcount of a 63-bit word. The classic 64-bit constants do not
   fit an OCaml int literal; the adapted masks are exact for 63 payload
   bits: step 1 pairs bits (0,1)..(60,61) — [x lsr 1] never carries a
   bit into position 61 from the nonexistent bit 63, and bit 62 rides
   through as its own 1-bit count; step 2 folds the 3-bit tail 60..62
   via the shifted summand; steps 3-4 are the standard byte fold, with
   the total (at most 63) read from bits 56..62 of the wrapping
   multiply. *)
let popcount x =
  let x = x - ((x lsr 1) land 0x1555_5555_5555_5555) in
  let x = (x land 0x3333_3333_3333_3333) + ((x lsr 2) land 0x3333_3333_3333_3333) in
  let x = (x + (x lsr 4)) land 0x0f0f_0f0f_0f0f_0f0f in
  (x * 0x0101_0101_0101_0101) lsr 56 land 0x7f

(* trailing zeros of a non-zero word; isolating the lowest set bit and
   subtracting one leaves exactly [ntz] ones (the lone-bit-62 case wraps
   through min_int - 1 = max_int, whose popcount is the correct 62) *)
let ntz b = popcount ((b land -b) - 1)

(* per-byte popcounts, filled once at module init (Bitset's byte windows) *)
let byte_popcount =
  let tbl = Array.make 256 0 in
  for b = 1 to 255 do
    tbl.(b) <- tbl.(b lsr 1) + (b land 1)
  done;
  tbl
