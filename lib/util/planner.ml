(* Cost-based strategy selection for multi-container intersections.

   The planner only ever changes the physical kernel executing an
   intersection — never the answer and never the logical work counters —
   so every caller may consult it unconditionally and an [enabled :=
   false] escape hatch (CLI --planner=off, KWSC_PLANNER=off) restores the
   PR 3 chain behavior exactly.

   Cost model (unit = one id comparison / word op, cardinalities exact
   thanks to Container):
   - Chain: rarest-first pairwise; each step is the adaptive kernel's
     bound over the *effective scan lengths* of the two sides — ids for
     sparse arrays, run pairs for run containers, words for bitmaps —
     merge (e0 + e_i) when balanced, e0 * log2(e_i / e0) when skewed
     past the gallop cutoff. Pricing runs by their pair count (not
     their cardinality) is what lets a two-run disjoint intersection
     cost ~1 instead of looking as expensive as a full probe.
   - Probe: every id of the rarest container pays one membership test
     per other container: O(1) dense, O(log card) sparse, O(log runs)
     run containers.
   - And_words: (k - 1) passes over universe/63 words; eligible only
     when every container is dense.

   Selectivity feedback (KWSC_PLANNER_FEEDBACK, default on): the
   uncorrelated model keeps pricing every chain step against the rarest
   container's full scan length e0 — correct when sets are independent,
   pessimistic when the first pair already collapses the running result.
   When the caller has *observed* the rarest pair's true intersection
   cardinality (the LFU pair cache sees exactly the hot pairs), [choose
   ~observed] re-prices the chain's running accumulator as that observed
   sorted-array length from step two onward. Still a purely physical
   decision: feedback can flip Chain <-> Probe <-> And_words, never an
   answer or a logical counter, so [feedback_enabled := false] is
   bit-identical on every query.

   The same N^(1 - 1/k) threshold algebra as the transform's tau gates
   cache admission: only intersections at least as expensive as the
   tree-descent threshold are worth pinning in the LFU cache. *)

let enabled =
  ref
    (match Sys.getenv_opt "KWSC_PLANNER" with
    | Some ("off" | "0" | "false") -> false
    | _ -> true)

let feedback_enabled =
  ref
    (match Sys.getenv_opt "KWSC_PLANNER_FEEDBACK" with
    | Some ("off" | "0" | "false") -> false
    | _ -> true)

let tau ~n ~k =
  if n <= 0 then 0.0
  else float_of_int n ** (1.0 -. (1.0 /. float_of_int (max 2 k)))

(* smallest b >= 1 with 2^b >= n *)
let ceil_log2 n =
  let b = ref 1 in
  while 1 lsl !b < n do
    incr b
  done;
  !b

let probe_unit c =
  match Container.kind c with
  | Container.Dense -> 1
  | Container.Sparse -> ceil_log2 (Container.cardinality c + 1)
  | Container.Runs -> ceil_log2 (Container.run_count c + 1)

(* cost of one adaptive chain step intersecting sets of these sizes *)
let chain_step short long =
  if short * 8 < long then short * ceil_log2 ((long / max 1 short) + 1) else short + long

(* what the chain kernels physically walk: ids for sparse arrays, run
   pairs for run containers, 63-bit words for bitmaps *)
let chain_len c =
  match Container.kind c with
  | Container.Sparse -> Container.cardinality c
  | Container.Runs -> 2 * Container.run_count c
  | Container.Dense -> Wordops.nwords (Container.universe c)

let choose ?(observed = -1) cs =
  let k = Array.length cs in
  if (not !enabled) || k <= 1 then Container.Chain
  else begin
    let c0 = Container.cardinality cs.(0) in
    let e0 = chain_len cs.(0) in
    let all_dense = ref (Container.kind cs.(0) = Container.Dense) in
    let u0 = Container.universe cs.(0) in
    let cost_chain = ref 0 and probe_units = ref 0 in
    (* effective scan length of the chain's running accumulator: the
       rarest container before step one, a sorted array of the observed
       pair cardinality afterwards (when feedback has one to offer) *)
    let run = ref e0 in
    for i = 1 to k - 1 do
      let ei = chain_len cs.(i) in
      if Container.kind cs.(i) <> Container.Dense || Container.universe cs.(i) <> u0 then
        all_dense := false;
      cost_chain := !cost_chain + chain_step (min !run ei) (max !run ei);
      if i = 1 && !feedback_enabled && observed >= 0 then run := observed;
      probe_units := !probe_units + probe_unit cs.(i)
    done;
    let cost_probe = c0 * !probe_units in
    let cost_and = if !all_dense then (k - 1) * Wordops.nwords u0 else max_int in
    if cost_and <= !cost_chain && cost_and <= cost_probe then Container.And_words
    else if cost_probe < !cost_chain then Container.Probe
    else Container.Chain
  end

let worth_caching ~n ~k ~cost = !enabled && float_of_int cost >= tau ~n ~k
