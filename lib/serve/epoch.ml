[@@@kwsc.domain_safe]

open Kwsc_geom
module Wd = Kwsc_util.Wordops
module Stats = Kwsc.Stats

(* An epoch is a frozen read view of a Dynamic index: the bucket chain
   (once-cells of static Orp_kw indexes plus local->global id tables,
   both immutable once materialized), a private copy of the tombstone
   bitmap, and the logical watermark they were taken at.  Nothing here
   is ever mutated after [of_dynamic] returns (forcing a deferred cell
   is a write-once publication, safe from any domain), so one epoch can
   be queried from any number of domains concurrently — the serve
   writer publishes successive epochs through a single atomic (see
   Serve). *)

module Once = Kwsc_util.Pool.Once

type t = {
  version : int;
  d : int;
  k : int;
  live : int;
  buckets : (Kwsc.Orp_kw.t * int array) Once.t array; (* largest first *)
  sizes : int array; (* resident stored sizes, largest first *)
  dead : int array; (* packed 63-bit tombstone bitmap, private copy *)
}

let of_dynamic dyn =
  {
    version = Kwsc.Dynamic.version dyn;
    d = Kwsc.Dynamic.dim dyn;
    k = Kwsc.Dynamic.arity dyn;
    live = Kwsc.Dynamic.size dyn;
    buckets = Kwsc.Dynamic.view dyn;
    sizes = Array.of_list (Kwsc.Dynamic.buckets dyn);
    dead = Kwsc.Dynamic.tombstone_words dyn;
  }

let version e = e.version
let dim e = e.d
let arity e = e.k
let live_count e = e.live
let bucket_sizes e = Array.to_list e.sizes
let prefault e = Array.iter (fun cell -> ignore (Once.force cell)) e.buckets

let is_dead e id =
  let w = Wd.div_bits id in
  w < Array.length e.dead && e.dead.(w) land (1 lsl (id - (Wd.bits * w))) <> 0

let query_stats e q ws =
  if Rect.dim q <> e.d then invalid_arg "Epoch.query: dimension mismatch";
  let stats = Stats.fresh_query () in
  let hits = ref [] in
  Array.iter
    (fun cell ->
      let index, ids = Once.force cell in
      let res, s = Kwsc.Orp_kw.query_stats index q ws in
      Stats.add_into ~into:stats s;
      Array.iter
        (fun local ->
          let id = ids.(local) in
          if not (is_dead e id) then hits := id :: !hits)
        res)
    e.buckets;
  let out = Array.of_list !hits in
  Array.sort Int.compare out;
  (out, stats)

let query e q ws = fst (query_stats e q ws)

let query_batch ?pool e qs =
  (* materialize any still-deferred buckets on the submitting domain:
     the batch fans one epoch out to the pool, so decoding each bucket
     once here beats racing the (idempotent) force across workers *)
  prefault e;
  Kwsc.Batch.run ?pool (fun (q, ws) -> query_stats e q ws) qs
