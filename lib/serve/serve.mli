(** The [kwsc serve] core: a single-writer, multi-reader serving loop over
    {!Kwsc.Dynamic} with snapshot-consistent reads.

    Concurrency contract:
    - exactly one domain (the writer) may call {!insert}, {!delete},
      {!maintain}, {!checkpoint}, or {!publish};
    - any number of domains may call {!current} and query the returned
      {!Epoch.t} (or use the {!query}/{!query_batch} conveniences, which
      pin one epoch for the whole call).

    Every effective update publishes a fresh immutable epoch under the
    monotonic {!version} watermark through a single [Atomic.t] — the only
    cross-domain mutable in the serve layer (lint rule R13). Readers never
    observe a half-carried bucket chain: a query sees exactly the answers
    of a sequential replay stopped at its epoch's watermark. *)

open Kwsc_geom

type t

val create : ?leaf_weight:int -> k:int -> d:int -> unit -> t
(** An empty server for k-keyword queries over R^d. *)

val of_dynamic : Kwsc.Dynamic.t -> t
(** Wrap an existing index (takes ownership: the caller must stop mutating
    it directly) and publish its current state as the first epoch. *)

val insert : t -> Point.t * Kwsc_invindex.Doc.t -> int
(** Writer only. Apply and publish; returns the permanent id. *)

val delete : t -> int -> unit
(** Writer only. Tombstone and publish. Idempotent — re-deleting a dead id
    publishes nothing. *)

val current : t -> Epoch.t
(** The latest published epoch — one atomic load; safe from any domain. *)

val query : t -> Rect.t -> int array -> int array
val query_stats : t -> Rect.t -> int array -> int array * Kwsc.Stats.query

val query_batch :
  ?pool:Kwsc_util.Pool.t ->
  t ->
  (Rect.t * int array) array ->
  int array array * Kwsc.Stats.query
(** Pin the current epoch and evaluate against it (see {!Epoch}); a batch
    never straddles two watermarks. *)

val maintain : ?small_cap:int -> t -> bool
(** Writer only. Background maintenance: repeatedly fold the smallest
    carry-chain level (stored size at most [small_cap], default 64) into
    the frozen chain, dropping its tombstones, then publish once. Readers
    keep serving the previous epoch until the merged one is published —
    the work stays off the read path. Returns whether anything changed;
    answers and the watermark never do. *)

val publish : t -> Epoch.t
(** Writer only. Force-freeze the current state into a fresh epoch. Update
    operations publish automatically; exposed for tests. *)

val version : t -> int
(** The writer-side watermark ([Kwsc.Dynamic.version]); equals
    [Epoch.version (current t)] whenever no update is in flight. *)

val size : t -> int
val live : t -> int -> (Point.t * Kwsc_invindex.Doc.t) option
val bucket_sizes : t -> int list

val checkpoint : t -> string -> unit
(** Writer only. [Kwsc.Dynamic.save] of the current state: a durable,
    corruption-refusing restart point carrying the watermark. *)

val restore : ?ooc:bool -> string -> (t, Kwsc_snapshot.Codec.error) result
(** Rebuild a server from a checkpoint without rebuilding any static index
    and publish the restored state as its first epoch. Answers, counters,
    and the watermark round-trip exactly. [~ooc] (default the [KWSC_OOC]
    environment switch) selects [Kwsc.Dynamic.load ~ooc:true]: buckets
    page in lazily from the mapped checkpoint on first query, shrinking
    time-to-first-query; a corrupt bucket then surfaces as
    [Codec.Corrupt] at its first touch instead of a restore-time
    [Error] (see {!Kwsc.Dynamic.load}). *)
