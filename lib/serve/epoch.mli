(** A frozen read view of a {!Kwsc.Dynamic} index.

    The serve loop's consistency unit: the bucket chain and a private copy
    of the tombstone bitmap, taken atomically (by the single writer) at one
    logical watermark. An epoch is immutable — readers on any number of
    domains query it concurrently while the writer keeps updating the live
    index and publishing fresh epochs. A query against an epoch is
    bit-identical to [Dynamic.query] on a sequential replay stopped at the
    same watermark. *)

open Kwsc_geom

type t

val of_dynamic : Kwsc.Dynamic.t -> t
(** Snapshot the current state. Writer-side only: must not race with
    concurrent [insert]/[delete] on the same index (the Serve writer is the
    sole caller). O(buckets + assigned ids / 63). *)

val version : t -> int
(** The logical watermark this epoch was taken at. *)

val dim : t -> int
val arity : t -> int
val live_count : t -> int

val bucket_sizes : t -> int list
(** Stored sizes of the frozen chain, largest first. Resident metadata —
    forces no deferred bucket. *)

val prefault : t -> unit
(** Materialize every still-deferred bucket now (an epoch taken over a
    paged restore defers each bucket to its first touch). Idempotent.
    May raise [Codec.Corrupt] if a deferred bucket's bytes are bad. *)

val query : t -> Rect.t -> int array -> int array
(** Sorted ids of epoch-live objects inside the rectangle containing all
    keywords. Tombstones are filtered against the epoch's own bitmap, so a
    delete applied after this epoch was taken is invisible — readers never
    observe a half-carried chain. *)

val query_stats : t -> Rect.t -> int array -> int array * Kwsc.Stats.query
(** [query] plus the merged per-bucket work counters. *)

val query_batch :
  ?pool:Kwsc_util.Pool.t ->
  t ->
  (Rect.t * int array) array ->
  int array array * Kwsc.Stats.query
(** Evaluate a query stream against this one epoch, sharded across the
    domain pool — the {!Kwsc.Batch.run} equivalence contract: answers and
    merged counters are identical at every pool size. *)
