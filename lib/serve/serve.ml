[@@@kwsc.domain_safe]

(* The kwsc serve core: one writer, many readers, snapshot consistency.

   The writer owns the Dynamic index and is the only code that mutates it.
   After every effective update it freezes the state into an Epoch and
   publishes it through [epoch] — the single sanctioned cross-domain
   mutable outside the pool internals (lint rule R13 enforces this).
   Readers grab the current epoch with one [Atomic.get] and run entire
   queries (or whole batches) against that frozen view: they never observe
   a half-carried bucket chain, and a concurrent delete cannot retract an
   answer mid-query.  Background maintenance folds small carry-chain
   levels into the frozen layouts off the read path — readers keep
   serving the previous epoch until the merged one is published. *)

type t = { dyn : Kwsc.Dynamic.t; epoch : Epoch.t Atomic.t }

let publish t =
  let e = Epoch.of_dynamic t.dyn in
  Atomic.set t.epoch e;
  e

let of_dynamic dyn = { dyn; epoch = Atomic.make (Epoch.of_dynamic dyn) }
let create ?leaf_weight ~k ~d () = of_dynamic (Kwsc.Dynamic.create ?leaf_weight ~k ~d ())
let current t = Atomic.get t.epoch
let version t = Kwsc.Dynamic.version t.dyn
let size t = Kwsc.Dynamic.size t.dyn
let live t id = Kwsc.Dynamic.live t.dyn id
let bucket_sizes t = Kwsc.Dynamic.buckets t.dyn

let insert t obj =
  let id = Kwsc.Dynamic.insert t.dyn obj in
  ignore (publish t);
  id

let delete t id =
  let v = Kwsc.Dynamic.version t.dyn in
  Kwsc.Dynamic.delete t.dyn id;
  (* an idempotent re-delete changes nothing: don't publish a twin epoch *)
  if Kwsc.Dynamic.version t.dyn <> v then ignore (publish t)

let query t q ws = Epoch.query (current t) q ws
let query_stats t q ws = Epoch.query_stats (current t) q ws
let query_batch ?pool t qs = Epoch.query_batch ?pool (current t) qs

let default_small_cap = 64

let maintain ?(small_cap = default_small_cap) t =
  let changed = ref false in
  let continue_ = ref true in
  while !continue_ do
    let proceed =
      (* fold only small levels; compacting a large one is the half-dead
         rebuild trigger's job, not the maintenance loop's *)
      match List.rev (Kwsc.Dynamic.buckets t.dyn) with
      | s1 :: s2 :: _ -> s1 <= small_cap && s2 <= small_cap
      | [ s1 ] -> s1 <= small_cap
      | [] -> false
    in
    if proceed && Kwsc.Dynamic.merge_smallest t.dyn then changed := true
    else continue_ := false
  done;
  if !changed then ignore (publish t);
  !changed

let checkpoint t path = Kwsc.Dynamic.save path t.dyn
let restore ?ooc path = Result.map of_dynamic (Kwsc.Dynamic.load ?ooc path)
