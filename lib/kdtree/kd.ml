[@@@kwsc.domain_safe]

type 'a node =
  | Leaf of (Point.t * 'a) array
  | Node of { axis : int; split : float; left : 'a node; right : 'a node; count : int }

type 'a t = { root : 'a node; d : int; n : int; bounds : Rect.t }

(* Below this many points a subtree is built sequentially even when a
   parallel pool is available: the sort dominates and task overhead would
   swamp it. *)
let par_cutoff = 4096

let build ?(leaf_size = 8) ?pool pts =
  if leaf_size < 1 then invalid_arg "Kd.build: leaf_size must be >= 1";
  let n = Array.length pts in
  if n = 0 then invalid_arg "Kd.build: empty input";
  let d = Array.length (fst pts.(0)) in
  Array.iter
    (fun (p, _) -> if Array.length p <> d then invalid_arg "Kd.build: mixed dimensions")
    pts;
  let pool = match pool with Some p -> p | None -> Kwsc_util.Pool.default () in
  let fork_below = Kwsc_util.Pool.fork_depth pool in
  let pts = Array.copy pts in
  (* median split on [lo, hi) along [axis]; ties broken by full lexicographic
     compare so duplicates distribute evenly *)
  let cmp axis (p, _) (q, _) =
    let c = Float.compare (p : float array).(axis) (q : float array).(axis) in
    if c <> 0 then c else Point.compare_lex p q
  in
  (* The two recursive calls sort and rewrite disjoint slices of [pts], so
     forking them is safe; the split itself (sort + blit of [lo, hi)) runs
     before the fork. The tree produced is identical at every pool size. *)
  let rec go lo hi depth =
    let len = hi - lo in
    if len <= leaf_size then Leaf (Array.sub pts lo len)
    else begin
      let axis = depth mod d in
      let sub = Array.sub pts lo len in
      Array.sort (cmp axis) sub;
      Array.blit sub 0 pts lo len;
      let mid = lo + (len / 2) in
      let split = (fst pts.(mid)).(axis) in
      let left, right =
        if depth < fork_below && len >= par_cutoff then
          Kwsc_util.Pool.fork_join pool
            (fun () -> go lo mid (depth + 1))
            (fun () -> go mid hi (depth + 1))
        else (go lo mid (depth + 1), go mid hi (depth + 1))
      in
      Node { axis; split; left; right; count = len }
    end
  in
  let lo = Array.make d infinity and hi = Array.make d neg_infinity in
  Array.iter
    (fun (p, _) ->
      for i = 0 to d - 1 do
        lo.(i) <- Float.min lo.(i) p.(i);
        hi.(i) <- Float.max hi.(i) p.(i)
      done)
    pts;
  { root = go 0 n 0; d; n; bounds = Rect.make lo hi }

let size t = t.n
let dim t = t.d

let range_iter t q f =
  if Rect.dim q <> t.d then invalid_arg "Kd.range_iter: dimension mismatch";
  (* [cell] is maintained implicitly: recurse only into halves the query
     touches; containment is re-checked per point at the leaves *)
  let rec go node (cell : Rect.t) =
    match node with
    | Leaf pts -> Array.iter (fun (p, v) -> if Rect.contains_point q p then f p v) pts
    | Node { axis; split; left; right; _ } ->
        if Rect.contains_rect q cell then
          (* report the whole subtree *)
          let rec dump = function
            | Leaf pts -> Array.iter (fun (p, v) -> f p v) pts
            | Node { left; right; _ } ->
                dump left;
                dump right
          in
          dump node
        else begin
          if q.Rect.lo.(axis) <= split then begin
            let hi = Array.copy cell.Rect.hi in
            hi.(axis) <- split;
            go left { cell with Rect.hi = hi }
          end;
          if q.Rect.hi.(axis) >= split then begin
            let lo = Array.copy cell.Rect.lo in
            lo.(axis) <- split;
            go right { cell with Rect.lo = lo }
          end
        end
  in
  go t.root (Rect.full t.d)

let range t q =
  let out = ref [] in
  range_iter t q (fun p v -> out := (p, v) :: !out);
  !out

let count t q =
  let c = ref 0 in
  if Rect.dim q <> t.d then invalid_arg "Kd.count: dimension mismatch";
  let rec go node (cell : Rect.t) =
    match node with
    | Leaf pts -> Array.iter (fun (p, _) -> if Rect.contains_point q p then incr c) pts
    | Node { axis; split; left; right; count = cnt } ->
        if Rect.contains_rect q cell then c := !c + cnt
        else begin
          if q.Rect.lo.(axis) <= split then begin
            let hi = Array.copy cell.Rect.hi in
            hi.(axis) <- split;
            go left { cell with Rect.hi = hi }
          end;
          if q.Rect.hi.(axis) >= split then begin
            let lo = Array.copy cell.Rect.lo in
            lo.(axis) <- split;
            go right { cell with Rect.lo = lo }
          end
        end
  in
  go t.root (Rect.full t.d);
  !c

let dist_point metric q p =
  match metric with `Linf -> Point.linf_dist q p | `L2 -> Point.l2_dist q p

(* Smallest distance from q to any point of the cell. *)
let dist_cell metric q (cell : Rect.t) =
  let d = Array.length q in
  match metric with
  | `Linf ->
      let m = ref 0.0 in
      for i = 0 to d - 1 do
        let gap =
          if q.(i) < cell.Rect.lo.(i) then cell.Rect.lo.(i) -. q.(i)
          else if q.(i) > cell.Rect.hi.(i) then q.(i) -. cell.Rect.hi.(i)
          else 0.0
        in
        m := Float.max !m gap
      done;
      !m
  | `L2 ->
      let s = ref 0.0 in
      for i = 0 to d - 1 do
        let gap =
          if q.(i) < cell.Rect.lo.(i) then cell.Rect.lo.(i) -. q.(i)
          else if q.(i) > cell.Rect.hi.(i) then q.(i) -. cell.Rect.hi.(i)
          else 0.0
        in
        s := !s +. (gap *. gap)
      done;
      sqrt !s

let nearest t ~metric q k =
  if Array.length q <> t.d then invalid_arg "Kd.nearest: dimension mismatch";
  if k <= 0 then invalid_arg "Kd.nearest: k must be positive";
  let best : (Point.t * 'a) Kwsc_util.Heap.t = Kwsc_util.Heap.create () in
  let worst () =
    if Kwsc_util.Heap.size best < k then infinity
    else match Kwsc_util.Heap.peek best with Some (d, _) -> d | None -> infinity
  in
  let offer p v =
    let d = dist_point metric q p in
    if d < worst () || Kwsc_util.Heap.size best < k then begin
      Kwsc_util.Heap.push best d (p, v);
      if Kwsc_util.Heap.size best > k then ignore (Kwsc_util.Heap.pop best)
    end
  in
  let rec go node (cell : Rect.t) =
    if dist_cell metric q cell <= worst () then
      match node with
      | Leaf pts -> Array.iter (fun (p, v) -> offer p v) pts
      | Node { axis; split; left; right; _ } ->
          let lhi = Array.copy cell.Rect.hi in
          lhi.(axis) <- split;
          let lcell = { cell with Rect.hi = lhi } in
          let rlo = Array.copy cell.Rect.lo in
          rlo.(axis) <- split;
          let rcell = { cell with Rect.lo = rlo } in
          if q.(axis) <= split then begin
            go left lcell;
            go right rcell
          end
          else begin
            go right rcell;
            go left lcell
          end
  in
  go t.root (Rect.full t.d);
  let out = ref [] in
  let rec drain () =
    match Kwsc_util.Heap.pop best with
    | Some (d, (p, v)) ->
        out := (d, p, v) :: !out;
        drain ()
    | None -> ()
  in
  drain ();
  !out

type visit_stats = { nodes : int; covered : int; crossing : int; leaves_scanned : int }

let range_stats t q =
  if Rect.dim q <> t.d then invalid_arg "Kd.range_stats: dimension mismatch";
  let nodes = ref 0 and covered = ref 0 and crossing = ref 0 and leaves = ref 0 in
  let rec go node (cell : Rect.t) =
    if Rect.intersects q cell then begin
      incr nodes;
      if Rect.contains_rect q cell then incr covered else incr crossing;
      match node with
      | Leaf _ -> incr leaves
      | Node { axis; split; left; right; _ } ->
          if Rect.contains_rect q cell then ()
          else begin
            let lhi = Array.copy cell.Rect.hi in
            lhi.(axis) <- split;
            go left { cell with Rect.hi = lhi };
            let rlo = Array.copy cell.Rect.lo in
            rlo.(axis) <- split;
            go right { cell with Rect.lo = rlo }
          end
    end
  in
  go t.root t.bounds;
  { nodes = !nodes; covered = !covered; crossing = !crossing; leaves_scanned = !leaves }

module I = Kwsc_util.Invariant

let check_invariants t =
  let bad = ref [] in
  let push x = bad := x :: !bad in
  let vf locus fmt = I.vf ~structure:"Kd" ~locus fmt in
  (* Walk the tree with the implicit cell of every subtree; returns the
     actual subtree size so stored counts are validated bottom-up. *)
  let rec go node locus lo hi =
    match node with
    | Leaf pts ->
        Array.iter
          (fun (p, _) ->
            if Array.length p <> t.d then
              push (vf locus "point of dimension %d in a %d-d tree" (Array.length p) t.d)
            else
              for i = 0 to t.d - 1 do
                if p.(i) < lo.(i) || p.(i) > hi.(i) then
                  push
                    (vf locus "point %s escapes its cell on axis %d" (Point.to_string p) i)
              done)
          pts;
        Array.length pts
    | Node { axis; split; left; right; count } ->
        if axis < 0 || axis >= t.d then push (vf locus "axis %d outside [0,%d)" axis t.d);
        let lhi = Array.copy hi and rlo = Array.copy lo in
        if axis >= 0 && axis < t.d then begin
          lhi.(axis) <- split;
          rlo.(axis) <- split
        end;
        let ls = go left (locus ^ ".L") lo lhi in
        let rs = go right (locus ^ ".R") rlo hi in
        if ls + rs <> count then
          push (vf locus "size bookkeeping: count=%d but |left|+|right|=%d" count (ls + rs));
        if abs (ls - rs) > 1 then
          push (vf locus "median balance: |left|=%d and |right|=%d differ by more than 1" ls rs);
        ls + rs
  in
  let total =
    go t.root "root" (Array.copy t.bounds.Rect.lo) (Array.copy t.bounds.Rect.hi)
  in
  if total <> t.n then push (vf "root" "stored size %d <> actual size %d" t.n total);
  List.rev !bad

(* ------------------------------------------------------------------ *)
(* Flat layout: compile the boxed tree into Kd_flat's preorder arrays  *)
(* ------------------------------------------------------------------ *)

let freeze t =
  let rec n_nodes = function
    | Leaf _ -> 1
    | Node { left; right; _ } -> 1 + n_nodes left + n_nodes right
  in
  let nn = n_nodes t.root in
  let n_axis = Array.make nn (-1) in
  let n_split = Array.make nn 0.0 in
  let n_right = Array.make nn (-1) in
  let n_start = Array.make nn 0 in
  let n_count = Array.make nn 0 in
  let coords = Array.make (t.n * t.d) 0.0 in
  (* every leaf is non-empty (the builder rejects empty input and median
     splits keep both halves populated), so a seed payload exists *)
  let rec first_payload = function
    | Leaf pts -> snd pts.(0)
    | Node { left; _ } -> first_payload left
  in
  let payload = Array.make t.n (first_payload t.root) in
  let ni = ref 0 and si = ref 0 in
  let rec go node =
    let i = !ni in
    incr ni;
    n_start.(i) <- !si;
    match node with
    | Leaf pts ->
        n_count.(i) <- Array.length pts;
        Array.iter
          (fun (p, v) ->
            let s = !si in
            Array.blit p 0 coords (s * t.d) t.d;
            payload.(s) <- v;
            incr si)
          pts
    | Node { axis; split; left; right; count } ->
        n_axis.(i) <- axis;
        n_split.(i) <- split;
        n_count.(i) <- count;
        go left;
        n_right.(i) <- !ni;
        go right
  in
  go t.root;
  Kd_flat.unsafe_make ~d:t.d ~n:t.n
    ~blo:(Array.copy t.bounds.Rect.lo)
    ~bhi:(Array.copy t.bounds.Rect.hi)
    ~axis:n_axis ~split:n_split ~right:n_right ~start:n_start ~count:n_count ~coords
    ~payload

(* Flat-layout auditors: offset monotonicity, arena coverage, and slot
   permutation equality with the boxed tree the layout was frozen from. *)
let check_flat t ft =
  let bad = ref [] in
  let push x = bad := x :: !bad in
  let vf locus fmt = I.vf ~structure:"Kd.flat" ~locus fmt in
  if Kd_flat.size ft <> t.n then
    push (vf "root" "flat size %d <> boxed size %d" (Kd_flat.size ft) t.n);
  if Kd_flat.dim ft <> t.d then
    push (vf "root" "flat dimension %d <> boxed dimension %d" (Kd_flat.dim ft) t.d);
  let nn = Kd_flat.num_nodes ft in
  (* Walk the packed preorder: each call consumes the subtree rooted at
     [i] whose arena slice must begin at [expect] and returns (next node
     index, end slot). Checks offset monotonicity and arena coverage. *)
  let rec walk i expect =
    if i < 0 || i >= nn then begin
      push (vf "layout" "node index %d outside [0,%d)" i nn);
      (nn, expect)
    end
    else begin
      if Kd_flat.node_start ft i <> expect then
        push
          (vf
             (Printf.sprintf "node[%d]" i)
             "start offset %d breaks arena monotonicity (expected %d)"
             (Kd_flat.node_start ft i) expect);
      let cnt = Kd_flat.node_count ft i in
      if cnt < 0 then push (vf (Printf.sprintf "node[%d]" i) "negative count %d" cnt);
      if Kd_flat.node_axis ft i < 0 then (i + 1, expect + cnt)
      else begin
        let next_l, end_l = walk (i + 1) expect in
        if Kd_flat.node_right ft i <> next_l then
          push
            (vf
               (Printf.sprintf "node[%d]" i)
               "right-child index %d is not the preorder successor %d of the left subtree"
               (Kd_flat.node_right ft i) next_l);
        let next_r, end_r = walk next_l end_l in
        if end_r - expect <> cnt then
          push
            (vf
               (Printf.sprintf "node[%d]" i)
               "count %d <> children coverage %d" cnt (end_r - expect));
        (next_r, end_r)
      end
    end
  in
  let last, covered = walk 0 0 in
  if last <> nn then push (vf "layout" "%d packed nodes but preorder walk consumed %d" nn last);
  if covered <> t.n then
    push (vf "layout" "arena coverage %d slots <> %d points" covered t.n);
  (* permutation equality: the arena must hold exactly the boxed leaves'
     points, in preorder leaf order, payload references included *)
  let s = ref 0 in
  let rec cmp node =
    match node with
    | Leaf pts ->
        Array.iter
          (fun (p, v) ->
            let slot = !s in
            incr s;
            if slot >= t.n then ()
            else begin
              for j = 0 to t.d - 1 do
                if not (Float.equal (Kd_flat.coord ft slot j) p.(j)) then
                  push
                    (vf
                       (Printf.sprintf "slot[%d]" slot)
                       "coordinate %d is %g in the arena but %g in the boxed tree" j
                       (Kd_flat.coord ft slot j) p.(j))
              done;
              if Kd_flat.payload ft slot != v then
                push (vf (Printf.sprintf "slot[%d]" slot) "payload differs from the boxed tree")
            end)
          pts
    | Node { left; right; _ } ->
        cmp left;
        cmp right
  in
  cmp t.root;
  if !s <> t.n then
    push (vf "layout" "boxed tree holds %d points but flat arena %d" !s t.n);
  List.rev !bad

(* Self-audit every build/freeze when KWSC_AUDIT=1 (Invariant.enabled). *)
let build ?leaf_size ?pool pts =
  let t = build ?leaf_size ?pool pts in
  I.auto_check (fun () -> check_invariants t);
  t

let freeze t =
  let ft = freeze t in
  I.auto_check (fun () -> check_flat t ft);
  ft
