(** The classical kd-tree (Section 3.1): a binary space-partitioning tree on
    points in R^d with median splits cycling through the dimensions. This is
    both the Step-1 structure the framework transforms and the
    "structured only" naive baseline for rectangle queries. *)

type 'a t

val build : ?leaf_size:int -> ?pool:Kwsc_util.Pool.t -> (Point.t * 'a) array -> 'a t
(** [build pts] with payloads. [leaf_size] (default 8) caps leaf buckets.
    Large subtrees near the root are built as parallel [pool] tasks
    (default {!Kwsc_util.Pool.default}); the resulting tree is identical
    at every pool size — only wall-clock time changes.
    @raise Invalid_argument on empty input or mixed dimensions. *)

val size : 'a t -> int
(** Number of stored points. *)

val dim : 'a t -> int

val range : 'a t -> Rect.t -> (Point.t * 'a) list
(** All points inside the closed rectangle. *)

val range_iter : 'a t -> Rect.t -> (Point.t -> 'a -> unit) -> unit
(** Callback form of [range]. *)

val count : 'a t -> Rect.t -> int
(** Number of points inside the rectangle. *)

val nearest : 'a t -> metric:[ `Linf | `L2 ] -> Point.t -> int -> (float * Point.t * 'a) list
(** [nearest t ~metric q k] is the [min k size] nearest points to [q],
    sorted by increasing distance (branch-and-bound with a bounded
    max-heap). *)

type visit_stats = { nodes : int; covered : int; crossing : int; leaves_scanned : int }

val range_stats : 'a t -> Rect.t -> visit_stats
(** Structural accounting of one range query: how many node cells the
    rectangle covered vs crossed — the covered/crossing dichotomy of
    Section 3.3 measured on the raw kd-tree. *)

val check_invariants : 'a t -> Kwsc_util.Invariant.violation list
(** Deep structural audit (median balance at every internal node, subtree
    cell containment of every point, size bookkeeping). Empty when the tree
    is well-formed. [build] runs this automatically when [KWSC_AUDIT=1]. *)

val freeze : 'a t -> 'a Kd_flat.t
(** Compile the boxed tree into the flat preorder layout of {!Kd_flat}:
    unboxed coordinate arena, implicit left children, contiguous subtree
    slices. Queries on the frozen form return exactly the same answers
    (slot-for-point) as the boxed kernels. Runs {!check_flat}
    automatically when [KWSC_AUDIT=1]. *)

val check_flat : 'a t -> 'a Kd_flat.t -> Kwsc_util.Invariant.violation list
(** Flat-layout auditors: start-offset monotonicity along the preorder,
    exact arena coverage (every slot owned by exactly one leaf), preorder
    child indexing, and slot permutation equality with the boxed tree
    ([coords] bit-equal, payload references shared). *)
