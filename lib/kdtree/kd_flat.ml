[@@@kwsc.kernel]

(* Flat, cache-conscious kd-tree: the boxed tree of kd.ml compiled into
   implicit preorder arrays (Kd.freeze). Internal node i's left child is
   i + 1; the right child index is stored. Every subtree's points occupy
   one contiguous slice of the coordinate arena, so a covered subtree is
   reported by a linear scan instead of a pointer chase.

   This module is a tagged query kernel (lint rule R9): no Hashtbl, no
   list construction — the hot loops allocate nothing beyond the caller's
   output and two d-sized cell scratch arrays per query.

   The arrays live behind a backing abstraction: a frozen tree holds its
   heap arena directly, while an out-of-core open holds a thunk that
   materializes the arrays from an mmap-backed snapshot on first use
   ([data] below is the single dispatch point; the kernels hit it once
   per call, never per node). *)

type 'a data = {
  d : int;
  n : int;
  blo : float array; (* dataset bounding box *)
  bhi : float array;
  (* per node, preorder; axis = -1 marks a leaf *)
  axis : int array;
  split : float array;
  right : int array; (* right-child node index (internal nodes only) *)
  start : int array; (* first point slot of the subtree *)
  count : int array; (* number of points in the subtree *)
  (* point arena: slot s occupies coords[s*d, (s+1)*d), payload.(s) *)
  coords : float array;
  payload : 'a array;
}

type 'a state = Arena of 'a data | Deferred of (unit -> 'a data)
type 'a t = { mutable st : 'a state }

(* the backing dispatch point: resident trees cost one load and a
   branch; a deferred tree materializes once and caches. The state write
   is a benign race — the thunk must be a deterministic pure function,
   so racing domains cache equal values. *)
let data t =
  match t.st with
  | Arena d -> d
  | Deferred f ->
      let d = f () in
      t.st <- Arena d;
      d
[@@kwsc.alloc_ok
  "deferred-miss path: materializes the frozen arrays once on first \
   touch; query kernels dispatch here once per call, never per node"]

let check ~d ~n ~blo ~bhi ~axis ~split ~right ~start ~count ~coords ~payload =
  let nn = Array.length axis in
  if
    Array.length split <> nn
    || Array.length right <> nn
    || Array.length start <> nn
    || Array.length count <> nn
    || Array.length coords <> n * d
    || Array.length payload <> n
    || Array.length blo <> d
    || Array.length bhi <> d
  then invalid_arg "Kd_flat.unsafe_make: inconsistent array lengths";
  { d; n; blo; bhi; axis; split; right; start; count; coords; payload }

let unsafe_make ~d ~n ~blo ~bhi ~axis ~split ~right ~start ~count ~coords ~payload =
  { st = Arena (check ~d ~n ~blo ~bhi ~axis ~split ~right ~start ~count ~coords ~payload) }

(* out-of-core constructor: [f] decodes the arrays from the mapped
   snapshot on first touch (same length validation as unsafe_make) *)
let defer f =
  {
    st =
      Deferred
        (fun () ->
          let d, n, blo, bhi, axis, split, right, start, count, coords, payload = f () in
          check ~d ~n ~blo ~bhi ~axis ~split ~right ~start ~count ~coords ~payload);
  }
[@@kwsc.alloc_ok "construction path: one deferred cell per paged open"]

let backing t = match t.st with Arena _ -> `Arena | Deferred _ -> `Deferred
let size t = (data t).n
let dim t = (data t).d
let num_nodes t = Array.length (data t).axis

let bounds t =
  let t = data t in
  Rect.make t.blo t.bhi

let node_axis t i = (data t).axis.(i)
let node_split t i = (data t).split.(i)
let node_right t i = (data t).right.(i)
let node_start t i = (data t).start.(i)
let node_count t i = (data t).count.(i)

let coord t s j =
  let t = data t in
  t.coords.((s * t.d) + j)

let payload t s = (data t).payload.(s)

let get_point t s =
  let t = data t in
  Array.init t.d (fun j -> t.coords.((s * t.d) + j))

let range_iter t (q : Rect.t) f =
  let t = data t in
  if Rect.dim q <> t.d then invalid_arg "Kd_flat.range_iter: dimension mismatch";
  let d = t.d in
  let qlo = q.Rect.lo and qhi = q.Rect.hi in
  (* the current cell, mutated in place down the recursion (one float
     saved and restored per descent — no per-node rectangle copies) *)
  let clo = Array.make d neg_infinity and chi = Array.make d infinity in
  let covered () =
    let ok = ref true in
    for j = 0 to d - 1 do
      if clo.(j) < qlo.(j) || chi.(j) > qhi.(j) then ok := false
    done;
    !ok
  in
  let slot_inside s =
    let base = s * d in
    let ok = ref true in
    for j = 0 to d - 1 do
      let x = t.coords.(base + j) in
      if x < qlo.(j) || x > qhi.(j) then ok := false
    done;
    !ok
  in
  let rec go i =
    let ax = t.axis.(i) in
    if ax < 0 then begin
      let s0 = t.start.(i) in
      for s = s0 to s0 + t.count.(i) - 1 do
        if slot_inside s then f s t.payload.(s)
      done
    end
    else if covered () then begin
      (* the whole subtree lies inside q: contiguous arena dump *)
      let s0 = t.start.(i) in
      for s = s0 to s0 + t.count.(i) - 1 do
        f s t.payload.(s)
      done
    end
    else begin
      let sp = t.split.(i) in
      if qlo.(ax) <= sp then begin
        let saved = chi.(ax) in
        chi.(ax) <- sp;
        go (i + 1);
        chi.(ax) <- saved
      end;
      if qhi.(ax) >= sp then begin
        let saved = clo.(ax) in
        clo.(ax) <- sp;
        go t.right.(i);
        clo.(ax) <- saved
      end
    end
  in
  go 0

let range_count t (q : Rect.t) =
  let t = data t in
  if Rect.dim q <> t.d then invalid_arg "Kd_flat.range_count: dimension mismatch";
  let d = t.d in
  let qlo = q.Rect.lo and qhi = q.Rect.hi in
  let clo = Array.make d neg_infinity and chi = Array.make d infinity in
  let covered () =
    let ok = ref true in
    for j = 0 to d - 1 do
      if clo.(j) < qlo.(j) || chi.(j) > qhi.(j) then ok := false
    done;
    !ok
  in
  let acc = ref 0 in
  let rec go i =
    let ax = t.axis.(i) in
    if ax < 0 then begin
      let s0 = t.start.(i) in
      for s = s0 to s0 + t.count.(i) - 1 do
        let base = s * d in
        let ok = ref true in
        for j = 0 to d - 1 do
          let x = t.coords.(base + j) in
          if x < qlo.(j) || x > qhi.(j) then ok := false
        done;
        if !ok then incr acc
      done
    end
    else if covered () then acc := !acc + t.count.(i)
    else begin
      let sp = t.split.(i) in
      if qlo.(ax) <= sp then begin
        let saved = chi.(ax) in
        chi.(ax) <- sp;
        go (i + 1);
        chi.(ax) <- saved
      end;
      if qhi.(ax) >= sp then begin
        let saved = clo.(ax) in
        clo.(ax) <- sp;
        go t.right.(i);
        clo.(ax) <- saved
      end
    end
  in
  go 0;
  !acc

let nearest t ~metric (q : Point.t) k =
  let t = data t in
  if Array.length q <> t.d then invalid_arg "Kd_flat.nearest: dimension mismatch";
  if k <= 0 then invalid_arg "Kd_flat.nearest: k must be positive";
  let d = t.d in
  let best : int Kwsc_util.Heap.t = Kwsc_util.Heap.create () in
  let worst () =
    if Kwsc_util.Heap.size best < k then infinity
    else match Kwsc_util.Heap.peek best with Some (dist, _) -> dist | None -> infinity
  in
  let dist_slot s =
    let base = s * d in
    match metric with
    | `Linf ->
        let m = ref 0.0 in
        for j = 0 to d - 1 do
          m := Float.max !m (abs_float (q.(j) -. t.coords.(base + j)))
        done;
        !m
    | `L2 ->
        let acc = ref 0.0 in
        for j = 0 to d - 1 do
          let dj = q.(j) -. t.coords.(base + j) in
          acc := !acc +. (dj *. dj)
        done;
        sqrt !acc
  in
  let clo = Array.make d neg_infinity and chi = Array.make d infinity in
  let dist_cell () =
    match metric with
    | `Linf ->
        let m = ref 0.0 in
        for j = 0 to d - 1 do
          let gap =
            if q.(j) < clo.(j) then clo.(j) -. q.(j)
            else if q.(j) > chi.(j) then q.(j) -. chi.(j)
            else 0.0
          in
          m := Float.max !m gap
        done;
        !m
    | `L2 ->
        let acc = ref 0.0 in
        for j = 0 to d - 1 do
          let gap =
            if q.(j) < clo.(j) then clo.(j) -. q.(j)
            else if q.(j) > chi.(j) then q.(j) -. chi.(j)
            else 0.0
          in
          acc := !acc +. (gap *. gap)
        done;
        sqrt !acc
  in
  let offer s =
    let dist = dist_slot s in
    if dist < worst () || Kwsc_util.Heap.size best < k then begin
      Kwsc_util.Heap.push best dist s;
      if Kwsc_util.Heap.size best > k then ignore (Kwsc_util.Heap.pop best)
    end
  in
  let rec go i =
    if dist_cell () <= worst () then begin
      let ax = t.axis.(i) in
      if ax < 0 then begin
        let s0 = t.start.(i) in
        for s = s0 to s0 + t.count.(i) - 1 do
          offer s
        done
      end
      else begin
        (* near child first, then far child; the descent bodies are
           inlined at both orders so the recursion allocates no thunks *)
        let sp = t.split.(i) in
        if q.(ax) <= sp then begin
          let saved = chi.(ax) in
          chi.(ax) <- sp;
          go (i + 1);
          chi.(ax) <- saved;
          let saved = clo.(ax) in
          clo.(ax) <- sp;
          go t.right.(i);
          clo.(ax) <- saved
        end
        else begin
          let saved = clo.(ax) in
          clo.(ax) <- sp;
          go t.right.(i);
          clo.(ax) <- saved;
          let saved = chi.(ax) in
          chi.(ax) <- sp;
          go (i + 1);
          chi.(ax) <- saved
        end
      end
    end
  in
  go 0;
  let m = Kwsc_util.Heap.size best in
  let out = Array.make m (0.0, -1) in
  for i = m - 1 downto 0 do
    match Kwsc_util.Heap.pop best with
    | Some (dist, s) -> out.(i) <- (dist, s)
    | None -> assert false
  done;
  out
