(** Flat, cache-conscious kd-tree layout and its allocation-free query
    kernels. Produced by {!Kd.freeze} from a built boxed tree: nodes are
    packed in preorder (left child of [i] is [i + 1], right child index
    stored), and every subtree's points occupy one contiguous slice of an
    unboxed coordinate arena, so covered subtrees are reported by a
    linear scan.

    This module is a tagged query kernel (lint rule R9): no [Hashtbl],
    no list construction. A query allocates two d-sized scratch arrays
    and nothing else; results are delivered through callbacks on point
    slots. Slot [s] is the s-th point in arena order — use {!payload} /
    {!get_point} / {!coord} to resolve it. *)

type 'a t

val unsafe_make :
  d:int ->
  n:int ->
  blo:float array ->
  bhi:float array ->
  axis:int array ->
  split:float array ->
  right:int array ->
  start:int array ->
  count:int array ->
  coords:float array ->
  payload:'a array ->
  'a t
(** Raw constructor used by {!Kd.freeze}. Checks only array-length
    consistency; structural soundness is the freezer's contract (audited
    by [Kd.check_flat] under [KWSC_AUDIT=1]). *)

val defer :
  (unit ->
  int
  * int
  * float array
  * float array
  * int array
  * float array
  * int array
  * int array
  * int array
  * float array
  * 'a array) ->
  'a t
(** Out-of-core constructor: the thunk materializes
    [(d, n, blo, bhi, axis, split, right, start, count, coords, payload)]
    — typically by decoding an mmap-backed snapshot section — on the
    first query that touches the tree, with {!unsafe_make}'s length
    validation applied then. The thunk must be a deterministic pure
    function (racing domains may both run it; the first to finish wins)
    and may raise, e.g. [Codec.Corrupt] from a lazy CRC check. *)

val backing : 'a t -> [ `Arena | `Deferred ]
(** Is the tree resident ([`Arena]) or still waiting on its first touch
    ([`Deferred])? Introspection for tests and tools; forces nothing. *)

val size : 'a t -> int
val dim : 'a t -> int

val num_nodes : 'a t -> int
(** Total packed nodes (internal + leaves), preorder indices [0..num_nodes). *)

val bounds : 'a t -> Rect.t
(** Bounding box of the stored points (fresh copy). *)

val node_axis : 'a t -> int -> int
(** Split axis of node [i]; [-1] marks a leaf. *)

val node_split : 'a t -> int -> float
val node_right : 'a t -> int -> int
val node_start : 'a t -> int -> int
(** First arena slot of the subtree rooted at node [i]. *)

val node_count : 'a t -> int -> int
(** Number of points in the subtree rooted at node [i]. *)

val coord : 'a t -> int -> int -> float
(** [coord t s j] is coordinate [j] of the point in slot [s] (no
    allocation). *)

val payload : 'a t -> int -> 'a

val get_point : 'a t -> int -> Point.t
(** Materializes slot [s] as a fresh point (allocates). *)

val range_iter : 'a t -> Rect.t -> (int -> 'a -> unit) -> unit
(** [range_iter t q f] calls [f slot payload] for every stored point
    inside the closed rectangle [q] — the allocation-free counterpart of
    [Kd.range_iter], reporting exactly the same points. Covered subtrees
    are emitted as contiguous arena scans. *)

val range_count : 'a t -> Rect.t -> int
(** Number of points inside [q]; equals [Kd.count] on the source tree. *)

val nearest : 'a t -> metric:[ `Linf | `L2 ] -> Point.t -> int -> (float * int) array
(** [nearest t ~metric q k] is the [min k size] nearest slots to [q],
    sorted by increasing distance — slot-for-point identical to
    [Kd.nearest] on the source tree (same traversal, same bounded
    max-heap, hence the same tie resolution). *)
