(* Mmap-backed snapshot pager: parse the fixed-width framing eagerly,
   checksum section payloads lazily on first touch. This is the one
   module allowed to use [Unix.map_file] and [Bigarray] (lint rule R14);
   everything above it consumes sections through the typed accessors. *)

module C = Codec

type map = (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

type section = { name : string; off : int; len : int; crc : int }

type t = {
  path : string;
  map : map;
  size : int;
  version : int;
  kind : string;
  sections : section array;
  (* one bit per section, set once its payload has passed its CRC; the
     update is a benign race (verification is idempotent and accessors
     re-verify rather than trust a clear bit) *)
  bits : int array;
}

let env_ooc () =
  match Sys.getenv_opt "KWSC_OOC" with
  | None | Some "" | Some "0" -> false
  | Some _ -> true

let path t = t.path
let version t = t.version
let kind t = t.kind
let file_size t = t.size
let sections t = Array.copy t.sections

(* ------------------------------------------------------------------ *)
(* Framing parse over the mapping                                      *)
(* ------------------------------------------------------------------ *)

(* A tiny bounds-checked cursor over the map, mirroring [Codec.R] for
   the handful of fixed-width framing fields. *)
let need map pos n =
  if n < 0 || pos + n > Bigarray.Array1.dim map then raise (C.Corrupt C.Truncated)

(* bounds-checked on purpose: framing parse is cold, clarity wins; the
   [map] annotation still pins the kind and layout so the access is a
   direct load, not the generic bigarray dispatch ([Ints.get] reads
   every slab element through this helper) *)
let get (map : map) j = Char.code (Bigarray.Array1.get map j)

let read_i64 map pos =
  need map pos 8;
  let v = ref 0 in
  for j = 7 downto 0 do
    v := (!v lsl 8) lor get map (pos + j)
  done;
  !v

let read_str map pos n =
  need map pos n;
  String.init n (fun j -> Bigarray.Array1.get map (pos + j))

let map_path path =
  let fd =
    try Unix.openfile path [ Unix.O_RDONLY ] 0
    with Unix.Unix_error (e, _, _) ->
      raise (C.Corrupt (C.Io (path ^ ": " ^ Unix.error_message e)))
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let size = (Unix.fstat fd).Unix.st_size in
      (* an empty file is unmappable and certainly not a snapshot *)
      if size <= 0 then raise (C.Corrupt C.Truncated);
      let g =
        try Unix.map_file fd Bigarray.char Bigarray.c_layout false [| size |]
        with Unix.Unix_error (e, _, _) ->
          raise (C.Corrupt (C.Io (path ^ ": " ^ Unix.error_message e)))
      in
      (Bigarray.array1_of_genarray g, size))

let open_exn path =
  let map, size = map_path path in
  let pos = ref 0 in
  let mlen = String.length C.magic in
  let m =
    try read_str map !pos mlen with C.Corrupt _ -> raise (C.Corrupt C.Bad_magic)
  in
  if not (String.equal m C.magic) then raise (C.Corrupt C.Bad_magic);
  pos := mlen;
  let version = read_i64 map !pos in
  pos := !pos + 8;
  if version < C.min_supported_version || version > C.format_version then
    raise (C.Corrupt (C.Bad_version version));
  let frame_str () =
    let n = read_i64 map !pos in
    pos := !pos + 8;
    if n < 0 || n > size - !pos then raise (C.Corrupt C.Truncated);
    let s = read_str map !pos n in
    pos := !pos + n;
    s
  in
  let kind = frame_str () in
  let nsections = read_i64 map !pos in
  pos := !pos + 8;
  if nsections < 0 || nsections > size - !pos then raise (C.Corrupt C.Truncated);
  let sections =
    Array.init nsections (fun _ ->
        let name = frame_str () in
        let len = read_i64 map !pos in
        pos := !pos + 8;
        if len < 0 || len > size - !pos - 4 then raise (C.Corrupt C.Truncated);
        let crc =
          need map !pos 4;
          get map !pos
          lor (get map (!pos + 1) lsl 8)
          lor (get map (!pos + 2) lsl 16)
          lor (get map (!pos + 3) lsl 24)
        in
        pos := !pos + 4;
        let off = !pos in
        pos := !pos + len;
        { name; off; len; crc })
  in
  if !pos <> size then
    C.corrupt (Printf.sprintf "%d trailing bytes after the last section" (size - !pos));
  {
    path;
    map;
    size;
    version;
    kind;
    sections;
    bits = Array.make ((nsections + 31) / 32) 0;
  }

let open_file path = C.run_light (fun () -> open_exn path)

let open_kind_exn path ~kind =
  let t = open_exn path in
  if not (String.equal t.kind kind) then
    raise (C.Corrupt (C.Bad_kind { expected = kind; got = t.kind }));
  t

let open_kind path ~kind = C.run_light (fun () -> open_kind_exn path ~kind)

(* ------------------------------------------------------------------ *)
(* Lazy CRC verification                                               *)
(* ------------------------------------------------------------------ *)

(* Same slicing-by-8 fold as [Codec.crc32], over the mapped bytes. This
   is the one hot loop of the pager — a section's first touch checksums
   its whole payload — so it reads through unsafe_get under the explicit
   bounds guard below (the directory already validated every section
   against the file size at open; the guard makes the function
   self-contained). *)
(* the [map] annotation matters: it fixes the element kind and layout,
   so unsafe_get compiles to a one-byte load instead of the generic
   bigarray dispatch (a C call per byte — ~20x slower end to end) *)
let crc32_map (map : map) ~off ~len =
  if off < 0 || len < 0 || off + len > Bigarray.Array1.dim map then
    invalid_arg "Pager.crc32_map: span outside the mapping";
  let get (map : map) j = Char.code (Bigarray.Array1.unsafe_get map j) in
  let tabs = C.crc32_tables () in
  let t0 = tabs.(0)
  and t1 = tabs.(1)
  and t2 = tabs.(2)
  and t3 = tabs.(3)
  and t4 = tabs.(4)
  and t5 = tabs.(5)
  and t6 = tabs.(6)
  and t7 = tabs.(7) in
  let c = ref 0xFFFFFFFF in
  let i = ref off in
  let stop = off + len in
  (* byte loads are in bounds by the guard above; table loads are in
     bounds because every index is masked to [0, 255] and each table
     holds 256 entries *)
  let tab (t : int array) j = Array.unsafe_get t (j land 0xFF) in
  while !i + 8 <= stop do
    let b j = get map (!i + j) in
    let c0 = !c in
    c :=
      tab t7 (c0 lxor b 0)
      lxor tab t6 ((c0 lsr 8) lxor b 1)
      lxor tab t5 ((c0 lsr 16) lxor b 2)
      lxor tab t4 ((c0 lsr 24) lxor b 3)
      lxor tab t3 (b 4)
      lxor tab t2 (b 5)
      lxor tab t1 (b 6)
      lxor tab t0 (b 7);
    i := !i + 8
  done;
  while !i < stop do
    c := tab t0 (!c lxor get map !i) lxor (!c lsr 8);
    incr i
  done;
  !c lxor 0xFFFFFFFF

let find_idx t name =
  let rec go i =
    if i >= Array.length t.sections then
      C.corrupt (Printf.sprintf "missing section %S" name)
    else if String.equal t.sections.(i).name name then i
    else go (i + 1)
  in
  go 0

let bit_set t i = t.bits.(i lsr 5) land (1 lsl (i land 31)) <> 0
let bit_mark t i = t.bits.(i lsr 5) <- t.bits.(i lsr 5) lor (1 lsl (i land 31))

let verify_idx t i =
  if not (bit_set t i) then begin
    let s = t.sections.(i) in
    if crc32_map t.map ~off:s.off ~len:s.len <> s.crc then
      raise (C.Corrupt (C.Checksum_mismatch s.name));
    bit_mark t i
  end

let verified t name = bit_set t (find_idx t name)
let verify t name = verify_idx t (find_idx t name)

let verify_all t =
  for i = 0 to Array.length t.sections - 1 do
    verify_idx t i
  done

(* ------------------------------------------------------------------ *)
(* Typed section accessors (verify-on-first-touch)                     *)
(* ------------------------------------------------------------------ *)

let section_length t name = (t.sections.(find_idx t name)).len

let verified_section t name =
  let i = find_idx t name in
  verify_idx t i;
  t.sections.(i)

let section_string t name =
  let s = verified_section t name in
  read_str t.map s.off s.len

let decode t name f =
  let r = C.R.of_string (section_string t name) in
  let v = f r in
  if not (C.R.at_end r) then
    C.corrupt (Printf.sprintf "trailing bytes in section %S" name);
  v

let blob t name ~pos ~len =
  let s = verified_section t name in
  if pos < 0 || len < 0 || pos + len > s.len then
    C.corrupt (Printf.sprintf "slice [%d, %d) outside section %S" pos (pos + len) name);
  read_str t.map (s.off + pos) len

(* ------------------------------------------------------------------ *)
(* Packed int-array slabs                                              *)
(* ------------------------------------------------------------------ *)

module Ints = struct
  type slab = { map : map; name : string; base : int; n : int; w : int }

  let length s = s.n

  (* element [j] sits at a fixed offset because the whole array shares
     one tagged width; sign-extension mirrors [Codec.R.int_array] *)
  let get s j =
    if j < 0 || j >= s.n then
      C.corrupt (Printf.sprintf "index %d outside int slab %S" j s.name);
    let p = s.base + (j * s.w) in
    let m = s.map in
    match s.w with
    | 1 -> (get m p lxor 0x80) - 0x80
    | 2 ->
        let v = get m p lor (get m (p + 1) lsl 8) in
        (v lxor 0x8000) - 0x8000
    | 3 ->
        let v = get m p lor (get m (p + 1) lsl 8) lor (get m (p + 2) lsl 16) in
        (v lxor 0x800000) - 0x800000
    | 4 ->
        let v =
          get m p
          lor (get m (p + 1) lsl 8)
          lor (get m (p + 2) lsl 16)
          lor (get m (p + 3) lsl 24)
        in
        (v lxor 0x80000000) - 0x80000000
    | _ ->
        let v = ref 0 in
        for k = 7 downto 0 do
          v := (!v lsl 8) lor get m (p + k)
        done;
        !v
end

let ints t name =
  let s = verified_section t name in
  (* parse the [vint n; width byte] prefix in place *)
  let stop = s.off + s.len in
  let pos = ref s.off in
  let byte () =
    if !pos >= stop then raise (C.Corrupt C.Truncated);
    let b = get t.map !pos in
    incr pos;
    b
  in
  let u = ref 0 and shift = ref 0 and continue = ref true in
  while !continue do
    let b = byte () in
    u := !u lor ((b land 0x7F) lsl !shift);
    shift := !shift + 7;
    if b land 0x80 = 0 then continue := false
    else if !shift > 63 then C.corrupt "varint longer than 9 bytes"
  done;
  let n = (!u lsr 1) lxor - (!u land 1) in
  let w = byte () in
  (match w with
  | 1 | 2 | 3 | 4 | 8 -> ()
  | _ -> C.corrupt (Printf.sprintf "invalid int-array width %d" w));
  if n < 0 || n > (stop - !pos) / w then raise (C.Corrupt C.Truncated);
  if !pos + (n * w) <> stop then
    C.corrupt (Printf.sprintf "trailing bytes in section %S" name);
  { Ints.map = t.map; name; base = !pos; n; w }
