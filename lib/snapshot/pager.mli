(** Out-of-core snapshot reads: an mmap-backed pager over the codec's
    file framing.

    {!open_file} maps the whole snapshot with [Unix.map_file] and parses
    only the fixed-width framing eagerly — magic, version, kind and the
    section directory (names, payload offsets, lengths, stored CRCs).
    Section {e payloads} are neither copied nor checksummed at open:
    each section's CRC is verified lazily, on the first accessor call
    that touches it, and the result is recorded in a verified-bitmap so
    the payload is scanned at most once. A failing section raises
    [Codec.Corrupt (Checksum_mismatch name)] naming the section exactly
    as the eager loader does.

    The pager is the only module allowed to touch [Unix.map_file] and
    [Bigarray] (lint rule R14): index modules consume sections through
    the typed accessors below and stay mmap-agnostic.

    Concurrency: verification is idempotent and the bitmap update is a
    benign race — two domains touching an unverified section may both
    scan it, and both reach the same verdict. Accessors never hand out
    bytes from a section that has not passed its CRC. *)

type t

type section = {
  name : string;
  off : int;  (** absolute payload offset in the file *)
  len : int;  (** payload length in bytes *)
  crc : int;  (** stored CRC-32 of the payload *)
}

val env_ooc : unit -> bool
(** [KWSC_OOC] is set to a value other than [""] or ["0"] — the
    environment switch that makes CLI loads and [Serve.restore] prefer
    the paged path. *)

val open_file : string -> (t, Codec.error) result
(** Map [path] and parse its framing. Missing or unreadable files are
    [Error (Io _)] naming the path; short or garbled headers are the
    same typed errors the eager loader produces ([Bad_magic],
    [Bad_version], [Truncated], [Malformed]). No payload is read. *)

val open_kind : string -> kind:string -> (t, Codec.error) result
(** As {!open_file}, additionally checking the kind ([Bad_kind]). *)

val open_kind_exn : string -> kind:string -> t
(** As {!open_kind}. @raise Codec.Corrupt on any defect. *)

val path : t -> string
val version : t -> int
val kind : t -> string

val file_size : t -> int

val sections : t -> section array
(** The section directory, in file order. Framing only — listing it
    verifies nothing. *)

val verified : t -> string -> bool
(** Has the named section already passed its CRC? *)

val verify : t -> string -> unit
(** Force the named section's lazy CRC check now.
    @raise Codec.Corrupt with [Checksum_mismatch name] on mismatch,
    [Malformed] if the section does not exist. *)

val verify_all : t -> unit
(** Verify every section (a sequential scan of the mapping; no decode,
    no per-payload allocation). After this the pager behaves like an
    eagerly validated file. *)

val section_length : t -> string -> int
(** Payload length from the directory; verifies nothing.
    @raise Codec.Corrupt if the section does not exist. *)

val section_string : t -> string -> string
(** Copy the named section's payload out of the mapping, verifying it
    first (lazily, once). Intended for small sections that are decoded
    eagerly with {!Codec.R}. @raise Codec.Corrupt on CRC mismatch. *)

val decode : t -> string -> (Codec.R.t -> 'a) -> 'a
(** [decode t name f] runs [f] over the verified payload of [name];
    trailing bytes after [f] finishes are [Malformed] (same contract as
    {!Codec.decode_section}). *)

val blob : t -> string -> pos:int -> len:int -> string
(** [blob t name ~pos ~len] copies [len] raw payload bytes starting at
    payload-relative [pos], verifying the section first. Serves the
    dense-bitmap column, whose payload is a bare byte blob sliced at
    fixed per-rank offsets. @raise Codec.Corrupt on CRC mismatch or
    out-of-bounds slice. *)

(** Random access into a section whose payload is exactly one
    width-tagged int array ({!Codec.W.int_array}): element [j] of an
    array with a single element width [w] lives at a fixed offset, so a
    paged reader can decode one rank's slice without materializing the
    column. *)
module Ints : sig
  type slab

  val length : slab -> int
  (** Element count. *)

  val get : slab -> int -> int
  (** [get s j] is element [j], sign-extended from the tagged width.
      @raise Codec.Corrupt with [Malformed] when out of bounds. *)
end

val ints : t -> string -> Ints.slab
(** Parse the named section as a single int array (verifying the
    section first) and return a random-access handle over the mapped
    bytes. @raise Codec.Corrupt if the payload is not exactly one
    width-tagged int array. *)
