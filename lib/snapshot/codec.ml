type error =
  | Io of string
  | Bad_magic
  | Bad_version of int
  | Bad_kind of { expected : string; got : string }
  | Truncated
  | Checksum_mismatch of string
  | Malformed of string

exception Corrupt of error

let error_to_string = function
  | Io msg -> Printf.sprintf "io error: %s" msg
  | Bad_magic -> "not a snapshot file (bad magic)"
  | Bad_version v -> Printf.sprintf "unsupported snapshot format version %d" v
  | Bad_kind { expected; got } ->
      Printf.sprintf "snapshot holds a %S index, expected %S" got expected
  | Truncated -> "snapshot truncated"
  | Checksum_mismatch name -> Printf.sprintf "checksum mismatch in section %S" name
  | Malformed msg -> Printf.sprintf "malformed snapshot: %s" msg

let corrupt msg = raise (Corrupt (Malformed msg))

(* Catch the exception families a decoder can surface while rebuilding
   structures from hostile bytes. Deliberately NOT a catch-all: a decode
   bug manifesting as, say, Not_found should crash a test, not masquerade
   as a corrupt file. *)
let run_light f =
  match f () with
  | v -> Ok v
  | exception Corrupt e -> Error e
  | exception Invalid_argument msg -> Error (Malformed msg)
  | exception Failure msg -> Error (Malformed msg)
  | exception Sys_error msg -> Error (Io msg)
  | exception End_of_file -> Error Truncated

let run f =
  (* Bulk-load GC tuning: decoding a large index rebuilds an entire live
     structure in one burst, and the default 256k-word minor heap turns
     that into thousands of minor collections with piecemeal promotion.
     A 4M-word nursery for the duration of the load lets survivors
     promote in large batches; the previous settings are restored on
     every exit path. Resizing the nursery is itself a multi-ms
     operation, which is why paged opens go through [run_light]. *)
  let g = Gc.get () in
  Gc.set
    {
      g with
      Gc.minor_heap_size = max g.Gc.minor_heap_size (1 lsl 23);
      Gc.space_overhead = max g.Gc.space_overhead 2000;
    };
  Fun.protect ~finally:(fun () -> Gc.set g) (fun () -> run_light f)

let magic = "KWSCSNAP"

(* Version 2 added hybrid posting containers (kind-tagged sections in
   kwsc.inverted). Version 3 split the inverted index and the dynamic
   checkpoints into one section per column so an mmap-backed pager can
   verify and decode each column independently (out-of-core reads).
   Writers emit [format_version]; readers accept the whole
   [min_supported_version .. format_version] range and each index
   module dispatches its decoder on the version it actually got. *)
let format_version = 3
let min_supported_version = 1

(* ------------------------------------------------------------------ *)
(* CRC-32 (IEEE 802.3, reflected polynomial)                           *)
(* ------------------------------------------------------------------ *)

(* Slicing-by-8: tables.(k).(b) is the CRC of byte b followed by k zero
   bytes, so eight table lookups fold eight input bytes per iteration —
   about 3x the throughput of the classic byte-at-a-time loop, and the
   checksum pass is a fixed cost on every load of a multi-megabyte
   snapshot. Identical output to the byte-wise definition. *)
let crc_tables =
  lazy
    (let t0 =
       Array.init 256 (fun i ->
           let c = ref i in
           for _ = 0 to 7 do
             if !c land 1 = 1 then c := 0xEDB88320 lxor (!c lsr 1) else c := !c lsr 1
           done;
           !c)
     in
     let tabs = Array.make 8 t0 in
     for k = 1 to 7 do
       tabs.(k) <- Array.map (fun c -> t0.(c land 0xFF) lxor (c lsr 8)) tabs.(k - 1)
     done;
     tabs)

let crc32 s =
  let tabs = Lazy.force crc_tables in
  let t0 = tabs.(0)
  and t1 = tabs.(1)
  and t2 = tabs.(2)
  and t3 = tabs.(3)
  and t4 = tabs.(4)
  and t5 = tabs.(5)
  and t6 = tabs.(6)
  and t7 = tabs.(7) in
  let n = String.length s in
  let c = ref 0xFFFFFFFF in
  let i = ref 0 in
  (* unsafe_get is in bounds: the loop conditions keep !i + 7 < n *)
  while !i + 8 <= n do
    let b j = Char.code (String.unsafe_get s (!i + j)) in
    let c0 = !c in
    c :=
      t7.((c0 lxor b 0) land 0xFF)
      lxor t6.(((c0 lsr 8) lxor b 1) land 0xFF)
      lxor t5.(((c0 lsr 16) lxor b 2) land 0xFF)
      lxor t4.(((c0 lsr 24) lxor b 3) land 0xFF)
      lxor t3.(b 4)
      lxor t2.(b 5)
      lxor t1.(b 6)
      lxor t0.(b 7);
    i := !i + 8
  done;
  while !i < n do
    c := t0.((!c lxor Char.code (String.unsafe_get s !i)) land 0xFF) lxor (!c lsr 8);
    incr i
  done;
  !c lxor 0xFFFFFFFF

(* The pager checksums mapped [Bigarray] views without copying them into
   strings first, so it needs the slicing tables themselves; exposing the
   tables (rather than a Bigarray-typed crc here) keeps this module free
   of mmap machinery (lint rule R14 confines that to the pager). *)
let crc32_tables () = Lazy.force crc_tables

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

module W = struct
  type t = Buffer.t

  let create () = Buffer.create 4096
  let byte b v = Buffer.add_char b (Char.chr (v land 0xFF))
  let i64 b v = Buffer.add_int64_le b (Int64.of_int v)
  let f64 b v = Buffer.add_int64_le b (Int64.bits_of_float v)
  let bool b v = byte b (if v then 1 else 0)

  (* Zigzag LEB128: 1 byte for |v| < 64, 2 up to 8191, ... Small scalars
     (lengths, depths, keyword ids, counts) dominate a serialized tree of
     ~100k nodes, so this beats fixed 8-byte ints several-fold on both
     file size and load time. *)
  let vint b v =
    let u = ref ((v lsl 1) lxor (v asr 62)) in
    let continue = ref true in
    while !continue do
      let low = !u land 0x7F in
      u := !u lsr 7;
      if !u = 0 then begin
        Buffer.add_char b (Char.unsafe_chr low);
        continue := false
      end
      else Buffer.add_char b (Char.unsafe_chr (low lor 0x80))
    done

  let str b s =
    vint b (String.length s);
    Buffer.add_string b s

  (* Int arrays are width-tagged: the narrowest signed width of
     {1,2,3,4,8} bytes that holds every element, chosen per array. Object
     ids, keyword ids, ranks and counts are tiny next to the 8-byte
     fixed-width alternative, and snapshot load time is dominated by raw
     file size (checksum + parse are both O(bytes)). *)
  let int_array b a =
    vint b (Array.length a);
    let lo = ref 0 and hi = ref 0 in
    Array.iter
      (fun v ->
        if v < !lo then lo := v;
        if v > !hi then hi := v)
      a;
    let fits bits = !lo >= -(1 lsl (bits - 1)) && !hi < 1 lsl (bits - 1) in
    let w = if fits 8 then 1 else if fits 16 then 2 else if fits 24 then 3 else if fits 32 then 4 else 8 in
    byte b w;
    if w = 8 then Array.iter (fun v -> i64 b v) a
    else
      Array.iter
        (fun v ->
          for k = 0 to w - 1 do
            Buffer.add_char b (Char.unsafe_chr ((v asr (8 * k)) land 0xFF))
          done)
        a

  let float_array b a =
    vint b (Array.length a);
    Array.iter (fun v -> f64 b v) a

  let array b f a =
    vint b (Array.length a);
    Array.iter (fun v -> f b v) a

  (* Nested arrays travel columnar — a lengths array plus one flat
     concatenation — so the reader does two bulk decodes and n blits
     instead of n framed parses. For the ~10^5 short rows of a document
     table this is the difference between microseconds and milliseconds
     per load. *)
  let int_array2 b a =
    int_array b (Array.map Array.length a);
    let total = Array.fold_left (fun acc row -> acc + Array.length row) 0 a in
    let concat = Array.make total 0 in
    let off = ref 0 in
    Array.iter
      (fun row ->
        Array.blit row 0 concat !off (Array.length row);
        off := !off + Array.length row)
      a;
    int_array b concat

  let float_array2 b a =
    int_array b (Array.map Array.length a);
    let total = Array.fold_left (fun acc row -> acc + Array.length row) 0 a in
    let concat = Array.make total 0.0 in
    let off = ref 0 in
    Array.iter
      (fun row ->
        Array.blit row 0 concat !off (Array.length row);
        off := !off + Array.length row)
      a;
    float_array b concat

  let contents = Buffer.contents
end

let to_string f =
  let w = W.create () in
  f w;
  W.contents w

(* ------------------------------------------------------------------ *)
(* Reader                                                              *)
(* ------------------------------------------------------------------ *)

module R = struct
  type t = { data : string; mutable pos : int }

  let of_string data = { data; pos = 0 }
  let remaining r = String.length r.data - r.pos

  let need r n =
    if n < 0 || n > remaining r then raise (Corrupt Truncated)

  let byte r =
    need r 1;
    let v = Char.code r.data.[r.pos] in
    r.pos <- r.pos + 1;
    v

  let i64 r =
    need r 8;
    let v = Int64.to_int (String.get_int64_le r.data r.pos) in
    r.pos <- r.pos + 8;
    v

  let f64 r =
    need r 8;
    let v = Int64.float_of_bits (String.get_int64_le r.data r.pos) in
    r.pos <- r.pos + 8;
    v

  let bool r =
    match byte r with
    | 0 -> false
    | 1 -> true
    | v -> corrupt (Printf.sprintf "invalid boolean byte %d" v)

  let take r n =
    need r n;
    let s = String.sub r.data r.pos n in
    r.pos <- r.pos + n;
    s

  (* Mirrors the zigzag LEB128 writer; at most ceil(63/7) = 9 bytes. *)
  let vint r =
    let u = ref 0 and shift = ref 0 and continue = ref true in
    while !continue do
      let b = byte r in
      u := !u lor ((b land 0x7F) lsl !shift);
      shift := !shift + 7;
      if b land 0x80 = 0 then continue := false
      else if !shift > 63 then corrupt "varint longer than 9 bytes"
    done;
    (!u lsr 1) lxor - (!u land 1)

  let str r =
    let n = vint r in
    take r n

  (* Validate an advertised element count against the bytes actually left
     ([elt] bytes per element at minimum) BEFORE allocating, so a flipped
     length byte cannot trigger a monstrous Array.make. Reads a fixed
     int64 count — used only by the file framing, which keeps fixed-width
     fields (see the .mli layout diagram); payload-level arrays carry
     varint counts. *)
  let len r ~elt =
    let n = i64 r in
    if n < 0 || (elt > 0 && n > remaining r / elt) then raise (Corrupt Truncated);
    n

  (* Mirrors the width-tagged writer. The element count is validated
     against the remaining bytes at the declared width BEFORE allocating,
     and that one bounds check covers the whole packed block, so the
     per-element loops below may use unsafe byte loads. Explicit loops
     rather than Array.init: the evaluation order of an effectful init
     function is not something to lean on. *)
  let int_array r =
    let n = vint r in
    let w = byte r in
    (match w with
    | 1 | 2 | 3 | 4 | 8 -> ()
    | _ -> corrupt (Printf.sprintf "invalid int-array width %d" w));
    if n < 0 || n > remaining r / w then raise (Corrupt Truncated);
    let a = Array.make n 0 in
    let data = r.data in
    let base = r.pos in
    let get j = Char.code (String.unsafe_get data j) in
    (* sign-extend a w-byte two's-complement value *)
    (match w with
    | 1 ->
        for i = 0 to n - 1 do
          a.(i) <- (get (base + i) lxor 0x80) - 0x80
        done
    | 2 ->
        for i = 0 to n - 1 do
          let v = String.get_uint16_le data (base + (2 * i)) in
          a.(i) <- (v lxor 0x8000) - 0x8000
        done
    | 3 ->
        for i = 0 to n - 1 do
          let p = base + (3 * i) in
          let v = String.get_uint16_le data p lor (get (p + 2) lsl 16) in
          a.(i) <- (v lxor 0x800000) - 0x800000
        done
    | 4 ->
        for i = 0 to n - 1 do
          let p = base + (4 * i) in
          let v = String.get_uint16_le data p lor (String.get_uint16_le data (p + 2) lsl 16) in
          a.(i) <- (v lxor 0x80000000) - 0x80000000
        done
    | _ ->
        for i = 0 to n - 1 do
          a.(i) <- Int64.to_int (String.get_int64_le data (base + (8 * i)))
        done);
    r.pos <- base + (n * w);
    a

  let float_array r =
    let n = vint r in
    if n < 0 || n > remaining r / 8 then raise (Corrupt Truncated);
    if n = 0 then [||]
    else begin
      let a = Array.make n (f64 r) in
      for i = 1 to n - 1 do
        a.(i) <- f64 r
      done;
      a
    end

  let array r f =
    let n = vint r in
    (* every element consumes at least one byte *)
    if n < 0 || n > remaining r then raise (Corrupt Truncated);
    if n = 0 then [||]
    else begin
      let a = Array.make n (f r) in
      for i = 1 to n - 1 do
        a.(i) <- f r
      done;
      a
    end

  (* Mirror the columnar writers: rows are slices of one flat decode.
     Row lengths are validated against the concatenation cursor before
     any slice, and the concatenation must be consumed exactly. *)
  let rows_of lens concat =
    let n = Array.length lens in
    let total = Array.length concat in
    let out = Array.make n [||] in
    let off = ref 0 in
    for i = 0 to n - 1 do
      let l = lens.(i) in
      if l < 0 || l > total - !off then raise (Corrupt Truncated);
      out.(i) <- Array.sub concat !off l;
      off := !off + l
    done;
    if !off <> total then corrupt "nested array concatenation has trailing elements";
    out

  let int_array2 r =
    let lens = int_array r in
    rows_of lens (int_array r)

  let float_array2 r =
    let lens = int_array r in
    rows_of lens (float_array r)

  let at_end r = remaining r = 0
end

(* ------------------------------------------------------------------ *)
(* File framing                                                        *)
(* ------------------------------------------------------------------ *)

(* Framing strings keep a fixed 8-byte length prefix (unlike the varint
   payload primitives): the header stays trivially parseable byte-by-byte
   as documented in the .mli layout diagram. *)
let frame_str b s =
  W.i64 b (String.length s);
  Buffer.add_string b s

let read_frame_str r =
  let n = R.len r ~elt:1 in
  R.take r n

let save_file ?(version = format_version) ~path ~kind sections =
  if version < min_supported_version || version > format_version then
    invalid_arg "Codec.save_file: unsupported format version";
  let b = Buffer.create (1 lsl 16) in
  Buffer.add_string b magic;
  Buffer.add_int64_le b (Int64.of_int version);
  frame_str b kind;
  W.i64 b (List.length sections);
  List.iter
    (fun (name, payload) ->
      frame_str b name;
      W.i64 b (String.length payload);
      Buffer.add_int32_le b (Int32.of_int (crc32 payload));
      Buffer.add_string b payload)
    sections;
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> Buffer.output_buffer oc b)

let read_file path =
  let ic =
    try open_in_bin path with Sys_error msg -> raise (Corrupt (Io msg))
  in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let n = in_channel_length ic in
      try really_input_string ic n
      with End_of_file | Sys_error _ -> raise (Corrupt Truncated))

let load_versioned_exn ~path =
  let data = read_file path in
  let r = R.of_string data in
  let m = try R.take r (String.length magic) with Corrupt _ -> raise (Corrupt Bad_magic) in
  if not (String.equal m magic) then raise (Corrupt Bad_magic);
  let version = R.i64 r in
  if version < min_supported_version || version > format_version then
    raise (Corrupt (Bad_version version));
  let kind = read_frame_str r in
  let nsections = R.len r ~elt:1 in
  let sections = ref [] in
  for _ = 1 to nsections do
    let name = read_frame_str r in
    let plen = R.len r ~elt:1 in
    (* a dedicated need: plen counts raw bytes, and the 4-byte CRC sits
       between the length and the payload *)
    let stored_crc = Int32.to_int (String.get_int32_le (R.take r 4) 0) land 0xFFFFFFFF in
    let payload = R.take r plen in
    if crc32 payload <> stored_crc then raise (Corrupt (Checksum_mismatch name));
    sections := (name, payload) :: !sections
  done;
  if not (R.at_end r) then
    corrupt (Printf.sprintf "%d trailing bytes after the last section" (R.remaining r));
  (version, kind, List.rev !sections)

let load_file_exn ~path =
  let _, kind, sections = load_versioned_exn ~path in
  (kind, sections)

let load_file ~path = run (fun () -> load_file_exn ~path)
let peek_kind ~path = run (fun () -> fst (load_file_exn ~path))

let load_kind_exn ~path ~kind =
  let got, sections = load_file_exn ~path in
  if not (String.equal got kind) then raise (Corrupt (Bad_kind { expected = kind; got }));
  sections

let load_kind_versioned_exn ~path ~kind =
  let version, got, sections = load_versioned_exn ~path in
  if not (String.equal got kind) then raise (Corrupt (Bad_kind { expected = kind; got }));
  (version, sections)

let decode_section sections name f =
  match List.assoc_opt name sections with
  | None -> corrupt (Printf.sprintf "missing section %S" name)
  | Some payload ->
      let r = R.of_string payload in
      let v = f r in
      if not (R.at_end r) then
        corrupt (Printf.sprintf "trailing bytes in section %S" name);
      v
