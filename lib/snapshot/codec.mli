(** Durable index snapshots: a versioned, checksummed binary codec.

    Every frozen index serializes to a single file:

    {v
      offset  size  field
      0       8     magic "KWSCSNAP"
      8       8     format version (int64 LE; currently 1)
      16      8+K   kind string (int64 LE length, then K bytes)
      ..      8     section count (int64 LE)
      then, per section:
              8+N   section name (int64 LE length, then N bytes)
              8     payload length (int64 LE)
              4     CRC-32 of the payload (IEEE, int32 LE)
              L     payload bytes
    v}

    All integers are little-endian; floats travel as their IEEE-754 bit
    patterns ({!Int64.bits_of_float}), so round trips are exact — NaNs
    included. Inside section payloads, scalar counts and lengths are
    zigzag LEB128 varints ({!W.vint}), and int arrays are width-tagged:
    each array is prefixed by the narrowest signed byte width of
    [{1,2,3,4,8}] holding every element (object ids, keyword ids and
    ranks rarely need more than 3 bytes). Together these shrink
    snapshots several-fold — and load time is O(file size). The CRC covers each section payload; the header fields are
    validated structurally, so a truncated file, a flipped byte or a
    wrong-version header always surfaces as a typed {!error} — never a
    crash, never a silently garbled index.

    Version policy: the version is bumped on any layout change; loaders
    accept exactly the version they were compiled for (no silent
    downgrade reads). [Marshal] is deliberately not used anywhere (lint
    rule R10): its format is neither stable across compiler versions nor
    validatable against corruption. *)

type error =
  | Io of string  (** the file could not be read or written *)
  | Bad_magic  (** not a snapshot file *)
  | Bad_version of int  (** snapshot written by an incompatible format version *)
  | Bad_kind of { expected : string; got : string }
      (** a valid snapshot of a different index module *)
  | Truncated  (** the file ends before the advertised data *)
  | Checksum_mismatch of string  (** named section's payload fails its CRC *)
  | Malformed of string  (** structurally invalid content *)

exception Corrupt of error
(** Raised by decoders; {!run} (and every index module's [load]) catches
    it into a [result]. *)

val error_to_string : error -> string

val corrupt : string -> 'a
(** [corrupt msg] raises [Corrupt (Malformed msg)]. *)

val run : (unit -> 'a) -> ('a, error) result
(** Run a loader, catching [Corrupt] — plus the [Invalid_argument] /
    [Failure] / [Sys_error] / [End_of_file] a decoder may surface while
    rebuilding structures from hostile bytes — into [Error]. Applies the
    bulk-load GC tuning (a large temporary nursery) for the duration:
    right for an eager decode that rebuilds a whole index, wrong for a
    paged open — see {!run_light}. *)

val run_light : (unit -> 'a) -> ('a, error) result
(** Same exception mapping as {!run} without the GC tuning. Paged opens
    ({!Pager}, [load_paged]) use this: they decode a few small columns,
    and resizing the nursery would cost more than the decode itself
    (milliseconds against the microseconds time-to-first-query the
    out-of-core path exists for). *)

(** Little-endian binary writer over a growable buffer. *)
module W : sig
  type t

  val create : unit -> t
  val byte : t -> int -> unit
  val i64 : t -> int -> unit
  val f64 : t -> float -> unit

  val bool : t -> bool -> unit
  (** One byte, 0 or 1. *)

  val vint : t -> int -> unit
  (** Zigzag LEB128 varint: 1 byte for small magnitudes, at most 9. The
      encoding of choice for scalars inside payloads (lengths, depths,
      ids, counts); [i64] is for fields that must stay fixed-width. *)

  val str : t -> string -> unit
  (** Varint-length-prefixed bytes. *)

  val int_array : t -> int array -> unit
  val float_array : t -> float array -> unit
  val int_array2 : t -> int array array -> unit
  val float_array2 : t -> float array array -> unit

  val array : t -> (t -> 'a -> unit) -> 'a array -> unit
  (** Length-prefixed array with a per-element writer. *)

  val contents : t -> string
end

val to_string : (W.t -> unit) -> string
(** Run a writer against a fresh buffer and return the bytes. *)

(** Bounds-checked reader over an in-memory payload. Every accessor
    raises [Corrupt Truncated] rather than reading past the end, and
    array lengths are validated against the remaining bytes before any
    allocation (a flipped length byte cannot trigger a huge [Array.make]). *)
module R : sig
  type t

  val of_string : string -> t
  val byte : t -> int
  val i64 : t -> int
  val f64 : t -> float
  val bool : t -> bool
  val vint : t -> int
  val str : t -> string
  val take : t -> int -> string
  val int_array : t -> int array
  val float_array : t -> float array
  val int_array2 : t -> int array array
  val float_array2 : t -> float array array
  val array : t -> (t -> 'a) -> 'a array

  val at_end : t -> bool
  (** Has every byte been consumed? Section decoders must end exactly at
      the payload boundary ({!decode_section} enforces this). *)
end

val crc32 : string -> int
(** CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) as a
    non-negative int in [0, 2^32). *)

val crc32_tables : unit -> int array array
(** The slicing-by-8 CRC tables behind {!crc32}: [tables.(k).(b)] is the
    CRC of byte [b] followed by [k] zero bytes. Exposed so the pager can
    checksum mapped views byte-for-byte identically to {!crc32} without
    this module depending on [Bigarray] (lint rule R14 confines mmap
    machinery to [lib/snapshot/pager.ml]). *)

val magic : string

val format_version : int
(** The version new snapshots are written at (3 since the out-of-core
    section split; 2 introduced hybrid posting containers). *)

val min_supported_version : int
(** Oldest version readers still accept (1: flat-arena postings). *)

val save_file : ?version:int -> path:string -> kind:string -> (string * string) list -> unit
(** [save_file ~path ~kind sections] writes a snapshot file with the
    named payload sections at [version] (default {!format_version};
    older supported versions exist for back-compat tests — the caller
    must then emit that version's section layout). Raises [Sys_error]
    on IO failure, [Invalid_argument] on an unsupported version. *)

val load_file_exn : path:string -> string * (string * string) list
(** Read and validate a snapshot file: magic, version, framing and every
    section CRC. Returns the kind and the sections.
    @raise Corrupt on any defect. *)

val load_file : path:string -> (string * (string * string) list, error) result

val peek_kind : path:string -> (string, error) result
(** The kind string of a snapshot file (fully validated first) — lets a
    caller dispatch to the right index module's [load]. *)

val load_kind_versioned_exn : path:string -> kind:string -> int * (string * string) list
(** As {!load_kind_exn}, also returning the format version the file was
    written at (within the supported range) so a decoder can dispatch on
    the section layout it should expect.
    @raise Corrupt on any defect. *)

val load_kind_exn : path:string -> kind:string -> (string * string) list
(** As {!load_file_exn}, additionally checking the kind.
    @raise Corrupt with [Bad_kind] when the file is another module's. *)

val decode_section : (string * string) list -> string -> (R.t -> 'a) -> 'a
(** Decode one named section; missing sections and trailing bytes after
    the decoder finishes are [Malformed]. *)
