(** Documents: the non-empty sets of integer keywords attached to objects
    (Section 1.1). Stored as sorted, duplicate-free int arrays. *)

type t = private int array

val of_list : int list -> t
(** Sorts and deduplicates. @raise Invalid_argument on an empty document
    (the paper requires non-empty documents). *)

val of_array : int array -> t
(** As [of_list]. The input is not mutated. *)

val of_sorted_array : int array -> t
(** O(n) constructor for input that is already strictly sorted — the
    snapshot-decode fast path, where documents were serialized from
    well-formed [t]s and only need re-validation, not re-sorting. The
    array is adopted without copying; the caller must not mutate it.
    @raise Invalid_argument if empty, unsorted or containing duplicates. *)

val size : t -> int
(** Number of distinct keywords — the object's contribution to the input
    size N of equation (2). *)

val mem : t -> int -> bool
(** Keyword membership, O(log |doc|). *)

val mem_all : t -> int array -> bool
(** Does the document contain every keyword of the (arbitrary) array? *)

val to_array : t -> int array
(** The underlying sorted array (a copy). *)

val iter : (int -> unit) -> t -> unit
