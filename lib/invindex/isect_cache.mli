(** Bounded LFU cache of materialized two-keyword intersections.

    Hot keyword pairs pay the full intersection once and are then served
    by an array copy. Fixed-capacity flat table, linear scan,
    least-frequently-used eviction; admission is the caller's decision
    ({!Inverted.query} gates it on {!Kwsc_util.Planner.worth_caching}).
    A fresh cache is bit-identical however it is built, preserving the
    Marshal-digest determinism contract of the enclosing index; snapshots
    never store cache state. *)

type t

val default_capacity : int

val create : ?capacity:int -> unit -> t
(** Empty cache ([capacity] slots, default {!default_capacity}).
    @raise Invalid_argument if [capacity < 1]. *)

val capacity : t -> int

val find : t -> int -> int -> int array option
(** [find t w1 w2] is the cached intersection of the (unordered) keyword
    pair, bumping its use count on a hit. The returned array is a fresh
    copy owned by the caller — mutating it cannot corrupt the cache.
    Counts one hit or one miss. *)

val store : t -> int -> int -> int array -> unit
(** Admit a materialized intersection for the (unordered) pair, evicting
    the least-frequently-used entry when full. The array is copied on
    admission — the caller keeps ownership of its argument. *)

val hits : t -> int

val misses : t -> int

val evictions : t -> int

val observe : t -> int -> int -> int -> unit
(** [observe t w1 w2 card] records the observed intersection cardinality
    of the (unordered) keyword pair in the direct-mapped selectivity
    side table (planner feedback). Overwrites on slot collision; does
    not touch the hit/miss counters. *)

val observed : t -> int -> int -> int
(** Last recorded intersection cardinality of the (unordered) pair, or
    [-1] when the slot holds no (or another pair's) observation. *)

val reset : t -> unit
(** Drop all entries and observations, and zero the counters. *)
