type t = int array

let of_list l =
  let a = Kwsc_util.Sorted.sort_dedup l in
  if Array.length a = 0 then invalid_arg "Doc.of_list: documents must be non-empty";
  a

let of_array a = of_list (Array.to_list a)

let of_sorted_array a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Doc.of_sorted_array: documents must be non-empty";
  for i = 1 to n - 1 do
    if a.(i - 1) >= a.(i) then invalid_arg "Doc.of_sorted_array: not strictly sorted"
  done;
  a
let size = Array.length
let mem = Kwsc_util.Sorted.mem_int
let mem_all t ws = Array.for_all (fun w -> mem t w) ws
let to_array = Array.copy
let iter = Array.iter
