(** The inverted index (Section 1.2): for each keyword [w], the sorted list
    of ids of objects whose document contains [w]. This is simultaneously
    (i) the "keywords only" naive baseline of Section 1, and (ii) the
    standard encoding that makes pure keyword search identical to k-SI
    reporting. Postings are stored as hybrid containers
    ({!Kwsc_util.Container}: sorted array / packed bitmap / run pairs by
    density) and queried through the cost-based {!Kwsc_util.Planner}. *)

type t

val build : ?pool:Kwsc_util.Pool.t -> ?policy:Kwsc_util.Container.policy -> Doc.t array -> t
(** [build docs] indexes objects [0 .. Array.length docs - 1]. Posting
    lists are materialized and sorted as parallel [pool] tasks (default
    {!Kwsc_util.Pool.default}); the index is identical at every pool
    size. [policy] (default [Hybrid]) classifies each posting into its
    container kind; [Sparse_only] reproduces the flat-array layout for
    A/B benchmarks. *)

val input_size : t -> int
(** N = total document size, equation (2). *)

val vocabulary : t -> int array
(** Sorted distinct keywords across all documents. *)

val documents : t -> Doc.t array
(** The indexed documents, [documents t].(id) being object [id]'s
    document — a fresh array (the [Doc.t] values themselves are
    immutable and shared). This is the exact [build] input, so
    [build (documents t)] reproduces [t] byte for byte; the shard layer
    uses it to repartition an index under a new plan. *)

val postings : t -> Postings.t
(** The hybrid postings behind this index — the zero-allocation query
    surface ({!Postings.query_into}, {!Postings.iter_posting}) for hot
    loops that reuse buffers across queries. *)

val posting : t -> int -> int array
(** [posting t w] is the sorted id list of objects containing [w]
    (empty if [w] occurs nowhere). The returned array is a fresh copy on
    every call — callers may keep or mutate it freely without aliasing
    the index (use {!postings} + {!Postings.iter_posting} to read a
    posting without the copy). *)

val frequency : t -> int -> int
(** Posting cardinality (exact). *)

val query : t -> int array -> int array
(** [query t ws] is the id set of objects containing all keywords of [ws]
    — a k-SI reporting query over the postings. Containers are
    intersected rarest-first by exact cardinality; the planner picks the
    physical strategy (adaptive chain, probe, or word-parallel bitmap
    AND) and hot two-keyword pairs above the tau admission threshold are
    served from a bounded LFU cache. Answers are identical with the
    planner on or off. Sorted output.

    The cache makes this surface sequential: concurrent callers must use
    {!query_batch} (which bypasses the cache) instead of sharing [t]
    across domains through here.

    Keyword contract (shared with {!Postings.query_into}): [ws] may hold
    any number [>= 1] of keywords, duplicates included — the baseline
    is not arity-bound like the Table-1 wrappers. A keyword absent from
    every document short-circuits to an empty answer without scanning any
    posting. An empty [ws] raises [Invalid_argument]. *)

val distinct_pair : int array -> (int * int) option
(** [Some (a, b)] when the keyword set holds exactly two distinct
    keywords (duplicates allowed) — the only query shape the LFU pair
    cache can serve. Exposed so an external router (the shard layer)
    can reproduce this index's cache-admission decision exactly. *)

val query_cached : t -> use_cache:bool -> int array -> int array
(** [query t ws] with the cache-admission decision made by the caller
    instead of the local planner: when [use_cache] is true and [ws] is a
    distinct two-keyword pair, the LFU pair cache is consulted and fed
    unconditionally; otherwise the query goes straight to the postings
    kernels. Same answers either way. The shard router computes one
    global admission decision (from summed frequencies and total N) and
    replays it on every shard, which keeps each shard-local cache's key
    sequence — and therefore its hit/miss/eviction counters — identical
    to the unsharded index's. Same keyword contract as {!query}. *)

val cache_stats : t -> int * int * int
(** (hits, misses, evictions) of the materialized-intersection cache
    since build or {!reset_cache}. *)

val reset_cache : t -> unit
(** Drop the cached intersections and zero the counters. *)

val query_naive : t -> int array -> int array
(** Same result via full pairwise sorted-array intersection (the oracle used
    in tests). *)

val is_empty_query : t -> int array -> bool
(** k-SI emptiness (Section 1.2). *)

val query_batch : ?pool:Kwsc_util.Pool.t -> t -> int array array -> int array array
(** [query_batch t wss] answers every keyword set of [wss], sharding the
    stream across the [pool]; slot [i] is [query t wss.(i)]. Bypasses
    the pair cache, so shards never contend on shared state. *)

val check_invariants : t -> Kwsc_util.Invariant.violation list
(** Deep structural audit: every posting strictly sorted and
    duplicate-free with its stored cardinality matching the physical
    layout and its container kind matching the classification policy,
    postings and documents mutually consistent (soundness and
    completeness), vocabulary exact, and the N bookkeeping of
    equation (2) intact. Empty when well-formed. [build] runs this
    automatically when [KWSC_AUDIT=1]. *)

val kind : string
(** Snapshot kind tag, ["kwsc.inverted"]. *)

val encode : Kwsc_snapshot.Codec.W.t -> t -> unit
val decode : Kwsc_snapshot.Codec.R.t -> t
(** Raw version-2 codec, for embedding inside other snapshots (the
    per-shard sections of {!Kwsc_shard}). [decode] raises
    [Kwsc_snapshot.Codec.Corrupt] and re-runs {!check_invariants} when
    [KWSC_AUDIT=1], exactly like {!load}. *)

val save : ?sparse_chunk_elems:int -> string -> t -> unit
(** Write a durable snapshot at format v3: one section per column
    ("meta", "docs", "vocab", "sparsedir", "sparse.0".."sparse.k",
    "runcounts", "runs", "dense" — delta-encoded sparse ids, gap-encoded
    run pairs, packed dense bitmap bytes); see {!Kwsc_snapshot.Codec}
    for the framing. The sparse id column — the Zipf tail, usually the
    largest — is split into rank-aligned chunks of roughly
    [sparse_chunk_elems] ids (default 16384, must be positive; tests
    shrink it to force multi-chunk layouts), with "sparsedir" holding
    each chunk's starting element offset. The chunk is the pager's unit
    of lazy CRC verification, so a paged first touch of one tail word
    checksums one chunk, not the whole tail. The per-rank delta/gap
    accumulators reset at every rank boundary, so each rank's slice
    decodes independently — what {!load_paged} relies on; a rank's span
    never straddles a chunk boundary. Cache state is never stored.
    Raises [Sys_error] on IO failure. *)

val load : string -> (t, Kwsc_snapshot.Codec.error) result
(** Rebuild the index from a snapshot in O(file size) — containers are
    reconstructed directly, no re-sorting. Version-1 snapshots (flat
    arena postings) and version-2 single-blob snapshots still load.
    Corrupt or unreadable input returns a typed [Error] (missing files
    are [Io] naming the path), never raises; {!check_invariants} re-runs
    on the loaded index when [KWSC_AUDIT=1]. *)

val load_paged : string -> (t, Kwsc_snapshot.Codec.error) result
(** Out-of-core open: map the snapshot with {!Kwsc_snapshot.Pager} and
    decode only the vocabulary columns ("meta", "vocab", "runcounts" — a
    few bytes per rank) up front. Every posting container pages in on
    first touch by a query, its column section CRC-verified lazily by
    the pager; the documents section is deferred until {!documents} (or
    an audit) forces it. Time-to-first-query and resident set scale with
    what queries touch, not with the index.

    Error contract at open matches {!load} (typed [Error], [Io] with the
    path on unreadable files). After open, touching a corrupt section
    raises [Codec.Corrupt (Checksum_mismatch name)] from the touching
    call — the same refusal the eager path gives at load time, deferred
    to first touch. Pre-v3 snapshots hold a single blob with nothing to
    page and fall back to the eager decode.

    Single queries fault containers in on the calling domain;
    {!query_batch} prefaults before fanning out, so the pool contract is
    unchanged. Answers, logical counters and planner decisions are
    bit-identical to the eager index. *)

val resident_containers : t -> int
(** How many posting containers are currently decoded — equals the
    vocabulary size on any eager index, grows with query traffic on a
    paged one. *)
