(* Flat postings layout: every keyword's sorted posting list lives as one
   span of a single concatenated int arena, addressed through a sorted
   vocabulary array and an offset table (offsets.(r) .. offsets.(r+1) is
   the span of vocabulary rank r). Built by Inverted.build; replaces the
   per-keyword boxed arrays behind a Hashtbl.

   This module is a tagged query kernel (lint rule R9): no Hashtbl, no
   list construction. Multi-keyword intersection runs by adaptive
   merge/galloping over arena spans, rarest span first, accumulating into
   caller-owned reusable buffers. *)

type t = {
  vocab : int array; (* sorted distinct keywords, rank order *)
  offsets : int array; (* length num_words + 1; offsets.(0) = 0 *)
  arena : int array; (* concatenated sorted posting spans *)
}

let unsafe_make ~vocab ~offsets ~arena =
  let nw = Array.length vocab in
  if Array.length offsets <> nw + 1 then
    invalid_arg "Postings.unsafe_make: offsets must have one entry per word plus a sentinel";
  if nw > 0 && offsets.(0) <> 0 then invalid_arg "Postings.unsafe_make: offsets must start at 0";
  if Array.length offsets > 0 && offsets.(nw) <> Array.length arena then
    invalid_arg "Postings.unsafe_make: offset sentinel must equal the arena length";
  { vocab; offsets; arena }

let num_words t = Array.length t.vocab
let arena_size t = Array.length t.arena
let word t r = t.vocab.(r)
let start t r = t.offsets.(r)
let stop t r = t.offsets.(r + 1)
let arena_get t i = t.arena.(i)

(* vocabulary rank of keyword w, or -1 when w occurs nowhere *)
let rank t w =
  let lo = ref 0 and hi = ref (Array.length t.vocab) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.vocab.(mid) < w then lo := mid + 1 else hi := mid
  done;
  if !lo < Array.length t.vocab && t.vocab.(!lo) = w then !lo else -1

let frequency t w =
  let r = rank t w in
  if r < 0 then 0 else t.offsets.(r + 1) - t.offsets.(r)

let iter_posting t w f =
  let r = rank t w in
  if r >= 0 then
    for i = t.offsets.(r) to t.offsets.(r + 1) - 1 do
      f t.arena.(i)
    done

let copy_posting t w =
  let r = rank t w in
  if r < 0 then [||]
  else Array.sub t.arena t.offsets.(r) (t.offsets.(r + 1) - t.offsets.(r))

let mem t w id =
  let r = rank t w in
  r >= 0
  &&
  let lo = t.offsets.(r) and hi = t.offsets.(r + 1) in
  let p = Kwsc_util.Sorted.gallop_lower_bound t.arena ~lo ~hi id in
  p < hi && t.arena.(p) = id

(* [query_into t ws out tmp] leaves the sorted intersection of all the
   keyword postings in [out] ([tmp] is scratch). Spans are intersected
   rarest-first, so the running result can only shrink. *)
let query_into t ws out tmp =
  let k = Array.length ws in
  if k = 0 then invalid_arg "Postings.query_into: need at least one keyword";
  Kwsc_util.Ibuf.clear out;
  Kwsc_util.Ibuf.clear tmp;
  (* vocabulary ranks, sorted by ascending span length (insertion sort:
     k is the query keyword count, tiny) *)
  let ranks = Array.make k (-1) in
  let empty = ref false in
  for i = 0 to k - 1 do
    let r = rank t ws.(i) in
    if r < 0 then empty := true else ranks.(i) <- r
  done;
  if not !empty then begin
    let len r = t.offsets.(r + 1) - t.offsets.(r) in
    for i = 1 to k - 1 do
      let x = ranks.(i) in
      let j = ref (i - 1) in
      while !j >= 0 && len ranks.(!j) > len x do
        ranks.(!j + 1) <- ranks.(!j);
        decr j
      done;
      ranks.(!j + 1) <- x
    done;
    (* The two rarest distinct spans intersect arena-to-arena straight
       into [out], skipping a seed copy of the rarest span; only a
       single-keyword (or all-duplicate) query copies its span. *)
    let r0 = ranks.(0) in
    let i = ref 1 in
    while !i < k && ranks.(!i) = r0 do
      incr i
    done;
    if !i >= k then
      for p = t.offsets.(r0) to t.offsets.(r0 + 1) - 1 do
        Kwsc_util.Ibuf.push out t.arena.(p)
      done
    else begin
      let r1 = ranks.(!i) in
      Kwsc_util.Sorted.gallop_intersect_into t.arena ~alo:t.offsets.(r0)
        ~ahi:t.offsets.(r0 + 1) t.arena ~blo:t.offsets.(r1) ~bhi:t.offsets.(r1 + 1) out;
      incr i;
      while !i < k && Kwsc_util.Ibuf.length out > 0 do
        let r = ranks.(!i) in
        (* skip duplicate keywords: intersecting with the same span again
           is the identity *)
        if r <> ranks.(!i - 1) then begin
          Kwsc_util.Ibuf.clear tmp;
          Kwsc_util.Sorted.gallop_intersect_into (Kwsc_util.Ibuf.unsafe_data out) ~alo:0
            ~ahi:(Kwsc_util.Ibuf.length out) t.arena ~blo:t.offsets.(r)
            ~bhi:t.offsets.(r + 1) tmp;
          Kwsc_util.Ibuf.swap out tmp
        end;
        incr i
      done
    end
  end

let query t ws =
  (* validate before sizing the buffers: an empty keyword set would fold
     the capacity to max_int and die inside Array.make instead of
     reporting the canonical contract violation *)
  if Array.length ws = 0 then invalid_arg "Postings.query_into: need at least one keyword";
  let cap = max 1 (Array.fold_left (fun acc w -> min acc (frequency t w)) max_int ws) in
  let out = Kwsc_util.Ibuf.create ~capacity:cap () in
  let tmp = Kwsc_util.Ibuf.create ~capacity:cap () in
  query_into t ws out tmp;
  Kwsc_util.Ibuf.to_array out
