[@@@kwsc.kernel]

(* Hybrid postings layout: every keyword's sorted posting list lives as
   one Kwsc_util.Container — a sorted array when sparse, a packed 32-bit
   bitmap when dense (frequency >= universe / 64), run pairs when
   clustered — addressed through a sorted vocabulary array. Built by
   Inverted.build from the concatenated arena; exact per-container
   cardinalities feed the cost-based Kwsc_util.Planner, which picks the
   intersection strategy (chain / probe / word-AND) per query.

   Containers live behind a backing abstraction: a heap-built index has
   every slot filled at construction (the arena / eager-snapshot case),
   while a paged index starts with empty slots and a [fetch] closure
   that decodes rank r's container out of the mmap-backed snapshot on
   first touch ([container] below is the single dispatch point). The
   exact cardinality column is always resident, so query planning —
   rarest-first ordering, buffer sizing, the planner's cost model —
   never faults a container in; only the containers a query actually
   intersects are ever decoded.

   This module is a tagged query kernel (lint rule R9): no Hashtbl, no
   list construction. Multi-keyword intersection runs rarest-first by
   exact cardinality through Container's kind-dispatched kernels,
   accumulating into caller-owned reusable buffers. *)

module U = Kwsc_util

type t = {
  vocab : int array; (* sorted distinct keywords, rank order *)
  slots : U.Container.t option array; (* one per rank; None = not yet paged in *)
  cards : int array; (* exact cardinality per rank, always resident *)
  universe : int; (* ids live in [0, universe) *)
  total : int; (* sum of all cardinalities (= old arena size) *)
  policy : U.Container.policy;
  fetch : int -> U.Container.t; (* decode rank r from the mapped snapshot *)
}

(* heap-built indexes fill every slot up front, so their fetch is dead *)
let no_fetch _ = invalid_arg "Postings: fetch on a fully resident index"

let unsafe_of_containers ?(policy = U.Container.Hybrid) ~universe ~vocab containers =
  let nw = Array.length vocab in
  if Array.length containers <> nw then
    invalid_arg "Postings.unsafe_of_containers: one container per vocabulary word";
  let total = ref 0 in
  Array.iter
    (fun c ->
      if U.Container.universe c <> universe then
        invalid_arg "Postings.unsafe_of_containers: container universe mismatch";
      total := !total + U.Container.cardinality c)
    containers;
  {
    vocab;
    slots = Array.map (fun c -> Some c) containers;
    cards = Array.map U.Container.cardinality containers;
    universe;
    total = !total;
    policy;
    fetch = no_fetch;
  }
[@@kwsc.alloc_ok
  "construction path: adopts pre-built containers once at build/load \
   time, never during queries"]

let unsafe_make ?(policy = U.Container.Hybrid) ~universe ~vocab ~offsets arena =
  let nw = Array.length vocab in
  if Array.length offsets <> nw + 1 then
    invalid_arg "Postings.unsafe_make: offsets must have one entry per word plus a sentinel";
  if nw > 0 && offsets.(0) <> 0 then invalid_arg "Postings.unsafe_make: offsets must start at 0";
  if Array.length offsets > 0 && offsets.(nw) <> Array.length arena then
    invalid_arg "Postings.unsafe_make: offset sentinel must equal the arena length";
  let containers =
    Array.init nw (fun r ->
        U.Container.of_sorted_array ~policy ~universe
          (Array.sub arena offsets.(r) (offsets.(r + 1) - offsets.(r))))
  in
  unsafe_of_containers ~policy ~universe ~vocab containers
[@@kwsc.alloc_ok
  "construction path: builds every per-word container exactly once at \
   index build/load time, never during queries"]

let unsafe_of_paged ?(policy = U.Container.Hybrid) ~universe ~vocab ~cards fetch =
  let nw = Array.length vocab in
  if Array.length cards <> nw then
    invalid_arg "Postings.unsafe_of_paged: one cardinality per vocabulary word";
  let total = ref 0 in
  Array.iter
    (fun c ->
      if c < 0 then invalid_arg "Postings.unsafe_of_paged: negative cardinality";
      total := !total + c)
    cards;
  { vocab; slots = Array.make nw None; cards; universe; total = !total; policy; fetch }
[@@kwsc.alloc_ok "construction path: one slot array per paged open, never during queries"]

let num_words t = Array.length t.vocab
let size t = t.total
let universe t = t.universe
let policy t = t.policy
let word t r = t.vocab.(r)

(* The backing dispatch point: every container read goes through here.
   Resident slots cost one load and a branch; a paged miss decodes the
   container from the mapped snapshot (CRC-verified on first touch of
   its section) and caches it. The slot write is a benign race under
   concurrent readers — fetch is a deterministic pure function of the
   immutable mapping, so racing domains cache equal values (batch
   queries prefault on the submitting domain; see Inverted). *)
let container t r =
  match t.slots.(r) with
  | Some c -> c
  | None ->
      let c = t.fetch r in
      if U.Container.universe c <> t.universe || U.Container.cardinality c <> t.cards.(r)
      then
        raise
          (Kwsc_snapshot.Codec.Corrupt
             (Kwsc_snapshot.Codec.Malformed
                "paged container disagrees with the cardinality column"));
      t.slots.(r) <- Some c;
      c
[@@kwsc.alloc_ok
  "paged-miss path: decodes a snapshot section's container once on \
   first touch; the per-query hot loops only take the resident branch"]

let resident t =
  let n = ref 0 in
  Array.iter (function Some _ -> incr n | None -> ()) t.slots;
  !n

(* vocabulary rank of keyword w, or -1 when w occurs nowhere *)
let rank t w =
  let lo = ref 0 and hi = ref (Array.length t.vocab) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.vocab.(mid) < w then lo := mid + 1 else hi := mid
  done;
  if !lo < Array.length t.vocab && t.vocab.(!lo) = w then !lo else -1

let frequency t w =
  let r = rank t w in
  if r < 0 then 0 else t.cards.(r)

let iter_posting t w f =
  let r = rank t w in
  if r >= 0 then U.Container.iter f (container t r)

let copy_posting t w =
  let r = rank t w in
  if r < 0 then [||] else U.Container.to_sorted_array (container t r)

let mem t w id =
  let r = rank t w in
  r >= 0 && U.Container.mem (container t r) id

let kind_counts t =
  let s = ref 0 and d = ref 0 and r = ref 0 in
  for i = 0 to Array.length t.vocab - 1 do
    match U.Container.kind (container t i) with
    | U.Container.Sparse -> incr s
    | U.Container.Dense -> incr d
    | U.Container.Runs -> incr r
  done;
  (!s, !d, !r)

(* page in every container a batch of keyword sets will touch, on the
   calling domain: the pool's task hand-off publishes the filled slots
   (release/acquire through its atomics), so worker domains only ever
   take the resident branch of [container] *)
let prefault t wss =
  Array.iter
    (fun ws ->
      Array.iter
        (fun w ->
          let r = rank t w in
          if r >= 0 then ignore (container t r))
        ws)
    wss
[@@kwsc.alloc_ok
  "batch-submission path, not a query kernel: runs once per query_batch \
   on the submitting domain to page deferred containers in"]

(* absent-feedback default: a top-level function, not a per-call
   closure, so the no-feedback path stays allocation-free (A1) *)
let default_observed _ _ = -1

(* [query_into t ws out tmp] leaves the sorted intersection of all the
   keyword postings in [out] ([tmp] is scratch). Containers are ordered
   rarest-first by exact cardinality; the planner then picks the
   physical strategy (chain / probe / word-AND), consulting
   [observed_of w1 w2] — the observed intersection cardinality of the
   two rarest keywords, or -1 — as a correlation correction on queries
   of three or more distinct keywords (pair costs are exact already). *)
let query_into ?(observed_of = default_observed) t ws out tmp =
  let k = Array.length ws in
  if k = 0 then invalid_arg "Postings.query_into: need at least one keyword";
  U.Ibuf.clear out;
  U.Ibuf.clear tmp;
  (* vocabulary ranks, sorted by ascending cardinality (insertion sort:
     k is the query keyword count, tiny). The resident cardinality
     column orders the ranks without faulting any container in. *)
  let ranks = Array.make k (-1) in
  let empty = ref false in
  for i = 0 to k - 1 do
    let r = rank t ws.(i) in
    if r < 0 then empty := true else ranks.(i) <- r
  done;
  if not !empty then begin
    let len r = t.cards.(r) in
    for i = 1 to k - 1 do
      let x = ranks.(i) in
      let j = ref (i - 1) in
      while !j >= 0 && len ranks.(!j) > len x do
        ranks.(!j + 1) <- ranks.(!j);
        decr j
      done;
      ranks.(!j + 1) <- x
    done;
    (* drop duplicate keywords: intersecting with the same container
       again is the identity (equal ranks are now adjacent) *)
    let kd = ref 0 in
    for i = 0 to k - 1 do
      if i = 0 || ranks.(i) <> ranks.(i - 1) then begin
        ranks.(!kd) <- ranks.(i);
        incr kd
      end
    done;
    let cs = Array.init !kd (fun i -> container t ranks.(i)) in
    let observed =
      if !kd >= 3 then observed_of t.vocab.(ranks.(0)) t.vocab.(ranks.(1)) else -1
    in
    U.Container.intersect_query (U.Planner.choose ~observed cs) cs ~out ~tmp
  end

let query ?observed_of t ws =
  (* validate before sizing the buffers: an empty keyword set would fold
     the capacity to max_int and die inside Array.make instead of
     reporting the canonical contract violation *)
  if Array.length ws = 0 then invalid_arg "Postings.query_into: need at least one keyword";
  let cap = max 1 (Array.fold_left (fun acc w -> min acc (frequency t w)) max_int ws) in
  let out = U.Ibuf.create ~capacity:cap () in
  let tmp = U.Ibuf.create ~capacity:cap () in
  query_into ?observed_of t ws out tmp;
  U.Ibuf.to_array out
