(* Bounded LFU cache of materialized two-keyword intersections.

   Hot keyword pairs (the head of a Zipfian query distribution) pay the
   full intersection once and are then answered by an array copy. The
   cache is a fixed-capacity flat table scanned linearly — capacity is a
   few dozen entries, so a scan costs less than one gallop probe of a
   tau-sized posting — with least-frequently-used eviction. Admission is
   the caller's job (Inverted gates it on Planner.worth_caching, the
   N^(1-1/k) threshold algebra), so cold sparse pairs never churn it.

   Everything here is flat records and int arrays: a fresh cache is
   identical however it is built, so Marshal-digest determinism of the
   enclosing index is preserved, and an index snapshot never stores cache
   state (caches start cold on load). *)

type entry = {
  mutable w1 : int;
  mutable w2 : int;
  mutable freq : int; (* use count since admission; 0 = free slot *)
  mutable ids : int array;
}

type t = {
  entries : entry array;
  mutable used : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  (* Observed-selectivity side table (planner feedback): a direct-mapped
     record of the last intersection cardinality seen per keyword pair,
     three parallel int arrays, overwrite on collision. Deliberately
     lossy — a stale or evicted observation only mis-prices a physical
     strategy choice, never an answer — and deterministic: the slot is a
     pure hash of the canonical pair, so identically-ordered query
     streams leave identical tables. *)
  obs_w1 : int array;
  obs_w2 : int array;
  obs_card : int array;
}

let default_capacity = 64

(* power of two so the slot mask is a [land] *)
let obs_slots = 128

let create ?(capacity = default_capacity) () =
  if capacity < 1 then invalid_arg "Isect_cache.create: capacity must be >= 1";
  { entries = Array.init capacity (fun _ -> { w1 = -1; w2 = -1; freq = 0; ids = [||] });
    used = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    obs_w1 = Array.make obs_slots (-1);
    obs_w2 = Array.make obs_slots (-1);
    obs_card = Array.make obs_slots (-1) }

let capacity t = Array.length t.entries
let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions

let reset t =
  Array.iter
    (fun e ->
      e.w1 <- -1;
      e.w2 <- -1;
      e.freq <- 0;
      e.ids <- [||])
    t.entries;
  t.used <- 0;
  t.hits <- 0;
  t.misses <- 0;
  t.evictions <- 0;
  Array.fill t.obs_w1 0 obs_slots (-1);
  Array.fill t.obs_w2 0 obs_slots (-1);
  Array.fill t.obs_card 0 obs_slots (-1)

(* canonical key order so (a, b) and (b, a) share a slot *)
let norm w1 w2 = if w1 <= w2 then (w1, w2) else (w2, w1)

(* deterministic pair mix (Fibonacci-style multipliers; the wrap is
   harmless, [land] keeps the slot in range) *)
let obs_slot w1 w2 = ((w1 * 0x9e37_79b1) + (w2 * 0x85eb_ca77)) land (obs_slots - 1)

let observe t w1 w2 card =
  let w1, w2 = norm w1 w2 in
  let i = obs_slot w1 w2 in
  t.obs_w1.(i) <- w1;
  t.obs_w2.(i) <- w2;
  t.obs_card.(i) <- card

let observed t w1 w2 =
  let w1, w2 = norm w1 w2 in
  let i = obs_slot w1 w2 in
  if t.obs_w1.(i) = w1 && t.obs_w2.(i) = w2 then t.obs_card.(i) else -1

let find t w1 w2 =
  let w1, w2 = norm w1 w2 in
  let hit = ref None in
  let found = ref false in
  let i = ref 0 in
  let n = t.used in
  while (not !found) && !i < n do
    let e = t.entries.(!i) in
    if e.freq > 0 && e.w1 = w1 && e.w2 = w2 then begin
      e.freq <- e.freq + 1;
      (* fresh copy: the caller owns the result, the cached storage
         stays private however the answer array is used downstream *)
      hit := Some (Array.copy e.ids);
      found := true
    end;
    incr i
  done;
  if !found then t.hits <- t.hits + 1 else t.misses <- t.misses + 1;
  !hit

let store t w1 w2 ids =
  let w1, w2 = norm w1 w2 in
  let slot =
    if t.used < Array.length t.entries then begin
      let s = t.entries.(t.used) in
      t.used <- t.used + 1;
      s
    end
    else begin
      (* evict the least frequently used entry (first minimum) *)
      let best = ref t.entries.(0) in
      Array.iter (fun e -> if e.freq < !best.freq then best := e) t.entries;
      t.evictions <- t.evictions + 1;
      !best
    end
  in
  slot.w1 <- w1;
  slot.w2 <- w2;
  slot.freq <- 1;
  (* defensive copy: later caller-side mutation of [ids] cannot corrupt
     the cached answer *)
  slot.ids <- Array.copy ids
