type t = { docs : Doc.t array; postings : (int, int array) Hashtbl.t; n : int; vocab : int array }

let build ?pool docs =
  let pool = match pool with Some p -> p | None -> Kwsc_util.Pool.default () in
  let postings_l : (int, int list ref) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri
    (fun id doc ->
      Doc.iter
        (fun w ->
          match Hashtbl.find_opt postings_l w with
          | Some l -> l := id :: !l
          | None -> Hashtbl.add postings_l w (ref [ id ]))
        doc)
    docs;
  (* Materializing and sorting each keyword's posting list is independent
     per keyword: snapshot the accumulator table into an array and sort
     the lists as pool tasks, then insert the results sequentially. *)
  let entries =
    Array.of_list (Hashtbl.fold (fun w l acc -> (w, !l) :: acc) postings_l [])
  in
  let sorted_arrays =
    Kwsc_util.Pool.parallel_map pool
      (fun (_, l) ->
        let a = Array.of_list l in
        Array.sort Int.compare a;
        a)
      entries
  in
  let postings = Hashtbl.create (max 1 (Array.length entries)) in
  Array.iteri (fun i (w, _) -> Hashtbl.add postings w sorted_arrays.(i)) entries;
  let n = Array.fold_left (fun acc d -> acc + Doc.size d) 0 docs in
  let vocab = Kwsc_util.Sorted.sort_dedup (Hashtbl.fold (fun w _ acc -> w :: acc) postings []) in
  { docs; postings; n; vocab }

let input_size t = t.n
let vocabulary t = Array.copy t.vocab
let posting t w = match Hashtbl.find_opt t.postings w with Some a -> a | None -> [||]
let frequency t w = Array.length (posting t w)

let query t ws =
  if Array.length ws = 0 then invalid_arg "Inverted.query: need at least one keyword";
  let rarest = ref ws.(0) in
  Array.iter (fun w -> if frequency t w < frequency t !rarest then rarest := w) ws;
  let base = posting t !rarest in
  let others = Array.of_list (List.filter (fun w -> w <> !rarest) (Array.to_list ws)) in
  let hits = ref [] and count = ref 0 in
  Array.iter
    (fun id ->
      if Array.for_all (fun w -> Doc.mem t.docs.(id) w) others then begin
        hits := id :: !hits;
        incr count
      end)
    base;
  let out = Array.make !count 0 in
  let rest = ref !hits in
  for i = !count - 1 downto 0 do
    (match !rest with
    | x :: tl ->
        out.(i) <- x;
        rest := tl
    | [] -> assert false)
  done;
  out

let query_naive t ws =
  if Array.length ws = 0 then invalid_arg "Inverted.query_naive: need at least one keyword";
  let lists = Array.map (posting t) ws in
  Array.sort (fun a b -> Int.compare (Array.length a) (Array.length b)) lists;
  Array.fold_left Kwsc_util.Sorted.intersect lists.(0) (Array.sub lists 1 (Array.length lists - 1))

let is_empty_query t ws = Array.length (query t ws) = 0

(* The index is immutable after [build] and [query] touches no shared
   mutable state, so a batch is a plain parallel map over the stream. *)
let query_batch ?pool t wss =
  let pool = match pool with Some p -> p | None -> Kwsc_util.Pool.default () in
  Kwsc_util.Pool.parallel_map pool (fun ws -> query t ws) wss

module I = Kwsc_util.Invariant

let check_invariants t =
  let bad = ref [] in
  let push x = bad := x :: !bad in
  let vf locus fmt = I.vf ~structure:"Inverted" ~locus fmt in
  let ndocs = Array.length t.docs in
  let strictly_sorted a =
    let ok = ref true in
    for i = 1 to Array.length a - 1 do
      if a.(i - 1) >= a.(i) then ok := false
    done;
    !ok
  in
  if not (strictly_sorted t.vocab) then
    push (vf "vocab" "vocabulary is not strictly sorted");
  if Array.length t.vocab <> Hashtbl.length t.postings then
    push
      (vf "vocab" "%d vocabulary entries but %d posting lists" (Array.length t.vocab)
         (Hashtbl.length t.postings));
  Array.iter
    (fun w ->
      if not (Hashtbl.mem t.postings w) then
        push (vf "vocab" "keyword %d has no posting list" w))
    t.vocab;
  Hashtbl.iter
    (fun w ids ->
      let locus = Printf.sprintf "posting[%d]" w in
      if Array.length ids = 0 then push (vf locus "empty posting list");
      if not (strictly_sorted ids) then
        push (vf locus "posting list is not strictly sorted (or has duplicates)");
      Array.iter
        (fun id ->
          if id < 0 || id >= ndocs then push (vf locus "object id %d outside [0,%d)" id ndocs)
          else if not (Doc.mem t.docs.(id) w) then
            push (vf locus "object %d is listed but its document lacks keyword %d" id w))
        ids)
    t.postings;
  (* completeness: every (doc, keyword) pair appears in its posting list *)
  Array.iteri
    (fun id doc ->
      Doc.iter
        (fun w ->
          let ids = match Hashtbl.find_opt t.postings w with Some a -> a | None -> [||] in
          if not (Kwsc_util.Sorted.mem_int ids id) then
            push
              (vf
                 (Printf.sprintf "doc[%d]" id)
                 "keyword %d is in the document but object %d is missing from its posting list"
                 w id))
        doc)
    t.docs;
  let n = Array.fold_left (fun acc d -> acc + Doc.size d) 0 t.docs in
  if n <> t.n then push (vf "root" "stored input size %d <> total document weight %d" t.n n);
  let posted = Hashtbl.fold (fun _ ids acc -> acc + Array.length ids) t.postings 0 in
  if posted <> n then
    push (vf "root" "%d posted pairs <> %d document words (doc-count inconsistency)" posted n);
  List.rev !bad

(* Self-audit every build when KWSC_AUDIT=1 (Invariant.enabled). *)
let build ?pool docs =
  let t = build ?pool docs in
  I.auto_check (fun () -> check_invariants t);
  t
