type t = { docs : Doc.t array; postings : Postings.t; n : int }

let build ?pool docs =
  let pool = match pool with Some p -> p | None -> Kwsc_util.Pool.default () in
  let postings_l : (int, int list ref) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri
    (fun id doc ->
      Doc.iter
        (fun w ->
          match Hashtbl.find_opt postings_l w with
          | Some l -> l := id :: !l
          | None -> Hashtbl.add postings_l w (ref [ id ]))
        doc)
    docs;
  (* Materializing and sorting each keyword's posting list is independent
     per keyword: snapshot the accumulator table into an array and sort
     the lists as pool tasks, then concatenate the results into the flat
     arena in vocabulary order. *)
  let entries =
    Array.of_list (Hashtbl.fold (fun w l acc -> (w, !l) :: acc) postings_l [])
  in
  Array.sort (fun (a, _) (b, _) -> Int.compare a b) entries;
  let sorted_arrays =
    Kwsc_util.Pool.parallel_map pool
      (fun (_, l) ->
        let a = Array.of_list l in
        Array.sort Int.compare a;
        a)
      entries
  in
  let nw = Array.length entries in
  let vocab = Array.make nw 0 in
  let offsets = Array.make (nw + 1) 0 in
  Array.iteri
    (fun i (w, _) ->
      vocab.(i) <- w;
      offsets.(i + 1) <- offsets.(i) + Array.length sorted_arrays.(i))
    entries;
  let arena = Array.make offsets.(nw) 0 in
  Array.iteri (fun i a -> Array.blit a 0 arena offsets.(i) (Array.length a)) sorted_arrays;
  let n = Array.fold_left (fun acc d -> acc + Doc.size d) 0 docs in
  { docs; postings = Postings.unsafe_make ~vocab ~offsets ~arena; n }

let input_size t = t.n
let postings t = t.postings
let vocabulary t = Array.init (Postings.num_words t.postings) (Postings.word t.postings)
let posting t w = Postings.copy_posting t.postings w
let frequency t w = Postings.frequency t.postings w
let query t ws = Postings.query t.postings ws

let query_naive t ws =
  if Array.length ws = 0 then invalid_arg "Inverted.query_naive: need at least one keyword";
  let lists = Array.map (posting t) ws in
  Array.sort (fun a b -> Int.compare (Array.length a) (Array.length b)) lists;
  Array.fold_left Kwsc_util.Sorted.intersect lists.(0) (Array.sub lists 1 (Array.length lists - 1))

let is_empty_query t ws = Array.length (query t ws) = 0

(* The index is immutable after [build]; each batch task owns its output
   and scratch buffers, so a batch is a plain parallel map that reuses
   the buffer pair across the queries of one shard. *)
let query_batch ?pool t wss =
  let pool = match pool with Some p -> p | None -> Kwsc_util.Pool.default () in
  Kwsc_util.Pool.parallel_map pool
    (fun ws ->
      let out = Kwsc_util.Ibuf.create () and tmp = Kwsc_util.Ibuf.create () in
      Postings.query_into t.postings ws out tmp;
      Kwsc_util.Ibuf.to_array out)
    wss

module I = Kwsc_util.Invariant

let check_invariants t =
  let bad = ref [] in
  let push x = bad := x :: !bad in
  let vf locus fmt = I.vf ~structure:"Inverted" ~locus fmt in
  let ndocs = Array.length t.docs in
  let ps = t.postings in
  let nw = Postings.num_words ps in
  (* vocabulary strictly sorted; offsets monotone and exactly covering *)
  for r = 1 to nw - 1 do
    if Postings.word ps (r - 1) >= Postings.word ps r then
      push (vf "vocab" "vocabulary is not strictly sorted at rank %d" r)
  done;
  for r = 0 to nw - 1 do
    if Postings.stop ps r < Postings.start ps r then
      push (vf "offsets" "span of rank %d has negative length" r);
    if r > 0 && Postings.start ps r <> Postings.stop ps (r - 1) then
      push (vf "offsets" "span of rank %d does not start where rank %d ends" r (r - 1))
  done;
  if nw > 0 && Postings.start ps 0 <> 0 then push (vf "offsets" "first span does not start at 0");
  if nw > 0 && Postings.stop ps (nw - 1) <> Postings.arena_size ps then
    push (vf "offsets" "last span does not end at the arena size");
  (* each span strictly sorted, non-empty, sound against the documents *)
  for r = 0 to nw - 1 do
    let w = Postings.word ps r in
    let locus = Printf.sprintf "posting[%d]" w in
    let lo = Postings.start ps r and hi = Postings.stop ps r in
    if hi = lo then push (vf locus "empty posting span");
    for i = lo to hi - 1 do
      let id = Postings.arena_get ps i in
      if i > lo && Postings.arena_get ps (i - 1) >= id then
        push (vf locus "posting span is not strictly sorted (or has duplicates)");
      if id < 0 || id >= ndocs then push (vf locus "object id %d outside [0,%d)" id ndocs)
      else if not (Doc.mem t.docs.(id) w) then
        push (vf locus "object %d is listed but its document lacks keyword %d" id w)
    done
  done;
  (* completeness: every (doc, keyword) pair appears in its posting span *)
  Array.iteri
    (fun id doc ->
      Doc.iter
        (fun w ->
          if not (Postings.mem ps w id) then
            push
              (vf
                 (Printf.sprintf "doc[%d]" id)
                 "keyword %d is in the document but object %d is missing from its posting span"
                 w id))
        doc)
    t.docs;
  let n = Array.fold_left (fun acc d -> acc + Doc.size d) 0 t.docs in
  if n <> t.n then push (vf "root" "stored input size %d <> total document weight %d" t.n n);
  if Postings.arena_size ps <> n then
    push
      (vf "root" "%d posted pairs <> %d document words (doc-count inconsistency)"
         (Postings.arena_size ps) n);
  List.rev !bad

(* Self-audit every build when KWSC_AUDIT=1 (Invariant.enabled). *)
let build ?pool docs =
  let t = build ?pool docs in
  I.auto_check (fun () -> check_invariants t);
  t

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

module C = Kwsc_snapshot.Codec

let kind = "kwsc.inverted"

let encode w t =
  C.W.i64 w t.n;
  C.W.int_array2 w (Array.map (fun (d : Doc.t) -> (d :> int array)) t.docs);
  let ps = t.postings in
  let nw = Postings.num_words ps in
  C.W.int_array w (Array.init nw (Postings.word ps));
  C.W.int_array w
    (Array.init (nw + 1) (fun r -> if r < nw then Postings.start ps r else Postings.arena_size ps));
  C.W.int_array w (Array.init (Postings.arena_size ps) (Postings.arena_get ps))

let decode r =
  let n = C.R.i64 r in
  let docs = Array.map Doc.of_sorted_array (C.R.int_array2 r) in
  let vocab = C.R.int_array r in
  let offsets = C.R.int_array r in
  let arena = C.R.int_array r in
  (* unsafe_make revalidates the length/sentinel contract; under
     Codec.run a violation surfaces as a Malformed error *)
  let t = { docs; postings = Postings.unsafe_make ~vocab ~offsets ~arena; n } in
  I.auto_check (fun () -> check_invariants t);
  t

let save path t =
  C.save_file ~path ~kind
    [
      ("meta", C.to_string (fun w ->
           C.W.i64 w (Array.length t.docs);
           C.W.i64 w (Postings.num_words t.postings);
           C.W.i64 w t.n));
      ("index", C.to_string (fun w -> encode w t));
    ]

let load path =
  C.run (fun () ->
      let sections = C.load_kind_exn ~path ~kind in
      let mdocs, mwords, mn =
        C.decode_section sections "meta" (fun r ->
            let a = C.R.i64 r in
            let b = C.R.i64 r in
            let c = C.R.i64 r in
            (a, b, c))
      in
      let t = C.decode_section sections "index" decode in
      if Array.length t.docs <> mdocs || Postings.num_words t.postings <> mwords || t.n <> mn
      then C.corrupt "Inverted: meta section disagrees with the decoded index";
      t)
