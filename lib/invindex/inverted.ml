[@@@kwsc.domain_safe]

module U = Kwsc_util

type t = {
  (* the raw build input, behind a once-cell: queries never touch the
     documents, so a paged open defers the (large) docs section until
     [documents] or an audit actually asks for it *)
  docs : Doc.t array U.Pool.Once.t;
  postings : Postings.t;
  n : int;
  cache : Isect_cache.t; (* hot-pair intersections; never snapshotted *)
}

let docs t = U.Pool.Once.force t.docs

let build ?pool ?(policy = U.Container.Hybrid) docs =
  let pool = match pool with Some p -> p | None -> U.Pool.default () in
  let postings_l : (int, int list ref) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri
    (fun id doc ->
      Doc.iter
        (fun w ->
          match Hashtbl.find_opt postings_l w with
          | Some l -> l := id :: !l
          | None -> Hashtbl.add postings_l w (ref [ id ]))
        doc)
    docs;
  (* Materializing and sorting each keyword's posting list is independent
     per keyword: snapshot the accumulator table into an array and sort
     the lists as pool tasks, then concatenate the results into the flat
     arena in vocabulary order. Container classification happens after,
     per span, inside Postings.unsafe_make — it is a pure function of
     the span, so the index stays identical at every pool size. *)
  let entries =
    Array.of_list (Hashtbl.fold (fun w l acc -> (w, !l) :: acc) postings_l [])
  in
  Array.sort (fun (a, _) (b, _) -> Int.compare a b) entries;
  let sorted_arrays =
    U.Pool.parallel_map pool
      (fun (_, l) ->
        let a = Array.of_list l in
        Array.sort Int.compare a;
        a)
      entries
  in
  let nw = Array.length entries in
  let vocab = Array.make nw 0 in
  let offsets = Array.make (nw + 1) 0 in
  Array.iteri
    (fun i (w, _) ->
      vocab.(i) <- w;
      offsets.(i + 1) <- offsets.(i) + Array.length sorted_arrays.(i))
    entries;
  let arena = Array.make offsets.(nw) 0 in
  Array.iteri (fun i a -> Array.blit a 0 arena offsets.(i) (Array.length a)) sorted_arrays;
  let n = Array.fold_left (fun acc d -> acc + Doc.size d) 0 docs in
  { docs = U.Pool.Once.ready docs;
    postings = Postings.unsafe_make ~policy ~universe:(Array.length docs) ~vocab ~offsets arena;
    n;
    cache = Isect_cache.create () }

let input_size t = t.n
let postings t = t.postings
let documents t = Array.copy (docs t)
let vocabulary t = Array.init (Postings.num_words t.postings) (Postings.word t.postings)
let posting t w = Postings.copy_posting t.postings w
let frequency t w = Postings.frequency t.postings w

(* [Some (a, b)] when [ws] holds exactly two distinct keywords
   (duplicates allowed) — the only shape the pair cache can serve. *)
let distinct_pair ws =
  let a = ws.(0) in
  let b = ref a in
  let ok = ref true in
  Array.iter
    (fun w -> if w <> a then if !b = a then b := w else if w <> !b then ok := false)
    ws;
  if !ok && !b <> a then Some (a, !b) else None

(* Sequential query surface with the LFU pair cache: a two-keyword query
   whose cost reaches the tau = N^(1-1/k) admission threshold is served
   from (or admitted to) the cache; everything else goes straight to the
   postings kernels. The cache only ever stores what the kernels just
   computed, so answers are bitwise identical with the cache cold, warm,
   or disabled (--planner=off bypasses it entirely). Cache state is
   per-index and mutated here — batch queries (query_batch) bypass it, so
   parallel shards never contend.

   Every distinct-pair result that flows through here (cache hit, fresh
   admission, or uncached) also lands in the cache's observed-selectivity
   side table; queries of three or more distinct keywords read it back
   through [observed_of] so the planner can correct its uncorrelated
   chain pricing with the true cardinality of the two rarest keywords.
   Strictly physical: the feedback changes strategy choices only, never
   an answer, a logical counter, or the cache hit/miss sequence. *)
let observed_of t w1 w2 = Isect_cache.observed t.cache w1 w2

let query_cached t ~use_cache ws =
  match if Array.length ws > 0 then distinct_pair ws else None with
  | Some (w1, w2) when use_cache -> begin
      (* the cache copies on both sides of its API (find returns a
         fresh array, store copies on admission), so no copies here *)
      match Isect_cache.find t.cache w1 w2 with
      | Some ids ->
          Isect_cache.observe t.cache w1 w2 (Array.length ids);
          ids
      | None ->
          let r = Postings.query t.postings ws in
          Isect_cache.store t.cache w1 w2 r;
          Isect_cache.observe t.cache w1 w2 (Array.length r);
          r
    end
  | Some (w1, w2) ->
      let r = Postings.query t.postings ws in
      Isect_cache.observe t.cache w1 w2 (Array.length r);
      r
  | None -> Postings.query ~observed_of:(observed_of t) t.postings ws

let query t ws =
  if Array.length ws = 0 || not !U.Planner.enabled then Postings.query t.postings ws
  else
    match distinct_pair ws with
    | None -> Postings.query ~observed_of:(observed_of t) t.postings ws
    | Some (w1, w2) ->
        let cost = min (frequency t w1) (frequency t w2) in
        query_cached t ~use_cache:(cost > 0 && U.Planner.worth_caching ~n:t.n ~k:2 ~cost) ws

let cache_stats t = (Isect_cache.hits t.cache, Isect_cache.misses t.cache, Isect_cache.evictions t.cache)
let reset_cache t = Isect_cache.reset t.cache

let query_naive t ws =
  if Array.length ws = 0 then invalid_arg "Inverted.query_naive: need at least one keyword";
  let lists = Array.map (posting t) ws in
  Array.sort (fun a b -> Int.compare (Array.length a) (Array.length b)) lists;
  Array.fold_left U.Sorted.intersect lists.(0) (Array.sub lists 1 (Array.length lists - 1))

let is_empty_query t ws = Array.length (query t ws) = 0

(* The index is immutable after [build] (the pair cache is bypassed
   here); each batch task owns its output and scratch buffers, so a
   batch is a plain parallel map that reuses the buffer pair across the
   queries of one shard. Prefaulting first keeps a paged index's slot
   fills on the submitting domain — the pool's task hand-off publishes
   them, so workers only take the resident branch. *)
let query_batch ?pool t wss =
  let pool = match pool with Some p -> p | None -> U.Pool.default () in
  Postings.prefault t.postings wss;
  U.Pool.parallel_map pool
    (fun ws ->
      let out = U.Ibuf.create () and tmp = U.Ibuf.create () in
      Postings.query_into t.postings ws out tmp;
      U.Ibuf.to_array out)
    wss

module I = U.Invariant

let tag_of_kind = function U.Container.Sparse -> 0 | U.Container.Dense -> 1 | U.Container.Runs -> 2

let kind_of_tag = function
  | 0 -> U.Container.Sparse
  | 1 -> U.Container.Dense
  | 2 -> U.Container.Runs
  | k -> invalid_arg (Printf.sprintf "Inverted: unknown container kind tag %d" k)

let check_invariants t =
  let bad = ref [] in
  let push x = bad := x :: !bad in
  let vf locus fmt = I.vf ~structure:"Inverted" ~locus fmt in
  let docs = docs t in
  let ndocs = Array.length docs in
  let ps = t.postings in
  let nw = Postings.num_words ps in
  if Postings.universe ps <> ndocs then
    push (vf "root" "postings universe %d <> %d documents" (Postings.universe ps) ndocs);
  (* vocabulary strictly sorted *)
  for r = 1 to nw - 1 do
    if Postings.word ps (r - 1) >= Postings.word ps r then
      push (vf "vocab" "vocabulary is not strictly sorted at rank %d" r)
  done;
  (* each container non-empty, internally consistent, correctly
     classified, sound against the documents *)
  let total = ref 0 in
  for r = 0 to nw - 1 do
    let w = Postings.word ps r in
    let locus = Printf.sprintf "posting[%d]" w in
    let c = Postings.container ps r in
    let card = U.Container.cardinality c in
    total := !total + card;
    if card = 0 then push (vf locus "empty posting container");
    if U.Container.universe c <> ndocs then
      push (vf locus "container universe %d <> %d documents" (U.Container.universe c) ndocs);
    if U.Container.recount c <> card then
      push
        (vf locus "stored cardinality %d disagrees with the physical layout (%d)" card
           (U.Container.recount c));
    let expected =
      U.Container.classify ~policy:(Postings.policy ps) ~universe:ndocs ~card
        ~nruns:(U.Container.run_count c)
    in
    if tag_of_kind (U.Container.kind c) <> tag_of_kind expected then
      push (vf locus "container kind disagrees with the classification policy");
    let prev = ref (-1) and seen = ref 0 in
    U.Container.iter
      (fun id ->
        if id <= !prev then push (vf locus "posting ids are not strictly ascending");
        prev := id;
        incr seen;
        if id < 0 || id >= ndocs then push (vf locus "object id %d outside [0,%d)" id ndocs)
        else if not (Doc.mem docs.(id) w) then
          push (vf locus "object %d is listed but its document lacks keyword %d" id w))
      c;
    if !seen <> card then
      push (vf locus "iteration yields %d ids but cardinality says %d" !seen card)
  done;
  (* completeness: every (doc, keyword) pair appears in its posting *)
  Array.iteri
    (fun id doc ->
      Doc.iter
        (fun w ->
          if not (Postings.mem ps w id) then
            push
              (vf
                 (Printf.sprintf "doc[%d]" id)
                 "keyword %d is in the document but object %d is missing from its posting"
                 w id))
        doc)
    docs;
  let n = Array.fold_left (fun acc d -> acc + Doc.size d) 0 docs in
  if n <> t.n then push (vf "root" "stored input size %d <> total document weight %d" t.n n);
  if Postings.size ps <> n then
    push
      (vf "root" "%d posted pairs <> %d document words (doc-count inconsistency)"
         (Postings.size ps) n);
  if !total <> Postings.size ps then
    push
      (vf "root" "container cardinalities sum to %d but the postings report %d" !total
         (Postings.size ps));
  List.rev !bad

(* Self-audit every build when KWSC_AUDIT=1 (Invariant.enabled). *)
let build ?pool ?policy docs =
  let t = build ?pool ?policy docs in
  I.auto_check (fun () -> check_invariants t);
  t

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

module C = Kwsc_snapshot.Codec
module P = Kwsc_snapshot.Pager

let kind = "kwsc.inverted"

(* Column layout shared by the v2 blob and the v3 sections: per-rank
   kind tags and cardinalities, then one column per physical layout —
   delta-encoded ids for the sparse ranks, (start, length) pairs with
   gap-encoded starts for the run ranks, and a packed byte blob for the
   dense bitmaps (raw bytes, not width-tagged ints: bitmap words are
   uniform random-looking 32-bit values, which the signed width tagger
   would pad to 8 bytes each). The delta/gap accumulators reset at every
   rank boundary, so each rank's slice decodes independently — the
   property the paged reader relies on. *)
let columns ps =
  let nw = Postings.num_words ps in
  let sparse = U.Ibuf.create () in
  let run_counts = U.Ibuf.create () in
  let runs = U.Ibuf.create () in
  let dense = Buffer.create 256 in
  for r = 0 to nw - 1 do
    let c = Postings.container ps r in
    match U.Container.kind c with
    | U.Container.Sparse ->
        let prev = ref (-1) in
        U.Container.iter
          (fun id ->
            U.Ibuf.push sparse (id - !prev);
            prev := id)
          c
    | U.Container.Runs ->
        let pairs = U.Container.runs_pairs c in
        let nr = Array.length pairs / 2 in
        U.Ibuf.push run_counts nr;
        let prev_end = ref 0 in
        for j = 0 to nr - 1 do
          U.Ibuf.push runs (pairs.(2 * j) - !prev_end);
          U.Ibuf.push runs pairs.((2 * j) + 1);
          prev_end := pairs.(2 * j) + pairs.((2 * j) + 1)
        done
    | U.Container.Dense -> Buffer.add_string dense (U.Container.dense_bytes c)
  done;
  ( U.Ibuf.to_array sparse,
    U.Ibuf.to_array run_counts,
    U.Ibuf.to_array runs,
    Buffer.contents dense )

let kind_tags ps =
  Array.init (Postings.num_words ps) (fun r ->
      tag_of_kind (U.Container.kind (Postings.container ps r)))

let card_column ps =
  Array.init (Postings.num_words ps) (fun r ->
      U.Container.cardinality (Postings.container ps r))

(* The v2 single-blob codec, kept verbatim for embedding inside other
   snapshots (the per-shard sections of Kwsc_shard carry one of these
   per shard regardless of the file's format version). *)
let encode w t =
  let ps = t.postings in
  let nw = Postings.num_words ps in
  C.W.i64 w t.n;
  C.W.int_array2 w (Array.map (fun (d : Doc.t) -> (d :> int array)) (docs t));
  C.W.int_array w (Array.init nw (Postings.word ps));
  C.W.bool w (match Postings.policy ps with U.Container.Sparse_only -> true | U.Container.Hybrid -> false);
  C.W.int_array w (kind_tags ps);
  C.W.int_array w (card_column ps);
  let sparse, run_counts, runs, dense = columns ps in
  C.W.int_array w sparse;
  C.W.int_array w run_counts;
  C.W.int_array w runs;
  C.W.str w dense

(* Rebuild every container from the shared columns (the eager decode
   path for both the v2 blob and the v3 sections). *)
let containers_of_columns ~universe ~kinds ~cards ~sparse ~run_counts ~runs ~dense =
  let nw = Array.length kinds in
  let sp = ref 0 and rc = ref 0 and rp = ref 0 and dp = ref 0 in
  let nb_dense = (universe + 7) / 8 in
  let containers =
    Array.init nw (fun i ->
        match kinds.(i) with
        | U.Container.Sparse ->
            let card = cards.(i) in
            if card < 0 || !sp + card > Array.length sparse then
              C.corrupt "Inverted: sparse id column exhausted";
            let ids = Array.make card 0 in
            let prev = ref (-1) in
            for j = 0 to card - 1 do
              prev := !prev + sparse.(!sp + j);
              ids.(j) <- !prev
            done;
            sp := !sp + card;
            (* validates ordering and range *)
            U.Container.of_sorted_array_kind U.Container.Sparse ~universe ids
        | U.Container.Runs ->
            if !rc >= Array.length run_counts then
              C.corrupt "Inverted: run-count column exhausted";
            let nr = run_counts.(!rc) in
            incr rc;
            if nr < 0 || !rp + (2 * nr) > Array.length runs then
              C.corrupt "Inverted: run pair column exhausted";
            let pairs = Array.make (2 * nr) 0 in
            let prev_end = ref 0 in
            for j = 0 to nr - 1 do
              let s = !prev_end + runs.(!rp + (2 * j)) in
              let len = runs.(!rp + (2 * j) + 1) in
              pairs.(2 * j) <- s;
              pairs.((2 * j) + 1) <- len;
              prev_end := s + len
            done;
            rp := !rp + (2 * nr);
            (* validates run structure and range *)
            let c = U.Container.of_runs ~universe pairs in
            if U.Container.cardinality c <> cards.(i) then
              C.corrupt "Inverted: run cardinality disagrees with the stored count";
            c
        | U.Container.Dense ->
            if !dp + nb_dense > String.length dense then
              C.corrupt "Inverted: dense bitmap blob exhausted";
            let c = U.Container.of_dense_bytes ~universe ~card:cards.(i) dense ~off:!dp in
            dp := !dp + nb_dense;
            c)
  in
  if !sp <> Array.length sparse then C.corrupt "Inverted: trailing sparse ids";
  if !rc <> Array.length run_counts || !rp <> Array.length runs then
    C.corrupt "Inverted: trailing run pairs";
  if !dp <> String.length dense then C.corrupt "Inverted: trailing dense bytes";
  containers

let decode r =
  let n = C.R.i64 r in
  let docs = Array.map Doc.of_sorted_array (C.R.int_array2 r) in
  let universe = Array.length docs in
  let vocab = C.R.int_array r in
  let policy = if C.R.bool r then U.Container.Sparse_only else U.Container.Hybrid in
  let kinds = Array.map kind_of_tag (C.R.int_array r) in
  let cards = C.R.int_array r in
  let nw = Array.length vocab in
  if Array.length kinds <> nw || Array.length cards <> nw then
    C.corrupt "Inverted: kind/cardinality columns disagree with the vocabulary";
  let sparse = C.R.int_array r in
  let run_counts = C.R.int_array r in
  let runs = C.R.int_array r in
  let dense = C.R.str r in
  let containers = containers_of_columns ~universe ~kinds ~cards ~sparse ~run_counts ~runs ~dense in
  (* unsafe_of_containers revalidates universes and lengths; under
     Codec.run a violation surfaces as a Malformed error *)
  let t =
    { docs = U.Pool.Once.ready docs;
      postings = Postings.unsafe_of_containers ~policy ~universe ~vocab containers;
      n;
      cache = Isect_cache.create () }
  in
  I.auto_check (fun () -> check_invariants t);
  t

(* Version 1 layout: the flat arena (vocab, offsets, concatenated sorted
   spans). Loading reclassifies each span under the hybrid policy — an
   old snapshot silently gains the container upgrades. *)
let decode_v1 r =
  let n = C.R.i64 r in
  let docs = Array.map Doc.of_sorted_array (C.R.int_array2 r) in
  let vocab = C.R.int_array r in
  let offsets = C.R.int_array r in
  let arena = C.R.int_array r in
  let t =
    { docs = U.Pool.Once.ready docs;
      postings =
        Postings.unsafe_make ~policy:U.Container.Hybrid ~universe:(Array.length docs) ~vocab
          ~offsets arena;
      n;
      cache = Isect_cache.create () }
  in
  I.auto_check (fun () -> check_invariants t);
  t

(* Version 3 layout: the same columns as the v2 blob, but one snapshot
   section per column so the pager can verify and decode each
   independently — "docs" is never touched by queries, and each posting
   container decodes from a fixed slice of its column section.

   The sparse id column — the Zipf tail, usually the largest column — is
   additionally split into rank-aligned chunks ("sparse.0", "sparse.1",
   ...) of roughly [default_sparse_chunk] delta-coded ids each, with a
   "sparsedir" section recording each chunk's starting element offset.
   The chunk is the pager's unit of lazy verification: a paged first
   touch of one tail word checksums tens of kilobytes, not the whole
   tail. A rank's span never straddles a chunk boundary. *)
let default_sparse_chunk = 16_384

let sparse_chunk_starts ~tags ~cards ~chunk_elems total =
  let cuts = ref [] in
  let chunk_start = ref 0 and pos = ref 0 in
  Array.iteri
    (fun r tag ->
      if tag = tag_of_kind U.Container.Sparse then begin
        if !pos > !chunk_start && !pos - !chunk_start >= chunk_elems then begin
          cuts := !chunk_start :: !cuts;
          chunk_start := !pos
        end;
        pos := !pos + cards.(r)
      end)
    tags;
  if total > 0 then cuts := !chunk_start :: !cuts;
  Array.of_list (List.rev !cuts)

let save ?(sparse_chunk_elems = default_sparse_chunk) path t =
  if sparse_chunk_elems <= 0 then
    invalid_arg "Inverted.save: sparse_chunk_elems must be positive";
  let ps = t.postings in
  let sparse, run_counts, runs, dense = columns ps in
  let starts =
    sparse_chunk_starts ~tags:(kind_tags ps) ~cards:(card_column ps)
      ~chunk_elems:sparse_chunk_elems (Array.length sparse)
  in
  let nchunks = Array.length starts in
  let chunk_sections =
    List.init nchunks (fun c ->
        let lo = starts.(c) in
        let hi = if c + 1 < nchunks then starts.(c + 1) else Array.length sparse in
        ( Printf.sprintf "sparse.%d" c,
          C.to_string (fun w -> C.W.int_array w (Array.sub sparse lo (hi - lo))) ))
  in
  C.save_file ~path ~kind
    ([
       ("meta", C.to_string (fun w ->
            C.W.i64 w (Array.length (docs t));
            C.W.i64 w (Postings.num_words ps);
            C.W.i64 w t.n));
       ("docs", C.to_string (fun w ->
            C.W.int_array2 w (Array.map (fun (d : Doc.t) -> (d :> int array)) (docs t))));
       ("vocab", C.to_string (fun w ->
            C.W.int_array w (Array.init (Postings.num_words ps) (Postings.word ps));
            C.W.bool w
              (match Postings.policy ps with
              | U.Container.Sparse_only -> true
              | U.Container.Hybrid -> false);
            C.W.int_array w (kind_tags ps);
            C.W.int_array w (card_column ps)));
       ("sparsedir", C.to_string (fun w -> C.W.int_array w starts));
     ]
    @ chunk_sections
    @ [
        ("runcounts", C.to_string (fun w -> C.W.int_array w run_counts));
        ("runs", C.to_string (fun w -> C.W.int_array w runs));
        (* raw payload, not even str-framed: rank slices sit at fixed
           ordinal * nb_dense offsets for the paged reader *)
        ("dense", dense);
      ])

let decode_vocab_section r =
  let vocab = C.R.int_array r in
  let policy = if C.R.bool r then U.Container.Sparse_only else U.Container.Hybrid in
  let kinds = Array.map kind_of_tag (C.R.int_array r) in
  let cards = C.R.int_array r in
  let nw = Array.length vocab in
  if Array.length kinds <> nw || Array.length cards <> nw then
    C.corrupt "Inverted: kind/cardinality columns disagree with the vocabulary";
  (vocab, policy, kinds, cards)

let decode_v3 ~n sections =
  let docs =
    C.decode_section sections "docs" (fun r ->
        Array.map Doc.of_sorted_array (C.R.int_array2 r))
  in
  let universe = Array.length docs in
  let vocab, policy, kinds, cards = C.decode_section sections "vocab" decode_vocab_section in
  let sparse =
    (* reassemble the chunked sparse column, checking each chunk against
       the directory (a CRC-valid directory can still disagree with the
       chunk payloads it travels beside) *)
    let starts = C.decode_section sections "sparsedir" C.R.int_array in
    let chunks =
      Array.init (Array.length starts) (fun c ->
          C.decode_section sections (Printf.sprintf "sparse.%d" c) C.R.int_array)
    in
    let total = Array.fold_left (fun a ch -> a + Array.length ch) 0 chunks in
    let out = Array.make total 0 in
    let pos = ref 0 in
    Array.iteri
      (fun c ch ->
        if starts.(c) <> !pos then
          C.corrupt "Inverted: sparse chunk directory disagrees with the chunk lengths";
        Array.blit ch 0 out !pos (Array.length ch);
        pos := !pos + Array.length ch)
      chunks;
    out
  in
  let run_counts = C.decode_section sections "runcounts" C.R.int_array in
  let runs = C.decode_section sections "runs" C.R.int_array in
  let dense =
    match List.assoc_opt "dense" sections with
    | Some s -> s
    | None -> C.corrupt "missing section \"dense\""
  in
  let containers = containers_of_columns ~universe ~kinds ~cards ~sparse ~run_counts ~runs ~dense in
  let t =
    { docs = U.Pool.Once.ready docs;
      postings = Postings.unsafe_of_containers ~policy ~universe ~vocab containers;
      n;
      cache = Isect_cache.create () }
  in
  I.auto_check (fun () -> check_invariants t);
  t

let load path =
  C.run (fun () ->
      let version, sections = C.load_kind_versioned_exn ~path ~kind in
      let mdocs, mwords, mn =
        C.decode_section sections "meta" (fun r ->
            let a = C.R.i64 r in
            let b = C.R.i64 r in
            let c = C.R.i64 r in
            (a, b, c))
      in
      let t =
        if version >= 3 then decode_v3 ~n:mn sections
        else C.decode_section sections "index" (if version <= 1 then decode_v1 else decode)
      in
      if
        Postings.universe t.postings <> mdocs
        || Postings.num_words t.postings <> mwords
        || t.n <> mn
      then C.corrupt "Inverted: meta section disagrees with the decoded index";
      t)

(* ------------------------------------------------------------------ *)
(* Out-of-core open: decode nothing but the vocabulary up front         *)
(* ------------------------------------------------------------------ *)

(* The paged open reads only "meta", "vocab", "runcounts" and the
   sparse chunk directory (a few bytes per rank); every posting
   container and the whole docs section stay on disk behind lazy
   fetches. Section CRCs are verified by the
   pager on first touch, so a corrupt column is refused — as
   [Codec.Corrupt (Checksum_mismatch name)] raised from the touching
   query — without ever having been paged in by queries that avoid it. *)
let paged_of_pager pgr =
  let mdocs, mwords, mn =
    P.decode pgr "meta" (fun r ->
        let a = C.R.i64 r in
        let b = C.R.i64 r in
        let c = C.R.i64 r in
        (a, b, c))
  in
  if mdocs < 0 || mwords < 0 || mn < 0 then
    C.corrupt "Inverted: negative meta field";
  let vocab, policy, kinds, cards = P.decode pgr "vocab" decode_vocab_section in
  let nw = Array.length vocab in
  if nw <> mwords then C.corrupt "Inverted: meta section disagrees with the decoded index";
  let universe = mdocs in
  let run_counts = P.decode pgr "runcounts" C.R.int_array in
  (* fixed per-rank offsets into the shared columns: element offset into
     the sparse / runs slabs, run-count index, dense ordinal *)
  let sparse_off = Array.make nw 0 in
  let runs_off = Array.make nw 0 in
  let rc_idx = Array.make nw 0 in
  let dense_ord = Array.make nw 0 in
  let sp = ref 0 and rc = ref 0 and rp = ref 0 and dp = ref 0 in
  let total = ref 0 in
  for r = 0 to nw - 1 do
    if cards.(r) < 0 then C.corrupt "Inverted: negative cardinality";
    total := !total + cards.(r);
    match kinds.(r) with
    | U.Container.Sparse ->
        sparse_off.(r) <- !sp;
        sp := !sp + cards.(r)
    | U.Container.Runs ->
        if !rc >= Array.length run_counts then
          C.corrupt "Inverted: run-count column exhausted";
        let nr = run_counts.(!rc) in
        if nr < 0 then C.corrupt "Inverted: negative run count";
        rc_idx.(r) <- !rc;
        runs_off.(r) <- !rp;
        incr rc;
        rp := !rp + (2 * nr)
    | U.Container.Dense ->
        dense_ord.(r) <- !dp;
        incr dp
  done;
  if !rc <> Array.length run_counts then C.corrupt "Inverted: trailing run pairs";
  if !total <> mn then
    C.corrupt "Inverted: meta section disagrees with the decoded index";
  let nb_dense = (universe + 7) / 8 in
  if !dp * nb_dense <> P.section_length pgr "dense" then
    C.corrupt "Inverted: trailing dense bytes";
  (* the sparse chunk directory is tiny and read eagerly; each chunk's
     slab (and its whole-chunk CRC) waits for the first rank that lands
     in it. [starts] is validated here so the per-fetch binary search
     can trust it. *)
  let starts = P.decode pgr "sparsedir" C.R.int_array in
  let nchunks = Array.length starts in
  if nchunks > 0 && starts.(0) <> 0 then
    C.corrupt "Inverted: sparse chunk directory does not start at 0";
  for c = 1 to nchunks - 1 do
    if starts.(c) <= starts.(c - 1) then
      C.corrupt "Inverted: sparse chunk directory is not strictly ascending"
  done;
  let chunk_cells = Array.make nchunks None in
  let sparse_chunk c =
    match chunk_cells.(c) with
    | Some s -> s
    | None ->
        let s = P.ints pgr (Printf.sprintf "sparse.%d" c) in
        chunk_cells.(c) <- Some s;
        s
  in
  (* largest chunk whose start is <= e (the directory is ascending) *)
  let chunk_of_off e =
    let lo = ref 0 and hi = ref (nchunks - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if starts.(mid) <= e then lo := mid else hi := mid - 1
    done;
    !lo
  in
  (* memoized run slab: parsing it verifies its whole section once;
     after that per-rank reads are raw mapped loads *)
  let runs_slab = ref None in
  let slab cell name =
    match !cell with
    | Some s -> s
    | None ->
        let s = P.ints pgr name in
        cell := Some s;
        s
  in
  let fetch r =
    try
      match kinds.(r) with
      | U.Container.Sparse ->
          let card = cards.(r) in
          if card = 0 then
            U.Container.of_sorted_array_kind U.Container.Sparse ~universe [||]
          else begin
            if nchunks = 0 then C.corrupt "Inverted: sparse id column exhausted";
            let c = chunk_of_off sparse_off.(r) in
            let s = sparse_chunk c in
            let off = sparse_off.(r) - starts.(c) in
            if off + card > P.Ints.length s then
              C.corrupt "Inverted: sparse id chunk exhausted";
            let ids = Array.make card 0 in
            let prev = ref (-1) in
            for j = 0 to card - 1 do
              prev := !prev + P.Ints.get s (off + j);
              ids.(j) <- !prev
            done;
            U.Container.of_sorted_array_kind U.Container.Sparse ~universe ids
          end
      | U.Container.Runs ->
          let s = slab runs_slab "runs" in
          let nr = run_counts.(rc_idx.(r)) in
          let off = runs_off.(r) in
          if off + (2 * nr) > P.Ints.length s then
            C.corrupt "Inverted: run pair column exhausted";
          let pairs = Array.make (2 * nr) 0 in
          let prev_end = ref 0 in
          for j = 0 to nr - 1 do
            let st = !prev_end + P.Ints.get s (off + (2 * j)) in
            let len = P.Ints.get s (off + (2 * j) + 1) in
            pairs.(2 * j) <- st;
            pairs.((2 * j) + 1) <- len;
            prev_end := st + len
          done;
          U.Container.of_runs ~universe pairs
      | U.Container.Dense ->
          let b = P.blob pgr "dense" ~pos:(dense_ord.(r) * nb_dense) ~len:nb_dense in
          U.Container.of_dense_bytes ~universe ~card:cards.(r) b ~off:0
    with
    (* a CRC-valid section can still carry structurally impossible
       content (the CRC travels beside the data); container validation
       failures become the same typed refusal the eager decode gives *)
    | Invalid_argument msg | Failure msg -> raise (C.Corrupt (C.Malformed msg))
  in
  {
    docs =
      U.Pool.Once.make (fun () ->
          let docs =
            P.decode pgr "docs" (fun r -> Array.map Doc.of_sorted_array (C.R.int_array2 r))
          in
          if Array.length docs <> mdocs then
            raise (C.Corrupt (C.Malformed "Inverted: docs section disagrees with meta"));
          docs);
    postings = Postings.unsafe_of_paged ~policy ~universe ~vocab ~cards fetch;
    n = mn;
    cache = Isect_cache.create ();
  }

let load_paged path =
  match P.open_kind path ~kind with
  | Error _ as e -> e
  | Ok pgr when P.version pgr < 3 ->
      (* pre-v3 snapshots keep the whole index in one blob: nothing to
         page, so fall back to the eager decode *)
      load path
  | Ok pgr -> C.run_light (fun () -> paged_of_pager pgr)

let resident_containers t = Postings.resident t.postings
