type t = { sets : int array array; n : int }

let create sets =
  if Array.length sets < 2 then invalid_arg "Ksi_instance.create: need at least two sets";
  let sets =
    Array.map
      (fun s ->
        let s = Kwsc_util.Sorted.sort_dedup (Array.to_list s) in
        if Array.length s = 0 then invalid_arg "Ksi_instance.create: empty set";
        s)
      sets
  in
  let n = Array.fold_left (fun acc s -> acc + Array.length s) 0 sets in
  { sets; n }

let num_sets t = Array.length t.sets

let set t i =
  if i < 1 || i > num_sets t then invalid_arg "Ksi_instance.set: id out of range";
  t.sets.(i - 1)

let input_size t = t.n

let reporting t ids =
  if Array.length ids = 0 then invalid_arg "Ksi_instance.reporting: no set ids";
  let lists = Array.map (set t) ids in
  Array.sort (fun a b -> Int.compare (Array.length a) (Array.length b)) lists;
  Array.fold_left Kwsc_util.Sorted.intersect lists.(0) (Array.sub lists 1 (Array.length lists - 1))

let emptiness t ids = Array.length (reporting t ids) = 0

let to_keyword_dataset t =
  let elements =
    Kwsc_util.Sorted.sort_dedup (Array.to_list (Array.concat (Array.to_list t.sets)))
  in
  let docs =
    Array.map
      (fun e ->
        let owners = ref [] in
        Array.iteri
          (fun i s -> if Kwsc_util.Sorted.mem_int s e then owners := (i + 1) :: !owners)
          t.sets;
        Doc.of_list !owners)
      elements
  in
  (docs, elements)
