(** Hybrid postings layout: every keyword's sorted posting list is one
    {!Kwsc_util.Container} — a sorted array when sparse, a packed bitmap
    when dense (frequency at least universe / 64), run pairs when
    clustered — addressed through a sorted vocabulary array. Built by
    {!Inverted.build}; the exact per-container cardinalities feed the
    cost-based {!Kwsc_util.Planner}, which picks the intersection
    strategy (chain / probe / word-AND) per query.

    This module is a tagged query kernel (lint rule R9): no [Hashtbl], no
    list construction. Multi-keyword intersection runs rarest-first by
    exact cardinality through the kind-dispatched container kernels, into
    caller-owned reusable buffers. *)

type t

val unsafe_make :
  ?policy:Kwsc_util.Container.policy ->
  universe:int ->
  vocab:int array ->
  offsets:int array ->
  int array ->
  t
(** [unsafe_make ~universe ~vocab ~offsets arena] is the raw constructor
    used by {!Inverted.build}. [offsets] has one entry
    per vocabulary rank plus a sentinel equal to the arena length; rank
    [r]'s posting span is [arena.(offsets.(r)) .. arena.(offsets.(r+1) - 1)],
    strictly sorted over ids in [\[0, universe)]. Each span is classified
    and packed into its container ([policy] defaults to [Hybrid];
    [Sparse_only] reproduces the flat-array PR 3 layout for A/B
    benches). Checks length/sentinel consistency and per-span sortedness
    (via container construction); deeper structure is audited by
    [Inverted.check_invariants] under [KWSC_AUDIT=1]. *)

val unsafe_of_containers :
  ?policy:Kwsc_util.Container.policy ->
  universe:int ->
  vocab:int array ->
  Kwsc_util.Container.t array ->
  t
(** Adopt pre-built containers (the eager snapshot decode path): one per
    vocabulary rank, all over the same universe.
    @raise Invalid_argument on a length or universe mismatch. *)

val unsafe_of_paged :
  ?policy:Kwsc_util.Container.policy ->
  universe:int ->
  vocab:int array ->
  cards:int array ->
  (int -> Kwsc_util.Container.t) ->
  t
(** [unsafe_of_paged ~universe ~vocab ~cards fetch] is the out-of-core
    constructor: every container slot starts empty, and [fetch r] decodes
    rank [r]'s container out of the mmap-backed snapshot on first touch
    (raising [Codec.Corrupt] if the backing section fails its lazy CRC).
    [cards] is the exact cardinality column, always resident, so planning
    and buffer sizing never fault a container in. [fetch] must be a
    deterministic pure function of the immutable mapping. A fetched
    container disagreeing with [cards] or [universe] is refused as
    [Codec.Corrupt (Malformed _)].
    @raise Invalid_argument on a length mismatch or negative card. *)

val prefault : t -> int array array -> unit
(** Page in every container the given keyword sets will touch, on the
    calling domain — [Inverted.query_batch] calls this before fanning
    out so pool workers only ever take the resident branch. *)

val resident : t -> int
(** How many container slots are currently decoded (= [num_words] on any
    heap-built index; grows monotonically on a paged one). *)

val num_words : t -> int

val size : t -> int
(** Total posted pairs — the sum of all cardinalities (what the flat
    arena length used to be). *)

val universe : t -> int
(** Ids live in [\[0, universe)]. *)

val policy : t -> Kwsc_util.Container.policy
(** The classification policy this index was built under. *)

val word : t -> int -> int
(** Keyword at vocabulary rank [r] (ranks are sorted by keyword). *)

val rank : t -> int -> int
(** Vocabulary rank of a keyword, or [-1] when it occurs nowhere. *)

val container : t -> int -> Kwsc_util.Container.t
(** The posting container at vocabulary rank [r]. *)

val frequency : t -> int -> int
(** Posting cardinality of a keyword (0 if absent) — exact, O(log
    vocabulary). *)

val kind_counts : t -> int * int * int
(** How many containers are (sparse, dense, runs). *)

val iter_posting : t -> int -> (int -> unit) -> unit
(** Apply a callback to each object id of a keyword's posting, in
    ascending order, without materializing anything. *)

val copy_posting : t -> int -> int array
(** Fresh sorted copy of a keyword's posting (empty if absent). *)

val mem : t -> int -> int -> bool
(** [mem t w id]: does keyword [w]'s posting contain [id]? O(log card)
    sparse, O(1) dense, O(log runs) run containers; no allocation. *)

val query_into :
  ?observed_of:(int -> int -> int) ->
  t ->
  int array ->
  Kwsc_util.Ibuf.t ->
  Kwsc_util.Ibuf.t ->
  unit
(** [query_into t ws out tmp] leaves the sorted id set of objects whose
    documents contain every keyword of [ws] in [out] ([tmp] is scratch;
    both are cleared first). Containers are ordered rarest-first by
    exact cardinality, duplicates dropped, and the planner picks the
    physical strategy: pairwise chain through the kind-dispatched
    kernels, probe of the rarest container against the others, or
    word-parallel bitmap AND when every container is dense. With warmed
    buffers the query allocates only two small per-query arrays (ranks
    and container slots).

    [ws] may hold any number [>= 1] of keywords, duplicates included. A
    keyword absent from the vocabulary makes the intersection certainly
    empty, and the short-circuit answers OUT = 0 without touching any
    container. Answers and buffers are identical under every planner
    setting — the strategy changes only the physical kernel.

    [?observed_of w1 w2] supplies the observed intersection cardinality
    of the two rarest keywords (or -1 for none) — the selectivity
    feedback {!Kwsc_util.Planner.choose} folds into its chain pricing on
    queries of three or more distinct keywords. Purely physical: any
    [observed_of] yields identical answers and logical counters.
    @raise Invalid_argument on an empty keyword set. *)

val query : ?observed_of:(int -> int -> int) -> t -> int array -> int array
(** Convenience wrapper around {!query_into} with throwaway buffers. *)
