(** Flat postings layout: every keyword's sorted posting list is one span
    of a single concatenated int arena, addressed through a sorted
    vocabulary array and an offset table. Built by {!Inverted.build};
    replaces per-keyword boxed arrays behind a [Hashtbl] so a k-SI query
    touches two cache-friendly flat arrays and nothing else.

    This module is a tagged query kernel (lint rule R9): no [Hashtbl], no
    list construction. Multi-keyword intersection runs adaptively over
    arena spans (sequential merge for balanced spans, galloping for
    skewed ones), rarest first, into caller-owned reusable buffers. *)

type t

val unsafe_make : vocab:int array -> offsets:int array -> arena:int array -> t
(** Raw constructor used by {!Inverted.build}. [offsets] has one entry
    per vocabulary rank plus a sentinel equal to the arena length; rank
    [r]'s posting span is [arena.(offsets.(r)) .. arena.(offsets.(r+1) - 1)].
    Checks only length/sentinel consistency; span sortedness is the
    builder's contract (audited by [Inverted.check_invariants] under
    [KWSC_AUDIT=1]). *)

val num_words : t -> int
val arena_size : t -> int

val word : t -> int -> int
(** Keyword at vocabulary rank [r] (ranks are sorted by keyword). *)

val rank : t -> int -> int
(** Vocabulary rank of a keyword, or [-1] when it occurs nowhere. *)

val start : t -> int -> int
(** First arena index of rank [r]'s span. *)

val stop : t -> int -> int
(** One past the last arena index of rank [r]'s span. *)

val arena_get : t -> int -> int

val frequency : t -> int -> int
(** Posting-span length of a keyword (0 if absent). *)

val iter_posting : t -> int -> (int -> unit) -> unit
(** Apply a callback to each object id of a keyword's span, in ascending
    order, without materializing anything. *)

val copy_posting : t -> int -> int array
(** Fresh copy of a keyword's posting span (empty if absent). *)

val mem : t -> int -> int -> bool
(** [mem t w id]: does keyword [w]'s posting span contain [id]?
    Galloping search, no allocation. *)

val query_into : t -> int array -> Kwsc_util.Ibuf.t -> Kwsc_util.Ibuf.t -> unit
(** [query_into t ws out tmp] leaves the sorted id set of objects whose
    documents contain every keyword of [ws] in [out] ([tmp] is scratch;
    both are cleared first). Spans are intersected rarest-first (the two
    rarest arena-to-arena, then ping-ponging between the buffers) by the
    adaptive kernel of {!Kwsc_util.Sorted.gallop_intersect_into}; with
    warmed-up buffers the query allocates only one small rank array.

    [ws] may hold any number [>= 1] of keywords, duplicates included. A
    keyword absent from the vocabulary makes the intersection certainly
    empty, and rarest-first selection short-circuits: OUT = 0 is answered
    without touching any posting span.
    @raise Invalid_argument on an empty keyword set. *)

val query : t -> int array -> int array
(** Convenience wrapper around {!query_into} with throwaway buffers. *)
