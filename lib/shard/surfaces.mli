(** Sharded instantiations of the inverted baseline and two Table-1
    surfaces. Queries, snapshots and the equivalence contract are those
    of {!Sharded.S}; shard counts come from [?plan] or the
    [KWSC_SHARDS] / [KWSC_SHARD_POLICY] environment. *)

module Inverted :
  Sharded.S
    with type obj = Kwsc_invindex.Doc.t
     and type query = int array
     and type cfg = Kwsc_util.Container.policy
     and type sub = Kwsc_invindex.Inverted.t
(** Sharded k-SI reporting over per-shard hybrid postings. The routing
    hint replays one global pair-cache admission decision on every
    shard, so each shard-local LFU cache sees the unsharded cache's key
    sequence and the per-query hit/miss deltas ride back in the merged
    [Stats]. Reshard-on-load supported. *)

module Orp :
  Sharded.S
    with type obj = Kwsc_geom.Point.t * Kwsc_invindex.Doc.t
     and type query = Kwsc_geom.Rect.t * int array
     and type cfg = int
     and type sub = Kwsc.Orp_kw.t
(** Sharded ORP-KW (Theorem 1): cfg is the keyword arity [k]; a query is
    (rectangle, keywords). Each shard owns a private rank space over its
    own objects — queries convert per shard, answers merge back in
    global id order. Reshard-on-load supported (the rank tables
    round-trip the original coordinates bit for bit). *)

module Rr :
  Sharded.S
    with type obj = Kwsc_geom.Rect.t * Kwsc_invindex.Doc.t
     and type query = Kwsc_geom.Rect.t * int array
     and type cfg = int
     and type sub = Kwsc.Rr_kw.t
(** Sharded RR-KW (Corollary 3): cfg is the keyword arity [k], engine
    [`Auto]. Reshard-on-load is refused with a typed error (the
    Appendix-F reduction does not surrender its build input). *)
