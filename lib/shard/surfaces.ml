(* SURFACE instances for the inverted baseline and two Table-1 surfaces
   (ORP-KW via the kd transform, RR-KW via the Appendix-F reduction),
   plus their Sharded instantiations.

   The inverted surface is the interesting one: its routing hint is the
   pair-cache admission decision, computed once from *global* statistics
   — summed per-shard frequencies (exact, the shards partition the
   objects) and total N — and replayed verbatim on every shard through
   Inverted.query_cached. Every shard-local LFU cache therefore sees
   exactly the key sequence the unsharded cache sees, which is what
   makes per-shard hit/miss/eviction counters comparable (equal, in
   fact) to the monolithic index's — the invariant test_shard_diff
   checks. The tree surfaces need no hint: their per-query state is
   confined to the traversal. *)

module U = Kwsc_util
module Inv = Kwsc_invindex.Inverted
module Postings = Kwsc_invindex.Postings
module Stats = Kwsc.Stats

module Inverted_surface = struct
  type obj = Kwsc_invindex.Doc.t
  type query = int array
  type cfg = U.Container.policy
  type t = Inv.t
  type hint = bool (* consult the shard-local pair cache? *)

  let name = "Sharded_inverted"
  let inner_kind = Inv.kind
  let build ?pool policy docs = Inv.build ?pool ~policy docs
  let config_of t = Postings.policy (Inv.postings t)
  let input_size = Inv.input_size
  let size = Some (fun t -> Postings.universe (Inv.postings t))

  (* The unsharded admission gate (Inverted.query) verbatim, over global
     statistics: cost = min of the summed pair frequencies, n = total N. *)
  let plan_query subs ws =
    if Array.length ws = 0 || not !U.Planner.enabled then false
    else
      match Inv.distinct_pair ws with
      | None -> false
      | Some (w1, w2) ->
          let n = ref 0 and f1 = ref 0 and f2 = ref 0 in
          Array.iter
            (function
              | None -> ()
              | Some s ->
                  n := !n + Inv.input_size s;
                  f1 := !f1 + Inv.frequency s w1;
                  f2 := !f2 + Inv.frequency s w2)
            subs;
          let cost = min !f1 !f2 in
          cost > 0 && U.Planner.worth_caching ~n:!n ~k:2 ~cost

  (* Thread the shard-local cache activity through the returned Stats
     (the cache counters were process-global blind spots before shards
     existed): the router's merged Stats then carries the summed
     hit/miss traffic of all K caches. *)
  let query_stats t use_cache ws =
    let h0, m0, _ = Inv.cache_stats t in
    let ids = Inv.query_cached t ~use_cache ws in
    let h1, m1, _ = Inv.cache_stats t in
    let st = Stats.fresh_query () in
    st.Stats.reported <- Array.length ids;
    st.Stats.cache_hits <- h1 - h0;
    st.Stats.cache_misses <- m1 - m0;
    (ids, st)

  let encode = Inv.encode
  let decode = Inv.decode
  let load_inner = Inv.load
  let objects = Some Inv.documents
end

module Orp_surface = struct
  type obj = Kwsc_geom.Point.t * Kwsc_invindex.Doc.t
  type query = Kwsc_geom.Rect.t * int array
  type cfg = int (* keyword arity k *)
  type t = Kwsc.Orp_kw.t
  type hint = unit

  let name = "Sharded_orp"
  let inner_kind = Kwsc.Orp_kw.kind
  let build ?pool k objs = Kwsc.Orp_kw.build ?pool ~k objs
  let config_of = Kwsc.Orp_kw.k
  let input_size = Kwsc.Orp_kw.input_size
  let size = Some Kwsc.Orp_kw.size
  let plan_query _ _ = ()
  let query_stats t () (q, ws) = Kwsc.Orp_kw.query_stats t q ws
  let encode = Kwsc.Orp_kw.encode
  let decode = Kwsc.Orp_kw.decode
  let load_inner = Kwsc.Orp_kw.load
  let objects = Some Kwsc.Orp_kw.objects
end

module Rr_surface = struct
  type obj = Kwsc_geom.Rect.t * Kwsc_invindex.Doc.t
  type query = Kwsc_geom.Rect.t * int array
  type cfg = int (* keyword arity k; engine stays `Auto *)
  type t = Kwsc.Rr_kw.t
  type hint = unit

  let name = "Sharded_rr"
  let inner_kind = Kwsc.Rr_kw.kind
  let build ?pool k objs = Kwsc.Rr_kw.build ?pool ~k objs
  let config_of = Kwsc.Rr_kw.k
  let input_size = Kwsc.Rr_kw.input_size

  (* The engine wrapper cannot report its object count nor surrender its
     build input (rectangles are folded into 2d points), so decoded
     shards skip the count cross-check and reshard-on-load is refused
     with a typed error. *)
  let size = None
  let plan_query _ _ = ()
  let query_stats t () (q, ws) = Kwsc.Rr_kw.query_stats t q ws
  let encode = Kwsc.Rr_kw.encode
  let decode = Kwsc.Rr_kw.decode
  let load_inner = Kwsc.Rr_kw.load
  let objects = None
end

module Inverted = Sharded.Make (Inverted_surface)
module Orp = Sharded.Make (Orp_surface)
module Rr = Sharded.Make (Rr_surface)
