(** The gather half of scatter-gather: k-way merge of shard-local
    answers back into one globally sorted id list. Allocation-free
    ([@@@kwsc.kernel]): the caller owns the output buffer and the
    cursor scratch, both reusable across queries. *)

val merge_into :
  globals:int array array ->
  locals:int array array ->
  cursors:int array ->
  Kwsc_util.Ibuf.t ->
  unit
(** [merge_into ~globals ~locals ~cursors out] appends to [out] the
    sorted union of [globals.(s).(l)] over every shard [s] and local id
    [l] of [locals.(s)]. Requires each [locals.(s)] sorted strictly
    ascending with values indexing [globals.(s)], each [globals.(s)]
    strictly ascending, and the [globals] images pairwise disjoint —
    exactly what {!Plan.global_ids} guarantees — so the output order is
    independent of shard order. [cursors] is caller-provided scratch
    with at least as many slots as shards; its contents are overwritten.
    @raise Invalid_argument if [globals] or [cursors] is shorter than
    [locals]. *)
