(* Partitioning plans: which shard owns which object id.

   A plan is a pure function of (policy, shards, n) — no randomness, no
   per-process state — so two processes given the same triple partition
   identically, snapshots only need to store the triple, and the
   differential suite can compare indexes built under the same plan at
   any pool size. The per-shard [global] tables are materialized once by
   a single ascending pass over [0, n), which makes each shard's
   local-to-global map strictly increasing: shard-local answers come
   back already sorted in global id order and pairwise disjoint across
   shards, the property the gather kernel's k-way merge relies on. *)

module U = Kwsc_util
module C = Kwsc_snapshot.Codec

type policy = Hash | Range

type t = {
  policy : policy;
  shards : int;
  n : int;
  global : int array array; (* shard -> local id -> global id, strictly ascending *)
}

let policy_name = function Hash -> "hash" | Range -> "range"

let policy_of_name = function
  | "hash" -> Some Hash
  | "range" -> Some Range
  | _ -> None

let env_shards () =
  match Sys.getenv_opt "KWSC_SHARDS" with
  | None -> 1
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some k when k >= 1 -> k
      | _ -> 1)

let default_policy () =
  match Sys.getenv_opt "KWSC_SHARD_POLICY" with
  | Some s -> ( match policy_of_name (String.lowercase_ascii (String.trim s)) with
                | Some p -> p
                | None -> Hash)
  | None -> Hash

(* xorshift*-style finalizer: a fixed avalanche of the object id, so hash
   placement is deterministic across processes (Hashtbl.hash or Random
   would not be contractual). The [land max_int] after each wrapping
   multiply keeps the value non-negative on 63-bit ints. *)
let mix id =
  let x = id lxor (id lsr 33) in
  let x = x * 0x2545F4914F6CDD1D land max_int in
  let x = x lxor (x lsr 29) in
  let x = x * 0x1F123BB5159A55E5 land max_int in
  x lxor (x lsr 32)

let owner_of t id =
  match t.policy with
  | Hash -> mix id mod t.shards
  | Range -> if t.n = 0 then 0 else min (t.shards - 1) (id * t.shards / t.n)

let make ~policy ~shards ~n =
  if shards < 1 then invalid_arg "Plan.make: shard count must be >= 1";
  if n < 0 then invalid_arg "Plan.make: negative universe";
  let proto = { policy; shards; n; global = [||] } in
  let bufs = Array.init shards (fun _ -> U.Ibuf.create ()) in
  for id = 0 to n - 1 do
    U.Ibuf.push bufs.(owner_of proto id) id
  done;
  { proto with global = Array.map U.Ibuf.to_array bufs }

let policy t = t.policy
let shards t = t.shards
let size t = t.n
let count t s = Array.length t.global.(s)
let global_ids t s = t.global.(s)

(* ------------------------------------------------------------------ *)
(* Snapshot codec: the triple is the whole plan.                       *)
(* ------------------------------------------------------------------ *)

let encode w t =
  C.W.byte w (match t.policy with Hash -> 0 | Range -> 1);
  C.W.vint w t.shards;
  C.W.vint w t.n

let decode r =
  let policy =
    match C.R.byte r with
    | 0 -> Hash
    | 1 -> Range
    | b -> C.corrupt (Printf.sprintf "Plan: unknown policy tag %d" b)
  in
  let shards = C.R.vint r in
  let n = C.R.vint r in
  if shards < 1 || n < 0 then C.corrupt "Plan: invalid shard count or universe";
  make ~policy ~shards ~n
