(** Partitioning plans: which shard owns which object id.

    A plan is a pure function of (policy, shard count, universe size) —
    deterministic across processes and pool sizes, so it travels in a
    snapshot as just that triple. All shard-id arithmetic in the
    codebase lives behind {!owner_of} (enforced by lint rule R12):
    everything outside [lib/shard/] routes object placement through the
    plan instead of re-deriving it. *)

type policy =
  | Hash  (** spread ids by a fixed avalanche hash — balanced under any id distribution *)
  | Range  (** contiguous id ranges — locality-preserving, ideal for range-clustered data *)

type t

val make : policy:policy -> shards:int -> n:int -> t
(** [make ~policy ~shards ~n] partitions object ids [0 .. n-1] into
    [shards] shards. Shards may be empty when [shards > n].
    @raise Invalid_argument if [shards < 1] or [n < 0]. *)

val env_shards : unit -> int
(** Shard count requested by the [KWSC_SHARDS] environment variable;
    [1] (unsharded) when unset or unparsable. *)

val default_policy : unit -> policy
(** Policy requested by [KWSC_SHARD_POLICY] ("hash" / "range");
    [Hash] when unset or unrecognized. *)

val policy : t -> policy
val shards : t -> int

val size : t -> int
(** Universe size [n]: ids live in [\[0, n)]. *)

val count : t -> int -> int
(** [count t s] is the number of objects shard [s] owns. *)

val owner_of : t -> int -> int
(** [owner_of t id] is the shard owning object [id] — THE shard-id
    arithmetic, confined to [lib/shard/] by lint rule R12. Pure in
    (policy, shards, n, id). *)

val global_ids : t -> int -> int array
(** [global_ids t s] maps shard [s]'s local ids back to global ids:
    slot [l] is the global id of shard [s]'s object [l]. Strictly
    ascending, and pairwise disjoint across shards — per-shard sorted
    answers merge back into a globally sorted answer. The returned
    array is the live internal: read-only. *)

val policy_name : policy -> string
val policy_of_name : string -> policy option

val encode : Kwsc_snapshot.Codec.W.t -> t -> unit
val decode : Kwsc_snapshot.Codec.R.t -> t
(** Codec for the (policy, shards, n) triple; [decode] rebuilds the
    ownership tables with {!make} and raises [Kwsc_snapshot.Codec.Corrupt]
    on an invalid triple. *)
