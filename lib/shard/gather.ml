[@@@kwsc.kernel]

(* The gather half of scatter-gather: fold K shard-local answers back
   into one globally sorted id list. Because every plan's per-shard
   local-to-global table is strictly ascending and the tables are
   pairwise disjoint (Plan.global_ids), mapping each local answer
   through its table yields K sorted, disjoint global sequences — a
   plain k-way merge reconstructs exactly the answer the unsharded
   index would have reported, independent of shard order. K is small
   (a handful of domains), so the O(K) scan per emitted id beats a
   heap's bookkeeping. *)

module Ibuf = Kwsc_util.Ibuf

let merge_into ~globals ~locals ~cursors out =
  let k = Array.length locals in
  if Array.length globals < k || Array.length cursors < k then
    invalid_arg "Gather.merge_into: globals/cursors shorter than locals";
  let remaining = ref 0 in
  for s = 0 to k - 1 do
    cursors.(s) <- 0;
    remaining := !remaining + Array.length locals.(s)
  done;
  let best = ref 0 and best_id = ref 0 in
  while !remaining > 0 do
    best := -1;
    best_id := max_int;
    for s = 0 to k - 1 do
      let c = cursors.(s) in
      if c < Array.length locals.(s) then begin
        let g = globals.(s).(locals.(s).(c)) in
        if g < !best_id then begin
          best_id := g;
          best := s
        end
      end
    done;
    Ibuf.push out !best_id;
    cursors.(!best) <- cursors.(!best) + 1;
    decr remaining
  done
