(** The [Sharded] functor: partition the universe under a {!Plan} into K
    per-shard indexes of any snapshot-capable query surface, with a
    scatter-gather router over the domain pool.

    Equivalence contract (proven by [test/test_shard_diff.ml]): answers
    are bit-identical to the unsharded index at every shard count and
    every pool size; merged [Stats] counters follow the [Stats.merge]
    determinism contract (field-wise sums, independent of shard
    completion order); and shard-local planner/LFU caches replay the
    unsharded index's admission decisions, keeping their hit/miss
    counters aligned with the monolithic cache. *)

module U := Kwsc_util
module C := Kwsc_snapshot.Codec

(** What a query surface must provide to be sharded. Implementations
    live in {!Surfaces}. *)
module type SURFACE = sig
  type obj
  (** One indexable object (document, point x document, rect x document). *)

  type query

  type cfg
  (** Build configuration shared by every shard (container policy,
      keyword arity k, ...). *)

  type t

  type hint
  (** Globally computed routing hint replayed on every shard — the
      mechanism that keeps shard-local planner/cache decisions identical
      to the unsharded index's (unit when the surface needs none). *)

  val name : string
  (** For error messages, e.g. ["Sharded_inverted"]. *)

  val inner_kind : string
  (** The unsharded surface's snapshot kind tag. *)

  val build : ?pool:U.Pool.t -> cfg -> obj array -> t
  (** Never called on an empty array: empty shards stay [None]. *)

  val config_of : t -> cfg
  val input_size : t -> int

  val size : (t -> int) option
  (** Object count, when the surface can report it — used to
      cross-validate decoded shards against the plan. *)

  val plan_query : t option array -> query -> hint
  (** Compute the global routing hint from all shards (e.g. the pair
      cache admission decision from summed frequencies). *)

  val query_stats : t -> hint -> query -> int array * Kwsc.Stats.query
  (** Shard-local answer (sorted local ids) and counters under the given
      hint. *)

  val encode : C.W.t -> t -> unit
  val decode : C.R.t -> t
  val load_inner : string -> (t, C.error) result
  (** Load an unsharded snapshot of this surface (for reshard-on-load). *)

  val objects : (t -> obj array) option
  (** Reconstruct the exact build input, when the surface supports it —
      [None] disables reshard-on-load with a typed error. *)
end

module type S = sig
  type obj
  type query
  type cfg

  type sub
  (** The unsharded surface index type ([M.t]). *)

  type t

  val kind : string
  (** Snapshot kind tag: ["kwsc.sharded:" ^ inner kind]. *)

  val build : ?pool:U.Pool.t -> ?plan:Plan.policy * int -> cfg -> obj array -> t
  (** [build cfg objs] partitions [objs] under [plan] (default: the
      [KWSC_SHARD_POLICY] / [KWSC_SHARDS] environment, i.e. unsharded
      unless asked otherwise) and builds one index per non-empty shard.
      Each per-shard build runs with the full [pool], so the sharded
      structure is identical at every pool size. *)

  val plan : t -> Plan.t
  val shards : t -> int

  val shard : t -> int -> sub option
  (** The shard-local index ([None] when the plan left shard [s] empty)
      — the hook tests use to audit per-shard cache counters. *)

  val input_size : t -> int
  (** Total N across shards = the unsharded N (the partition is exact). *)

  val query_stats : ?pool:U.Pool.t -> t -> query -> int array * Kwsc.Stats.query
  (** Scatter the query to every owning shard as parallel [pool] tasks,
      gather with the allocation-free k-way merge ({!Gather.merge_into})
      and sum the counters in fixed shard order. Answers equal the
      unsharded surface's bit for bit; the merged counters are
      independent of shard completion order ([Stats.merge] contract). *)

  val query : ?pool:U.Pool.t -> t -> query -> int array

  val save : ?pool:U.Pool.t -> string -> t -> unit
  (** One checksummed section per shard ("shard.0".."shard.K-1") plus a
      "meta" section holding the plan triple and per-shard input sizes;
      shard payloads are encoded as parallel [pool] tasks. *)

  val load : ?pool:U.Pool.t -> ?plan:Plan.policy * int -> string -> (t, C.error) result
  (** Load a sharded snapshot (shard sections decoded as parallel [pool]
      tasks; the stored plan wins over [plan]). A corrupt shard section
      is refused as [Checksum_mismatch "shard.i"], naming the culprit
      without poisoning the healthy sections. An *unsharded* snapshot of
      the inner surface is accepted too and repartitioned under [plan]
      (reshard-on-load) when the surface can surrender its build input;
      surfaces that cannot return a typed [Malformed] error. *)
end

module Make (M : SURFACE) :
  S
    with type obj = M.obj
     and type query = M.query
     and type cfg = M.cfg
     and type sub = M.t
