[@@@kwsc.domain_safe]

(* The Sharded functor: partition the universe under a Plan into K
   per-shard indexes of any snapshot-capable query surface, and route
   queries scatter-gather style across the domain pool.

   Contracts (all proven by test/test_shard_diff.ml):

   - Answers are bit-identical to the unsharded index at every K,
     because the shards partition the objects (each answer id is
     reported by exactly its owning shard) and the gather merge
     reassembles global id order deterministically.
   - Merged Stats follow the Stats.merge contract: per-shard counters
     are summed field-wise in shard order 0..K-1 — an order-independent
     result since the merge is commutative — and are identical at every
     pool size because each shard's query runs inside a single task.
   - Each shard owns a private planner admission decision replayed from
     one globally computed hint (M.plan_query), so shard-local LFU
     caches see the same key sequence as the unsharded cache.

   Shards are [M.t option]: a plan with more shards than objects leaves
   the surplus shards empty, and surfaces that refuse empty inputs
   (Orp_kw.build) are never called on them — an empty shard contributes
   an empty answer and zero counters.

   Snapshots put every shard in its own checksummed section
   ("shard.0".."shard.K-1"), so encode/decode fan out across the pool
   and a corrupt shard surfaces as [Checksum_mismatch "shard.i"],
   naming the culprit without touching the healthy sections. *)

module U = Kwsc_util
module C = Kwsc_snapshot.Codec

module type SURFACE = sig
  type obj
  type query
  type cfg
  type t
  type hint

  val name : string
  val inner_kind : string
  val build : ?pool:U.Pool.t -> cfg -> obj array -> t
  val config_of : t -> cfg
  val input_size : t -> int
  val size : (t -> int) option
  val plan_query : t option array -> query -> hint
  val query_stats : t -> hint -> query -> int array * Kwsc.Stats.query
  val encode : C.W.t -> t -> unit
  val decode : C.R.t -> t
  val load_inner : string -> (t, C.error) result
  val objects : (t -> obj array) option
end

module type S = sig
  type obj
  type query
  type cfg
  type sub
  type t

  val kind : string
  val build : ?pool:U.Pool.t -> ?plan:Plan.policy * int -> cfg -> obj array -> t
  val plan : t -> Plan.t
  val shards : t -> int
  val shard : t -> int -> sub option
  val input_size : t -> int
  val query_stats : ?pool:U.Pool.t -> t -> query -> int array * Kwsc.Stats.query
  val query : ?pool:U.Pool.t -> t -> query -> int array
  val save : ?pool:U.Pool.t -> string -> t -> unit
  val load : ?pool:U.Pool.t -> ?plan:Plan.policy * int -> string -> (t, C.error) result
end

let section_name s = Printf.sprintf "shard.%d" s

module Make (M : SURFACE) = struct
  type obj = M.obj
  type query = M.query
  type cfg = M.cfg
  type sub = M.t
  type t = { plan : Plan.t; subs : M.t option array }

  let kind = "kwsc.sharded:" ^ M.inner_kind

  let plan t = t.plan
  let shards t = Plan.shards t.plan
  let shard t s = t.subs.(s)

  let input_size t =
    Array.fold_left
      (fun acc sub -> match sub with None -> acc | Some s -> acc + M.input_size s)
      0 t.subs

  let resolve_plan plan ~n =
    let policy, k =
      match plan with
      | Some pk -> pk
      | None -> (Plan.default_policy (), Plan.env_shards ())
    in
    Plan.make ~policy ~shards:k ~n

  (* Builds run shard by shard with the full pool inside each M.build —
     per-shard structures are pool-size-independent by the PR 2
     contract, so the sharded structure is too. *)
  let build ?pool ?plan cfg objs =
    let pool = match pool with Some p -> p | None -> U.Pool.default () in
    let plan = resolve_plan plan ~n:(Array.length objs) in
    let subs =
      Array.init (Plan.shards plan) (fun s ->
          let g = Plan.global_ids plan s in
          if Array.length g = 0 then None
          else Some (M.build ~pool cfg (Array.map (fun id -> objs.(id)) g)))
    in
    { plan; subs }

  let query_stats ?pool t q =
    let pool = match pool with Some p -> p | None -> U.Pool.default () in
    let hint = M.plan_query t.subs q in
    (* scatter: one task per owning shard; empty shards don't run *)
    let per =
      U.Pool.parallel_map pool
        (fun sub ->
          match sub with None -> None | Some s -> Some (M.query_stats s hint q))
        t.subs
    in
    (* gather: merge answers through the plan's global tables, sum the
       counters in fixed shard order *)
    let k = Plan.shards t.plan in
    let globals = Array.init k (Plan.global_ids t.plan) in
    let locals = Array.make k [||] in
    let st = Kwsc.Stats.fresh_query () in
    Array.iteri
      (fun s r ->
        match r with
        | None -> ()
        | Some (ids, sub_st) ->
            locals.(s) <- ids;
            Kwsc.Stats.add_into ~into:st sub_st)
      per;
    let out = U.Ibuf.create () in
    Gather.merge_into ~globals ~locals ~cursors:(Array.make k 0) out;
    (U.Ibuf.to_array out, st)

  let query ?pool t q = fst (query_stats ?pool t q)

  (* ---------------------------------------------------------------- *)
  (* Snapshots: one checksummed section per shard.                     *)
  (* ---------------------------------------------------------------- *)

  let save ?pool path t =
    let pool = match pool with Some p -> p | None -> U.Pool.default () in
    let payloads =
      U.Pool.parallel_map pool
        (fun sub ->
          C.to_string (fun w ->
              match sub with
              | None -> C.W.bool w false
              | Some s ->
                  C.W.bool w true;
                  M.encode w s))
        t.subs
    in
    let meta =
      C.to_string (fun w ->
          Plan.encode w t.plan;
          Array.iter
            (fun sub ->
              C.W.vint w (match sub with None -> 0 | Some s -> M.input_size s))
            t.subs)
    in
    let sections =
      ("meta", meta)
      :: Array.to_list (Array.mapi (fun s p -> (section_name s, p)) payloads)
    in
    C.save_file ~path ~kind sections

  let load_sharded pool path =
    let sections = C.load_kind_exn ~path ~kind in
    let plan, sizes =
      C.decode_section sections "meta" (fun r ->
          let plan = Plan.decode r in
          let sizes = Array.init (Plan.shards plan) (fun _ -> C.R.vint r) in
          (plan, sizes))
    in
    let k = Plan.shards plan in
    let payloads =
      Array.init k (fun s ->
          let name = section_name s in
          match List.assoc_opt name sections with
          | Some p -> (name, p)
          | None -> C.corrupt (Printf.sprintf "%s: missing section %s" M.name name))
    in
    let subs =
      U.Pool.parallel_map pool
        (fun (name, _ as section) ->
          C.decode_section [ section ] name (fun r ->
              if C.R.bool r then Some (M.decode r) else None))
        payloads
    in
    (* cross-validate the decoded shards against the plan and the meta *)
    Array.iteri
      (fun s sub ->
        let cnt = Plan.count plan s in
        match sub with
        | None ->
            if cnt > 0 then
              C.corrupt
                (Printf.sprintf "%s: shard %d is empty but the plan assigns it %d objects"
                   M.name s cnt)
        | Some sb ->
            if cnt = 0 then
              C.corrupt
                (Printf.sprintf "%s: shard %d holds data but the plan assigns it none"
                   M.name s);
            if M.input_size sb <> sizes.(s) then
              C.corrupt
                (Printf.sprintf "%s: shard %d input size disagrees with the meta section"
                   M.name s);
            (match M.size with
            | Some size ->
                if size sb <> cnt then
                  C.corrupt
                    (Printf.sprintf
                       "%s: shard %d holds %d objects but the plan assigns it %d"
                       M.name s (size sb) cnt)
            | None -> ()))
      subs;
    { plan; subs }

  (* Loading an unsharded snapshot under --shards=K repartitions the
     decoded objects (reshard-on-load) — only for surfaces that can
     surrender their build input. *)
  let reshard pool plan sub =
    match M.objects with
    | None ->
        C.corrupt
          (Printf.sprintf "%s: %s snapshots cannot be resharded on load" M.name
             M.inner_kind)
    | Some objects -> build ~pool ?plan (M.config_of sub) (objects sub)

  let load ?pool ?plan path =
    let pool = match pool with Some p -> p | None -> U.Pool.default () in
    match C.peek_kind ~path with
    | Error e -> Error e
    | Ok k when k = kind -> C.run (fun () -> load_sharded pool path)
    | Ok k when k = M.inner_kind -> (
        match M.load_inner path with
        | Error e -> Error e
        | Ok sub -> C.run (fun () -> reshard pool plan sub))
    | Ok got -> Error (C.Bad_kind { expected = kind; got })
end
