type t = {
  d : int;
  n : int;
  coords : float array array; (* per dim, sorted coordinate values (with id tie-break) *)
  ids : int array array; (* per dim, object id at each rank *)
  rank_of : int array array; (* per dim, object id -> rank *)
}

let create pts =
  let n = Array.length pts in
  if n = 0 then invalid_arg "Rank_space.create: empty input";
  let d = Array.length pts.(0) in
  Array.iter (fun p -> if Array.length p <> d then invalid_arg "Rank_space.create: mixed dimensions") pts;
  let coords = Array.make d [||] and ids = Array.make d [||] and rank_of = Array.make d [||] in
  for j = 0 to d - 1 do
    let order = Array.init n (fun i -> i) in
    Array.sort
      (fun a b ->
        let c = Float.compare pts.(a).(j) pts.(b).(j) in
        if c <> 0 then c else Int.compare a b)
      order;
    ids.(j) <- order;
    coords.(j) <- Array.map (fun id -> pts.(id).(j)) order;
    let inv = Array.make n 0 in
    Array.iteri (fun r id -> inv.(id) <- r) order;
    rank_of.(j) <- inv
  done;
  { d; n; coords; ids; rank_of }

let dim t = t.d
let size t = t.n
let ranks t id = Array.init t.d (fun j -> t.rank_of.(j).(id))

let rect_to_ranks t (r : Rect.t) =
  if Rect.dim r <> t.d then invalid_arg "Rank_space.rect_to_ranks: dimension mismatch";
  let lo = Array.make t.d 0 and hi = Array.make t.d 0 in
  let empty = ref false in
  for j = 0 to t.d - 1 do
    let lo_j = r.Rect.lo.(j) and hi_j = r.Rect.hi.(j) in
    (* Sorted.{lower,upper}_bound probe with IEEE comparisons, under which
       every test against NaN is false: both would answer [n] for a NaN
       needle, making a NaN hi bound act as +infinity — a silently WRONG
       non-empty rank box. A NaN or inverted side means the rectangle
       contains nothing; answer None deterministically. *)
    if Float.is_nan lo_j || Float.is_nan hi_j || lo_j > hi_j then empty := true
    else begin
      let l = Kwsc_util.Sorted.lower_bound t.coords.(j) lo_j in
      let h = Kwsc_util.Sorted.upper_bound t.coords.(j) hi_j - 1 in
      if l > h then empty := true
      else begin
        lo.(j) <- l;
        hi.(j) <- h
      end
    end
  done;
  if !empty then None else Some (lo, hi)

let export t = (t.coords, t.ids, t.rank_of)

let import ~coords ~ids ~rank_of =
  let d = Array.length coords in
  if d = 0 then invalid_arg "Rank_space.import: zero dimensions";
  if Array.length ids <> d || Array.length rank_of <> d then
    invalid_arg "Rank_space.import: per-dimension table counts disagree";
  let n = Array.length coords.(0) in
  if n = 0 then invalid_arg "Rank_space.import: empty rank tables";
  for j = 0 to d - 1 do
    if Array.length coords.(j) <> n || Array.length ids.(j) <> n || Array.length rank_of.(j) <> n
    then invalid_arg "Rank_space.import: ragged rank tables";
    for r = 0 to n - 1 do
      let id = ids.(j).(r) in
      if id < 0 || id >= n || rank_of.(j).(id) <> r then
        invalid_arg "Rank_space.import: ids and rank_of are not inverse permutations";
      if r > 0 && Float.compare coords.(j).(r - 1) coords.(j).(r) > 0 then
        invalid_arg "Rank_space.import: coordinates not sorted"
    done
  done;
  { d; n; coords; ids; rank_of }
