type t = {
  d : int;
  n : int;
  coords : float array array; (* per dim, sorted coordinate values (with id tie-break) *)
  ids : int array array; (* per dim, object id at each rank *)
  rank_of : int array array; (* per dim, object id -> rank *)
}

let create pts =
  let n = Array.length pts in
  if n = 0 then invalid_arg "Rank_space.create: empty input";
  let d = Array.length pts.(0) in
  Array.iter (fun p -> if Array.length p <> d then invalid_arg "Rank_space.create: mixed dimensions") pts;
  let coords = Array.make d [||] and ids = Array.make d [||] and rank_of = Array.make d [||] in
  for j = 0 to d - 1 do
    let order = Array.init n (fun i -> i) in
    Array.sort
      (fun a b ->
        let c = Float.compare pts.(a).(j) pts.(b).(j) in
        if c <> 0 then c else Int.compare a b)
      order;
    ids.(j) <- order;
    coords.(j) <- Array.map (fun id -> pts.(id).(j)) order;
    let inv = Array.make n 0 in
    Array.iteri (fun r id -> inv.(id) <- r) order;
    rank_of.(j) <- inv
  done;
  { d; n; coords; ids; rank_of }

let dim t = t.d
let size t = t.n
let ranks t id = Array.init t.d (fun j -> t.rank_of.(j).(id))

let rect_to_ranks t (r : Rect.t) =
  if Rect.dim r <> t.d then invalid_arg "Rank_space.rect_to_ranks: dimension mismatch";
  let lo = Array.make t.d 0 and hi = Array.make t.d 0 in
  let empty = ref false in
  for j = 0 to t.d - 1 do
    let l = Kwsc_util.Sorted.lower_bound t.coords.(j) r.Rect.lo.(j) in
    let h = Kwsc_util.Sorted.upper_bound t.coords.(j) r.Rect.hi.(j) - 1 in
    if l > h then empty := true
    else begin
      lo.(j) <- l;
      hi.(j) <- h
    end
  done;
  if !empty then None else Some (lo, hi)
