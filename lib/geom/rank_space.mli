(** Rank-space conversion (Section 3.4): sort the objects on each dimension,
    breaking ties by object id, so that no two objects share a coordinate —
    the concrete removal of the general-position assumption. A query
    rectangle of the original space converts to a rank-space rectangle in
    O(d log n) without changing the result set. *)

type t

val create : Point.t array -> t
(** [create pts] indexes the points; [pts.(i)] is object [i]'s location.
    @raise Invalid_argument on empty input or mixed dimensions. *)

val dim : t -> int

val size : t -> int
(** Number of objects. *)

val ranks : t -> int -> int array
(** [ranks t id] is object [id]'s rank vector: [ranks t id].(j) is in
    [\[0, size-1\]] and distinct across objects on every dimension [j]. *)

val rect_to_ranks : t -> Rect.t -> (int array * int array) option
(** Convert a query rectangle to closed rank intervals [(lo, hi)];
    [None] if the rectangle contains no object coordinate on some dimension
    (the query result is then certainly empty). An object is inside the
    original rectangle iff its rank vector is inside the rank rectangle.

    Degenerate rectangles are total and deterministic: a NaN bound or an
    inverted side ([lo > hi]) on any dimension yields [None] — NaN is
    never forwarded to the binary searches, whose IEEE comparisons would
    otherwise treat a NaN hi bound as +infinity. *)

val export : t -> float array array * int array array * int array array
(** [(coords, ids, rank_of)] — the per-dimension rank tables, for
    serialization. The arrays are the live internals: read-only. *)

val import :
  coords:float array array ->
  ids:int array array ->
  rank_of:int array array ->
  t
(** Rebuild a rank space from {!export}ed tables, taking ownership of the
    arrays. Validates shape, sortedness of [coords] and that [ids] /
    [rank_of] are inverse permutations on every dimension.
    @raise Invalid_argument on any inconsistency. *)
