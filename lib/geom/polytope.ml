type t = { d : int; hs : Halfspace.t list }

let make ~dim hs =
  if dim < 1 then invalid_arg "Polytope.make: dim must be >= 1";
  List.iter
    (fun h -> if Halfspace.dim h <> dim then invalid_arg "Polytope.make: dimension mismatch")
    hs;
  { d = dim; hs }

let of_rect r = make ~dim:(Rect.dim r) (Halfspace.of_rect r)
let of_simplex s = make ~dim:(Simplex.dim s) (Simplex.halfspaces s)
let dim t = t.d
let halfspaces t = t.hs

let add t h =
  if Halfspace.dim h <> t.d then invalid_arg "Polytope.add: dimension mismatch";
  { t with hs = h :: t.hs }

let mem t p = List.for_all (fun h -> Halfspace.satisfies h p) t.hs

let is_empty ?box ~rng t = not (Seidel_lp.feasible ?box ~rng ~dim:t.d t.hs)

let intersects ?box ~rng a b =
  if a.d <> b.d then invalid_arg "Polytope.intersects: dimension mismatch";
  Seidel_lp.feasible ?box ~rng ~dim:a.d (a.hs @ b.hs)

let escape_tol = 1e-7

let covered_by ?box ~rng cell q =
  if cell.d <> q.d then invalid_arg "Polytope.covered_by: dimension mismatch";
  List.for_all
    (fun h ->
      match Seidel_lp.max_value ?box ~rng ~dim:cell.d cell.hs h.Halfspace.coeffs with
      | None -> true (* empty cell is covered by anything *)
      | Some v -> v <= h.Halfspace.bound +. (escape_tol *. (1.0 +. abs_float h.Halfspace.bound)))
    q.hs

type relation = Disjoint | Covered | Crossing

let classify ?box ~rng cell q =
  if not (intersects ?box ~rng cell q) then Disjoint
  else if covered_by ?box ~rng cell q then Covered
  else Crossing

(* --- 2D vertex enumeration ------------------------------------------- *)

let box_halfspaces_2d box =
  Halfspace.of_rect (Rect.make [| -.box; -.box |] [| box; box |])

let vertices_2d ?(box = 1e9) t =
  if t.d <> 2 then invalid_arg "Polytope.vertices_2d: dimension must be 2";
  let hs = Array.of_list (t.hs @ box_halfspaces_2d box) in
  let n = Array.length hs in
  let verts = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let a1 = hs.(i).Halfspace.coeffs and b1 = hs.(i).Halfspace.bound in
      let a2 = hs.(j).Halfspace.coeffs and b2 = hs.(j).Halfspace.bound in
      match Linalg.solve [| a1; a2 |] [| b1; b2 |] with
      | None -> ()
      | Some p ->
          let inside =
            Array.for_all
              (fun h -> Halfspace.eval h p <= escape_tol *. (1.0 +. abs_float h.Halfspace.bound))
              hs
          in
          if inside then verts := p :: !verts
    done
  done;
  (* dedup near-identical vertices *)
  let close p q = Point.linf_dist p q <= 1e-6 *. (1.0 +. Point.linf_dist p [| 0.0; 0.0 |]) in
  let distinct =
    List.fold_left (fun acc p -> if List.exists (close p) acc then acc else p :: acc) [] !verts
  in
  match distinct with
  | [] | [ _ ] | [ _; _ ] -> distinct
  | _ ->
      let cx = List.fold_left (fun s p -> s +. p.(0)) 0.0 distinct /. float_of_int (List.length distinct) in
      let cy = List.fold_left (fun s p -> s +. p.(1)) 0.0 distinct /. float_of_int (List.length distinct) in
      List.sort
        (fun p q -> Float.compare (atan2 (p.(1) -. cy) (p.(0) -. cx)) (atan2 (q.(1) -. cy) (q.(0) -. cx)))
        distinct

let triangulate_2d ?box t =
  match vertices_2d ?box t with
  | [] | [ _ ] | [ _; _ ] -> []
  | v0 :: rest ->
      let rec fans acc = function
        | a :: (b :: _ as tl) ->
            let tri =
              try Some (Simplex.of_vertices [| v0; a; b |]) with Invalid_argument _ -> None
            in
            let acc = match tri with Some s -> s :: acc | None -> acc in
            fans acc tl
        | _ -> acc
      in
      List.rev (fans [] rest)
