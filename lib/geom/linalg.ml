let dot a b =
  if Array.length a <> Array.length b then invalid_arg "Linalg.dot: length mismatch";
  let s = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    s := !s +. (a.(i) *. b.(i))
  done;
  !s

let pivot_threshold = 1e-12

let solve a b =
  let n = Array.length a in
  if n = 0 then invalid_arg "Linalg.solve: empty system";
  let m = Array.map Array.copy a in
  let v = Array.copy b in
  let singular = ref false in
  (try
     for col = 0 to n - 1 do
       (* partial pivoting *)
       let best = ref col in
       for r = col + 1 to n - 1 do
         if abs_float m.(r).(col) > abs_float m.(!best).(col) then best := r
       done;
       if abs_float m.(!best).(col) < pivot_threshold then begin
         singular := true;
         raise Exit
       end;
       if !best <> col then begin
         let tmp = m.(col) in
         m.(col) <- m.(!best);
         m.(!best) <- tmp;
         let tv = v.(col) in
         v.(col) <- v.(!best);
         v.(!best) <- tv
       end;
       for r = col + 1 to n - 1 do
         let f = m.(r).(col) /. m.(col).(col) in
         if not (Float.equal f 0.0) then begin
           for c = col to n - 1 do
             m.(r).(c) <- m.(r).(c) -. (f *. m.(col).(c))
           done;
           v.(r) <- v.(r) -. (f *. v.(col))
         end
       done
     done
   with Exit -> ());
  if !singular then None
  else begin
    let x = Array.make n 0.0 in
    for r = n - 1 downto 0 do
      let s = ref v.(r) in
      for c = r + 1 to n - 1 do
        s := !s -. (m.(r).(c) *. x.(c))
      done;
      x.(r) <- !s /. m.(r).(r)
    done;
    Some x
  end

let det a =
  let n = Array.length a in
  let m = Array.map Array.copy a in
  let sign = ref 1.0 in
  let result = ref 1.0 in
  (try
     for col = 0 to n - 1 do
       let best = ref col in
       for r = col + 1 to n - 1 do
         if abs_float m.(r).(col) > abs_float m.(!best).(col) then best := r
       done;
       if abs_float m.(!best).(col) < pivot_threshold then begin
         result := 0.0;
         raise Exit
       end;
       if !best <> col then begin
         let tmp = m.(col) in
         m.(col) <- m.(!best);
         m.(!best) <- tmp;
         sign := -. !sign
       end;
       result := !result *. m.(col).(col);
       for r = col + 1 to n - 1 do
         let f = m.(r).(col) /. m.(col).(col) in
         for c = col to n - 1 do
           m.(r).(c) <- m.(r).(c) -. (f *. m.(col).(c))
         done
       done
     done
   with Exit -> ());
  !result *. !sign
