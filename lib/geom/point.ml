type t = float array

let dim = Array.length

let check_dims p q = if Array.length p <> Array.length q then invalid_arg "Point: dimension mismatch"

let linf_dist p q =
  check_dims p q;
  let m = ref 0.0 in
  for i = 0 to Array.length p - 1 do
    m := Float.max !m (abs_float (p.(i) -. q.(i)))
  done;
  !m

let l2_dist_sq p q =
  check_dims p q;
  let s = ref 0.0 in
  for i = 0 to Array.length p - 1 do
    let d = p.(i) -. q.(i) in
    s := !s +. (d *. d)
  done;
  !s

let l2_dist p q = sqrt (l2_dist_sq p q)

let equal p q = Array.length p = Array.length q && Array.for_all2 Float.equal p q

let compare_lex p q =
  let np = Array.length p and nq = Array.length q in
  let c = Int.compare np nq in
  if c <> 0 then c
  else begin
    let rec go i =
      if i = np then 0
      else
        let c = Float.compare p.(i) q.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0
  end

let to_string p =
  "(" ^ String.concat ", " (Array.to_list (Array.map (fun x -> Printf.sprintf "%g" x) p)) ^ ")"
