[@@@kwsc.domain_safe]

open Kwsc_geom
module Doc = Kwsc_invindex.Doc

type tree =
  | Base of Orp_kw.t * int array (* index on the active set + local-to-global ids *)
  | Cut of cut_node

and cut_node = {
  sigma : float * float; (* x-extent of the active set *)
  level : int;
  fanout : int;
  weight : int;
  pivots : int array; (* global ids *)
  secondary : tree; (* (d-1)-dim index on the active set, x ignored *)
  children : cut_node array;
}

type t = {
  root : tree;
  pts : Point.t array;
  docs : Doc.t array;
  d : int;
  k_ : int;
  n : int;
}

(* f_u = 2 * 2^(k^level), equation (10), clamped so the shift stays sane;
   any fanout beyond the active-set weight behaves identically (every
   object becomes a pivot). *)
let fanout_at ~k level =
  let rec kpow acc i = if i = 0 || acc > 40 then min acc 40 else kpow (acc * k) (i - 1) in
  let e = min 40 (kpow 1 level) in
  2 * (1 lsl e)

(* Below this active-set weight the cut/secondary recursion stays
   sequential even under a parallel pool. *)
let par_cutoff = 4096

let build ?leaf_weight ?pool ~k objs =
  if Array.length objs = 0 then invalid_arg "Dimred.build: empty input";
  if k < 2 then invalid_arg "Dimred.build: k must be >= 2";
  let pool = match pool with Some p -> p | None -> Kwsc_util.Pool.default () in
  let pts = Array.map fst objs in
  let docs = Array.map snd objs in
  let d = Array.length pts.(0) in
  Array.iter (fun p -> if Array.length p <> d then invalid_arg "Dimred.build: mixed dimensions") pts;
  let n = Array.fold_left (fun acc doc -> acc + Doc.size doc) 0 docs in
  (* [subset]: global ids; [proj_from]: how many leading dimensions have
     been stripped for this subtree *)
  let rec make_tree subset proj_from dims =
    if dims <= 2 then begin
      let local =
        Array.map
          (fun id -> (Array.sub pts.(id) proj_from dims, docs.(id)))
          subset
      in
      Base (Orp_kw.build ?leaf_weight ~pool ~k local, subset)
    end
    else Cut (make_cut subset proj_from dims 0)
  and make_cut subset proj_from dims level =
    let x id = pts.(id).(proj_from) in
    let sorted = Array.copy subset in
    Array.sort
      (fun a b ->
        let c = Float.compare (x a) (x b) in
        if c <> 0 then c else Int.compare a b)
      sorted;
    let w_total = Array.fold_left (fun acc id -> acc + Doc.size docs.(id)) 0 sorted in
    let f = fanout_at ~k level in
    let target = float_of_int w_total /. float_of_int f in
    (* footnote 13: greedy packing, the object that overflows a group
       becomes the separating pivot *)
    let groups = ref [] and pivots = ref [] in
    let cur = ref [] and cur_w = ref 0 in
    Array.iter
      (fun id ->
        let w = Doc.size docs.(id) in
        if float_of_int (!cur_w + w) <= target +. 1e-9 then begin
          cur := id :: !cur;
          cur_w := !cur_w + w
        end
        else begin
          groups := Array.of_list (List.rev !cur) :: !groups;
          pivots := id :: !pivots;
          cur := [];
          cur_w := 0
        end)
      sorted;
    groups := Array.of_list (List.rev !cur) :: !groups;
    let groups = List.rev !groups and pivots = Array.of_list (List.rev !pivots) in
    let nonempty =
      Array.of_list (List.filter (fun g -> Array.length g > 0) groups)
    in
    let par = w_total >= par_cutoff && not (Kwsc_util.Pool.sequential pool) in
    (* The secondary and every child act on data fully materialized above:
       they are independent tasks, and forking them changes nothing about
       the structure produced (each task is a pure function of its group). *)
    let build_children () =
      if par && Array.length nonempty >= 2 then
        Kwsc_util.Pool.fork_join_array pool
          (Array.map (fun g () -> make_cut g proj_from dims (level + 1)) nonempty)
      else Array.map (fun g -> make_cut g proj_from dims (level + 1)) nonempty
    in
    let build_secondary () = make_tree subset (proj_from + 1) (dims - 1) in
    let children, secondary =
      if par then Kwsc_util.Pool.fork_join pool build_children build_secondary
      else
        let c = build_children () in
        (c, build_secondary ())
    in
    {
      sigma = (x sorted.(0), x sorted.(Array.length sorted - 1));
      level;
      fanout = f;
      weight = w_total;
      pivots;
      secondary;
      children;
    }
  in
  let all = Array.init (Array.length objs) (fun i -> i) in
  { root = make_tree all 0 d; pts; docs; d; k_ = k; n }

let k t = t.k_
let dim t = t.d
let input_size t = t.n

type profile = {
  type1 : int;
  type2 : int;
  type2_by_level : int array;
  pivot_checked : int;
  work : int; (* total objects/nodes examined, secondaries included *)
}

(* Strip the leading [from] dimensions of a query rectangle. *)
let drop_dims (q : Rect.t) from =
  let d = Rect.dim q in
  Rect.make (Array.sub q.Rect.lo from (d - from)) (Array.sub q.Rect.hi from (d - from))

exception Limit_reached

let query_profile ?limit t q ws =
  if Rect.dim q <> t.d then invalid_arg "Dimred.query: dimension mismatch";
  (match limit with
  | Some l when l < 1 -> invalid_arg "Dimred.query: limit must be >= 1"
  | _ -> ());
  let type1 = ref 0 and type2 = ref 0 and pivot_checked = ref 0 in
  let inner_work = ref 0 in
  let n_found = ref 0 in
  let note_found () =
    incr n_found;
    match limit with Some l when !n_found >= l -> raise Limit_reached | _ -> ()
  in
  let t2l : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let out = ref [] in
  (* enforce the uniform Table-1 arity contract here too: Base nodes would
     validate eventually, but a pure type-2 path (pivot scans only) used
     to accept any keyword multiset silently *)
  let ws_sorted = Transform.validate_keyword_arity ~k:t.k_ ws in
  let full_match id =
    Rect.contains_point q t.pts.(id) && Array.for_all (fun w -> Doc.mem t.docs.(id) w) ws_sorted
  in
  let rec q_tree tree (q' : Rect.t) =
    match tree with
    | Base (orp, ids) ->
        let found, st = Orp_kw.query_stats ?limit orp q' ws in
        inner_work := !inner_work + Stats.work st;
        Array.iter
          (fun local ->
            out := ids.(local) :: !out;
            note_found ())
          found
    | Cut node -> q_cut node q'
  and q_cut node (q' : Rect.t) =
    let qlo = q'.Rect.lo.(0) and qhi = q'.Rect.hi.(0) in
    let slo, shi = node.sigma in
    if shi < qlo || slo > qhi then () (* sigma disjoint from q[1]: skip *)
    else if qlo <= slo && shi <= qhi then begin
      (* type 1: answer entirely through the secondary, x unconstrained *)
      incr type1;
      q_tree node.secondary (drop_dims q' 1)
    end
    else begin
      (* type 2: scan pivots, recurse into touching children *)
      incr type2;
      Hashtbl.replace t2l node.level (1 + Option.value ~default:0 (Hashtbl.find_opt t2l node.level));
      Array.iter
        (fun id ->
          incr pivot_checked;
          if full_match id then begin
            out := id :: !out;
            note_found ()
          end)
        node.pivots;
      Array.iter (fun child -> q_cut child q') node.children
    end
  in
  (try q_tree t.root q with Limit_reached -> ());
  let ids = Kwsc_util.Sorted.sort_dedup !out in
  let max_level = Hashtbl.fold (fun l _ acc -> max acc l) t2l (-1) in
  let by_level = Array.make (max_level + 1) 0 in
  Hashtbl.iter (fun l c -> by_level.(l) <- c) t2l;
  ( ids,
    {
      type1 = !type1;
      type2 = !type2;
      type2_by_level = by_level;
      pivot_checked = !pivot_checked;
      work = !inner_work + !pivot_checked + !type1 + !type2;
    } )

let query ?limit t q ws = fst (query_profile ?limit t q ws)

let empty_profile =
  { type1 = 0; type2 = 0; type2_by_level = [||]; pivot_checked = 0; work = 0 }

(* Element-wise sum; [type2_by_level] arrays of different heights pad with
   zeros. Integer addition is associative and commutative, so folding the
   per-shard profiles in any order equals the sequential accumulation. *)
let merge_profile a b =
  let la = Array.length a.type2_by_level and lb = Array.length b.type2_by_level in
  let by_level =
    Array.init (max la lb) (fun i ->
        (if i < la then a.type2_by_level.(i) else 0)
        + if i < lb then b.type2_by_level.(i) else 0)
  in
  {
    type1 = a.type1 + b.type1;
    type2 = a.type2 + b.type2;
    type2_by_level = by_level;
    pivot_checked = a.pivot_checked + b.pivot_checked;
    work = a.work + b.work;
  }

(* The index is immutable after [build] and [query_profile] keeps all its
   scratch state local, so shards race on nothing: slot [i] of the output
   is exactly [query ?limit t q ws] for [qs.(i)]. *)
let query_batch ?pool ?limit t qs =
  let pool = match pool with Some p -> p | None -> Kwsc_util.Pool.default () in
  let n = Array.length qs in
  let out = Array.make n [||] in
  if n = 0 then (out, empty_profile)
  else begin
    let shards = max 1 (min n (Kwsc_util.Pool.size pool)) in
    let accs = Array.make shards empty_profile in
    Kwsc_util.Pool.parallel_for pool ~lo:0 ~hi:shards (fun s ->
        let lo = s * n / shards and hi = (s + 1) * n / shards in
        for i = lo to hi - 1 do
          let q, ws = qs.(i) in
          let ids, p = query_profile ?limit t q ws in
          out.(i) <- ids;
          accs.(s) <- merge_profile accs.(s) p
        done);
    (out, Array.fold_left merge_profile empty_profile accs)
  end

let cut_stats t f =
  let rec go = function Base _ -> () | Cut node -> go_cut node
  and go_cut node =
    f ~level:node.level ~fanout:node.fanout ~weight:node.weight
      ~children:(Array.length node.children) ~pivots:(Array.length node.pivots);
    (* the secondary of a cut node may itself contain cut trees *)
    go node.secondary;
    Array.iter go_cut node.children
  in
  go t.root

module I = Kwsc_util.Invariant

let check_invariants t =
  let bad = ref [] in
  let push x = bad := x :: !bad in
  let vf locus fmt = I.vf ~structure:"Dimred" ~locus fmt in
  let weight_of ids = List.fold_left (fun acc id -> acc + Doc.size t.docs.(id)) 0 ids in
  let m = Array.length t.pts in
  (* Walk a (sub)tree; [proj_from] leading dimensions are stripped, [dims]
     remain. Returns the active set as a list of global ids. *)
  let rec check_tree tree locus proj_from dims =
    match tree with
    | Base (orp, ids) ->
        if dims > 2 then
          push (vf locus "Base (Theorem-1) node at dims=%d; expected a Cut node for dims > 2" dims);
        let seen = Hashtbl.create (max 16 (Array.length ids)) in
        Array.iter
          (fun id ->
            if id < 0 || id >= m then push (vf locus "object id %d outside [0,%d)" id m)
            else if Hashtbl.mem seen id then push (vf locus "duplicate object id %d" id)
            else Hashtbl.add seen id ())
          ids;
        let ids = Array.to_list ids in
        let w = weight_of ids in
        if Orp_kw.input_size orp <> w then
          push
            (vf locus "secondary index input size %d <> active-set weight %d"
               (Orp_kw.input_size orp) w);
        ids
    | Cut node ->
        if dims <= 2 then
          push (vf locus "Cut node at dims=%d; expected a Base node for dims <= 2" dims);
        check_cut node locus proj_from dims 0
  and check_cut node locus proj_from dims expected_level =
    let x id = t.pts.(id).(proj_from) in
    if node.level <> expected_level then
      push (vf locus "level %d, expected %d" node.level expected_level);
    let expected_fanout = fanout_at ~k:t.k_ node.level in
    if node.fanout <> expected_fanout then
      push
        (vf locus "fanout %d <> f_u = 2*2^(k^level) = %d (equation 10)" node.fanout
           expected_fanout);
    (* active set = pivots + children's active sets *)
    let child_active =
      Array.to_list
        (Array.mapi
           (fun i child ->
             check_cut child (Printf.sprintf "%s.%d" locus i) proj_from dims (node.level + 1))
           node.children)
    in
    let active = List.concat (Array.to_list node.pivots :: child_active) in
    let w = weight_of active in
    if node.weight <> w then
      push (vf locus "stored weight %d <> active-set weight %d" node.weight w);
    if Array.length node.children > node.fanout then
      push
        (vf locus "%d children exceed the fanout bound %d" (Array.length node.children)
           node.fanout);
    (* f-balanced cut (footnote 13): no child may exceed W/f *)
    let target = float_of_int node.weight /. float_of_int node.fanout in
    Array.iteri
      (fun i child ->
        if float_of_int child.weight > target +. 1e-6 then
          push
            (vf locus "child %d weight %d exceeds W/f = %g (f-balanced cut)" i child.weight
               target))
      node.children;
    (* sigma is the exact x-extent of the active set *)
    (match active with
    | [] -> push (vf locus "empty active set")
    | id0 :: rest ->
        let xlo = ref (x id0) and xhi = ref (x id0) in
        List.iter
          (fun id ->
            xlo := Float.min !xlo (x id);
            xhi := Float.max !xhi (x id))
          rest;
        let slo, shi = node.sigma in
        if not (Float.equal slo !xlo && Float.equal shi !xhi) then
          push
            (vf locus "sigma [%g, %g] <> active x-extent [%g, %g]" slo shi !xlo !xhi));
    (* children partition the x-axis in order, separated by the pivots *)
    let last_hi = ref neg_infinity in
    Array.iteri
      (fun i child ->
        let clo, chi = child.sigma in
        if clo < !last_hi then
          push (vf locus "child %d x-range [%g, %g] overlaps its left sibling" i clo chi);
        last_hi := chi)
      node.children;
    (* type-1 discipline: the secondary answers the whole active set with
       the first remaining dimension projected away *)
    let secondary_active =
      check_tree node.secondary (locus ^ ".sec") (proj_from + 1) (dims - 1)
    in
    let sorted_ids l = Kwsc_util.Sorted.sort_dedup l in
    let same_ids a b = Array.length a = Array.length b && Array.for_all2 Int.equal a b in
    if not (same_ids (sorted_ids secondary_active) (sorted_ids active)) then
      push
        (vf locus "secondary active set (%d objects) differs from the node's (%d objects)"
           (List.length secondary_active) (List.length active));
    active
  in
  let active = check_tree t.root "root" 0 t.d in
  let root_sorted = Kwsc_util.Sorted.sort_dedup active in
  if Array.length root_sorted <> m
     || not (Array.for_all2 Int.equal root_sorted (Array.init m Fun.id))
  then push (vf "root" "active set is not the full object set [0,%d)" m);
  if weight_of active <> t.n then
    push (vf "root" "stored input size %d <> total document weight %d" t.n (weight_of active));
  List.rev !bad

(* Self-audit every build when KWSC_AUDIT=1 (Invariant.enabled). *)
let build ?leaf_weight ?pool ~k objs =
  let t = build ?leaf_weight ?pool ~k objs in
  I.auto_check (fun () -> check_invariants t);
  t

let space_words t =
  let rec words = function
    | Base (orp, ids) -> (Orp_kw.space_stats orp).Stats.total_words + Array.length ids
    | Cut node ->
        let own = Array.length node.pivots + 4 in
        Array.fold_left
          (fun acc c -> acc + words (Cut c))
          (own + words node.secondary)
          node.children
  in
  words t.root

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

module C = Kwsc_snapshot.Codec

let encode w t =
  C.W.i64 w t.d;
  C.W.i64 w t.k_;
  C.W.i64 w t.n;
  C.W.float_array2 w t.pts;
  C.W.array w (fun w (doc : Doc.t) -> C.W.int_array w (doc :> int array)) t.docs;
  let rec tree w = function
    | Base (orp, ids) ->
        C.W.byte w 0;
        Orp_kw.encode w orp;
        C.W.int_array w ids
    | Cut node ->
        C.W.byte w 1;
        cut w node
  and cut w node =
    let slo, shi = node.sigma in
    C.W.f64 w slo;
    C.W.f64 w shi;
    C.W.i64 w node.level;
    C.W.i64 w node.fanout;
    C.W.i64 w node.weight;
    C.W.int_array w node.pivots;
    tree w node.secondary;
    C.W.array w cut node.children
  in
  tree w t.root

let decode r =
  let d = C.R.i64 r in
  let k_ = C.R.i64 r in
  let n = C.R.i64 r in
  let pts = C.R.float_array2 r in
  let docs = C.R.array r (fun r -> Doc.of_array (C.R.int_array r)) in
  let rec tree r =
    match C.R.byte r with
    | 0 ->
        let orp = Orp_kw.decode r in
        let ids = C.R.int_array r in
        Base (orp, ids)
    | 1 -> Cut (cut r)
    | tag -> C.corrupt (Printf.sprintf "Dimred: unknown tree tag %d" tag)
  and cut r =
    let slo = C.R.f64 r in
    let shi = C.R.f64 r in
    let level = C.R.i64 r in
    let fanout = C.R.i64 r in
    let weight = C.R.i64 r in
    let pivots = C.R.int_array r in
    let secondary = tree r in
    let children = C.R.array r cut in
    { sigma = (slo, shi); level; fanout; weight; pivots; secondary; children }
  in
  let root = tree r in
  if k_ < 2 then C.corrupt "Dimred: k must be >= 2";
  if Array.length pts <> Array.length docs then
    C.corrupt "Dimred: points and documents disagree in length";
  Array.iter
    (fun p -> if Array.length p <> d then C.corrupt "Dimred: point with the wrong dimension")
    pts;
  let t = { root; pts; docs; d; k_; n } in
  I.auto_check (fun () -> check_invariants t);
  t
