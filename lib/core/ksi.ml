[@@@kwsc.domain_safe]

type t = { inner : (unit, unit) Transform.t }

let of_docs ?leaf_weight ?tau_exponent ?use_bits ?pool ~k docs =
  let weights = Array.map Kwsc_invindex.Doc.size docs in
  let split ~depth:_ () ids =
    let sorted = Array.copy ids in
    Array.sort Int.compare sorted;
    let total = Array.fold_left (fun acc id -> acc + weights.(id)) 0 sorted in
    let j = ref 0 and acc = ref 0 in
    (try
       Array.iteri
         (fun i id ->
           acc := !acc + weights.(id);
           if 2 * !acc >= total then begin
             j := i;
             raise Exit
           end)
         sorted
     with Exit -> ());
    let j = !j in
    let left = Array.sub sorted 0 j in
    let right = Array.sub sorted (j + 1) (Array.length sorted - j - 1) in
    ([| ((), left); ((), right) |], [| sorted.(j) |])
  in
  let space =
    {
      Transform.root_cell = ();
      split;
      classify = (fun () () -> Transform.Covered);
      contains = (fun () _ -> true);
    }
  in
  { inner = Transform.build ?leaf_weight ?tau_exponent ?use_bits ?pool ~k ~space docs }

let of_instance ?leaf_weight ~k inst =
  let docs, elements = Kwsc_invindex.Ksi_instance.to_keyword_dataset inst in
  (of_docs ?leaf_weight ~k docs, elements)

let k t = Transform.k t.inner
let input_size t = Transform.input_size t.inner
let query_stats ?limit t ws = Transform.query_stats ?limit t.inner () ws
let query ?limit t ws = fst (query_stats ?limit t ws)
let query_batch ?pool ?limit t wss = Batch.run ?pool (fun ws -> query_stats ?limit t ws) wss
let emptiness t ws = Array.length (query ~limit:1 t ws) = 0
let space_stats t = Transform.space_stats t.inner
let fold_nodes t ~init ~f = Transform.fold_nodes t.inner ~init ~f
