(** Simplex Reporting with Keywords (Theorem 12, Appendix D): the
    transformation framework instantiated with a partition tree whose cells
    are convex polytopes.

    Queries accept any convex region given as halfspaces — a simplex is the
    special case with d+1 facets, and an LC-KW query region (conjunction of
    s linear constraints) is queried directly without the simplex
    decomposition (the decomposition is an analysis device; see {!Lc_kw}
    for the 2-D decomposition path as well).

    The underlying splitter is the BSP partition tree of DESIGN.md
    substitution 1 (Chan's optimal partition tree is not implementable in
    practice); the keyword-side guarantees of the theorem are preserved. *)

open Kwsc_geom

type t

val build :
  ?leaf_weight:int ->
  ?seed:int ->
  ?pool:Kwsc_util.Pool.t ->
  k:int ->
  (Point.t * Kwsc_invindex.Doc.t) array ->
  t
(** @raise Invalid_argument if [k < 2] or the input is empty. The BSP
    direction palette is fixed by [seed] before any parallel work starts,
    so the structure is identical at every [pool] size. *)

val k : t -> int
val dim : t -> int
val input_size : t -> int

val query_polytope : ?limit:int -> t -> Polytope.t -> int array -> int array
(** Sorted ids of objects inside the convex region whose documents contain
    all [k] keywords. [ws] must hold exactly [k t] distinct keywords (the
    canonical {!Transform.validate_keyword_arity} contract); keywords
    absent from every document are legal and yield an empty answer. *)

val query_simplex : ?limit:int -> t -> Simplex.t -> int array -> int array
(** SP-KW proper: report inside a closed d-simplex. *)

val query_halfspaces : ?limit:int -> t -> Halfspace.t list -> int array -> int array
(** LC-KW form: conjunction of linear constraints. *)

val query_stats : ?limit:int -> t -> Polytope.t -> int array -> int array * Stats.query

val query_batch :
  ?pool:Kwsc_util.Pool.t ->
  ?limit:int ->
  t ->
  (Polytope.t * int array) array ->
  int array array * Stats.query
(** Evaluate a query stream, sharded across the [pool] with per-shard
    counters merged at the end — the {!Batch.run} equivalence contract.
    Classification is the exact box-vs-halfspace test (no LP, no rng), so
    the query path is read-only and race-free. *)

val space_stats : t -> Stats.space
val fold_nodes : t -> init:'a -> f:('a -> Transform.node_view -> 'a) -> 'a

val kind : string
(** Snapshot kind tag, ["kwsc.sp-kw"]. *)

val encode : Kwsc_snapshot.Codec.W.t -> t -> unit
val decode : Kwsc_snapshot.Codec.R.t -> t
(** Raw codec, for embedding inside other snapshots ({!Srp_kw}, {!Lc_kw}).
    [decode] raises [Kwsc_snapshot.Codec.Corrupt]. *)

val save : string -> t -> unit
val load : string -> (t, Kwsc_snapshot.Codec.error) result
(** Durable snapshot round trip; see {!Orp_kw.save} / {!Orp_kw.load} for
    the shared contract (answer- and work-counter-identical, typed errors
    on corrupt input). *)
