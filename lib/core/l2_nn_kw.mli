(** L2 Nearest Neighbor with Keywords (Corollary 7): the t Euclidean-nearest
    matching objects, for points with integer coordinates (the N^d domain
    assumption of the problem statement — squared distances are then exact
    integers and binary-searchable).

    Reduction (Appendix F): binary search over the integer squared radii,
    each probe an output-capped SRP-KW query (itself LC-KW through the
    lifting map). *)

open Kwsc_geom

type t

val build : ?leaf_weight:int -> ?seed:int -> k:int -> (Point.t * Kwsc_invindex.Doc.t) array -> t
(** Coordinates must be non-negative integers (stored as floats).
    @raise Invalid_argument otherwise. *)

val k : t -> int
val dim : t -> int
val input_size : t -> int

val query : t -> Point.t -> t':int -> int array -> (int * float) array
(** [query t q ~t' ws]: the [t'] nearest matching objects as
    (id, L2 distance), increasing distance, ties by id; fewer iff fewer
    match. [q] must have integer coordinates. [ws] must hold exactly
    [k t] distinct keywords (the canonical
    {!Transform.validate_keyword_arity} contract); keywords absent from
    every document are legal and yield an empty answer. *)

val query_count : t -> Point.t -> t':int -> int array -> (int * float) array * int
(** As [query] plus the number of SRP-KW probes (the O(log N) factor). *)

val srp_index : t -> Srp_kw.t

val kind : string
(** Snapshot kind tag, ["kwsc.l2-nn-kw"]. *)

val save : string -> t -> unit
val load : string -> (t, Kwsc_snapshot.Codec.error) result
(** Durable snapshot round trip; see {!Orp_kw.save} / {!Orp_kw.load} for
    the shared contract. *)
