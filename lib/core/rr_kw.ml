[@@@kwsc.domain_safe]

open Kwsc_geom

type engine = E_kd of Orp_kw.t | E_dimred of Dimred.t | E_lc of Lc_kw.t

type t = { inner : engine; d : int }

let lift_objects rects d =
  Array.map
    (fun ((r : Rect.t), doc) ->
      if Rect.dim r <> d then invalid_arg "Rr_kw.build: mixed dimensions";
      let p = Array.make (2 * d) 0.0 in
      for i = 0 to d - 1 do
        if Float.equal r.Rect.lo.(i) neg_infinity || Float.equal r.Rect.hi.(i) infinity then
          invalid_arg "Rr_kw.build: data rectangles must be bounded";
        p.(2 * i) <- r.Rect.lo.(i);
        p.((2 * i) + 1) <- r.Rect.hi.(i)
      done;
      (p, doc))
    rects

let build ?leaf_weight ?(engine = `Auto) ?pool ~k rects =
  if Array.length rects = 0 then invalid_arg "Rr_kw.build: empty input";
  let d = Rect.dim (fst rects.(0)) in
  let objs = lift_objects rects d in
  let engine =
    match engine with
    | `Kd -> `Kd
    | `Dimred -> `Dimred
    | `Lc -> `Lc
    | `Auto -> if 2 * d <= 2 then `Kd else `Dimred
  in
  let inner =
    match engine with
    | `Kd -> E_kd (Orp_kw.build ?leaf_weight ?pool ~k objs)
    | `Dimred -> E_dimred (Dimred.build ?leaf_weight ?pool ~k objs)
    | `Lc -> E_lc (Lc_kw.build ?leaf_weight ?pool ~k objs)
  in
  { inner; d }

let k t = match t.inner with E_kd i -> Orp_kw.k i | E_dimred i -> Dimred.k i | E_lc i -> Lc_kw.k i
let dim t = t.d

let input_size t =
  match t.inner with
  | E_kd i -> Orp_kw.input_size i
  | E_dimred i -> Dimred.input_size i
  | E_lc i -> Lc_kw.input_size i

(* [a,b] intersects [x,y]  <=>  a <= y  and  b >= x. *)
let lift_query t (q : Rect.t) =
  if Rect.dim q <> t.d then invalid_arg "Rr_kw.query: dimension mismatch";
  let lo = Array.make (2 * t.d) neg_infinity and hi = Array.make (2 * t.d) infinity in
  for i = 0 to t.d - 1 do
    hi.(2 * i) <- q.Rect.hi.(i);
    lo.((2 * i) + 1) <- q.Rect.lo.(i)
  done;
  Rect.make lo hi

let query_stats ?limit t q ws =
  let lifted = lift_query t q in
  match t.inner with
  | E_kd i -> Orp_kw.query_stats ?limit i lifted ws
  | E_lc i -> Lc_kw.query_stats ?limit i (Halfspace.of_rect lifted) ws
  | E_dimred i ->
      let ids, profile = Dimred.query_profile ?limit i lifted ws in
      let st = Stats.fresh_query () in
      st.Stats.pivot_checked <- profile.Dimred.pivot_checked;
      st.Stats.nodes_visited <- profile.Dimred.type1 + profile.Dimred.type2;
      st.Stats.reported <- Array.length ids;
      (ids, st)

let query ?limit t q ws = fst (query_stats ?limit t q ws)

let query_batch ?pool ?limit t qs =
  Batch.run ?pool (fun (q, ws) -> query_stats ?limit t q ws) qs

let space_stats t =
  match t.inner with
  | E_kd i -> Orp_kw.space_stats i
  | E_lc i -> Lc_kw.space_stats i
  | E_dimred i ->
      {
        Stats.nodes = 0;
        max_depth = 0;
        max_pivot = 0;
        pivot_words = 0;
        materialized_words = 0;
        bitset_words = 0;
        table_words = 0;
        total_words = Dimred.space_words i;
      }

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

module C = Kwsc_snapshot.Codec

let kind = "kwsc.rr-kw"

let encode w t =
  C.W.i64 w t.d;
  match t.inner with
  | E_kd i ->
      C.W.byte w 0;
      Orp_kw.encode w i
  | E_dimred i ->
      C.W.byte w 1;
      Dimred.encode w i
  | E_lc i ->
      C.W.byte w 2;
      Lc_kw.encode w i

let decode r =
  let d = C.R.i64 r in
  if d < 1 then C.corrupt "Rr_kw: dimension must be >= 1";
  let inner =
    match C.R.byte r with
    | 0 -> E_kd (Orp_kw.decode r)
    | 1 -> E_dimred (Dimred.decode r)
    | 2 -> E_lc (Lc_kw.decode r)
    | tag -> C.corrupt (Printf.sprintf "Rr_kw: unknown engine tag %d" tag)
  in
  let t = { inner; d } in
  let inner_d =
    match inner with
    | E_kd i -> Orp_kw.dim i
    | E_dimred i -> Dimred.dim i
    | E_lc i -> Lc_kw.dim i
  in
  if inner_d <> 2 * d then C.corrupt "Rr_kw: inner index does not live in dimension 2d";
  t

let save path t =
  C.save_file ~path ~kind
    [
      ("meta", C.to_string (fun w ->
           C.W.i64 w (k t);
           C.W.i64 w t.d;
           C.W.i64 w (input_size t)));
      ("index", C.to_string (fun w -> encode w t));
    ]

let load path =
  C.run (fun () ->
      let sections = C.load_kind_exn ~path ~kind in
      let mk, md, mn =
        C.decode_section sections "meta" (fun r ->
            let mk = C.R.i64 r in
            let md = C.R.i64 r in
            let mn = C.R.i64 r in
            (mk, md, mn))
      in
      let t = C.decode_section sections "index" decode in
      if k t <> mk || t.d <> md || input_size t <> mn then
        C.corrupt "Rr_kw: meta section disagrees with the decoded index";
      t)
