(** Spherical Range Reporting with Keywords (Corollary 6): report the
    objects within Euclidean distance r of a query point that contain all
    keywords ("boolean range query with keywords" [22]).

    Reduction (Appendix F): lift points onto the paraboloid in R^{d+1};
    the sphere becomes one halfspace there, so one (d+1)-dimensional LC-KW
    query with a single constraint answers the sphere query. *)

open Kwsc_geom

type t

val build :
  ?leaf_weight:int ->
  ?seed:int ->
  ?pool:Kwsc_util.Pool.t ->
  k:int ->
  (Point.t * Kwsc_invindex.Doc.t) array ->
  t

val k : t -> int

val dim : t -> int
(** Dimensionality d of the data points (the index lives in d+1). *)

val input_size : t -> int

val query : ?limit:int -> t -> Sphere.t -> int array -> int array
(** Sorted ids of the objects in the closed ball with all keywords. [ws]
    must hold exactly [k t] distinct keywords (the canonical
    {!Transform.validate_keyword_arity} contract); keywords absent from
    every document are legal and yield an empty answer. *)

val query_ball_sq : ?limit:int -> t -> Point.t -> float -> int array -> int array
(** As [query] with the squared radius given directly — exact on integer
    coordinates, which is what the binary search of Corollary 7 needs. *)

val query_stats : ?limit:int -> t -> Sphere.t -> int array -> int array * Stats.query

val query_batch :
  ?pool:Kwsc_util.Pool.t ->
  ?limit:int ->
  t ->
  (Sphere.t * int array) array ->
  int array array * Stats.query
(** Evaluate a query stream, sharded across the [pool] with per-shard
    counters merged at the end — the {!Batch.run} equivalence contract. *)

val space_stats : t -> Stats.space

val emptiness : t -> Sphere.t -> int array -> bool
(** Output-capped emptiness probe. *)

val kind : string
(** Snapshot kind tag, ["kwsc.srp-kw"]. *)

val encode : Kwsc_snapshot.Codec.W.t -> t -> unit
val decode : Kwsc_snapshot.Codec.R.t -> t
(** Raw codec, for embedding inside other snapshots ({!L2_nn_kw}).
    [decode] raises [Kwsc_snapshot.Codec.Corrupt]. *)

val save : string -> t -> unit
val load : string -> (t, Kwsc_snapshot.Codec.error) result
(** Durable snapshot round trip; see {!Orp_kw.save} / {!Orp_kw.load} for
    the shared contract. *)
