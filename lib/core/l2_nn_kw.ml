open Kwsc_geom

type t = { srp : Srp_kw.t; pts : Point.t array; d : int; max_sq : float }

let check_integral p =
  Array.for_all (fun x -> Float.is_integer x && x >= 0.0 && x <= 67108864.0 (* 2^26 *)) p

let build ?leaf_weight ?seed ~k objs =
  if Array.length objs = 0 then invalid_arg "L2_nn_kw.build: empty input";
  let pts = Array.map fst objs in
  Array.iter
    (fun p ->
      if not (check_integral p) then
        invalid_arg "L2_nn_kw.build: coordinates must be small non-negative integers")
    pts;
  let d = Array.length pts.(0) in
  let maxc = Array.fold_left (fun acc p -> Array.fold_left Float.max acc p) 0.0 pts in
  { srp = Srp_kw.build ?leaf_weight ?seed ~k objs; pts; d; max_sq = float_of_int d *. maxc *. maxc }

let k t = Srp_kw.k t.srp
let dim t = t.d
let input_size t = Srp_kw.input_size t.srp

let take_nearest t q t' ids =
  let with_dist = Array.map (fun id -> (id, Point.l2_dist q t.pts.(id))) ids in
  Array.sort
    (fun (ia, da) (ib, db) ->
      let c = Float.compare da db in
      if c <> 0 then c else Int.compare ia ib)
    with_dist;
  Array.sub with_dist 0 (min t' (Array.length with_dist))

let query_count t q ~t' ws =
  if Array.length q <> t.d then invalid_arg "L2_nn_kw.query: dimension mismatch";
  if not (check_integral q) then invalid_arg "L2_nn_kw.query: query point must be integral";
  if t' < 1 then invalid_arg "L2_nn_kw.query: t must be >= 1";
  let probes = ref 0 in
  let enough r2 =
    incr probes;
    Array.length (Srp_kw.query_ball_sq ~limit:t' t.srp q r2 ws) >= t'
  in
  (* the query point's own squared distance to any data point is an integer
     in [0, max_sq + 4 * maxc * |q|]; widen generously *)
  let hi0 =
    let far = Array.fold_left (fun acc x -> acc +. (x *. x)) t.max_sq q in
    int_of_float (4.0 *. (far +. 1.0))
  in
  if not (enough (float_of_int hi0)) then
    (take_nearest t q t' (Srp_kw.query_ball_sq t.srp q (float_of_int hi0) ws), !probes)
  else begin
    let lo = ref 0 and hi = ref hi0 in
    (* smallest integer squared radius holding t' matches *)
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if enough (float_of_int mid) then hi := mid else lo := mid + 1
    done;
    let ids = Srp_kw.query_ball_sq t.srp q (float_of_int !lo) ws in
    (take_nearest t q t' ids, !probes)
  end

let query t q ~t' ws = fst (query_count t q ~t' ws)
let srp_index t = t.srp

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

module C = Kwsc_snapshot.Codec

let kind = "kwsc.l2-nn-kw"

let encode w t =
  C.W.i64 w t.d;
  C.W.f64 w t.max_sq;
  C.W.float_array2 w t.pts;
  Srp_kw.encode w t.srp

let decode r =
  let d = C.R.i64 r in
  let max_sq = C.R.f64 r in
  let pts = C.R.float_array2 r in
  Array.iter
    (fun p ->
      if Array.length p <> d then C.corrupt "L2_nn_kw: point with the wrong dimension";
      if not (check_integral p) then C.corrupt "L2_nn_kw: non-integral coordinates")
    pts;
  let srp = Srp_kw.decode r in
  if Srp_kw.dim srp <> d then C.corrupt "L2_nn_kw: inner index dimension mismatch";
  { srp; pts; d; max_sq }

let save path t =
  C.save_file ~path ~kind
    [
      ("meta", C.to_string (fun w ->
           C.W.i64 w (k t);
           C.W.i64 w t.d;
           C.W.i64 w (input_size t)));
      ("index", C.to_string (fun w -> encode w t));
    ]

let load path =
  C.run (fun () ->
      let sections = C.load_kind_exn ~path ~kind in
      let mk, md, mn =
        C.decode_section sections "meta" (fun r ->
            let mk = C.R.i64 r in
            let md = C.R.i64 r in
            let mn = C.R.i64 r in
            (mk, md, mn))
      in
      let t = C.decode_section sections "index" decode in
      if k t <> mk || t.d <> md || input_size t <> mn then
        C.corrupt "L2_nn_kw: meta section disagrees with the decoded index";
      t)
