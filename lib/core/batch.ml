[@@@kwsc.domain_safe]

let run ?pool answer qs =
  let pool = match pool with Some p -> p | None -> Kwsc_util.Pool.default () in
  let n = Array.length qs in
  let out = Array.make n [||] in
  if n = 0 then (out, Stats.fresh_query ())
  else begin
    (* One contiguous shard per worker, each with a private accumulator:
       no counter is shared across domains, and the shard boundaries
       depend only on (n, shards), never on scheduling. *)
    let shards = max 1 (min n (Kwsc_util.Pool.size pool)) in
    let accs = Array.init shards (fun _ -> Stats.fresh_query ()) in
    Kwsc_util.Pool.parallel_for pool ~lo:0 ~hi:shards (fun s ->
        let lo = s * n / shards and hi = (s + 1) * n / shards in
        let acc = accs.(s) in
        for i = lo to hi - 1 do
          let ids, st = answer qs.(i) in
          out.(i) <- ids;
          Stats.add_into ~into:acc st
        done);
    (out, Array.fold_left Stats.merge (Stats.fresh_query ()) accs)
  end
