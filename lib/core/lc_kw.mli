(** Linear Conjunction with Keywords (Theorem 5): given s = O(1) linear
    constraints and k keywords, report the objects satisfying all
    constraints whose documents contain all keywords.

    The paper proves Theorem 5 by decomposing the constraint polyhedron into
    O(1) simplices and issuing one SP-KW query per simplex (Theorem 12).
    Operationally the decomposition is an analysis device: {!query} hands
    the polyhedron to the SP-KW index directly (the cell tests accept any
    convex region). The decomposition path is also provided for d = 2
    ({!query_via_simplices}) and tested to agree. *)

open Kwsc_geom

type t

val build :
  ?leaf_weight:int ->
  ?seed:int ->
  ?pool:Kwsc_util.Pool.t ->
  k:int ->
  (Point.t * Kwsc_invindex.Doc.t) array ->
  t

val k : t -> int
val dim : t -> int
val input_size : t -> int

val query : ?limit:int -> t -> Halfspace.t list -> int array -> int array
(** Sorted ids of objects satisfying every constraint and containing all
    keywords. [ws] must hold exactly [k t] distinct keywords (the
    canonical {!Transform.validate_keyword_arity} contract); keywords
    absent from every document are legal and yield an empty answer. *)

val query_stats : ?limit:int -> t -> Halfspace.t list -> int array -> int array * Stats.query

val query_batch :
  ?pool:Kwsc_util.Pool.t ->
  ?limit:int ->
  t ->
  (Halfspace.t list * int array) array ->
  int array array * Stats.query
(** Evaluate a query stream, sharded across the [pool] with per-shard
    counters merged at the end — the {!Batch.run} equivalence contract. *)

val query_rect : ?limit:int -> t -> Rect.t -> int array -> int array
(** ORP-KW through LC-KW — a d-rectangle is the conjunction of 2d linear
    constraints (the remark after Theorem 5, giving the Table-1 row
    "ORP-KW, d <= k, O(N) space"). *)

val query_via_simplices : t -> Halfspace.t list -> int array -> int array
(** The literal proof route for d = 2: triangulate the (bounded part of
    the) constraint region and union the per-simplex SP-KW answers.
    @raise Invalid_argument if [dim t <> 2]. *)

val space_stats : t -> Stats.space
val sp_index : t -> Sp_kw.t
(** The underlying SP-KW index. *)

val emptiness : t -> Halfspace.t list -> int array -> bool
(** Output-capped emptiness probe. *)

val kind : string
(** Snapshot kind tag, ["kwsc.lc-kw"]. *)

val encode : Kwsc_snapshot.Codec.W.t -> t -> unit
val decode : Kwsc_snapshot.Codec.R.t -> t
(** Raw codec, for embedding inside other snapshots ({!Rr_kw}). [decode]
    raises [Kwsc_snapshot.Codec.Corrupt]. *)

val save : string -> t -> unit
val load : string -> (t, Kwsc_snapshot.Codec.error) result
(** Durable snapshot round trip; see {!Orp_kw.save} / {!Orp_kw.load} for
    the shared contract. *)
