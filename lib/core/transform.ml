[@@@kwsc.domain_safe]

module Doc = Kwsc_invindex.Doc
module Container = Kwsc_util.Container

type relation = Disjoint | Covered | Crossing

type ('cell, 'query) space = {
  root_cell : 'cell;
  split : depth:int -> 'cell -> int array -> ('cell * int array) array * int array;
  classify : 'query -> 'cell -> relation;
  contains : 'query -> int -> bool;
}

type 'cell node = {
  cell : 'cell;
  depth : int;
  n_u : int;
  pivot : int array;
  children : 'cell child array;
  large : (int, int) Hashtbl.t; (* keyword -> rank in [0, num_large) *)
  num_large : int;
  (* materialized active sets D_u^act(w), one container per small
     keyword over the object-id universe: dense sets live as packed
     63-bit bitmaps and descend through the same planner-picked wide
     kernels as the inverted index *)
  materialized : (int, Container.t) Hashtbl.t;
}

(* [nonempty] is the k-dimensional child-emptiness array as a container
   over the code universe [0, L^k); universe 0 is the ablation sentinel
   ([use_bits:false] or the L^k cap), meaning "treat every code as
   possibly non-empty" *)
and 'cell child = { node : 'cell node; nonempty : Container.t }

(* the one shared ablation sentinel: immutable, so every bit-less child
   of every tree can point at the same value *)
let ablated_bits = Container.of_sorted_array ~universe:0 [||]

type params = { leaf_weight : int; tau_exponent : float; use_bits : bool }

type ('cell, 'query) t = {
  space : ('cell, 'query) space;
  docs : Doc.t array;
  k_ : int;
  n : int;
  root : 'cell node;
  params : params;
}

let rec ipow base e = if e = 0 then 1 else base * ipow base (e - 1)

(* Enumerate all strictly increasing k-tuples from the sorted rank array
   [ranks] and hand each tuple's base-L code to [f]. *)
let iter_combos ranks k l f =
  let len = Array.length ranks in
  let rec go pos chosen code =
    if chosen = k then f code
    else
      for i = pos to len - (k - chosen) do
        go (i + 1) (chosen + 1) ((code * l) + ranks.(i))
      done
  in
  if len >= k then go 0 0 0

(* Nodes lighter than this build sequentially even under a parallel
   pool: the split/sort work no longer amortises a task. *)
let par_cutoff = 4096

let build ?(leaf_weight = 4) ?tau_exponent ?(use_bits = true) ?pool ~k ~space docs =
  if k < 2 then invalid_arg "Transform.build: k must be >= 2";
  let m = Array.length docs in
  if m = 0 then invalid_arg "Transform.build: empty dataset";
  if leaf_weight < 1 then invalid_arg "Transform.build: leaf_weight must be >= 1";
  let pool = match pool with Some p -> p | None -> Kwsc_util.Pool.default () in
  let fork_below = Kwsc_util.Pool.fork_depth pool in
  let tau_exp =
    match tau_exponent with
    | None -> 1.0 -. (1.0 /. float_of_int k)
    | Some e ->
        if e < 0.0 || e > 1.0 then invalid_arg "Transform.build: tau_exponent must be in [0,1]";
        e
  in
  let weight id = Doc.size docs.(id) in
  let n = ref 0 in
  Array.iter (fun d -> n := !n + Doc.size d) docs;
  let rec build_node cell ids candidates depth =
    let n_u = Array.fold_left (fun acc id -> acc + weight id) 0 ids in
    let leaf () =
      {
        cell;
        depth;
        n_u;
        pivot = ids;
        children = [||];
        large = Hashtbl.create 1;
        num_large = 0;
        materialized = Hashtbl.create 1;
      }
    in
    if n_u <= leaf_weight || Array.length ids <= 1 then leaf ()
    else build_internal cell ids candidates depth n_u leaf
  and build_internal cell ids candidates depth n_u leaf =
    (* collect the active list of every candidate keyword present here *)
    let lists : (int, int list ref) Hashtbl.t = Hashtbl.create 16 in
    Array.iter
      (fun id ->
        Doc.iter
          (fun w ->
            if Hashtbl.mem candidates w then
              match Hashtbl.find_opt lists w with
              | Some l -> l := id :: !l
              | None -> Hashtbl.add lists w (ref [ id ]))
          docs.(id))
      ids;
    let tau = float_of_int n_u ** tau_exp in
    let large_kws = ref [] in
    (* small keywords keep their raw id lists until the pivots are known;
       they containerize (sorted, pivot-filtered) just before the node is
       assembled *)
    let small_raw = ref [] in
    Hashtbl.iter
      (fun w l ->
        if float_of_int (List.length !l) >= tau then large_kws := w :: !large_kws
        else small_raw := (w, Array.of_list !l) :: !small_raw)
      lists;
    let large_sorted = List.sort Int.compare !large_kws in
    let num_large = List.length large_sorted in
    let large = Hashtbl.create (max 1 num_large) in
    List.iteri (fun i w -> Hashtbl.add large w i) large_sorted;
    begin
      let raw_children, pivots = space.split ~depth cell ids in
      let nonempty_children =
        Array.of_list
          (List.filter (fun (_, cids) -> Array.length cids > 0) (Array.to_list raw_children))
      in
      let no_progress =
        Array.length pivots = 0
        && Array.length nonempty_children = 1
        && Array.length (snd nonempty_children.(0)) = Array.length ids
      in
      if no_progress || Array.length nonempty_children = 0 then
        (* the splitter cannot separate these objects: absorb them as pivots *)
        leaf ()
      else begin
        (* the pivot scan already covers the node's own pivots: drop them
           from the materialized sets so no object is reported twice;
           then containerize each set over the object-id universe *)
        let keep =
          if Array.length pivots = 0 then fun _ -> true
          else fun id -> not (Array.exists (fun p -> p = id) pivots)
        in
        let materialized = Hashtbl.create (max 1 (List.length !small_raw)) in
        List.iter
          (fun (w, raw) ->
            let ids = Array.of_list (List.filter keep (Array.to_list raw)) in
            Array.sort Int.compare ids;
            Hashtbl.add materialized w (Container.of_sorted_array ~universe:m ids))
          !small_raw;
        (* candidate keywords below are those large here *)
        let child_candidates = Hashtbl.create (max 1 num_large) in
        List.iter (fun w -> Hashtbl.add child_candidates w ()) large_sorted;
        (* With the paper's threshold, L^k <= N_u. Ablated thresholds
           (tau_exponent < 1 - 1/k) can push L^k far beyond that; cap the
           allocation and fall back to bit-less descent for such nodes
           (correct, just unpruned). The float check also guards ipow
           against overflow. *)
        let bits_cap = max 4096 (64 * n_u) in
        let bits_len =
          if
            use_bits && num_large >= k
            && float_of_int num_large ** float_of_int k <= float_of_int bits_cap
          then ipow num_large k
          else 0
        in
        (* Each child owns its emptiness codes outright: the lit codes
           collect into a private buffer, sort, dedup (distinct objects
           can light the same code) and containerize over the code
           universe [0, L^k) — mostly-full arrays become packed bitmaps,
           sparse ones stay id arrays.  Each child task touches only its
           own subtree, its own buffer and read-only parent state
           ([docs], [large], the candidate table — fully populated before
           the fork), so heavy nodes near the root fork their children
           into the pool; the structure is identical at every pool
           size. *)
        let build_child (ccell, cids) =
          let node = build_node ccell cids child_candidates (depth + 1) in
          let nonempty =
            if bits_len = 0 then ablated_bits
            else begin
              let codes = Kwsc_util.Ibuf.create () in
              Array.iter
                (fun id ->
                  let ranks = ref [] in
                  Doc.iter
                    (fun w ->
                      match Hashtbl.find_opt large w with
                      | Some r -> ranks := r :: !ranks
                      | None -> ())
                    docs.(id);
                  let ranks = Array.of_list (List.sort Int.compare !ranks) in
                  iter_combos ranks k num_large (fun code ->
                      Kwsc_util.Ibuf.push codes code))
                cids;
              let a = Kwsc_util.Ibuf.sorted_array codes in
              let u = ref 0 in
              Array.iter
                (fun c ->
                  if !u = 0 || a.(!u - 1) <> c then begin
                    a.(!u) <- c;
                    incr u
                  end)
                a;
              Container.of_sorted_array ~universe:bits_len (Array.sub a 0 !u)
            end
          in
          { node; nonempty }
        in
        let children =
          if
            depth < fork_below && n_u >= par_cutoff
            && Array.length nonempty_children >= 2
          then
            Kwsc_util.Pool.fork_join_array pool
              (Array.map (fun c () -> build_child c) nonempty_children)
          else Array.map build_child nonempty_children
        in
        { cell; depth; n_u; pivot = pivots; children; large; num_large; materialized }
      end
    end
  in
  let all_ids = Array.init m (fun i -> i) in
  let root_candidates = Hashtbl.create 64 in
  Array.iter (fun d -> Doc.iter (fun w -> Hashtbl.replace root_candidates w ()) d) docs;
  let root = build_node space.root_cell all_ids root_candidates 0 in
  { space; docs; k_ = k; n = !n; root; params = { leaf_weight; tau_exponent = tau_exp; use_bits } }

let k t = t.k_
let input_size t = t.n
let params t = t.params
let documents t = Array.copy t.docs

exception Limit_reached

(* The one keyword-arity check of the whole codebase: every Table-1
   wrapper funnels through here (directly or via [validate_keywords]) so
   the contract — and the error message — cannot drift between modules. *)
let validate_keyword_arity ~k ws =
  let sorted = Kwsc_util.Sorted.sort_dedup (Array.to_list ws) in
  if Array.length sorted <> k then
    invalid_arg
      (Printf.sprintf "Transform.query: expected %d distinct keywords, got %d" k
         (Array.length sorted));
  sorted

let validate_keywords t ws = validate_keyword_arity ~k:t.k_ ws

let query_stats ?limit t q ws =
  let ws = validate_keywords t ws in
  (match limit with
  | Some l when l < 1 -> invalid_arg "Transform.query: limit must be >= 1"
  | _ -> ());
  let st = Stats.fresh_query () in
  (* flat accumulator: the hot loop pushes ids into one growable int
     buffer instead of consing a list *)
  let acc = Kwsc_util.Ibuf.create () in
  (* scratch for planner-routed small-set intersections, warmed across
     the whole traversal; plus the stand-in container for a small
     keyword with no materialized set here (empty over the object-id
     universe, so every container the planner sees agrees on it) *)
  let ix_out = Kwsc_util.Ibuf.create () in
  let ix_tmp = Kwsc_util.Ibuf.create () in
  let empty_mat = Container.of_sorted_array ~universe:(Array.length t.docs) [||] in
  let report id =
    Kwsc_util.Ibuf.push acc id;
    st.Stats.reported <- st.Stats.reported + 1;
    match limit with Some l when st.Stats.reported >= l -> raise Limit_reached | _ -> ()
  in
  let doc_all id = Array.for_all (fun w -> Doc.mem t.docs.(id) w) ws in
  let rec visit node =
    st.Stats.nodes_visited <- st.Stats.nodes_visited + 1;
    let covered =
      match t.space.classify q node.cell with
      | Covered ->
          st.Stats.covered_nodes <- st.Stats.covered_nodes + 1;
          true
      | Crossing | Disjoint ->
          st.Stats.crossing_nodes <- st.Stats.crossing_nodes + 1;
          false
    in
    (* Planner-gated check ordering — strictly counter- and
       answer-neutral (the conjunction is commutative and every counter
       increments before the check): in a covered cell the geometry
       accepts everything, so run the cheap document filter first; in a
       crossing cell the geometry rejects most ids, so lead with it.
       Planner off keeps the historic doc-first order everywhere. *)
    let check id =
      if covered || not !Kwsc_util.Planner.enabled then doc_all id && t.space.contains q id
      else t.space.contains q id && doc_all id
    in
    Array.iter
      (fun id ->
        st.Stats.pivot_checked <- st.Stats.pivot_checked + 1;
        if check id then report id)
      node.pivot;
    if Array.length node.children > 0 then begin
      let all_large = Array.for_all (fun w -> Hashtbl.mem node.large w) ws in
      if all_large then begin
        let ranks = Array.map (fun w -> Hashtbl.find node.large w) ws in
        Array.sort Int.compare ranks;
        let code = Array.fold_left (fun c r -> (c * node.num_large) + r) 0 ranks in
        Array.iter
          (fun child ->
            (* a zero-universe container means the bits were ablated away
               ([use_bits:false]): treat every child as possibly non-empty *)
            if Container.universe child.nonempty = 0 || Container.mem child.nonempty code
            then begin
              if t.space.classify q child.node.cell = Disjoint then
                st.Stats.pruned_geom <- st.Stats.pruned_geom + 1
              else visit child.node
            end
            else st.Stats.pruned_empty <- st.Stats.pruned_empty + 1)
          node.children
      end
      else begin
        (* Small keywords: gather their materialized containers (an
           absent keyword contributes the empty set). The cheapest one
           is what the historic path scans — and what [small_scanned]
           has always counted — so both paths charge exactly its
           cardinality. With the planner on and no early-exit limit,
           the small sets intersect through the same cost-based
           strategy choice and wide kernels as the inverted index, and
           only the survivors reach the per-id check. Answer
           equivalence: any reported id passes [doc_all], sits in this
           node's active set and is not a pivot, so it belongs to
           *every* small keyword's materialized set — pre-filtering the
           scan by the other small containers cannot change the
           reported set, and with no limit the report order cannot
           matter (results are sorted at the end). *)
        let n_small = ref 0 in
        Array.iter (fun w -> if not (Hashtbl.mem node.large w) then incr n_small) ws;
        assert (!n_small > 0) (* not all large implies some small keyword exists *);
        let cs = Array.make !n_small empty_mat in
        let j = ref 0 in
        Array.iter
          (fun w ->
            if not (Hashtbl.mem node.large w) then begin
              (match Hashtbl.find_opt node.materialized w with
              | Some c -> cs.(!j) <- c
              | None -> ());
              incr j
            end)
          ws;
        (* first minimum in keyword order — the historic tie-break *)
        let bi = ref 0 in
        for i = 1 to !n_small - 1 do
          if Container.cardinality cs.(i) < Container.cardinality cs.(!bi) then bi := i
        done;
        let best = cs.(!bi) in
        if !n_small >= 2 && limit = None && !Kwsc_util.Planner.enabled then begin
          st.Stats.small_scanned <- st.Stats.small_scanned + Container.cardinality best;
          (* rarest-first, the order Planner.choose prices a chain in *)
          Array.sort
            (fun a b -> Int.compare (Container.cardinality a) (Container.cardinality b))
            cs;
          Container.intersect_query (Kwsc_util.Planner.choose cs) cs ~out:ix_out ~tmp:ix_tmp;
          Kwsc_util.Ibuf.iter (fun id -> if check id then report id) ix_out
        end
        else
          Container.iter
            (fun id ->
              st.Stats.small_scanned <- st.Stats.small_scanned + 1;
              if check id then report id)
            best
      end
    end
  in
  let out =
    Stats.count_alloc st (fun () ->
        (try if t.space.classify q t.root.cell <> Disjoint then visit t.root
         with Limit_reached -> ());
        Kwsc_util.Ibuf.sorted_array acc)
  in
  (out, st)

let query ?limit t q ws = fst (query_stats ?limit t q ws)

let query_batch ?pool ?limit t qs =
  Batch.run ?pool (fun (q, ws) -> query_stats ?limit t q ws) qs

type node_view = {
  depth : int;
  n_u : int;
  pivot : int array;
  num_children : int;
  num_large : int;
  materialized : (int * int array) list;
}

let fold_nodes t ~init ~f =
  let rec go acc (node : _ node) =
    let view =
      {
        depth = node.depth;
        n_u = node.n_u;
        pivot = Array.copy node.pivot;
        num_children = Array.length node.children;
        num_large = node.num_large;
        materialized =
          Hashtbl.fold
            (fun w c acc -> (w, Container.to_sorted_array c) :: acc)
            node.materialized [];
      }
    in
    Array.fold_left (fun acc child -> go acc child.node) (f acc view) node.children
  in
  go init t.root

(* physical footprint of one container, in words: the id array when
   sparse, the packed 63-bit words when dense, (start, length) pairs
   when run-encoded *)
let container_words c =
  match Container.kind c with
  | Container.Sparse -> Container.cardinality c
  | Container.Dense -> Kwsc_util.Wordops.nwords (Container.universe c)
  | Container.Runs -> 2 * Container.run_count c

let space_stats t =
  let nodes = ref 0
  and max_depth = ref 0
  and max_pivot = ref 0
  and pivot_words = ref 0
  and materialized_words = ref 0
  and bitset_words = ref 0
  and table_words = ref 0 in
  let rec go (node : _ node) =
    incr nodes;
    max_depth := max !max_depth node.depth;
    max_pivot := max !max_pivot (Array.length node.pivot);
    pivot_words := !pivot_words + Array.length node.pivot;
    Hashtbl.iter
      (fun _ c -> materialized_words := !materialized_words + 1 + container_words c)
      node.materialized;
    table_words := !table_words + node.num_large;
    Array.iter
      (fun child ->
        bitset_words := !bitset_words + container_words child.nonempty;
        go child.node)
      node.children
  in
  go t.root;
  {
    Stats.nodes = !nodes;
    max_depth = !max_depth;
    max_pivot = !max_pivot;
    pivot_words = !pivot_words;
    materialized_words = !materialized_words;
    bitset_words = !bitset_words;
    table_words = !table_words;
    total_words = !pivot_words + !materialized_words + !bitset_words + !table_words + (2 * !nodes);
  }

(* ------------------------------------------------------------------ *)
(* Snapshot codec                                                      *)
(* ------------------------------------------------------------------ *)

module C = Kwsc_snapshot.Codec

(* The tree travels columnar: one preorder pass streams the cells (via the
   problem-specific callback) and accumulates every per-node scalar and
   every variable-length table into flat columns, written as bulk
   width-tagged arrays after the walk. A ~10^5-node tree then loads as a
   dozen bulk array decodes plus slicing, instead of 10^5 framed parses —
   the difference between "near-zero decode work" and a load dominated by
   per-node overhead. *)
let encode write_cell w t =
  C.W.vint w t.k_;
  C.W.vint w t.n;
  C.W.vint w t.params.leaf_weight;
  C.W.f64 w t.params.tau_exponent;
  C.W.bool w t.params.use_bits;
  C.W.int_array2 w (Array.map (fun (d : Doc.t) -> (d :> int array)) t.docs);
  let module B = Kwsc_util.Ibuf in
  let rec count (u : _ node) =
    Array.fold_left (fun acc c -> acc + count c.node) 1 u.children
  in
  let n_nodes = count t.root in
  C.W.vint w n_nodes;
  let depth = Array.make n_nodes 0
  and n_u = Array.make n_nodes 0
  and pivot_len = Array.make n_nodes 0
  and large_len = Array.make n_nodes 0
  and mats_cnt = Array.make n_nodes 0
  and child_cnt = Array.make n_nodes 0 in
  let pivots = B.create () and larges = B.create () in
  let mat_kws = B.create () and mat_lens = B.create () and mat_ids = B.create () in
  let bit_lens = B.create () in
  let bits = Buffer.create 1024 in
  let idx = ref 0 in
  let rec walk (u : _ node) =
    let i = !idx in
    incr idx;
    write_cell w u.cell;
    depth.(i) <- u.depth;
    n_u.(i) <- u.n_u;
    pivot_len.(i) <- Array.length u.pivot;
    Array.iter (B.push pivots) u.pivot;
    (* the large table is keyword -> rank with ranks [0, num_large):
       invert it into rank order so decode rebuilds identical codes *)
    large_len.(i) <- u.num_large;
    let by_rank = Array.make u.num_large 0 in
    Hashtbl.iter (fun kw r -> by_rank.(r) <- kw) u.large;
    Array.iter (B.push larges) by_rank;
    let mats = Hashtbl.fold (fun kw c acc -> (kw, c) :: acc) u.materialized [] in
    let mats = List.sort (fun (a, _) (b, _) -> Int.compare a b) mats in
    mats_cnt.(i) <- List.length mats;
    List.iter
      (fun (kw, c) ->
        B.push mat_kws kw;
        B.push mat_lens (Container.cardinality c);
        (* materialized ids stream ascending out of the container:
           storing first-order deltas keeps the column at byte width 1
           for dense lists, where raw ids would force width 3+ on every
           element *)
        let prev = ref 0 in
        Container.iter
          (fun id ->
            B.push mat_ids (id - !prev);
            prev := id)
          c)
      mats;
    child_cnt.(i) <- Array.length u.children;
    (* A child's emptiness bits precede its whole subtree, as in the
       rebuild. The container persists as its plain bitmap image —
       byte-identical to the historical Bitset.to_bytes payload, with
       the code universe in the length column (0 = ablated) — so the
       snapshot format did not move when the bits became containers. *)
    Array.iter
      (fun c ->
        B.push bit_lens (Container.universe c.nonempty);
        Buffer.add_string bits (Container.bitmap_bytes c.nonempty);
        walk c.node)
      u.children
  in
  walk t.root;
  C.W.int_array w depth;
  C.W.int_array w n_u;
  C.W.int_array w pivot_len;
  C.W.int_array w (B.to_array pivots);
  C.W.int_array w large_len;
  C.W.int_array w (B.to_array larges);
  C.W.int_array w mats_cnt;
  C.W.int_array w (B.to_array mat_kws);
  C.W.int_array w (B.to_array mat_lens);
  C.W.int_array w (B.to_array mat_ids);
  C.W.int_array w child_cnt;
  C.W.int_array w (B.to_array bit_lens);
  C.W.str w (Buffer.contents bits)

let decode ~classify ~contains read_cell r =
  let k_ = C.R.vint r in
  let n = C.R.vint r in
  let leaf_weight = C.R.vint r in
  let tau_exponent = C.R.f64 r in
  let use_bits = C.R.bool r in
  let docs = Array.map Doc.of_sorted_array (C.R.int_array2 r) in
  let n_nodes = C.R.vint r in
  if n_nodes < 1 then C.corrupt "Transform: node count must be >= 1";
  (* cells stream in preorder; explicit loop — evaluation order matters *)
  let cells =
    let c0 = read_cell r in
    let a = Array.make n_nodes c0 in
    for i = 1 to n_nodes - 1 do
      a.(i) <- read_cell r
    done;
    a
  in
  let col name a =
    if Array.length a <> n_nodes then
      C.corrupt
        (Printf.sprintf "Transform: column %s has %d entries for %d nodes" name (Array.length a)
           n_nodes);
    a
  in
  let depth = col "depth" (C.R.int_array r) in
  let n_u = col "n_u" (C.R.int_array r) in
  let pivot_len = col "pivot_len" (C.R.int_array r) in
  let pivots = C.R.int_array r in
  let large_len = col "large_len" (C.R.int_array r) in
  let larges = C.R.int_array r in
  let mats_cnt = col "mats_cnt" (C.R.int_array r) in
  let mat_kws = C.R.int_array r in
  let mat_lens = C.R.int_array r in
  let mat_ids = C.R.int_array r in
  let child_cnt = col "child_cnt" (C.R.int_array r) in
  let bit_lens = C.R.int_array r in
  let bits = C.R.str r in
  if Array.length mat_kws <> Array.length mat_lens then
    C.corrupt "Transform: materialized keyword and length columns disagree";
  if Array.length bit_lens <> n_nodes - 1 then
    C.corrupt "Transform: expected one bitset per non-root node";
  let p_off = ref 0 and l_off = ref 0 and m_cur = ref 0 and mi_off = ref 0 in
  let c_cur = ref 0 and b_off = ref 0 and idx = ref 0 in
  (* Nodes with no large keywords (most leaves) and no materialized sets
     (most internal nodes) share one empty table per load: a decoded tree
     is never re-split (the installed [split] raises), and queries only
     read these tables, so the sharing is unobservable — and it halves
     the allocation burst of a ~10^5-node rebuild. *)
  let empty_large : (int, int) Hashtbl.t = Hashtbl.create 1 in
  let empty_mats : (int, Container.t) Hashtbl.t = Hashtbl.create 1 in
  let slice src off len =
    if len < 0 || len > Array.length src - !off then
      C.corrupt "Transform: tree column cursor out of range";
    let a = Array.sub src !off len in
    off := !off + len;
    a
  in
  let rec build () =
    if !idx >= n_nodes then C.corrupt "Transform: preorder walk escapes the node count";
    let i = !idx in
    incr idx;
    let pivot = slice pivots p_off pivot_len.(i) in
    let num_large = large_len.(i) in
    let by_rank = slice larges l_off num_large in
    let large =
      if num_large = 0 then empty_large
      else begin
        let h = Hashtbl.create num_large in
        Array.iteri (fun rank kw -> Hashtbl.add h kw rank) by_rank;
        h
      end
    in
    let nm = mats_cnt.(i) in
    if nm < 0 || nm > Array.length mat_kws - !m_cur then
      C.corrupt "Transform: materialized count out of range";
    let materialized =
      if nm = 0 then empty_mats
      else begin
        let h = Hashtbl.create nm in
        for _ = 1 to nm do
          let m = !m_cur in
          incr m_cur;
          let ids = slice mat_ids mi_off mat_lens.(m) in
          (* undo the delta encoding in place (the slice is fresh), then
             sort: current snapshots store ascending ids (the sort is a
             no-op pass), while historical ones recorded the build's
             encounter order *)
          let acc = ref 0 in
          for j = 0 to Array.length ids - 1 do
            acc := !acc + ids.(j);
            ids.(j) <- !acc
          done;
          Array.sort Int.compare ids;
          let c =
            try Container.of_sorted_array ~universe:(Array.length docs) ids
            with Invalid_argument _ ->
              C.corrupt "Transform: malformed materialized id list"
          in
          Hashtbl.add h mat_kws.(m) c
        done;
        h
      end
    in
    let nc = child_cnt.(i) in
    if nc < 0 then C.corrupt "Transform: negative child count";
    let children =
      if nc = 0 then [||]
      else begin
        let c0 = child () in
        let a = Array.make nc c0 in
        for j = 1 to nc - 1 do
          a.(j) <- child ()
        done;
        a
      end
    in
    { cell = cells.(i); depth = depth.(i); n_u = n_u.(i); pivot; children; large; num_large;
      materialized }
  and child () =
    let b = !c_cur in
    if b >= Array.length bit_lens then C.corrupt "Transform: more children than bitsets";
    incr c_cur;
    let nbits = bit_lens.(b) in
    if nbits < 0 then C.corrupt "Transform: negative bitset length";
    let nbytes = (nbits + 7) / 8 in
    if nbytes > String.length bits - !b_off then C.corrupt "Transform: bitset bytes truncated";
    let nonempty =
      try Container.of_bitmap_string ~universe:nbits bits ~off:!b_off
      with Invalid_argument _ -> C.corrupt "Transform: malformed emptiness bitmap"
    in
    b_off := !b_off + nbytes;
    let node = build () in
    { node; nonempty }
  in
  let root = build () in
  if !idx <> n_nodes then C.corrupt "Transform: fewer nodes than declared";
  if
    !p_off <> Array.length pivots
    || !l_off <> Array.length larges
    || !m_cur <> Array.length mat_kws
    || !mi_off <> Array.length mat_ids
    || !c_cur <> Array.length bit_lens
    || !b_off <> String.length bits
  then C.corrupt "Transform: tree columns not fully consumed";
  if k_ < 2 then C.corrupt "Transform: k must be >= 2";
  if n < 0 then C.corrupt "Transform: negative total weight";
  let split ~depth:_ _ _ =
    invalid_arg "Transform: a snapshot-loaded index cannot be re-split"
  in
  let space = { root_cell = root.cell; split; classify; contains } in
  {
    space;
    docs;
    k_;
    n;
    root;
    params = { leaf_weight; tau_exponent; use_bits };
  }
