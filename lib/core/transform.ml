module Doc = Kwsc_invindex.Doc
module Bitset = Kwsc_util.Bitset

type relation = Disjoint | Covered | Crossing

type ('cell, 'query) space = {
  root_cell : 'cell;
  split : depth:int -> 'cell -> int array -> ('cell * int array) array * int array;
  classify : 'query -> 'cell -> relation;
  contains : 'query -> int -> bool;
}

type 'cell node = {
  cell : 'cell;
  depth : int;
  n_u : int;
  pivot : int array;
  children : 'cell child array;
  large : (int, int) Hashtbl.t; (* keyword -> rank in [0, num_large) *)
  num_large : int;
  materialized : (int, int array) Hashtbl.t;
}

and 'cell child = { node : 'cell node; nonempty : Bitset.t }

type ('cell, 'query) t = {
  space : ('cell, 'query) space;
  docs : Doc.t array;
  k_ : int;
  n : int;
  root : 'cell node;
}

let rec ipow base e = if e = 0 then 1 else base * ipow base (e - 1)

(* Enumerate all strictly increasing k-tuples from the sorted rank array
   [ranks] and hand each tuple's base-L code to [f]. *)
let iter_combos ranks k l f =
  let len = Array.length ranks in
  let rec go pos chosen code =
    if chosen = k then f code
    else
      for i = pos to len - (k - chosen) do
        go (i + 1) (chosen + 1) ((code * l) + ranks.(i))
      done
  in
  if len >= k then go 0 0 0

(* Nodes lighter than this build sequentially even under a parallel
   pool: the split/sort work no longer amortises a task. *)
let par_cutoff = 4096

let build ?(leaf_weight = 4) ?tau_exponent ?(use_bits = true) ?pool ~k ~space docs =
  if k < 2 then invalid_arg "Transform.build: k must be >= 2";
  let m = Array.length docs in
  if m = 0 then invalid_arg "Transform.build: empty dataset";
  if leaf_weight < 1 then invalid_arg "Transform.build: leaf_weight must be >= 1";
  let pool = match pool with Some p -> p | None -> Kwsc_util.Pool.default () in
  let fork_below = Kwsc_util.Pool.fork_depth pool in
  let tau_exp =
    match tau_exponent with
    | None -> 1.0 -. (1.0 /. float_of_int k)
    | Some e ->
        if e < 0.0 || e > 1.0 then invalid_arg "Transform.build: tau_exponent must be in [0,1]";
        e
  in
  let weight id = Doc.size docs.(id) in
  let n = ref 0 in
  Array.iter (fun d -> n := !n + Doc.size d) docs;
  let rec build_node cell ids candidates depth =
    let n_u = Array.fold_left (fun acc id -> acc + weight id) 0 ids in
    let leaf () =
      {
        cell;
        depth;
        n_u;
        pivot = ids;
        children = [||];
        large = Hashtbl.create 1;
        num_large = 0;
        materialized = Hashtbl.create 1;
      }
    in
    if n_u <= leaf_weight || Array.length ids <= 1 then leaf ()
    else build_internal cell ids candidates depth n_u leaf
  and build_internal cell ids candidates depth n_u leaf =
    (* collect the active list of every candidate keyword present here *)
    let lists : (int, int list ref) Hashtbl.t = Hashtbl.create 16 in
    Array.iter
      (fun id ->
        Doc.iter
          (fun w ->
            if Hashtbl.mem candidates w then
              match Hashtbl.find_opt lists w with
              | Some l -> l := id :: !l
              | None -> Hashtbl.add lists w (ref [ id ]))
          docs.(id))
      ids;
    let tau = float_of_int n_u ** tau_exp in
    let large_kws = ref [] in
    let materialized = Hashtbl.create 8 in
    Hashtbl.iter
      (fun w l ->
        if float_of_int (List.length !l) >= tau then large_kws := w :: !large_kws
        else Hashtbl.add materialized w (Array.of_list !l))
      lists;
    let large_sorted = List.sort Int.compare !large_kws in
    let num_large = List.length large_sorted in
    let large = Hashtbl.create (max 1 num_large) in
    List.iteri (fun i w -> Hashtbl.add large w i) large_sorted;
    begin
      let raw_children, pivots = space.split ~depth cell ids in
      let nonempty_children =
        Array.of_list
          (List.filter (fun (_, cids) -> Array.length cids > 0) (Array.to_list raw_children))
      in
      let no_progress =
        Array.length pivots = 0
        && Array.length nonempty_children = 1
        && Array.length (snd nonempty_children.(0)) = Array.length ids
      in
      if no_progress || Array.length nonempty_children = 0 then
        (* the splitter cannot separate these objects: absorb them as pivots *)
        leaf ()
      else begin
        (* the pivot scan already covers the node's own pivots: drop them
           from the materialized sets so no object is reported twice *)
        if Array.length pivots > 0 then begin
          let is_pivot id = Array.exists (fun p -> p = id) pivots in
          let filtered =
            Hashtbl.fold
              (fun w ids acc -> (w, Array.of_list (List.filter (fun id -> not (is_pivot id)) (Array.to_list ids))) :: acc)
              materialized []
          in
          Hashtbl.reset materialized;
          List.iter (fun (w, ids) -> Hashtbl.add materialized w ids) filtered
        end;
        (* candidate keywords below are those large here *)
        let child_candidates = Hashtbl.create (max 1 num_large) in
        List.iter (fun w -> Hashtbl.add child_candidates w ()) large_sorted;
        (* With the paper's threshold, L^k <= N_u. Ablated thresholds
           (tau_exponent < 1 - 1/k) can push L^k far beyond that; cap the
           allocation and fall back to bit-less descent for such nodes
           (correct, just unpruned). The float check also guards ipow
           against overflow. *)
        let bits_cap = max 4096 (64 * n_u) in
        let bits_len =
          if
            use_bits && num_large >= k
            && float_of_int num_large ** float_of_int k <= float_of_int bits_cap
          then ipow num_large k
          else 0
        in
        (* Each child task touches only its own subtree, its own bitset
           and read-only parent state ([docs], [large], the candidate
           table — fully populated before the fork), so heavy nodes near
           the root fork their children into the pool; the structure is
           identical at every pool size. *)
        let build_child (ccell, cids) =
          let node = build_node ccell cids child_candidates (depth + 1) in
          let nonempty = Bitset.create bits_len in
          if bits_len > 0 then
            Array.iter
              (fun id ->
                let ranks = ref [] in
                Doc.iter
                  (fun w ->
                    match Hashtbl.find_opt large w with
                    | Some r -> ranks := r :: !ranks
                    | None -> ())
                  docs.(id);
                let ranks = Array.of_list (List.sort Int.compare !ranks) in
                iter_combos ranks k num_large (fun code -> Bitset.set nonempty code))
              cids;
          { node; nonempty }
        in
        let children =
          if
            depth < fork_below && n_u >= par_cutoff
            && Array.length nonempty_children >= 2
          then
            Kwsc_util.Pool.fork_join_array pool
              (Array.map (fun c () -> build_child c) nonempty_children)
          else Array.map build_child nonempty_children
        in
        { cell; depth; n_u; pivot = pivots; children; large; num_large; materialized }
      end
    end
  in
  let all_ids = Array.init m (fun i -> i) in
  let root_candidates = Hashtbl.create 64 in
  Array.iter (fun d -> Doc.iter (fun w -> Hashtbl.replace root_candidates w ()) d) docs;
  let root = build_node space.root_cell all_ids root_candidates 0 in
  { space; docs; k_ = k; n = !n; root }

let k t = t.k_
let input_size t = t.n

exception Limit_reached

let validate_keywords t ws =
  let sorted = Kwsc_util.Sorted.sort_dedup (Array.to_list ws) in
  if Array.length sorted <> t.k_ then
    invalid_arg
      (Printf.sprintf "Transform.query: expected %d distinct keywords, got %d" t.k_
         (Array.length sorted));
  sorted

let query_stats ?limit t q ws =
  let ws = validate_keywords t ws in
  (match limit with
  | Some l when l < 1 -> invalid_arg "Transform.query: limit must be >= 1"
  | _ -> ());
  let st = Stats.fresh_query () in
  (* flat accumulator: the hot loop pushes ids into one growable int
     buffer instead of consing a list *)
  let acc = Kwsc_util.Ibuf.create () in
  let report id =
    Kwsc_util.Ibuf.push acc id;
    st.Stats.reported <- st.Stats.reported + 1;
    match limit with Some l when st.Stats.reported >= l -> raise Limit_reached | _ -> ()
  in
  let doc_all id = Array.for_all (fun w -> Doc.mem t.docs.(id) w) ws in
  let rec visit node =
    st.Stats.nodes_visited <- st.Stats.nodes_visited + 1;
    (match t.space.classify q node.cell with
    | Covered -> st.Stats.covered_nodes <- st.Stats.covered_nodes + 1
    | Crossing | Disjoint -> st.Stats.crossing_nodes <- st.Stats.crossing_nodes + 1);
    Array.iter
      (fun id ->
        st.Stats.pivot_checked <- st.Stats.pivot_checked + 1;
        if doc_all id && t.space.contains q id then report id)
      node.pivot;
    if Array.length node.children > 0 then begin
      let all_large = Array.for_all (fun w -> Hashtbl.mem node.large w) ws in
      if all_large then begin
        let ranks = Array.map (fun w -> Hashtbl.find node.large w) ws in
        Array.sort Int.compare ranks;
        let code = Array.fold_left (fun c r -> (c * node.num_large) + r) 0 ranks in
        Array.iter
          (fun child ->
            (* a zero-length bit array means the bits were ablated away
               ([use_bits:false]): treat every child as possibly non-empty *)
            if Bitset.length child.nonempty = 0 || Bitset.get child.nonempty code then begin
              if t.space.classify q child.node.cell = Disjoint then
                st.Stats.pruned_geom <- st.Stats.pruned_geom + 1
              else visit child.node
            end
            else st.Stats.pruned_empty <- st.Stats.pruned_empty + 1)
          node.children
      end
      else begin
        (* scan the cheapest materialized set among the small keywords *)
        let best = ref None in
        Array.iter
          (fun w ->
            if not (Hashtbl.mem node.large w) then begin
              let lst =
                match Hashtbl.find_opt node.materialized w with Some a -> a | None -> [||]
              in
              match !best with
              | None -> best := Some lst
              | Some b -> if Array.length lst < Array.length b then best := Some lst
            end)
          ws;
        match !best with
        | None -> assert false (* not all large implies some small keyword exists *)
        | Some lst ->
            Array.iter
              (fun id ->
                st.Stats.small_scanned <- st.Stats.small_scanned + 1;
                if doc_all id && t.space.contains q id then report id)
              lst
      end
    end
  in
  let out =
    Stats.count_alloc st (fun () ->
        (try if t.space.classify q t.root.cell <> Disjoint then visit t.root
         with Limit_reached -> ());
        Kwsc_util.Ibuf.sorted_array acc)
  in
  (out, st)

let query ?limit t q ws = fst (query_stats ?limit t q ws)

let query_batch ?pool ?limit t qs =
  Batch.run ?pool (fun (q, ws) -> query_stats ?limit t q ws) qs

type node_view = {
  depth : int;
  n_u : int;
  pivot : int array;
  num_children : int;
  num_large : int;
  materialized : (int * int array) list;
}

let fold_nodes t ~init ~f =
  let rec go acc (node : _ node) =
    let view =
      {
        depth = node.depth;
        n_u = node.n_u;
        pivot = Array.copy node.pivot;
        num_children = Array.length node.children;
        num_large = node.num_large;
        materialized = Hashtbl.fold (fun w ids acc -> (w, ids) :: acc) node.materialized [];
      }
    in
    Array.fold_left (fun acc child -> go acc child.node) (f acc view) node.children
  in
  go init t.root

let space_stats t =
  let nodes = ref 0
  and max_depth = ref 0
  and max_pivot = ref 0
  and pivot_words = ref 0
  and materialized_words = ref 0
  and bitset_words = ref 0
  and table_words = ref 0 in
  let rec go (node : _ node) =
    incr nodes;
    max_depth := max !max_depth node.depth;
    max_pivot := max !max_pivot (Array.length node.pivot);
    pivot_words := !pivot_words + Array.length node.pivot;
    Hashtbl.iter (fun _ ids -> materialized_words := !materialized_words + 1 + Array.length ids) node.materialized;
    table_words := !table_words + node.num_large;
    Array.iter
      (fun child ->
        bitset_words := !bitset_words + Bitset.words child.nonempty;
        go child.node)
      node.children
  in
  go t.root;
  {
    Stats.nodes = !nodes;
    max_depth = !max_depth;
    max_pivot = !max_pivot;
    pivot_words = !pivot_words;
    materialized_words = !materialized_words;
    bitset_words = !bitset_words;
    table_words = !table_words;
    total_words = !pivot_words + !materialized_words + !bitset_words + !table_words + (2 * !nodes);
  }
