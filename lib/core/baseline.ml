open Kwsc_geom
module Doc = Kwsc_invindex.Doc

type t = {
  pts : Point.t array;
  docs : Doc.t array;
  kd : int Kwsc_kdtree.Kd.t;
  kdf : int Kwsc_kdtree.Kd_flat.t; (* frozen kd: the query-path layout *)
  ptree : int Kwsc_ptree.Ptree.t;
  ptf : int Kwsc_ptree.Ptree_flat.t; (* frozen partition tree *)
  inv : Kwsc_invindex.Inverted.t;
}

let build ?seed objs =
  if Array.length objs = 0 then invalid_arg "Baseline.build: empty input";
  let pts = Array.map fst objs and docs = Array.map snd objs in
  let tagged = Array.mapi (fun i (p, _) -> (p, i)) objs in
  let kd = Kwsc_kdtree.Kd.build tagged in
  let ptree = Kwsc_ptree.Ptree.build ?seed tagged in
  {
    pts;
    docs;
    kd;
    kdf = Kwsc_kdtree.Kd.freeze kd;
    ptree;
    ptf = Kwsc_ptree.Ptree.freeze ptree;
    inv = Kwsc_invindex.Inverted.build docs;
  }

let n_objects t = Array.length t.pts
let input_size t = Kwsc_invindex.Inverted.input_size t.inv

let doc_all t ws id = Array.for_all (fun w -> Doc.mem t.docs.(id) w) ws

let finish ids =
  let a = Array.of_list ids in
  Array.sort Int.compare a;
  a

(* Structured-only strategies report through the flat kernels: the iter
   callback filters by keywords and pushes survivors into a flat buffer —
   no candidate list is ever materialized. *)
let structured_filter_iter t iter ws =
  let examined = ref 0 in
  let hits = Kwsc_util.Ibuf.create () in
  iter (fun id ->
      incr examined;
      if doc_all t ws id then Kwsc_util.Ibuf.push hits id);
  (Kwsc_util.Ibuf.sorted_array hits, !examined)

(* The true cost of the keywords-only strategy is the scan of the rarest
   posting list (that is what the intersection algorithm reads), not the
   intersection's size. *)
let keyword_scan_cost t ws =
  Array.fold_left
    (fun acc w -> min acc (Kwsc_invindex.Inverted.frequency t.inv w))
    max_int ws

let keywords_filter t ws matches pred =
  let examined = keyword_scan_cost t ws in
  let hits = Kwsc_util.Ibuf.create () in
  Array.iter (fun id -> if pred t.pts.(id) then Kwsc_util.Ibuf.push hits id) matches;
  (Kwsc_util.Ibuf.to_array hits, examined)

let rect_structured t q ws =
  structured_filter_iter t (fun f -> Kwsc_kdtree.Kd_flat.range_iter t.kdf q (fun _ id -> f id)) ws

let rect_keywords t q ws =
  keywords_filter t ws (Kwsc_invindex.Inverted.query t.inv ws) (Rect.contains_point q)

let poly_structured t q ws =
  structured_filter_iter t
    (fun f -> Kwsc_ptree.Ptree_flat.query_polytope_iter t.ptf q (fun _ id -> f id))
    ws

let poly_keywords t q ws =
  keywords_filter t ws (Kwsc_invindex.Inverted.query t.inv ws) (Polytope.mem q)

let sphere_structured t (s : Sphere.t) ws =
  (* flat kd range over the bounding box, then exact metric test; the
     payload id resolves the point without materializing the slot *)
  let examined = ref 0 in
  let hits = Kwsc_util.Ibuf.create () in
  Kwsc_kdtree.Kd_flat.range_iter t.kdf (Sphere.bounding_rect s) (fun _ id ->
      incr examined;
      if Sphere.contains s t.pts.(id) && doc_all t ws id then Kwsc_util.Ibuf.push hits id);
  (Kwsc_util.Ibuf.sorted_array hits, !examined)

let sphere_keywords t s ws =
  keywords_filter t ws (Kwsc_invindex.Inverted.query t.inv ws) (Sphere.contains s)

let by_distance metric t q ids =
  let dist = match metric with `Linf -> Point.linf_dist | `L2 -> Point.l2_dist in
  let a = Array.map (fun id -> (id, dist q t.pts.(id))) ids in
  Array.sort
    (fun (ia, da) (ib, db) ->
      let c = Float.compare da db in
      if c <> 0 then c else Int.compare ia ib)
    a;
  a

let nn_structured t ~metric q ~t' ws =
  if t' < 1 then invalid_arg "Baseline.nn_structured: t must be >= 1";
  let n = n_objects t in
  let matches = Kwsc_util.Ibuf.create () in
  let rec grow batch =
    let near = Kwsc_kdtree.Kd_flat.nearest t.kdf ~metric q batch in
    Kwsc_util.Ibuf.clear matches;
    Array.iter
      (fun (_, s) ->
        let id = Kwsc_kdtree.Kd_flat.payload t.kdf s in
        if doc_all t ws id then Kwsc_util.Ibuf.push matches id)
      near;
    if Kwsc_util.Ibuf.length matches >= t' || batch >= n then Array.length near
    else grow (min n (batch * 2))
  in
  let examined = grow (max 2 (2 * t')) in
  let sorted = by_distance metric t q (Kwsc_util.Ibuf.to_array matches) in
  (Array.sub sorted 0 (min t' (Array.length sorted)), examined)

let nn_keywords t ~metric q ~t' ws =
  if t' < 1 then invalid_arg "Baseline.nn_keywords: t must be >= 1";
  let matches = Kwsc_invindex.Inverted.query t.inv ws in
  let sorted = by_distance metric t q matches in
  (Array.sub sorted 0 (min t' (Array.length sorted)), keyword_scan_cost t ws)

let scan_pred t pred ws =
  let hits = ref [] in
  Array.iteri
    (fun id p -> if pred p && doc_all t ws id then hits := id :: !hits)
    t.pts;
  finish !hits

let scan t q ws = scan_pred t (Rect.contains_point q) ws
