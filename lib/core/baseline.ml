open Kwsc_geom
module Doc = Kwsc_invindex.Doc

type t = {
  pts : Point.t array;
  docs : Doc.t array;
  kd : int Kwsc_kdtree.Kd.t;
  ptree : int Kwsc_ptree.Ptree.t;
  inv : Kwsc_invindex.Inverted.t;
}

let build ?seed objs =
  if Array.length objs = 0 then invalid_arg "Baseline.build: empty input";
  let pts = Array.map fst objs and docs = Array.map snd objs in
  let tagged = Array.mapi (fun i (p, _) -> (p, i)) objs in
  {
    pts;
    docs;
    kd = Kwsc_kdtree.Kd.build tagged;
    ptree = Kwsc_ptree.Ptree.build ?seed tagged;
    inv = Kwsc_invindex.Inverted.build docs;
  }

let n_objects t = Array.length t.pts
let input_size t = Kwsc_invindex.Inverted.input_size t.inv

let doc_all t ws id = Array.for_all (fun w -> Doc.mem t.docs.(id) w) ws

let finish ids =
  let a = Array.of_list ids in
  Array.sort Int.compare a;
  a

let structured_filter t candidates ws =
  let examined = List.length candidates in
  let hits = List.filter_map (fun (_, id) -> if doc_all t ws id then Some id else None) candidates in
  (finish hits, examined)

(* The true cost of the keywords-only strategy is the scan of the rarest
   posting list (that is what the intersection algorithm reads), not the
   intersection's size. *)
let keyword_scan_cost t ws =
  Array.fold_left
    (fun acc w -> min acc (Kwsc_invindex.Inverted.frequency t.inv w))
    max_int ws

let keywords_filter t ws matches pred =
  let examined = keyword_scan_cost t ws in
  let hits =
    Array.to_list matches |> List.filter (fun id -> pred t.pts.(id))
  in
  (finish hits, examined)

let rect_structured t q ws = structured_filter t (Kwsc_kdtree.Kd.range t.kd q) ws
let rect_keywords t q ws =
  keywords_filter t ws (Kwsc_invindex.Inverted.query t.inv ws) (Rect.contains_point q)

let poly_structured t q ws = structured_filter t (Kwsc_ptree.Ptree.query_polytope t.ptree q) ws
let poly_keywords t q ws =
  keywords_filter t ws (Kwsc_invindex.Inverted.query t.inv ws) (Polytope.mem q)

let sphere_structured t (s : Sphere.t) ws =
  (* kd range over the bounding box, then exact metric test *)
  let candidates = Kwsc_kdtree.Kd.range t.kd (Sphere.bounding_rect s) in
  let examined = List.length candidates in
  let hits =
    List.filter_map
      (fun (p, id) -> if Sphere.contains s p && doc_all t ws id then Some id else None)
      candidates
  in
  (finish hits, examined)

let sphere_keywords t s ws =
  keywords_filter t ws (Kwsc_invindex.Inverted.query t.inv ws) (Sphere.contains s)

let by_distance metric t q ids =
  let dist = match metric with `Linf -> Point.linf_dist | `L2 -> Point.l2_dist in
  let a = Array.map (fun id -> (id, dist q t.pts.(id))) ids in
  Array.sort
    (fun (ia, da) (ib, db) ->
      let c = Float.compare da db in
      if c <> 0 then c else Int.compare ia ib)
    a;
  a

let nn_structured t ~metric q ~t' ws =
  if t' < 1 then invalid_arg "Baseline.nn_structured: t must be >= 1";
  let n = n_objects t in
  let rec grow batch =
    let near = Kwsc_kdtree.Kd.nearest t.kd ~metric q batch in
    let matches = List.filter (fun (_, _, id) -> doc_all t ws id) near in
    if List.length matches >= t' || batch >= n then (matches, List.length near)
    else grow (min n (batch * 2))
  in
  let matches, examined = grow (max 2 (2 * t')) in
  let ids = Array.of_list (List.map (fun (_, _, id) -> id) matches) in
  let sorted = by_distance metric t q ids in
  (Array.sub sorted 0 (min t' (Array.length sorted)), examined)

let nn_keywords t ~metric q ~t' ws =
  if t' < 1 then invalid_arg "Baseline.nn_keywords: t must be >= 1";
  let matches = Kwsc_invindex.Inverted.query t.inv ws in
  let sorted = by_distance metric t q matches in
  (Array.sub sorted 0 (min t' (Array.length sorted)), keyword_scan_cost t ws)

let scan_pred t pred ws =
  let hits = ref [] in
  Array.iteri
    (fun id p -> if pred p && doc_all t ws id then hits := id :: !hits)
    t.pts;
  finish !hits

let scan t q ws = scan_pred t (Rect.contains_point q) ws
