(** The dimension-reduction technique under keywords (Section 4, Theorem 2):
    an ORP-KW index for d >= 3 paying only an O(log log N) space factor per
    extra dimension.

    Structure (Lemma 11): a tree over the x-dimension whose node fanouts
    grow doubly exponentially — f_u = 2 * 2^(k^level), equation (10) — via
    f-balanced cuts (weight-balanced groups separated by pivot objects,
    footnote 13). Every node stores a (d-1)-dimensional ORP-KW secondary
    index on its active set (recursively this structure again, bottoming out
    at the d <= 2 kd-tree index of Theorem 1). A query visits at most two
    "type-2" nodes per level (Figure 2), scanning only their pivots, and
    answers everything else through "type-1" secondary queries. *)

open Kwsc_geom

type t

val build :
  ?leaf_weight:int -> ?pool:Kwsc_util.Pool.t -> k:int -> (Point.t * Kwsc_invindex.Doc.t) array -> t
(** Works for any d >= 1 (d <= 2 degenerates to the Theorem-1 index).
    Heavy cut nodes build their children and secondary structures as
    parallel [pool] tasks (default {!Kwsc_util.Pool.default}); the
    structure produced is identical at every pool size. *)

val k : t -> int
val dim : t -> int
val input_size : t -> int

val query : ?limit:int -> t -> Rect.t -> int array -> int array
(** Sorted ids of the objects in [q] containing all [k] keywords. [ws]
    must hold exactly [k t] distinct keywords (the canonical
    {!Transform.validate_keyword_arity} contract — enforced even on pure
    pivot-scan paths); keywords absent from every document are legal and
    yield an empty answer. [limit] stops reporting early (every object is
    reported by exactly one node — the highest type-1 secondary or pivot
    scan covering it — so the capped result holds [min limit OUT]
    distinct ids). *)

type profile = {
  type1 : int;  (** type-1 nodes visited (secondary queries issued) *)
  type2 : int;  (** type-2 nodes visited (pivot scans) *)
  type2_by_level : int array;  (** per level — Figure 2 promises <= 2 each *)
  pivot_checked : int;
  work : int;  (** objects/nodes examined in total, secondaries included *)
}

val query_profile : ?limit:int -> t -> Rect.t -> int array -> int array * profile
(** As [query] plus the type-1/type-2 accounting of the top-level cut
    tree. *)

val query_batch :
  ?pool:Kwsc_util.Pool.t ->
  ?limit:int ->
  t ->
  (Rect.t * int array) array ->
  int array array * profile
(** Evaluate a query stream, sharded across the [pool]; slot [i] is
    [query ?limit t q ws] for [qs.(i)], and the returned profile is the
    element-wise sum of the per-query profiles (equal to a sequential
    accumulation, since integer addition is associative). *)

val cut_stats : t -> (level:int -> fanout:int -> weight:int -> children:int -> pivots:int -> unit) -> unit
(** Visit every node of the top-level cut tree (no-op when d <= 2) — used
    to validate Propositions 1–3 (depth O(log log N), weight decay,
    f_u = O(N^(1-1/k))). *)

val space_words : t -> int
(** Total footprint in words, summing every secondary structure — the
    O(N (log log N)^(d-2)) budget of Theorem 2. *)

val check_invariants : t -> Kwsc_util.Invariant.violation list
(** Deep structural audit of the Figure-2 discipline: fanout f_u =
    2*2^(k^level) at every cut node, f-balanced child weights (footnote 13),
    exact sigma extents, ordered non-overlapping child ranges, type-1
    secondaries covering exactly the node's active set, Base nodes only at
    d <= 2, and weight bookkeeping. Empty when well-formed. [build] runs
    this automatically when [KWSC_AUDIT=1]. *)

val encode : Kwsc_snapshot.Codec.W.t -> t -> unit
val decode : Kwsc_snapshot.Codec.R.t -> t
(** Raw snapshot codec, for embedding inside {!Linf_nn_kw} / {!Rr_kw}
    snapshots (this index never stands alone in Table 1). [decode] raises
    [Kwsc_snapshot.Codec.Corrupt] on malformed bytes and re-runs
    {!check_invariants} when [KWSC_AUDIT=1]. *)
