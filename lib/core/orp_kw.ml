[@@@kwsc.domain_safe]

open Kwsc_geom

(* Cells and queries live in rank space: closed integer rectangles. *)
type irect = { ilo : int array; ihi : int array }

let irect_intersects a b =
  let ok = ref true in
  for i = 0 to Array.length a.ilo - 1 do
    if a.ihi.(i) < b.ilo.(i) || b.ihi.(i) < a.ilo.(i) then ok := false
  done;
  !ok

let irect_covers outer inner =
  let ok = ref true in
  for i = 0 to Array.length outer.ilo - 1 do
    if inner.ilo.(i) < outer.ilo.(i) || inner.ihi.(i) > outer.ihi.(i) then ok := false
  done;
  !ok

type t = {
  inner : (irect, irect) Transform.t;
  rs : Rank_space.t;
  ranks : int array array; (* object id -> rank vector *)
  d : int;
}

(* Both geometry predicates are shared by [build] and the snapshot
   decoder: [classify] is pure over rank-space rectangles, and [contains]
   captures only the rank table, which a snapshot recomputes from the
   serialized rank space. *)
let classify q cell =
  if not (irect_intersects q cell) then Transform.Disjoint
  else if irect_covers q cell then Transform.Covered
  else Transform.Crossing

let contains_of ranks d q id =
  let r = (ranks : int array array).(id) in
  let ok = ref true in
  for i = 0 to d - 1 do
    if r.(i) < q.ilo.(i) || r.(i) > q.ihi.(i) then ok := false
  done;
  !ok

let build ?leaf_weight ?tau_exponent ?use_bits ?pool ~k objs =
  let m = Array.length objs in
  if m = 0 then invalid_arg "Orp_kw.build: empty input";
  let pts = Array.map fst objs in
  let docs = Array.map snd objs in
  let d = Array.length pts.(0) in
  let rs = Rank_space.create pts in
  let ranks = Array.init m (fun id -> Rank_space.ranks rs id) in
  let weights = Array.map Kwsc_invindex.Doc.size docs in
  let root_cell = { ilo = Array.make d 0; ihi = Array.make d (m - 1) } in
  let split ~depth cell ids =
    let axis = depth mod d in
    let sorted = Array.copy ids in
    Array.sort (fun a b -> Int.compare ranks.(a).(axis) ranks.(b).(axis)) sorted;
    let total = Array.fold_left (fun acc id -> acc + weights.(id)) 0 sorted in
    (* smallest prefix whose weight reaches half: that object is the pivot,
       guaranteeing both children carry at most half the weight *)
    let j = ref 0 and acc = ref 0 in
    (try
       Array.iteri
         (fun i id ->
           acc := !acc + weights.(id);
           if 2 * !acc >= total then begin
             j := i;
             raise Exit
           end)
         sorted
     with Exit -> ());
    let j = !j in
    let pivot_rank = ranks.(sorted.(j)).(axis) in
    let left = Array.sub sorted 0 j in
    let right = Array.sub sorted (j + 1) (Array.length sorted - j - 1) in
    let lcell = { ilo = Array.copy cell.ilo; ihi = Array.copy cell.ihi } in
    lcell.ihi.(axis) <- pivot_rank;
    let rcell = { ilo = Array.copy cell.ilo; ihi = Array.copy cell.ihi } in
    rcell.ilo.(axis) <- pivot_rank;
    ([| (lcell, left); (rcell, right) |], [| sorted.(j) |])
  in
  let space = { Transform.root_cell; split; classify; contains = contains_of ranks d } in
  { inner = Transform.build ?leaf_weight ?tau_exponent ?use_bits ?pool ~k ~space docs; rs; ranks; d }

let k t = Transform.k t.inner
let dim t = t.d
let input_size t = Transform.input_size t.inner
let size t = Rank_space.size t.rs

(* Reconstruct the build input exactly: coordinates come back through the
   rank tables (coords.(j).(rank) round-trips the original float bits),
   documents from the transform. [build ~k:(k t) (objects t)] therefore
   rebuilds this index byte for byte — the contract reshard-on-load
   relies on. *)
let objects t =
  let coords, _, _ = Rank_space.export t.rs in
  let docs = Transform.documents t.inner in
  Array.init (Rank_space.size t.rs) (fun id ->
      let r = t.ranks.(id) in
      (Array.init t.d (fun j -> coords.(j).(r.(j))), docs.(id)))

let query_stats ?limit t q ws =
  if Rect.dim q <> t.d then invalid_arg "Orp_kw.query: dimension mismatch";
  (* validate keywords even when the rank conversion short-circuits *)
  ignore (Transform.validate_keyword_arity ~k:(Transform.k t.inner) ws);
  match Rank_space.rect_to_ranks t.rs q with
  | None -> ([||], Stats.fresh_query ())
  | Some (ilo, ihi) -> Transform.query_stats ?limit t.inner { ilo; ihi } ws

let query ?limit t q ws = fst (query_stats ?limit t q ws)
let query_batch ?pool ?limit t qs = Batch.run ?pool (fun (q, ws) -> query_stats ?limit t q ws) qs
let space_stats t = Transform.space_stats t.inner
let fold_nodes t ~init ~f = Transform.fold_nodes t.inner ~init ~f

let emptiness t q ws = Array.length (query ~limit:1 t q ws) = 0

let count_at_least t q ws ~threshold =
  if threshold < 1 then invalid_arg "Orp_kw.count_at_least: threshold must be >= 1";
  Array.length (query ~limit:threshold t q ws) >= threshold

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

module C = Kwsc_snapshot.Codec

let kind = "kwsc.orp-kw"

(* cells are rank rectangles of the known dimension d, so they travel as
   2d bare varints — no per-array length or width framing for the ~10^5
   cells of a large tree *)
let write_cell w c =
  Array.iter (C.W.vint w) c.ilo;
  Array.iter (C.W.vint w) c.ihi

let read_cell d r =
  let rd () =
    let a = Array.make d 0 in
    for i = 0 to d - 1 do
      a.(i) <- C.R.vint r
    done;
    a
  in
  let ilo = rd () in
  let ihi = rd () in
  { ilo; ihi }

let encode w t =
  C.W.i64 w t.d;
  let coords, ids, _rank_of = Rank_space.export t.rs in
  (* rank_of is the inverse permutation of ids: recomputed on load, not
     stored — a fifth of the snapshot for pure redundancy otherwise *)
  C.W.float_array2 w coords;
  C.W.int_array2 w ids;
  Transform.encode write_cell w t.inner

let decode r =
  let d = C.R.i64 r in
  let coords = C.R.float_array2 r in
  let ids = C.R.int_array2 r in
  (* invert the stored permutations; a duplicate or out-of-range id either
     trips the range check here or the inverse-consistency check in
     [Rank_space.import] below *)
  let rank_of =
    Array.map
      (fun idj ->
        let n = Array.length idj in
        let inv = Array.make n (-1) in
        Array.iteri
          (fun rank id ->
            if id < 0 || id >= n then C.corrupt "Orp_kw: rank table id out of range";
            inv.(id) <- rank)
          idj;
        inv)
      ids
  in
  let rs = Rank_space.import ~coords ~ids ~rank_of in
  if Rank_space.dim rs <> d then C.corrupt "Orp_kw: dimension disagrees with the rank tables";
  (* ranks are a cache over the rank space: recompute, don't store *)
  let ranks = Array.init (Rank_space.size rs) (fun id -> Rank_space.ranks rs id) in
  let inner = Transform.decode ~classify ~contains:(contains_of ranks d) (read_cell d) r in
  { inner; rs; ranks; d }

let save path t =
  C.save_file ~path ~kind
    [
      ("meta", C.to_string (fun w ->
           C.W.i64 w (k t);
           C.W.i64 w t.d;
           C.W.i64 w (input_size t)));
      ("index", C.to_string (fun w -> encode w t));
    ]

let load path =
  C.run (fun () ->
      let sections = C.load_kind_exn ~path ~kind in
      let mk, md, mn =
        C.decode_section sections "meta" (fun r ->
            let mk = C.R.i64 r in
            let md = C.R.i64 r in
            let mn = C.R.i64 r in
            (mk, md, mn))
      in
      let t = C.decode_section sections "index" decode in
      if k t <> mk || t.d <> md || input_size t <> mn then
        C.corrupt "Orp_kw: meta section disagrees with the decoded index";
      t)
